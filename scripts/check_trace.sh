#!/usr/bin/env bash
# Smoke-check the unified --json run report: run a small GraphSAGE
# bench with tracing enabled and validate the emitted document — one
# JSON file that is both a Perfetto-loadable Chrome trace (lanes for
# the main thread, the prefetch workers, and the modeled device) and
# the structured run report under the "gnnbench" key.  The report's
# observability sections are part of the schema: every document must
# carry "gnnbench.roofline" (measured ceilings + per-family
# FLOP/byte aggregates) and "gnnbench.perf" (the PMU availability
# label), and every trace slice must have a non-negative timestamp
# with per-lane starts in non-decreasing order.
#
# When a second binary (ablation_magnifying_glass) is given, its
# report is additionally validated for the per-kernel breakdown rows:
# all three explicit variants present, each row carrying intensity
# and roofline_fraction, and either real PMU deltas ("perf": "ok")
# or the explicit "perf": "unavailable" fallback.
#
# When a third binary (ablation_distributed_scaling) is given, its
# report is validated for the modeled-interconnect schema: per-rank
# "rank<r>/comm (modeled)" lanes, a "halo:*" trace-event count that
# equals the comm.messages counter, non-negative comm.* byte
# counters, and (via check_common) monotonic per-lane timestamps.
#
# When a fourth binary (fig18_19_preload) and/or a fifth
# (fig20_21_gpu_sampler) is given, their reports are validated for the
# memory-hierarchy schema: the "gnnbench.device" section (per-tier
# hit/miss/evict counters obeying the conservation identities, fusion
# tallies, DMA/UVA byte streams), the per-stage "device/* (modeled)"
# trace lanes with monotonic timestamps, bulk DMA traffic on the
# preload bench, and zero-copy UVA traffic on the UVA-sampler bench.
#
# Usage: check_trace.sh [path-to-fig06_09_graphsage]
#                       [path-to-ablation_magnifying_glass]
#                       [path-to-ablation_distributed_scaling]
#                       [path-to-fig18_19_preload]
#                       [path-to-fig20_21_gpu_sampler]
# Without arguments the binaries are taken from build/bench/.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
bench="${1:-$repo/build/bench/fig06_09_graphsage}"
ablation="${2:-$repo/build/bench/ablation_magnifying_glass}"
dist="${3:-$repo/build/bench/ablation_distributed_scaling}"
preload="${4:-$repo/build/bench/fig18_19_preload}"
uva="${5:-$repo/build/bench/fig20_21_gpu_sampler}"

if [ ! -x "$bench" ]; then
    echo "error: bench binary not found: $bench" >&2
    echo "build it first (see docs/reproducing.md) or pass its path" >&2
    exit 1
fi

out="$(mktemp -t gnnbench_trace.XXXXXX.json)"
aout="$(mktemp -t gnnbench_ablation.XXXXXX.json)"
dout="$(mktemp -t gnnbench_dist.XXXXXX.json)"
pout="$(mktemp -t gnnbench_preload.XXXXXX.json)"
uout="$(mktemp -t gnnbench_uva.XXXXXX.json)"
trap 'rm -f "$out" "$aout" "$dout" "$pout" "$uout"' EXIT

"$bench" --datasets flickr --scale 0.05 --epochs 1 --workers 2 \
    --json "$out" >/dev/null

have_ablation=0
if [ -x "$ablation" ]; then
    "$ablation" --scale 0.1 --json "$aout" >/dev/null
    have_ablation=1
else
    echo "note: ablation binary not found ($ablation); skipping its" \
         "checks" >&2
fi

have_dist=0
if [ -x "$dist" ]; then
    "$dist" --scale 0.02 --epochs 2 --json "$dout" >/dev/null
    have_dist=1
else
    echo "note: dist ablation binary not found ($dist); skipping" \
         "its checks" >&2
fi

have_preload=0
if [ -x "$preload" ]; then
    "$preload" --datasets flickr --scale 0.05 --epochs 1 \
        --json "$pout" >/dev/null
    have_preload=1
else
    echo "note: preload bench not found ($preload); skipping its" \
         "checks" >&2
fi

have_uva=0
if [ -x "$uva" ]; then
    "$uva" --datasets flickr --scale 0.05 --epochs 1 \
        --json "$uout" >/dev/null
    have_uva=1
else
    echo "note: gpu-sampler bench not found ($uva); skipping its" \
         "checks" >&2
fi

if command -v python3 >/dev/null 2>&1; then
    python3 - "$out" "$aout" "$have_ablation" "$dout" "$have_dist" \
        "$pout" "$have_preload" "$uout" "$have_uva" \
        <<'EOF'
import json
import sys


def check_common(path):
    """Validate the trace + report schema every bench must emit."""
    with open(path) as f:
        doc = json.load(f)  # also proves the document is valid JSON

    events = doc["traceEvents"]
    assert events, "traceEvents is empty"

    complete = [e for e in events if e["ph"] == "X"]
    assert complete, "no complete ('X') events"
    assert all(e["dur"] >= 0 for e in complete), "negative duration"
    assert all(e["ts"] >= 0 for e in complete), "negative timestamp"
    last = {}
    for e in complete:
        tid = e["tid"]
        assert e["ts"] >= last.get(tid, 0.0), \
            f"non-monotonic ts on tid {tid}: {e['ts']}"
        last[tid] = e["ts"]

    report = doc["gnnbench"]
    assert report["bench"], "missing bench name"

    roofline = report["roofline"]
    for key in ("measured", "peak_flops_per_s",
                "mem_bandwidth_bytes_per_s", "ridge_intensity",
                "kernels"):
        assert key in roofline, f"roofline missing {key}"
    if roofline["measured"]:
        assert roofline["peak_flops_per_s"] > 0, "zero FLOP peak"
        assert roofline["mem_bandwidth_bytes_per_s"] > 0, \
            "zero bandwidth"
    for family, cost in roofline["kernels"].items():
        assert cost["bytes"] > 0, f"{family}: zero bytes"
        assert cost["intensity"] >= 0, f"{family}: bad intensity"

    assert isinstance(report["perf"], str) and report["perf"], \
        "missing perf availability label"
    return doc, report, complete


doc, report, complete = check_common(sys.argv[1])

lanes = {e["args"]["name"] for e in doc["traceEvents"]
         if e["ph"] == "M" and e["name"] == "thread_name"}
assert "main" in lanes, f"no 'main' lane in {sorted(lanes)}"
assert any("/w" in l for l in lanes), \
    f"no prefetch-worker lane in {sorted(lanes)}"
assert any(l in ("gpu (modeled)", "pcie (modeled)") for l in lanes), \
    f"no modeled-device lane in {sorted(lanes)}"
assert len(lanes) >= 3, f"expected >= 3 lanes, got {sorted(lanes)}"

runs = report["runs"]
assert runs, "no runs in the report"
for run in runs:
    phases = run["phases"]
    for name in ("data_loading", "sampling", "data_movement",
                 "training", "other"):
        assert name in phases, f"missing phase {name}"
    total = sum(p["seconds"] for p in phases.values())
    assert abs(total - run["total_seconds"]) < 1e-9, \
        f"total_seconds {run['total_seconds']} != phase sum {total}"

print(f"trace OK: {len(lanes)} lanes, {len(complete)} events, "
      f"{len(runs)} runs")

if sys.argv[3] == "1":
    adoc, areport, _ = check_common(sys.argv[2])
    rows = adoc["results"]
    assert rows, "ablation emitted no results rows"
    variants = {r["variant"] for r in rows}
    assert variants == {"reference", "tiled", "simd"}, \
        f"expected all three variants, got {sorted(variants)}"
    perf_live = areport["perf"] == "available"
    for r in rows:
        for key in ("reorder", "op", "seconds", "flops", "bytes",
                    "intensity", "roofline_fraction", "perf"):
            assert key in r, f"results row missing {key}"
        assert r["roofline_fraction"] >= 0, "negative roof fraction"
        if r["perf"] == "ok":
            assert perf_live, "perf rows but label says unavailable"
            assert r["cycles"] > 0, "zero cycles on a live PMU"
            assert "ipc" in r and "llc_miss_rate" in r, \
                "missing derived PMU fields"
        else:
            assert r["perf"] == "unavailable", \
                f"bad perf marker {r['perf']!r}"
    print(f"ablation OK: {len(rows)} breakdown rows, "
          f"perf={areport['perf']}")

if sys.argv[5] == "1":
    ddoc, dreport, dcomplete = check_common(sys.argv[4])

    # Per-rank modeled lanes: the rank sweep goes up to 8 ranks, so
    # every rank must own a compute lane, and every rank of the
    # multi-rank configs a comm lane.
    dlanes = {e["args"]["name"] for e in ddoc["traceEvents"]
              if e["ph"] == "M" and e["name"] == "thread_name"}
    for r in range(8):
        assert f"rank{r}/compute (modeled)" in dlanes, \
            f"missing compute lane for rank {r} in {sorted(dlanes)}"
    for r in range(4):
        assert f"rank{r}/comm (modeled)" in dlanes, \
            f"missing comm lane for rank {r} in {sorted(dlanes)}"

    counters = dreport["metrics"]["counters"]
    for key in ("comm.messages", "comm.bytes.halo",
                "comm.bytes.allreduce", "comm.allreduces",
                "datastore.hits", "datastore.misses",
                "datastore.fetch.bytes"):
        assert key in counters, f"missing counter {key}"
        assert counters[key] >= 0, f"negative counter {key}"
    assert counters["comm.bytes.halo"] > 0, "no modeled halo traffic"
    assert counters["comm.bytes.allreduce"] > 0, \
        "no modeled allreduce traffic"

    # Every modeled halo exchange records exactly one trace event on
    # the receiver's comm lane: the schema's cross-check.
    halo_events = [e for e in dcomplete
                   if e["name"].startswith("halo:")]
    assert len(halo_events) == counters["comm.messages"], \
        (f"{len(halo_events)} halo events != "
         f"{counters['comm.messages']} comm.messages")
    allreduce_events = [e for e in dcomplete
                        if e["name"].startswith("allreduce:")]
    assert allreduce_events, "no allreduce events on the comm lanes"

    drows = ddoc["results"]
    assert drows, "dist ablation emitted no results rows"
    for r in drows:
        assert r["variant"] == "dist", f"bad variant {r['variant']!r}"
        if "bit_exact" in r:
            assert r["bit_exact"] is True, \
                f"{r['op']}: not bit-exact vs the 1-rank baseline"
    print(f"dist OK: {len(dlanes)} lanes, {len(halo_events)} halo "
          f"messages, {len(allreduce_events)} allreduce events")


def check_device_section(report):
    """Validate the gnnbench.device memory-hierarchy schema."""
    dev = report["device"]
    assert dev["tile_bytes"] > 0, "non-positive tile_bytes"

    fusion = dev["fusion"]
    for key in ("enabled", "fused_pairs", "fused_bytes_saved",
                "rejected_pairs"):
        assert key in fusion, f"device.fusion missing {key}"

    for tier in ("l2", "vram"):
        t = dev["tiers"][tier]
        for key in ("capacity_bytes", "hits", "misses", "evictions"):
            assert key in t, f"device.tiers.{tier} missing {key}"
            assert t[key] >= 0, f"negative {tier}.{key}"
        assert t["capacity_bytes"] > 0, f"zero {tier} capacity"

    # Conservation identities, cross-checked against the raw
    # counters: hits + misses == accesses for every tier.
    counters = report["metrics"]["counters"]
    for tier in ("l2", "vram"):
        for key in ("hits", "misses", "evictions"):
            assert dev["tiers"][tier][key] == \
                counters[f"device.{tier}.{key}"], \
                f"device.{tier}.{key} disagrees with the counter"

    for key in ("dma", "uva"):
        for field in dev[key].values():
            assert field >= 0, f"negative device.{key} field"
    return dev


def check_device_lanes(doc, expect):
    lanes = {e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    for lane in expect:
        assert lane in lanes, f"missing lane {lane} in {sorted(lanes)}"
    return lanes


if sys.argv[7] == "1":
    pdoc, preport, _ = check_common(sys.argv[6])
    pdev = check_device_section(preport)
    # Pre-loading streams the feature matrix over the DMA engine and
    # gathers must find it on-device: bulk DMA traffic, VRAM hits,
    # no stray zero-copy traffic from this CPUGPU bench.
    assert pdev["dma"]["bytes"] > 0, "preload bench moved no DMA bytes"
    assert pdev["preload_bytes"] > 0, "no preloaded bytes recorded"
    assert pdev["tiers"]["vram"]["hits"] > 0, \
        "preloaded gathers never hit the VRAM tier"
    assert pdev["gather_rows"] > 0, "no tiered gathers recorded"
    l2 = pdev["tiers"]["l2"]
    assert l2["hits"] + l2["misses"] > 0, "L2 tier never probed"
    check_device_lanes(pdoc, ["device/dma (modeled)",
                              "device/vram (modeled)",
                              "device/l2 (modeled)"])
    prows = pdoc["results"]
    assert prows, "preload bench emitted no gate rows"
    ops = {r["op"] for r in prows}
    for op in ("preload_speedup", "movement_reduction",
               "fused_traffic_reduction"):
        assert op in ops, f"missing gate row {op}"
    assert pdev["fusion"]["fused_pairs"] > 0, \
        "dglx runs recorded no fused pairs"
    assert pdev["fusion"]["rejected_pairs"] > 0, \
        "pygx runs recorded no rejected pairs (Observation 3)"
    print(f"preload OK: {pdev['dma']['bytes']} DMA bytes, "
          f"{pdev['tiers']['vram']['hits']} VRAM hits, "
          f"{pdev['fusion']['fused_pairs']} fused pairs")

if sys.argv[9] == "1":
    udoc, ureport, _ = check_common(sys.argv[8])
    udev = check_device_section(ureport)
    # The UVA sampler reads neighbor lists zero-copy: the link
    # transactions and bytes must come from the hierarchy, and the
    # GPU-resident config must have pre-loaded over DMA.
    assert udev["uva"]["transactions"] > 0, \
        "UVA sampler crossed the link zero times"
    assert udev["uva"]["bytes"] > 0, "no zero-copy bytes recorded"
    assert udev["dma"]["bytes"] > 0, "GPU-resident config never DMAed"
    check_device_lanes(udoc, ["device/dma (modeled)",
                              "device/ctrl (modeled)",
                              "device/vram (modeled)"])
    print(f"uva OK: {udev['uva']['transactions']} zero-copy "
          f"transactions, {udev['uva']['bytes']} bytes")
EOF
else
    # Minimal fallback when python3 is unavailable.
    grep -q '"traceEvents"' "$out"
    grep -q '"main"' "$out"
    grep -q '/w' "$out"
    grep -qe '"gpu (modeled)"' -e '"pcie (modeled)"' "$out"
    grep -q '"gnnbench"' "$out"
    grep -q '"total_seconds"' "$out"
    grep -q '"roofline"' "$out"
    grep -q '"perf"' "$out"
    if [ "$have_ablation" = 1 ]; then
        grep -q '"roofline_fraction"' "$aout"
        grep -q '"results"' "$aout"
    fi
    if [ "$have_dist" = 1 ]; then
        grep -q '"rank0/comm (modeled)"' "$dout"
        grep -q '"rank0/compute (modeled)"' "$dout"
        grep -q 'halo:' "$dout"
        grep -q 'allreduce:' "$dout"
        grep -q '"comm.messages"' "$dout"
        grep -q '"results"' "$dout"
    fi
    if [ "$have_preload" = 1 ]; then
        grep -q '"device"' "$pout"
        grep -q '"device/dma (modeled)"' "$pout"
        grep -q '"device/vram (modeled)"' "$pout"
        grep -q '"fused_bytes_saved"' "$pout"
        grep -q '"preload_speedup"' "$pout"
    fi
    if [ "$have_uva" = 1 ]; then
        grep -q '"device"' "$uout"
        grep -q '"device/ctrl (modeled)"' "$uout"
        grep -q '"device.uva.transactions"' "$uout"
    fi
    echo "trace OK (grep fallback; python3 not found)"
fi

echo "check_trace passed."
