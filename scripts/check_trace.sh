#!/usr/bin/env bash
# Smoke-check the unified --json run report: run a small GraphSAGE
# bench with tracing enabled and validate the emitted document — one
# JSON file that is both a Perfetto-loadable Chrome trace (lanes for
# the main thread, the prefetch workers, and the modeled device) and
# the structured run report under the "gnnbench" key.
#
# Usage: check_trace.sh [path-to-fig06_09_graphsage]
# Without an argument the binary is taken from build/bench/.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
bench="${1:-$repo/build/bench/fig06_09_graphsage}"

if [ ! -x "$bench" ]; then
    echo "error: bench binary not found: $bench" >&2
    echo "build it first (see docs/reproducing.md) or pass its path" >&2
    exit 1
fi

out="$(mktemp -t gnnbench_trace.XXXXXX.json)"
trap 'rm -f "$out"' EXIT

"$bench" --datasets flickr --scale 0.05 --epochs 1 --workers 2 \
    --json "$out" >/dev/null

if command -v python3 >/dev/null 2>&1; then
    python3 - "$out" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)  # also proves the document is valid JSON

events = doc["traceEvents"]
assert events, "traceEvents is empty"

lanes = {e["args"]["name"] for e in events
         if e["ph"] == "M" and e["name"] == "thread_name"}
assert "main" in lanes, f"no 'main' lane in {sorted(lanes)}"
assert any("/w" in l for l in lanes), \
    f"no prefetch-worker lane in {sorted(lanes)}"
assert any(l in ("gpu (modeled)", "pcie (modeled)") for l in lanes), \
    f"no modeled-device lane in {sorted(lanes)}"
assert len(lanes) >= 3, f"expected >= 3 lanes, got {sorted(lanes)}"

complete = [e for e in events if e["ph"] == "X"]
assert complete, "no complete ('X') events"
assert all(e["dur"] >= 0 for e in complete), "negative duration"

report = doc["gnnbench"]
assert report["bench"], "missing bench name"
runs = report["runs"]
assert runs, "no runs in the report"
for run in runs:
    phases = run["phases"]
    for name in ("data_loading", "sampling", "data_movement",
                 "training", "other"):
        assert name in phases, f"missing phase {name}"
    total = sum(p["seconds"] for p in phases.values())
    assert abs(total - run["total_seconds"]) < 1e-9, \
        f"total_seconds {run['total_seconds']} != phase sum {total}"

print(f"trace OK: {len(lanes)} lanes, {len(complete)} events, "
      f"{len(runs)} runs")
EOF
else
    # Minimal fallback when python3 is unavailable.
    grep -q '"traceEvents"' "$out"
    grep -q '"main"' "$out"
    grep -q '/w' "$out"
    grep -qe '"gpu (modeled)"' -e '"pcie (modeled)"' "$out"
    grep -q '"gnnbench"' "$out"
    grep -q '"total_seconds"' "$out"
    echo "trace OK (grep fallback; python3 not found)"
fi

echo "check_trace passed."
