#!/usr/bin/env bash
# Build the threaded parts of gnnbench under ThreadSanitizer and run
# the tests that exercise them: the parallel substrate, the prefetch
# pipeline/dataloaders, the (parallelized) dglx samplers, and the
# observability layer (trace recorder, metrics, phase tracker).
#
# OpenMP is disabled in this configuration: TSan cannot see libgomp's
# synchronization and would report false positives through the omp
# pragmas; every gnnbench-owned thread goes through core/parallel and
# sampling/prefetch, which is exactly what this script checks.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-tsan"

cmake -S "$repo" -B "$build" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGNNBENCH_SANITIZE=thread \
    -DGNNBENCH_ENABLE_OPENMP=OFF \
    -DGNNBENCH_NATIVE=OFF

targets=(test_parallel test_prefetch test_dglx_sampler test_profiling
         test_trace)
cmake --build "$build" -j"$(nproc)" --target "${targets[@]}"

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
for t in "${targets[@]}"; do
    echo "== $t (TSan) =="
    "$build/tests/$t"
done
echo "TSan checks passed."
