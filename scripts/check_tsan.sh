#!/usr/bin/env bash
# Build the threaded parts of gnnbench under ThreadSanitizer and run
# the tests that exercise them: the parallel substrate, the prefetch
# pipeline/dataloaders, the (parallelized) samplers, the observability
# layer, and the threaded gnncheck property/differential suites.
#
# The target list is NOT hardcoded: it is derived from the ctest
# "tsan" label (see tests/CMakeLists.txt), so adding a threaded test
# to GNNBENCH_TSAN_TESTS automatically adds it here.
#
# OpenMP is disabled in this configuration: TSan cannot see libgomp's
# synchronization and would report false positives through the omp
# pragmas; every gnnbench-owned thread goes through core/parallel and
# sampling/prefetch, which is exactly what this script checks.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-tsan"

cmake -S "$repo" -B "$build" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGNNBENCH_SANITIZE=thread \
    -DGNNBENCH_ENABLE_OPENMP=OFF \
    -DGNNBENCH_NATIVE=OFF

# `ctest -N -L tsan` prints "  Test #N: <name>" lines; the sed keeps
# just the names.  _slow registrations reuse a binary already listed.
mapfile -t targets < <(
    cd "$build" &&
    ctest -N -L tsan |
    sed -n 's/^ *Test *#[0-9]*: *\([A-Za-z0-9_]*\)$/\1/p' |
    sed 's/_slow$//' | sort -u)
if [ "${#targets[@]}" -eq 0 ]; then
    echo "error: no tests carry the 'tsan' ctest label" >&2
    exit 1
fi
echo "TSan targets (from ctest label): ${targets[*]}"

cmake --build "$build" -j"$(nproc)" --target "${targets[@]}"

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
for t in "${targets[@]}"; do
    echo "== $t (TSan) =="
    "$build/tests/$t" --gtest_filter=-*Slow*
done
echo "TSan checks passed."
