#!/usr/bin/env python3
"""Kernel-variant performance regression gate.

Runs ``micro_kernels --json`` (the Reference vs Tiled vs Simd SpMM
comparison on the fig05 conv-layer aggregation workload, plus the
single-thread graph-reordering measurement), appends the record to the
BENCH_kernels.json history at the repository root, and fails when

  * any result row's speedup drops below its own ``floor`` field
    (1.5x for Tiled, 6.0x for Simd, 1.0x for the best reordering
    method; rows without a floor fall back to --min-speedup), or
  * a row's speedup regresses by more than --threshold (default 30%)
    against the same row of the previous entry.  The floors are the
    primary gate; the history comparison is a drift tripwire, and its
    default threshold is sized for the ~±15% process-to-process
    timing noise of a shared single-core runner.  Reorder rows (and
    any row flagged ``no_regress``) are exempt from the history
    comparison — which reordering method wins, and by how much, is
    workload- and machine-dependent — but the best method's floor
    still applies.

Rows are keyed ``variant:op`` (reorder rows ``reorder:op:method``).
Entries recorded before the per-variant format carry bare ``op`` keys
that never match the new form, so the history comparison effectively
restarts at the first per-variant entry instead of raising spurious
regressions across the measurement-definition change.  With no
matching baseline the run is recorded and the gate passes ("no
baseline" is not a failure).

Usage:
    check_bench_regression.py <micro_kernels-binary>
        [--history PATH] [--threshold FRACTION] [--min-speedup X]
        [--threads N] [--repeats N] [--reorder METHOD]
"""

import argparse
import datetime
import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def parse_args(argv):
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("binary", help="path to the micro_kernels binary")
    p.add_argument("--history",
                   default=str(REPO_ROOT / "BENCH_kernels.json"),
                   help="speedup history file (JSON array)")
    p.add_argument("--threshold", type=float, default=0.30,
                   help="max allowed fractional speedup regression "
                        "vs the previous entry")
    p.add_argument("--min-speedup", type=float, default=1.5,
                   help="speedup floor for rows without their own "
                        "floor field")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--repeats", type=int, default=5)
    p.add_argument("--reorder", default="none",
                   help="reordering applied to the variant-comparison "
                        "workload (none/rcm/degree)")
    return p.parse_args(argv)


def run_bench(args):
    with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
        cmd = [args.binary, "--json", tmp.name,
               "--threads", str(args.threads),
               "--repeats", str(args.repeats),
               "--reorder", args.reorder]
        print("+", " ".join(cmd), flush=True)
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            sys.exit("FAIL: %s exited %d (an optimized variant "
                     "diverged from the reference golden model?)"
                     % (args.binary, proc.returncode))
        with open(tmp.name) as f:
            return json.load(f)


def load_history(path):
    if not path.exists():
        return []
    text = path.read_text().strip()
    if not text:
        return []
    history = json.loads(text)
    if not isinstance(history, list):
        sys.exit("FAIL: %s is not a JSON array" % path)
    return history


def row_key(r):
    """Stable identity of a result row across history entries.

    Pre-variant entries carry only ``op``; the bare key never collides
    with the ``variant:op`` form, which keeps the two history formats
    from being compared against each other.
    """
    if "variant" not in r:
        return r["op"]
    key = "%s:%s" % (r["variant"], r["op"])
    if "method" in r:
        key += ":" + r["method"]
    return key


def speedup_rows(record):
    return {row_key(r): r for r in record["results"]}


def main(argv):
    args = parse_args(argv)
    record = run_bench(args)
    record["timestamp"] = (datetime.datetime.now(datetime.timezone.utc)
                           .strftime("%Y-%m-%dT%H:%M:%SZ"))

    # Reorder rows carry no bit_exact field (they are timing-only; the
    # permutation-equivalence contract is covered by test_reorder).
    for r in record["results"]:
        if not r.get("bit_exact", True):
            sys.exit("FAIL: %s spmm %s is not bit-exact vs the "
                     "reference golden model"
                     % (r.get("variant", "tiled"), r["op"]))

    failures = []
    rows = speedup_rows(record)
    for key, r in sorted(rows.items()):
        # Reorder rows are gated only when they carry an explicit
        # floor (the best method); the --min-speedup fallback applies
        # to kernel-variant rows alone.
        floor = r.get("floor")
        if floor is None:
            if "method" in r:
                continue
            floor = args.min_speedup
        if r["speedup"] < floor:
            failures.append(
                "%s: speedup %.2fx below the %.2fx floor"
                % (key, r["speedup"], floor))

    history_path = pathlib.Path(args.history)
    history = load_history(history_path)
    if history:
        base = speedup_rows(history[-1])
        for key, r in sorted(rows.items()):
            old = base.get(key)
            if old is None or r.get("no_regress") or "method" in r:
                continue
            if r["speedup"] < old["speedup"] * (1.0 - args.threshold):
                failures.append(
                    "%s: speedup regressed %.2fx -> %.2fx "
                    "(>%d%% vs previous entry)"
                    % (key, old["speedup"], r["speedup"],
                       round(args.threshold * 100)))
            else:
                print("  %-20s %.2fx vs baseline %.2fx  ok"
                      % (key, r["speedup"], old["speedup"]))
    else:
        print("no baseline in %s; recording first entry"
              % history_path)

    if failures:
        for f in failures:
            print("FAIL:", f, file=sys.stderr)
        print("history left untouched at %s" % history_path,
              file=sys.stderr)
        return 1

    history.append(record)
    history_path.write_text(json.dumps(history, indent=2) + "\n")
    print("appended entry %d to %s" % (len(history), history_path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
