#!/usr/bin/env python3
"""Benchmark performance regression gate.

Two modes, selected with ``--mode`` and gated against separate
history files (``--bench-file``):

``kernels`` (default, history ``BENCH_kernels.json``)
  Runs ``micro_kernels --json`` (the Reference vs Tiled vs Simd SpMM
  comparison on the fig05 conv-layer aggregation workload, plus the
  single-thread graph-reordering measurement).  Row values are
  speedups; the gate fails when a row drops below its ``floor``
  (1.5x for Tiled, 6.0x for Simd, 1.0x for the best reordering
  method; rows without a floor fall back to --min-speedup), or when
  a row regresses by more than --threshold (default 30%) against the
  previous history entry.  The floors are the primary gate; the
  history comparison is a drift tripwire sized for the ~±15%
  process-to-process timing noise of a shared single-core runner.
  Reorder rows (and any row flagged ``no_regress``) are exempt from
  the history comparison, but explicit floors still apply.

``serve`` (history ``BENCH_serve.json``)
  Runs ``serve_throughput --json`` (multi-tenant inference serving
  under synthetic load).  Row values are absolute figures of merit
  carried in each row's ``value`` field — sustained QPS (gated by a
  ``floor``), p99 latency in ms (gated by a ``ceiling``), and
  ungated informational rows.  Serve rows are ``no_regress`` (tail
  latency is too machine-sensitive for the drift tripwire), so the
  absolute floor/ceiling gates are the whole contract.

``dist`` (history ``BENCH_dist.json``)
  Runs ``ablation_distributed_scaling --json`` (partition-parallel
  training at 1/2/4/8 modeled ranks).  Row values come from the
  deterministic interconnect model: the modeled speedup at 4 ranks
  carries a 2.5x ``floor``, the cross-epoch data-store hit rate a
  0.4 ``floor``, and every speedup row a ``bit_exact`` flag that
  hard-fails the gate when a rank count diverges from the 1-rank
  baseline.  Because the model is noise-free, the history tripwire
  applies at full strength to rows not marked ``no_regress``.

``device`` (history ``BENCH_device.json``)
  Runs ``fig18_19_preload --json`` on a small flickr slice (the
  GraphSAGE preload-vs-baseline comparison through the tiered
  memory-hierarchy model).  Gated rows: the end-to-end preload
  speedup per framework (``floor`` 1.01x — preload must help, per
  the paper's Observation 6), the data-movement reduction
  (``floor`` 2.0x), and the fused fraction of modeled kernel
  traffic (``floor`` 0.005 — the dglx fusion path must keep
  eliminating intermediate traffic).  The rows mix wall-clock and
  modeled time, so they are ``no_regress``; the floors are the
  contract.

In both modes every run that passes is appended to the history file
so drift stays observable.  Rows are keyed ``variant:op`` (reorder
rows ``variant:op:method``); entries recorded before the per-variant
format carry bare ``op`` keys that never match the new form, so the
history comparison effectively restarts at the first per-variant
entry.  With no matching baseline the run is recorded and the gate
passes ("no baseline" is not a failure).

Usage:
    check_bench_regression.py <bench-binary>
        [--mode kernels|serve] [--bench-file PATH]
        [--threshold FRACTION] [--min-speedup X]
        [--threads N] [--repeats N] [--reorder METHOD]
        [--requests N] [--target-qps Q]
"""

import argparse
import datetime
import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DEFAULT_BENCH_FILES = {
    "kernels": "BENCH_kernels.json",
    "serve": "BENCH_serve.json",
    "dist": "BENCH_dist.json",
    "device": "BENCH_device.json",
}


def parse_args(argv):
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("binary", help="path to the benchmark binary")
    p.add_argument("--mode", choices=sorted(DEFAULT_BENCH_FILES),
                   default="kernels",
                   help="which benchmark/gate profile to run")
    p.add_argument("--bench-file", default=None,
                   help="history file (JSON array); defaults to the "
                        "mode's file at the repository root")
    p.add_argument("--history", dest="bench_file",
                   help=argparse.SUPPRESS)  # pre---bench-file alias
    p.add_argument("--threshold", type=float, default=0.30,
                   help="max allowed fractional regression vs the "
                        "previous entry (kernels mode)")
    p.add_argument("--min-speedup", type=float, default=1.5,
                   help="speedup floor for kernels rows without "
                        "their own floor field")
    # kernels-mode bench arguments
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--repeats", type=int, default=5)
    p.add_argument("--reorder", default="none",
                   help="reordering applied to the variant-comparison "
                        "workload (none/rcm/degree)")
    # serve-mode bench arguments
    p.add_argument("--requests", type=int, default=2000)
    p.add_argument("--target-qps", type=float, default=2000.0)
    args = p.parse_args(argv)
    if args.bench_file is None:
        args.bench_file = str(
            REPO_ROOT / DEFAULT_BENCH_FILES[args.mode])
    return args


def bench_cmd(args, json_path):
    if args.mode == "kernels":
        return [args.binary, "--json", json_path,
                "--threads", str(args.threads),
                "--repeats", str(args.repeats),
                "--reorder", args.reorder]
    if args.mode == "dist":
        # The ablation's baked-in defaults (dataset, scale, rank
        # sweep) are the gated configuration.
        return [args.binary, "--json", json_path]
    if args.mode == "device":
        # Small fixed slice: big enough that preload/fusion effects
        # dominate, small enough for a CI gate.
        return [args.binary, "--json", json_path,
                "--datasets", "flickr", "--scale", "0.05",
                "--epochs", "2"]
    return [args.binary, "--json", json_path,
            "--requests", str(args.requests),
            "--target-qps", str(args.target_qps)]


def run_bench(args):
    with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
        cmd = bench_cmd(args, tmp.name)
        print("+", " ".join(cmd), flush=True)
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            sys.exit("FAIL: %s exited %d (an optimized variant "
                     "diverged from the reference golden model?)"
                     % (args.binary, proc.returncode))
        with open(tmp.name) as f:
            return json.load(f)


def load_history(path):
    if not path.exists():
        return []
    text = path.read_text().strip()
    if not text:
        return []
    history = json.loads(text)
    if not isinstance(history, list):
        sys.exit("FAIL: %s is not a JSON array" % path)
    return history


def row_key(r):
    """Stable identity of a result row across history entries.

    Pre-variant entries carry only ``op``; the bare key never collides
    with the ``variant:op`` form, which keeps the two history formats
    from being compared against each other.
    """
    if "variant" not in r:
        return r["op"]
    key = "%s:%s" % (r["variant"], r["op"])
    if "method" in r:
        key += ":" + r["method"]
    return key


def row_value(r):
    """The gated figure of merit: kernel rows carry ``speedup``,
    serve rows an absolute ``value``."""
    return r["speedup"] if "speedup" in r else r["value"]


def result_rows(record):
    if "results" not in record:
        sys.exit("FAIL: bench JSON carries no top-level 'results' "
                 "array (not a gate-enabled --json report?)")
    return {row_key(r): r for r in record["results"]}


def history_record(record):
    """The slice of a bench report worth recording: unified run
    reports embed the whole Chrome trace and metrics snapshot, which
    would bloat the history file — keep the gate rows and options."""
    slim = {k: v for k, v in record.items()
            if k not in ("traceEvents", "displayTimeUnit",
                         "gnnbench")}
    gnnbench = record.get("gnnbench")
    if isinstance(gnnbench, dict) and "options" in gnnbench:
        slim["options"] = gnnbench["options"]
    return slim


def main(argv):
    args = parse_args(argv)
    record = history_record(run_bench(args))
    record["timestamp"] = (datetime.datetime.now(datetime.timezone.utc)
                           .strftime("%Y-%m-%dT%H:%M:%SZ"))
    rows = result_rows(record)

    # Reorder/serve rows carry no bit_exact field (timing-only; the
    # bit-exactness contracts are covered by test_reorder/test_serve).
    for r in record["results"]:
        if not r.get("bit_exact", True):
            sys.exit("FAIL: %s %s is not bit-exact vs the "
                     "reference golden model"
                     % (r.get("variant", "?"), r["op"]))

    failures = []
    for key, r in sorted(rows.items()):
        value = row_value(r)
        ceiling = r.get("ceiling")
        if ceiling is not None and value > ceiling:
            failures.append(
                "%s: %.2f above the %.2f ceiling"
                % (key, value, ceiling))
        floor = r.get("floor")
        if floor is None:
            # The --min-speedup fallback applies to kernel-variant
            # speedup rows alone; method (reorder) and serve value
            # rows are gated only by explicit floors/ceilings.
            if "method" in r or "speedup" not in r:
                continue
            floor = args.min_speedup
        if value < floor:
            failures.append(
                "%s: %.2f below the %.2f floor" % (key, value, floor))

    history_path = pathlib.Path(args.bench_file)
    history = load_history(history_path)
    if history:
        base = result_rows(history[-1])
        for key, r in sorted(rows.items()):
            old = base.get(key)
            if old is None or r.get("no_regress") or "method" in r:
                continue
            if row_value(r) < row_value(old) * (1.0 - args.threshold):
                failures.append(
                    "%s: regressed %.2f -> %.2f (>%d%% vs previous "
                    "entry)"
                    % (key, row_value(old), row_value(r),
                       round(args.threshold * 100)))
            else:
                print("  %-20s %.2f vs baseline %.2f  ok"
                      % (key, row_value(r), row_value(old)))
    else:
        print("no baseline in %s; recording first entry"
              % history_path)

    if failures:
        for f in failures:
            print("FAIL:", f, file=sys.stderr)
        print("history left untouched at %s" % history_path,
              file=sys.stderr)
        return 1

    history.append(record)
    history_path.write_text(json.dumps(history, indent=2) + "\n")
    print("appended entry %d to %s" % (len(history), history_path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
