#!/usr/bin/env python3
"""Kernel-variant performance regression gate.

Runs ``micro_kernels --json`` (the Reference-vs-Tiled SpMM comparison
on the fig05 conv-layer aggregation workload), appends the record to
the BENCH_kernels.json history at the repository root, and fails when
the tiled variant's speedup regresses by more than --threshold
(default 10%) against the previous entry for any reduce op, or drops
below the --min-speedup floor (default 1.5x, the paper-reproduction
acceptance bar).  With no existing history the run is recorded and the
gate passes ("no baseline" is not a failure).

Usage:
    check_bench_regression.py <micro_kernels-binary>
        [--history PATH] [--threshold FRACTION] [--min-speedup X]
        [--threads N] [--repeats N]
"""

import argparse
import datetime
import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def parse_args(argv):
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("binary", help="path to the micro_kernels binary")
    p.add_argument("--history",
                   default=str(REPO_ROOT / "BENCH_kernels.json"),
                   help="speedup history file (JSON array)")
    p.add_argument("--threshold", type=float, default=0.10,
                   help="max allowed fractional speedup regression "
                        "vs the previous entry")
    p.add_argument("--min-speedup", type=float, default=1.5,
                   help="absolute speedup floor per reduce op")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--repeats", type=int, default=5)
    return p.parse_args(argv)


def run_bench(args):
    with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
        cmd = [args.binary, "--json", tmp.name,
               "--threads", str(args.threads),
               "--repeats", str(args.repeats)]
        print("+", " ".join(cmd), flush=True)
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            sys.exit("FAIL: %s exited %d (tiled output diverged "
                     "from the reference golden model?)"
                     % (args.binary, proc.returncode))
        with open(tmp.name) as f:
            return json.load(f)


def load_history(path):
    if not path.exists():
        return []
    text = path.read_text().strip()
    if not text:
        return []
    history = json.loads(text)
    if not isinstance(history, list):
        sys.exit("FAIL: %s is not a JSON array" % path)
    return history


def speedups(record):
    return {r["op"]: r["speedup"] for r in record["results"]}


def main(argv):
    args = parse_args(argv)
    record = run_bench(args)
    record["timestamp"] = (datetime.datetime.now(datetime.timezone.utc)
                           .strftime("%Y-%m-%dT%H:%M:%SZ"))

    for r in record["results"]:
        if not r["bit_exact"]:
            sys.exit("FAIL: tiled spmm %s is not bit-exact vs the "
                     "reference golden model" % r["op"])

    failures = []
    for op, new in sorted(speedups(record).items()):
        if new < args.min_speedup:
            failures.append(
                "spmm %s: speedup %.2fx below the %.2fx floor"
                % (op, new, args.min_speedup))

    history_path = pathlib.Path(args.history)
    history = load_history(history_path)
    if history:
        base = speedups(history[-1])
        for op, new in sorted(speedups(record).items()):
            old = base.get(op)
            if old is None:
                continue
            if new < old * (1.0 - args.threshold):
                failures.append(
                    "spmm %s: speedup regressed %.2fx -> %.2fx "
                    "(>%d%% vs previous entry)"
                    % (op, old, new, round(args.threshold * 100)))
            else:
                print("  spmm %-4s  %.2fx vs baseline %.2fx  ok"
                      % (op, new, old))
    else:
        print("no baseline in %s; recording first entry"
              % history_path)

    if failures:
        for f in failures:
            print("FAIL:", f, file=sys.stderr)
        print("history left untouched at %s" % history_path,
              file=sys.stderr)
        return 1

    history.append(record)
    history_path.write_text(json.dumps(history, indent=2) + "\n")
    print("appended entry %d to %s" % (len(history), history_path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
