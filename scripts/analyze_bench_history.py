#!/usr/bin/env python3
"""Trend / anomaly report over the benchmark history files.

Reads the JSON-array history files maintained by
``check_bench_regression.py`` (``BENCH_kernels.json`` and
``BENCH_serve.json`` at the repository root) and prints one row per
result series — the same ``variant:op[:method]`` keys the gate uses —
with a unicode sparkline of the series, its spread, and the drift of
the latest entry against the median of the preceding entries.

Drift beyond ``--drift`` (default 10%) in either direction is flagged:
a kernel speedup sliding down is a slow regression the 30% gate
tripwire has not caught yet, and a serve p99 creeping up is tail-
latency erosion the no_regress rows never gate.  The report is
informational by default (exit 0 so the CI step never blocks a merge
on machine noise); ``--strict`` exits 1 when anything is flagged.

Usage:
    analyze_bench_history.py [FILE ...] [--drift FRACTION]
                             [--last N] [--strict]
"""

import argparse
import json
import pathlib
import statistics
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DEFAULT_FILES = ["BENCH_kernels.json", "BENCH_serve.json"]

SPARK_TICKS = "▁▂▃▄▅▆▇█"


def parse_args(argv):
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("files", nargs="*",
                   help="history files (default: the BENCH_*.json "
                        "files at the repository root)")
    p.add_argument("--drift", type=float, default=0.10,
                   help="fractional drift of the latest entry vs the "
                        "median of earlier entries that gets flagged")
    p.add_argument("--last", type=int, default=30,
                   help="analyze at most the last N history entries")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 when any series is flagged")
    return p.parse_args(argv)


def row_key(r):
    """Same series identity as check_bench_regression.row_key."""
    if "variant" not in r:
        return r["op"]
    key = "%s:%s" % (r["variant"], r["op"])
    if "method" in r:
        key += ":" + r["method"]
    return key


def row_value(r):
    if "speedup" in r:
        return r["speedup"]
    if "value" in r:
        return r["value"]
    return None


def load_series(path, last):
    """{key: [values in history order]} over the last N entries."""
    text = path.read_text().strip()
    if not text:
        return {}
    history = json.loads(text)
    if not isinstance(history, list):
        sys.exit("error: %s is not a JSON array" % path)
    series = {}
    for entry in history[-last:]:
        for r in entry.get("results", []):
            value = row_value(r)
            if value is not None:
                series.setdefault(row_key(r), []).append(value)
    return series


def sparkline(values):
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARK_TICKS[0] * len(values)
    span = hi - lo
    return "".join(
        SPARK_TICKS[min(len(SPARK_TICKS) - 1,
                        int((v - lo) / span * len(SPARK_TICKS)))]
        for v in values)


def analyze_file(path, drift_threshold):
    """Print the per-series table; return the flagged series keys."""
    series = load_series(path, ARGS.last)
    if not series:
        print("%s: no history entries" % path.name)
        return []
    print("%s (%d series):" % (path.name, len(series)))
    header = "  %-28s %3s %10s %10s %10s %8s  %s" % (
        "series", "n", "median", "latest", "drift", "flag", "trend")
    print(header)
    flagged = []
    for key in sorted(series):
        values = series[key]
        latest = values[-1]
        prior = values[:-1]
        if prior:
            base = statistics.median(prior)
            drift = (latest - base) / base if base else 0.0
            drift_text = "%+6.1f%%" % (drift * 100.0)
        else:
            base = latest
            drift = 0.0
            drift_text = "      -"
        flag = ""
        if prior and abs(drift) > drift_threshold:
            flag = "DRIFT"
            flagged.append("%s %s: %s" % (path.name, key, drift_text))
        print("  %-28s %3d %10.3f %10.3f %10s %8s  %s"
              % (key, len(values), base, latest, drift_text, flag,
                 sparkline(values)))
    print()
    return flagged


def main(argv):
    global ARGS
    ARGS = parse_args(argv)
    paths = ([pathlib.Path(f) for f in ARGS.files] if ARGS.files else
             [REPO_ROOT / f for f in DEFAULT_FILES])
    flagged = []
    for path in paths:
        if not path.exists():
            print("%s: missing (no history yet)" % path)
            continue
        flagged += analyze_file(path, ARGS.drift)
    if flagged:
        print("flagged %d series drifting >%d%% vs their median:"
              % (len(flagged), round(ARGS.drift * 100)))
        for f in flagged:
            print("  " + f)
        if ARGS.strict:
            return 1
    else:
        print("no series drifting beyond %d%%"
              % round(ARGS.drift * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
