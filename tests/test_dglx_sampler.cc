/** Tests for the dglx CPU samplers: structural invariants and
 *  statistical sanity, plus determinism. */

#include <gtest/gtest.h>

#include <set>

#include "gnnbench/dglx/sampler.h"
#include "gnnbench/graph/generate.h"

namespace gnnbench {
namespace dglx {
namespace {

Graph
makeGraph(NodeId n, EdgeId m, uint64_t seed)
{
    core::Rng rng(seed);
    return Graph(graph::symmetrize(graph::rmat(n, m, rng), false));
}

TEST(NeighborSampler, BlockInvariantsHold)
{
    Graph g = makeGraph(500, 3000, 1);
    NeighborSampler sampler(g, {25, 10}, core::Rng(2));
    std::vector<NodeId> seeds = {1, 5, 9, 100, 499};
    auto smp = sampler.sample(seeds);
    smp.validate();
    EXPECT_EQ(smp.blocks.size(), 2u);
    EXPECT_EQ(smp.seeds, seeds);
}

TEST(NeighborSampler, FanoutBound)
{
    Graph g = makeGraph(400, 4000, 3);
    NeighborSampler sampler(g, {25, 10}, core::Rng(4));
    auto smp = sampler.sample({0, 1, 2, 3, 4, 5, 6, 7});
    // Seed-side block (last) uses fanout 10; input-side uses 25.
    const auto &seed_blk = smp.blocks[1];
    for (NodeId d = 0; d < seed_blk.csc.numRows; ++d)
        EXPECT_LE(seed_blk.csc.degree(d), 10);
    const auto &in_blk = smp.blocks[0];
    for (NodeId d = 0; d < in_blk.csc.numRows; ++d)
        EXPECT_LE(in_blk.csc.degree(d), 25);
}

TEST(NeighborSampler, TakesAllWhenDegreeBelowFanout)
{
    // Path graph: 0-1-2; degree <= 2 < fanout.
    graph::CooGraph coo;
    coo.numNodes = 3;
    coo.addEdge(0, 1);
    coo.addEdge(1, 2);
    Graph g(graph::symmetrize(coo, false));
    NeighborSampler sampler(g, {5}, core::Rng(5));
    auto smp = sampler.sample({1});
    EXPECT_EQ(smp.blocks[0].csc.degree(0), 2);  // both neighbors
}

TEST(NeighborSampler, SampledEdgesExistInGraph)
{
    Graph g = makeGraph(300, 2400, 6);
    NeighborSampler sampler(g, {5, 5}, core::Rng(7));
    auto smp = sampler.sample({10, 20, 30});
    for (const auto &blk : smp.blocks) {
        for (NodeId d = 0; d < blk.csc.numRows; ++d) {
            const NodeId gd = blk.dstNodes[d];
            std::set<NodeId> nbrs(g.csc().rowBegin(gd),
                                  g.csc().rowEnd(gd));
            for (EdgeId e = blk.csc.indptr[d];
                 e < blk.csc.indptr[d + 1]; ++e) {
                const NodeId gs = blk.srcNodes[blk.csc.indices[e]];
                ASSERT_TRUE(nbrs.count(gs))
                    << gs << " not a neighbor of " << gd;
            }
        }
    }
}

TEST(NeighborSampler, NoReplacementWithinNode)
{
    Graph g = makeGraph(200, 4000, 8);
    NeighborSampler sampler(g, {10}, core::Rng(9));
    auto smp = sampler.sample({0, 1, 2, 3, 4});
    const auto &blk = smp.blocks[0];
    for (NodeId d = 0; d < blk.csc.numRows; ++d) {
        std::set<NodeId> seen;
        for (EdgeId e = blk.csc.indptr[d]; e < blk.csc.indptr[d + 1];
             ++e)
            ASSERT_TRUE(seen.insert(blk.csc.indices[e]).second)
                << "duplicate sampled neighbor";
    }
}

TEST(NeighborSampler, DeterministicInRng)
{
    Graph g = makeGraph(300, 2000, 10);
    NeighborSampler a(g, {5, 5}, core::Rng(11));
    NeighborSampler b(g, {5, 5}, core::Rng(11));
    auto sa = a.sample({1, 2, 3});
    auto sb = b.sample({1, 2, 3});
    EXPECT_EQ(sa.blocks[0].srcNodes, sb.blocks[0].srcNodes);
    EXPECT_EQ(sa.blocks[0].csc.indices, sb.blocks[0].csc.indices);
}

TEST(ClusterSampler, CoversAllNodesAcrossClusters)
{
    Graph g = makeGraph(600, 3600, 12);
    ClusterSampler sampler(g, 20, core::Rng(13));
    // Sampling all clusters at once must cover every node.
    auto smp = sampler.sample(20);
    smp.validate();
    EXPECT_EQ(smp.nodes.size(), 600u);
}

TEST(ClusterSampler, InducedMatchesReference)
{
    Graph g = makeGraph(400, 2400, 14);
    ClusterSampler sampler(g, 16, core::Rng(15));
    auto smp = sampler.sample(4);
    smp.validate();
    graph::CsrGraph ref =
        graph::inducedSubgraph(g.csr(), smp.nodes);
    EXPECT_EQ(smp.adj.indptr, ref.indptr);
    EXPECT_EQ(smp.adj.indices, ref.indices);
}

TEST(ClusterSampler, PartitionIsStoredOnce)
{
    Graph g = makeGraph(500, 3000, 16);
    ClusterSampler sampler(g, 10, core::Rng(17));
    EXPECT_EQ(sampler.numParts(), 10);
    EXPECT_EQ(sampler.partition().assignment.size(), 500u);
}

TEST(SaintRwSampler, SubgraphSizeBounded)
{
    Graph g = makeGraph(1000, 8000, 18);
    SaintRwSampler sampler(g, 50, 2, core::Rng(19));
    auto smp = sampler.sample();
    smp.validate();
    EXPECT_LE(smp.nodes.size(), 150u);  // roots * (len + 1)
    EXPECT_GE(smp.nodes.size(), 50u);   // at least the roots
}

TEST(SaintRwSampler, WalksFollowEdges)
{
    Graph g = makeGraph(500, 4000, 20);
    SaintRwSampler sampler(g, 30, 3, core::Rng(21));
    auto smp = sampler.sample();
    // The induced adjacency only contains edges of the base graph
    // (checked against the reference extractor).
    graph::CsrGraph ref =
        graph::inducedSubgraph(g.csr(), smp.nodes);
    EXPECT_EQ(smp.adj.indices, ref.indices);
}

TEST(SaintNodeSampler, BudgetRespected)
{
    Graph g = makeGraph(800, 6400, 22);
    SaintNodeSampler sampler(g, 100, core::Rng(23));
    auto smp = sampler.sample();
    smp.validate();
    EXPECT_LE(smp.nodes.size(), 100u);
    EXPECT_GT(smp.nodes.size(), 30u);  // duplicates removed only
}

TEST(SaintNodeSampler, PrefersHighDegreeNodes)
{
    // Star + isolated satellites: the hub must be sampled near
    // always, isolated nodes rarely.
    graph::CooGraph coo;
    coo.numNodes = 100;
    for (NodeId v = 1; v < 50; ++v)
        coo.addEdge(0, v);
    Graph g(graph::symmetrize(coo, false));
    int hub_hits = 0;
    SaintNodeSampler sampler(g, 10, core::Rng(24));
    for (int t = 0; t < 50; ++t) {
        auto smp = sampler.sample();
        for (NodeId v : smp.nodes)
            hub_hits += (v == 0);
    }
    EXPECT_GT(hub_hits, 35);
}

TEST(SaintEdgeSampler, EndpointsInduced)
{
    Graph g = makeGraph(600, 4800, 25);
    SaintEdgeSampler sampler(g, 200, core::Rng(26));
    auto smp = sampler.sample();
    smp.validate();
    EXPECT_LE(smp.nodes.size(), 400u);
    EXPECT_GT(smp.nodes.size(), 50u);
}

} // namespace
} // namespace dglx
} // namespace gnnbench
