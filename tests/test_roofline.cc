/** Tests for the analytic roofline accounting: per-kernel cost
 *  models, ceiling/fraction math under synthetic calibrations, and
 *  the "roofline" report section. */

#include <gtest/gtest.h>

#include <sstream>

#include "gnnbench/profiling/json_writer.h"
#include "gnnbench/profiling/metrics_registry.h"
#include "gnnbench/profiling/roofline.h"

namespace gnnbench {
namespace profiling {
namespace {

/** Pin synthetic ceilings for the test, restore lazy measurement on
 *  scope exit. */
struct ScopedCalibration
{
    explicit ScopedCalibration(double peak, double bw)
    {
        RooflineCalibration c;
        c.measured = true;
        c.peakFlopsPerSec = peak;
        c.memBandwidthBytesPerSec = bw;
        setCalibrationForTest(c);
        calib = c;
    }
    ~ScopedCalibration()
    {
        setCalibrationForTest(RooflineCalibration{});
    }
    RooflineCalibration calib;
};

// ------------------------------------------------- cost formulas

TEST(RooflineCost, SpmmSumMeanWeighted)
{
    // rows=10, nnz=100, f=8: plain sum is one add per stored-entry
    // element; traffic is one feature-row read per entry + the
    // output write.
    OpCost sum = spmmCost(10, 100, 8, false, false);
    EXPECT_DOUBLE_EQ(sum.flops, 100.0 * 8.0);
    EXPECT_DOUBLE_EQ(sum.bytes, 100.0 * 8 * 4.0 + 10.0 * 8 * 4.0);

    // Weighted doubles the FLOPs (multiply-add), same traffic.
    OpCost wsum = spmmCost(10, 100, 8, true, false);
    EXPECT_DOUBLE_EQ(wsum.flops, 2.0 * 100.0 * 8.0);
    EXPECT_DOUBLE_EQ(wsum.bytes, sum.bytes);

    // Mean adds the per-output divide.
    OpCost mean = spmmCost(10, 100, 8, false, true);
    EXPECT_DOUBLE_EQ(mean.flops, 100.0 * 8.0 + 10.0 * 8.0);
    EXPECT_DOUBLE_EQ(mean.bytes, sum.bytes);
}

TEST(RooflineCost, RemainingFamilies)
{
    OpCost mx = spmmMaxCost(10, 100, 8);
    EXPECT_DOUBLE_EQ(mx.flops, 100.0 * 8.0); // one compare each
    EXPECT_DOUBLE_EQ(mx.bytes, 100.0 * 8 * 4.0 + 10.0 * 8 * 4.0);

    OpCost sc = spmmScatterCost(100, 8, true);
    EXPECT_DOUBLE_EQ(sc.flops, 2.0 * 100.0 * 8.0);
    EXPECT_DOUBLE_EQ(sc.bytes, 100.0 * 8 * 8.0); // RMW per entry

    OpCost sa = sddmmAddCost(100, 8);
    EXPECT_DOUBLE_EQ(sa.flops, 100.0 * 8.0);
    EXPECT_DOUBLE_EQ(sa.bytes, 100.0 * 8 * 12.0);

    OpCost sd = sddmmDotCost(100, 8);
    EXPECT_DOUBLE_EQ(sd.flops, 2.0 * 100.0 * 8.0);
    EXPECT_DOUBLE_EQ(sd.bytes, 100.0 * (8 * 8.0 + 4.0));

    OpCost g = gatherCost(100, 8);
    EXPECT_DOUBLE_EQ(g.flops, 0.0); // pure movement
    EXPECT_DOUBLE_EQ(g.bytes, 100.0 * 8 * 8.0);

    OpCost st = scatterCost(100, 10, 8);
    EXPECT_DOUBLE_EQ(st.flops, 100.0 * 8.0);
    EXPECT_DOUBLE_EQ(st.bytes, 100.0 * 8 * 8.0);

    OpCost ss = segmentSumCost(10, 100, 8);
    EXPECT_DOUBLE_EQ(ss.flops, 100.0 * 8.0);
    EXPECT_DOUBLE_EQ(ss.bytes, 100.0 * 8 * 4.0 + 10.0 * 8 * 4.0);
}

TEST(RooflineCost, IntensityAndAccumulation)
{
    OpCost c;
    EXPECT_DOUBLE_EQ(c.intensity(), 0.0); // byte-free: defined as 0
    c.flops = 200.0;
    c.bytes = 100.0;
    EXPECT_DOUBLE_EQ(c.intensity(), 2.0);
    OpCost d;
    d.flops = 100.0;
    d.bytes = 300.0;
    c += d;
    EXPECT_DOUBLE_EQ(c.flops, 300.0);
    EXPECT_DOUBLE_EQ(c.bytes, 400.0);
    EXPECT_DOUBLE_EQ(c.intensity(), 0.75);
}

// ---------------------------------------------- ceiling / fraction

TEST(Roofline, AttainableCeilingUnderSyntheticCalibration)
{
    // peak 100 GFLOP/s, bw 10 GB/s => ridge at 10 FLOP/B.
    ScopedCalibration cal(100e9, 10e9);
    EXPECT_DOUBLE_EQ(cal.calib.ridgeIntensity(), 10.0);
    // Below the ridge the memory roof binds...
    EXPECT_DOUBLE_EQ(attainableFlopsPerSec(cal.calib, 1.0), 10e9);
    EXPECT_DOUBLE_EQ(attainableFlopsPerSec(cal.calib, 5.0), 50e9);
    // ...at and above it, the compute roof.
    EXPECT_DOUBLE_EQ(attainableFlopsPerSec(cal.calib, 10.0), 100e9);
    EXPECT_DOUBLE_EQ(attainableFlopsPerSec(cal.calib, 1000.0), 100e9);
    // Zero intensity degenerates to the compute peak.
    EXPECT_DOUBLE_EQ(attainableFlopsPerSec(cal.calib, 0.0), 100e9);
}

TEST(Roofline, FractionComputeAndBandwidthPaths)
{
    ScopedCalibration cal(100e9, 10e9);

    // Intensity 1 => roof 10 GFLOP/s; achieving 5 GFLOP/s is half.
    OpCost c;
    c.flops = 5e9;
    c.bytes = 5e9;
    EXPECT_DOUBLE_EQ(rooflineFraction(c, 1.0, cal.calib), 0.5);

    // FLOP-free movement op: fraction is achieved bytes/s over bw.
    OpCost g;
    g.bytes = 2e9;
    EXPECT_DOUBLE_EQ(rooflineFraction(g, 1.0, cal.calib), 0.2);

    // Cache-resident working sets can beat the DRAM-calibrated roof;
    // the fraction is deliberately not clamped to 1.
    OpCost hot;
    hot.flops = 4e9;
    hot.bytes = 4e9;
    EXPECT_DOUBLE_EQ(rooflineFraction(hot, 0.1, cal.calib), 4.0);

    // Degenerate inputs are all zero, never NaN.
    EXPECT_DOUBLE_EQ(rooflineFraction(c, 0.0, cal.calib), 0.0);
    EXPECT_DOUBLE_EQ(rooflineFraction(OpCost{}, 1.0, cal.calib), 0.0);
    RooflineCalibration unmeasured;
    EXPECT_DOUBLE_EQ(rooflineFraction(c, 1.0, unmeasured), 0.0);
}

TEST(Roofline, MeasuredCalibrationIsSane)
{
    // Force a real measurement pass (the ScopedCalibration dtor of
    // earlier tests reset to lazy) and sanity-check the ceilings.
    setCalibrationForTest(RooflineCalibration{});
    const RooflineCalibration &c = rooflineCalibration();
    EXPECT_TRUE(c.measured);
    EXPECT_GT(c.peakFlopsPerSec, 0.0);
    EXPECT_GT(c.memBandwidthBytesPerSec, 0.0);
    EXPECT_GT(c.ridgeIntensity(), 0.0);
    EXPECT_GT(c.calibrationSeconds, 0.0);
    // A second call returns the cached measurement.
    const RooflineCalibration &again = rooflineCalibration();
    EXPECT_DOUBLE_EQ(again.peakFlopsPerSec, c.peakFlopsPerSec);
}

// ------------------------------------------------- report section

TEST(Roofline, WriteJsonPairsFamilyCounters)
{
    ScopedCalibration cal(100e9, 10e9);
    MetricsRegistry reg;
    reg.counter("kernels.spmm.flops").add(1000);
    reg.counter("kernels.spmm.bytes").add(4000);
    reg.counter("kernels.gather.bytes").add(800); // FLOP-free family
    reg.counter("unrelated.count").add(3);

    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    writeRooflineJson(w, "roofline", &reg);
    w.endObject();
    const std::string text = out.str();
    ASSERT_TRUE(json::valid(text)) << text;

    EXPECT_NE(text.find("\"measured\":true"), std::string::npos);
    EXPECT_NE(text.find("\"ridge_intensity\":10"), std::string::npos);
    EXPECT_NE(text.find("\"kernels.spmm\""), std::string::npos);
    EXPECT_NE(text.find("\"flops\":1000"), std::string::npos);
    EXPECT_NE(text.find("\"bytes\":4000"), std::string::npos);
    EXPECT_NE(text.find("\"intensity\":0.25"), std::string::npos);
    // Families without a .flops counter don't get a (meaningless)
    // flops/bytes pairing row.
    EXPECT_EQ(text.find("\"kernels.gather\""), std::string::npos);
    // Unrelated counters never leak into the kernels object.
    EXPECT_EQ(text.find("unrelated"), std::string::npos);
}

} // namespace
} // namespace profiling
} // namespace gnnbench
