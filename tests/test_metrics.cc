/** Tests for the evaluation metrics. */

#include <gtest/gtest.h>

#include "gnnbench/core/metrics.h"

namespace gnnbench {
namespace core {
namespace metrics {
namespace {

Tensor
logitsOf(std::initializer_list<int> preds, int classes)
{
    Tensor t(static_cast<int64_t>(preds.size()), classes);
    int64_t i = 0;
    for (int p : preds)
        t(i++, p) = 1.0f;
    return t;
}

TEST(Metrics, PerfectPrediction)
{
    Tensor logits = logitsOf({0, 1, 2, 1}, 3);
    auto e = evaluate(logits, {0, 1, 2, 1}, {}, 3);
    EXPECT_EQ(e.accuracy(), 1.0);
    EXPECT_EQ(e.macroF1(), 1.0);
    EXPECT_EQ(e.microF1(), 1.0);
}

TEST(Metrics, KnownConfusion)
{
    // Predictions: 0,0,1,1; truth: 0,1,1,2.
    Tensor logits = logitsOf({0, 0, 1, 1}, 3);
    auto e = evaluate(logits, {0, 1, 1, 2}, {}, 3);
    EXPECT_EQ(e.total, 4);
    EXPECT_EQ(e.correct, 2);
    // Class 0: tp=1 fp=1 fn=0 -> p=0.5 r=1 f1=2/3.
    EXPECT_NEAR(e.perClass[0].precision(), 0.5, 1e-12);
    EXPECT_NEAR(e.perClass[0].recall(), 1.0, 1e-12);
    EXPECT_NEAR(e.perClass[0].f1(), 2.0 / 3.0, 1e-12);
    // Class 1: tp=1 fp=1 fn=1 -> f1 = 0.5.
    EXPECT_NEAR(e.perClass[1].f1(), 0.5, 1e-12);
    // Class 2: tp=0 -> f1 = 0.
    EXPECT_EQ(e.perClass[2].f1(), 0.0);
    EXPECT_NEAR(e.macroF1(), (2.0 / 3.0 + 0.5 + 0.0) / 3.0, 1e-12);
    // Single-label micro-F1 equals accuracy.
    EXPECT_NEAR(e.microF1(), e.accuracy(), 1e-12);
}

TEST(Metrics, RowSelection)
{
    Tensor logits = logitsOf({0, 1, 0}, 2);
    auto e = evaluate(logits, {1, 1, 0}, {1, 2}, 2);
    EXPECT_EQ(e.total, 2);
    EXPECT_EQ(e.correct, 2);
}

TEST(Metrics, EmptyClassesHandled)
{
    Tensor logits = logitsOf({0, 0}, 4);
    auto e = evaluate(logits, {0, 0}, {}, 4);
    EXPECT_EQ(e.accuracy(), 1.0);
    // Untouched classes contribute zero F1 to the macro average.
    EXPECT_NEAR(e.macroF1(), 0.25, 1e-12);
}

TEST(Metrics, LabelOutOfRangeIsFatal)
{
    Tensor logits = logitsOf({0}, 2);
    EXPECT_DEATH(evaluate(logits, {5}, {}, 2), "out of range");
}

} // namespace
} // namespace metrics
} // namespace core
} // namespace gnnbench
