/**
 * Cross-framework equivalence: the two frameworks implement the same
 * mathematics with different machinery, so layers constructed with
 * identical weights must produce (numerically) identical outputs.
 * This is the strongest correctness check in the suite — any kernel
 * bug in either framework breaks it.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "gnnbench/dglx/nn.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/graph/generate.h"
#include "gnnbench/pygx/nn.h"
#include "gnnbench/pygx/sampler.h"

namespace gnnbench {
namespace {

namespace ag = core::ag;
using core::Tensor;

struct Fixture
{
    graph::CooGraph coo;
    dglx::Graph dgl;
    pygx::Data pyg;
    Tensor x;

    explicit Fixture(uint64_t seed, NodeId n = 50, EdgeId m = 280,
                     int64_t feat = 12)
        : coo([&] {
              core::Rng rng(seed);
              return graph::symmetrize(graph::rmat(n, m, rng),
                                       false);
          }()),
          dgl(coo), pyg(coo), x([&] {
              core::Rng rng(seed + 1000);
              return Tensor::randn(n, feat, rng);
          }())
    {
    }
};

void
expectClose(const Tensor &a, const Tensor &b, float tol = 2e-3f)
{
    ASSERT_TRUE(a.sameShape(b));
    for (int64_t i = 0; i < a.numel(); ++i)
        ASSERT_NEAR(a.data()[i], b.data()[i],
                    tol * std::max(1.0f, std::fabs(b.data()[i])))
            << "element " << i;
}

class CrossFrameworkConv
    : public ::testing::TestWithParam<dglx::ConvKind>
{
};

TEST_P(CrossFrameworkConv, SameWeightsSameOutput)
{
    const auto kind = GetParam();
    Fixture f(static_cast<uint64_t>(kind) * 17 + 3);
    // Identical weight draws: both factories consume the same Rng
    // sequence in the same order.
    core::Rng wrng_d(99), wrng_p(99);
    auto dconv = dglx::makeConv(kind, 12, 8, wrng_d, false);
    auto pconv = pygx::makeConv(
        static_cast<pygx::ConvKind>(kind), 12, 8, wrng_p, false);

    Tensor in = f.x.clone();
    if (kind == dglx::ConvKind::Gcn2) {
        core::Rng prng(7);
        in = core::ops::matmul(f.x, Tensor::glorot(12, 8, prng));
        static_cast<dglx::Gcn2Conv *>(dconv.get())
            ->setInitial(ag::constant(in.clone()));
        static_cast<pygx::Gcn2Conv *>(pconv.get())
            ->setInitial(ag::constant(in.clone()));
    }

    dglx::KernelCtx dctx;
    pygx::KernelCtx pctx;
    ag::Var dout =
        dconv->forward(f.dgl, ag::constant(in.clone()), dctx);
    ag::Var pout =
        pconv->forward(f.pyg, ag::constant(in.clone()), pctx);
    expectClose(dout->value, pout->value);
}

INSTANTIATE_TEST_SUITE_P(
    AllLayers, CrossFrameworkConv,
    ::testing::Values(dglx::ConvKind::Gcn, dglx::ConvKind::Gcn2,
                      dglx::ConvKind::Cheb, dglx::ConvKind::Sage,
                      dglx::ConvKind::Gat, dglx::ConvKind::Gatv2,
                      dglx::ConvKind::Tag, dglx::ConvKind::Sg),
    [](const auto &info) {
        return dglx::convKindName(info.param);
    });

TEST(CrossFramework, GradientsAgreeForGcn)
{
    Fixture f(5);
    core::Rng wrng_d(42), wrng_p(42);
    dglx::GcnConv dconv(12, 6, wrng_d);
    pygx::GcnConv pconv(12, 6, wrng_p);
    dglx::KernelCtx dctx;
    pygx::KernelCtx pctx;

    std::vector<int32_t> labels(50);
    for (NodeId v = 0; v < 50; ++v)
        labels[v] = v % 6;

    auto loss_of = [&](auto &conv, auto &g, auto &ctx) {
        ag::Var out =
            conv.forward(g, ag::constant(f.x.clone()), ctx);
        ag::Var loss =
            ag::nllLoss(ag::logSoftmax(out), labels, {});
        ag::backward(loss);
        return conv.params()[0]->grad.clone();
    };
    Tensor dgrad = loss_of(dconv, f.dgl, dctx);
    Tensor pgrad = loss_of(pconv, f.pyg, pctx);
    expectClose(dgrad, pgrad, 5e-3f);
}

TEST(CrossFramework, GradientsAgreeForSage)
{
    Fixture f(6);
    core::Rng wrng_d(43), wrng_p(43);
    dglx::SageConv dconv(12, 5, wrng_d);
    pygx::SageConv pconv(12, 5, wrng_p);
    dglx::KernelCtx dctx;
    pygx::KernelCtx pctx;
    std::vector<int32_t> labels(50);
    for (NodeId v = 0; v < 50; ++v)
        labels[v] = v % 5;

    ag::Var dout =
        dconv.forward(f.dgl, ag::constant(f.x.clone()), dctx);
    ag::backward(ag::nllLoss(ag::logSoftmax(dout), labels, {}));
    ag::Var pout =
        pconv.forward(f.pyg, ag::constant(f.x.clone()), pctx);
    ag::backward(ag::nllLoss(ag::logSoftmax(pout), labels, {}));

    expectClose(dconv.params()[1]->grad, pconv.params()[1]->grad,
                5e-3f);
}

TEST(CrossFramework, SamplersProduceSameFrontierSizesOnAverage)
{
    // Statistically, both frameworks' neighbor samplers draw from
    // the same distribution: average input-frontier sizes across
    // many batches must be close.
    Fixture f(7, 400, 3200, 4);
    dglx::NeighborSampler ds(f.dgl, {10, 5}, core::Rng(1));
    pygx::NeighborSampler ps(f.pyg, {10, 5}, core::Rng(2), nullptr);
    double dsum = 0, psum = 0;
    for (int t = 0; t < 30; ++t) {
        std::vector<NodeId> seeds = {
            static_cast<NodeId>(t), static_cast<NodeId>(t + 100),
            static_cast<NodeId>(t + 200)};
        dsum += ds.sample(seeds).inputNodes().size();
        psum += ps.sample(seeds).inputNodes().size();
    }
    EXPECT_NEAR(dsum / psum, 1.0, 0.15);
}

} // namespace
} // namespace gnnbench
