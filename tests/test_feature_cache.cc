/** Tests for the degree-ordered GPU feature cache. */

#include <gtest/gtest.h>

#include "gnnbench/dglx/feature_cache.h"

namespace gnnbench {
namespace dglx {
namespace {

TEST(FeatureCache, CachesHottestNodes)
{
    device::Session session;
    // Degrees 0..9; capacity for exactly 3 rows of 16 floats.
    std::vector<EdgeId> degrees = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    FeatureCache cache(degrees, 16, 3 * 16 * 4, session);
    EXPECT_EQ(cache.cachedNodes(), 3);
    EXPECT_TRUE(cache.isCached(9));
    EXPECT_TRUE(cache.isCached(8));
    EXPECT_TRUE(cache.isCached(7));
    EXPECT_FALSE(cache.isCached(0));
}

TEST(FeatureCache, GatherSplitsHitsAndMisses)
{
    device::Session session;
    std::vector<EdgeId> degrees = {10, 1, 1, 1};
    FeatureCache cache(degrees, 8, 8 * 4, session);  // 1 row
    auto stats = cache.gather({0, 1, 2});
    EXPECT_EQ(stats.hitBytes, 8 * 4u);
    EXPECT_EQ(stats.missBytes, 2 * 8 * 4u);
    EXPECT_NEAR(stats.hitRate(), 1.0 / 3.0, 1e-9);
}

TEST(FeatureCache, ChargesTransfersAndKernels)
{
    device::Session session;
    std::vector<EdgeId> degrees(100, 1);
    degrees[0] = 100;
    const auto before = session.snapshot();
    FeatureCache cache(degrees, 64, 50 * 64 * 4, session);
    const auto after_fill = session.snapshot();
    // Populating the cache crossed PCIe.
    EXPECT_GT(after_fill.modeled.xferSeconds -
                  before.modeled.xferSeconds,
              0.0);
    std::vector<NodeId> nodes;
    for (NodeId i = 0; i < 100; ++i)
        nodes.push_back(i);
    cache.gather(nodes);
    const auto after_gather = session.snapshot();
    EXPECT_GT(after_gather.modeled.gpuSeconds, 0.0);   // hits
    EXPECT_GT(after_gather.modeled.xferSeconds -
                  after_fill.modeled.xferSeconds,
              0.0);  // misses
}

TEST(FeatureCache, ReleasesGpuMemoryOnDestruction)
{
    device::Session session;
    std::vector<EdgeId> degrees(10, 1);
    {
        FeatureCache cache(degrees, 4, 10 * 4 * 4, session);
        EXPECT_GT(session.gpuBytesUsed(), 0u);
    }
    EXPECT_EQ(session.gpuBytesUsed(), 0u);
}

TEST(FeatureCache, TotalsAccumulate)
{
    device::Session session;
    std::vector<EdgeId> degrees = {5, 4, 3, 2, 1};
    FeatureCache cache(degrees, 4, 2 * 4 * 4, session);
    cache.gather({0, 4});
    cache.gather({1, 3});
    EXPECT_EQ(cache.totals().hitBytes, 2 * 4 * 4u);
    EXPECT_EQ(cache.totals().missBytes, 2 * 4 * 4u);
}

} // namespace
} // namespace dglx
} // namespace gnnbench
