/** Tests for the power model, energy meter, and GPS-UP metrics. */

#include <gtest/gtest.h>

#include "gnnbench/power/energy_meter.h"
#include "gnnbench/power/gpsup.h"

namespace gnnbench {
namespace power {
namespace {

TEST(PowerModel, IdleAndPeakPower)
{
    PowerSpec spec;
    PowerModel m(spec, true);
    EXPECT_EQ(m.cpuPower(0.0), spec.cpuIdle);
    EXPECT_EQ(m.cpuPower(1.0), spec.cpuActive);
    EXPECT_EQ(m.gpuPower(0.0), spec.gpuIdle);
    EXPECT_EQ(m.gpuPower(1.0), spec.gpuMax);
    // Utilization is clamped.
    EXPECT_EQ(m.cpuPower(7.0), spec.cpuActive);
}

TEST(PowerModel, NoGpuPowerWithoutGpu)
{
    PowerModel m(PowerSpec{}, false);
    EXPECT_EQ(m.gpuPower(1.0), 0.0);
    ActivitySlice s;
    s.cpuBusySeconds = 1.0;
    EXPECT_EQ(m.energyOf(s).gpuJoules, 0.0);
}

TEST(PowerModel, CpuBusyEnergy)
{
    PowerSpec spec;
    PowerModel m(spec, false);
    ActivitySlice s;
    s.cpuBusySeconds = 2.0;
    const EnergyReport e = m.energyOf(s);
    EXPECT_NEAR(e.cpuJoules, 2.0 * spec.cpuActive, 1e-9);
    EXPECT_NEAR(e.avgWatts(), spec.cpuActive, 1e-9);
}

TEST(PowerModel, GpuKernelEnergyUsesUtilization)
{
    PowerSpec spec;
    PowerModel m(spec, true);
    ActivitySlice s;
    s.gpuBusySeconds = 1.0;
    s.gpuUtilSeconds = 0.5;  // half utilization for the second
    const EnergyReport e = m.energyOf(s);
    EXPECT_NEAR(e.gpuJoules,
                spec.gpuIdle + 0.5 * (spec.gpuMax - spec.gpuIdle),
                1e-9);
    // CPU idles while the (synchronous) GPU kernel runs.
    EXPECT_NEAR(e.cpuJoules, spec.cpuIdle, 1e-9);
}

TEST(PowerModel, EnergyAdditivity)
{
    PowerModel m(PowerSpec{}, true);
    ActivitySlice a, b;
    a.cpuBusySeconds = 1.0;
    b.gpuBusySeconds = 0.5;
    b.gpuUtilSeconds = 0.4;
    ActivitySlice both = a;
    both += b;
    const EnergyReport ea = m.energyOf(a);
    const EnergyReport eb = m.energyOf(b);
    const EnergyReport eboth = m.energyOf(both);
    EXPECT_NEAR(eboth.joules(), ea.joules() + eb.joules(), 1e-9);
}

TEST(EnergyMeter, TotalsMatchDirectIntegration)
{
    PowerModel m(PowerSpec{}, true);
    EnergyMeter meter(m, 0.1);
    ActivitySlice s1, s2;
    s1.cpuBusySeconds = 0.35;
    s2.gpuBusySeconds = 0.85;
    s2.gpuUtilSeconds = 0.6;
    meter.record(s1);
    meter.record(s2);
    ActivitySlice total = s1;
    total += s2;
    EXPECT_NEAR(meter.total().joules(), m.energyOf(total).joules(),
                1e-9);
    EXPECT_NEAR(meter.elapsedSeconds(), 1.2, 1e-9);
}

TEST(EnergyMeter, SampledTraceApproximatesTotal)
{
    PowerModel m(PowerSpec{}, true);
    EnergyMeter meter(m, 0.1);  // the paper's 0.1 s interval
    for (int i = 0; i < 10; ++i) {
        ActivitySlice s;
        if (i % 2 == 0)
            s.cpuBusySeconds = 0.5;
        else {
            s.gpuBusySeconds = 0.5;
            s.gpuUtilSeconds = 0.35;
        }
        meter.record(s);
    }
    const auto trace = meter.sampledTrace();
    EXPECT_EQ(trace.size(), 50u);  // 5 s / 0.1 s
    const EnergyReport sampled = meter.sampledEnergy();
    EXPECT_NEAR(sampled.joules(), meter.total().joules(),
                0.05 * meter.total().joules());
}

TEST(EnergyMeter, TraceTimesMonotone)
{
    PowerModel m(PowerSpec{}, false);
    EnergyMeter meter(m, 0.25);
    ActivitySlice s;
    s.cpuBusySeconds = 2.0;
    meter.record(s);
    const auto trace = meter.sampledTrace();
    for (size_t i = 1; i < trace.size(); ++i)
        EXPECT_GT(trace[i].timeSeconds, trace[i - 1].timeSeconds);
}

TEST(GpsUp, IdentityHolds)
{
    // Powerup == Speedup / Greenup by definition.
    const auto m = gpsup(10.0, 2000.0, 4.0, 1200.0);
    EXPECT_NEAR(m.speedup, 2.5, 1e-9);
    EXPECT_NEAR(m.greenup, 2000.0 / 1200.0, 1e-9);
    EXPECT_NEAR(m.powerup, m.speedup / m.greenup, 1e-9);
}

TEST(GpsUp, PowerupBelowOneWhenOptimizedDrawsLess)
{
    // Optimized uses half the time and much less than half energy.
    const auto m = gpsup(10.0, 1000.0, 5.0, 300.0);
    EXPECT_LT(m.powerup, 1.0);
    EXPECT_GT(m.greenup, 1.0);
}

TEST(GpsUp, EnergyReportOverload)
{
    EnergyReport base, opt;
    base.seconds = 8.0;
    base.cpuJoules = 800.0;
    opt.seconds = 2.0;
    opt.cpuJoules = 400.0;
    const auto m = gpsup(base, opt);
    EXPECT_NEAR(m.speedup, 4.0, 1e-9);
    EXPECT_NEAR(m.greenup, 2.0, 1e-9);
    EXPECT_NEAR(m.powerup, 2.0, 1e-9);
}

TEST(GpsUp, RejectsNonPositive)
{
    EXPECT_DEATH(gpsup(0.0, 1.0, 1.0, 1.0), "non-positive");
}

} // namespace
} // namespace power
} // namespace gnnbench
