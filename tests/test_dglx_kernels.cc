/** Tests for the dglx fused kernels against dense references. */

#include <gtest/gtest.h>

#include <cmath>

#include "gnnbench/core/rng.h"
#include "gnnbench/dglx/kernels.h"
#include "gnnbench/graph/convert.h"
#include "gnnbench/graph/generate.h"

namespace gnnbench {
namespace dglx {
namespace {

using core::Tensor;

/** Dense adjacency from a csc-style adjacency with weights. */
Tensor
denseAdj(const graph::CsrGraph &csc, const float *w)
{
    Tensor a(csc.numRows, csc.numCols);
    EdgeId e = 0;
    for (NodeId r = 0; r < csc.numRows; ++r)
        for (EdgeId i = csc.indptr[r]; i < csc.indptr[r + 1]; ++i, ++e)
            a(r, csc.indices[i]) += w ? w[e] : 1.0f;
    return a;
}

graph::CsrGraph
randomCsc(NodeId n, EdgeId m, uint64_t seed)
{
    core::Rng rng(seed);
    return graph::cooToCsc(
        graph::symmetrize(graph::rmat(n, m, rng), false));
}

TEST(Gspmm, SumMatchesDense)
{
    auto csc = randomCsc(30, 120, 1);
    core::Rng rng(2);
    Tensor x = Tensor::randn(30, 7, rng);
    KernelCtx ctx;
    Tensor fused = gspmm(csc, x, Reducer::Sum, nullptr, ctx);
    Tensor dense = core::ops::matmul(denseAdj(csc, nullptr), x);
    for (int64_t i = 0; i < fused.numel(); ++i)
        ASSERT_NEAR(fused.data()[i], dense.data()[i], 1e-3f);
}

TEST(Gspmm, WeightedSumMatchesDense)
{
    auto csc = randomCsc(25, 100, 3);
    core::Rng rng(4);
    Tensor x = Tensor::randn(25, 5, rng);
    std::vector<float> w(csc.numEdges());
    for (auto &v : w)
        v = rng.uniformFloat() - 0.5f;
    KernelCtx ctx;
    Tensor fused = gspmm(csc, x, Reducer::Sum, w.data(), ctx);
    Tensor dense = core::ops::matmul(denseAdj(csc, w.data()), x);
    for (int64_t i = 0; i < fused.numel(); ++i)
        ASSERT_NEAR(fused.data()[i], dense.data()[i], 1e-3f);
}

TEST(Gspmm, MeanDividesByDegree)
{
    auto csc = randomCsc(20, 80, 5);
    core::Rng rng(6);
    Tensor x = Tensor::randn(20, 3, rng);
    KernelCtx ctx;
    Tensor sum = gspmm(csc, x, Reducer::Sum, nullptr, ctx);
    Tensor mean = gspmm(csc, x, Reducer::Mean, nullptr, ctx);
    for (NodeId r = 0; r < 20; ++r) {
        const EdgeId deg = csc.degree(r);
        for (int64_t j = 0; j < 3; ++j) {
            if (deg > 0)
                ASSERT_NEAR(mean(r, j), sum(r, j) / deg, 1e-4f);
            else
                ASSERT_EQ(mean(r, j), 0.0f);
        }
    }
}

TEST(Gspmm, MaxPicksMaximum)
{
    // Star: node 0 receives from 1, 2, 3.
    graph::CooGraph coo;
    coo.numNodes = 4;
    coo.addEdge(1, 0);
    coo.addEdge(2, 0);
    coo.addEdge(3, 0);
    auto csc = graph::cooToCsc(coo);
    Tensor x(4, 2);
    x(1, 0) = 5;
    x(2, 0) = -1;
    x(3, 0) = 2;
    x(1, 1) = -7;
    x(2, 1) = -3;
    x(3, 1) = -9;
    KernelCtx ctx;
    Tensor out = gspmm(csc, x, Reducer::Max, nullptr, ctx);
    EXPECT_EQ(out(0, 0), 5.0f);
    EXPECT_EQ(out(0, 1), -3.0f);
    // Isolated rows (no in-edges) are zero-filled.
    EXPECT_EQ(out(1, 0), 0.0f);
}

TEST(GspmmScatter, EqualsTransposeSpmm)
{
    auto csc = randomCsc(28, 110, 7);
    core::Rng rng(8);
    Tensor x = Tensor::randn(28, 6, rng);
    std::vector<float> w(csc.numEdges());
    for (auto &v : w)
        v = rng.uniformFloat();
    KernelCtx ctx;
    Tensor scattered = gspmmScatter(csc, x, w.data(), ctx);
    Tensor dense = core::ops::matmul(
        core::ops::transpose(denseAdj(csc, w.data())), x);
    for (int64_t i = 0; i < scattered.numel(); ++i)
        ASSERT_NEAR(scattered.data()[i], dense.data()[i], 1e-3f);
}

TEST(Gsddmm, AddMatchesEndpoints)
{
    auto csc = randomCsc(15, 60, 9);
    core::Rng rng(10);
    Tensor a = Tensor::randn(15, 2, rng);
    Tensor b = Tensor::randn(15, 2, rng);
    KernelCtx ctx;
    Tensor out = gsddmmAdd(csc, a, b, ctx);
    EdgeId e = 0;
    for (NodeId d = 0; d < 15; ++d)
        for (EdgeId i = csc.indptr[d]; i < csc.indptr[d + 1];
             ++i, ++e) {
            const NodeId s = csc.indices[i];
            ASSERT_NEAR(out(e, 0), a(d, 0) + b(s, 0), 1e-5f);
            ASSERT_NEAR(out(e, 1), a(d, 1) + b(s, 1), 1e-5f);
        }
}

TEST(Gsddmm, DotMatchesEndpoints)
{
    auto csc = randomCsc(12, 48, 11);
    core::Rng rng(12);
    Tensor a = Tensor::randn(12, 4, rng);
    Tensor b = Tensor::randn(12, 4, rng);
    KernelCtx ctx;
    Tensor out = gsddmmDot(csc, a, b, ctx);
    EdgeId e = 0;
    for (NodeId d = 0; d < 12; ++d)
        for (EdgeId i = csc.indptr[d]; i < csc.indptr[d + 1];
             ++i, ++e) {
            const NodeId s = csc.indices[i];
            float dot = 0;
            for (int64_t j = 0; j < 4; ++j)
                dot += a(d, j) * b(s, j);
            ASSERT_NEAR(out(e, 0), dot, 1e-4f);
        }
}

TEST(EdgeSoftmax, SumsToOnePerDestination)
{
    auto csc = randomCsc(20, 100, 13);
    core::Rng rng(14);
    Tensor scores = Tensor::randn(csc.numEdges(), 1, rng, 2.0f);
    KernelCtx ctx;
    Tensor att = edgeSoftmax(csc, scores, ctx);
    for (NodeId d = 0; d < 20; ++d) {
        if (csc.degree(d) == 0)
            continue;
        double z = 0;
        for (EdgeId e = csc.indptr[d]; e < csc.indptr[d + 1]; ++e)
            z += att(e, 0);
        ASSERT_NEAR(z, 1.0, 1e-4);
    }
}

TEST(GspmmEdgeScalar, MatchesWeightedSpmm)
{
    auto csc = randomCsc(18, 70, 15);
    core::Rng rng(16);
    Tensor x = Tensor::randn(18, 5, rng);
    Tensor att = Tensor::randn(csc.numEdges(), 1, rng);
    std::vector<float> w(csc.numEdges());
    for (EdgeId e = 0; e < csc.numEdges(); ++e)
        w[e] = att(e, 0);
    KernelCtx ctx;
    Tensor a = gspmmEdgeScalar(csc, x, att, ctx);
    Tensor b = gspmm(csc, x, Reducer::Sum, w.data(), ctx);
    for (int64_t i = 0; i < a.numel(); ++i)
        ASSERT_NEAR(a.data()[i], b.data()[i], 1e-4f);
}

TEST(GsddmmAttnV2, MatchesUnfusedReference)
{
    auto csc = randomCsc(10, 40, 17);
    core::Rng rng(18);
    Tensor zl = Tensor::randn(10, 3, rng);
    Tensor zr = Tensor::randn(10, 3, rng);
    Tensor a = Tensor::randn(1, 3, rng);
    KernelCtx ctx;
    Tensor out = gsddmmAttnV2(csc, zl, zr, a, 0.2f, ctx);
    EdgeId e = 0;
    for (NodeId d = 0; d < 10; ++d)
        for (EdgeId i = csc.indptr[d]; i < csc.indptr[d + 1];
             ++i, ++e) {
            const NodeId s = csc.indices[i];
            float acc = 0;
            for (int64_t j = 0; j < 3; ++j) {
                float v = zl(d, j) + zr(s, j);
                if (v < 0)
                    v *= 0.2f;
                acc += a(0, j) * v;
            }
            ASSERT_NEAR(out(e, 0), acc, 1e-4f);
        }
}

TEST(SpmmVar, GradientMatchesTranspose)
{
    // loss = sum(A x); d/dx = A^T 1.
    auto csc = randomCsc(16, 64, 19);
    auto csr = graph::csrTranspose(csc);
    core::Rng rng(20);
    KernelCtx ctx;
    core::ag::Var x =
        core::ag::leaf(Tensor::randn(16, 3, rng), true);
    core::ag::Var y =
        spmmVar(csc, nullptr, borrow(csr), nullptr, x, ctx);
    Tensor seed = Tensor::full(16, 3, 1.0f);
    core::ag::backward(y, &seed);
    Tensor expected = core::ops::matmul(
        core::ops::transpose(denseAdj(csc, nullptr)),
        Tensor::full(16, 3, 1.0f));
    for (int64_t i = 0; i < expected.numel(); ++i)
        ASSERT_NEAR(x->grad.data()[i], expected.data()[i], 1e-3f);
}

TEST(SpmmScatterBwdVar, GradientMatchesTranspose)
{
    auto csc = randomCsc(14, 56, 21);
    core::Rng rng(22);
    KernelCtx ctx;
    core::ag::Var x =
        core::ag::leaf(Tensor::randn(14, 2, rng), true);
    core::ag::Var y = spmmScatterBwdVar(borrow(csc), nullptr, x, ctx);
    Tensor seed = Tensor::full(14, 2, 1.0f);
    core::ag::backward(y, &seed);
    Tensor expected = core::ops::matmul(
        core::ops::transpose(denseAdj(csc, nullptr)),
        Tensor::full(14, 2, 1.0f));
    for (int64_t i = 0; i < expected.numel(); ++i)
        ASSERT_NEAR(x->grad.data()[i], expected.data()[i], 1e-3f);
}

TEST(Kernels, GpuModeChargesSession)
{
    auto csc = randomCsc(50, 500, 23);
    core::Rng rng(24);
    Tensor x = Tensor::randn(50, 64, rng);
    device::Session session;
    KernelCtx ctx{&session, device::DeviceType::GPU, Costs{}};
    gspmm(csc, x, Reducer::Sum, nullptr, ctx);
    const auto snap = session.snapshot();
    EXPECT_GT(snap.modeled.gpuSeconds, 0.0);
    EXPECT_GT(snap.excludedWall, 0.0);
}

TEST(Kernels, GemmRoutesThroughDevice)
{
    core::Rng rng(25);
    Tensor a = Tensor::randn(8, 8, rng);
    Tensor b = Tensor::randn(8, 8, rng);
    device::Session session;
    KernelCtx cpu_ctx{&session, device::DeviceType::CPU, Costs{}};
    Tensor c1 = gemm(a, b, cpu_ctx);
    Tensor c2 = core::ops::matmul(a, b);
    for (int64_t i = 0; i < c1.numel(); ++i)
        ASSERT_EQ(c1.data()[i], c2.data()[i]);
}

} // namespace
} // namespace dglx
} // namespace gnnbench
