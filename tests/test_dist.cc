/**
 * Tests for the partition-parallel training stack (dist/): sharding
 * invariants, the exact allreduce, the feature data store, and the
 * end-to-end determinism matrix — N-rank training must be
 * bit-identical to 1-rank training at every thread count.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "gnnbench/check/property.h"
#include "gnnbench/core/parallel.h"
#include "gnnbench/dist/data_store.h"
#include "gnnbench/dist/exact.h"
#include "gnnbench/dist/shard.h"
#include "gnnbench/dist/trainer.h"
#include "gnnbench/graph/convert.h"
#include "test_support.h"

namespace gnnbench {
namespace dist {
namespace {

/**
 * A small synthetic node-classification dataset with directed extra
 * edges (so haloIn != haloOut), self-loops, and a ring keeping every
 * node reachable.
 */
graph::Dataset
makeDataset(NodeId n, int64_t f, int32_t classes, uint64_t seed)
{
    core::Rng rng(seed);
    graph::Dataset ds;
    ds.info.name = "synthetic";
    ds.info.numNodes = n;
    ds.info.numFeatures = f;
    ds.info.numClasses = classes;
    ds.graph.numNodes = n;
    for (NodeId v = 0; v < n; ++v) {
        ds.graph.addEdge(v, (v + 1) % n);
        ds.graph.addEdge((v + 1) % n, v);
    }
    for (EdgeId e = 0; e < 3 * static_cast<EdgeId>(n); ++e)
        ds.graph.addEdge(
            static_cast<NodeId>(rng.uniformInt(n)),
            static_cast<NodeId>(rng.uniformInt(n)));
    for (int i = 0; i < 5; ++i) {
        const NodeId v = static_cast<NodeId>(rng.uniformInt(n));
        ds.graph.addEdge(v, v);
    }
    ds.info.numEdges = ds.graph.numEdges();
    ds.features = core::Tensor::randn(n, f, rng, 0.5f);
    ds.labels.resize(static_cast<size_t>(n));
    for (auto &l : ds.labels)
        l = static_cast<int32_t>(rng.uniformInt(
            static_cast<uint64_t>(classes)));
    for (NodeId v = 0; v < n; ++v)
        if (rng.uniformInt(10) < 6)
            ds.trainIdx.push_back(v);
    return ds;
}

void
expectBitEqual(const core::Tensor &a, const core::Tensor &b,
               const char *what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.bytes()))
        << what << ": weight bits differ";
}

// ---------------------------------------------------------------------------
// The tentpole contract: the determinism matrix.

TEST(DistTrainer, RankThreadDeterminismMatrix)
{
    const graph::Dataset ds =
        makeDataset(120, 12, 4, testenv::seed());
    DistConfig cfg;
    cfg.epochs = 3;
    cfg.hiddenDim = 16;
    cfg.numRanks = 1;
    const DistResult base = trainDistributedSage(ds, cfg);
    ASSERT_EQ(base.weights.size(),
              static_cast<size_t>(kNumDistWeights));
    ASSERT_EQ(base.epochs.size(), 3u);

    const int save_threads = core::parallel::numThreads();
    for (int ranks : {1, 2, 4, 8}) {
        for (int threads : {1, 4}) {
            core::parallel::setNumThreads(threads);
            cfg.numRanks = ranks;
            const DistResult r = trainDistributedSage(ds, cfg);
            core::parallel::setNumThreads(save_threads);
            SCOPED_TRACE("ranks=" + std::to_string(ranks) +
                         " threads=" + std::to_string(threads));
            ASSERT_EQ(r.weights.size(), base.weights.size());
            for (int k = 0; k < kNumDistWeights; ++k)
                expectBitEqual(r.weights[static_cast<size_t>(k)],
                               base.weights[static_cast<size_t>(k)],
                               kDistWeightNames[k]);
            // Loss/accuracy go through the exact accumulator too:
            // the doubles must match exactly, not approximately.
            ASSERT_EQ(r.epochs.size(), base.epochs.size());
            for (size_t e = 0; e < r.epochs.size(); ++e) {
                EXPECT_EQ(r.epochs[e].loss, base.epochs[e].loss);
                EXPECT_EQ(r.epochs[e].accuracy,
                          base.epochs[e].accuracy);
            }
        }
    }
}

TEST(DistTrainer, LossDecreases)
{
    // Bit-identity cannot catch a consistently-wrong gradient; the
    // hand-rolled backward must actually descend.
    const graph::Dataset ds =
        makeDataset(150, 10, 3, testenv::seed() + 1);
    DistConfig cfg;
    cfg.numRanks = 2;
    cfg.epochs = 10;
    cfg.hiddenDim = 16;
    cfg.lr = 5e-3f;
    const DistResult r = trainDistributedSage(ds, cfg);
    EXPECT_LT(r.epochs.back().loss, r.epochs.front().loss);
}

TEST(DistTrainer, CommAccountingScalesWithRanks)
{
    const graph::Dataset ds =
        makeDataset(200, 8, 3, testenv::seed() + 2);
    DistConfig cfg;
    cfg.epochs = 2;
    cfg.hiddenDim = 8;

    cfg.numRanks = 1;
    const DistResult r1 = trainDistributedSage(ds, cfg);
    EXPECT_EQ(r1.haloMessages, 0u);
    EXPECT_EQ(r1.haloBytes, 0u);
    EXPECT_EQ(r1.allreduceBytes, 0u);
    EXPECT_EQ(r1.cutEdges, 0u);

    cfg.numRanks = 4;
    const DistResult r4 = trainDistributedSage(ds, cfg);
    EXPECT_GT(r4.haloMessages, 0u);
    EXPECT_GT(r4.haloBytes, 0u);
    EXPECT_GT(r4.allreduceBytes, 0u);
    EXPECT_GT(r4.cutEdges, 0u);
    EXPECT_GT(r4.modeledSeconds, 0.0);
    EXPECT_GT(r4.commSeconds, 0.0);
    // With the default unbounded store, every halo feature row is
    // fetched once (epoch 1) and served from cache after: 2 epochs
    // give a hit rate of exactly 1/2.
    EXPECT_EQ(r4.datastoreEvictions, 0u);
    EXPECT_DOUBLE_EQ(r4.datastoreHitRate, 0.5);
}

// ---------------------------------------------------------------------------
// Sharding: hand-built partitions.

TEST(DistShard, HaloRoundTripHandBuilt)
{
    // Asymmetric 6-node graph across 2 ranks, so haloIn != haloOut:
    //   rank0 owns {0,1,2}, rank1 owns {3,4,5}
    //   local edges: 0->1, 1->2, 3->4;  self-loops: 0->0, 5->5
    //   cut edges:   2->3 (into rank1), 4->1 (into rank0)
    graph::CooGraph coo;
    coo.numNodes = 6;
    coo.addEdge(0, 1);
    coo.addEdge(1, 2);
    coo.addEdge(3, 4);
    coo.addEdge(0, 0);
    coo.addEdge(5, 5);
    coo.addEdge(2, 3);
    coo.addEdge(4, 1);
    const graph::CsrGraph csr = graph::cooToCsr(coo);
    const graph::CsrGraph csc = graph::cooToCsc(coo);

    const ShardedGraph sharded =
        shardGraph(csr, csc, 2, {0, 0, 0, 1, 1, 1});
    EXPECT_EQ(sharded.cutEdges, 2u);

    const RankShard &r0 = sharded.ranks[0];
    const RankShard &r1 = sharded.ranks[1];
    EXPECT_EQ(r0.localNodes, (std::vector<NodeId>{0, 1, 2}));
    EXPECT_EQ(r0.haloIn, (std::vector<NodeId>{4}));
    EXPECT_EQ(r0.haloOut, (std::vector<NodeId>{3}));
    EXPECT_EQ(r1.localNodes, (std::vector<NodeId>{3, 4, 5}));
    EXPECT_EQ(r1.haloIn, (std::vector<NodeId>{2}));
    EXPECT_EQ(r1.haloOut, (std::vector<NodeId>{1}));

    const check::Result chk = checkShard(csr, csc, sharded);
    EXPECT_TRUE(chk.ok) << chk.message;

    // Round trip: every local CSC row, with combined columns mapped
    // back to global ids, must reproduce the global CSC row.
    for (const RankShard &shard : sharded.ranks) {
        for (NodeId i = 0; i < shard.numLocal(); ++i) {
            const NodeId u = shard.localNodes[i];
            ASSERT_EQ(shard.csc.degree(i), csc.degree(u));
            for (EdgeId e = shard.csc.indptr[i];
                 e < shard.csc.indptr[i + 1]; ++e) {
                const NodeId col =
                    shard.csc.indices[static_cast<size_t>(e)];
                const NodeId global =
                    col < shard.numLocal()
                        ? shard.localNodes[col]
                        : shard.haloIn[static_cast<size_t>(
                              col - shard.numLocal())];
                const EdgeId ge =
                    csc.indptr[u] + (e - shard.csc.indptr[i]);
                EXPECT_EQ(global,
                          csc.indices[static_cast<size_t>(ge)])
                    << "row order not preserved at node " << u;
            }
        }
    }
}

TEST(DistShard, PropertyShardInvariants)
{
    // checkShard over the generated case families (including the
    // partition-shaped 'clustered' one); failures shrink to a repro
    // seed via the gnncheck harness.
    const check::Property prop =
        [](const check::GraphCase &c) -> check::Result {
        const graph::CsrGraph csr = graph::cooToCsr(c.coo);
        const graph::CsrGraph csc = graph::cooToCsc(c.coo);
        core::Rng rng(c.seed ^ 0x5eedULL);
        for (int ranks : {2, 3}) {
            const ShardedGraph sharded =
                partitionAndShard(csr, csc, ranks, rng);
            const check::Result r = checkShard(csr, csc, sharded);
            if (!r.ok)
                return r;
        }
        return check::Result::pass();
    };
    check::PropertyOptions opts;
    opts.numCases = 120;
    opts.baseSeed = testenv::seed();
    EXPECT_TRUE(
        check::checkProperty("dist-shard-invariants", prop, opts));
}

// ---------------------------------------------------------------------------
// Exact allreduce.

TEST(DistExact, AllreduceOrderInvariance)
{
    core::Rng rng(testenv::seed() + 7);
    constexpr int kParts = 5;
    ExactTensor parts[kParts];
    for (auto &p : parts) {
        p = ExactTensor(3, 4);
        for (int t = 0; t < 50; ++t)
            p.addProduct(
                static_cast<int64_t>(rng.uniformInt(3)),
                static_cast<int64_t>(rng.uniformInt(4)),
                static_cast<float>(rng.normal()) * 10.0f,
                static_cast<float>(rng.normal()) * 0.01f);
    }

    const int orders[][kParts] = {{0, 1, 2, 3, 4},
                                  {4, 3, 2, 1, 0},
                                  {2, 0, 4, 1, 3}};
    ExactTensor merged[3];
    for (int o = 0; o < 3; ++o) {
        merged[o] = ExactTensor(3, 4);
        for (int i : orders[o])
            merged[o].merge(parts[i]);
    }
    for (int o = 1; o < 3; ++o)
        for (size_t i = 0; i < 12; ++i)
            EXPECT_TRUE(merged[0].raw(i) == merged[o].raw(i))
                << "order " << o << " word " << i;

    ExactScalar sa, sb;
    sa.add(1e10);
    sa.add(-3.5e-20);
    sa.add(2.25);
    sb.add(2.25);
    sb.add(1e10);
    sb.add(-3.5e-20);
    EXPECT_EQ(sa.value(), sb.value());
}

TEST(DistExact, RoundTripsSimpleValues)
{
    EXPECT_EQ(fromFixed(toFixed(1.5)), 1.5);
    EXPECT_EQ(fromFixed(toFixed(-2.75)), -2.75);
    EXPECT_EQ(fromFixed(toFixed(0.0)), 0.0);
    // Wraparound of mixed-sign partials cancels exactly.
    ExactScalar s;
    s.add(-123.456);
    s.add(123.456);
    EXPECT_EQ(s.value(), 0.0);
}

// ---------------------------------------------------------------------------
// Feature data store.

/** 8-node graph: rank0 owns {0..3}; 4..7 each point into rank 0, so
 *  rank0's haloIn is exactly {4,5,6,7}. */
ShardedGraph
starIntoRankZero(graph::CsrGraph *csr, graph::CsrGraph *csc)
{
    graph::CooGraph coo;
    coo.numNodes = 8;
    for (NodeId v = 4; v < 8; ++v)
        coo.addEdge(v, v - 4);
    coo.addEdge(0, 1);
    coo.addEdge(4, 5);
    *csr = graph::cooToCsr(coo);
    *csc = graph::cooToCsc(coo);
    return shardGraph(*csr, *csc, 2, {0, 0, 0, 0, 1, 1, 1, 1});
}

TEST(DistStore, CachesHaloRowsAcrossEpochs)
{
    graph::CsrGraph csr, csc;
    const ShardedGraph sharded = starIntoRankZero(&csr, &csc);
    ASSERT_EQ(sharded.ranks[0].haloIn,
              (std::vector<NodeId>{4, 5, 6, 7}));

    core::Rng rng(testenv::seed() + 3);
    const core::Tensor features = core::Tensor::randn(8, 6, rng);
    FeatureStore store(features, sharded);
    ModeledComm comm(2, {});

    const core::Tensor &buf = store.fetchHalo(0, &comm);
    ASSERT_EQ(buf.rows(), 4);
    for (int64_t h = 0; h < 4; ++h)
        EXPECT_EQ(0, std::memcmp(buf.row(h), features.row(4 + h),
                                 6 * sizeof(float)));
    EXPECT_EQ(store.hits(), 0u);
    EXPECT_EQ(store.misses(), 4u);
    EXPECT_EQ(store.fetchBytes(), 4 * store.rowBytes());
    // All four rows come from rank 1: one modeled message.
    EXPECT_EQ(comm.haloMessages(), 1u);
    EXPECT_EQ(comm.haloBytes(), 4 * store.rowBytes());

    store.fetchHalo(0, &comm);
    EXPECT_EQ(store.hits(), 4u);
    EXPECT_EQ(store.misses(), 4u);
    EXPECT_EQ(store.evictions(), 0u);
    EXPECT_EQ(store.fetchBytes(), 4 * store.rowBytes());
    EXPECT_EQ(comm.haloMessages(), 1u); // no new traffic
    EXPECT_DOUBLE_EQ(store.hitRate(), 0.5);
    EXPECT_EQ(store.preloadBytes(), 8 * store.rowBytes());
}

TEST(DistStore, UndersizedCacheEvictsLru)
{
    graph::CsrGraph csr, csc;
    const ShardedGraph sharded = starIntoRankZero(&csr, &csc);
    core::Rng rng(testenv::seed() + 4);
    const core::Tensor features = core::Tensor::randn(8, 6, rng);

    // Room for 2 of the 4 halo rows: the ascending scan thrashes the
    // LRU cache, so every epoch re-fetches everything.
    FeatureStore store(features, sharded, 2 * 6 * sizeof(float));
    ASSERT_EQ(store.rowBytes(), 24u);

    const core::Tensor &buf = store.fetchHalo(0, nullptr);
    EXPECT_EQ(store.misses(), 4u);
    EXPECT_EQ(store.evictions(), 2u); // 6 evicts 4, 7 evicts 5
    // Evicted rows stay valid in the epoch's working buffer.
    for (int64_t h = 0; h < 4; ++h)
        EXPECT_EQ(0, std::memcmp(buf.row(h), features.row(4 + h),
                                 6 * sizeof(float)));

    store.fetchHalo(0, nullptr);
    EXPECT_EQ(store.hits(), 0u);
    EXPECT_EQ(store.misses(), 8u);
    EXPECT_EQ(store.evictions(), 6u);
    EXPECT_EQ(store.fetchBytes(), 8 * store.rowBytes());
    EXPECT_DOUBLE_EQ(store.hitRate(), 0.0);
}

TEST(DistStore, TrainerBitIdenticalUnderEviction)
{
    // The cache budget changes traffic accounting but must never
    // change the training math.
    const graph::Dataset ds =
        makeDataset(100, 8, 3, testenv::seed() + 5);
    DistConfig cfg;
    cfg.numRanks = 4;
    cfg.epochs = 2;
    cfg.hiddenDim = 8;
    const DistResult full = trainDistributedSage(ds, cfg);
    cfg.haloCacheBytes = 2 * 8 * 4; // two feature rows
    const DistResult tiny = trainDistributedSage(ds, cfg);
    for (int k = 0; k < kNumDistWeights; ++k)
        expectBitEqual(tiny.weights[static_cast<size_t>(k)],
                       full.weights[static_cast<size_t>(k)],
                       kDistWeightNames[k]);
    EXPECT_GT(tiny.datastoreEvictions, 0u);
    EXPECT_GE(tiny.datastoreFetchBytes, full.datastoreFetchBytes);
}

// ---------------------------------------------------------------------------
// Modeled interconnect.

TEST(DistComm, CostModelArithmetic)
{
    InterconnectSpec spec;
    spec.latencySeconds = 1e-6;
    spec.bandwidthBytesPerSec = 1e9;
    ModeledComm comm(4, spec);

    comm.message(0, 1, 1000, "x");
    EXPECT_EQ(comm.haloMessages(), 1u);
    EXPECT_EQ(comm.haloBytes(), 1000u);
    EXPECT_DOUBLE_EQ(comm.rankSeconds(1), 1e-6 + 1000.0 / 1e9);
    EXPECT_DOUBLE_EQ(comm.rankSeconds(0), 0.0);

    // Ring allreduce: 2(N-1) steps of (alpha + (b/N)/beta) per rank.
    comm.allReduce(4000, "grads");
    const double step = 1e-6 + (4000.0 / 4) / 1e9;
    EXPECT_DOUBLE_EQ(comm.rankSeconds(2), 6.0 * step);
    EXPECT_EQ(comm.allreduceBytes(), 2u * 3u * 4000u);

    comm.barrier();
    EXPECT_DOUBLE_EQ(comm.rankSeconds(0), comm.makespan());

    comm.compute(3, 2e9, "work");
    EXPECT_DOUBLE_EQ(comm.makespan() - comm.rankSeconds(0), 0.1);
}

} // namespace
} // namespace dist
} // namespace gnnbench
