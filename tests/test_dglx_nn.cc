/** Tests for the dglx convolution layers. */

#include <gtest/gtest.h>

#include <cmath>

#include "gnnbench/core/optim.h"
#include "gnnbench/dglx/nn.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/graph/generate.h"

namespace gnnbench {
namespace dglx {
namespace {

namespace ag = core::ag;
using core::Tensor;

Graph
makeGraph(NodeId n, EdgeId m, uint64_t seed)
{
    core::Rng rng(seed);
    return Graph(graph::symmetrize(graph::rmat(n, m, rng), false));
}

TEST(DglxNn, AllKindsForwardShapes)
{
    Graph g = makeGraph(60, 300, 1);
    KernelCtx ctx;
    core::Rng rng(2);
    Tensor x0 = Tensor::randn(60, 16, rng);
    for (ConvKind kind : allConvKinds()) {
        core::Rng wrng(3);
        auto conv = makeConv(kind, 16, 8, wrng, false);
        // GCN2 is dimension-preserving: operate at dim 8 on a
        // projected input, as the bench does.
        Tensor in = x0.clone();
        if (kind == ConvKind::Gcn2) {
            core::Rng prng(4);
            in = core::ops::matmul(x0,
                                   Tensor::glorot(16, 8, prng));
            static_cast<Gcn2Conv *>(conv.get())
                ->setInitial(ag::constant(in.clone()));
        }
        ag::Var out = conv->forward(
            g, ag::constant(in.clone()), ctx);
        EXPECT_EQ(out->value.rows(), 60) << convKindName(kind);
        EXPECT_EQ(out->value.cols(), 8) << convKindName(kind);
        EXPECT_TRUE(std::isfinite(out->value.sum()))
            << convKindName(kind);
    }
}

TEST(DglxNn, GcnMatchesDenseReference)
{
    // Tiny graph, hand-computed normalized propagation.
    graph::CooGraph coo;
    coo.numNodes = 3;
    coo.addEdge(0, 1);
    Graph g(graph::symmetrize(coo, false));  // edge 0<->1, node 2 isolated
    core::Rng wrng(5);
    GcnConv conv(2, 2, wrng);
    KernelCtx ctx;
    Tensor x(3, 2);
    x(0, 0) = 1;
    x(1, 0) = 2;
    x(2, 0) = 3;
    ag::Var out = conv.forward(g, ag::constant(x.clone()), ctx);
    // Reference: H = (A_norm + D_self) X W + b with
    // w01 = 1/sqrt(2*2) = 0.5, self0 = 1/2, self2 = 1/1.
    const Tensor &w = conv.params()[0]->value;
    Tensor xw = core::ops::matmul(x, w);
    Tensor expect(3, 2);
    for (int64_t j = 0; j < 2; ++j) {
        expect(0, j) = 0.5f * xw(1, j) + 0.5f * xw(0, j);
        expect(1, j) = 0.5f * xw(0, j) + 0.5f * xw(1, j);
        expect(2, j) = 1.0f * xw(2, j);
    }
    for (int64_t i = 0; i < 3; ++i)
        for (int64_t j = 0; j < 2; ++j)
            ASSERT_NEAR(out->value(i, j), expect(i, j), 1e-4f);
}

TEST(DglxNn, SageBlockMatchesFullGraphOnFullFanout)
{
    // When the fanout exceeds every degree, block forward over all
    // nodes equals the full-graph forward.
    Graph g = makeGraph(40, 200, 6);
    core::Rng wrng(7);
    SageConv conv(8, 4, wrng);
    KernelCtx ctx;
    core::Rng xrng(8);
    Tensor x = Tensor::randn(40, 8, xrng);

    ag::Var full =
        conv.forward(g, ag::constant(x.clone()), ctx);

    NeighborSampler sampler(g, {1000}, core::Rng(9));
    std::vector<NodeId> seeds(40);
    for (NodeId i = 0; i < 40; ++i)
        seeds[i] = i;
    auto smp = sampler.sample(seeds);
    Tensor x_src =
        core::ops::gatherRows(x, smp.blocks[0].srcNodes);
    ag::Var blk = conv.forwardBlock(
        smp.blocks[0], ag::constant(std::move(x_src)), ctx);

    for (NodeId i = 0; i < 40; ++i)
        for (int64_t j = 0; j < 4; ++j)
            ASSERT_NEAR(blk->value(i, j), full->value(i, j), 1e-3f)
                << "node " << i;
}

TEST(DglxNn, InducedForwardMatchesFullOnWholeGraph)
{
    Graph g = makeGraph(30, 150, 10);
    core::Rng wrng(11);
    GcnConv conv(6, 5, wrng);
    KernelCtx ctx;
    core::Rng xrng(12);
    Tensor x = Tensor::randn(30, 6, xrng);

    ag::Var full = conv.forward(g, ag::constant(x.clone()), ctx);
    const auto norm = computeGcnNorm(g.csr());
    const auto self = computeSelfScale(g.csr());
    ag::Var ind = conv.forwardInduced(
        g.csr(), norm, self, ag::constant(x.clone()), ctx);
    for (int64_t i = 0; i < full->value.numel(); ++i)
        ASSERT_NEAR(full->value.data()[i], ind->value.data()[i],
                    1e-3f);
}

TEST(DglxNn, TrainingReducesLoss)
{
    // Two-layer GCN on a community-labeled graph must fit the
    // training signal.
    core::Rng rng(13);
    graph::CooGraph coo =
        graph::symmetrize(graph::rmat(200, 1200, rng), false);
    Graph g(coo);
    auto labels = graph::communityLabels(coo, 4, rng, 0.0);
    Tensor x = Tensor::randn(200, 8, rng);
    for (NodeId v = 0; v < 200; ++v)
        x(v, labels[v] * 2) += 2.0f;  // separable signal

    core::Rng wrng(14);
    GcnConv l1(8, 16, wrng);
    GcnConv l2(16, 4, wrng);
    std::vector<ag::Var> params = l1.params();
    params.insert(params.end(), l2.params().begin(),
                  l2.params().end());
    core::Adam opt(params, 0.01f);
    KernelCtx ctx;

    float first_loss = 0, last_loss = 0;
    for (int step = 0; step < 30; ++step) {
        ag::Var xv = ag::constant(x.clone());
        ag::Var h = ag::relu(l1.forward(g, xv, ctx));
        ag::Var out = l2.forward(g, h, ctx);
        ag::Var loss = ag::nllLoss(ag::logSoftmax(out), labels, {});
        if (step == 0)
            first_loss = loss->value(0, 0);
        last_loss = loss->value(0, 0);
        opt.zeroGrad();
        ag::backward(loss);
        opt.step();
    }
    EXPECT_LT(last_loss, 0.6f * first_loss);
}

TEST(DglxNn, SgEqualsRepeatedPropagationPlusLinear)
{
    Graph g = makeGraph(25, 120, 15);
    core::Rng wrng(16);
    SgConv conv(4, 3, 2, wrng);
    KernelCtx ctx;
    core::Rng xrng(17);
    Tensor x = Tensor::randn(25, 4, xrng);
    ag::Var out = conv.forward(g, ag::constant(x.clone()), ctx);

    // Manual reference: P^2 x W (K = 2).
    auto propagate = [&](const Tensor &v) {
        Tensor agg = gspmm(g.csc(), v, Reducer::Sum,
                           g.gcnNormCsc().data(), KernelCtx{});
        Tensor self = v.clone();
        for (NodeId i = 0; i < 25; ++i) {
            const float s =
                1.0f / (static_cast<float>(g.inDegrees()[i]) + 1.0f);
            for (int64_t j = 0; j < v.cols(); ++j)
                self(i, j) *= s;
        }
        return core::ops::add(agg, self);
    };
    Tensor ref = propagate(propagate(x));
    ref = core::ops::matmul(ref, conv.params()[0]->value);
    for (int64_t i = 0; i < ref.numel(); ++i)
        ASSERT_NEAR(out->value.data()[i], ref.data()[i], 1e-3f);
}

TEST(DglxNn, AttentionRowsAreConvexCombinations)
{
    // GAT output rows must lie within the span of the transformed
    // inputs: check row sums bounded by max |z| * F.
    Graph g = makeGraph(30, 200, 18);
    core::Rng wrng(19);
    GatConv conv(5, 4, wrng, false);
    KernelCtx ctx;
    core::Rng xrng(20);
    Tensor x = Tensor::randn(30, 5, xrng);
    ag::Var out = conv.forward(g, ag::constant(x.clone()), ctx);
    EXPECT_TRUE(std::isfinite(out->value.sum()));
    Tensor z = core::ops::matmul(x, conv.params()[0]->value);
    EXPECT_LE(out->value.maxAbs(), z.maxAbs() + 1e-4f);
}

TEST(DglxNn, ParamBytesCountsAll)
{
    core::Rng rng(21);
    SageConv conv(10, 6, rng);
    // self W (10x6) + neigh W (10x6) + bias (1x6), 4 bytes each.
    EXPECT_EQ(conv.paramBytes(), (60 + 60 + 6) * 4u);
}

TEST(DglxNn, TrainableFlagControlsGrad)
{
    core::Rng rng(22);
    GcnConv trainable(4, 4, rng, true);
    GcnConv frozen(4, 4, rng, false);
    EXPECT_TRUE(trainable.params()[0]->requiresGrad);
    EXPECT_FALSE(frozen.params()[0]->requiresGrad);
}

} // namespace
} // namespace dglx
} // namespace gnnbench
