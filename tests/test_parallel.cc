/** The shared parallel substrate: chunked loops, reductions, the
 *  determinism contract across pool sizes, nested-call safety,
 *  exception propagation, and the bounded queue. */

#include <array>
#include <atomic>
#include <numeric>
#include <thread>

#include <gtest/gtest.h>

#include "gnnbench/core/parallel.h"
#include "gnnbench/core/rng.h"

namespace gnnbench {
namespace core {
namespace parallel {
namespace {

/** Run fn under each pool size and restore the original setting. */
template <typename Fn>
void
withThreadCounts(std::initializer_list<int> counts, Fn &&fn)
{
    const int restore = numThreads();
    for (int t : counts) {
        setNumThreads(t);
        fn(t);
    }
    setNumThreads(restore);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    withThreadCounts({1, 4}, [](int) {
        std::vector<int> hits(1000, 0);
        parallelFor(0, 1000, 7, [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i)
                hits[i] += 1;
        });
        for (int h : hits)
            ASSERT_EQ(h, 1);
    });
}

TEST(ParallelFor, EmptyAndSingleElementRanges)
{
    withThreadCounts({1, 4}, [](int) {
        int calls = 0;
        parallelFor(5, 5, 8, [&](int64_t, int64_t) { ++calls; });
        EXPECT_EQ(calls, 0);
        std::vector<int> one(1, 0);
        parallelFor(0, 1, 8,
                    [&](int64_t b, int64_t e) { one[b] = int(e); });
        EXPECT_EQ(one[0], 1);
    });
}

TEST(ParallelForChunks, ChunkDecompositionIndependentOfPoolSize)
{
    // The determinism contract: chunk (index, begin, end) triples
    // depend only on (begin, end, grain) — never on the pool size.
    auto collect = [] {
        std::vector<std::array<int64_t, 3>> chunks(
            static_cast<size_t>(detail::chunkCount(3, 1003, 17)));
        parallelForChunks(3, 1003, 17,
                          [&](int64_t c, int64_t b, int64_t e) {
                              chunks[static_cast<size_t>(c)] = {c, b,
                                                                e};
                          });
        return chunks;
    };
    std::vector<std::vector<std::array<int64_t, 3>>> seen;
    withThreadCounts({1, 2, 4}, [&](int) { seen.push_back(collect()); });
    EXPECT_EQ(seen[0], seen[1]);
    EXPECT_EQ(seen[0], seen[2]);
}

TEST(ParallelFor, ChunkSeededRngIdenticalAcrossPoolSizes)
{
    // Randomized callers derive one Rng per chunk: outputs must be
    // bit-identical for any thread count.
    auto draw = [] {
        std::vector<uint64_t> out(512);
        const uint64_t base = 0xfeedf00dULL;
        parallelForChunks(0, 512, 19,
                          [&](int64_t c, int64_t b, int64_t e) {
                              Rng rng(chunkSeed(base, 7, c));
                              for (int64_t i = b; i < e; ++i)
                                  out[i] = rng.next();
                          });
        return out;
    };
    std::vector<std::vector<uint64_t>> seen;
    withThreadCounts({1, 4}, [&](int) { seen.push_back(draw()); });
    EXPECT_EQ(seen[0], seen[1]);
}

TEST(ParallelReduce, SumMatchesSerialAndIsDeterministic)
{
    std::vector<double> values(10000);
    Rng rng(99);
    for (auto &v : values)
        v = rng.uniform() - 0.5;

    auto reduce = [&] {
        return parallelReduce(
            0, static_cast<int64_t>(values.size()), 64, 0.0,
            [&](int64_t b, int64_t e) {
                double s = 0.0;
                for (int64_t i = b; i < e; ++i)
                    s += values[i];
                return s;
            },
            [](double a, double b) { return a + b; });
    };
    std::vector<double> results;
    withThreadCounts({1, 2, 4},
                     [&](int) { results.push_back(reduce()); });
    // Bit-identical across pool sizes (in-order combine), and close
    // to the serial sum.
    EXPECT_EQ(results[0], results[1]);
    EXPECT_EQ(results[0], results[2]);
    const double serial =
        std::accumulate(values.begin(), values.end(), 0.0);
    EXPECT_NEAR(results[0], serial, 1e-9);
}

TEST(ParallelReduce, EmptyRangeReturnsInit)
{
    EXPECT_EQ(parallelReduce(
                  10, 10, 4, int64_t{42},
                  [](int64_t, int64_t) { return int64_t{1}; },
                  [](int64_t a, int64_t b) { return a + b; }),
              42);
}

TEST(ParallelFor, NestedCallsRunSeriallyAndCorrectly)
{
    withThreadCounts({1, 4}, [](int) {
        std::vector<int64_t> out(64 * 64, 0);
        parallelFor(0, 64, 4, [&](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r)
                parallelFor(0, 64, 8, [&](int64_t c0, int64_t c1) {
                    for (int64_t c = c0; c < c1; ++c)
                        out[r * 64 + c] = r * 64 + c;
                });
        });
        for (int64_t i = 0; i < 64 * 64; ++i)
            ASSERT_EQ(out[i], i);
    });
}

TEST(ParallelFor, WorkerThreadScopeForcesSerialExecution)
{
    EXPECT_FALSE(inWorkerThread());
    WorkerThreadScope scope;
    EXPECT_TRUE(inWorkerThread());
    // All chunks execute on this thread.
    const auto self = std::this_thread::get_id();
    parallelFor(0, 100, 3, [&](int64_t, int64_t) {
        EXPECT_EQ(std::this_thread::get_id(), self);
    });
}

TEST(ParallelFor, ExceptionPropagatesToCaller)
{
    withThreadCounts({1, 4}, [](int) {
        EXPECT_THROW(
            parallelFor(0, 1000, 8,
                        [&](int64_t b, int64_t) {
                            if (b >= 500)
                                throw std::runtime_error("boom");
                        }),
            std::runtime_error);
    });
}

TEST(ParallelFor, UsableAgainAfterException)
{
    withThreadCounts({4}, [](int) {
        try {
            parallelFor(0, 100, 4, [&](int64_t, int64_t) {
                throw std::runtime_error("first");
            });
            FAIL() << "expected throw";
        } catch (const std::runtime_error &) {
        }
        std::atomic<int64_t> sum{0};
        parallelFor(0, 100, 4, [&](int64_t b, int64_t e) {
            sum += e - b;
        });
        EXPECT_EQ(sum.load(), 100);
    });
}

TEST(BoundedQueue, FifoWithinCapacity)
{
    BoundedQueue<int> q(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(q.push(i));
    EXPECT_EQ(q.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        auto v = q.pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
}

TEST(BoundedQueue, PushBlocksUntilPopThenCloseDrains)
{
    BoundedQueue<int> q(1);
    EXPECT_TRUE(q.push(0));
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(q.push(1)); // blocks until the consumer pops
        pushed = true;
    });
    EXPECT_EQ(q.pop().value(), 0);
    producer.join();
    EXPECT_TRUE(pushed.load());
    q.close();
    EXPECT_FALSE(q.push(2));          // closed: rejected
    EXPECT_EQ(q.pop().value(), 1);    // drains buffered item
    EXPECT_FALSE(q.pop().has_value()); // then reports closed
}

TEST(BoundedQueue, CloseWakesBlockedConsumer)
{
    BoundedQueue<int> q(2);
    std::thread consumer([&] {
        EXPECT_FALSE(q.pop().has_value()); // woken by close()
    });
    q.close();
    consumer.join();
}

TEST(Parallel, NumThreadsPositiveAndAdjustable)
{
    const int restore = numThreads();
    EXPECT_GE(restore, 1);
    setNumThreads(3);
    EXPECT_EQ(numThreads(), 3);
    setNumThreads(restore);
}

} // namespace
} // namespace parallel
} // namespace core
} // namespace gnnbench
