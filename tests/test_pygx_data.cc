/** Tests for the pygx Data object and lazy format conversion. */

#include <gtest/gtest.h>

#include <algorithm>

#include "gnnbench/graph/convert.h"
#include "gnnbench/graph/generate.h"
#include "gnnbench/pygx/data.h"

namespace gnnbench {
namespace pygx {
namespace {

graph::CooGraph
smallGraph(uint64_t seed)
{
    core::Rng rng(seed);
    return graph::symmetrize(graph::rmat(80, 400, rng), false);
}

TEST(PygxData, CheapConstructionKeepsEdgeIndex)
{
    graph::CooGraph coo = smallGraph(1);
    Data d(coo);
    EXPECT_EQ(d.numNodes(), coo.numNodes);
    EXPECT_EQ(d.numEdges(), coo.numEdges());
    EXPECT_EQ(d.edgeSrc(), coo.src);
    EXPECT_EQ(d.edgeDst(), coo.dst);
    // Formats are lazy.
    EXPECT_FALSE(d.cscReady());
    EXPECT_FALSE(d.csrReady());
}

TEST(PygxData, LazyCscMatchesCountingSortReference)
{
    graph::CooGraph coo = smallGraph(2);
    Data d(coo);
    const graph::CsrGraph &csc = d.csc();
    EXPECT_TRUE(d.cscReady());
    graph::CsrGraph ref = graph::cooToCsc(coo);
    EXPECT_EQ(csc.indptr, ref.indptr);
    // Row contents equal as multisets (sort order may differ).
    for (NodeId r = 0; r < csc.numRows; ++r) {
        std::vector<NodeId> a(csc.rowBegin(r), csc.rowEnd(r));
        std::vector<NodeId> b(ref.rowBegin(r), ref.rowEnd(r));
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        ASSERT_EQ(a, b);
    }
}

TEST(PygxData, LazyCsrMatchesReference)
{
    graph::CooGraph coo = smallGraph(3);
    Data d(coo);
    const graph::CsrGraph &csr = d.csr();
    graph::CsrGraph ref = graph::cooToCsr(coo);
    EXPECT_EQ(csr.indptr, ref.indptr);
}

TEST(PygxData, ConversionIsCachedAcrossCalls)
{
    Data d(smallGraph(4));
    const graph::CsrGraph *first = &d.csc();
    const graph::CsrGraph *second = &d.csc();
    EXPECT_EQ(first, second);
}

TEST(PygxData, StructureBytesIsEdgeIndexOnly)
{
    graph::CooGraph coo = smallGraph(5);
    Data d(coo);
    EXPECT_EQ(d.structureBytes(),
              2 * coo.src.size() * sizeof(NodeId));
}

TEST(OomError, CarriesSizes)
{
    OomError e(100, 50);
    EXPECT_EQ(e.requestedBytes(), 100u);
    EXPECT_EQ(e.budgetBytes(), 50u);
    EXPECT_NE(std::string(e.what()).find("out of memory"),
              std::string::npos);
}

TEST(PyOverheadModel, ChargesSession)
{
    device::Session session;
    PyOverheadModel model;
    model.charge(&session, 1000000);  // 1e6 ops * 20 ns = 20 ms
    EXPECT_NEAR(session.snapshot().modeled.cpuOverheadSeconds, 0.02,
                1e-6);
    model.charge(nullptr, 100);  // must not crash
    model.charge(&session, 0);
}

} // namespace
} // namespace pygx
} // namespace gnnbench
