/** Integration tests: the three end-to-end models across frameworks
 *  and placement modes on a miniature dataset. */

#include <gtest/gtest.h>

#include "gnnbench/models/clustergcn.h"
#include "gnnbench/models/graphsage.h"
#include "gnnbench/models/graphsaint.h"

namespace gnnbench {
namespace models {
namespace {

graph::Dataset
tinyDataset()
{
    // PPI at 1/10 scale: ~1.5k nodes, fast enough for CI.
    return graph::loadDataset("ppi", 0.1, 11);
}

TrainConfig
tinyConfig(Framework fw, RunMode mode)
{
    TrainConfig cfg;
    cfg.framework = fw;
    cfg.mode = mode;
    cfg.epochs = 2;
    cfg.hiddenDim = 32;
    cfg.batchSize = 128;
    cfg.numParts = 40;
    cfg.clustersPerBatch = 8;
    cfg.saintRoots = 200;
    cfg.saintWalkLength = 2;
    return cfg;
}

void
checkBasicResult(const TrainResult &r, bool gpu_mode)
{
    EXPECT_FALSE(r.oom);
    EXPECT_GT(r.totalSeconds(), 0.0);
    EXPECT_GT(r.phaseSeconds(profiling::Phase::Sampling), 0.0);
    EXPECT_GT(r.phaseSeconds(profiling::Phase::Training), 0.0);
    EXPECT_EQ(r.epochs.size(), 2u);
    EXPECT_GT(r.epochs.back().total, 0);
    EXPECT_GT(r.energy.joules(), 0.0);
    if (gpu_mode) {
        EXPECT_GT(r.phaseSeconds(profiling::Phase::DataMovement),
                  0.0);
        EXPECT_GT(r.energy.gpuJoules, 0.0);
    } else {
        EXPECT_EQ(r.phaseSeconds(profiling::Phase::DataMovement),
                  0.0);
        EXPECT_EQ(r.energy.gpuJoules, 0.0);
    }
}

using ModelFn = TrainResult (*)(const graph::Dataset &,
                                const TrainConfig &);

struct Case
{
    const char *name;
    ModelFn fn;
    Framework fw;
    RunMode mode;
};

class ModelMatrix : public ::testing::TestWithParam<Case>
{
};

TEST_P(ModelMatrix, RunsAndAccounts)
{
    const Case &c = GetParam();
    graph::Dataset ds = tinyDataset();
    TrainResult r = c.fn(ds, tinyConfig(c.fw, c.mode));
    checkBasicResult(r, usesGpu(c.mode));
    EXPECT_EQ(r.config, configName(c.fw, c.mode));
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ModelMatrix,
    ::testing::Values(
        Case{"sage_dgl_cpu", &trainGraphSage, Framework::Dglx,
             RunMode::CPU},
        Case{"sage_pyg_cpu", &trainGraphSage, Framework::Pygx,
             RunMode::CPU},
        Case{"sage_dgl_cpugpu", &trainGraphSage, Framework::Dglx,
             RunMode::CPUGPU},
        Case{"sage_pyg_cpugpu", &trainGraphSage, Framework::Pygx,
             RunMode::CPUGPU},
        Case{"sage_dgl_gpu", &trainGraphSage, Framework::Dglx,
             RunMode::GPU},
        Case{"sage_dgl_uva", &trainGraphSage, Framework::Dglx,
             RunMode::UVAGPU},
        Case{"cluster_dgl_cpu", &trainClusterGcn, Framework::Dglx,
             RunMode::CPU},
        Case{"cluster_pyg_cpu", &trainClusterGcn, Framework::Pygx,
             RunMode::CPU},
        Case{"cluster_dgl_cpugpu", &trainClusterGcn,
             Framework::Dglx, RunMode::CPUGPU},
        Case{"saint_dgl_cpu", &trainGraphSaint, Framework::Dglx,
             RunMode::CPU},
        Case{"saint_pyg_cpu", &trainGraphSaint, Framework::Pygx,
             RunMode::CPU},
        Case{"saint_pyg_cpugpu", &trainGraphSaint, Framework::Pygx,
             RunMode::CPUGPU}),
    [](const auto &info) { return info.param.name; });

TEST(Models, TrainingLearns)
{
    // Loss after the last epoch must improve on the first epoch.
    graph::Dataset ds = tinyDataset();
    TrainConfig cfg = tinyConfig(Framework::Dglx, RunMode::CPU);
    cfg.epochs = 4;
    TrainResult r = trainGraphSage(ds, cfg);
    EXPECT_LT(r.epochs.back().loss, r.epochs.front().loss);
}

TEST(Models, PygSamplingSlowerThanDgl)
{
    // Observation 2 at model scale: the pygx sampler (interpreted
    // style + CSC conversion + overhead model) must cost more than
    // the dglx sampler on the same workload.
    graph::Dataset ds = tinyDataset();
    TrainResult d = trainGraphSage(
        ds, tinyConfig(Framework::Dglx, RunMode::CPU));
    TrainResult p = trainGraphSage(
        ds, tinyConfig(Framework::Pygx, RunMode::CPU));
    EXPECT_GT(p.phaseSeconds(profiling::Phase::Sampling),
              d.phaseSeconds(profiling::Phase::Sampling));
}

TEST(Models, PreloadingCutsDataMovement)
{
    // Observation 6: pre-loading must shrink data movement.
    graph::Dataset ds = tinyDataset();
    TrainConfig base = tinyConfig(Framework::Dglx, RunMode::CPUGPU);
    base.epochs = 3;
    TrainConfig pre = base;
    pre.preloadFeatures = true;
    TrainResult r_base = trainGraphSage(ds, base);
    TrainResult r_pre = trainGraphSage(ds, pre);
    // One-time upfront cost can dominate on tiny runs, so compare
    // *per-batch* movement: subtract the one-time initial transfer
    // is complex — instead require strictly fewer movement seconds
    // at equal epochs once the feature matrix is bigger than the
    // per-epoch gathered features (3 epochs here).
    EXPECT_LT(r_pre.phaseSeconds(profiling::Phase::DataMovement) -
                  r_pre.phaseSeconds(profiling::Phase::DataLoading),
              r_base.phaseSeconds(profiling::Phase::DataMovement) *
                  1.5);
}

TEST(Models, GpuSamplerShrinksSamplingShare)
{
    // Observation 7: with the GPU sampler the sampling share of
    // total runtime drops relative to CPU sampling + GPU training.
    graph::Dataset ds = tinyDataset();
    TrainResult cpugpu = trainGraphSage(
        ds, tinyConfig(Framework::Dglx, RunMode::CPUGPU));
    TrainResult gpu = trainGraphSage(
        ds, tinyConfig(Framework::Dglx, RunMode::GPU));
    const double share_cpugpu =
        cpugpu.phaseSeconds(profiling::Phase::Sampling) /
        cpugpu.totalSeconds();
    const double share_gpu =
        gpu.phaseSeconds(profiling::Phase::Sampling) /
        gpu.totalSeconds();
    EXPECT_LT(share_gpu, share_cpugpu);
}

TEST(Models, ConfigChecks)
{
    graph::Dataset ds = tinyDataset();
    TrainConfig bad = tinyConfig(Framework::Pygx, RunMode::GPU);
    EXPECT_DEATH(trainGraphSage(ds, bad), "no GPU/UVA sampler");
    TrainConfig bad2 = tinyConfig(Framework::Dglx, RunMode::GPU);
    EXPECT_DEATH(trainClusterGcn(ds, bad2), "CPU and CPUGPU");
}

TEST(Models, BatchHelpers)
{
    core::Rng rng(1);
    std::vector<NodeId> ids(100);
    for (NodeId i = 0; i < 100; ++i)
        ids[i] = i;
    auto batches = makeBatches(ids, 32, rng);
    EXPECT_EQ(batches.size(), 4u);
    EXPECT_EQ(batches.back().size(), 4u);
    size_t total = 0;
    for (const auto &b : batches)
        total += b.size();
    EXPECT_EQ(total, 100u);

    EXPECT_EQ(saintBatchesPerEpoch(1000, 100, 1), 5);
    EXPECT_EQ(saintBatchesPerEpoch(10, 100, 2), 1);
}

} // namespace
} // namespace models
} // namespace gnnbench
