/** Tests for the synthetic graph generators. */

#include <gtest/gtest.h>

#include <algorithm>

#include "gnnbench/graph/convert.h"
#include "gnnbench/graph/generate.h"

namespace gnnbench {
namespace graph {
namespace {

TEST(Rmat, ProducesRequestedSize)
{
    core::Rng rng(1);
    CooGraph g = rmat(1000, 5000, rng);
    EXPECT_EQ(g.numNodes, 1000);
    EXPECT_EQ(g.numEdges(), 5000);
    g.validate();
}

TEST(Rmat, Deterministic)
{
    core::Rng a(42), b(42);
    CooGraph ga = rmat(500, 2000, a);
    CooGraph gb = rmat(500, 2000, b);
    EXPECT_EQ(ga.src, gb.src);
    EXPECT_EQ(ga.dst, gb.dst);
}

TEST(Rmat, SkewedDegreeDistribution)
{
    // R-MAT graphs must be far more skewed than Erdos-Renyi:
    // compare max degree at equal density.
    core::Rng rng(7);
    CooGraph r = rmat(2000, 20000, rng);
    CooGraph e = erdosRenyi(2000, 20000, rng);
    auto max_deg = [](const CooGraph &g) {
        auto deg = outDegrees(cooToCsr(g));
        return *std::max_element(deg.begin(), deg.end());
    };
    EXPECT_GT(max_deg(r), 2 * max_deg(e));
}

TEST(Rmat, NonTrivialNodeCoverage)
{
    core::Rng rng(9);
    CooGraph g = rmat(1000, 10000, rng);
    std::vector<bool> touched(1000, false);
    for (size_t i = 0; i < g.src.size(); ++i) {
        touched[g.src[i]] = true;
        touched[g.dst[i]] = true;
    }
    const auto covered = static_cast<size_t>(
        std::count(touched.begin(), touched.end(), true));
    EXPECT_GT(covered, 500u);
}

TEST(ErdosRenyi, SizeAndRange)
{
    core::Rng rng(2);
    CooGraph g = erdosRenyi(100, 450, rng);
    EXPECT_EQ(g.numNodes, 100);
    EXPECT_EQ(g.numEdges(), 450);
    g.validate();
}

TEST(CommunityLabels, RangeAndCoverage)
{
    core::Rng rng(3);
    CooGraph g = symmetrize(rmat(2000, 8000, rng), false);
    auto labels = communityLabels(g, 10, rng, 0.0);
    ASSERT_EQ(labels.size(), 2000u);
    std::vector<int> counts(10, 0);
    for (int32_t l : labels) {
        ASSERT_GE(l, 0);
        ASSERT_LT(l, 10);
        ++counts[l];
    }
    // Every class should get some mass.
    for (int c : counts)
        EXPECT_GT(c, 0);
}

TEST(CommunityLabels, TopologyCorrelation)
{
    // With zero label noise, adjacent nodes should share labels far
    // more often than the 1/k random baseline.
    core::Rng rng(4);
    CooGraph g = symmetrize(rmat(3000, 15000, rng), false);
    auto labels = communityLabels(g, 8, rng, 0.0);
    int64_t same = 0;
    for (size_t i = 0; i < g.src.size(); ++i)
        same += (labels[g.src[i]] == labels[g.dst[i]]);
    const double frac =
        static_cast<double>(same) / static_cast<double>(g.numEdges());
    EXPECT_GT(frac, 0.3);  // >> 1/8
}

TEST(CommunityLabels, SingleClassDegenerate)
{
    core::Rng rng(5);
    CooGraph g = erdosRenyi(50, 100, rng);
    auto labels = communityLabels(g, 1, rng);
    for (int32_t l : labels)
        EXPECT_EQ(l, 0);
}

} // namespace
} // namespace graph
} // namespace gnnbench
