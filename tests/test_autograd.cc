/** Tests for the reverse-mode autograd tape, including numeric
 *  finite-difference gradient checks on every differentiable op. */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "gnnbench/core/autograd.h"

namespace gnnbench {
namespace core {
namespace ag {
namespace {

/**
 * Finite-difference check: builds the graph twice per perturbed
 * entry via @p build (leaf -> scalar loss) and compares the analytic
 * gradient at @p leaf_value against central differences.
 */
void
checkGradient(const Tensor &leaf_value,
              const std::function<Var(const Var &)> &build,
              float tol = 2e-2f)
{
    Var leaf_var = leaf(leaf_value.clone(), true);
    Var loss = build(leaf_var);
    backward(loss);
    const Tensor analytic = leaf_var->grad.clone();
    ASSERT_FALSE(analytic.empty());

    const float eps = 1e-2f;
    for (int64_t i = 0; i < leaf_value.rows(); ++i) {
        for (int64_t j = 0; j < leaf_value.cols(); ++j) {
            Tensor plus = leaf_value.clone();
            plus(i, j) += eps;
            Tensor minus = leaf_value.clone();
            minus(i, j) -= eps;
            const float f_plus =
                build(leaf(std::move(plus), false))->value(0, 0);
            const float f_minus =
                build(leaf(std::move(minus), false))->value(0, 0);
            const float numeric = (f_plus - f_minus) / (2 * eps);
            ASSERT_NEAR(analytic(i, j), numeric,
                        tol * std::max(1.0f, std::fabs(numeric)))
                << "grad mismatch at (" << i << "," << j << ")";
        }
    }
}

/** Reduce any tensor Var to a scalar via a fixed weighted sum. */
Var
toScalar(const Var &v)
{
    Tensor w(v->value.rows(), v->value.cols());
    for (int64_t i = 0; i < w.numel(); ++i)
        w.data()[i] = 0.1f * static_cast<float>((i % 7) + 1);
    Var weighted = mul(v, constant(std::move(w)));
    // Sum all entries: ones^T (weighted ones-column trick).
    Tensor ones_l(1, v->value.rows());
    ones_l.fill(1.0f);
    Tensor ones_r(v->value.cols(), 1);
    ones_r.fill(1.0f);
    return matmul(matmul(constant(std::move(ones_l)), weighted),
                  constant(std::move(ones_r)));
}

TEST(Autograd, BackwardRequiresScalarRoot)
{
    Var x = leaf(Tensor::full(2, 2, 1.0f), true);
    Var y = relu(x);
    EXPECT_DEATH(backward(y), "scalar");
}

TEST(Autograd, LeafAccumulatesAcrossUses)
{
    // loss = sum(x) + sum(x) -> grad = 2 everywhere.
    Var x = leaf(Tensor::full(1, 3, 1.0f), true);
    Var s = toScalar(add(x, x));
    backward(s);
    EXPECT_GT(x->grad.maxAbs(), 0.0f);
    // grad of add is double the single-use grad.
    Var x2 = leaf(Tensor::full(1, 3, 1.0f), true);
    backward(toScalar(x2));
    for (int64_t j = 0; j < 3; ++j)
        EXPECT_NEAR(x->grad(0, j), 2.0f * x2->grad(0, j), 1e-5f);
}

TEST(Autograd, ConstantsGetNoGradient)
{
    Var c = constant(Tensor::full(2, 2, 1.0f));
    Var x = leaf(Tensor::full(2, 2, 1.0f), true);
    backward(toScalar(mul(x, c)));
    EXPECT_TRUE(c->grad.empty());
    EXPECT_FALSE(x->grad.empty());
}

TEST(AutogradGradcheck, Matmul)
{
    Rng rng(1);
    Tensor x = Tensor::randn(3, 4, rng);
    Tensor w = Tensor::randn(4, 2, rng);
    checkGradient(x, [&](const Var &v) {
        return toScalar(matmul(v, constant(w.clone())));
    });
    // And w.r.t. the weight operand.
    checkGradient(w, [&](const Var &v) {
        return toScalar(matmul(constant(x.clone()), v));
    });
}

TEST(AutogradGradcheck, AddBias)
{
    Rng rng(2);
    Tensor x = Tensor::randn(3, 4, rng);
    Tensor b = Tensor::randn(1, 4, rng);
    checkGradient(b, [&](const Var &v) {
        return toScalar(addBias(constant(x.clone()), v));
    });
}

TEST(AutogradGradcheck, ReluAwayFromKink)
{
    Rng rng(3);
    Tensor x = Tensor::randn(3, 3, rng);
    // Push values away from 0 so finite differences are valid.
    for (int64_t i = 0; i < x.numel(); ++i)
        x.data()[i] += (x.data()[i] >= 0 ? 0.5f : -0.5f);
    checkGradient(x,
                  [&](const Var &v) { return toScalar(relu(v)); });
}

TEST(AutogradGradcheck, EluAndLeakyRelu)
{
    Rng rng(4);
    Tensor x = Tensor::randn(2, 3, rng);
    for (int64_t i = 0; i < x.numel(); ++i)
        x.data()[i] += (x.data()[i] >= 0 ? 0.5f : -0.5f);
    checkGradient(x, [&](const Var &v) { return toScalar(elu(v)); });
    checkGradient(x, [&](const Var &v) {
        return toScalar(leakyRelu(v, 0.2f));
    });
}

TEST(AutogradGradcheck, MulAndScale)
{
    Rng rng(5);
    Tensor x = Tensor::randn(2, 4, rng);
    Tensor y = Tensor::randn(2, 4, rng);
    checkGradient(x, [&](const Var &v) {
        return toScalar(mul(v, constant(y.clone())));
    });
    checkGradient(x, [&](const Var &v) {
        return toScalar(scale(v, -1.7f));
    });
}

TEST(AutogradGradcheck, LogSoftmaxNll)
{
    Rng rng(6);
    Tensor x = Tensor::randn(4, 3, rng);
    std::vector<int32_t> labels = {0, 2, 1, 2};
    checkGradient(x, [&](const Var &v) {
        return nllLoss(logSoftmax(v), labels, {});
    });
    // Row-selected variant.
    checkGradient(x, [&](const Var &v) {
        return nllLoss(logSoftmax(v), labels, {1, 3});
    });
}

TEST(AutogradGradcheck, GatherRows)
{
    Rng rng(7);
    Tensor x = Tensor::randn(5, 3, rng);
    std::vector<NodeId> idx = {4, 0, 0, 2};
    checkGradient(x, [&](const Var &v) {
        return toScalar(gatherRows(v, idx));
    });
}

TEST(AutogradGradcheck, RowScale)
{
    Rng rng(8);
    Tensor x = Tensor::randn(3, 4, rng);
    std::vector<float> s = {0.5f, -1.0f, 2.0f};
    checkGradient(x, [&](const Var &v) {
        return toScalar(rowScale(v, s));
    });
}

TEST(AutogradGradcheck, ConcatCols)
{
    Rng rng(9);
    Tensor a = Tensor::randn(3, 2, rng);
    Tensor b = Tensor::randn(3, 3, rng);
    checkGradient(a, [&](const Var &v) {
        return toScalar(concatCols(v, constant(b.clone())));
    });
    checkGradient(b, [&](const Var &v) {
        return toScalar(concatCols(constant(a.clone()), v));
    });
}

TEST(Autograd, DropoutBackwardUsesMask)
{
    Rng rng(10);
    Var x = leaf(Tensor::full(20, 20, 1.0f), true);
    Var y = dropout(x, 0.5f, rng);
    backward(toScalar(y));
    // Gradient must vanish exactly where the output was dropped.
    for (int64_t i = 0; i < y->value.numel(); ++i) {
        if (y->value.data()[i] == 0.0f)
            EXPECT_EQ(x->grad.data()[i], 0.0f);
        else
            EXPECT_NE(x->grad.data()[i], 0.0f);
    }
}

TEST(Autograd, DiamondGraphGradient)
{
    // loss = sum((x + x) * x): grad via two paths must combine.
    Rng rng(11);
    Tensor x = Tensor::randn(2, 2, rng);
    checkGradient(x, [&](const Var &v) {
        return toScalar(mul(add(v, v), v));
    });
}

TEST(Autograd, CustomOpViaMakeOp)
{
    // y = 3x through makeOp with hand-written backward.
    Var x = leaf(Tensor::full(1, 2, 2.0f), true);
    Var y = makeOp("triple", ops::scale(x->value, 3.0f), {x},
                   [x](Node &n) {
                       x->accumulateGrad(ops::scale(n.grad, 3.0f));
                   });
    backward(toScalar(y));
    // d/dx of weighted sum w . 3x = 3w; w = 0.1*((i%7)+1).
    EXPECT_NEAR(x->grad(0, 0), 3.0f * 0.1f, 1e-5f);
    EXPECT_NEAR(x->grad(0, 1), 3.0f * 0.2f, 1e-5f);
}

} // namespace
} // namespace ag
} // namespace core
} // namespace gnnbench
