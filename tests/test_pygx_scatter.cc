/** Tests for the pygx gather/scatter kernels and the OOM model. */

#include <gtest/gtest.h>

#include <cmath>

#include "gnnbench/graph/convert.h"
#include "gnnbench/graph/generate.h"
#include "gnnbench/pygx/scatter.h"

namespace gnnbench {
namespace pygx {
namespace {

using core::Tensor;

TEST(Scatter, GatherMaterializesRows)
{
    Tensor x(3, 2);
    x(0, 0) = 1;
    x(1, 0) = 2;
    x(2, 0) = 3;
    KernelCtx ctx;
    Tensor out = gather(x, {2, 2, 0}, ctx);
    EXPECT_EQ(out.rows(), 3);
    EXPECT_EQ(out(0, 0), 3.0f);
    EXPECT_EQ(out(1, 0), 3.0f);
    EXPECT_EQ(out(2, 0), 1.0f);
}

TEST(Scatter, SumAccumulates)
{
    Tensor src(3, 1);
    src(0, 0) = 1;
    src(1, 0) = 2;
    src(2, 0) = 4;
    KernelCtx ctx;
    Tensor out = scatterSum(src, {0, 0, 1}, 3, ctx);
    EXPECT_EQ(out(0, 0), 3.0f);
    EXPECT_EQ(out(1, 0), 4.0f);
    EXPECT_EQ(out(2, 0), 0.0f);
}

TEST(Scatter, MeanDividesByCount)
{
    Tensor src(4, 1);
    src(0, 0) = 2;
    src(1, 0) = 4;
    src(2, 0) = 9;
    src(3, 0) = 1;
    KernelCtx ctx;
    Tensor out = scatterMean(src, {0, 0, 1, 1}, 2, ctx);
    EXPECT_NEAR(out(0, 0), 3.0f, 1e-6f);
    EXPECT_NEAR(out(1, 0), 5.0f, 1e-6f);
}

TEST(Scatter, MaxZeroFillsUntouched)
{
    Tensor src(2, 1);
    src(0, 0) = -5;
    src(1, 0) = -7;
    KernelCtx ctx;
    Tensor out = scatterMax(src, {1, 1}, 3, ctx);
    EXPECT_EQ(out(1, 0), -5.0f);
    EXPECT_EQ(out(0, 0), 0.0f);
    EXPECT_EQ(out(2, 0), 0.0f);
}

TEST(Scatter, SoftmaxNormalizesPerSegment)
{
    core::Rng rng(1);
    Tensor scores = Tensor::randn(10, 2, rng, 2.0f);
    std::vector<NodeId> idx = {0, 0, 0, 1, 1, 2, 2, 2, 2, 3};
    KernelCtx ctx;
    Tensor att = scatterSoftmax(scores, idx, 4, ctx);
    std::vector<double> sums(4, 0.0);
    for (int64_t e = 0; e < 10; ++e)
        sums[idx[e]] += att(e, 0);
    for (double s : sums)
        EXPECT_NEAR(s, 1.0, 1e-4);
}

TEST(Scatter, MulEdgeScalarBroadcasts)
{
    Tensor src = Tensor::full(2, 3, 2.0f);
    Tensor w(2, 1);
    w(0, 0) = 0.5f;
    w(1, 0) = -1.0f;
    KernelCtx ctx;
    Tensor out = mulEdgeScalar(src, w, ctx);
    EXPECT_EQ(out(0, 2), 1.0f);
    EXPECT_EQ(out(1, 0), -2.0f);
}

TEST(Scatter, SpmmMatchesGatherScatterComposition)
{
    core::Rng rng(2);
    graph::CooGraph coo =
        graph::symmetrize(graph::rmat(40, 200, rng), false);
    graph::CsrGraph csc = graph::cooToCsc(coo);
    Tensor x = Tensor::randn(40, 6, rng);
    KernelCtx ctx;
    Tensor fused = spmm(csc, x, nullptr, ctx);
    // Reference via gather + scatter over the expanded edge list.
    std::vector<NodeId> src, dst;
    for (NodeId d = 0; d < csc.numRows; ++d)
        for (EdgeId e = csc.indptr[d]; e < csc.indptr[d + 1]; ++e) {
            src.push_back(csc.indices[e]);
            dst.push_back(d);
        }
    Tensor msgs = gather(x, src, ctx);
    Tensor ref = scatterSum(msgs, dst, 40, ctx);
    for (int64_t i = 0; i < fused.numel(); ++i)
        ASSERT_NEAR(fused.data()[i], ref.data()[i], 1e-3f);
}

TEST(Scatter, PropagateVarGradientCorrect)
{
    // loss = sum(propagate(x)); grad x[s] = #outgoing edges of s.
    auto src = std::make_shared<std::vector<NodeId>>(
        std::vector<NodeId>{0, 0, 1, 2});
    auto dst = std::make_shared<std::vector<NodeId>>(
        std::vector<NodeId>{1, 2, 2, 0});
    core::Rng rng(3);
    core::ag::Var x =
        core::ag::leaf(core::Tensor::randn(3, 2, rng), true);
    KernelCtx ctx;
    core::ag::Var y =
        propagateVar(src, dst, nullptr, 3, 3, x, ctx);
    Tensor seed = Tensor::full(3, 2, 1.0f);
    core::ag::backward(y, &seed);
    EXPECT_NEAR(x->grad(0, 0), 2.0f, 1e-5f);  // node 0: 2 out-edges
    EXPECT_NEAR(x->grad(1, 0), 1.0f, 1e-5f);
    EXPECT_NEAR(x->grad(2, 0), 1.0f, 1e-5f);
}

TEST(Scatter, PropagateVarWeighted)
{
    auto src = std::make_shared<std::vector<NodeId>>(
        std::vector<NodeId>{0, 1});
    auto dst = std::make_shared<std::vector<NodeId>>(
        std::vector<NodeId>{1, 0});
    auto w = std::make_shared<std::vector<float>>(
        std::vector<float>{2.0f, -0.5f});
    Tensor x(2, 1);
    x(0, 0) = 3;
    x(1, 0) = 4;
    KernelCtx ctx;
    core::ag::Var out = propagateVar(
        src, dst, w, 2, 2, core::ag::constant(x.clone()), ctx);
    EXPECT_NEAR(out->value(1, 0), 6.0f, 1e-5f);   // 2 * x0
    EXPECT_NEAR(out->value(0, 0), -2.0f, 1e-5f);  // -0.5 * x1
}

TEST(Scatter, OomRaisedAtFullScaleEquivalent)
{
    // 1M-edge materialization at 64 dims = 256 MB; with memScale
    // 1000x the full-size equivalent exceeds the 48 GB GPU budget.
    device::Session session;
    KernelCtx ctx{&session, device::DeviceType::GPU, Costs{},
                  1000.0};
    std::vector<NodeId> idx(1000000, 0);
    Tensor x(1, 64);
    EXPECT_THROW(gather(x, idx, ctx), OomError);
    // The same gather at true scale fits comfortably.
    KernelCtx ok{&session, device::DeviceType::GPU, Costs{}, 1.0};
    EXPECT_NO_THROW(gather(x, idx, ok));
}

TEST(Scatter, CpuBudgetAlsoEnforced)
{
    device::Session session;  // default CpuSpec: 64 GB
    KernelCtx ctx{&session, device::DeviceType::CPU, Costs{},
                  100000.0};
    std::vector<NodeId> idx(1000000, 0);
    Tensor x(1, 16);
    EXPECT_THROW(gather(x, idx, ctx), OomError);
}

TEST(Scatter, GpuModeChargesSession)
{
    device::Session session;
    KernelCtx ctx{&session, device::DeviceType::GPU, Costs{}, 1.0};
    core::Rng rng(4);
    Tensor x = Tensor::randn(100, 32, rng);
    std::vector<NodeId> idx(5000);
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = static_cast<NodeId>(i % 100);
    Tensor msgs = gather(x, idx, ctx);
    scatterSum(msgs, idx, 100, ctx);
    EXPECT_GT(session.snapshot().modeled.gpuSeconds, 0.0);
}

} // namespace
} // namespace pygx
} // namespace gnnbench
