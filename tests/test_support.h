/**
 * @file
 * Shared test-environment helpers, linked into every test binary via
 * test_main.cc.
 *
 * All randomized tests derive their RNG streams from testenv::seed()
 * (the GNNBENCH_TEST_SEED environment variable, default 42) so a
 * failure report's seed is sufficient to reproduce the exact run.
 */

#ifndef GNNBENCH_TESTS_TEST_SUPPORT_H
#define GNNBENCH_TESTS_TEST_SUPPORT_H

#include <cstdint>

namespace gnnbench {
namespace testenv {

/** The run's base RNG seed: GNNBENCH_TEST_SEED env var, default 42. */
uint64_t seed();

} // namespace testenv
} // namespace gnnbench

#endif // GNNBENCH_TESTS_TEST_SUPPORT_H
