/** Tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gnnbench/core/rng.h"

namespace gnnbench {
namespace core {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const int64_t v = rng.uniformRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments)
{
    Rng rng(17);
    double sum = 0.0, sum2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(19);
    auto perm = rng.permutation(100);
    std::sort(perm.begin(), perm.end());
    for (NodeId i = 0; i < 100; ++i)
        EXPECT_EQ(perm[i], i);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    Rng rng(23);
    for (NodeId k : {1, 5, 50, 99, 100}) {
        auto s = rng.sampleWithoutReplacement(100, k);
        EXPECT_EQ(s.size(), static_cast<size_t>(k));
        std::set<NodeId> uniq(s.begin(), s.end());
        EXPECT_EQ(uniq.size(), static_cast<size_t>(k));
        for (NodeId v : s) {
            EXPECT_GE(v, 0);
            EXPECT_LT(v, 100);
        }
    }
}

TEST(Rng, SampleWithoutReplacementUnbiased)
{
    // Each element of {0..9} should be chosen ~ k/n of the time.
    Rng rng(29);
    std::vector<int> counts(10, 0);
    const int trials = 20000;
    for (int t = 0; t < trials; ++t)
        for (NodeId v : rng.sampleWithoutReplacement(10, 3))
            ++counts[v];
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
}

TEST(Rng, ForkIndependence)
{
    Rng parent(31);
    Rng child = parent.fork();
    // The child stream should not replay the parent stream.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (parent.next() == child.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(37);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.bernoulli(0.25);
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

} // namespace
} // namespace core
} // namespace gnnbench
