/** Direct tests for the shared sampled-structure types: invariants,
 *  byte accounting, and validate() failure modes. */

#include <gtest/gtest.h>

#include "gnnbench/sampling/subgraph.h"

namespace gnnbench {
namespace sampling {
namespace {

Block
makeBlock()
{
    // dst = {10, 20}; src = {10, 20, 30}; edges: 10<-30, 20<-10.
    Block b;
    b.dstNodes = {10, 20};
    b.srcNodes = {10, 20, 30};
    b.csc.numRows = 2;
    b.csc.numCols = 3;
    b.csc.indptr = {0, 1, 2};
    b.csc.indices = {2, 0};
    return b;
}

TEST(Block, ValidBlockPasses)
{
    makeBlock().validate();
}

TEST(Block, DstMustPrefixSrc)
{
    Block b = makeBlock();
    b.srcNodes = {20, 10, 30};  // order broken
    EXPECT_DEATH(b.validate(), "prefix");
}

TEST(Block, ShapeMismatchFatal)
{
    Block b = makeBlock();
    b.csc.numRows = 3;
    EXPECT_DEATH(b.validate(), "rows");
}

TEST(Block, StructureBytesCountsAllArrays)
{
    Block b = makeBlock();
    const uint64_t expected = 3 * sizeof(NodeId) +  // src
                              2 * sizeof(NodeId) +  // dst
                              3 * sizeof(EdgeId) +  // indptr
                              2 * sizeof(NodeId);   // indices
    EXPECT_EQ(b.structureBytes(), expected);
}

TEST(NeighborSample, WiringChecked)
{
    NeighborSample s;
    s.seeds = {10, 20};
    s.blocks.push_back(makeBlock());
    Block top;
    top.dstNodes = {10, 20};
    top.srcNodes = {10, 20};
    top.csc.numRows = 2;
    top.csc.numCols = 2;
    top.csc.indptr = {0, 0, 0};
    s.blocks.push_back(top);
    // blocks[0].dst == blocks[1].src fails: {10,20} vs {10,20} ok,
    // but blocks[1].dst == seeds holds -> valid.
    s.validate();
    s.seeds = {10, 30};
    EXPECT_DEATH(s.validate(), "seeds mismatch");
}

TEST(InducedSample, SquareRequired)
{
    InducedSample s;
    s.nodes = {1, 2};
    s.adj.numRows = 2;
    s.adj.numCols = 3;
    s.adj.indptr = {0, 0, 0};
    EXPECT_DEATH(s.validate(), "mismatch");
}

TEST(LayerSample, IsolatedCountAndWeights)
{
    LayerSample l;
    l.dstNodes = {5, 6, 7};
    l.srcNodes = {1, 2};
    l.csc.numRows = 3;
    l.csc.numCols = 2;
    l.csc.indptr = {0, 1, 1, 2};  // dst 6 isolated
    l.csc.indices = {0, 1};
    l.edgeWeights = {0.5f, 2.0f};
    l.validate();
    EXPECT_EQ(l.isolatedDstCount(), 1);
    l.edgeWeights[1] = 0.0f;
    EXPECT_DEATH(l.validate(), "positive");
}

TEST(LayerSample, WeightPerEdgeRequired)
{
    LayerSample l;
    l.dstNodes = {0};
    l.srcNodes = {0};
    l.csc.numRows = 1;
    l.csc.numCols = 1;
    l.csc.indptr = {0, 1};
    l.csc.indices = {0};
    // No weights supplied.
    EXPECT_DEATH(l.validate(), "weight per edge");
}

TEST(LayerWiseSample, SeedsChecked)
{
    LayerWiseSample s;
    LayerSample l;
    l.dstNodes = {3};
    l.srcNodes = {3};
    l.csc.numRows = 1;
    l.csc.numCols = 1;
    l.csc.indptr = {0, 1};
    l.csc.indices = {0};
    l.edgeWeights = {1.0f};
    s.layers.push_back(l);
    s.seeds = {3};
    s.validate();
    s.seeds = {4};
    EXPECT_DEATH(s.validate(), "seeds mismatch");
}

} // namespace
} // namespace sampling
} // namespace gnnbench
