/** Tests for the phase tracker and the hierarchical profiler. */

#include <gtest/gtest.h>

#include "gnnbench/profiling/profiler.h"
#include <fstream>
#include <thread>
#include <vector>

#include "gnnbench/core/parallel.h"
#include "gnnbench/profiling/report.h"

namespace gnnbench {
namespace profiling {
namespace {

void
spin()
{
    volatile double x = 0;
    for (int i = 0; i < 500000; ++i)
        x += i;
}

TEST(PhaseTracker, AttributesToPhases)
{
    device::Session session;
    PhaseTracker tracker(session);
    {
        auto s = tracker.track(Phase::Sampling);
        spin();
    }
    {
        auto s = tracker.track(Phase::Training);
        session.chargeCpuOverhead(0.5);
    }
    EXPECT_GT(tracker.phase(Phase::Sampling).cpuBusySeconds, 0.0);
    EXPECT_NEAR(tracker.phase(Phase::Training).cpuBusySeconds, 0.5,
                0.05);
    EXPECT_EQ(tracker.phase(Phase::DataLoading).seconds(), 0.0);
}

TEST(PhaseTracker, GpuKernelLandsInGpuSeconds)
{
    device::Session session;
    PhaseTracker tracker(session);
    device::KernelDesc d;
    d.bytes = 672e8;  // 0.1 s at peak
    {
        auto s = tracker.track(Phase::Training);
        session.runKernel(device::DeviceType::GPU, d, [] { spin(); });
    }
    const auto &slice = tracker.phase(Phase::Training);
    EXPECT_NEAR(slice.gpuBusySeconds, 0.1, 0.01);
    // Host wall time of the emulated kernel must NOT leak into CPU.
    EXPECT_LT(slice.cpuBusySeconds, 0.05);
}

TEST(PhaseTracker, TotalSumsPhases)
{
    device::Session session;
    PhaseTracker tracker(session);
    {
        auto s = tracker.track(Phase::Sampling);
        session.chargeCpuOverhead(0.2);
    }
    {
        auto s = tracker.track(Phase::DataMovement);
        session.transfer(12ull << 30);
    }
    const auto total = tracker.total();
    EXPECT_NEAR(total.seconds(),
                tracker.phase(Phase::Sampling).seconds() +
                    tracker.phase(Phase::DataMovement).seconds(),
                1e-9);
}

TEST(PhaseTracker, ConcurrentAddIsSafeAndExact)
{
    device::Session session;
    PhaseTracker tracker(session);
    constexpr int kThreads = 8;
    constexpr int kAdds = 1000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&tracker] {
            power::ActivitySlice s;
            s.cpuBusySeconds = 0.001;
            for (int i = 0; i < kAdds; ++i)
                tracker.add(Phase::Sampling, s);
        });
    for (auto &t : threads)
        t.join();
    EXPECT_NEAR(tracker.phase(Phase::Sampling).cpuBusySeconds,
                kThreads * kAdds * 0.001, 1e-6);
}

TEST(PhaseTracker, WorkerThreadScopeGoesToWorkerTally)
{
    device::Session session;
    PhaseTracker tracker(session);
    std::thread worker([&tracker] {
        core::parallel::WorkerThreadScope mark;
        auto s = tracker.track(Phase::Sampling);
        spin();
    });
    worker.join();
    // Worker time is detached: the main phases stay empty and the
    // measured CPU busy seconds land in the worker tally.
    EXPECT_EQ(tracker.phase(Phase::Sampling).seconds(), 0.0);
    EXPECT_GT(tracker.workerPhase(Phase::Sampling).cpuBusySeconds,
              0.0);
    EXPECT_EQ(tracker.total().seconds(), 0.0);
}

TEST(PhaseTracker, AddWorkerKeepsTotalUnchanged)
{
    device::Session session;
    PhaseTracker tracker(session);
    {
        auto s = tracker.track(Phase::Training);
        session.chargeCpuOverhead(0.25);
    }
    const double before = tracker.total().seconds();
    power::ActivitySlice w;
    w.cpuBusySeconds = 7.0;
    tracker.addWorker(Phase::Sampling, w);
    EXPECT_NEAR(before, 0.25, 0.05);
    EXPECT_EQ(tracker.total().seconds(), before);
    EXPECT_NEAR(tracker.workerPhase(Phase::Sampling).cpuBusySeconds,
                7.0, 1e-12);
}

TEST(Profiler, BuildsNestedTree)
{
    device::Session session;
    Profiler prof(session);
    {
        auto outer = prof.scope("epoch");
        {
            auto inner = prof.scope("sample");
            session.chargeCpuOverhead(0.1);
        }
        {
            auto inner = prof.scope("train");
            session.chargeCpuOverhead(0.3);
        }
        {
            auto inner = prof.scope("sample");
            session.chargeCpuOverhead(0.1);
        }
    }
    const ProfileNode &root = prof.root();
    ASSERT_EQ(root.children.size(), 1u);
    const ProfileNode &epoch = *root.children[0];
    EXPECT_EQ(epoch.name, "epoch");
    EXPECT_EQ(epoch.calls, 1);
    ASSERT_EQ(epoch.children.size(), 2u);  // sample merged, train
    const ProfileNode &sample = *epoch.children[0];
    EXPECT_EQ(sample.calls, 2);
    EXPECT_NEAR(sample.slice.cpuBusySeconds, 0.2, 0.02);
    EXPECT_NE(prof.report().find("epoch"), std::string::npos);
}

TEST(Profiler, ConcurrentScopesMergeIntoSharedTree)
{
    device::Session session;
    Profiler prof(session);
    constexpr int kThreads = 4;
    constexpr int kIters = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&prof] {
            core::parallel::WorkerThreadScope mark;
            for (int i = 0; i < kIters; ++i) {
                auto outer = prof.scope("produce");
                auto inner = prof.scope("sample");
            }
        });
    for (auto &t : threads)
        t.join();
    // All threads share one tree rooted at the same node: one
    // "produce" child with one "sample" child, call counts exact.
    const ProfileNode &root = prof.root();
    ASSERT_EQ(root.children.size(), 1u);
    const ProfileNode &produce = *root.children[0];
    EXPECT_EQ(produce.name, "produce");
    EXPECT_EQ(produce.calls, kThreads * kIters);
    ASSERT_EQ(produce.children.size(), 1u);
    EXPECT_EQ(produce.children[0]->calls, kThreads * kIters);
}

TEST(Report, TableAlignsAndRenders)
{
    Table t({"a", "longer"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    const std::string s = t.render();
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_NE(s.find("333"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Report, CsvRendering)
{
    Table t({"name", "value"});
    t.addRow({"plain", "1"});
    t.addRow({"with,comma", "2"});
    t.addRow({"with\"quote", "3"});
    const std::string csv = t.renderCsv();
    EXPECT_EQ(csv, "name,value\n"
                   "plain,1\n"
                   "\"with,comma\",2\n"
                   "\"with\"\"quote\",3\n");
}

TEST(Report, CsvWriteToFile)
{
    Table t({"a"});
    t.addRow({"x"});
    const std::string path =
        std::string(::testing::TempDir()) + "/table.csv";
    t.writeCsv(path);
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a");
    std::getline(in, line);
    EXPECT_EQ(line, "x");
}

TEST(Report, Formatters)
{
    EXPECT_EQ(fmtSeconds(0.5), "500.00 ms");
    EXPECT_EQ(fmtSeconds(2.0), "2.000 s");
    EXPECT_EQ(fmtSeconds(5e-6), "5.0 us");
    EXPECT_EQ(fmtJoules(1500.0), "1.50 kJ");
    EXPECT_EQ(fmtJoules(20.0), "20.00 J");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
    EXPECT_EQ(fmtCount(12), "12");
    EXPECT_EQ(fmtFixed(3.14159, 2), "3.14");
}

TEST(Report, PhaseNames)
{
    EXPECT_STREQ(phaseName(Phase::DataLoading), "data_loading");
    EXPECT_STREQ(phaseName(Phase::Sampling), "sampling");
    EXPECT_STREQ(phaseName(Phase::DataMovement), "data_movement");
    EXPECT_STREQ(phaseName(Phase::Training), "training");
}

} // namespace
} // namespace profiling
} // namespace gnnbench
