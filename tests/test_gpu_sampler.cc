/** Tests for the GPU-based and UVA-based neighbor samplers. */

#include <gtest/gtest.h>

#include "gnnbench/dglx/gpu_sampler.h"
#include "gnnbench/graph/generate.h"

namespace gnnbench {
namespace dglx {
namespace {

Graph
makeGraph(uint64_t seed)
{
    core::Rng rng(seed);
    return Graph(
        graph::symmetrize(graph::rmat(500, 5000, rng), false));
}

TEST(GpuSampler, ProducesValidSamples)
{
    Graph g = makeGraph(1);
    device::Session session;
    GpuNeighborSampler sampler(g, {25, 10}, core::Rng(2),
                               GpuNeighborSampler::Mode::GpuResident,
                               session);
    auto smp = sampler.sample({1, 2, 3, 4});
    smp.validate();
    EXPECT_EQ(smp.blocks.size(), 2u);
}

TEST(GpuSampler, ExcludesHostWallTime)
{
    Graph g = makeGraph(3);
    device::Session session;
    GpuNeighborSampler sampler(g, {25, 10}, core::Rng(4),
                               GpuNeighborSampler::Mode::GpuResident,
                               session);
    sampler.sample({0, 1, 2, 3, 4, 5, 6, 7});
    const auto snap = session.snapshot();
    EXPECT_GT(snap.excludedWall, 0.0);
    EXPECT_GT(snap.modeled.gpuSeconds, 0.0);
    EXPECT_EQ(snap.modeled.xferSeconds, 0.0);
}

TEST(GpuSampler, UvaSlowerThanGpuResident)
{
    // Same graph, same seeds, same rng: the UVA sampler must charge
    // more modeled time (zero-copy PCIe reads vs device memory).
    Graph g = makeGraph(5);
    device::Session s_gpu, s_uva;
    GpuNeighborSampler gpu(g, {25, 10}, core::Rng(6),
                           GpuNeighborSampler::Mode::GpuResident,
                           s_gpu);
    GpuNeighborSampler uva(g, {25, 10}, core::Rng(6),
                           GpuNeighborSampler::Mode::Uva, s_uva);
    std::vector<NodeId> seeds;
    for (NodeId i = 0; i < 64; ++i)
        seeds.push_back(i);
    gpu.sample(seeds);
    uva.sample(seeds);
    EXPECT_GT(s_uva.snapshot().modeled.gpuSeconds,
              s_gpu.snapshot().modeled.gpuSeconds);
}

TEST(GpuSampler, SameResultsAsCpuSamplerWithSameRng)
{
    // The GPU sampler runs the same algorithm; with identical rng
    // state it must produce identical blocks.
    Graph g = makeGraph(7);
    device::Session session;
    NeighborSampler cpu(g, {5, 5}, core::Rng(8));
    GpuNeighborSampler gpu(g, {5, 5}, core::Rng(8),
                           GpuNeighborSampler::Mode::GpuResident,
                           session);
    auto a = cpu.sample({10, 20, 30});
    auto b = gpu.sample({10, 20, 30});
    EXPECT_EQ(a.blocks[0].srcNodes, b.blocks[0].srcNodes);
    EXPECT_EQ(a.blocks[0].csc.indices, b.blocks[0].csc.indices);
}

TEST(GpuSampler, ModeledTimeGrowsWithBatchSize)
{
    Graph g = makeGraph(9);
    device::Session s_small, s_large;
    GpuNeighborSampler small(g, {10, 10}, core::Rng(10),
                             GpuNeighborSampler::Mode::GpuResident,
                             s_small);
    GpuNeighborSampler large(g, {10, 10}, core::Rng(10),
                             GpuNeighborSampler::Mode::GpuResident,
                             s_large);
    std::vector<NodeId> few = {0, 1};
    std::vector<NodeId> many;
    for (NodeId i = 0; i < 256; ++i)
        many.push_back(i);
    small.sample(few);
    large.sample(many);
    EXPECT_GT(s_large.snapshot().modeled.gpuSeconds,
              s_small.snapshot().modeled.gpuSeconds);
}

} // namespace
} // namespace dglx
} // namespace gnnbench
