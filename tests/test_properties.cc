/**
 * Property-based tests of the graph substrate and both frameworks'
 * samplers: every case is generated from a seed (base seed from
 * GNNBENCH_TEST_SEED), validated through the gnncheck invariant
 * checkers, and shrunk + reported with its repro seed on failure.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "gnnbench/check/differential.h"
#include "gnnbench/check/property.h"
#include "gnnbench/check/statistical.h"
#include "gnnbench/check/validate.h"
#include "gnnbench/check/validate_sampling.h"
#include "gnnbench/core/parallel.h"
#include "gnnbench/dglx/graph.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/graph/convert.h"
#include "gnnbench/graph/generate.h"
#include "gnnbench/pygx/data.h"
#include "gnnbench/pygx/sampler.h"

#include "test_support.h"

namespace gnnbench {
namespace check {
namespace {

PropertyOptions
opts(int cases = 200)
{
    PropertyOptions o;
    o.numCases = cases;
    o.baseSeed = testenv::seed();
    return o;
}

/** Edge multiset as sorted (src, dst) pairs. */
std::vector<std::pair<NodeId, NodeId>>
edgePairs(const graph::CooGraph &g)
{
    std::vector<std::pair<NodeId, NodeId>> out;
    out.reserve(g.src.size());
    for (size_t e = 0; e < g.src.size(); ++e)
        out.emplace_back(g.src[e], g.dst[e]);
    std::sort(out.begin(), out.end());
    return out;
}

/** A seed-derived batch of unique seed nodes (never empty). */
std::vector<NodeId>
seedNodes(const GraphCase &c, uint64_t salt)
{
    core::Rng rng(c.seed ^ salt);
    const NodeId n = c.coo.numNodes;
    const NodeId k = 1 + static_cast<NodeId>(rng.uniformInt(
                             std::min<NodeId>(n, 16)));
    return rng.sampleWithoutReplacement(n, k);
}

// ---------------------------------------------------------------
// Graph-format invariants.
// ---------------------------------------------------------------

TEST(Properties, GeneratorProducesWellFormedCoo)
{
    EXPECT_TRUE(checkProperty(
        "generator-coo",
        [](const GraphCase &c) { return checkCoo(c.coo); }, opts()));
}

TEST(Properties, CooCsrRoundtripPreservesEdges)
{
    EXPECT_TRUE(checkProperty(
        "coo-csr-roundtrip",
        [](const GraphCase &c) {
            graph::CsrGraph csr = graph::cooToCsr(c.coo);
            if (Result r = checkCsr(csr); !r)
                return r;
            graph::CooGraph back = graph::csrToCoo(csr);
            if (edgePairs(back) != edgePairs(c.coo))
                return Result::fail(
                    "COO->CSR->COO changed the edge multiset");
            return Result::pass();
        },
        opts()));
}

/**
 * Canonicalize a CSR matrix by sorting each row's entries: the
 * builders are stable counting sorts over different key orders
 * (input edge order vs. source-row order), so within-row order is
 * representation detail, not sparsity structure.
 */
graph::CsrGraph
rowSorted(graph::CsrGraph g)
{
    for (NodeId r = 0; r < g.numRows; ++r)
        std::sort(g.indices.begin() +
                      static_cast<ptrdiff_t>(g.indptr[r]),
                  g.indices.begin() +
                      static_cast<ptrdiff_t>(g.indptr[r + 1]));
    return g;
}

bool
sameStructure(const graph::CsrGraph &a, const graph::CsrGraph &b)
{
    const graph::CsrGraph ca = rowSorted(a);
    const graph::CsrGraph cb = rowSorted(b);
    return ca.numRows == cb.numRows && ca.numCols == cb.numCols &&
           ca.indptr == cb.indptr && ca.indices == cb.indices;
}

TEST(Properties, CscEqualsCsrTranspose)
{
    EXPECT_TRUE(checkProperty(
        "csc-is-transpose",
        [](const GraphCase &c) {
            graph::CsrGraph csr = graph::cooToCsr(c.coo);
            graph::CsrGraph csc = graph::cooToCsc(c.coo);
            graph::CsrGraph t = graph::csrTranspose(csr);
            if (Result r = checkCsr(csc); !r)
                return r;
            if (!sameStructure(t, csc))
                return Result::fail(
                    "cooToCsc differs from transpose(cooToCsr)");
            return Result::pass();
        },
        opts()));
}

TEST(Properties, TransposeIsAnInvolution)
{
    EXPECT_TRUE(checkProperty(
        "transpose-involution",
        [](const GraphCase &c) {
            graph::CsrGraph csr = graph::cooToCsr(c.coo);
            graph::CsrGraph tt =
                graph::csrTranspose(graph::csrTranspose(csr));
            if (!sameStructure(tt, csr))
                return Result::fail(
                    "double transpose changed the matrix");
            return Result::pass();
        },
        opts()));
}

TEST(Properties, InducedSubgraphIsValidAndClosed)
{
    EXPECT_TRUE(checkProperty(
        "induced-subgraph",
        [](const GraphCase &c) {
            graph::CsrGraph csr = graph::cooToCsr(c.coo);
            auto nodes = seedNodes(c, 0x1D5);
            graph::CsrGraph sub = graph::inducedSubgraph(csr, nodes);
            if (Result r = checkCsr(sub, {.requireSquare = true});
                !r)
                return r;
            if (sub.numRows != static_cast<NodeId>(nodes.size()))
                return Result::fail("induced row count mismatch");
            return Result::pass();
        },
        opts()));
}

TEST(Properties, PartitionCoversAndAccountsCut)
{
    EXPECT_TRUE(checkProperty(
        "partition-validity",
        [](const GraphCase &c) {
            graph::CsrGraph csr =
                graph::cooToCsr(graph::symmetrize(c.coo));
            core::Rng rng(c.seed ^ 0x9A47);
            const int32_t k =
                1 + static_cast<int32_t>(rng.uniformInt(6));
            auto part = graph::partitionGraph(csr, k, rng);
            return checkPartition(csr, part);
        },
        opts(60)));
}

// ---------------------------------------------------------------
// Sampler-output invariants (both frameworks).
// ---------------------------------------------------------------

TEST(Properties, DglxNeighborSampleValid)
{
    EXPECT_TRUE(checkProperty(
        "dglx-neighbor-sample",
        [](const GraphCase &c) {
            dglx::Graph g(c.coo);
            std::vector<int> fanouts{3, 2};
            dglx::NeighborSampler s(g, fanouts,
                                    core::Rng(c.seed ^ 0xD51));
            auto smp = s.sample(seedNodes(c, 0xD52));
            return checkNeighborSample(smp, g.csc(), fanouts);
        },
        opts()));
}

TEST(Properties, PygxNeighborBatchValid)
{
    EXPECT_TRUE(checkProperty(
        "pygx-neighbor-batch",
        [](const GraphCase &c) {
            pygx::Data d(c.coo);
            device::Session session;
            std::vector<int> fanouts{3, 2};
            pygx::NeighborSampler s(d, fanouts,
                                    core::Rng(c.seed ^ 0xE51),
                                    &session);
            auto batch = s.sample(seedNodes(c, 0xE52));
            return checkNeighborBatch(batch, d.csc(), fanouts);
        },
        opts()));
}

TEST(Properties, DglxInducedSamplersValid)
{
    EXPECT_TRUE(checkProperty(
        "dglx-induced-samplers",
        [](const GraphCase &c) {
            dglx::Graph g(c.coo);
            const NodeId n = c.coo.numNodes;
            dglx::ClusterSampler cs(
                g, std::max<int32_t>(1, std::min<NodeId>(n, 4)),
                core::Rng(c.seed ^ 0xC51));
            if (Result r =
                    checkInducedSample(cs.sample(1), g.csr());
                !r)
                return r;
            dglx::SaintRwSampler rs(g, std::min<NodeId>(n, 8), 2,
                                    core::Rng(c.seed ^ 0xC52));
            if (Result r = checkInducedSample(rs.sample(), g.csr());
                !r)
                return r;
            dglx::SaintNodeSampler ns(g, std::min<NodeId>(n, 8),
                                      core::Rng(c.seed ^ 0xC53));
            return checkInducedSample(ns.sample(), g.csr());
        },
        opts(100)));
}

TEST(Properties, PygxInducedSamplersValid)
{
    EXPECT_TRUE(checkProperty(
        "pygx-induced-samplers",
        [](const GraphCase &c) {
            pygx::Data d(c.coo);
            device::Session session;
            const NodeId n = c.coo.numNodes;
            pygx::ClusterSampler cs(
                d, std::max<int32_t>(1, std::min<NodeId>(n, 4)),
                core::Rng(c.seed ^ 0xF51), &session);
            if (Result r = checkEdgeBatch(cs.sample(1), d.csc()); !r)
                return r;
            pygx::SaintRwSampler rs(d, std::min<NodeId>(n, 8), 2,
                                    core::Rng(c.seed ^ 0xF52),
                                    &session);
            if (Result r = checkEdgeBatch(rs.sample(), d.csc()); !r)
                return r;
            pygx::SaintNodeSampler ns(d, std::min<NodeId>(n, 8),
                                      core::Rng(c.seed ^ 0xF53),
                                      &session);
            return checkEdgeBatch(ns.sample(), d.csc());
        },
        opts(100)));
}

// ---------------------------------------------------------------
// Harness self-tests: shrinking, determinism, and the VALIDATE
// hooks' failure path.
// ---------------------------------------------------------------

TEST(Properties, GeneratorIsDeterministic)
{
    for (int i = 0; i < 50; ++i) {
        const uint64_t seed = caseSeed(testenv::seed(), i);
        GraphCase a = generateGraphCase(seed);
        GraphCase b = generateGraphCase(seed);
        ASSERT_EQ(a.shape, b.shape);
        ASSERT_EQ(a.coo.numNodes, b.coo.numNodes);
        ASSERT_EQ(a.coo.src, b.coo.src);
        ASSERT_EQ(a.coo.dst, b.coo.dst);
    }
}

TEST(Properties, ShrinkingReducesCounterexampleAndPrintsSeed)
{
    // A property that rejects any graph with >= 1 edge must shrink
    // to a minimal failing case and report the repro seed.
    std::ostringstream report;
    PropertyOptions o = opts(50);
    o.out = &report;
    const bool ok = checkProperty(
        "self-test-shrink",
        [](const GraphCase &c) {
            if (!c.coo.src.empty())
                return Result::fail("graph has an edge");
            return Result::pass();
        },
        o);
    EXPECT_FALSE(ok);
    const std::string text = report.str();
    EXPECT_NE(text.find("repro seed"), std::string::npos) << text;
    EXPECT_NE(text.find("shrunk"), std::string::npos) << text;
    // The shrunk counterexample for "has an edge" is a single edge.
    EXPECT_NE(text.find("edges=1"), std::string::npos) << text;
}

TEST(Properties, ShrinkCandidatesAreStrictlySmaller)
{
    for (int i = 0; i < 50; ++i) {
        GraphCase c =
            generateGraphCase(caseSeed(testenv::seed() ^ 0x5, i));
        for (const auto &cand : shrinkGraph(c.coo)) {
            EXPECT_TRUE(checkCoo(cand)) << "shrink broke the graph";
            const bool smaller =
                cand.src.size() < c.coo.src.size() ||
                cand.numNodes < c.coo.numNodes;
            EXPECT_TRUE(smaller) << "shrink candidate not smaller";
        }
    }
}

[[noreturn]] void
dieOnCorruptedCsr()
{
    setEnabled(true);
    ScopedContext ctx("repro seed=12345");
    graph::CsrGraph bad;
    bad.numRows = 3;
    bad.numCols = 3;
    bad.indptr = {0, 1, 2, 4};  // claims 4 edges...
    bad.indices = {1, 2};       // ...but holds 2
    graph::csrTranspose(bad);
    std::exit(0);  // unreachable: the validator must reject above
}

TEST(PropertiesDeath, CorruptedCsrIsRejectedWithReproSeed)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(dieOnCorruptedCsr(), ::testing::ExitedWithCode(1),
                "validation failed.*repro seed=12345");
}

[[noreturn]] void
dieOnOutOfRangeCoo()
{
    setEnabled(true);
    graph::CooGraph bad;
    bad.numNodes = 2;
    bad.src = {0, 1};
    bad.dst = {1, 5};  // 5 out of range
    graph::cooToCsr(bad);
    std::exit(0);  // unreachable: the validator must reject above
}

TEST(PropertiesDeath, OutOfRangeCooIsRejected)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(dieOnOutOfRangeCoo(), ::testing::ExitedWithCode(1),
                "validation failed");
}

TEST(Properties, ValidateDisabledByDefaultHereAndTogglable)
{
    // The suite runs with hooks off (no GNNBENCH_VALIDATE in the
    // test environment); setEnabled() must override in both
    // directions without crashing enabled() callers.
    setEnabled(true);
    EXPECT_TRUE(enabled());
    setEnabled(false);
    EXPECT_FALSE(enabled());
}

// ---------------------------------------------------------------
// GraphSAINT estimator unbiasedness (statistical; the Slow variant
// runs more draws on a bigger graph).
// ---------------------------------------------------------------

void
saintUnbiasednessCheck(NodeId n, EdgeId m, int prob_draws,
                       int estimate_draws)
{
    core::Rng grng(testenv::seed() ^ 0x5A17);
    graph::CooGraph coo =
        graph::symmetrize(graph::rmat(n, m, grng));
    dglx::Graph g(coo);

    // Per-node "loss" values: arbitrary positive deterministic mix.
    std::vector<double> value(static_cast<size_t>(n));
    for (NodeId v = 0; v < n; ++v)
        value[static_cast<size_t>(v)] =
            1.0 + 0.01 * static_cast<double>(v % 97);

    dglx::SaintRwSampler sampler(g, std::max<NodeId>(n / 8, 1), 2,
                                 core::Rng(0));
    const uint64_t base = testenv::seed() ^ 0xD0;
    NodeSetDraw draw = [&](int t) {
        sampler.reseed(core::Rng(core::parallel::chunkSeed(
            base, 0x5417, static_cast<uint64_t>(t))));
        return sampler.sample().nodes;
    };
    EstimatorStats stats = saintEstimatorStats(
        value, draw, prob_draws, estimate_draws);
    EXPECT_TRUE(checkSaintUnbiased(stats))
        << "z=" << stats.zScore << " full=" << stats.fullMean
        << " ht=" << stats.htMean;
}

TEST(Properties, SaintEstimatorUnbiased)
{
    saintUnbiasednessCheck(300, 1200, 400, 120);
}

TEST(Properties, SaintEstimatorUnbiasedSlow)
{
    saintUnbiasednessCheck(2000, 10000, 1500, 400);
}

} // namespace
} // namespace check
} // namespace gnnbench
