/** Tests for the SGD and Adam optimizers. */

#include <gtest/gtest.h>

#include <cmath>

#include "gnnbench/core/optim.h"

namespace gnnbench {
namespace core {
namespace {

/** Quadratic bowl: loss = 0.5 * ||x - target||^2, grad = x - target. */
void
setQuadraticGrad(const ag::Var &x, const Tensor &target)
{
    x->zeroGrad();
    x->accumulateGrad(ops::sub(x->value, target));
}

TEST(Sgd, ConvergesOnQuadratic)
{
    ag::Var x = ag::leaf(Tensor::full(2, 2, 5.0f), true);
    Tensor target = Tensor::full(2, 2, 1.0f);
    Sgd opt({x}, 0.2f);
    for (int i = 0; i < 100; ++i) {
        setQuadraticGrad(x, target);
        opt.step();
    }
    EXPECT_NEAR(x->value(0, 0), 1.0f, 1e-4f);
}

TEST(Sgd, SingleStepExactUpdate)
{
    ag::Var x = ag::leaf(Tensor::full(1, 1, 3.0f), true);
    Sgd opt({x}, 0.1f);
    x->accumulateGrad(Tensor::full(1, 1, 2.0f));
    opt.step();
    EXPECT_NEAR(x->value(0, 0), 3.0f - 0.1f * 2.0f, 1e-6f);
}

TEST(Sgd, MomentumAcceleratesConstantGradient)
{
    ag::Var plain = ag::leaf(Tensor::full(1, 1, 0.0f), true);
    ag::Var mom = ag::leaf(Tensor::full(1, 1, 0.0f), true);
    Sgd opt_plain({plain}, 0.1f);
    Sgd opt_mom({mom}, 0.1f, 0.9f);
    for (int i = 0; i < 10; ++i) {
        plain->zeroGrad();
        plain->accumulateGrad(Tensor::full(1, 1, 1.0f));
        opt_plain.step();
        mom->zeroGrad();
        mom->accumulateGrad(Tensor::full(1, 1, 1.0f));
        opt_mom.step();
    }
    EXPECT_LT(mom->value(0, 0), plain->value(0, 0));
}

TEST(Adam, ConvergesOnQuadratic)
{
    ag::Var x = ag::leaf(Tensor::full(3, 1, -4.0f), true);
    Tensor target(3, 1);
    target(0, 0) = 1.0f;
    target(1, 0) = -2.0f;
    target(2, 0) = 0.5f;
    Adam opt({x}, 0.1f);
    for (int i = 0; i < 500; ++i) {
        setQuadraticGrad(x, target);
        opt.step();
    }
    for (int64_t i = 0; i < 3; ++i)
        EXPECT_NEAR(x->value(i, 0), target(i, 0), 1e-2f);
}

TEST(Adam, FirstStepIsLrSized)
{
    // With bias correction, the first Adam step is ~lr * sign(grad).
    ag::Var x = ag::leaf(Tensor::full(1, 1, 0.0f), true);
    Adam opt({x}, 0.01f);
    x->accumulateGrad(Tensor::full(1, 1, 123.0f));
    opt.step();
    EXPECT_NEAR(x->value(0, 0), -0.01f, 1e-4f);
}

TEST(Adam, SkipsParamsWithoutGrad)
{
    ag::Var x = ag::leaf(Tensor::full(1, 1, 7.0f), true);
    Adam opt({x}, 0.1f);
    opt.step();  // no gradient accumulated
    EXPECT_EQ(x->value(0, 0), 7.0f);
}

TEST(Optimizer, ZeroGradClears)
{
    ag::Var x = ag::leaf(Tensor::full(1, 1, 0.0f), true);
    Adam opt({x}, 0.1f);
    x->accumulateGrad(Tensor::full(1, 1, 1.0f));
    opt.zeroGrad();
    EXPECT_TRUE(x->grad.empty());
}

TEST(Optimizer, RejectsNonGradParams)
{
    ag::Var c = ag::constant(Tensor::full(1, 1, 0.0f));
    EXPECT_DEATH(Sgd({c}, 0.1f), "require grad");
}

} // namespace
} // namespace core
} // namespace gnnbench
