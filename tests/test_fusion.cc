/**
 * Differential battery for the multi-kernel fusion layer
 * (src/gnnbench/kernels/fusion.*).
 *
 * The contract under test is the repo-wide determinism guarantee
 * extended to fusion: a fused executor must be *bit-identical* to the
 * materialized multi-kernel execution it replaces — for every kernel
 * variant (Reference/Tiled/Simd), every thread count, weighted and
 * unweighted — while eliminating the intermediate tensor's modeled
 * traffic (fused_bytes_saved > 0).  The materialized golden model is
 * hand-rolled here in separate passes (gather, then scale, then
 * ascending-edge scatter), so no compiler contraction can leak into
 * the reference.  KernelGraph's gating rules (eligibility table,
 * framework support, the GNNBENCH_DEVICE_FUSION knob, single-consumer
 * requirement) are pinned as unit tests, including the counter
 * side-effects under device.fusion.*.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "gnnbench/check/property.h"
#include "gnnbench/core/optim.h"
#include "gnnbench/core/parallel.h"
#include "gnnbench/core/rng.h"
#include "gnnbench/device/hierarchy.h"
#include "gnnbench/dglx/nn.h"
#include "gnnbench/graph/convert.h"
#include "gnnbench/graph/generate.h"
#include "gnnbench/kernels/fusion.h"
#include "gnnbench/profiling/metrics_registry.h"

#include "test_support.h"

namespace gnnbench {
namespace kernels {
namespace {

using check::GraphCase;
using check::PropertyOptions;
using check::Result;
using core::Tensor;

constexpr KernelVariant kVariants[] = {KernelVariant::Reference,
                                       KernelVariant::Tiled,
                                       KernelVariant::Simd};
constexpr int kThreadCounts[] = {1, 4};

/** RAII: run a scope at a thread count, then restore. */
struct ThreadScope
{
    explicit ThreadScope(int n) : saved_(core::parallel::numThreads())
    {
        core::parallel::setNumThreads(n);
    }
    ~ThreadScope() { core::parallel::setNumThreads(saved_); }
    int saved_;
};

/** RAII: override the latched DeviceConfig, then restore defaults. */
struct ConfigScope
{
    explicit ConfigScope(const device::DeviceConfig &cfg)
    {
        device::setDeviceConfig(cfg);
    }
    ~ConfigScope() { device::setDeviceConfig(device::DeviceConfig{}); }
};

PropertyOptions
propOpts(int cases)
{
    PropertyOptions o;
    o.numCases = cases;
    o.baseSeed = testenv::seed();
    return o;
}

Result
bitEqual(const Tensor &got, const Tensor &want, const std::string &what)
{
    if (got.rows() != want.rows() || got.cols() != want.cols())
        return Result::fail(what + ": shape mismatch");
    if (std::memcmp(got.data(), want.data(),
                    static_cast<size_t>(want.numel()) *
                        sizeof(float)) != 0)
        return Result::fail(what + ": not bit-identical");
    return Result::pass();
}

/**
 * Materialized gather→[mul-edge]→scatter golden model, in three
 * separate serial passes exactly like the pygx kernels execute them:
 * the per-edge product is rounded once in its own pass, then
 * accumulated in ascending edge order.
 */
Tensor
materializedGatherScatter(const Tensor &x,
                          const std::vector<NodeId> &src,
                          const std::vector<NodeId> &dst,
                          const float *w, NodeId out_rows)
{
    const int64_t f = x.cols();
    const size_t m = src.size();
    Tensor msg = Tensor::empty(static_cast<int64_t>(m), f);
    for (size_t e = 0; e < m; ++e) {
        const float *xr = x.data() + src[e] * f;
        float *mr = msg.data() + static_cast<int64_t>(e) * f;
        for (int64_t j = 0; j < f; ++j)
            mr[j] = xr[j];
    }
    if (w) {
        for (size_t e = 0; e < m; ++e) {
            float *mr = msg.data() + static_cast<int64_t>(e) * f;
            for (int64_t j = 0; j < f; ++j)
                mr[j] *= w[e];
        }
    }
    Tensor out = Tensor::zeros(out_rows, f);
    for (size_t e = 0; e < m; ++e) {
        const float *mr = msg.data() + static_cast<int64_t>(e) * f;
        float *orow = out.data() + dst[e] * f;
        for (int64_t j = 0; j < f; ++j)
            orow[j] += mr[j];
    }
    return out;
}

Result
gatherScatterConformance(const GraphCase &c, int64_t f, bool weighted)
{
    const NodeId n = std::max<NodeId>(c.coo.numNodes, 1);
    core::Rng rng(c.seed ^ 0x9e3779b97f4a7c15ull);
    const Tensor x = Tensor::uniform(n, f, rng, -1.0f, 1.0f);
    std::vector<float> w(c.coo.src.size());
    for (auto &v : w)
        v = rng.uniformFloat() - 0.5f;
    const float *wp = weighted ? w.data() : nullptr;

    const Tensor want = materializedGatherScatter(
        x, c.coo.src, c.coo.dst, wp, n);
    for (KernelVariant v : kVariants) {
        for (int threads : kThreadCounts) {
            ThreadScope scope(threads);
            const Tensor got = gatherScatterSum(x, c.coo.src,
                                                c.coo.dst, wp, n, v);
            Result r = bitEqual(
                got, want,
                std::string("gatherScatterSum/") + variantName(v) +
                    "/t=" + std::to_string(threads));
            if (!r)
                return r;
        }
    }
    return Result::pass();
}

TEST(FusedGatherScatter, BitIdenticalToMaterialized)
{
    for (int64_t f : {1, 7, 64})
        EXPECT_TRUE(checkProperty(
            "fused-gather-scatter-f" + std::to_string(f),
            [f](const GraphCase &c) {
                return gatherScatterConformance(c, f, false);
            },
            propOpts(20)));
}

TEST(FusedGatherScatter, WeightedBitIdenticalToMaterialized)
{
    for (int64_t f : {1, 7, 64})
        EXPECT_TRUE(checkProperty(
            "fused-gather-scatter-weighted-f" + std::to_string(f),
            [f](const GraphCase &c) {
                return gatherScatterConformance(c, f, true);
            },
            propOpts(20)));
}

Result
spmmReluConformance(const GraphCase &c, ReduceOp op, int64_t f,
                    bool weighted)
{
    const graph::CsrGraph csc = graph::cooToCsc(c.coo);
    const NodeId n = std::max<NodeId>(c.coo.numNodes, 1);
    core::Rng rng(c.seed ^ 0xda3e39cb94b95bdbull);
    const Tensor x = Tensor::uniform(n, f, rng, -1.0f, 1.0f);
    std::vector<float> w(csc.numEdges());
    for (auto &v : w)
        v = rng.uniformFloat() - 0.5f;
    const float *wp = weighted ? w.data() : nullptr;

    for (KernelVariant v : kVariants) {
        // Materialized execution of the same variant: aggregate,
        // then a separate ReLU pass (exact, so order-free).
        Tensor want = spmm(csc, x, op, wp, v);
        float *p = want.data();
        for (int64_t i = 0; i < want.numel(); ++i)
            p[i] = std::max(p[i], 0.0f);
        for (int threads : kThreadCounts) {
            ThreadScope scope(threads);
            const Tensor got = spmmRelu(csc, x, op, wp, v);
            Result r = bitEqual(
                got, want,
                std::string("spmmRelu/") + variantName(v) + "/" +
                    reduceOpName(op) +
                    "/t=" + std::to_string(threads));
            if (!r)
                return r;
        }
    }
    return Result::pass();
}

TEST(FusedSpmmRelu, BitIdenticalToMaterialized)
{
    for (ReduceOp op : {ReduceOp::Sum, ReduceOp::Mean})
        for (int64_t f : {1, 16})
            EXPECT_TRUE(checkProperty(
                "fused-spmm-relu-" +
                    std::string(reduceOpName(op)) + "-f" +
                    std::to_string(f),
                [op, f](const GraphCase &c) {
                    return spmmReluConformance(c, op, f, false);
                },
                propOpts(15)));
}

TEST(FusedSpmmRelu, WeightedBitIdenticalToMaterialized)
{
    for (int64_t f : {1, 16})
        EXPECT_TRUE(checkProperty(
            "fused-spmm-relu-weighted-f" + std::to_string(f),
            [f](const GraphCase &c) {
                return spmmReluConformance(c, ReduceOp::Sum, f,
                                           true);
            },
            propOpts(15)));
}

/**
 * End-to-end: the dglx SageConv mean aggregation goes through the
 * fused gspmm_mean path when fusion is on and through the
 * materialized SpMM-sum + row-scale pair when it is off.  Forward
 * values AND parameter gradients must be bit-identical either way,
 * at every thread count.
 */
TEST(FusedSageConv, FusionOnOffBitIdenticalIncludingGrads)
{
    namespace ag = core::ag;
    core::Rng grng(testenv::seed());
    dglx::Graph g(graph::symmetrize(
        graph::rmat(48, 240, grng), false));
    core::Rng xrng(testenv::seed() ^ 1);
    const Tensor x = Tensor::randn(48, 8, xrng);

    auto run = [&](bool fusion_on, int threads, Tensor *out,
                   std::vector<Tensor> *grads) {
        device::DeviceConfig cfg;
        cfg.fusionEnabled = fusion_on;
        ConfigScope config(cfg);
        ThreadScope scope(threads);
        core::Rng wrng(testenv::seed() ^ 2);
        dglx::SageConv conv(8, 4, wrng);
        dglx::KernelCtx ctx;
        ag::Var out_v =
            conv.forward(g, ag::constant(x.clone()), ctx);
        const Tensor seed_grad = Tensor::full(
            out_v->value.rows(), out_v->value.cols(), 1.0f);
        ag::backward(out_v, &seed_grad);
        *out = out_v->value.clone();
        for (const auto &p : conv.params())
            grads->push_back(p->grad.clone());
    };

    Tensor ref_out;
    std::vector<Tensor> ref_grads;
    run(true, 1, &ref_out, &ref_grads);
    ASSERT_FALSE(ref_grads.empty());

    for (bool fusion_on : {true, false}) {
        for (int threads : kThreadCounts) {
            Tensor out;
            std::vector<Tensor> grads;
            run(fusion_on, threads, &out, &grads);
            const std::string what =
                std::string("SageConv fusion=") +
                (fusion_on ? "on" : "off") +
                " t=" + std::to_string(threads);
            EXPECT_TRUE(bitEqual(out, ref_out, what).ok) << what;
            ASSERT_EQ(grads.size(), ref_grads.size());
            for (size_t i = 0; i < grads.size(); ++i)
                EXPECT_TRUE(
                    bitEqual(grads[i], ref_grads[i], what).ok)
                    << what << " grad " << i;
        }
    }
}

uint64_t
fusionCounter(const char *name)
{
    return profiling::MetricsRegistry::global().counter(name).value();
}

TEST(KernelGraph, EligiblePairFusesAndBooksSavings)
{
    const uint64_t fused0 =
        fusionCounter("device.fusion.fused_pairs");
    const uint64_t saved0 =
        fusionCounter("device.fusion.fused_bytes_saved");

    KernelGraph g(true);
    const int agg = g.addNode(FusedOp::Spmm, "gspmm", 4096);
    const int scale = g.addNode(FusedOp::RowScale, "row_scale", 4096);
    g.addEdge(agg, scale);
    EXPECT_TRUE(g.fuse(agg, scale, 8192));
    EXPECT_EQ(g.fusedPairs(), 1u);
    EXPECT_EQ(g.bytesSaved(), 8192u);
    EXPECT_EQ(g.rejectedPairs(), 0u);
    EXPECT_GT(g.bytesSaved(), 0u); // fused_bytes_saved > 0

    EXPECT_EQ(fusionCounter("device.fusion.fused_pairs"),
              fused0 + 1);
    EXPECT_EQ(fusionCounter("device.fusion.fused_bytes_saved"),
              saved0 + 8192);
}

TEST(KernelGraph, MultiConsumerProducerIsRejected)
{
    const uint64_t rejected0 =
        fusionCounter("device.fusion.rejected_pairs");
    KernelGraph g(true);
    const int gather = g.addNode(FusedOp::Gather, "gather", 4096);
    const int s1 = g.addNode(FusedOp::Scatter, "scatter_a", 0);
    const int s2 = g.addNode(FusedOp::Scatter, "scatter_b", 0);
    g.addEdge(gather, s1);
    g.addEdge(gather, s2);
    // The producer's output is needed elsewhere: eligible, but
    // declined — and the decline is counted.
    EXPECT_FALSE(g.fuse(gather, s1, 4096));
    EXPECT_EQ(g.fusedPairs(), 0u);
    EXPECT_EQ(g.rejectedPairs(), 1u);
    EXPECT_EQ(fusionCounter("device.fusion.rejected_pairs"),
              rejected0 + 1);
}

TEST(KernelGraph, UnsupportedFrameworkIsRejected)
{
    // pygx-style recording: eligible chain, framework can't fuse
    // (paper Observation 3).
    KernelGraph g(false);
    const int gather = g.addNode(FusedOp::Gather, "gather", 4096);
    const int scat = g.addNode(FusedOp::Scatter, "scatter_sum", 0);
    g.addEdge(gather, scat);
    EXPECT_FALSE(g.fuse(gather, scat, 4096));
    EXPECT_EQ(g.fusedPairs(), 0u);
    EXPECT_EQ(g.rejectedPairs(), 1u);
    EXPECT_FALSE(g.supportsFusion());
}

TEST(KernelGraph, FusionKnobOffRejects)
{
    device::DeviceConfig cfg;
    cfg.fusionEnabled = false;
    ConfigScope config(cfg);
    EXPECT_FALSE(fusionEnabled());
    KernelGraph g(true);
    const int agg = g.addNode(FusedOp::Spmm, "gspmm", 4096);
    const int act = g.addNode(FusedOp::Activation, "relu", 4096);
    g.addEdge(agg, act);
    EXPECT_FALSE(g.fuse(agg, act, 4096));
    EXPECT_EQ(g.rejectedPairs(), 1u);
}

TEST(KernelGraph, IneligiblePairFailsSilently)
{
    const uint64_t rejected0 =
        fusionCounter("device.fusion.rejected_pairs");
    KernelGraph g(true);
    const int sample = g.addNode(FusedOp::Sample, "sample", 4096);
    const int gather = g.addNode(FusedOp::Gather, "gather", 4096);
    g.addEdge(sample, gather);
    // Not in the eligibility table: no fuse, and no rejected count
    // either (the pair was never a fusion candidate).
    EXPECT_FALSE(g.fuse(sample, gather, 4096));
    EXPECT_EQ(g.fusedPairs(), 0u);
    EXPECT_EQ(g.rejectedPairs(), 0u);
    EXPECT_EQ(fusionCounter("device.fusion.rejected_pairs"),
              rejected0);
}

} // namespace
} // namespace kernels
} // namespace gnnbench
