/**
 * Test battery for the pipelined memory-hierarchy device model
 * (src/gnnbench/device/hierarchy.*).
 *
 * The LRU cache tiers carry an exact accounting contract — eviction
 * counts pinned to the arithmetic identity evictions == inserts -
 * resident, hit+miss conservation, byte budgets never exceeded —
 * checked both on hand-pinned scenarios and on gnncheck-generated
 * random access traces.  The transfer-path constants are pinned
 * against the former flat model (dmaTransfer == GpuModel::transferTime
 * exactly; tile-aligned uvaRead == bytes / 8 GB/s), so every figure of
 * the reproduction is provably unchanged by the hierarchy refactor.
 * The GNNBENCH_DEVICE_* env knobs follow the serve-layer contract:
 * unknown values are fatal at first read, never silently ignored.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "gnnbench/check/property.h"
#include "gnnbench/device/device.h"
#include "gnnbench/device/hierarchy.h"
#include "gnnbench/device/session.h"
#include "gnnbench/graph/convert.h"

#include "test_support.h"

namespace gnnbench {
namespace device {
namespace {

using check::GraphCase;
using check::PropertyOptions;
using check::Result;

PropertyOptions
propOpts(int cases)
{
    PropertyOptions o;
    o.numCases = cases;
    o.baseSeed = testenv::seed();
    return o;
}

/** The per-step accounting invariants of one tier. */
Result
tierInvariants(const CacheTier &t)
{
    if (t.hits() + t.misses() != t.accesses())
        return Result::fail("hits + misses != accesses");
    if (t.evictions() != t.inserts() - t.residentTiles())
        return Result::fail("evictions != inserts - resident");
    if (t.bytesUsed() > t.capacityBytes())
        return Result::fail("byte budget exceeded");
    if (t.residentTiles() > t.capacityTiles())
        return Result::fail("tile budget exceeded");
    return Result::pass();
}

TEST(CacheTier, ExactEvictionAccounting)
{
    // Four-tile cache; the access pattern is pinned, so every counter
    // value is an exact expectation, not a bound.
    CacheTier t("l2", 4 * 4096, 4096);
    EXPECT_EQ(t.capacityTiles(), 4u);

    for (uint64_t tile : {0u, 1u, 2u, 3u}) {
        EXPECT_FALSE(t.access(tile)); // cold miss
        t.insert(tile);
    }
    EXPECT_EQ(t.hits(), 0u);
    EXPECT_EQ(t.misses(), 4u);
    EXPECT_EQ(t.inserts(), 4u);
    EXPECT_EQ(t.evictions(), 0u);
    EXPECT_EQ(t.residentTiles(), 4u);
    EXPECT_EQ(t.bytesUsed(), t.capacityBytes());

    // Touch 0 (now MRU), then insert 4: the LRU victim must be 1.
    EXPECT_TRUE(t.access(0));
    t.insert(4);
    EXPECT_EQ(t.evictions(), 1u);
    EXPECT_FALSE(t.contains(1));
    EXPECT_TRUE(t.contains(0));
    EXPECT_TRUE(t.contains(2));
    EXPECT_TRUE(t.contains(3));
    EXPECT_TRUE(t.contains(4));

    // Re-inserting a resident tile promotes without insert/evict.
    t.insert(2);
    EXPECT_EQ(t.inserts(), 5u);
    EXPECT_EQ(t.evictions(), 1u);
    t.insert(5); // LRU order is now [2,4,0,3]: the victim is 3
    EXPECT_EQ(t.evictions(), 2u);
    EXPECT_FALSE(t.contains(3));
    EXPECT_TRUE(t.contains(0));
    EXPECT_TRUE(t.contains(2));

    EXPECT_EQ(t.hits() + t.misses(), t.accesses());
    EXPECT_EQ(t.evictions(), t.inserts() - t.residentTiles());

    t.reset();
    EXPECT_EQ(t.residentTiles(), 0u);
    EXPECT_EQ(t.accesses(), 0u);
    EXPECT_EQ(t.inserts(), 0u);
    EXPECT_EQ(t.evictions(), 0u);
}

/** Derive a tile-access trace from a generated graph: each edge's
 *  endpoints become tile ids, which preserves the generator's reuse
 *  structure (skew, duplicates, locality). */
std::vector<uint64_t>
traceFromCase(const GraphCase &c, uint64_t mod)
{
    std::vector<uint64_t> trace;
    trace.reserve(c.coo.src.size() * 2);
    for (size_t i = 0; i < c.coo.src.size(); ++i) {
        trace.push_back(static_cast<uint64_t>(c.coo.src[i]) % mod);
        trace.push_back(static_cast<uint64_t>(c.coo.dst[i]) % mod);
    }
    return trace;
}

TEST(CacheTier, ConservationOnRandomTraces)
{
    EXPECT_TRUE(checkProperty(
        "cache-tier-conservation",
        [](const GraphCase &c) {
            // Small cache so evictions actually happen.
            CacheTier t("l2", 8 * 64, 64);
            for (uint64_t tile : traceFromCase(c, 101)) {
                if (!t.access(tile))
                    t.insert(tile);
                Result r = tierInvariants(t);
                if (!r)
                    return r;
                if (!t.contains(tile))
                    return Result::fail(
                        "accessed tile not resident after fill");
            }
            return Result::pass();
        },
        propOpts(60)));
}

TEST(CacheTier, HitsMonotonicInCapacity)
{
    // LRU has the inclusion property: a larger cache serving the same
    // trace can only hit more.  This is the reuse-distance view — an
    // access hits iff its reuse distance fits the capacity.
    EXPECT_TRUE(checkProperty(
        "cache-tier-capacity-monotonic",
        [](const GraphCase &c) {
            const auto trace = traceFromCase(c, 257);
            uint64_t prev_hits = 0;
            for (uint64_t tiles : {4u, 8u, 16u, 32u}) {
                CacheTier t("l2", tiles * 64, 64);
                for (uint64_t tile : trace)
                    if (!t.access(tile))
                        t.insert(tile);
                if (t.hits() < prev_hits)
                    return Result::fail(
                        "hits dropped when capacity grew");
                prev_hits = t.hits();
            }
            return Result::pass();
        },
        propOpts(40)));
}

TEST(Hierarchy, DmaTransferMatchesFlatModel)
{
    // The pipelined path must reproduce the former flat PCIe charge
    // bit-for-bit: setup + bytes / 12 GB/s.
    MemoryHierarchy h;
    GpuModel flat{GpuSpec{}};
    for (uint64_t bytes : {0ull, 1ull, 4096ull, 1000000ull,
                           123456789ull, 26778000ull})
        EXPECT_DOUBLE_EQ(h.dmaTransfer(bytes),
                         flat.transferTime(bytes))
            << "bytes=" << bytes;
}

TEST(Hierarchy, UvaReadMatchesFlatModelAtTileGranularity)
{
    // Link drain (12 GB/s) + one controller round trip per tile
    // (tile / 24 GB/s) == the former flat 8 GB/s UVA charge, exactly,
    // for tile-aligned streams.
    MemoryHierarchy h;
    GpuModel flat{GpuSpec{}};
    const uint64_t tile = h.spec().tileBytes;
    for (uint64_t tiles : {1ull, 7ull, 1024ull}) {
        const uint64_t bytes = tiles * tile;
        EXPECT_DOUBLE_EQ(h.uvaRead(bytes, h.defaultTxns(bytes)),
                         flat.uvaAccessTime(bytes))
            << "bytes=" << bytes;
    }
    // Fewer, larger transactions beat tile-granular zero-copy: the
    // controller overhead is per transaction.
    const uint64_t bytes = 64 * tile;
    MemoryHierarchy h2;
    EXPECT_LT(h2.uvaRead(bytes, 4), h2.uvaRead(bytes, 64));
}

TEST(Hierarchy, PreloadMakesGathersHitVram)
{
    MemoryHierarchy h;
    FeatureRegion region = h.registerRegion(1024, 512);
    EXPECT_TRUE(region.valid());
    EXPECT_EQ(region.bytes(), 1024u * 512u);

    const double t = h.preloadRegion(region);
    EXPECT_GT(t, 0.0);
    EXPECT_EQ(h.vram().residentTiles(), region.numTiles);

    std::vector<NodeId> rows;
    for (NodeId v = 0; v < 1024; v += 3)
        rows.push_back(v);
    const auto c = h.gatherRead(region, rows, Placement::Device);
    EXPECT_GT(c.gpuSeconds, 0.0);
    // Everything was pre-loaded: no demand paging, no zero-copy.
    EXPECT_EQ(c.xferSeconds, 0.0);
    EXPECT_EQ(c.uvaBytes, 0u);
    EXPECT_EQ(h.vram().misses(), 0u);
}

TEST(Hierarchy, DemandPagingFillsVramOnDeviceMisses)
{
    MemoryHierarchy h;
    FeatureRegion region = h.registerRegion(1024, 512);
    std::vector<NodeId> rows = {0, 1, 2, 100, 200, 300};
    const auto c = h.gatherRead(region, rows, Placement::Device);
    // Nothing was pre-loaded: the cold misses demand-page over the
    // DMA engine and land in the VRAM tier.
    EXPECT_GT(c.xferSeconds, 0.0);
    EXPECT_EQ(c.uvaBytes, 0u);
    EXPECT_GT(h.vram().misses(), 0u);
    EXPECT_GT(h.vram().residentTiles(), 0u);

    // A second identical gather hits what the first paged in.
    const auto c2 = h.gatherRead(region, rows, Placement::Device);
    EXPECT_EQ(c2.xferSeconds, 0.0);
}

TEST(Hierarchy, HostPlacementCrossesLinkAndSkipsVram)
{
    MemoryHierarchy h;
    FeatureRegion region = h.registerRegion(1024, 512);
    std::vector<NodeId> rows = {0, 1, 2, 100, 200, 300};
    const auto c = h.gatherRead(region, rows, Placement::Host);
    // Zero-copy: bytes cross the link, the VRAM tier is never
    // populated (the rows live in pinned host memory).
    EXPECT_GT(c.uvaBytes, 0u);
    EXPECT_EQ(c.xferSeconds, 0.0);
    EXPECT_EQ(h.vram().residentTiles(), 0u);
    EXPECT_EQ(h.vram().accesses(), 0u);

    // With a hot L2, the same gather stops crossing the link.
    const auto c2 = h.gatherRead(region, rows, Placement::Host);
    EXPECT_LT(c2.uvaBytes, c.uvaBytes);
}

TEST(Hierarchy, GatherInvariantsOnRandomTraces)
{
    EXPECT_TRUE(checkProperty(
        "hierarchy-gather-invariants",
        [](const GraphCase &c) {
            if (c.coo.numNodes == 0)
                return Result::pass();
            MemoryHierarchy h;
            FeatureRegion region =
                h.registerRegion(c.coo.numNodes, 233);
            const bool preload = (c.seed & 1) != 0;
            const Placement placement = (c.seed & 2)
                                            ? Placement::Device
                                            : Placement::Host;
            if (preload && placement == Placement::Device)
                h.preloadRegion(region);
            std::vector<NodeId> rows = c.coo.src;
            rows.insert(rows.end(), c.coo.dst.begin(),
                        c.coo.dst.end());
            const auto cost = h.gatherRead(region, rows, placement);
            if (cost.gpuSeconds < 0 || cost.xferSeconds < 0)
                return Result::fail("negative modeled time");
            Result r = tierInvariants(h.l2());
            if (!r)
                return r;
            r = tierInvariants(h.vram());
            if (!r)
                return r;
            if (placement == Placement::Host &&
                h.vram().residentTiles() != 0)
                return Result::fail(
                    "host placement populated the VRAM tier");
            if (!rows.empty() && h.l2().accesses() == 0)
                return Result::fail("gather never probed L2");
            return Result::pass();
        },
        propOpts(60)));
}

TEST(Session, UvaTransactionCountDrivesCost)
{
    // Coalesced (few transactions) UVA reads are cheaper than
    // tile-granular ones — the effect the GPU sampler now derives
    // from the hierarchy instead of a hand-tuned efficiency.
    Session coalesced;
    Session granular;
    const uint64_t bytes = 1 << 22;
    coalesced.uvaAccess(bytes, 8);
    granular.uvaAccess(bytes);
    EXPECT_LT(coalesced.snapshot().modeled.gpuSeconds,
              granular.snapshot().modeled.gpuSeconds);
}

TEST(DeviceEnv, DefaultsWhenUnset)
{
    unsetenv("GNNBENCH_DEVICE_FUSION");
    unsetenv("GNNBENCH_DEVICE_L2_BYTES");
    unsetenv("GNNBENCH_DEVICE_TILE_BYTES");
    const DeviceConfig cfg = deviceConfigFromEnv();
    EXPECT_TRUE(cfg.fusionEnabled);
    EXPECT_EQ(cfg.l2Bytes, 6ull << 20);
    EXPECT_EQ(cfg.tileBytes, 4096u);
}

TEST(DeviceEnv, KnobsApply)
{
    setenv("GNNBENCH_DEVICE_FUSION", "off", 1);
    setenv("GNNBENCH_DEVICE_L2_BYTES", "1048576", 1);
    setenv("GNNBENCH_DEVICE_TILE_BYTES", "512", 1);
    const DeviceConfig cfg = deviceConfigFromEnv();
    EXPECT_FALSE(cfg.fusionEnabled);
    EXPECT_EQ(cfg.l2Bytes, 1048576u);
    EXPECT_EQ(cfg.tileBytes, 512u);
    unsetenv("GNNBENCH_DEVICE_FUSION");
    unsetenv("GNNBENCH_DEVICE_L2_BYTES");
    unsetenv("GNNBENCH_DEVICE_TILE_BYTES");
}

using DeviceEnvDeathTest = ::testing::Test;

TEST(DeviceEnvDeathTest, UnknownValuesAreFatal)
{
    // Same eager-validation contract as the GNNBENCH_SERVE_* knobs:
    // a typo dies with the valid values listed, never a silent
    // fallback.
    EXPECT_EXIT(
        {
            setenv("GNNBENCH_DEVICE_FUSION", "maybe", 1);
            deviceConfigFromEnv();
        },
        ::testing::ExitedWithCode(1), "must be one of on, off");
    EXPECT_EXIT(
        {
            setenv("GNNBENCH_DEVICE_L2_BYTES", "big", 1);
            deviceConfigFromEnv();
        },
        ::testing::ExitedWithCode(1), "must be a positive integer");
    EXPECT_EXIT(
        {
            setenv("GNNBENCH_DEVICE_TILE_BYTES", "-4096", 1);
            deviceConfigFromEnv();
        },
        ::testing::ExitedWithCode(1), "must be a positive integer");
    EXPECT_EXIT(
        {
            // Cross-field check: a tile larger than the L2 budget
            // cannot form a single-tile cache.
            setenv("GNNBENCH_DEVICE_L2_BYTES", "1024", 1);
            setenv("GNNBENCH_DEVICE_TILE_BYTES", "4096", 1);
            deviceConfigFromEnv();
        },
        ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace device
} // namespace gnnbench
