/** Tests for the FastGCN and LADIES layer-wise samplers. */

#include <gtest/gtest.h>

#include <set>

#include "gnnbench/core/timer.h"
#include "gnnbench/dglx/layer_sampler.h"
#include "gnnbench/graph/generate.h"

namespace gnnbench {
namespace dglx {
namespace {

Graph
makeGraph(NodeId n, EdgeId m, uint64_t seed)
{
    core::Rng rng(seed);
    return Graph(graph::symmetrize(graph::rmat(n, m, rng), false));
}

std::vector<NodeId>
someSeeds(NodeId n, int count)
{
    std::vector<NodeId> seeds;
    for (int i = 0; i < count; ++i)
        seeds.push_back(static_cast<NodeId>(i * (n / count)));
    return seeds;
}

TEST(FastGcn, StructureInvariantsHold)
{
    Graph g = makeGraph(500, 4000, 1);
    FastGcnSampler sampler(g, {128, 64}, core::Rng(2));
    auto smp = sampler.sample(someSeeds(500, 16));
    smp.validate();
    EXPECT_EQ(smp.layers.size(), 2u);
    EXPECT_LE(smp.layers[0].srcNodes.size(), 128u);
    EXPECT_LE(smp.layers[1].srcNodes.size(), 64u);
}

TEST(FastGcn, EdgesExistInGraph)
{
    Graph g = makeGraph(300, 2400, 3);
    FastGcnSampler sampler(g, {64}, core::Rng(4));
    auto smp = sampler.sample(someSeeds(300, 8));
    const auto &layer = smp.layers[0];
    for (NodeId d = 0; d < layer.csc.numRows; ++d) {
        const NodeId gd = layer.dstNodes[d];
        std::set<NodeId> nbrs(g.csc().rowBegin(gd),
                              g.csc().rowEnd(gd));
        for (EdgeId e = layer.csc.indptr[d];
             e < layer.csc.indptr[d + 1]; ++e) {
            const NodeId gs =
                layer.srcNodes[layer.csc.indices[e]];
            ASSERT_TRUE(nbrs.count(gs));
        }
    }
}

TEST(FastGcn, ProducesIsolatedDestinations)
{
    // The paper's stated FastGCN weakness: independent layer draws
    // leave some destinations without sampled in-neighbors.  With a
    // small budget on a larger graph this must be observable.
    Graph g = makeGraph(2000, 8000, 5);
    FastGcnSampler sampler(g, {32}, core::Rng(6));
    NodeId isolated = 0, total = 0;
    for (int t = 0; t < 20; ++t) {
        auto smp = sampler.sample(someSeeds(2000, 32));
        isolated += smp.layers[0].isolatedDstCount();
        total += smp.layers[0].csc.numRows;
    }
    EXPECT_GT(isolated, 0);
    EXPECT_LT(isolated, total);  // not everything is isolated
}

TEST(FastGcn, PrefersHighDegreeNodes)
{
    // q proportional to (deg+1)^2: the hub of a star must be drawn
    // nearly always.
    graph::CooGraph coo;
    coo.numNodes = 200;
    for (NodeId v = 1; v < 100; ++v)
        coo.addEdge(0, v);
    Graph g(graph::symmetrize(coo, false));
    FastGcnSampler sampler(g, {10}, core::Rng(7));
    int hub_hits = 0;
    for (int t = 0; t < 50; ++t) {
        auto smp = sampler.sample({5, 10});
        for (NodeId v : smp.layers[0].srcNodes)
            hub_hits += (v == 0);
    }
    EXPECT_GT(hub_hits, 45);
}

TEST(Ladies, NoIsolatedDestinations)
{
    // LADIES's defining guarantee (identity attached to the sliced
    // adjacency): destinations always keep at least one in-edge.
    Graph g = makeGraph(2000, 8000, 8);
    LadiesSampler sampler(g, {32, 32}, core::Rng(9));
    for (int t = 0; t < 10; ++t) {
        auto smp = sampler.sample(someSeeds(2000, 32));
        smp.validate();
        for (const auto &layer : smp.layers)
            ASSERT_EQ(layer.isolatedDstCount(), 0);
    }
}

TEST(Ladies, CandidatesComeFromFrontierNeighborhood)
{
    Graph g = makeGraph(400, 3200, 10);
    LadiesSampler sampler(g, {64}, core::Rng(11));
    auto seeds = someSeeds(400, 8);
    auto smp = sampler.sample(seeds);
    // Every sampled source is either a seed (self-inclusion) or an
    // in-neighbor of some seed.
    std::set<NodeId> allowed(seeds.begin(), seeds.end());
    for (NodeId u : seeds)
        for (auto it = g.csc().rowBegin(u); it != g.csc().rowEnd(u);
             ++it)
            allowed.insert(*it);
    for (NodeId v : smp.layers[0].srcNodes)
        ASSERT_TRUE(allowed.count(v)) << v;
}

TEST(Ladies, SlowerThanFastGcnPerBatch)
{
    // LADIES pays the layer-dependent distribution pass (the paper's
    // "non-negligible overhead in the sampling process").
    Graph g = makeGraph(5000, 100000, 12);
    FastGcnSampler fast(g, {256, 256}, core::Rng(13));
    LadiesSampler ladies(g, {256, 256}, core::Rng(13));
    auto seeds = someSeeds(5000, 256);
    core::Timer t;
    for (int i = 0; i < 10; ++i)
        fast.sample(seeds);
    const double t_fast = t.elapsed();
    t.reset();
    for (int i = 0; i < 10; ++i)
        ladies.sample(seeds);
    const double t_ladies = t.elapsed();
    EXPECT_GT(t_ladies, t_fast);
}

TEST(LayerSamplers, DeterministicInRng)
{
    Graph g = makeGraph(300, 2400, 14);
    FastGcnSampler a(g, {64}, core::Rng(15));
    FastGcnSampler b(g, {64}, core::Rng(15));
    auto seeds = someSeeds(300, 8);
    EXPECT_EQ(a.sample(seeds).layers[0].srcNodes,
              b.sample(seeds).layers[0].srcNodes);
}

TEST(LayerSamplers, WeightsAreUnbiasedScale)
{
    // FastGCN edge weight = 1/(q(v) * t): high-degree (high-q)
    // sources must carry smaller weights.
    Graph g = makeGraph(500, 8000, 16);
    FastGcnSampler sampler(g, {128}, core::Rng(17));
    auto smp = sampler.sample(someSeeds(500, 16));
    const auto &layer = smp.layers[0];
    // Compare two edges whose sources have very different degrees.
    float w_low = -1, w_high = -1;
    EdgeId lo_deg = 1 << 30, hi_deg = 0;
    for (EdgeId e = 0; e < layer.csc.numEdges(); ++e) {
        const NodeId gs = layer.srcNodes[layer.csc.indices[e]];
        const EdgeId deg = g.inDegrees()[gs];
        if (deg < lo_deg) {
            lo_deg = deg;
            w_low = layer.edgeWeights[e];
        }
        if (deg > hi_deg) {
            hi_deg = deg;
            w_high = layer.edgeWeights[e];
        }
    }
    if (lo_deg < hi_deg)
        EXPECT_GT(w_low, w_high);
}

} // namespace
} // namespace dglx
} // namespace gnnbench
