/** Tests for the pygx convolution layers. */

#include <gtest/gtest.h>

#include <cmath>

#include "gnnbench/core/optim.h"
#include "gnnbench/graph/generate.h"
#include "gnnbench/pygx/nn.h"
#include "gnnbench/pygx/sampler.h"

namespace gnnbench {
namespace pygx {
namespace {

namespace ag = core::ag;
using core::Tensor;

graph::CooGraph
makeCoo(NodeId n, EdgeId m, uint64_t seed)
{
    core::Rng rng(seed);
    return graph::symmetrize(graph::rmat(n, m, rng), false);
}

TEST(PygxNn, AllKindsForwardShapes)
{
    Data data(makeCoo(60, 300, 1));
    KernelCtx ctx;
    core::Rng rng(2);
    Tensor x0 = Tensor::randn(60, 16, rng);
    for (ConvKind kind : allConvKinds()) {
        core::Rng wrng(3);
        auto conv = makeConv(kind, 16, 8, wrng, false);
        Tensor in = x0.clone();
        if (kind == ConvKind::Gcn2) {
            core::Rng prng(4);
            in = core::ops::matmul(x0,
                                   Tensor::glorot(16, 8, prng));
            static_cast<Gcn2Conv *>(conv.get())
                ->setInitial(ag::constant(in.clone()));
        }
        ag::Var out =
            conv->forward(data, ag::constant(in.clone()), ctx);
        EXPECT_EQ(out->value.rows(), 60) << convKindName(kind);
        EXPECT_EQ(out->value.cols(), 8) << convKindName(kind);
        EXPECT_TRUE(std::isfinite(out->value.sum()))
            << convKindName(kind);
    }
}

TEST(PygxNn, GcnBatchPathMatchesFusedPath)
{
    // edge_index forwardBatch over the whole graph must equal the
    // fused full-graph forward.
    graph::CooGraph coo = makeCoo(40, 240, 5);
    Data data(coo);
    core::Rng wrng(6);
    GcnConv conv(8, 4, wrng);
    KernelCtx ctx;
    core::Rng xrng(7);
    Tensor x = Tensor::randn(40, 8, xrng);

    ag::Var fused =
        conv.forward(data, ag::constant(x.clone()), ctx);

    EdgeBatch batch;
    batch.nodes.resize(40);
    for (NodeId i = 0; i < 40; ++i)
        batch.nodes[i] = i;
    batch.src = coo.src;
    batch.dst = coo.dst;
    ag::Var unfused =
        conv.forwardBatch(batch, ag::constant(x.clone()), ctx);

    for (int64_t i = 0; i < fused->value.numel(); ++i)
        ASSERT_NEAR(fused->value.data()[i],
                    unfused->value.data()[i], 1e-3f);
}

TEST(PygxNn, SageBatchMatchesFused)
{
    graph::CooGraph coo = makeCoo(35, 200, 8);
    Data data(coo);
    core::Rng wrng(9);
    SageConv conv(6, 5, wrng);
    KernelCtx ctx;
    core::Rng xrng(10);
    Tensor x = Tensor::randn(35, 6, xrng);

    ag::Var fused =
        conv.forward(data, ag::constant(x.clone()), ctx);
    EdgeBatch batch;
    batch.nodes.resize(35);
    for (NodeId i = 0; i < 35; ++i)
        batch.nodes[i] = i;
    batch.src = coo.src;
    batch.dst = coo.dst;
    ag::Var unfused =
        conv.forwardBatch(batch, ag::constant(x.clone()), ctx);
    for (int64_t i = 0; i < fused->value.numel(); ++i)
        ASSERT_NEAR(fused->value.data()[i],
                    unfused->value.data()[i], 1e-3f);
}

TEST(PygxNn, SageLayerForwardOnFullFanout)
{
    // A LayerBatch covering the full graph (huge fanout) must match
    // the fused full-graph forward on the dst rows.
    graph::CooGraph coo = makeCoo(30, 160, 11);
    Data data(coo);
    core::Rng wrng(12);
    SageConv conv(5, 4, wrng);
    KernelCtx ctx;
    core::Rng xrng(13);
    Tensor x = Tensor::randn(30, 5, xrng);

    NeighborSampler sampler(data, {1000}, core::Rng(14), nullptr);
    std::vector<NodeId> seeds(30);
    for (NodeId i = 0; i < 30; ++i)
        seeds[i] = i;
    auto batch = sampler.sample(seeds);
    Tensor x_src =
        core::ops::gatherRows(x, batch.layers[0].srcNodes);
    ag::Var from_layer = conv.forwardLayer(
        batch.layers[0], ag::constant(std::move(x_src)), ctx);
    ag::Var fused =
        conv.forward(data, ag::constant(x.clone()), ctx);
    for (NodeId i = 0; i < 30; ++i)
        for (int64_t j = 0; j < 4; ++j)
            ASSERT_NEAR(from_layer->value(i, j), fused->value(i, j),
                        1e-3f);
}

TEST(PygxNn, GatOomOnLargeScaledGraph)
{
    // GAT materializes E x F messages; with a large memScale the
    // full-size equivalent exceeds GPU memory and throws.
    Data data(makeCoo(200, 4000, 15));
    device::Session session;
    KernelCtx ctx{&session, device::DeviceType::GPU, Costs{},
                  1e6};
    core::Rng wrng(16);
    GatConv conv(8, 8, wrng, false);
    core::Rng xrng(17);
    Tensor x = Tensor::randn(200, 8, xrng);
    EXPECT_THROW(conv.forward(data, ag::constant(x.clone()), ctx),
                 OomError);
    // Fused GCN never materializes; no throw at the same scale.
    GcnConv gcn(8, 8, wrng);
    EXPECT_NO_THROW(
        gcn.forward(data, ag::constant(x.clone()), ctx));
}

TEST(PygxNn, TrainingReducesLoss)
{
    core::Rng rng(18);
    graph::CooGraph coo = makeCoo(200, 1200, 18);
    Data data(coo);
    auto labels = graph::communityLabels(coo, 4, rng, 0.0);
    Tensor x = Tensor::randn(200, 8, rng);
    for (NodeId v = 0; v < 200; ++v)
        x(v, labels[v] * 2) += 2.0f;

    core::Rng wrng(19);
    GcnConv l1(8, 16, wrng);
    GcnConv l2(16, 4, wrng);
    std::vector<ag::Var> params = l1.params();
    params.insert(params.end(), l2.params().begin(),
                  l2.params().end());
    core::Adam opt(params, 0.01f);
    KernelCtx ctx;

    float first_loss = 0, last_loss = 0;
    for (int step = 0; step < 30; ++step) {
        ag::Var xv = ag::constant(x.clone());
        ag::Var h = ag::relu(l1.forward(data, xv, ctx));
        ag::Var out = l2.forward(data, h, ctx);
        ag::Var loss = ag::nllLoss(ag::logSoftmax(out), labels, {});
        if (step == 0)
            first_loss = loss->value(0, 0);
        last_loss = loss->value(0, 0);
        opt.zeroGrad();
        ag::backward(loss);
        opt.step();
    }
    EXPECT_LT(last_loss, 0.6f * first_loss);
}

TEST(PygxNn, NormHelpersConsistent)
{
    graph::CooGraph coo = makeCoo(50, 300, 20);
    Data data(coo);
    // csc-based and edge-based norms must agree (graph symmetric, so
    // in-degrees equal out-degrees).
    const auto w_csc = gcnNormCsc(data.csc());
    std::vector<float> self;
    const auto w_edges =
        gcnNormEdges(coo.src, coo.dst, coo.numNodes, &self);
    // Compare as sorted multisets (edge orders differ).
    std::vector<float> a = w_csc, b = w_edges;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(a[i], b[i], 1e-5f);
}

} // namespace
} // namespace pygx
} // namespace gnnbench
