/**
 * Golden-model conformance suite for the unified sparse kernel layer
 * (src/gnnbench/kernels/).
 *
 * Every optimized variant x reduce-op x feature width is compared
 * against KernelVariant::Reference on the gnncheck ten-shape graph
 * generator (empty rows, self-loops, duplicate edges, stars, skew):
 * sum/mean bit-exactly (the layer's determinism contract), max
 * ULP-bounded.  Thread-count invariance, the heavy-row path, the
 * dispatch policy, and finite-difference gradient checks for the
 * spmmVar backward are covered here too.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "gnnbench/check/property.h"
#include "gnnbench/core/parallel.h"
#include "gnnbench/core/rng.h"
#include "gnnbench/graph/convert.h"
#include "gnnbench/kernels/detail.h"
#include "gnnbench/kernels/kernels.h"
#include "gnnbench/kernels/simd.h"

#include "test_support.h"

namespace gnnbench {
namespace kernels {
namespace {

using check::GraphCase;
using check::PropertyOptions;
using check::Result;
using core::Tensor;

constexpr int64_t kWidths[] = {1, 7, 16, 64, 257};

/** The optimized variants checked against Reference. */
constexpr KernelVariant kOptVariants[] = {KernelVariant::Tiled,
                                          KernelVariant::Simd};

/** RAII: run a scope on the portable Simd family, then restore. */
struct ForcePortableScope
{
    ForcePortableScope() { simd::setForcePortable(true); }
    ~ForcePortableScope() { simd::setForcePortable(false); }
};

PropertyOptions
opts(int cases)
{
    PropertyOptions o;
    o.numCases = cases;
    o.baseSeed = testenv::seed();
    return o;
}

Tensor
randFeat(int64_t rows, int64_t cols, uint64_t seed)
{
    core::Rng rng(seed);
    return Tensor::uniform(rows, cols, rng, -1.0f, 1.0f);
}

std::vector<float>
randWeights(EdgeId n, uint64_t seed)
{
    core::Rng rng(seed);
    std::vector<float> w(static_cast<size_t>(n));
    for (auto &v : w)
        v = rng.uniformFloat() - 0.5f;
    return w;
}

Result
bitEqual(const Tensor &a, const Tensor &b, const std::string &what)
{
    if (!a.sameShape(b))
        return Result::fail(what + ": shape mismatch");
    if (a.numel() == 0 ||
        std::memcmp(a.data(), b.data(), a.bytes()) == 0)
        return Result::pass();
    for (int64_t i = 0; i < a.numel(); ++i) {
        uint32_t ba, bb;
        std::memcpy(&ba, a.data() + i, 4);
        std::memcpy(&bb, b.data() + i, 4);
        if (ba != bb)
            return Result::fail(
                what + ": element " + std::to_string(i) +
                " differs: " + std::to_string(a.data()[i]) + " vs " +
                std::to_string(b.data()[i]));
    }
    return Result::fail(what + ": memcmp/element scan disagree");
}

/** ULP distance between two floats (monotone int encoding). */
int64_t
ulpDiff(float a, float b)
{
    if (a == b)
        return 0;
    if (std::isnan(a) || std::isnan(b))
        return INT64_MAX;
    int32_t ia, ib;
    std::memcpy(&ia, &a, 4);
    std::memcpy(&ib, &b, 4);
    if (ia < 0)
        ia = INT32_MIN - ia;
    if (ib < 0)
        ib = INT32_MIN - ib;
    return std::llabs(static_cast<int64_t>(ia) - ib);
}

Result
ulpEqual(const Tensor &a, const Tensor &b, int64_t max_ulp,
         const std::string &what)
{
    if (!a.sameShape(b))
        return Result::fail(what + ": shape mismatch");
    for (int64_t i = 0; i < a.numel(); ++i) {
        const int64_t d = ulpDiff(a.data()[i], b.data()[i]);
        if (d > max_ulp)
            return Result::fail(
                what + ": element " + std::to_string(i) + " off by " +
                std::to_string(d) + " ulp: " +
                std::to_string(a.data()[i]) + " vs " +
                std::to_string(b.data()[i]));
    }
    return Result::pass();
}

Result
compareOutputs(ReduceOp op, const Tensor &tiled, const Tensor &ref,
               const std::string &what)
{
    // Sum and mean fall under the bit-exact determinism contract;
    // max is order-insensitive, checked ULP-bounded per the suite's
    // spec (in practice it is bit-exact as well).
    if (op == ReduceOp::Max)
        return ulpEqual(tiled, ref, 2, what);
    return bitEqual(tiled, ref, what);
}

/** spmm conformance on one generated case at one feature width.
 *  For Simd the case additionally reruns on the portable family and
 *  requires the two ISA implementations to agree bit-for-bit. */
Result
spmmConformance(const GraphCase &c, KernelVariant variant,
                ReduceOp op, int64_t f, bool weighted)
{
    const graph::CsrGraph csc = graph::cooToCsc(c.coo);
    const Tensor x = randFeat(csc.numCols, f, c.seed ^ 0x5A5A);
    std::vector<float> w;
    const float *wp = nullptr;
    if (weighted) {
        w = randWeights(csc.numEdges(), c.seed ^ 0x77);
        wp = w.data();
    }
    const std::string what = std::string("spmm/") +
                             variantName(variant) + "/" +
                             reduceOpName(op) +
                             "/f=" + std::to_string(f);
    const Tensor ref =
        spmm(csc, x, op, wp, KernelVariant::Reference);
    const Tensor out = spmm(csc, x, op, wp, variant);
    Result r = compareOutputs(op, out, ref, what);
    if (!r || variant != KernelVariant::Simd ||
        !simd::avx2Active())
        return r;
    ForcePortableScope portable;
    return bitEqual(spmm(csc, x, op, wp, variant), out,
                    what + " (avx2 vs portable)");
}

struct VariantOpWidth
{
    KernelVariant variant;
    ReduceOp op;
    int64_t f;
};

class SpmmConformance
    : public ::testing::TestWithParam<VariantOpWidth>
{
};

TEST_P(SpmmConformance, MatchesReference)
{
    const VariantOpWidth p = GetParam();
    EXPECT_TRUE(checkProperty(
        std::string("spmm-") + variantName(p.variant) + "-" +
            reduceOpName(p.op) + "-f" + std::to_string(p.f),
        [p](const GraphCase &c) {
            return spmmConformance(c, p.variant, p.op, p.f, false);
        },
        opts(12)));
}

TEST_P(SpmmConformance, WeightedMatchesReference)
{
    const VariantOpWidth p = GetParam();
    if (p.op == ReduceOp::Max)
        GTEST_SKIP() << "max takes no edge weights";
    EXPECT_TRUE(checkProperty(
        std::string("spmm-weighted-") + variantName(p.variant) +
            "-" + reduceOpName(p.op) + "-f" + std::to_string(p.f),
        [p](const GraphCase &c) {
            return spmmConformance(c, p.variant, p.op, p.f, true);
        },
        opts(12)));
}

std::vector<VariantOpWidth>
allVariantOpWidths()
{
    std::vector<VariantOpWidth> v;
    for (KernelVariant variant : kOptVariants)
        for (ReduceOp op :
             {ReduceOp::Sum, ReduceOp::Mean, ReduceOp::Max})
            for (int64_t f : kWidths)
                v.push_back({variant, op, f});
    return v;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsOpsWidths, SpmmConformance,
    ::testing::ValuesIn(allVariantOpWidths()), [](const auto &info) {
        return std::string(variantName(info.param.variant)) + "_" +
               reduceOpName(info.param.op) + "_f" +
               std::to_string(info.param.f);
    });

/** The scatter/gather/sddmm/segment family on one case. */
Result
familyConformance(const GraphCase &c, KernelVariant variant,
                  int64_t f)
{
    const graph::CsrGraph csc = graph::cooToCsc(c.coo);
    const NodeId n = c.coo.numNodes;
    const EdgeId m = csc.numEdges();
    const auto tag = [variant, f](const char *k) {
        return std::string(k) + "/" + variantName(variant) +
               "/f=" + std::to_string(f);
    };

    {
        const Tensor x = randFeat(csc.numRows, f, c.seed ^ 0x11);
        const auto w = randWeights(m, c.seed ^ 0x12);
        Result r = bitEqual(
            spmmScatter(csc, x, w.data(), variant),
            spmmScatter(csc, x, w.data(), KernelVariant::Reference),
            tag("spmmScatter"));
        if (!r)
            return r;
    }
    {
        const Tensor x = randFeat(n, f, c.seed ^ 0x21);
        Result r = bitEqual(
            gatherRows(x, c.coo.src, variant),
            gatherRows(x, c.coo.src, KernelVariant::Reference),
            tag("gatherRows"));
        if (!r)
            return r;
    }
    {
        const Tensor src = randFeat(c.coo.numEdges(), f, c.seed ^ 0x31);
        Result r = bitEqual(
            scatterSum(src, c.coo.dst, n, variant),
            scatterSum(src, c.coo.dst, n, KernelVariant::Reference),
            tag("scatterSum"));
        if (!r)
            return r;
        r = bitEqual(
            scatterMean(src, c.coo.dst, n, variant),
            scatterMean(src, c.coo.dst, n, KernelVariant::Reference),
            tag("scatterMean"));
        if (!r)
            return r;
        r = ulpEqual(
            scatterMax(src, c.coo.dst, n, variant),
            scatterMax(src, c.coo.dst, n, KernelVariant::Reference),
            2, tag("scatterMax"));
        if (!r)
            return r;
    }
    {
        const Tensor a = randFeat(csc.numRows, f, c.seed ^ 0x41);
        const Tensor b = randFeat(csc.numCols, f, c.seed ^ 0x42);
        Result r =
            bitEqual(sddmmAdd(csc, a, b, variant),
                     sddmmAdd(csc, a, b, KernelVariant::Reference),
                     tag("sddmmAdd"));
        if (!r)
            return r;
        r = bitEqual(sddmmDot(csc, a, b, variant),
                     sddmmDot(csc, a, b, KernelVariant::Reference),
                     tag("sddmmDot"));
        if (!r)
            return r;
    }
    {
        const Tensor x = randFeat(m, f, c.seed ^ 0x51);
        Result r = bitEqual(
            segmentSumRows(csc, x, variant),
            segmentSumRows(csc, x, KernelVariant::Reference),
            tag("segmentSumRows"));
        if (!r)
            return r;
        r = bitEqual(
            scatterSumCols(csc, x, variant),
            scatterSumCols(csc, x, KernelVariant::Reference),
            tag("scatterSumCols"));
        if (!r)
            return r;
    }
    return Result::pass();
}

struct VariantWidth
{
    KernelVariant variant;
    int64_t f;
};

class FamilyConformance
    : public ::testing::TestWithParam<VariantWidth>
{
};

TEST_P(FamilyConformance, MatchesReference)
{
    const VariantWidth p = GetParam();
    EXPECT_TRUE(checkProperty(
        std::string("kernel-family-") + variantName(p.variant) +
            "-f" + std::to_string(p.f),
        [p](const GraphCase &c) {
            Result r = familyConformance(c, p.variant, p.f);
            if (!r || p.variant != KernelVariant::Simd ||
                !simd::avx2Active())
                return r;
            // The whole family must also conform on the portable ISA.
            ForcePortableScope portable;
            return familyConformance(c, p.variant, p.f);
        },
        opts(10)));
}

std::vector<VariantWidth>
allVariantWidths()
{
    std::vector<VariantWidth> v;
    for (KernelVariant variant : kOptVariants)
        for (int64_t f : kWidths)
            v.push_back({variant, f});
    return v;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsWidths, FamilyConformance,
    ::testing::ValuesIn(allVariantWidths()), [](const auto &info) {
        return std::string(variantName(info.param.variant)) + "_f" +
               std::to_string(info.param.f);
    });

/** Results must not depend on GNNBENCH_NUM_THREADS (pool size). */
TEST(KernelDeterminism, ThreadCountInvariant)
{
    const int restore = core::parallel::numThreads();
    EXPECT_TRUE(checkProperty(
        "spmm-thread-invariance",
        [&](const GraphCase &c) {
            const graph::CsrGraph csc = graph::cooToCsc(c.coo);
            const Tensor x = randFeat(csc.numCols, 33, c.seed ^ 0x91);
            for (KernelVariant variant : kOptVariants) {
                core::parallel::setNumThreads(1);
                const Tensor base =
                    spmm(csc, x, ReduceOp::Sum, nullptr, variant);
                for (int t : {2, 4}) {
                    core::parallel::setNumThreads(t);
                    Result r = bitEqual(
                        spmm(csc, x, ReduceOp::Sum, nullptr,
                             variant),
                        base,
                        std::string("spmm ") + variantName(variant) +
                            " threads=" + std::to_string(t));
                    if (!r)
                        return r;
                }
            }
            return Result::pass();
        },
        opts(10)));
    core::parallel::setNumThreads(restore);
}

/** A row above kHeavyDegree takes the feature-tile-parallel path. */
TEST(KernelHeavyRow, TiledMatchesReference)
{
    const NodeId cols = 257;
    const EdgeId deg = Tiling::kHeavyDegree + 123;
    graph::CsrGraph adj;
    adj.numRows = 3;
    adj.numCols = cols;
    adj.indptr = {0, 2, 2 + deg, 2 + deg + 1};
    adj.indices.resize(static_cast<size_t>(2 + deg + 1));
    core::Rng rng(testenv::seed() ^ 0xEA51);
    for (auto &v : adj.indices)
        v = static_cast<NodeId>(rng.uniformInt(cols));
    adj.validate();

    for (const int64_t f : {1L, 70L, 257L}) {
        const Tensor x = randFeat(cols, f, testenv::seed() ^ f);
        for (ReduceOp op :
             {ReduceOp::Sum, ReduceOp::Mean, ReduceOp::Max}) {
            const Tensor ref =
                spmm(adj, x, op, nullptr, KernelVariant::Reference);
            for (KernelVariant variant : kOptVariants) {
                const Tensor out =
                    spmm(adj, x, op, nullptr, variant);
                Result r = compareOutputs(
                    op, out, ref,
                    std::string("heavy-row/") +
                        variantName(variant) + "/" +
                        reduceOpName(op) +
                        "/f=" + std::to_string(f));
                EXPECT_TRUE(r.ok) << r.message;
            }
        }
    }
}

TEST(KernelMaxArg, RecordsFirstMaximalSource)
{
    EXPECT_TRUE(checkProperty(
        "spmm-maxarg",
        [](const GraphCase &c) {
            const graph::CsrGraph csc = graph::cooToCsc(c.coo);
            const int64_t f = 9;
            const Tensor x = randFeat(csc.numCols, f, c.seed ^ 0xA1);
            std::vector<NodeId> argR;
            const Tensor outR =
                spmmMaxArg(csc, x, &argR, KernelVariant::Reference);
            for (KernelVariant variant : kOptVariants) {
                std::vector<NodeId> argV;
                const Tensor outV =
                    spmmMaxArg(csc, x, &argV, variant);
                Result r = ulpEqual(outV, outR, 2,
                                    std::string("spmmMaxArg ") +
                                        variantName(variant));
                if (!r)
                    return r;
                if (argV != argR)
                    return Result::fail(
                        "spmmMaxArg: argmax sources differ between "
                        "variants");
            }
            // Reference semantics: the recorded source is the first
            // in-edge attaining the row maximum.
            for (NodeId d = 0; d < csc.numRows; ++d) {
                for (int64_t j = 0; j < f; ++j) {
                    NodeId expect = -1;
                    float best =
                        -std::numeric_limits<float>::infinity();
                    for (EdgeId e = csc.indptr[d];
                         e < csc.indptr[d + 1]; ++e) {
                        const float v = x(csc.indices[e], j);
                        if (v > best) {
                            best = v;
                            expect = csc.indices[e];
                        }
                    }
                    if (argR[static_cast<size_t>(d) * f + j] != expect)
                        return Result::fail(
                            "spmmMaxArg: wrong argmax at row " +
                            std::to_string(d));
                }
            }
            return Result::pass();
        },
        opts(10)));
}

TEST(KernelDispatch, ParseAndNames)
{
    ReduceOp op;
    EXPECT_TRUE(parseReduceOp("sum", &op));
    EXPECT_EQ(op, ReduceOp::Sum);
    EXPECT_TRUE(parseReduceOp("add", &op));
    EXPECT_EQ(op, ReduceOp::Sum);
    EXPECT_TRUE(parseReduceOp("mean", &op));
    EXPECT_EQ(op, ReduceOp::Mean);
    EXPECT_TRUE(parseReduceOp("max", &op));
    EXPECT_EQ(op, ReduceOp::Max);
    EXPECT_FALSE(parseReduceOp("min", &op));

    KernelVariant v;
    for (KernelVariant k :
         {KernelVariant::Auto, KernelVariant::Reference,
          KernelVariant::Tiled, KernelVariant::Simd}) {
        EXPECT_TRUE(parseVariant(variantName(k), &v));
        EXPECT_EQ(v, k);
        EXPECT_NE(std::string(validVariantList())
                      .find(variantName(k)),
                  std::string::npos);
    }
    EXPECT_FALSE(parseVariant("fused", &v));
}

TEST(KernelDispatch, EnvParsingRejectsUnknownVariants)
{
    EXPECT_EQ(detail::variantFromEnvValue(nullptr),
              KernelVariant::Auto);
    EXPECT_EQ(detail::variantFromEnvValue(""), KernelVariant::Auto);
    EXPECT_EQ(detail::variantFromEnvValue("simd"),
              KernelVariant::Simd);
    // Unknown values are fatal with a message listing the valid set —
    // not a silent fallback to Auto.
    EXPECT_EXIT(detail::variantFromEnvValue("fused"),
                ::testing::ExitedWithCode(1),
                "must be one of auto/reference/tiled/simd");
}

TEST(KernelDispatch, ResolvedVariantLabel)
{
    const KernelVariant saved = defaultVariant();
    setDefaultVariant(KernelVariant::Auto);
    const std::string expectSimd =
        std::string("simd[") + simd::isaLabel() + "]";
    EXPECT_EQ(resolvedVariantLabel(), expectSimd);
    EXPECT_EQ(resolvedVariantLabel(KernelVariant::Tiled), "tiled");
    EXPECT_EQ(resolvedVariantLabel(KernelVariant::Reference),
              "reference");
    setDefaultVariant(KernelVariant::Reference);
    EXPECT_EQ(resolvedVariantLabel(), "reference");
    setDefaultVariant(saved);

    // The ISA label is consistent with the dispatch predicate, and
    // the portable override flips it.
    EXPECT_STREQ(simd::isaLabel(),
                 simd::avx2Active() ? "avx2" : "portable");
    if (simd::avx2Active()) {
        ForcePortableScope portable;
        EXPECT_STREQ(simd::isaLabel(), "portable");
    }
}

TEST(KernelDispatch, AutoPolicyAndDefaultOverride)
{
    // Explicit variants pass through.
    EXPECT_EQ(resolveVariant(KernelVariant::Reference, 1 << 20, 64),
              KernelVariant::Reference);
    EXPECT_EQ(resolveVariant(KernelVariant::Tiled, 1, 1),
              KernelVariant::Tiled);
    // Auto: tiny problems stay serial, large ones run Simd (which is
    // bit-identical to Tiled, so the policy switch is unobservable in
    // results).
    const KernelVariant saved = defaultVariant();
    setDefaultVariant(KernelVariant::Auto);
    EXPECT_EQ(resolveVariant(KernelVariant::Auto,
                             Tiling::kAutoReferenceNnz - 1, 64),
              KernelVariant::Reference);
    EXPECT_EQ(resolveVariant(KernelVariant::Auto,
                             Tiling::kAutoReferenceNnz, 64),
              KernelVariant::Simd);
    // A process-wide default redirects Auto call sites.
    setDefaultVariant(KernelVariant::Reference);
    EXPECT_EQ(resolveVariant(KernelVariant::Auto, 1 << 20, 64),
              KernelVariant::Reference);
    setDefaultVariant(saved);
}

TEST(KernelStatsSink, RecordsPerChunkSeconds)
{
    // ~40k nnz across 400 rows: several nnz-balanced panels.
    core::Rng rng(testenv::seed() ^ 0x57A75);
    graph::CsrGraph adj;
    adj.numRows = 400;
    adj.numCols = 300;
    adj.indptr.resize(401);
    adj.indptr[0] = 0;
    for (NodeId r = 0; r < 400; ++r)
        adj.indptr[r + 1] =
            adj.indptr[r] + 50 + static_cast<EdgeId>(rng.uniformInt(100));
    adj.indices.resize(static_cast<size_t>(adj.indptr.back()));
    for (auto &v : adj.indices)
        v = static_cast<NodeId>(rng.uniformInt(300));
    adj.validate();
    const Tensor x = randFeat(300, 32, testenv::seed() ^ 0x57A76);

    KernelStats ref, tiled;
    spmm(adj, x, ReduceOp::Sum, nullptr, KernelVariant::Reference,
         &ref);
    spmm(adj, x, ReduceOp::Sum, nullptr, KernelVariant::Tiled, &tiled);
    EXPECT_EQ(ref.chunkSeconds.size(), 1u);
    EXPECT_GT(tiled.chunkSeconds.size(), 1u);
    for (double s : tiled.chunkSeconds)
        EXPECT_GE(s, 0.0);
}

/** Central-difference gradient check for spmmVar (sum/mean/max). */
void
checkSpmmGrad(ReduceOp op, bool weighted, uint64_t seed)
{
    const auto csc = std::make_shared<graph::CsrGraph>(
        graph::cooToCsc(check::generateGraphCase(seed).coo));
    if (csc->numEdges() == 0)
        return;
    const int64_t f = 5;
    std::shared_ptr<std::vector<float>> w;
    if (weighted)
        w = std::make_shared<std::vector<float>>(
            randWeights(csc->numEdges(), seed ^ 0xBEEF));
    Tensor x0 = randFeat(csc->numCols, f, seed ^ 0xF00D);
    // Fixed projection makes the loss a scalar with dense gradient.
    const Tensor proj = randFeat(csc->numRows, f, seed ^ 0x9D);

    const auto lossOf = [&](const Tensor &xv) {
        const Tensor y = op == ReduceOp::Max
                             ? spmmMaxArg(*csc, xv, nullptr)
                             : spmm(*csc, xv, op,
                                    w ? w->data() : nullptr);
        double acc = 0.0;
        for (int64_t i = 0; i < y.numel(); ++i)
            acc += static_cast<double>(y.data()[i]) * proj.data()[i];
        return acc;
    };

    core::ag::Var xv = core::ag::leaf(x0, true);
    core::ag::Var y = spmmVar(csc, w, op, xv);
    core::ag::Var loss = core::ag::mul(y, core::ag::constant(proj));
    // Reduce to scalar: sum all elements via backward seed.
    Tensor seedGrad = Tensor::full(y->value.rows(), y->value.cols(),
                                   1.0f);
    // backward of mul distributes proj; seed the product node.
    core::ag::backward(loss, &seedGrad);

    const Tensor &g = xv->grad;
    ASSERT_EQ(g.rows(), csc->numCols);
    ASSERT_EQ(g.cols(), f);

    core::Rng pick(seed ^ 0xC0FFEE);
    const float eps = 1e-2f;
    for (int trial = 0; trial < 12; ++trial) {
        const int64_t i = static_cast<int64_t>(
            pick.uniformInt(static_cast<uint64_t>(x0.numel())));
        Tensor xp = x0, xm = x0;
        xp.data()[i] += eps;
        xm.data()[i] -= eps;
        const double fd = (lossOf(xp) - lossOf(xm)) / (2.0 * eps);
        const double an = g.data()[i];
        EXPECT_NEAR(an, fd, 2e-2 + 2e-2 * std::abs(fd))
            << reduceOpName(op) << " grad mismatch at " << i;
    }
}

TEST(KernelGradients, SpmmSumBackward)
{
    checkSpmmGrad(ReduceOp::Sum, false, testenv::seed() ^ 0x1001);
    checkSpmmGrad(ReduceOp::Sum, true, testenv::seed() ^ 0x1002);
}

TEST(KernelGradients, SpmmMeanBackward)
{
    checkSpmmGrad(ReduceOp::Mean, false, testenv::seed() ^ 0x2001);
    checkSpmmGrad(ReduceOp::Mean, true, testenv::seed() ^ 0x2002);
}

TEST(KernelGradients, SpmmMaxBackward)
{
    checkSpmmGrad(ReduceOp::Max, false, testenv::seed() ^ 0x3001);
}

} // namespace
} // namespace kernels
} // namespace gnnbench
