/** Gradient checks and training tests for the dglx attention ops
 *  (edge softmax, u_add_v, fused GATv2 scoring, weighted
 *  aggregation) and the GAT / GATv2 layers built from them. */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "gnnbench/core/optim.h"
#include "gnnbench/dglx/nn.h"
#include "gnnbench/graph/convert.h"
#include "gnnbench/graph/generate.h"

namespace gnnbench {
namespace dglx {
namespace {

namespace ag = core::ag;
using core::Tensor;

graph::CsrGraph
smallCsc(NodeId n, EdgeId m, uint64_t seed)
{
    core::Rng rng(seed);
    return graph::cooToCsc(
        graph::symmetrize(graph::rmat(n, m, rng), false));
}

/** Finite-difference gradient check against a scalar loss. */
void
checkGradient(const Tensor &leaf_value,
              const std::function<ag::Var(const ag::Var &)> &build,
              float tol = 3e-2f)
{
    ag::Var v = ag::leaf(leaf_value.clone(), true);
    ag::Var loss = build(v);
    ag::backward(loss);
    const Tensor analytic = v->grad.clone();
    ASSERT_FALSE(analytic.empty());
    const float eps = 1e-2f;
    for (int64_t i = 0; i < leaf_value.rows(); ++i) {
        for (int64_t j = 0; j < leaf_value.cols(); ++j) {
            Tensor plus = leaf_value.clone();
            plus(i, j) += eps;
            Tensor minus = leaf_value.clone();
            minus(i, j) -= eps;
            const float fp =
                build(ag::leaf(std::move(plus), false))->value(0, 0);
            const float fm =
                build(ag::leaf(std::move(minus), false))
                    ->value(0, 0);
            const float numeric = (fp - fm) / (2 * eps);
            ASSERT_NEAR(analytic(i, j), numeric,
                        tol * std::max(1.0f, std::fabs(numeric)))
                << "(" << i << "," << j << ")";
        }
    }
}

/** Deterministic weighted scalarization of any Var. */
ag::Var
toScalar(const ag::Var &v)
{
    Tensor w(v->value.rows(), v->value.cols());
    for (int64_t i = 0; i < w.numel(); ++i)
        w.data()[i] = 0.05f * static_cast<float>((i % 5) + 1);
    ag::Var weighted = ag::mul(v, ag::constant(std::move(w)));
    Tensor ones_l = Tensor::full(1, v->value.rows(), 1.0f);
    Tensor ones_r = Tensor::full(v->value.cols(), 1, 1.0f);
    return ag::matmul(
        ag::matmul(ag::constant(std::move(ones_l)), weighted),
        ag::constant(std::move(ones_r)));
}

TEST(AttentionOps, SegmentAndScatterSumsAreAdjoint)
{
    // <segmentSumRows(x), y> == <x, gsddmmAdd-style expansion of y>:
    // verified through the gradcheck of gsddmmAddVar below; here we
    // check shapes and a hand case.
    graph::CooGraph coo;
    coo.numNodes = 3;
    coo.addEdge(1, 0);
    coo.addEdge(2, 0);
    coo.addEdge(0, 2);
    auto csc = graph::cooToCsc(coo);
    KernelCtx ctx;
    Tensor per_edge(3, 1);
    per_edge(0, 0) = 1;
    per_edge(1, 0) = 2;
    per_edge(2, 0) = 4;
    Tensor by_dst = segmentSumRows(csc, per_edge, ctx);
    // dst 0 has edges {1->0, 2->0} (rows 0,1 of csc order).
    EXPECT_EQ(by_dst(0, 0), 3.0f);
    EXPECT_EQ(by_dst(2, 0), 4.0f);
    Tensor by_src = scatterSumCols(csc, per_edge, ctx);
    // src sums: node 1 and 2 feed dst 0; node 0 feeds dst 2.
    EXPECT_EQ(by_src(1, 0) + by_src(2, 0), 3.0f);
    EXPECT_EQ(by_src(0, 0), 4.0f);
}

TEST(AttentionOps, GsddmmAddGradcheck)
{
    auto csc = smallCsc(10, 40, 1);
    core::Rng rng(2);
    Tensor a = Tensor::randn(10, 2, rng);
    Tensor b = Tensor::randn(10, 2, rng);
    KernelCtx ctx;
    checkGradient(a, [&](const ag::Var &v) {
        return toScalar(gsddmmAddVar(borrow(csc), v,
                                     ag::constant(b.clone()), ctx));
    });
    checkGradient(b, [&](const ag::Var &v) {
        return toScalar(gsddmmAddVar(borrow(csc),
                                     ag::constant(a.clone()), v,
                                     ctx));
    });
}

TEST(AttentionOps, EdgeSoftmaxGradcheck)
{
    auto csc = smallCsc(8, 32, 3);
    core::Rng rng(4);
    Tensor scores = Tensor::randn(csc.numEdges(), 1, rng);
    KernelCtx ctx;
    checkGradient(scores, [&](const ag::Var &v) {
        return toScalar(edgeSoftmaxVar(borrow(csc), v, ctx));
    });
}

TEST(AttentionOps, GspmmEdgeScalarGradcheck)
{
    auto csc = smallCsc(9, 36, 5);
    core::Rng rng(6);
    Tensor x = Tensor::randn(9, 3, rng);
    Tensor att =
        Tensor::uniform(csc.numEdges(), 1, rng, 0.1f, 1.0f);
    KernelCtx ctx;
    checkGradient(x, [&](const ag::Var &v) {
        return toScalar(gspmmEdgeScalarVar(
            borrow(csc), v, ag::constant(att.clone()), ctx));
    });
    checkGradient(att, [&](const ag::Var &v) {
        return toScalar(gspmmEdgeScalarVar(
            borrow(csc), ag::constant(x.clone()), v, ctx));
    });
}

TEST(AttentionOps, AttnV2Gradcheck)
{
    auto csc = smallCsc(7, 28, 7);
    core::Rng rng(8);
    Tensor zl = Tensor::randn(7, 3, rng);
    Tensor zr = Tensor::randn(7, 3, rng);
    Tensor a = Tensor::randn(1, 3, rng);
    KernelCtx ctx;
    checkGradient(zl, [&](const ag::Var &v) {
        return toScalar(gsddmmAttnV2Var(
            borrow(csc), v, ag::constant(zr.clone()),
            ag::constant(a.clone()), 0.2f, ctx));
    });
    checkGradient(zr, [&](const ag::Var &v) {
        return toScalar(gsddmmAttnV2Var(
            borrow(csc), ag::constant(zl.clone()), v,
            ag::constant(a.clone()), 0.2f, ctx));
    });
    checkGradient(a, [&](const ag::Var &v) {
        return toScalar(gsddmmAttnV2Var(
            borrow(csc), ag::constant(zl.clone()),
            ag::constant(zr.clone()), v, 0.2f, ctx));
    });
}

class GatTraining : public ::testing::TestWithParam<ConvKind>
{
};

TEST_P(GatTraining, ReducesLoss)
{
    // End-to-end: attention layer + linear head must fit a
    // community-labeled graph.
    core::Rng rng(9);
    graph::CooGraph coo =
        graph::symmetrize(graph::rmat(150, 900, rng), false);
    Graph g(coo);
    auto labels = graph::communityLabels(coo, 3, rng, 0.0);
    Tensor x = Tensor::randn(150, 6, rng);
    for (NodeId v = 0; v < 150; ++v)
        x(v, labels[v] * 2) += 2.0f;

    core::Rng wrng(10);
    auto conv = makeConv(GetParam(), 6, 3, wrng, true);
    core::Adam opt(conv->params(), 0.02f);
    KernelCtx ctx;

    float first = 0, last = 0;
    for (int step = 0; step < 40; ++step) {
        ag::Var out =
            conv->forward(g, ag::constant(x.clone()), ctx);
        ag::Var loss =
            ag::nllLoss(ag::logSoftmax(out), labels, {});
        if (step == 0)
            first = loss->value(0, 0);
        last = loss->value(0, 0);
        opt.zeroGrad();
        ag::backward(loss);
        opt.step();
    }
    EXPECT_LT(last, 0.7f * first) << convKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AttentionKinds, GatTraining,
                         ::testing::Values(ConvKind::Gat,
                                           ConvKind::Gatv2),
                         [](const auto &info) {
                             return convKindName(info.param);
                         });

TEST(AttentionOps, AttentionSumsToOneAfterTraining)
{
    // Attention weights remain a distribution per destination even
    // after gradient updates (softmax invariant).
    auto csc = smallCsc(20, 120, 11);
    core::Rng rng(12);
    ag::Var scores = ag::leaf(
        Tensor::randn(csc.numEdges(), 1, rng), true);
    KernelCtx ctx;
    for (int step = 0; step < 3; ++step) {
        ag::Var att = edgeSoftmaxVar(borrow(csc), scores, ctx);
        for (NodeId d = 0; d < csc.numRows; ++d) {
            if (csc.degree(d) == 0)
                continue;
            double z = 0;
            for (EdgeId e = csc.indptr[d]; e < csc.indptr[d + 1];
                 ++e)
                z += att->value(e, 0);
            ASSERT_NEAR(z, 1.0, 1e-4);
        }
        ag::Var loss = toScalar(att);
        scores->zeroGrad();
        ag::backward(loss);
        core::ops::axpy(scores->value, scores->grad, -0.1f);
    }
}

} // namespace
} // namespace dglx
} // namespace gnnbench
