/**
 * Differential fuzzing between the dglx and pygx framework
 * reimplementations: identically-initialized layers and models must
 * agree (within float tolerance) on forward outputs, losses,
 * gradients, and post-step parameters on seeded random graphs, and
 * the randomized samplers must agree distributionally.  Cases come
 * from the gnncheck property harness, so failures shrink and print a
 * repro seed.
 */

#include <gtest/gtest.h>

#include "gnnbench/check/differential.h"
#include "gnnbench/check/property.h"
#include "gnnbench/dglx/nn.h"

#include "test_support.h"

namespace gnnbench {
namespace check {
namespace {

PropertyOptions
opts(int cases)
{
    PropertyOptions o;
    o.numCases = cases;
    o.baseSeed = testenv::seed();
    return o;
}

constexpr dglx::ConvKind kAllKinds[] = {
    dglx::ConvKind::Gcn,  dglx::ConvKind::Gcn2,
    dglx::ConvKind::Cheb, dglx::ConvKind::Sage,
    dglx::ConvKind::Gat,  dglx::ConvKind::Gatv2,
    dglx::ConvKind::Tag,  dglx::ConvKind::Sg,
};

class ConvForward
    : public ::testing::TestWithParam<dglx::ConvKind>
{
};

/** 8 kinds x 30 cases = 240 seeded forward comparisons (tier 1). */
TEST_P(ConvForward, AgreesAcrossFrameworks)
{
    const dglx::ConvKind kind = GetParam();
    EXPECT_TRUE(checkProperty(
        std::string("conv-forward-") + dglx::convKindName(kind),
        [kind](const GraphCase &c) {
            return diffConvForward(kind, c, c.seed ^ 0xC0);
        },
        opts(30)));
}

TEST_P(ConvForward, AgreesAcrossFrameworksSlow)
{
    const dglx::ConvKind kind = GetParam();
    EXPECT_TRUE(checkProperty(
        std::string("conv-forward-slow-") +
            dglx::convKindName(kind),
        [kind](const GraphCase &c) {
            return diffConvForward(kind, c, c.seed ^ 0xC1);
        },
        opts(150)));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ConvForward, ::testing::ValuesIn(kAllKinds),
    [](const auto &info) {
        return std::string(dglx::convKindName(info.param));
    });

TEST(Differential, TrainStepsAgree)
{
    EXPECT_TRUE(checkProperty(
        "train-steps",
        [](const GraphCase &c) {
            return diffTrainSteps(c, c.seed ^ 0x7A, 2);
        },
        opts(40)));
}

TEST(Differential, TrainStepsAgreeSlow)
{
    EXPECT_TRUE(checkProperty(
        "train-steps-slow",
        [](const GraphCase &c) {
            return diffTrainSteps(c, c.seed ^ 0x7B, 4);
        },
        opts(120)));
}

TEST(Differential, InducedStepAgrees)
{
    EXPECT_TRUE(checkProperty(
        "induced-step",
        [](const GraphCase &c) {
            return diffInducedStep(c, c.seed ^ 0x1D);
        },
        opts(60)));
}

TEST(Differential, UnifiedAggregationBitExact)
{
    EXPECT_TRUE(checkProperty(
        "unified-aggregation",
        [](const GraphCase &c) {
            return diffUnifiedAggregation(c, c.seed ^ 0x5E);
        },
        opts(60)));
}

TEST(Differential, UnifiedAggregationBitExactSlow)
{
    EXPECT_TRUE(checkProperty(
        "unified-aggregation-slow",
        [](const GraphCase &c) {
            return diffUnifiedAggregation(c, c.seed ^ 0x5F);
        },
        opts(200)));
}

TEST(Differential, InducedExtractionAgrees)
{
    EXPECT_TRUE(checkProperty(
        "induced-extraction",
        [](const GraphCase &c) {
            return diffInducedExtraction(c, c.seed ^ 0xEE);
        },
        opts(100)));
}

TEST(Differential, NeighborSamplerStatsAgree)
{
    EXPECT_TRUE(checkProperty(
        "neighbor-sampler-stats",
        [](const GraphCase &c) {
            return diffNeighborSamplerStats(c, {4, 3},
                                            c.seed ^ 0x45, 16);
        },
        opts(30)));
}

TEST(Differential, NeighborSamplerStatsAgreeSlow)
{
    EXPECT_TRUE(checkProperty(
        "neighbor-sampler-stats-slow",
        [](const GraphCase &c) {
            return diffNeighborSamplerStats(c, {6, 4, 2},
                                            c.seed ^ 0x46, 48,
                                            0.15);
        },
        opts(60)));
}

TEST(Differential, SaintRwStatsAgree)
{
    EXPECT_TRUE(checkProperty(
        "saint-rw-stats",
        [](const GraphCase &c) {
            return diffSaintRwStats(c, 8, 2, c.seed ^ 0x99, 16);
        },
        opts(25)));
}

} // namespace
} // namespace check
} // namespace gnnbench
