/** Tests for the Table-1 dataset registry and synthesis. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "gnnbench/graph/datasets.h"

namespace gnnbench {
namespace graph {
namespace {

TEST(Datasets, TableHasSixEntries)
{
    EXPECT_EQ(datasetTable().size(), 6u);
    EXPECT_EQ(datasetNames().front(), "ppi");
    EXPECT_EQ(datasetNames().back(), "ogbn-products");
}

TEST(Datasets, Table1StatisticsMatchPaper)
{
    const auto &reddit = datasetInfo("reddit");
    EXPECT_EQ(reddit.numNodes, 232965);
    EXPECT_EQ(reddit.numEdges, 114615892);
    EXPECT_EQ(reddit.numFeatures, 602);
    EXPECT_EQ(reddit.numClasses, 41);
    const auto &ppi = datasetInfo("ppi");
    EXPECT_EQ(ppi.numNodes, 14755);
    EXPECT_EQ(ppi.numClasses, 121);
    const auto &products = datasetInfo("ogbn-products");
    EXPECT_EQ(products.numNodes, 2449029);
    EXPECT_NEAR(products.trainFrac, 0.08, 1e-9);
}

TEST(Datasets, LookupIsCaseInsensitive)
{
    EXPECT_EQ(datasetInfo("Reddit").name, "reddit");
    EXPECT_EQ(datasetInfo("PPI").name, "ppi");
}

TEST(Datasets, UnknownNameIsFatal)
{
    EXPECT_DEATH(datasetInfo("imaginary"), "unknown dataset");
}

TEST(Datasets, LoadMatchesScaledStatistics)
{
    Dataset ds = loadDataset("ppi");  // full scale
    EXPECT_EQ(ds.numNodes(), datasetInfo("ppi").numNodes);
    // Edge count within 15% of the target (dedup + symmetrize).
    const double target = datasetInfo("ppi").numEdges;
    EXPECT_NEAR(ds.numEdges() / target, 1.0, 0.15);
    EXPECT_EQ(ds.features.rows(), ds.numNodes());
    EXPECT_EQ(ds.features.cols(), 50);
    EXPECT_EQ(ds.labels.size(), static_cast<size_t>(ds.numNodes()));
}

TEST(Datasets, ScaledLoadShrinks)
{
    Dataset ds = loadDataset("reddit", 1.0);  // default 1/64
    const auto &info = datasetInfo("reddit");
    EXPECT_NEAR(static_cast<double>(ds.numNodes()),
                info.numNodes / 64.0, info.numNodes / 64.0 * 0.02);
    // Mean degree preserved within a factor.
    const double full_mean_deg =
        static_cast<double>(info.numEdges) / info.numNodes;
    const double scaled_mean_deg =
        static_cast<double>(ds.numEdges()) / ds.numNodes();
    EXPECT_GT(scaled_mean_deg, 0.5 * full_mean_deg);
}

TEST(Datasets, SplitsArePartition)
{
    Dataset ds = loadDataset("flickr", 0.1);
    std::set<NodeId> seen;
    for (const auto *idx : {&ds.trainIdx, &ds.valIdx, &ds.testIdx})
        for (NodeId v : *idx) {
            EXPECT_TRUE(seen.insert(v).second)
                << "node in two splits";
        }
    EXPECT_EQ(seen.size(), static_cast<size_t>(ds.numNodes()));
    // Fractions near the published ones.
    EXPECT_NEAR(static_cast<double>(ds.trainIdx.size()) /
                    ds.numNodes(),
                0.50, 0.02);
}

TEST(Datasets, DeterministicInSeed)
{
    Dataset a = loadDataset("ppi", 0.1, 7);
    Dataset b = loadDataset("ppi", 0.1, 7);
    EXPECT_EQ(a.graph.src, b.graph.src);
    EXPECT_EQ(a.labels, b.labels);
    Dataset c = loadDataset("ppi", 0.1, 8);
    EXPECT_NE(a.graph.src, c.graph.src);
}

TEST(Datasets, GraphIsSymmetric)
{
    Dataset ds = loadDataset("ppi", 0.1);
    std::set<std::pair<NodeId, NodeId>> edges;
    for (size_t i = 0; i < ds.graph.src.size(); ++i)
        edges.insert({ds.graph.src[i], ds.graph.dst[i]});
    for (auto [u, v] : edges)
        ASSERT_TRUE(edges.count({v, u}));
}

TEST(Datasets, FeaturesCorrelateWithLabels)
{
    // Same-class nodes share a centroid component: their features
    // should be closer on average than cross-class pairs.
    Dataset ds = loadDataset("flickr", 0.05);
    auto dist = [&](NodeId a, NodeId b) {
        double d = 0;
        for (int64_t j = 0; j < ds.features.cols(); ++j) {
            const double diff =
                ds.features(a, j) - ds.features(b, j);
            d += diff * diff;
        }
        return d;
    };
    double same = 0, cross = 0;
    int64_t same_n = 0, cross_n = 0;
    for (NodeId a = 0; a < std::min<NodeId>(200, ds.numNodes());
         ++a) {
        for (NodeId b = a + 1;
             b < std::min<NodeId>(200, ds.numNodes()); ++b) {
            if (ds.labels[a] == ds.labels[b]) {
                same += dist(a, b);
                ++same_n;
            } else {
                cross += dist(a, b);
                ++cross_n;
            }
        }
    }
    ASSERT_GT(same_n, 0);
    ASSERT_GT(cross_n, 0);
    EXPECT_LT(same / same_n, cross / cross_n);
}

} // namespace
} // namespace graph
} // namespace gnnbench
