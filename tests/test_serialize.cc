/** Tests for dataset / parameter serialization. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "gnnbench/dglx/nn.h"
#include "gnnbench/io/serialize.h"

namespace gnnbench {
namespace io {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Serialize, TensorRoundTrip)
{
    core::Rng rng(1);
    core::Tensor t = core::Tensor::randn(17, 9, rng);
    const std::string path = tempPath("tensor.bin");
    {
        std::ofstream out(path, std::ios::binary);
        writeTensor(out, t);
    }
    std::ifstream in(path, std::ios::binary);
    core::Tensor back = readTensor(in);
    ASSERT_TRUE(back.sameShape(t));
    for (int64_t i = 0; i < t.numel(); ++i)
        ASSERT_EQ(back.data()[i], t.data()[i]);
}

TEST(Serialize, EmptyTensorRoundTrip)
{
    const std::string path = tempPath("empty.bin");
    {
        std::ofstream out(path, std::ios::binary);
        writeTensor(out, core::Tensor());
    }
    std::ifstream in(path, std::ios::binary);
    core::Tensor back = readTensor(in);
    EXPECT_EQ(back.numel(), 0);
}

TEST(Serialize, DatasetRoundTrip)
{
    graph::Dataset ds = graph::loadDataset("ppi", 0.05, 3);
    const std::string path = tempPath("dataset.bin");
    saveDataset(ds, path);
    graph::Dataset back = loadDatasetFile(path);
    EXPECT_EQ(back.info.name, ds.info.name);
    EXPECT_EQ(back.scale, ds.scale);
    EXPECT_EQ(back.graph.src, ds.graph.src);
    EXPECT_EQ(back.graph.dst, ds.graph.dst);
    EXPECT_EQ(back.labels, ds.labels);
    EXPECT_EQ(back.trainIdx, ds.trainIdx);
    ASSERT_TRUE(back.features.sameShape(ds.features));
    for (int64_t i = 0; i < ds.features.numel(); ++i)
        ASSERT_EQ(back.features.data()[i], ds.features.data()[i]);
}

TEST(Serialize, ParamsRoundTrip)
{
    core::Rng rng(5);
    dglx::SageConv conv(8, 4, rng);
    const std::string path = tempPath("params.bin");
    saveParams(conv.params(), path);

    // A second model with different init converges to the saved
    // weights after load.
    core::Rng rng2(99);
    dglx::SageConv other(8, 4, rng2);
    EXPECT_NE(other.params()[0]->value(0, 0),
              conv.params()[0]->value(0, 0));
    loadParams(other.params(), path);
    for (size_t p = 0; p < conv.params().size(); ++p)
        for (int64_t i = 0; i < conv.params()[p]->value.numel(); ++i)
            ASSERT_EQ(other.params()[p]->value.data()[i],
                      conv.params()[p]->value.data()[i]);
}

TEST(Serialize, RejectsWrongMagic)
{
    const std::string path = tempPath("garbage.bin");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a gnnbench file at all............";
    }
    EXPECT_DEATH(loadDatasetFile(path), "not a gnnbench dataset");
    core::Rng rng(6);
    dglx::GcnConv conv(4, 4, rng);
    EXPECT_DEATH(loadParams(conv.params(), path),
                 "not a gnnbench parameter");
}

TEST(Serialize, RejectsTruncation)
{
    graph::Dataset ds = graph::loadDataset("ppi", 0.02, 7);
    const std::string path = tempPath("trunc.bin");
    saveDataset(ds, path);
    // Truncate the file to half its size.
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto size = static_cast<size_t>(in.tellg());
    in.seekg(0);
    std::string half(size / 2, '\0');
    in.read(half.data(), static_cast<std::streamsize>(half.size()));
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(half.data(),
              static_cast<std::streamsize>(half.size()));
    out.close();
    EXPECT_DEATH(loadDatasetFile(path), "truncated");
}

TEST(Serialize, RejectsShapeMismatch)
{
    core::Rng rng(8);
    dglx::GcnConv small(4, 4, rng);
    dglx::GcnConv big(16, 16, rng);
    const std::string path = tempPath("shape.bin");
    saveParams(small.params(), path);
    EXPECT_DEATH(loadParams(big.params(), path), "shape mismatch");
}

TEST(Serialize, MissingFileIsFatal)
{
    EXPECT_DEATH(loadDatasetFile(tempPath("does-not-exist.bin")),
                 "cannot open");
}

} // namespace
} // namespace io
} // namespace gnnbench
