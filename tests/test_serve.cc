/** The serving subsystem: request admission and shedding, the
 *  micro-batcher's dual triggers, versioned weight snapshots, eager
 *  env-knob validation, bit-exactness of the forward-only inference
 *  path against the training framework, and the determinism contract
 *  (worker-count invariance, no torn batches across hot-swaps). */

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gnnbench/core/ops.h"
#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/dglx/nn.h"
#include "gnnbench/graph/datasets.h"
#include "gnnbench/serve/loadgen.h"
#include "gnnbench/serve/server.h"
#include "test_support.h"

namespace gnnbench {
namespace {

namespace ag = core::ag;

serve::Request
req(uint64_t id, double arrival, double slo = 0.05)
{
    serve::Request r;
    r.id = id;
    r.node = static_cast<NodeId>(id % 7);
    r.arrival = arrival;
    r.deadline = arrival + slo;
    return r;
}

// ---------------------------------------------------------------
// RequestQueue: admission control and shedding.
// ---------------------------------------------------------------

TEST(RequestQueue, ShedsBeyondCapacity)
{
    serve::RequestQueue q(3);
    EXPECT_TRUE(q.tryEnqueue(req(1, 0.0)));
    EXPECT_TRUE(q.tryEnqueue(req(2, 0.0)));
    EXPECT_TRUE(q.tryEnqueue(req(3, 0.0)));
    EXPECT_FALSE(q.tryEnqueue(req(4, 0.0))); // full -> shed
    EXPECT_EQ(q.admitted(), 3u);
    EXPECT_EQ(q.rejected(), 1u);
    EXPECT_EQ(q.depth(), 3u);
    EXPECT_EQ(q.peakDepth(), 3u);
}

TEST(RequestQueue, ClosedQueueShedsAndCloseIsIdempotent)
{
    serve::RequestQueue q(8);
    EXPECT_TRUE(q.tryEnqueue(req(1, 0.0)));
    q.close();
    q.close(); // second close must be a no-op
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.tryEnqueue(req(2, 0.0)));
    EXPECT_EQ(q.rejected(), 1u);
    EXPECT_EQ(q.depth(), 1u); // admitted work stays drainable
}

// ---------------------------------------------------------------
// MicroBatcher: dual triggers on an injectable clock.
// ---------------------------------------------------------------

TEST(MicroBatcher, SizeTriggerFlushesFullBatch)
{
    serve::RequestQueue q(64);
    serve::ManualClock clock;
    serve::MicroBatcher b(q, {4, 0.005, 0.0005}, clock);
    for (uint64_t i = 1; i <= 6; ++i)
        ASSERT_TRUE(q.tryEnqueue(req(i, 0.0)));
    // Six pending, max 4: a full batch forms with no clock motion.
    auto batch = b.nextBatch();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->requests.size(), 4u);
    EXPECT_EQ(batch->requests[0].id, 1u); // admission order
    EXPECT_EQ(batch->requests[3].id, 4u);
    EXPECT_EQ(batch->batchId, 1u);
}

TEST(MicroBatcher, DeadlineSlackTriggerFlushesPartialBatch)
{
    serve::RequestQueue q(64);
    serve::ManualClock clock;
    serve::MicroBatcher b(q, {16, 0.005, 0.0005}, clock);
    ASSERT_TRUE(q.tryEnqueue(req(1, clock.now())));
    ASSERT_TRUE(q.tryEnqueue(req(2, clock.now())));
    // Inside the slack window of the oldest request's deadline:
    // waiting for more batching would risk the SLO, so the partial
    // batch must flush.
    clock.advance(0.046);
    auto batch = b.nextBatch();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->requests.size(), 2u);
}

TEST(MicroBatcher, CloseFlushesRemainderThenEnds)
{
    serve::RequestQueue q(64);
    serve::ManualClock clock;
    serve::MicroBatcher b(q, {16, 0.005, 0.0005}, clock);
    for (uint64_t i = 1; i <= 3; ++i)
        ASSERT_TRUE(q.tryEnqueue(req(i, 0.0)));
    q.close();
    // Shutdown flush: no deadline wait even though the batch is
    // far from full and the clock never moves.
    auto batch = b.nextBatch();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->requests.size(), 3u);
    EXPECT_FALSE(b.nextBatch().has_value()); // drained + closed
    EXPECT_FALSE(b.nextBatch().has_value()); // stays ended
}

// ---------------------------------------------------------------
// WeightStore: versioned snapshots.
// ---------------------------------------------------------------

TEST(WeightStore, VersionsAndSnapshotIsolation)
{
    serve::WeightStore store;
    EXPECT_EQ(store.version(), 0u);
    EXPECT_EQ(store.acquire(), nullptr);

    EXPECT_EQ(store.publish(serve::makeSageWeights(8, 4, 3, 1)), 1u);
    serve::WeightSnapshot v1 = store.acquire();
    ASSERT_NE(v1, nullptr);
    EXPECT_EQ(v1->version, 1u);

    EXPECT_EQ(store.publish(serve::makeSageWeights(8, 4, 3, 2)), 2u);
    EXPECT_EQ(store.version(), 2u);
    // The held snapshot is immutable across the publish.
    EXPECT_EQ(v1->version, 1u);
    EXPECT_EQ(store.acquire()->version, 2u);
}

TEST(WeightStore, MakeSageWeightsShapesAndDeterminism)
{
    serve::ModelWeights a = serve::makeSageWeights(50, 16, 7, 9);
    serve::ModelWeights b = serve::makeSageWeights(50, 16, 7, 9);
    ASSERT_EQ(a.layers.size(), 2u);
    EXPECT_EQ(a.layers[0].self.rows(), 50);
    EXPECT_EQ(a.layers[0].self.cols(), 16);
    EXPECT_EQ(a.layers[1].neigh.rows(), 16);
    EXPECT_EQ(a.layers[1].neigh.cols(), 7);
    EXPECT_EQ(a.layers[1].bias.cols(), 7);
    for (size_t l = 0; l < 2; ++l)
        for (int64_t i = 0; i < a.layers[l].self.numel(); ++i)
            ASSERT_EQ(a.layers[l].self.data()[i],
                      b.layers[l].self.data()[i]);
    EXPECT_GT(a.paramBytes(), 0u);
}

// ---------------------------------------------------------------
// Eager env-knob validation (GNNBENCH_SERVE_* convention).
// ---------------------------------------------------------------

TEST(ServeEnv, MalformedWorkerCountIsFatal)
{
    EXPECT_EXIT(serve::detail::servePositiveInt(
                    "GNNBENCH_SERVE_WORKERS", "many", 2),
                ::testing::ExitedWithCode(1),
                "GNNBENCH_SERVE_WORKERS must be a positive integer");
}

TEST(ServeEnv, NonPositiveQueueDepthIsFatal)
{
    EXPECT_EXIT(serve::detail::servePositiveInt(
                    "GNNBENCH_SERVE_QUEUE_DEPTH", "0", 1024),
                ::testing::ExitedWithCode(1),
                "GNNBENCH_SERVE_QUEUE_DEPTH must be a positive");
}

TEST(ServeEnv, MalformedSloIsFatal)
{
    EXPECT_EXIT(serve::detail::servePositiveMs(
                    "GNNBENCH_SERVE_SLO_MS", "5ms", 50.0),
                ::testing::ExitedWithCode(1),
                "GNNBENCH_SERVE_SLO_MS must be a positive number");
}

TEST(ServeEnv, UnsetAndValidValuesApply)
{
    EXPECT_EQ(serve::detail::servePositiveInt("X", nullptr, 3), 3);
    EXPECT_EQ(serve::detail::servePositiveInt("X", "", 3), 3);
    EXPECT_EQ(serve::detail::servePositiveInt("X", "8", 3), 8);
    EXPECT_EQ(serve::detail::servePositiveMs("X", "12.5", 50.0),
              12.5);
}

TEST(ServeEnv, ArrivalNamesRoundTrip)
{
    serve::Arrival a;
    EXPECT_TRUE(serve::parseArrival("poisson", &a));
    EXPECT_EQ(a, serve::Arrival::Poisson);
    EXPECT_TRUE(serve::parseArrival("closed", &a));
    EXPECT_EQ(a, serve::Arrival::ClosedLoop);
    EXPECT_FALSE(serve::parseArrival("uniform", &a));
    EXPECT_STREQ(serve::validArrivalList(), "poisson/closed");
}

// ---------------------------------------------------------------
// Inference path: bit-exact vs the training framework's forward.
// ---------------------------------------------------------------

struct ServeFixture
{
    graph::Dataset ds;
    dglx::LoadedData data;

    explicit ServeFixture(double scale = 0.1)
        : ds(graph::loadDataset("ppi", scale, testenv::seed())),
          data(dglx::DataLoader::load(ds))
    {
    }
};

TEST(ServeInference, BitExactVsSageConvForwardBlock)
{
    ServeFixture f;
    const int64_t hidden = 16;
    const uint64_t wseed = testenv::seed() + 17;
    serve::ModelWeights w = serve::makeSageWeights(
        f.ds.info.numFeatures, hidden, f.ds.info.numClasses, wseed);

    // Trainer-side layers from the identical draw sequence.
    core::Rng rng(wseed);
    core::Rng wrng = rng.fork();
    dglx::SageConv layer1(f.ds.info.numFeatures, hidden, wrng);
    dglx::SageConv layer2(hidden, f.ds.info.numClasses, wrng);

    dglx::NeighborSampler sampler(*f.data.graph, {10, 5},
                                  core::Rng(testenv::seed()));
    const std::vector<NodeId> seeds = {1, 5, 9, 23};
    sampling::NeighborSample smp = sampler.sample(seeds);

    core::Tensor x =
        core::ops::gatherRows(f.data.features, smp.inputNodes());
    core::Tensor got = serve::inferLogits(smp, x, w);

    dglx::KernelCtx ctx;
    ag::Var xv = ag::leaf(
        core::ops::gatherRows(f.data.features, smp.inputNodes()),
        false);
    ag::Var h = layer1.forwardBlock(smp.blocks[0], xv, ctx);
    h = ag::relu(h);
    ag::Var want = layer2.forwardBlock(smp.blocks[1], h, ctx);

    ASSERT_EQ(got.rows(), want->value.rows());
    ASSERT_EQ(got.cols(), want->value.cols());
    for (int64_t i = 0; i < got.numel(); ++i)
        ASSERT_EQ(got.data()[i], want->value.data()[i])
            << "logit " << i << " diverges from the dglx forward";
}

TEST(ServeInference, ArgmaxBreaksTiesLow)
{
    core::Tensor t = core::Tensor::zeros(1, 4);
    t(0, 1) = 2.0f;
    t(0, 3) = 2.0f;
    EXPECT_EQ(serve::argmaxClass(t, 0), 1);
}

// ---------------------------------------------------------------
// Server end-to-end: determinism and hot-swap isolation.
// ---------------------------------------------------------------

/** Submit @p nodes in order and return id -> (version, logits). */
std::map<uint64_t, std::pair<uint64_t, std::vector<float>>>
serveAll(serve::Server &server, const std::vector<NodeId> &nodes)
{
    for (size_t i = 0; i < nodes.size(); ++i) {
        const auto id = server.submit(
            static_cast<int32_t>(i % 3), nodes[i]);
        EXPECT_TRUE(id.has_value());
    }
    server.drain();
    std::map<uint64_t, std::pair<uint64_t, std::vector<float>>> out;
    for (auto &r : server.takeResponses())
        out[r.id] = {r.weightVersion, std::move(r.logits)};
    return out;
}

std::vector<NodeId>
someNodes(const ServeFixture &f, size_t n)
{
    std::vector<NodeId> nodes;
    core::Rng rng(testenv::seed() + 3);
    for (size_t i = 0; i < n; ++i)
        nodes.push_back(static_cast<NodeId>(rng.uniformInt(
            static_cast<uint64_t>(f.data.graph->numNodes()))));
    return nodes;
}

TEST(Server, BitIdenticalAcrossWorkerCountsAndHotSwap)
{
    ServeFixture f;
    const std::vector<NodeId> nodes = someNodes(f, 24);
    const serve::RealClock clock;

    // Phase structure: nodes under v1, hot-swap, same nodes under
    // v2.  Responses are keyed by request id, which depends only on
    // submission order -- identical across runs.
    std::map<uint64_t, std::pair<uint64_t, std::vector<float>>>
        baseline;
    for (int workers : {1, 2, 4}) {
        serve::ServeConfig cfg;
        cfg.workers = workers;
        cfg.maxBatch = 5; // force multi-batch coalescing
        cfg.seed = testenv::seed();
        serve::Server server(f.data, cfg, clock);
        server.publish(serve::makeSageWeights(
            f.ds.info.numFeatures, 16, f.ds.info.numClasses, 11));
        auto phase1 = serveAll(server, nodes);
        server.publish(serve::makeSageWeights(
            f.ds.info.numFeatures, 16, f.ds.info.numClasses, 12));
        auto phase2 = serveAll(server, nodes);
        server.shutdown();

        for (const auto &[id, vr] : phase1)
            EXPECT_EQ(vr.first, 1u) << "request " << id;
        for (const auto &[id, vr] : phase2)
            EXPECT_EQ(vr.first, 2u) << "request " << id;
        ASSERT_EQ(phase1.size(), nodes.size());
        ASSERT_EQ(phase2.size(), nodes.size());

        // The hot-swap must change the answers (different weights)...
        bool anyDiff = false;
        for (const auto &[id, vr] : phase1)
            if (vr.second != phase2.at(id + nodes.size()).second)
                anyDiff = true;
        EXPECT_TRUE(anyDiff);

        auto all = phase1;
        all.insert(phase2.begin(), phase2.end());
        if (baseline.empty()) {
            baseline = std::move(all);
            continue;
        }
        // ...and every logit must be bit-identical to the 1-worker
        // run: batching and scheduling may not leak into results.
        ASSERT_EQ(all.size(), baseline.size()) << workers;
        for (const auto &[id, vr] : baseline) {
            const auto it = all.find(id);
            ASSERT_NE(it, all.end()) << workers;
            EXPECT_EQ(it->second.first, vr.first);
            ASSERT_EQ(it->second.second.size(), vr.second.size());
            for (size_t j = 0; j < vr.second.size(); ++j)
                ASSERT_EQ(it->second.second[j], vr.second[j])
                    << "request " << id << " logit " << j << " with "
                    << workers << " workers";
        }
    }
}

TEST(Server, NoTornBatchUnderConcurrentPublishes)
{
    ServeFixture f;
    const serve::RealClock clock;
    serve::ServeConfig cfg;
    cfg.workers = 2;
    cfg.maxBatch = 8;
    cfg.seed = testenv::seed();
    serve::Server server(f.data, cfg, clock);
    server.publish(serve::makeSageWeights(f.ds.info.numFeatures, 16,
                                          f.ds.info.numClasses, 1));

    // A publisher hammers hot-swaps while requests flow.
    std::atomic<bool> stop{false};
    std::thread publisher([&] {
        uint64_t s = 2;
        while (!stop.load())
            server.publish(serve::makeSageWeights(
                f.ds.info.numFeatures, 16, f.ds.info.numClasses,
                s++));
    });
    const std::vector<NodeId> nodes = someNodes(f, 64);
    for (size_t i = 0; i < nodes.size(); ++i)
        ASSERT_TRUE(server.submit(0, nodes[i]).has_value());
    server.drain();
    stop.store(true);
    publisher.join();
    std::vector<serve::Response> responses = server.takeResponses();
    server.shutdown();

    ASSERT_EQ(responses.size(), nodes.size());
    // Snapshot isolation: every response of a batch names the same
    // weight version, no matter how publishes interleaved.
    std::map<uint64_t, uint64_t> versionOfBatch;
    for (const auto &r : responses) {
        const auto [it, fresh] =
            versionOfBatch.emplace(r.batchId, r.weightVersion);
        EXPECT_EQ(it->second, r.weightVersion)
            << "torn batch " << r.batchId;
        (void)fresh;
    }
}

TEST(Server, ShedsWhenQueueOverflowsAndAnswersTheRest)
{
    ServeFixture f;
    const serve::RealClock clock;
    serve::ServeConfig cfg;
    cfg.workers = 1;
    cfg.maxBatch = 2;
    cfg.queueDepth = 2; // tiny bound: bursts must shed
    cfg.seed = testenv::seed();
    serve::Server server(f.data, cfg, clock);
    server.publish(serve::makeSageWeights(f.ds.info.numFeatures, 16,
                                          f.ds.info.numClasses, 1));
    const std::vector<NodeId> nodes = someNodes(f, 64);
    uint64_t ok = 0;
    for (const NodeId n : nodes)
        if (server.submit(0, n))
            ++ok;
    server.drain();
    server.shutdown();
    EXPECT_EQ(server.admitted(), ok);
    EXPECT_EQ(server.admitted() + server.rejected(), nodes.size());
    EXPECT_EQ(server.completed(), ok); // every admission answered
    EXPECT_LE(server.queuePeakDepth(), 2u);
}

TEST(Server, SubmitBeforePublishIsFatal)
{
    ServeFixture f;
    const serve::RealClock clock;
    serve::Server server(f.data, serve::ServeConfig{}, clock);
    EXPECT_EXIT(server.submit(0, 0), ::testing::ExitedWithCode(1),
                "before the first weight publish");
}

// ---------------------------------------------------------------
// Load generators.
// ---------------------------------------------------------------

TEST(LoadGen, ClosedLoopAnswersEveryRequest)
{
    ServeFixture f;
    const serve::RealClock clock;
    serve::ServeConfig cfg;
    cfg.workers = 2;
    cfg.seed = testenv::seed();
    serve::Server server(f.data, cfg, clock);
    server.publish(serve::makeSageWeights(f.ds.info.numFeatures, 16,
                                          f.ds.info.numClasses, 1));
    serve::LoadGenConfig lg;
    lg.arrival = serve::Arrival::ClosedLoop;
    lg.closedLoopClients = 4;
    lg.tenants = 3;
    lg.requests = 40;
    const serve::LoadGenResult res =
        serve::runLoadGen(server, lg, clock);
    server.shutdown();
    EXPECT_EQ(res.submitted + res.shed, 40);
    EXPECT_EQ(server.completed(), server.admitted());
    // Closed loop never outruns the queue (clients <= queueDepth).
    EXPECT_EQ(res.shed, 0);
}

TEST(LoadGen, PoissonSubmitsAllAtHighRate)
{
    ServeFixture f;
    const serve::RealClock clock;
    serve::ServeConfig cfg;
    cfg.workers = 2;
    cfg.seed = testenv::seed();
    serve::Server server(f.data, cfg, clock);
    server.publish(serve::makeSageWeights(f.ds.info.numFeatures, 16,
                                          f.ds.info.numClasses, 1));
    serve::LoadGenConfig lg;
    lg.arrival = serve::Arrival::Poisson;
    lg.targetQps = 1e6; // effectively back-to-back
    lg.requests = 50;
    const serve::LoadGenResult res =
        serve::runLoadGen(server, lg, clock);
    server.drain();
    server.shutdown();
    EXPECT_EQ(res.submitted + res.shed, 50);
    EXPECT_EQ(server.completed(), server.admitted());
    EXPECT_GE(res.lastSubmit, res.firstSubmit);
}

} // namespace
} // namespace gnnbench
