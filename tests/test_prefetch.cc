/** The prefetching pipeline and the framework dataloaders built on
 *  it: ordered delivery, exception transport, clean mid-epoch
 *  shutdown, and loader determinism. */

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/profiling/trace.h"
#include "gnnbench/pygx/dataloader.h"
#include "gnnbench/sampling/prefetch.h"

namespace gnnbench {
namespace {

using sampling::Prefetcher;

std::vector<Prefetcher<int64_t>::Producer>
echoProducers(int workers)
{
    std::vector<Prefetcher<int64_t>::Producer> out;
    for (int w = 0; w < workers; ++w)
        out.push_back([](int64_t i) { return i; });
    return out;
}

// Shutdown-hardening stress for the pipeline's backbone queue; this
// binary is in GNNBENCH_TSAN_TESTS, so the race here also runs under
// -fsanitize=thread.  Producers block on a tiny full queue while
// several threads race close(): the first close must wake every
// blocked producer and consumer exactly once (later closes are
// no-ops), no item accepted by push() may be lost, and nothing may
// deadlock.
TEST(BoundedQueue, CloseRacesBlockedProducersWithoutLossOrHang)
{
    using core::parallel::BoundedQueue;
    for (int round = 0; round < 25; ++round) {
        core::parallel::QueueStats stats;
        BoundedQueue<int> q(2, &stats);
        std::atomic<int> accepted{0};
        std::vector<std::thread> producers;
        for (int p = 0; p < 4; ++p)
            producers.emplace_back([&q, &accepted, p] {
                for (int i = 0; i < 64; ++i) {
                    if (!q.push(p * 64 + i))
                        return; // closed while blocked
                    accepted.fetch_add(1);
                }
            });
        std::atomic<int> consumed{0};
        std::thread consumer([&q, &consumed] {
            for (int i = 0; i < 8; ++i)
                if (q.pop())
                    consumed.fetch_add(1);
        });
        std::vector<std::thread> closers;
        for (int c = 0; c < 3; ++c)
            closers.emplace_back([&q] { q.close(); });
        for (auto &t : closers)
            t.join();
        for (auto &t : producers)
            t.join(); // a lost wakeup would hang here
        consumer.join();
        int drained = 0;
        while (q.pop())
            ++drained;
        // Conservation: everything push() accepted was delivered.
        EXPECT_EQ(accepted.load(), consumed.load() + drained);
        EXPECT_TRUE(q.closed());
        q.close(); // idempotent after the race settles
    }
}

TEST(BoundedQueue, CloseWakesConsumersBlockedOnEmptyQueue)
{
    core::parallel::BoundedQueue<int> q(4);
    std::vector<std::thread> consumers;
    std::atomic<int> emptied{0};
    for (int c = 0; c < 3; ++c)
        consumers.emplace_back([&q, &emptied] {
            if (!q.pop().has_value())
                emptied.fetch_add(1);
        });
    // Give the consumers a moment to block on the empty queue, then
    // close: all three must wake and observe the drained-empty state.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    for (auto &t : consumers)
        t.join();
    EXPECT_EQ(emptied.load(), 3);
    EXPECT_FALSE(q.push(1)); // closed queue refuses new work
}

TEST(Prefetcher, DeliversBatchesInSerialOrder)
{
    for (int workers : {1, 2, 4}) {
        Prefetcher<int64_t> p(echoProducers(workers), 23, 2);
        for (int64_t i = 0; i < 23; ++i) {
            auto got = p.next();
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, i);
        }
        EXPECT_FALSE(p.next().has_value());
        EXPECT_FALSE(p.next().has_value()); // stays exhausted
    }
}

TEST(Prefetcher, OrderHoldsWhenWorkersFinishOutOfOrder)
{
    // Even batches take much longer than odd ones, so with two
    // workers the odd-batch worker runs far ahead; delivery order
    // must still be 0, 1, 2, ...
    std::vector<Prefetcher<int64_t>::Producer> producers;
    for (int w = 0; w < 2; ++w)
        producers.push_back([](int64_t i) {
            if (i % 2 == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            return i;
        });
    Prefetcher<int64_t> p(std::move(producers), 16, 4);
    for (int64_t i = 0; i < 16; ++i)
        EXPECT_EQ(p.next().value(), i);
}

TEST(Prefetcher, ProducerExceptionRethrownAtItsPosition)
{
    std::vector<Prefetcher<int64_t>::Producer> producers;
    for (int w = 0; w < 2; ++w)
        producers.push_back([](int64_t i) -> int64_t {
            if (i == 5)
                throw std::runtime_error("sampler failed");
            return i;
        });
    Prefetcher<int64_t> p(std::move(producers), 10, 2);
    // Batches before the failure arrive in order; batch 5 throws.
    for (int64_t i = 0; i < 5; ++i)
        EXPECT_EQ(p.next().value(), i);
    EXPECT_THROW(p.next(), std::runtime_error);
}

TEST(Prefetcher, MidEpochDestructionJoinsWorkers)
{
    std::atomic<int> alive{0};
    {
        std::vector<Prefetcher<int64_t>::Producer> producers;
        for (int w = 0; w < 4; ++w)
            producers.push_back([&alive](int64_t i) {
                ++alive;
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
                --alive;
                return i;
            });
        Prefetcher<int64_t> p(std::move(producers), 1000, 2);
        // Consume a few batches, then destroy mid-epoch.
        for (int64_t i = 0; i < 3; ++i)
            EXPECT_EQ(p.next().value(), i);
    }
    // The destructor joined every worker: none is inside a producer.
    EXPECT_EQ(alive.load(), 0);
}

TEST(Prefetcher, ShutdownUnblocksFullQueueProducers)
{
    // Depth 1 and no consumption: every worker ends up blocked in
    // push(); shutdown() must unblock and join them promptly.
    Prefetcher<int64_t> p(echoProducers(4), 1000, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    p.shutdown();
    // Batches buffered before the close still drain, in serial
    // order; at most depth per worker were buffered.
    int64_t delivered = 0;
    while (auto got = p.next()) {
        EXPECT_EQ(*got, delivered);
        ++delivered;
    }
    EXPECT_LE(delivered, 4);
    EXPECT_FALSE(p.next().has_value()); // stays exhausted
}

TEST(Prefetcher, WorkerBusySecondsCoverAllWorkers)
{
    Prefetcher<int64_t> p(echoProducers(3), 30, 2);
    while (p.next())
        ;
    const auto &busy = p.workerBusySeconds();
    ASSERT_EQ(busy.size(), 3u);
    for (double b : busy)
        EXPECT_GE(b, 0.0);
}

TEST(Prefetcher, QueueStatsCountBatchesAndBackpressure)
{
    // Depth-1 queues with instant producers and a slow consumer:
    // every worker spends most of the run blocked on a full queue.
    Prefetcher<int64_t> p(echoProducers(2), 40, 1);
    int64_t delivered = 0;
    while (auto got = p.next()) {
        EXPECT_EQ(*got, delivered);
        ++delivered;
        std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    EXPECT_EQ(delivered, 40);
    p.shutdown();
    const core::parallel::QueueStats &qs = p.queueStats();
    EXPECT_EQ(qs.pushes.load(), 40u);
    EXPECT_EQ(qs.pops.load(), 40u);
    EXPECT_GT(qs.enqueueBlocks.load(), 0u);
    EXPECT_GE(qs.enqueueBlockNanos.load(),
              qs.enqueueBlocks.load()); // blocks take > 1 ns each
    EXPECT_GE(qs.maxDepth.load(), 1u);
}

TEST(Prefetcher, TracingRecordsOneLanePerWorker)
{
    auto &trace = profiling::TraceRecorder::global();
    trace.enable();
    {
        Prefetcher<int64_t> p(echoProducers(4), 16, 2, "pftest");
        while (p.next())
            ;
    }
    int worker_lanes = 0;
    size_t batch_events = 0;
    for (const auto &lane : trace.lanesSnapshot())
        if (lane.name.rfind("pftest/w", 0) == 0) {
            ++worker_lanes;
            for (const auto &e : lane.events)
                if (e.name.rfind("batch ", 0) == 0)
                    ++batch_events;
        }
    EXPECT_EQ(worker_lanes, 4);
    EXPECT_EQ(batch_events, 16u); // one production event per batch
    trace.clear();
    trace.disable();
}

class LoaderTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ds_ = graph::loadDataset("ppi", 0.05, 11);
        dgl_ = dglx::DataLoader::load(ds_);
        pyg_ = pygx::DataLoader::load(ds_);
        for (NodeId v = 0; v < ds_.numNodes(); v += 2)
            seeds_.push_back(v);
        for (size_t i = 0; i < seeds_.size(); i += 64)
            batches_.push_back(std::vector<NodeId>(
                seeds_.begin() + i,
                seeds_.begin() +
                    std::min(i + 64, seeds_.size())));
    }

    graph::Dataset ds_;
    dglx::LoadedData dgl_;
    pygx::LoadedData pyg_;
    std::vector<NodeId> seeds_;
    std::vector<std::vector<NodeId>> batches_;
};

TEST_F(LoaderTest, DglxNeighborLoaderDeterministicAndValid)
{
    dglx::NeighborSampler proto(*dgl_.graph, {5, 3}, core::Rng(3));
    auto run = [&](int workers) {
        core::Rng rng(21);
        dglx::NeighborLoader loader(proto, rng, batches_, workers, 2);
        std::vector<sampling::NeighborSample> out;
        while (auto s = loader.next()) {
            s->validate();
            out.push_back(std::move(*s));
        }
        return out;
    };
    auto a = run(2);
    auto b = run(2);
    ASSERT_EQ(a.size(), batches_.size());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].blocks.size(), b[i].blocks.size());
        EXPECT_EQ(a[i].seeds, b[i].seeds);
        EXPECT_EQ(a[i].seeds, batches_[i]);
        for (size_t l = 0; l < a[i].blocks.size(); ++l) {
            EXPECT_EQ(a[i].blocks[l].srcNodes, b[i].blocks[l].srcNodes);
            EXPECT_EQ(a[i].blocks[l].csc.indptr,
                      b[i].blocks[l].csc.indptr);
            EXPECT_EQ(a[i].blocks[l].csc.indices,
                      b[i].blocks[l].csc.indices);
        }
    }
}

TEST_F(LoaderTest, DglxInducedLoadersDeliverAllBatches)
{
    dglx::ClusterSampler cproto(*dgl_.graph, 16, core::Rng(5));
    core::Rng rng1(31);
    auto cluster =
        dglx::makeClusterLoader(cproto, rng1, 4, 6, 3, 2);
    int n = 0;
    while (auto s = cluster.next()) {
        s->validate();
        ++n;
    }
    EXPECT_EQ(n, 6);

    dglx::SaintRwSampler sproto(*dgl_.graph, 50, 2, core::Rng(6));
    core::Rng rng2(32);
    auto saint = dglx::makeSaintRwLoader(sproto, rng2, 5, 2, 2);
    n = 0;
    while (auto s = saint.next()) {
        s->validate();
        ++n;
    }
    EXPECT_EQ(n, 5);
}

TEST_F(LoaderTest, PygxLoaderChargesModeledOverheadOnConsumer)
{
    device::Session session;
    pygx::NeighborSampler proto(*pyg_.data, {5, 3}, core::Rng(3),
                                &session);
    const auto t0 = session.snapshot();
    core::Rng rng(21);
    pygx::NeighborLoader loader(proto, rng, batches_, 2, 2,
                                &session);
    int n = 0;
    while (auto b = loader.next()) {
        b->validate();
        ++n;
    }
    EXPECT_EQ(n, static_cast<int>(batches_.size()));
    // The workers' modeled interpreter time was charged here, on the
    // session, so virtual time advanced beyond zero.
    EXPECT_GT(device::Session::virtualSeconds(t0, session.snapshot()),
              0.0);
}

TEST_F(LoaderTest, LoaderDestructionMidEpochIsClean)
{
    dglx::NeighborSampler proto(*dgl_.graph, {5, 3}, core::Rng(3));
    core::Rng rng(21);
    auto loader = std::make_unique<dglx::NeighborLoader>(
        proto, rng, batches_, 4, 2);
    ASSERT_TRUE(loader->next().has_value());
    loader.reset(); // mid-epoch: must drain, join, and not hang
    SUCCEED();
}

} // namespace
} // namespace gnnbench
