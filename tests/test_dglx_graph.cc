/** Tests for the dglx graph object. */

#include <gtest/gtest.h>

#include <cmath>

#include "gnnbench/dglx/graph.h"
#include "gnnbench/graph/generate.h"

namespace gnnbench {
namespace dglx {
namespace {

graph::CooGraph
smallGraph(uint64_t seed)
{
    core::Rng rng(seed);
    return graph::symmetrize(graph::rmat(100, 400, rng), false);
}

TEST(DglxGraph, EagerFormats)
{
    graph::CooGraph coo = smallGraph(1);
    Graph g(coo);
    EXPECT_EQ(g.numNodes(), 100);
    EXPECT_EQ(g.numEdges(), coo.numEdges());
    g.csr().validate();
    g.csc().validate();
    EXPECT_EQ(g.csr().numEdges(), g.numEdges());
    EXPECT_EQ(g.csc().numEdges(), g.numEdges());
}

TEST(DglxGraph, DegreesMatchFormats)
{
    Graph g(smallGraph(2));
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        EXPECT_EQ(g.outDegrees()[v], g.csr().degree(v));
        EXPECT_EQ(g.inDegrees()[v], g.csc().degree(v));
        // Symmetric graph: in-degree equals out-degree.
        EXPECT_EQ(g.inDegrees()[v], g.outDegrees()[v]);
    }
}

TEST(DglxGraph, GcnNormValues)
{
    Graph g(smallGraph(3));
    const auto &w = g.gcnNormCsc();
    ASSERT_EQ(static_cast<EdgeId>(w.size()), g.numEdges());
    const auto &csc = g.csc();
    EdgeId e = 0;
    for (NodeId d = 0; d < g.numNodes(); ++d) {
        for (EdgeId i = csc.indptr[d]; i < csc.indptr[d + 1];
             ++i, ++e) {
            const NodeId s = csc.indices[i];
            const float expect = 1.0f / std::sqrt(
                (g.inDegrees()[d] + 1.0f) *
                (g.outDegrees()[s] + 1.0f));
            ASSERT_NEAR(w[e], expect, 1e-6f);
        }
    }
}

TEST(DglxGraph, NormArraysSymmetricGraphConsistent)
{
    // On a symmetric graph the csr- and csc-aligned weight arrays
    // contain the same multiset of values.
    Graph g(smallGraph(4));
    std::vector<float> a = g.gcnNormCsc();
    std::vector<float> b = g.gcnNormCsr();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(a[i], b[i], 1e-6f);
}

TEST(DglxGraph, MeanNormIsInverseDegree)
{
    Graph g(smallGraph(5));
    const auto &w = g.meanNormCsc();
    const auto &csc = g.csc();
    EdgeId e = 0;
    for (NodeId d = 0; d < g.numNodes(); ++d)
        for (EdgeId i = csc.indptr[d]; i < csc.indptr[d + 1];
             ++i, ++e)
            ASSERT_NEAR(w[e], 1.0f / csc.degree(d), 1e-6f);
}

TEST(DglxGraph, StructureBytesCountsAllFormats)
{
    Graph g(smallGraph(6));
    // COO (2 arrays) + CSR + CSC indices at least.
    const uint64_t min_expected =
        4ull * g.numEdges() * sizeof(NodeId);
    EXPECT_GT(g.structureBytes(), min_expected);
}

} // namespace
} // namespace dglx
} // namespace gnnbench
