/** Tests for the dense Tensor container. */

#include <gtest/gtest.h>

#include <cmath>

#include "gnnbench/core/tensor.h"

namespace gnnbench {
namespace core {
namespace {

TEST(Tensor, DefaultIsEmpty)
{
    Tensor t;
    EXPECT_EQ(t.rows(), 0);
    EXPECT_EQ(t.cols(), 0);
    EXPECT_TRUE(t.empty());
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t(3, 4);
    EXPECT_EQ(t.numel(), 12);
    for (int64_t i = 0; i < 3; ++i)
        for (int64_t j = 0; j < 4; ++j)
            EXPECT_EQ(t(i, j), 0.0f);
}

TEST(Tensor, FillAndAccess)
{
    Tensor t = Tensor::full(2, 3, 1.5f);
    EXPECT_EQ(t.at(1, 2), 1.5f);
    t(0, 1) = -2.0f;
    EXPECT_EQ(t.at(0, 1), -2.0f);
}

TEST(Tensor, RowPointerLayout)
{
    Tensor t(3, 5);
    t(2, 4) = 7.0f;
    EXPECT_EQ(t.row(2)[4], 7.0f);
    EXPECT_EQ(t.data()[2 * 5 + 4], 7.0f);
}

TEST(Tensor, CloneIsDeep)
{
    Tensor t = Tensor::full(2, 2, 3.0f);
    Tensor c = t.clone();
    c(0, 0) = -1.0f;
    EXPECT_EQ(t(0, 0), 3.0f);
}

TEST(Tensor, SumAndMaxAbs)
{
    Tensor t(2, 2);
    t(0, 0) = 1.0f;
    t(0, 1) = -4.0f;
    t(1, 0) = 2.0f;
    EXPECT_FLOAT_EQ(t.sum(), -1.0f);
    EXPECT_FLOAT_EQ(t.maxAbs(), 4.0f);
}

TEST(Tensor, RandnMoments)
{
    Rng rng(5);
    Tensor t = Tensor::randn(200, 200, rng, 2.0f);
    double sum = 0.0, sum2 = 0.0;
    for (int64_t i = 0; i < t.numel(); ++i) {
        sum += t.data()[i];
        sum2 += t.data()[i] * t.data()[i];
    }
    const double n = static_cast<double>(t.numel());
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum2 / n, 4.0, 0.15);
}

TEST(Tensor, UniformWithinBounds)
{
    Rng rng(6);
    Tensor t = Tensor::uniform(50, 50, rng, -2.0f, 3.0f);
    for (int64_t i = 0; i < t.numel(); ++i) {
        ASSERT_GE(t.data()[i], -2.0f);
        ASSERT_LT(t.data()[i], 3.0f);
    }
}

TEST(Tensor, GlorotLimit)
{
    Rng rng(7);
    Tensor t = Tensor::glorot(64, 64, rng);
    const float limit = std::sqrt(6.0f / 128.0f);
    EXPECT_LE(t.maxAbs(), limit);
}

TEST(Tensor, BytesAccounting)
{
    Tensor t(10, 10);
    EXPECT_EQ(t.bytes(), 400u);
}

TEST(Tensor, SameShape)
{
    EXPECT_TRUE(Tensor(2, 3).sameShape(Tensor(2, 3)));
    EXPECT_FALSE(Tensor(2, 3).sameShape(Tensor(3, 2)));
}

} // namespace
} // namespace core
} // namespace gnnbench
