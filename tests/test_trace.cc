/** Tests for the trace recorder, JSON writer, and metrics registry. */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "gnnbench/profiling/json_writer.h"
#include "gnnbench/profiling/metrics_registry.h"
#include "gnnbench/profiling/trace.h"

namespace gnnbench {
namespace profiling {
namespace {

// ---------------------------------------------------------------- JSON

TEST(JsonWriter, ObjectsArraysAndEscaping)
{
    std::ostringstream out;
    {
        JsonWriter w(out);
        w.beginObject();
        w.value("s", "a\"b\\c\n\t");
        w.value("i", int64_t{-42});
        w.value("u", uint64_t{42});
        w.value("d", 1.5);
        w.value("b", true);
        w.beginArray("arr");
        w.value(int64_t{1});
        w.value("two");
        w.endArray();
        w.beginObject("nested");
        w.endObject();
        w.endObject();
    }
    const std::string s = out.str();
    EXPECT_EQ(s, "{\"s\":\"a\\\"b\\\\c\\n\\t\",\"i\":-42,\"u\":42,"
                 "\"d\":1.5,\"b\":true,\"arr\":[1,\"two\"],"
                 "\"nested\":{}}");
    EXPECT_TRUE(json::valid(s));
}

TEST(JsonWriter, ControlCharactersEscaped)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.value("k", std::string("a\x01z"));
    w.endObject();
    EXPECT_EQ(out.str(), "{\"k\":\"a\\u0001z\"}");
    EXPECT_TRUE(json::valid(out.str()));
}

TEST(JsonValidator, AcceptsAndRejects)
{
    EXPECT_TRUE(json::valid("{}"));
    EXPECT_TRUE(json::valid("[1, 2.5, -3e2, \"x\", null, true]"));
    EXPECT_TRUE(json::valid("{\"a\": {\"b\": [false]}}"));
    EXPECT_FALSE(json::valid(""));
    EXPECT_FALSE(json::valid("{"));
    EXPECT_FALSE(json::valid("{\"a\": }"));
    EXPECT_FALSE(json::valid("[1,]"));
    EXPECT_FALSE(json::valid("{} extra"));
    EXPECT_FALSE(json::valid("'single'"));
}

// --------------------------------------------------------------- Trace

/** Recorder on a manual clock the test advances explicitly. */
struct ManualClockRecorder
{
    double now = 0.0;
    TraceRecorder rec;

    ManualClockRecorder() : rec([this] { return now; }) {}
};

TEST(TraceRecorder, DisabledRecorderRecordsNothing)
{
    ManualClockRecorder m;
    m.rec.record("e", "cat", 0.0, 1.0);
    EXPECT_EQ(m.rec.eventCount(), 0u);
}

TEST(TraceRecorder, EventsOrderedPerLane)
{
    ManualClockRecorder m;
    m.rec.enable();
    // Record out of order; the snapshot sorts by start time.
    m.rec.record("b", "cat", 2.0, 3.0);
    m.rec.record("a", "cat", 0.0, 1.0);
    const auto lanes = m.rec.lanesSnapshot();
    ASSERT_EQ(lanes.size(), 1u);
    EXPECT_EQ(lanes[0].name, "main");
    ASSERT_EQ(lanes[0].events.size(), 2u);
    EXPECT_EQ(lanes[0].events[0].name, "a");
    EXPECT_EQ(lanes[0].events[1].name, "b");
    EXPECT_DOUBLE_EQ(lanes[0].events[1].startSeconds, 2.0);
    EXPECT_DOUBLE_EQ(lanes[0].events[1].durationSeconds, 1.0);
}

TEST(TraceRecorder, ScopePairsBeginEndOnManualClock)
{
    ManualClockRecorder m;
    m.rec.enable();
    {
        TraceScope outer(m.rec, "outer", "scope");
        m.now = 1.0;
        {
            TraceScope inner(m.rec, "inner", "scope");
            m.now = 3.0;
        }
        m.now = 4.0;
    }
    const auto lanes = m.rec.lanesSnapshot();
    ASSERT_EQ(lanes.size(), 1u);
    ASSERT_EQ(lanes[0].events.size(), 2u);
    // Sorted by start: outer [0, 4], inner [1, 3] — proper nesting.
    EXPECT_EQ(lanes[0].events[0].name, "outer");
    EXPECT_DOUBLE_EQ(lanes[0].events[0].durationSeconds, 4.0);
    EXPECT_EQ(lanes[0].events[1].name, "inner");
    EXPECT_DOUBLE_EQ(lanes[0].events[1].startSeconds, 1.0);
    EXPECT_DOUBLE_EQ(lanes[0].events[1].durationSeconds, 2.0);
}

TEST(TraceRecorder, DeterministicOutputUnderFixedClock)
{
    auto build = [](std::string &out) {
        ManualClockRecorder m;
        m.rec.enable();
        m.rec.record("x", "phase", 0.25, 0.75);
        m.rec.recordSynthetic(TraceRecorder::kGpuLane, "k", "gpu",
                              0.25, 0.1);
        std::ostringstream os;
        m.rec.writeChromeTrace(os);
        out = os.str();
    };
    std::string a, b;
    build(a);
    build(b);
    EXPECT_EQ(a, b);  // byte-identical across runs
    EXPECT_TRUE(json::valid(a));
    EXPECT_NE(a.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(a.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    // Microsecond timestamps of the 0.25 s start.
    EXPECT_NE(a.find("\"ts\":250000"), std::string::npos);
}

TEST(TraceRecorder, ThreadsGetOwnLanes)
{
    ManualClockRecorder m;
    m.rec.enable();
    m.rec.record("main-event", "cat", 0.0, 1.0);
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t)
        threads.emplace_back([&m, t] {
            m.rec.setThreadLaneName("w" + std::to_string(t));
            m.rec.record("worker-event", "cat", 0.0, 1.0);
        });
    for (auto &t : threads)
        t.join();
    const auto lanes = m.rec.lanesSnapshot();
    ASSERT_EQ(lanes.size(), 4u);
    EXPECT_EQ(lanes[0].name, "main");
    int worker_lanes = 0;
    for (const auto &lane : lanes)
        if (lane.name.size() == 2 && lane.name[0] == 'w') {
            ++worker_lanes;
            ASSERT_EQ(lane.events.size(), 1u);
            EXPECT_EQ(lane.events[0].name, "worker-event");
        }
    EXPECT_EQ(worker_lanes, 3);
}

TEST(TraceRecorder, SyntheticLanesAreSeparateAndReused)
{
    ManualClockRecorder m;
    m.rec.enable();
    m.rec.recordSynthetic(TraceRecorder::kGpuLane, "k1", "gpu", 0.0,
                          0.1);
    m.rec.recordSynthetic(TraceRecorder::kGpuLane, "k2", "gpu", 0.2,
                          0.1);
    m.rec.recordSynthetic(TraceRecorder::kPcieLane, "xfer", "pcie",
                          0.0, 0.05);
    const auto lanes = m.rec.lanesSnapshot();
    ASSERT_EQ(lanes.size(), 3u);  // main + gpu + pcie
    int synthetic = 0;
    for (const auto &lane : lanes)
        if (lane.synthetic) {
            ++synthetic;
            EXPECT_GE(lane.tid, 1000);
        }
    EXPECT_EQ(synthetic, 2);
}

TEST(TraceRecorder, ClearDropsEventsKeepsThreadLanes)
{
    ManualClockRecorder m;
    m.rec.enable();
    m.rec.record("e", "cat", 0.0, 1.0);
    m.rec.recordSynthetic(TraceRecorder::kGpuLane, "k", "gpu", 0.0,
                          0.1);
    m.rec.clear();
    EXPECT_EQ(m.rec.eventCount(), 0u);
    EXPECT_TRUE(m.rec.enabled());
    // The calling thread's lane survives and records again.
    m.rec.record("after", "cat", 2.0, 3.0);
    const auto lanes = m.rec.lanesSnapshot();
    ASSERT_EQ(lanes.size(), 1u);
    EXPECT_EQ(lanes[0].events.size(), 1u);
}

TEST(TraceRecorder, WriteChromeTraceEmitsMetadataPerLane)
{
    ManualClockRecorder m;
    m.rec.enable();
    m.rec.record("e", "phase", 0.0, 1.0);
    std::ostringstream os;
    m.rec.writeChromeTrace(os);
    const std::string s = os.str();
    EXPECT_TRUE(json::valid(s));
    EXPECT_NE(s.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(s.find("\"thread_sort_index\""), std::string::npos);
    EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(s.find("\"ph\":\"M\""), std::string::npos);
}

TEST(TraceRecorder, CounterArgsRenderOnSlices)
{
    // PMU deltas ride on kernel/phase slices as numeric counter args;
    // they must surface in the Chrome trace "args" object.
    ManualClockRecorder m;
    m.rec.enable();
    m.rec.record("spmm", "kernel", 0.0, 1.0,
                 {{"cycles", 1234.0}, {"ipc", 1.5}});
    m.rec.record("bare", "kernel", 1.0, 2.0); // no args: still valid
    std::ostringstream os;
    m.rec.writeChromeTrace(os);
    const std::string s = os.str();
    ASSERT_TRUE(json::valid(s)) << s;
    EXPECT_NE(s.find("\"cycles\":1234"), std::string::npos);
    EXPECT_NE(s.find("\"ipc\":1.5"), std::string::npos);
}

// ------------------------------------------------------------- Metrics

TEST(Metrics, CounterSumsAcrossThreads)
{
    Counter c;
    constexpr int kThreads = 8;
    constexpr int kAdds = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (int i = 0; i < kAdds; ++i)
                c.add();
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), uint64_t{kThreads} * kAdds);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeTracksMax)
{
    Gauge g;
    g.updateMax(3.0);
    g.updateMax(1.0);
    EXPECT_DOUBLE_EQ(g.value(), 3.0);
    g.set(0.5);
    EXPECT_DOUBLE_EQ(g.value(), 0.5);
}

TEST(Metrics, HistogramBucketsObservations)
{
    Histogram h({1.0, 10.0});
    h.observe(0.5);   // bucket 0 (<= 1)
    h.observe(1.0);   // bucket 0 (bound inclusive)
    h.observe(5.0);   // bucket 1 (<= 10)
    h.observe(100.0); // +inf bucket
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 106.5);
    EXPECT_DOUBLE_EQ(h.mean(), 106.5 / 4.0);
}

TEST(Metrics, HistogramPercentileInterpolatesWithinBucket)
{
    Histogram h({1.0, 10.0});
    h.observe(0.5);
    h.observe(1.0);
    h.observe(5.0);
    h.observe(100.0);
    // p50 target = 2 observations: exactly exhausts the first bucket
    // (bounds 0..1), so linear interpolation lands on its bound.
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 1.0);
    // p99 lands in the +inf bucket, which clamps to the last finite
    // bound -- the strongest claim a bounded histogram can make.
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 10.0);
    // p25 target = 1 of the 2 first-bucket observations: halfway.
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 0.5);
}

TEST(Metrics, HistogramPercentileEdgeCases)
{
    Histogram empty({1.0});
    EXPECT_DOUBLE_EQ(empty.percentile(0.99), 0.0);
    EXPECT_EXIT(empty.percentile(1.5), ::testing::ExitedWithCode(1),
                "percentile rank");
}

TEST(Metrics, HistogramPercentileSingleSample)
{
    Histogram h({1.0, 10.0});
    h.observe(2.5); // lone sample, second bucket (1..10]
    // p=0 lands at the start of the sample's bucket, p=1 (the 100th
    // percentile) at its bound, and interior ranks interpolate.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.5);
}

TEST(Metrics, HistogramPercentileDuplicateHeavy)
{
    // All mass on one value: every rank resolves inside that bucket.
    Histogram h({1.0, 10.0});
    for (int i = 0; i < 10; ++i)
        h.observe(5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.1), 1.9);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.5);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);

    // Mass entirely past the last finite bound: the histogram's
    // strongest claim is that bound, at every rank.
    Histogram over({1.0});
    over.observe(50.0);
    over.observe(60.0);
    EXPECT_DOUBLE_EQ(over.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(over.percentile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(over.percentile(1.0), 1.0);
}

TEST(Metrics, PercentileSortedEdgeCases)
{
    // Single sample: every rank is that sample.
    EXPECT_DOUBLE_EQ(percentileSorted({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentileSorted({7.0}, 1.0), 7.0);
    // Duplicate-heavy: interpolation between equal neighbors is flat.
    const std::vector<double> dup{1.0, 5.0, 5.0, 5.0, 5.0, 9.0};
    EXPECT_DOUBLE_EQ(percentileSorted(dup, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted(dup, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(percentileSorted(dup, 0.6), 5.0);
    EXPECT_DOUBLE_EQ(percentileSorted(dup, 1.0), 9.0);
}

TEST(Metrics, PercentileSortedLinearInterpolation)
{
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(i);
    // numpy-linear estimator: pos = p * (n - 1).
    EXPECT_DOUBLE_EQ(percentileSorted(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 1.0), 100.0);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 0.5), 50.5);
    EXPECT_DOUBLE_EQ(percentileSorted(v, 0.95), 95.05);
    EXPECT_DOUBLE_EQ(percentileSorted({10.0}, 0.99), 10.0);
    EXPECT_DOUBLE_EQ(percentileSorted({1.0, 2.0}, 0.25), 1.25);
}

TEST(Metrics, PercentileSortedRejectsBadInput)
{
    EXPECT_EXIT(percentileSorted({}, 0.5),
                ::testing::ExitedWithCode(1), "at least one sample");
    EXPECT_EXIT(percentileSorted({1.0}, 1.5),
                ::testing::ExitedWithCode(1), "percentile rank");
}

TEST(Metrics, LatencySummaryReportsTailOrder)
{
    std::vector<double> v;
    for (int i = 1; i <= 1000; ++i)
        v.push_back(i * 1e-3);
    const LatencySummary s = latencySummary(v);
    EXPECT_LT(s.p50, s.p95);
    EXPECT_LT(s.p95, s.p99);
    EXPECT_NEAR(s.p50, 0.5005, 1e-9);
    EXPECT_NEAR(s.p99, 0.99001, 1e-5);
    const LatencySummary zero = latencySummary({});
    EXPECT_EQ(zero.p50, 0.0);
    EXPECT_EQ(zero.p99, 0.0);
}

TEST(Metrics, RegistryIsStableAndWritesJson)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("test.counter");
    c.add(5);
    EXPECT_EQ(&reg.counter("test.counter"), &c);  // stable reference
    reg.gauge("test.gauge").set(2.5);
    reg.histogram("test.hist", {1.0}).observe(0.5);

    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        reg.writeJson(w, "metrics");
        w.endObject();
    }
    const std::string s = os.str();
    EXPECT_TRUE(json::valid(s));
    EXPECT_NE(s.find("\"test.counter\":5"), std::string::npos);
    EXPECT_NE(s.find("\"test.gauge\":2.5"), std::string::npos);
    EXPECT_NE(s.find("\"test.hist\""), std::string::npos);

    reg.reset();
    EXPECT_EQ(c.value(), 0u);  // reset zeroes, reference stays valid
    const auto counters = reg.counterValues();
    EXPECT_TRUE(counters.empty());  // zero counters are not reported
}

// ---------------------------------------------------------- Run report

TEST(RunReport, WritesValidDocumentWithTablesAndMetrics)
{
    Table t({"col1", "col2"});
    t.addRow({"a", "1"});
    t.addRow({"b", "2"});

    ManualClockRecorder m;
    m.rec.enable();
    m.rec.record("sampling", "phase", 0.0, 1.0);

    RunRecord run;
    run.dataset = "flickr";
    run.config = "DGL-CPU";
    run.phases[static_cast<int>(Phase::Sampling)].cpuBusySeconds =
        1.25;
    run.workerPhases[static_cast<int>(Phase::Sampling)]
        .cpuBusySeconds = 0.5;
    run.energy.seconds = 1.25;
    run.energy.cpuJoules = 10.0;

    RunReportContext ctx;
    ctx.benchName = "test_bench";
    ctx.options = {{"datasets", "flickr"}, {"workers", "2"}};
    ctx.runs = {run};
    ctx.tables = {{"results", &t}};
    ctx.trace = &m.rec;
    ctx.metrics = &MetricsRegistry::global();

    const std::string path =
        std::string(::testing::TempDir()) + "/report.json";
    writeRunReport(path, ctx);

    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string doc = buf.str();
    EXPECT_TRUE(json::valid(doc));
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"gnnbench\""), std::string::npos);
    EXPECT_NE(doc.find("\"bench\":\"test_bench\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"dataset\":\"flickr\""), std::string::npos);
    EXPECT_NE(doc.find("\"sampling\""), std::string::npos);
    EXPECT_NE(doc.find("\"worker_phases\""), std::string::npos);
    EXPECT_NE(doc.find("\"total_seconds\":1.25"), std::string::npos);
    EXPECT_NE(doc.find("\"results\""), std::string::npos);
    EXPECT_NE(doc.find("\"col1\""), std::string::npos);
    EXPECT_NE(doc.find("\"metrics\""), std::string::npos);
}

} // namespace
} // namespace profiling
} // namespace gnnbench
