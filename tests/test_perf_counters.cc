/** Tests for the perf_event_open counter layer — above all, that the
 *  graceful no-op fallback is airtight where the PMU is denied. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gnnbench/core/rng.h"
#include "gnnbench/core/tensor.h"
#include "gnnbench/graph/convert.h"
#include "gnnbench/graph/generate.h"
#include "gnnbench/kernels/kernels.h"
#include "gnnbench/profiling/metrics_registry.h"
#include "gnnbench/profiling/perf_counters.h"

namespace gnnbench {
namespace profiling {
namespace {

/** Restore the probed availability decision on scope exit. */
struct ForcedPerfState
{
    explicit ForcedPerfState(int forced)
    {
        setPerfForcedStateForTest(forced);
    }
    ~ForcedPerfState() { setPerfForcedStateForTest(-1); }
};

TEST(PerfCounters, StatusLabelIsAlwaysMeaningful)
{
    const std::string label = perfStatusLabel();
    EXPECT_FALSE(label.empty());
    // The label is one of the three documented shapes.
    EXPECT_TRUE(label == "available" ||
                label.rfind("disabled", 0) == 0 ||
                label.rfind("unavailable", 0) == 0)
        << label;
}

TEST(PerfCounters, ForcedOffScopeYieldsInvalidDelta)
{
    ForcedPerfState off(0);
    EXPECT_FALSE(perfAvailable());
    PerfScope scope;
    // Burn a little work so a live PMU would definitely tick.
    volatile double x = 1.0;
    for (int i = 0; i < 10000; ++i)
        x = x * 1.0000001 + 1e-9;
    const PerfDelta d = scope.stop();
    EXPECT_FALSE(d.valid);
    EXPECT_EQ(d.present, 0u);
    for (int e = 0; e < kNumPerfEvents; ++e)
        EXPECT_EQ(d.v[static_cast<size_t>(e)], 0.0);
}

TEST(PerfCounters, InvalidDeltaSinksAreNoOps)
{
    PerfDelta d; // default: invalid
    d.v[0] = 1e9; // even with junk values, invalid means ignored

    auto &reg = MetricsRegistry::global();
    const std::string name = "perf.test_noop.cycles";
    const uint64_t before = reg.counter(name).value();
    addPerfDelta("perf.test_noop", d);
    EXPECT_EQ(reg.counter(name).value(), before);

    std::vector<std::pair<std::string, double>> args;
    appendPerfArgs(d, &args);
    EXPECT_TRUE(args.empty());
}

TEST(PerfCounters, KernelDispatchFallsBackWhenDenied)
{
    // The tier-1 fallback contract: with perf_event_open denied, a
    // kernel dispatch still fills timing/cost stats, and the perf
    // field reports invalid instead of zeros posing as measurements.
    ForcedPerfState off(0);
    core::Rng rng(3);
    graph::CooGraph coo =
        graph::symmetrize(graph::rmat(500, 3000, rng), false);
    graph::CsrGraph csc = graph::cooToCsc(coo);
    core::Tensor x = core::Tensor::randn(csc.numCols, 16, rng);

    kernels::KernelStats stats;
    kernels::spmm(csc, x, kernels::ReduceOp::Sum, nullptr,
                  kernels::KernelVariant::Reference, &stats);
    EXPECT_GT(stats.seconds, 0.0);
    EXPECT_GT(stats.cost.flops, 0.0);
    EXPECT_GT(stats.cost.bytes, 0.0);
    EXPECT_FALSE(stats.perf.valid);
}

TEST(PerfCounters, LiveScopeCountsRealWork)
{
    if (!perfAvailable())
        GTEST_SKIP() << "PMU not available: " << perfStatusLabel();
    PerfScope scope;
    volatile double x = 1.0;
    for (int i = 0; i < 2000000; ++i)
        x = x * 1.0000001 + 1e-9;
    const PerfDelta d = scope.stop();
    ASSERT_TRUE(d.valid);
    EXPECT_TRUE(d.has(PerfEvent::Cycles));
    EXPECT_GT(d.cycles(), 0.0);
    EXPECT_TRUE(d.has(PerfEvent::Instructions));
    // 2M dependent FMAs retire well over a million instructions.
    EXPECT_GT(d.instructions(), 1e6);
    EXPECT_GT(d.ipc(), 0.0);

    std::vector<std::pair<std::string, double>> args;
    appendPerfArgs(d, &args);
    EXPECT_FALSE(args.empty());
}

TEST(PerfCounters, DeltaDerivedRatesAndAccumulation)
{
    PerfDelta d;
    d.valid = true;
    d.present = (1u << static_cast<int>(PerfEvent::Cycles)) |
                (1u << static_cast<int>(PerfEvent::Instructions)) |
                (1u << static_cast<int>(PerfEvent::LlcLoads)) |
                (1u << static_cast<int>(PerfEvent::LlcMisses)) |
                (1u << static_cast<int>(PerfEvent::StalledCycles));
    d.v[static_cast<int>(PerfEvent::Cycles)] = 1000.0;
    d.v[static_cast<int>(PerfEvent::Instructions)] = 2500.0;
    d.v[static_cast<int>(PerfEvent::LlcLoads)] = 200.0;
    d.v[static_cast<int>(PerfEvent::LlcMisses)] = 50.0;
    d.v[static_cast<int>(PerfEvent::StalledCycles)] = 100.0;
    EXPECT_DOUBLE_EQ(d.ipc(), 2.5);
    EXPECT_DOUBLE_EQ(d.llcMissRate(), 0.25);
    EXPECT_DOUBLE_EQ(d.stalledFraction(), 0.1);

    PerfDelta sum;
    sum += d;
    sum += d;
    EXPECT_TRUE(sum.valid);
    EXPECT_DOUBLE_EQ(sum.cycles(), 2000.0);
    EXPECT_DOUBLE_EQ(sum.instructions(), 5000.0);
    EXPECT_DOUBLE_EQ(sum.ipc(), 2.5);

    PerfDelta zero;
    EXPECT_DOUBLE_EQ(zero.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(zero.llcMissRate(), 0.0);
    EXPECT_DOUBLE_EQ(zero.stalledFraction(), 0.0);
}

} // namespace
} // namespace profiling
} // namespace gnnbench
