/** Tests for the multilevel graph partitioner. */

#include <gtest/gtest.h>

#include <algorithm>

#include "gnnbench/graph/convert.h"
#include "gnnbench/graph/generate.h"
#include "gnnbench/graph/partition.h"

namespace gnnbench {
namespace graph {
namespace {

CsrGraph
randomSymmetric(NodeId n, EdgeId m, uint64_t seed)
{
    core::Rng rng(seed);
    return cooToCsr(symmetrize(rmat(n, m, rng), false));
}

TEST(Partition, AssignsEveryNode)
{
    CsrGraph g = randomSymmetric(500, 2500, 1);
    core::Rng rng(2);
    auto res = partitionGraph(g, 8, rng);
    ASSERT_EQ(res.assignment.size(), 500u);
    for (int32_t p : res.assignment) {
        ASSERT_GE(p, 0);
        ASSERT_LT(p, 8);
    }
}

TEST(Partition, UsesAllParts)
{
    CsrGraph g = randomSymmetric(2000, 10000, 3);
    core::Rng rng(4);
    auto res = partitionGraph(g, 16, rng);
    std::vector<int> sizes(16, 0);
    for (int32_t p : res.assignment)
        ++sizes[p];
    for (int s : sizes)
        EXPECT_GT(s, 0);
}

TEST(Partition, RoughlyBalanced)
{
    CsrGraph g = randomSymmetric(4000, 20000, 5);
    core::Rng rng(6);
    auto res = partitionGraph(g, 10, rng);
    // Max part within ~2x of the ideal n/k (greedy BFS + refinement).
    EXPECT_LE(res.maxPartSize, 2 * (4000 / 10));
}

TEST(Partition, CutBeatsRandomOnRmat)
{
    // R-MAT graphs are expander-like, so even METIS leaves a large
    // cut; the partitioner must still beat a random assignment.
    CsrGraph g = randomSymmetric(3000, 24000, 7);
    core::Rng rng(8);
    auto res = partitionGraph(g, 20, rng);
    std::vector<int32_t> random_assign(3000);
    for (auto &p : random_assign)
        p = static_cast<int32_t>(rng.uniformInt(20));
    const EdgeId random_cut = countCutEdges(g, random_assign);
    EXPECT_LT(res.cutEdges, random_cut);
    EXPECT_EQ(res.cutEdges, countCutEdges(g, res.assignment));
}

TEST(Partition, RecoversPlantedCommunities)
{
    // 20 dense communities with sparse inter-community noise: a
    // working multilevel partitioner must land near the planted cut
    // (~5%), far below the ~95% random baseline.
    core::Rng rng(21);
    CooGraph coo;
    coo.numNodes = 3000;
    for (int c = 0; c < 20; ++c) {
        for (int i = 0; i < 1500; ++i) {
            const NodeId u =
                c * 150 + static_cast<NodeId>(rng.uniformInt(150));
            const NodeId v =
                c * 150 + static_cast<NodeId>(rng.uniformInt(150));
            if (u != v)
                coo.addEdge(u, v);
        }
    }
    for (int i = 0; i < 1500; ++i)
        coo.addEdge(static_cast<NodeId>(rng.uniformInt(3000)),
                    static_cast<NodeId>(rng.uniformInt(3000)));
    CsrGraph g = cooToCsr(symmetrize(coo, false));
    core::Rng prng(22);
    auto res = partitionGraph(g, 20, prng);
    EXPECT_LT(static_cast<double>(res.cutEdges) / g.numEdges(),
              0.25);
}

TEST(Partition, ManyPartsClusterGcnScale)
{
    // The ClusterGCN configuration: k = 2000 on a modest graph.
    CsrGraph g = randomSymmetric(10000, 60000, 9);
    core::Rng rng(10);
    auto res = partitionGraph(g, 2000, rng);
    EXPECT_EQ(res.numParts, 2000);
    std::vector<int> sizes(2000, 0);
    for (int32_t p : res.assignment)
        ++sizes[p];
    const int used = static_cast<int>(
        std::count_if(sizes.begin(), sizes.end(),
                      [](int s) { return s > 0; }));
    EXPECT_GT(used, 1800);
}

TEST(Partition, KGreaterThanNodes)
{
    CsrGraph g = randomSymmetric(10, 30, 11);
    core::Rng rng(12);
    auto res = partitionGraph(g, 64, rng);
    ASSERT_EQ(res.assignment.size(), 10u);
    for (int32_t p : res.assignment)
        ASSERT_LT(p, 64);
}

TEST(Partition, SinglePartTrivial)
{
    CsrGraph g = randomSymmetric(100, 400, 13);
    core::Rng rng(14);
    auto res = partitionGraph(g, 1, rng);
    EXPECT_EQ(res.cutEdges, 0);
    for (int32_t p : res.assignment)
        EXPECT_EQ(p, 0);
}

TEST(Partition, DisconnectedComponentsHandled)
{
    // Two disjoint cliques of 5; a 2-way partition should cut zero.
    CooGraph coo;
    coo.numNodes = 10;
    for (NodeId a = 0; a < 5; ++a)
        for (NodeId b = 0; b < 5; ++b)
            if (a != b) {
                coo.addEdge(a, b);
                coo.addEdge(a + 5, b + 5);
            }
    CsrGraph g = cooToCsr(coo);
    core::Rng rng(15);
    auto res = partitionGraph(g, 2, rng);
    EXPECT_EQ(res.cutEdges, 0);
}

TEST(Partition, SelfLoopsNeverCut)
{
    // Regression for the self-loop accounting bug: a self-loop
    // stays intact under any assignment, so it must neither count
    // toward the cut nor bias refinement's connectivity gains.
    CooGraph coo;
    coo.numNodes = 4;
    for (NodeId v = 0; v < 4; ++v)
        coo.addEdge(v, v);
    coo.addEdge(0, 1);
    coo.addEdge(1, 0);
    coo.addEdge(2, 3);
    coo.addEdge(3, 2);
    CsrGraph g = cooToCsr(coo);
    // Any assignment: the four self-loops are invisible to the cut.
    EXPECT_EQ(countCutEdges(g, {0, 1, 0, 1}), 4u);
    EXPECT_EQ(countCutEdges(g, {0, 0, 1, 1}), 0u);
    EXPECT_EQ(countCutEdges(g, {0, 0, 0, 0}), 0u);
}

TEST(Partition, PinnedCutOnPlantedGraph)
{
    // Two cliques of 4 joined by one (bidirected) bridge, every node
    // carrying self-loops: the optimal 2-way cut is exactly the
    // bridge.  Before the refine() fix, the self-loop weight
    // inflated conn[cur] and could strand boundary nodes, so this
    // pins the exact cut count.
    CooGraph coo;
    coo.numNodes = 8;
    for (NodeId a = 0; a < 4; ++a)
        for (NodeId b = 0; b < 4; ++b)
            if (a != b) {
                coo.addEdge(a, b);
                coo.addEdge(a + 4, b + 4);
            }
    for (NodeId v = 0; v < 8; ++v) {
        coo.addEdge(v, v);
        coo.addEdge(v, v); // double self-loops raise the stakes
    }
    coo.addEdge(3, 4);
    coo.addEdge(4, 3);
    CsrGraph g = cooToCsr(coo);
    for (uint64_t seed = 30; seed < 35; ++seed) {
        core::Rng rng(seed);
        auto res = partitionGraph(g, 2, rng);
        EXPECT_EQ(res.cutEdges, 2u) << "seed " << seed;
        EXPECT_EQ(res.cutEdges, countCutEdges(g, res.assignment));
    }
}

TEST(Partition, HeavySelfLoopsDoNotBlockRefinement)
{
    // A pendant node with many self-loops attached to the "wrong"
    // side: with self-loop weight feeding conn[cur], refinement sees
    // a large fake internal connectivity and never moves it.
    CooGraph coo;
    coo.numNodes = 9;
    // Clique A = {0..3}, clique B = {4..7}; node 8 pendant on B.
    for (NodeId a = 0; a < 4; ++a)
        for (NodeId b = 0; b < 4; ++b)
            if (a != b) {
                coo.addEdge(a, b);
                coo.addEdge(a + 4, b + 4);
            }
    coo.addEdge(8, 4);
    coo.addEdge(4, 8);
    for (int i = 0; i < 6; ++i)
        coo.addEdge(8, 8);
    coo.addEdge(3, 4);
    coo.addEdge(4, 3);
    CsrGraph g = cooToCsr(coo);
    for (uint64_t seed = 40; seed < 45; ++seed) {
        core::Rng rng(seed);
        auto res = partitionGraph(g, 2, rng);
        // 8 must sit with clique B: only the bridge 3<->4 is cut.
        EXPECT_EQ(res.assignment[8], res.assignment[4])
            << "seed " << seed;
        EXPECT_EQ(res.cutEdges, 2u) << "seed " << seed;
    }
}

TEST(Partition, DeterministicInRngState)
{
    CsrGraph g = randomSymmetric(800, 4000, 16);
    core::Rng a(17), b(17);
    auto ra = partitionGraph(g, 8, a);
    auto rb = partitionGraph(g, 8, b);
    EXPECT_EQ(ra.assignment, rb.assignment);
}

} // namespace
} // namespace graph
} // namespace gnnbench
