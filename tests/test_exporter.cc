/** Tests for the OpenMetrics exporter, the SLO window, and the
 *  metrics HTTP listener. */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "gnnbench/profiling/exporter.h"
#include "gnnbench/profiling/metrics_registry.h"

namespace gnnbench {
namespace profiling {
namespace {

// ------------------------------------------------------ text format

TEST(Exporter, SanitizeMetricName)
{
    EXPECT_EQ(sanitizeMetricName("serve.latency_seconds"),
              "serve_latency_seconds");
    EXPECT_EQ(sanitizeMetricName("a-b c/d"), "a_b_c_d");
    EXPECT_EQ(sanitizeMetricName("ns:kept"), "ns:kept");
    EXPECT_EQ(sanitizeMetricName("9lives"), "_9lives");
    EXPECT_EQ(sanitizeMetricName(""), "");
}

TEST(Exporter, EscapeLabelValue)
{
    EXPECT_EQ(escapeLabelValue("plain"), "plain");
    EXPECT_EQ(escapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(escapeLabelValue("line\nbreak"), "line\\nbreak");
}

TEST(Exporter, RenderCoversEveryMetricType)
{
    MetricsRegistry reg;
    reg.counter("test.requests").add(7);
    reg.counter("test.zero"); // zero-valued metrics still render
    reg.gauge("test.depth").set(2.5);
    Histogram &h = reg.histogram("test.lat", {1.0, 10.0});
    h.observe(0.5);
    h.observe(5.0);
    h.observe(100.0);

    const std::string s = renderOpenMetrics(reg);
    EXPECT_NE(s.find("# TYPE gnnbench_test_requests counter\n"),
              std::string::npos);
    EXPECT_NE(s.find("gnnbench_test_requests_total 7\n"),
              std::string::npos);
    EXPECT_NE(s.find("gnnbench_test_zero_total 0\n"),
              std::string::npos);
    EXPECT_NE(s.find("# TYPE gnnbench_test_depth gauge\n"),
              std::string::npos);
    EXPECT_NE(s.find("gnnbench_test_depth 2.5\n"),
              std::string::npos);
    EXPECT_NE(s.find("# TYPE gnnbench_test_lat histogram\n"),
              std::string::npos);
    // Buckets are cumulative: 1 (<=1), 2 (<=10), 3 (+Inf).
    EXPECT_NE(s.find("gnnbench_test_lat_bucket{le=\"1\"} 1\n"),
              std::string::npos);
    EXPECT_NE(s.find("gnnbench_test_lat_bucket{le=\"10\"} 2\n"),
              std::string::npos);
    EXPECT_NE(s.find("gnnbench_test_lat_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(s.find("gnnbench_test_lat_sum 105.5\n"),
              std::string::npos);
    EXPECT_NE(s.find("gnnbench_test_lat_count 3\n"),
              std::string::npos);
    // The exposition must end with the EOF marker, nothing after.
    const std::string eof = "# EOF\n";
    ASSERT_GE(s.size(), eof.size());
    EXPECT_EQ(s.substr(s.size() - eof.size()), eof);
}

TEST(Exporter, CounterMonotonicAcrossRenders)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("test.mono");
    c.add(3);
    const std::string first = renderOpenMetrics(reg);
    c.add(2);
    const std::string second = renderOpenMetrics(reg);
    EXPECT_NE(first.find("gnnbench_test_mono_total 3\n"),
              std::string::npos);
    EXPECT_NE(second.find("gnnbench_test_mono_total 5\n"),
              std::string::npos);
}

TEST(Exporter, WriteOpenMetricsFileRoundTrips)
{
    MetricsRegistry reg;
    reg.counter("test.file").add(1);
    const std::string path =
        std::string(::testing::TempDir()) + "/metrics.om";
    writeOpenMetricsFile(path, reg);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    const std::string s(buf, n);
    EXPECT_EQ(s, renderOpenMetrics(reg));
    EXPECT_NE(s.find("gnnbench_test_file_total 1\n"),
              std::string::npos);
}

// ------------------------------------------------------- SLO window

TEST(SloWindow, MissRateAndBurnRateOverWindow)
{
    SloWindow w(/*window_seconds=*/10.0, /*budget_fraction=*/0.01);
    EXPECT_DOUBLE_EQ(w.missRate(0.0), 0.0); // empty window
    EXPECT_DOUBLE_EQ(w.burnRate(0.0), 0.0);
    for (int i = 0; i < 99; ++i)
        w.observe(1.0, false);
    w.observe(1.0, true);
    EXPECT_EQ(w.size(1.0), 100u);
    EXPECT_DOUBLE_EQ(w.missRate(1.0), 0.01);
    // Missing exactly the budget burns at rate 1.
    EXPECT_DOUBLE_EQ(w.burnRate(1.0), 1.0);
    w.observe(2.0, true);
    EXPECT_GT(w.burnRate(2.0), 1.0);
}

TEST(SloWindow, OldEventsSlideOut)
{
    SloWindow w(10.0, 0.01);
    w.observe(0.0, true);
    w.observe(1.0, false);
    EXPECT_DOUBLE_EQ(w.missRate(1.0), 0.5);
    // At t=11 the miss at t=0 has left the window.
    EXPECT_DOUBLE_EQ(w.missRate(11.0), 0.0);
    EXPECT_EQ(w.size(11.0), 1u);
    // At t=12 the window is empty again.
    EXPECT_EQ(w.size(12.0), 0u);
    EXPECT_DOUBLE_EQ(w.burnRate(12.0), 0.0);
}

// ----------------------------------------------------- HTTP listener

/** One blocking HTTP GET against 127.0.0.1:port. */
std::string
scrape(int port)
{
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)),
              0);
    const char req[] = "GET /metrics HTTP/1.1\r\n"
                       "Host: localhost\r\n\r\n";
    EXPECT_GT(write(fd, req, sizeof(req) - 1), 0);
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = read(fd, buf, sizeof(buf))) > 0)
        resp.append(buf, static_cast<size_t>(n));
    close(fd);
    return resp;
}

TEST(MetricsHttpServer, ServesLiveScrapesOnEphemeralPort)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("test.scraped");
    c.add(1);
    int refreshes = 0;
    MetricsHttpServer server(reg, /*port=*/0,
                             [&refreshes] { ++refreshes; });
    if (!server.ok())
        GTEST_SKIP() << "cannot bind a loopback listener here";
    ASSERT_GT(server.port(), 0);

    const std::string r1 = scrape(server.port());
    EXPECT_NE(r1.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(r1.find("application/openmetrics-text"),
              std::string::npos);
    EXPECT_NE(r1.find("gnnbench_test_scraped_total 1\n"),
              std::string::npos);
    EXPECT_NE(r1.find("# EOF\n"), std::string::npos);

    // Values are rendered at request time, so a second scrape sees
    // the updated counter, and the refresh hook ran per request.
    c.add(4);
    const std::string r2 = scrape(server.port());
    EXPECT_NE(r2.find("gnnbench_test_scraped_total 5\n"),
              std::string::npos);
    EXPECT_EQ(refreshes, 2);

    server.stop();
    EXPECT_FALSE(server.ok()); // stop() is a full teardown
    server.stop();             // and idempotent
}

TEST(MetricsHttpServer, BindFailureIsNotFatal)
{
    MetricsRegistry reg;
    MetricsHttpServer a(reg, 0);
    if (!a.ok())
        GTEST_SKIP() << "cannot bind a loopback listener here";
    // A second listener on the same port must fail ok()-false, not
    // abort the process.
    MetricsHttpServer b(reg, a.port());
    EXPECT_FALSE(b.ok());
}

} // namespace
} // namespace profiling
} // namespace gnnbench
