/** Tests for the pygx (interpreted-style) samplers. */

#include <gtest/gtest.h>

#include <set>

#include "gnnbench/graph/generate.h"
#include "gnnbench/pygx/sampler.h"

namespace gnnbench {
namespace pygx {
namespace {

graph::CooGraph
makeCoo(NodeId n, EdgeId m, uint64_t seed)
{
    core::Rng rng(seed);
    return graph::symmetrize(graph::rmat(n, m, rng), false);
}

TEST(PygxNeighborSampler, BatchInvariantsHold)
{
    graph::CooGraph coo = makeCoo(400, 2400, 1);
    Data data(coo);
    NeighborSampler sampler(data, {25, 10}, core::Rng(2), nullptr);
    auto batch = sampler.sample({3, 7, 11});
    batch.validate();
    EXPECT_EQ(batch.layers.size(), 2u);
    EXPECT_EQ(batch.seeds, (std::vector<NodeId>{3, 7, 11}));
}

TEST(PygxNeighborSampler, ForcesCscConversion)
{
    Data data(makeCoo(200, 1000, 3));
    EXPECT_FALSE(data.cscReady());
    NeighborSampler sampler(data, {5}, core::Rng(4), nullptr);
    EXPECT_TRUE(data.cscReady());
}

TEST(PygxNeighborSampler, FanoutBound)
{
    Data data(makeCoo(300, 3000, 5));
    NeighborSampler sampler(data, {25, 10}, core::Rng(6), nullptr);
    auto batch = sampler.sample({0, 1, 2, 3});
    const auto &seed_layer = batch.layers[1];
    std::vector<int> deg(seed_layer.dstNodes.size(), 0);
    for (NodeId d : seed_layer.eDst)
        ++deg[d];
    for (int v : deg)
        EXPECT_LE(v, 10);
}

TEST(PygxNeighborSampler, EdgesExistInGraph)
{
    graph::CooGraph coo = makeCoo(250, 1500, 7);
    Data data(coo);
    NeighborSampler sampler(data, {8, 8}, core::Rng(8), nullptr);
    auto batch = sampler.sample({5, 10, 15});
    std::set<std::pair<NodeId, NodeId>> edges;
    for (size_t i = 0; i < coo.src.size(); ++i)
        edges.insert({coo.src[i], coo.dst[i]});
    for (const auto &layer : batch.layers) {
        for (size_t e = 0; e < layer.eSrc.size(); ++e) {
            const NodeId gs = layer.srcNodes[layer.eSrc[e]];
            const NodeId gd = layer.dstNodes[layer.eDst[e]];
            ASSERT_TRUE(edges.count({gs, gd}))
                << gs << "->" << gd;
        }
    }
}

TEST(PygxNeighborSampler, ChargesInterpreterOverhead)
{
    device::Session session;
    Data data(makeCoo(300, 3000, 9));
    NeighborSampler sampler(data, {25, 10}, core::Rng(10), &session);
    sampler.sample({0, 1, 2, 3, 4, 5, 6, 7});
    EXPECT_GT(session.snapshot().modeled.cpuOverheadSeconds, 0.0);
}

TEST(PygxClusterSampler, CoversAllNodes)
{
    Data data(makeCoo(500, 3000, 11));
    ClusterSampler sampler(data, 10, core::Rng(12), nullptr);
    auto batch = sampler.sample(10);
    batch.validate();
    EXPECT_EQ(batch.nodes.size(), 500u);
}

TEST(PygxClusterSampler, InducedEdgesAreInternal)
{
    graph::CooGraph coo = makeCoo(400, 2400, 13);
    Data data(coo);
    ClusterSampler sampler(data, 16, core::Rng(14), nullptr);
    auto batch = sampler.sample(4);
    batch.validate();
    std::set<NodeId> members(batch.nodes.begin(), batch.nodes.end());
    for (size_t e = 0; e < batch.src.size(); ++e) {
        ASSERT_TRUE(members.count(batch.nodes[batch.src[e]]));
        ASSERT_TRUE(members.count(batch.nodes[batch.dst[e]]));
    }
}

TEST(PygxSaintRwSampler, SizeBounded)
{
    Data data(makeCoo(800, 6000, 15));
    SaintRwSampler sampler(data, 40, 2, core::Rng(16), nullptr);
    auto batch = sampler.sample();
    batch.validate();
    EXPECT_LE(batch.nodes.size(), 120u);
    EXPECT_GE(batch.nodes.size(), 40u);
}

TEST(PygxSaintNodeSampler, BudgetAndValidity)
{
    Data data(makeCoo(600, 4800, 21));
    SaintNodeSampler sampler(data, 150, core::Rng(22), nullptr);
    auto batch = sampler.sample();
    batch.validate();
    EXPECT_LE(batch.nodes.size(), 150u);
    EXPECT_GT(batch.nodes.size(), 40u);
}

TEST(PygxSaintEdgeSampler, EndpointsInduced)
{
    Data data(makeCoo(500, 4000, 23));
    SaintEdgeSampler sampler(data, 200, core::Rng(24), nullptr);
    auto batch = sampler.sample();
    batch.validate();
    EXPECT_LE(batch.nodes.size(), 400u);
    std::set<NodeId> members(batch.nodes.begin(), batch.nodes.end());
    EXPECT_EQ(members.size(), batch.nodes.size());
}

TEST(PygxSaintVariants, MatchDglxStatistically)
{
    // Same budgets on the same graph: pygx and dglx node samplers
    // must produce comparable subgraph sizes (same distributions).
    graph::CooGraph coo = makeCoo(800, 6400, 25);
    Data data(coo);
    SaintNodeSampler ps(data, 200, core::Rng(26), nullptr);
    double p_nodes = 0;
    for (int t = 0; t < 20; ++t)
        p_nodes += static_cast<double>(ps.sample().nodes.size());
    // Degree-proportional sampling with budget 200 after dedup.
    EXPECT_GT(p_nodes / 20, 80);
    EXPECT_LT(p_nodes / 20, 200);
}

TEST(PygxSamplers, DeterministicInRng)
{
    Data data(makeCoo(300, 2000, 17));
    NeighborSampler a(data, {5, 5}, core::Rng(18), nullptr);
    NeighborSampler b(data, {5, 5}, core::Rng(18), nullptr);
    auto sa = a.sample({1, 2});
    auto sb = b.sample({1, 2});
    EXPECT_EQ(sa.layers[0].srcNodes, sb.layers[0].srcNodes);
    EXPECT_EQ(sa.layers[0].eSrc, sb.layers[0].eSrc);
}

} // namespace
} // namespace pygx
} // namespace gnnbench
