/** End-to-end determinism: every benchmark quantity that is not a
 *  wall-clock measurement must be bit-identical across runs with the
 *  same seed (the property that makes the suite reproducible). */

#include <gtest/gtest.h>

#include "gnnbench/models/clustergcn.h"
#include "gnnbench/models/graphsage.h"
#include "gnnbench/models/graphsaint.h"

namespace gnnbench {
namespace models {
namespace {

TrainConfig
config(Framework fw)
{
    TrainConfig cfg;
    cfg.framework = fw;
    cfg.epochs = 2;
    cfg.hiddenDim = 16;
    cfg.batchSize = 128;
    cfg.numParts = 20;
    cfg.clustersPerBatch = 5;
    cfg.saintRoots = 100;
    cfg.seed = 77;
    return cfg;
}

using ModelFn = TrainResult (*)(const graph::Dataset &,
                                const TrainConfig &);

struct Case
{
    const char *name;
    ModelFn fn;
    Framework fw;
};

class Determinism : public ::testing::TestWithParam<Case>
{
};

TEST_P(Determinism, LossTrajectoriesIdentical)
{
    graph::Dataset ds = graph::loadDataset("ppi", 0.05, 5);
    const Case &c = GetParam();
    TrainResult a = c.fn(ds, config(c.fw));
    TrainResult b = c.fn(ds, config(c.fw));
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (size_t e = 0; e < a.epochs.size(); ++e) {
        EXPECT_EQ(a.epochs[e].loss, b.epochs[e].loss)
            << "epoch " << e;
        EXPECT_EQ(a.epochs[e].correct, b.epochs[e].correct);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Models, Determinism,
    ::testing::Values(
        Case{"sage_dgl", &trainGraphSage, Framework::Dglx},
        Case{"sage_pyg", &trainGraphSage, Framework::Pygx},
        Case{"cluster_dgl", &trainClusterGcn, Framework::Dglx},
        Case{"cluster_pyg", &trainClusterGcn, Framework::Pygx},
        Case{"saint_dgl", &trainGraphSaint, Framework::Dglx},
        Case{"saint_pyg", &trainGraphSaint, Framework::Pygx}),
    [](const auto &info) { return info.param.name; });

TEST(Determinism, DatasetRegenerationIdentical)
{
    // Same name/scale/seed anywhere, any time: identical dataset.
    graph::Dataset a = graph::loadDataset("yelp", 0.3, 123);
    graph::Dataset b = graph::loadDataset("yelp", 0.3, 123);
    EXPECT_EQ(a.graph.src, b.graph.src);
    EXPECT_EQ(a.graph.dst, b.graph.dst);
    EXPECT_EQ(a.labels, b.labels);
    for (int64_t i = 0; i < a.features.numel(); ++i)
        ASSERT_EQ(a.features.data()[i], b.features.data()[i]);
}

TEST(Determinism, ModeledTimesIdenticalAcrossRuns)
{
    // GPU-mode phase times are mostly modeled; the modeled parts
    // (gpu, transfer, overhead seconds) must match exactly.
    graph::Dataset ds = graph::loadDataset("ppi", 0.05, 9);
    TrainConfig cfg = config(Framework::Dglx);
    cfg.mode = RunMode::GPU;
    TrainResult a = trainGraphSage(ds, cfg);
    TrainResult b = trainGraphSage(ds, cfg);
    for (int p = 0; p < profiling::kNumPhases; ++p) {
        EXPECT_EQ(a.phases[p].gpuBusySeconds,
                  b.phases[p].gpuBusySeconds)
            << "phase " << p;
        EXPECT_EQ(a.phases[p].xferSeconds, b.phases[p].xferSeconds);
        EXPECT_EQ(a.phases[p].gpuUtilSeconds,
                  b.phases[p].gpuUtilSeconds);
    }
}

} // namespace
} // namespace models
} // namespace gnnbench
