/** End-to-end determinism: every benchmark quantity that is not a
 *  wall-clock measurement must be bit-identical across runs with the
 *  same seed (the property that makes the suite reproducible). */

#include <gtest/gtest.h>

#include "gnnbench/core/parallel.h"
#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/models/clustergcn.h"
#include "gnnbench/models/graphsage.h"
#include "gnnbench/models/graphsaint.h"
#include "gnnbench/pygx/dataloader.h"
#include "gnnbench/pygx/sampler.h"

namespace gnnbench {
namespace models {
namespace {

TrainConfig
config(Framework fw)
{
    TrainConfig cfg;
    cfg.framework = fw;
    cfg.epochs = 2;
    cfg.hiddenDim = 16;
    cfg.batchSize = 128;
    cfg.numParts = 20;
    cfg.clustersPerBatch = 5;
    cfg.saintRoots = 100;
    cfg.seed = 77;
    return cfg;
}

using ModelFn = TrainResult (*)(const graph::Dataset &,
                                const TrainConfig &);

struct Case
{
    const char *name;
    ModelFn fn;
    Framework fw;
};

class Determinism : public ::testing::TestWithParam<Case>
{
};

TEST_P(Determinism, LossTrajectoriesIdentical)
{
    graph::Dataset ds = graph::loadDataset("ppi", 0.05, 5);
    const Case &c = GetParam();
    TrainResult a = c.fn(ds, config(c.fw));
    TrainResult b = c.fn(ds, config(c.fw));
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (size_t e = 0; e < a.epochs.size(); ++e) {
        EXPECT_EQ(a.epochs[e].loss, b.epochs[e].loss)
            << "epoch " << e;
        EXPECT_EQ(a.epochs[e].correct, b.epochs[e].correct);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Models, Determinism,
    ::testing::Values(
        Case{"sage_dgl", &trainGraphSage, Framework::Dglx},
        Case{"sage_pyg", &trainGraphSage, Framework::Pygx},
        Case{"cluster_dgl", &trainClusterGcn, Framework::Dglx},
        Case{"cluster_pyg", &trainClusterGcn, Framework::Pygx},
        Case{"saint_dgl", &trainGraphSaint, Framework::Dglx},
        Case{"saint_pyg", &trainGraphSaint, Framework::Pygx}),
    [](const auto &info) { return info.param.name; });

TEST(Determinism, DatasetRegenerationIdentical)
{
    // Same name/scale/seed anywhere, any time: identical dataset.
    graph::Dataset a = graph::loadDataset("yelp", 0.3, 123);
    graph::Dataset b = graph::loadDataset("yelp", 0.3, 123);
    EXPECT_EQ(a.graph.src, b.graph.src);
    EXPECT_EQ(a.graph.dst, b.graph.dst);
    EXPECT_EQ(a.labels, b.labels);
    for (int64_t i = 0; i < a.features.numel(); ++i)
        ASSERT_EQ(a.features.data()[i], b.features.data()[i]);
}

TEST(Determinism, ModeledTimesIdenticalAcrossRuns)
{
    // GPU-mode phase times are mostly modeled; the modeled parts
    // (gpu, transfer, overhead seconds) must match exactly.
    graph::Dataset ds = graph::loadDataset("ppi", 0.05, 9);
    TrainConfig cfg = config(Framework::Dglx);
    cfg.mode = RunMode::GPU;
    TrainResult a = trainGraphSage(ds, cfg);
    TrainResult b = trainGraphSage(ds, cfg);
    for (int p = 0; p < profiling::kNumPhases; ++p) {
        EXPECT_EQ(a.phases[p].gpuBusySeconds,
                  b.phases[p].gpuBusySeconds)
            << "phase " << p;
        EXPECT_EQ(a.phases[p].xferSeconds, b.phases[p].xferSeconds);
        EXPECT_EQ(a.phases[p].gpuUtilSeconds,
                  b.phases[p].gpuUtilSeconds);
    }
}

TEST(Determinism, SamplersIdenticalAcrossThreadCounts)
{
    // The parallel substrate's contract: sampler output is
    // bit-identical for any GNNBENCH_NUM_THREADS (per-chunk RNG
    // streams, fixed chunk decomposition).
    graph::Dataset ds = graph::loadDataset("ppi", 0.05, 5);
    dglx::LoadedData dgl = dglx::DataLoader::load(ds);
    pygx::LoadedData pyg = pygx::DataLoader::load(ds);
    std::vector<NodeId> seeds;
    for (NodeId v = 0; v < std::min<NodeId>(ds.numNodes(), 200); ++v)
        seeds.push_back(v);

    const int restore = core::parallel::numThreads();
    struct Captured
    {
        sampling::NeighborSample dglSage;
        sampling::InducedSample dglSaint;
        pygx::NeighborBatch pygSage;
    };
    std::vector<Captured> runs;
    for (int t : {1, 4}) {
        core::parallel::setNumThreads(t);
        Captured c;
        dglx::NeighborSampler ns(*dgl.graph, {5, 3}, core::Rng(7));
        c.dglSage = ns.sample(seeds);
        dglx::SaintRwSampler rs(*dgl.graph, 50, 2, core::Rng(7));
        c.dglSaint = rs.sample();
        device::Session session;
        pygx::NeighborSampler ps(*pyg.data, {5, 3}, core::Rng(7),
                                 &session);
        c.pygSage = ps.sample(seeds);
        runs.push_back(std::move(c));
    }
    core::parallel::setNumThreads(restore);

    const Captured &a = runs[0], &b = runs[1];
    ASSERT_EQ(a.dglSage.blocks.size(), b.dglSage.blocks.size());
    for (size_t l = 0; l < a.dglSage.blocks.size(); ++l) {
        EXPECT_EQ(a.dglSage.blocks[l].srcNodes,
                  b.dglSage.blocks[l].srcNodes);
        EXPECT_EQ(a.dglSage.blocks[l].csc.indptr,
                  b.dglSage.blocks[l].csc.indptr);
        EXPECT_EQ(a.dglSage.blocks[l].csc.indices,
                  b.dglSage.blocks[l].csc.indices);
    }
    EXPECT_EQ(a.dglSaint.nodes, b.dglSaint.nodes);
    EXPECT_EQ(a.dglSaint.adj.indptr, b.dglSaint.adj.indptr);
    EXPECT_EQ(a.dglSaint.adj.indices, b.dglSaint.adj.indices);
    ASSERT_EQ(a.pygSage.layers.size(), b.pygSage.layers.size());
    for (size_t l = 0; l < a.pygSage.layers.size(); ++l) {
        EXPECT_EQ(a.pygSage.layers[l].srcNodes,
                  b.pygSage.layers[l].srcNodes);
        EXPECT_EQ(a.pygSage.layers[l].eSrc, b.pygSage.layers[l].eSrc);
        EXPECT_EQ(a.pygSage.layers[l].eDst, b.pygSage.layers[l].eDst);
    }
}

TEST(Determinism, LoaderBatchesIdenticalAcrossWorkerCounts)
{
    // Each batch's sampler stream derives from (loader base seed,
    // batch index) alone, so the delivered batches are bit-identical
    // for any num_workers — 0 (inline) included.
    graph::Dataset ds = graph::loadDataset("ppi", 0.1, 5);
    dglx::LoadedData dgl = dglx::DataLoader::load(ds);
    std::vector<NodeId> all(ds.numNodes());
    for (NodeId v = 0; v < ds.numNodes(); ++v)
        all[v] = v;
    core::Rng brng(13);
    auto batches = makeBatches(all, 128, brng);
    dglx::NeighborSampler proto(*dgl.graph, {10, 5}, core::Rng(7));

    auto collect = [&](int workers) {
        core::Rng rng(21);
        dglx::NeighborLoader loader(proto, rng, batches, workers, 2);
        std::vector<sampling::NeighborSample> out;
        while (auto s = loader.next())
            out.push_back(std::move(*s));
        return out;
    };
    const auto base = collect(0);
    ASSERT_EQ(base.size(), batches.size());
    for (int workers : {1, 4}) {
        const auto got = collect(workers);
        ASSERT_EQ(got.size(), base.size()) << workers << " workers";
        for (size_t b = 0; b < base.size(); ++b) {
            ASSERT_EQ(got[b].blocks.size(), base[b].blocks.size());
            for (size_t l = 0; l < base[b].blocks.size(); ++l) {
                EXPECT_EQ(got[b].blocks[l].srcNodes,
                          base[b].blocks[l].srcNodes)
                    << workers << " workers, batch " << b;
                EXPECT_EQ(got[b].blocks[l].csc.indptr,
                          base[b].blocks[l].csc.indptr);
                EXPECT_EQ(got[b].blocks[l].csc.indices,
                          base[b].blocks[l].csc.indices);
            }
        }
    }
}

TEST(Determinism, ModelsIdenticalAcrossWorkersAndThreads)
{
    // The full cross-product contract: every model and framework is
    // bit-identical across numWorkers in {0, 1, 4} and
    // GNNBENCH_NUM_THREADS in {1, 4}.
    graph::Dataset ds = graph::loadDataset("ppi", 0.05, 5);
    struct ModelCase
    {
        const char *name;
        ModelFn fn;
    };
    const ModelCase models[] = {
        {"sage", &trainGraphSage},
        {"cluster", &trainClusterGcn},
        {"saint", &trainGraphSaint},
    };
    const int restore = core::parallel::numThreads();
    for (Framework fw : {Framework::Dglx, Framework::Pygx}) {
        for (const ModelCase &m : models) {
            std::vector<TrainResult> runs;
            std::vector<std::string> tags;
            for (int threads : {1, 4}) {
                core::parallel::setNumThreads(threads);
                for (int workers : {0, 1, 4}) {
                    TrainConfig cfg = config(fw);
                    cfg.epochs = 1;
                    cfg.numWorkers = workers;
                    runs.push_back(m.fn(ds, cfg));
                    tags.push_back(std::string(m.name) + " t" +
                                   std::to_string(threads) + " w" +
                                   std::to_string(workers));
                }
            }
            core::parallel::setNumThreads(restore);
            for (size_t r = 1; r < runs.size(); ++r) {
                ASSERT_EQ(runs[r].epochs.size(),
                          runs[0].epochs.size());
                for (size_t e = 0; e < runs[0].epochs.size(); ++e) {
                    EXPECT_EQ(runs[r].epochs[e].loss,
                              runs[0].epochs[e].loss)
                        << tags[r] << " vs " << tags[0];
                    EXPECT_EQ(runs[r].epochs[e].correct,
                              runs[0].epochs[e].correct)
                        << tags[r] << " vs " << tags[0];
                }
            }
        }
    }
}

TEST(Determinism, PrefetchTrainingRunToRunIdentical)
{
    // numWorkers > 0 threads the sampling, but a fixed (seed, worker
    // count) must still reproduce exactly.
    graph::Dataset ds = graph::loadDataset("ppi", 0.05, 5);
    for (Framework fw : {Framework::Dglx, Framework::Pygx}) {
        TrainConfig cfg = config(fw);
        cfg.numWorkers = 2;
        for (ModelFn fn : {&trainGraphSage, &trainGraphSaint}) {
            TrainResult a = fn(ds, cfg);
            TrainResult b = fn(ds, cfg);
            ASSERT_EQ(a.epochs.size(), b.epochs.size());
            for (size_t e = 0; e < a.epochs.size(); ++e) {
                EXPECT_EQ(a.epochs[e].loss, b.epochs[e].loss);
                EXPECT_EQ(a.epochs[e].correct, b.epochs[e].correct);
            }
        }
    }
}

} // namespace
} // namespace models
} // namespace gnnbench
