/**
 * Tests for the graph-reordering locality pass
 * (src/gnnbench/graph/reorder.h): RCM and degree-sort must produce
 * valid permutations on every gnncheck graph shape, reduce the average
 * index bandwidth on graphs with room to improve, and leave SpMM
 * results permutation-equivalent (exactly for max, up to float
 * accumulation order for sum).  Dataset-level reordering and the CSR
 * delta-varint storage mode ride along.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "gnnbench/check/property.h"
#include "gnnbench/core/rng.h"
#include "gnnbench/graph/convert.h"
#include "gnnbench/graph/datasets.h"
#include "gnnbench/graph/generate.h"
#include "gnnbench/graph/reorder.h"
#include "gnnbench/io/serialize.h"
#include "gnnbench/kernels/kernels.h"

#include "test_support.h"

namespace gnnbench {
namespace graph {
namespace {

using check::GraphCase;
using check::PropertyOptions;
using check::Result;
using core::Tensor;

PropertyOptions
opts(int cases)
{
    PropertyOptions o;
    o.numCases = cases;
    o.baseSeed = testenv::seed();
    return o;
}

/** Undirected (symmetrized) CSR of a generated case — both reorder
 *  methods are defined on square adjacencies. */
CsrGraph
caseCsr(const GraphCase &c)
{
    return cooToCsr(symmetrize(c.coo));
}

constexpr ReorderMethod kMethods[] = {ReorderMethod::DegreeSort,
                                      ReorderMethod::Rcm};

TEST(ReorderMethodNames, ParseAndNames)
{
    ReorderMethod m;
    for (ReorderMethod k :
         {ReorderMethod::None, ReorderMethod::DegreeSort,
          ReorderMethod::Rcm}) {
        EXPECT_TRUE(parseReorderMethod(reorderMethodName(k), &m));
        EXPECT_EQ(m, k);
        EXPECT_NE(std::string(validReorderMethodList())
                      .find(reorderMethodName(k)),
                  std::string::npos);
    }
    EXPECT_FALSE(parseReorderMethod("metis", &m));
}

/** Every method yields a bijection perm/inverse on every shape. */
TEST(ReorderPermutation, ValidOnAllShapes)
{
    EXPECT_TRUE(checkProperty(
        "reorder-valid-permutation",
        [](const GraphCase &c) {
            const CsrGraph adj = caseCsr(c);
            for (ReorderMethod m : kMethods) {
                const Reordering r = computeReordering(adj, m);
                if (r.numNodes() != adj.numRows)
                    return Result::fail(
                        std::string(reorderMethodName(m)) +
                        ": wrong permutation size");
                r.validate();
                // validate() is fatal on violation; double-check the
                // bijection non-fatally so shrinking can kick in.
                std::vector<char> seen(
                    static_cast<size_t>(adj.numRows), 0);
                for (const NodeId old : r.perm) {
                    if (old < 0 || old >= adj.numRows ||
                        seen[static_cast<size_t>(old)])
                        return Result::fail(
                            std::string(reorderMethodName(m)) +
                            ": not a permutation");
                    seen[static_cast<size_t>(old)] = 1;
                }
            }
            return Result::pass();
        },
        opts(20)));
}

/** Relabeling preserves the multiset of (remapped) edges. */
TEST(ReorderPermutation, RelabelPreservesEdges)
{
    EXPECT_TRUE(checkProperty(
        "reorder-relabel-preserves-edges",
        [](const GraphCase &c) {
            const CsrGraph adj = caseCsr(c);
            for (ReorderMethod m : kMethods) {
                const Reordering r = computeReordering(adj, m);
                const CsrGraph re = applyReordering(adj, r);
                if (re.numEdges() != adj.numEdges())
                    return Result::fail("edge count changed");
                std::vector<std::pair<NodeId, NodeId>> a, b;
                for (NodeId v = 0; v < adj.numRows; ++v)
                    for (const NodeId *p = adj.rowBegin(v);
                         p != adj.rowEnd(v); ++p)
                        a.push_back({r.inverse[v],
                                     r.inverse[static_cast<size_t>(
                                         *p)]});
                for (NodeId v = 0; v < re.numRows; ++v)
                    for (const NodeId *p = re.rowBegin(v);
                         p != re.rowEnd(v); ++p)
                        b.push_back({v, *p});
                std::sort(a.begin(), a.end());
                std::sort(b.begin(), b.end());
                if (a != b)
                    return Result::fail(
                        std::string(reorderMethodName(m)) +
                        ": relabeled edge set differs");
            }
            return Result::pass();
        },
        opts(15)));
}

/** RCM shrinks the average index bandwidth on a graph with poor
 *  initial locality (randomly shuffled path + chords). */
TEST(ReorderBandwidth, RcmReducesBandwidthOnShuffledMesh)
{
    core::Rng rng(testenv::seed() ^ 0xBAD1);
    // A path graph relabeled at random: original bandwidth ~n/3,
    // RCM should restore near-diagonal structure.
    const NodeId n = 2000;
    std::vector<NodeId> shuffle(static_cast<size_t>(n));
    for (NodeId i = 0; i < n; ++i)
        shuffle[static_cast<size_t>(i)] = i;
    for (NodeId i = n - 1; i > 0; --i)
        std::swap(shuffle[static_cast<size_t>(i)],
                  shuffle[rng.uniformInt(
                      static_cast<uint64_t>(i) + 1)]);
    CooGraph coo;
    coo.numNodes = n;
    for (NodeId i = 0; i + 1 < n; ++i) {
        coo.addEdge(shuffle[static_cast<size_t>(i)],
                    shuffle[static_cast<size_t>(i) + 1]);
        coo.addEdge(shuffle[static_cast<size_t>(i) + 1],
                    shuffle[static_cast<size_t>(i)]);
    }
    const CsrGraph adj = cooToCsr(coo);
    const double before = averageBandwidth(adj);
    const CsrGraph rcm =
        applyReordering(adj, rcmOrder(adj));
    const double after = averageBandwidth(rcm);
    // RCM on a path recovers bandwidth O(1); anything near the
    // shuffled baseline would mean the pass is broken.
    EXPECT_LT(after, before * 0.1)
        << "rcm bandwidth " << after << " vs shuffled " << before;
    EXPECT_LT(after, 10.0);
}

TEST(ReorderBandwidth, DegreeSortPacksHubs)
{
    // R-MAT graphs have skewed degrees; after degree sort the first
    // rows must hold the highest degrees, monotonically.
    core::Rng rng(testenv::seed());
    const CooGraph coo = symmetrize(rmat(4000, 24000, rng));
    const CsrGraph adj = cooToCsr(coo);
    const CsrGraph sorted =
        applyReordering(adj, degreeSortOrder(adj));
    for (NodeId v = 0; v + 1 < sorted.numRows; ++v)
        ASSERT_GE(sorted.degree(v), sorted.degree(v + 1))
            << "degree sort not monotone at row " << v;
}

/** SpMM through a reordering is permutation-equivalent: bit-exact
 *  for max (order-insensitive), tolerance-checked for sum (float
 *  accumulation order legitimately changes with the edge order). */
TEST(ReorderEquivalence, SpmmPermutationEquivalent)
{
    EXPECT_TRUE(checkProperty(
        "reorder-spmm-equivalence",
        [](const GraphCase &c) {
            const CsrGraph adj = caseCsr(c);
            const int64_t f = 17;
            core::Rng rng(c.seed ^ 0xFEA7);
            const Tensor x =
                Tensor::uniform(adj.numCols, f, rng, -1.0f, 1.0f);
            for (ReorderMethod m : kMethods) {
                const Reordering r = computeReordering(adj, m);
                const CsrGraph re = applyReordering(adj, r);
                const Tensor xp = permuteRows(x, r);
                using kernels::ReduceOp;
                for (ReduceOp op : {ReduceOp::Sum, ReduceOp::Max}) {
                    const Tensor base =
                        kernels::spmm(adj, x, op, nullptr);
                    const Tensor reord =
                        kernels::spmm(re, xp, op, nullptr);
                    // Undo the permutation: row v of base is row
                    // inverse[v] of reord.
                    for (NodeId v = 0; v < adj.numRows; ++v) {
                        const float *a = base.row(v);
                        const float *b =
                            reord.row(r.inverse[static_cast<size_t>(
                                v)]);
                        for (int64_t j = 0; j < f; ++j) {
                            const float tol =
                                op == ReduceOp::Max
                                    ? 0.0f
                                    : 1e-5f *
                                          (1.0f + std::abs(a[j]));
                            if (std::abs(a[j] - b[j]) > tol)
                                return Result::fail(
                                    std::string(
                                        reorderMethodName(m)) +
                                    "/" +
                                    kernels::reduceOpName(op) +
                                    ": row " + std::to_string(v) +
                                    " col " + std::to_string(j) +
                                    " differs: " +
                                    std::to_string(a[j]) + " vs " +
                                    std::to_string(b[j]));
                        }
                    }
                }
            }
            return Result::pass();
        },
        opts(10)));
}

/** Dataset-level reordering moves graph, features, labels, and splits
 *  through the same permutation. */
TEST(ReorderDataset, PermutesAllSections)
{
    Dataset ds = loadDataset("ppi", 0.25, testenv::seed());
    Dataset base = ds;
    const Reordering r = reorderDataset(ds, ReorderMethod::Rcm);
    r.validate();
    ASSERT_EQ(ds.graph.numNodes, base.graph.numNodes);
    ASSERT_EQ(ds.graph.numEdges(), base.graph.numEdges());
    // Feature/label rows moved with their nodes.
    for (NodeId v = 0; v < ds.graph.numNodes; ++v) {
        const NodeId old = r.perm[v];
        EXPECT_EQ(ds.labels[static_cast<size_t>(v)],
                  base.labels[static_cast<size_t>(old)]);
        EXPECT_EQ(ds.features(v, 0), base.features(old, 0));
    }
    // Splits are the same node sets under the relabeling.
    ASSERT_EQ(ds.trainIdx.size(), base.trainIdx.size());
    for (size_t i = 0; i < ds.trainIdx.size(); ++i)
        EXPECT_EQ(ds.trainIdx[i],
                  r.inverse[static_cast<size_t>(base.trainIdx[i])]);
    // None is the identity and touches nothing.
    Dataset same = base;
    const Reordering id =
        reorderDataset(same, ReorderMethod::None);
    for (NodeId v = 0; v < id.numNodes(); ++v)
        EXPECT_EQ(id.perm[v], v);
    EXPECT_EQ(same.graph.src, base.graph.src);
}

/** CSR round-trips losslessly through both storage modes, and the
 *  delta-varint encoding is smaller after a locality pass. */
TEST(ReorderSerialize, CsrRoundTripBothModes)
{
    core::Rng rng(testenv::seed() ^ 1);
    const CooGraph coo = symmetrize(rmat(3000, 18000, rng));
    const CsrGraph adj = cooToCsr(coo);
    const CsrGraph rcm = applyReordering(adj, rcmOrder(adj));

    const std::string dir = ::testing::TempDir();
    const auto roundTrip = [&](const CsrGraph &g,
                               io::CsrStorageMode mode,
                               const std::string &path) {
        io::saveCsr(g, path, mode);
        const CsrGraph back = io::loadCsr(path);
        EXPECT_EQ(back.numRows, g.numRows);
        EXPECT_EQ(back.numCols, g.numCols);
        EXPECT_EQ(back.indptr, g.indptr);
        EXPECT_EQ(back.indices, g.indices);
        std::FILE *fp = std::fopen(path.c_str(), "rb");
        EXPECT_NE(fp, nullptr);
        std::fseek(fp, 0, SEEK_END);
        const long size = std::ftell(fp);
        std::fclose(fp);
        std::remove(path.c_str());
        return size;
    };

    const long raw =
        roundTrip(rcm, io::CsrStorageMode::Raw, dir + "/csr_raw.bin");
    const long delta = roundTrip(rcm, io::CsrStorageMode::DeltaVarint,
                                 dir + "/csr_delta.bin");
    // Reordered neighbors sit near the diagonal: one-byte deltas vs
    // 4-byte raw ids (plus the 8-byte indptr array it drops).
    EXPECT_LT(delta, raw / 2)
        << "delta-varint " << delta << " B vs raw " << raw << " B";

    // Degenerate shapes round-trip too.
    EXPECT_TRUE(checkProperty(
        "csr-delta-roundtrip",
        [&](const GraphCase &c) {
            const CsrGraph g = caseCsr(c);
            const std::string path = dir + "/csr_case.bin";
            io::saveCsr(g, path, io::CsrStorageMode::DeltaVarint);
            const CsrGraph back = io::loadCsr(path);
            std::remove(path.c_str());
            if (back.indptr != g.indptr || back.indices != g.indices)
                return Result::fail("delta round-trip mismatch");
            return Result::pass();
        },
        opts(10)));
}

} // namespace
} // namespace graph
} // namespace gnnbench
