/** Tests for full-batch GraphSAGE training (Figures 22-24 path). */

#include <gtest/gtest.h>

#include "gnnbench/models/fullbatch.h"

namespace gnnbench {
namespace models {
namespace {

TEST(FullBatch, CpuRunsBothFrameworks)
{
    graph::Dataset ds = graph::loadDataset("ppi", 0.05, 3);
    for (auto fw : {Framework::Dglx, Framework::Pygx}) {
        auto r = trainFullBatchSage(ds, fw, RunMode::CPU, 2, 1);
        EXPECT_GT(r.secondsPerEpoch, 0.0) << frameworkName(fw);
        EXPECT_GT(r.energyPerEpoch.joules(), 0.0);
        EXPECT_EQ(r.energyPerEpoch.gpuJoules, 0.0);
        EXPECT_NEAR(r.energyPerEpoch.seconds, r.secondsPerEpoch,
                    1e-9);
    }
}

TEST(FullBatch, GpuModeChargesGpuEnergy)
{
    graph::Dataset ds = graph::loadDataset("ppi", 0.05, 3);
    auto r = trainFullBatchSage(ds, Framework::Dglx, RunMode::GPU,
                                2, 1);
    EXPECT_GT(r.secondsPerEpoch, 0.0);
    EXPECT_GT(r.energyPerEpoch.gpuJoules, 0.0);
}

TEST(FullBatch, GpuFasterThanCpu)
{
    // The modeled GPU must beat single-core CPU full-batch training
    // (paper: conv layers up to 70x faster on GPU).
    graph::Dataset ds = graph::loadDataset("ppi", 0.1, 4);
    auto cpu = trainFullBatchSage(ds, Framework::Dglx,
                                  RunMode::CPU, 2, 1);
    auto gpu = trainFullBatchSage(ds, Framework::Dglx,
                                  RunMode::GPU, 2, 1);
    EXPECT_LT(gpu.secondsPerEpoch, cpu.secondsPerEpoch);
}

TEST(FullBatch, ConfigLabels)
{
    graph::Dataset ds = graph::loadDataset("ppi", 0.02, 5);
    auto r = trainFullBatchSage(ds, Framework::Pygx, RunMode::CPU,
                                1, 1);
    EXPECT_EQ(r.config, "PyG-CPU");
}

TEST(FullBatch, RejectsSamplingModes)
{
    graph::Dataset ds = graph::loadDataset("ppi", 0.02, 5);
    EXPECT_DEATH(trainFullBatchSage(ds, Framework::Dglx,
                                    RunMode::UVAGPU, 1, 1),
                 "CPU or GPU");
}

} // namespace
} // namespace models
} // namespace gnnbench
