/** Tests for the dense numeric kernels. */

#include <gtest/gtest.h>

#include <cmath>

#include "gnnbench/core/ops.h"

namespace gnnbench {
namespace core {
namespace ops {
namespace {

Tensor
make(std::initializer_list<std::initializer_list<float>> rows)
{
    const int64_t r = rows.size();
    const int64_t c = rows.begin()->size();
    Tensor t(r, c);
    int64_t i = 0;
    for (const auto &row : rows) {
        int64_t j = 0;
        for (float v : row)
            t(i, j++) = v;
        ++i;
    }
    return t;
}

void
expectNear(const Tensor &a, const Tensor &b, float tol = 1e-5f)
{
    ASSERT_TRUE(a.sameShape(b));
    for (int64_t i = 0; i < a.rows(); ++i)
        for (int64_t j = 0; j < a.cols(); ++j)
            EXPECT_NEAR(a(i, j), b(i, j), tol)
                << "at (" << i << "," << j << ")";
}

TEST(Ops, MatmulSmall)
{
    Tensor a = make({{1, 2}, {3, 4}});
    Tensor b = make({{5, 6}, {7, 8}});
    expectNear(matmul(a, b), make({{19, 22}, {43, 50}}));
}

TEST(Ops, MatmulIdentity)
{
    Rng rng(1);
    Tensor a = Tensor::randn(7, 7, rng);
    Tensor eye(7, 7);
    for (int64_t i = 0; i < 7; ++i)
        eye(i, i) = 1.0f;
    expectNear(matmul(a, eye), a);
    expectNear(matmul(eye, a), a);
}

TEST(Ops, MatmulTransposedVariantsAgree)
{
    Rng rng(2);
    Tensor a = Tensor::randn(5, 8, rng);
    Tensor b = Tensor::randn(5, 3, rng);
    // A^T B via matmulTa must equal matmul(transpose(A), B).
    expectNear(matmulTa(a, b), matmul(transpose(a), b), 1e-4f);
    Tensor c = Tensor::randn(4, 8, rng);
    // A C^T via matmulTb must equal matmul(A, transpose(C)).
    expectNear(matmulTb(a, c), matmul(a, transpose(c)), 1e-4f);
}

TEST(Ops, TransposeInvolution)
{
    Rng rng(3);
    Tensor a = Tensor::randn(4, 9, rng);
    expectNear(transpose(transpose(a)), a);
}

TEST(Ops, ElementwiseArithmetic)
{
    Tensor a = make({{1, -2}, {3, 0}});
    Tensor b = make({{2, 2}, {-1, 5}});
    expectNear(add(a, b), make({{3, 0}, {2, 5}}));
    expectNear(sub(a, b), make({{-1, -4}, {4, -5}}));
    expectNear(mul(a, b), make({{2, -4}, {-3, 0}}));
    expectNear(scale(a, -2.0f), make({{-2, 4}, {-6, 0}}));
}

TEST(Ops, AxpyInPlace)
{
    Tensor a = make({{1, 1}});
    Tensor b = make({{2, -3}});
    axpy(a, b, 0.5f);
    expectNear(a, make({{2, -0.5}}));
}

TEST(Ops, AddBiasBroadcastsRows)
{
    Tensor a = make({{1, 2}, {3, 4}});
    Tensor bias = make({{10, 20}});
    expectNear(addBias(a, bias), make({{11, 22}, {13, 24}}));
}

TEST(Ops, ColSumIsBiasGradient)
{
    Tensor a = make({{1, 2}, {3, 4}, {5, 6}});
    expectNear(colSum(a), make({{9, 12}}));
}

TEST(Ops, ReluAndGrad)
{
    Tensor x = make({{-1, 0, 2}});
    expectNear(relu(x), make({{0, 0, 2}}));
    Tensor g = make({{5, 5, 5}});
    expectNear(reluGrad(x, g), make({{0, 0, 5}}));
}

TEST(Ops, EluMatchesDefinition)
{
    Tensor x = make({{-1, 0, 2}});
    Tensor y = elu(x);
    EXPECT_NEAR(y(0, 0), std::expm1(-1.0f), 1e-6f);
    EXPECT_EQ(y(0, 1), 0.0f);
    EXPECT_EQ(y(0, 2), 2.0f);
    // d elu = elu(x)+1 for x<0, 1 otherwise.
    Tensor g = make({{2, 2, 2}});
    Tensor gx = eluGradFromOutput(y, g);
    EXPECT_NEAR(gx(0, 0), 2.0f * (std::expm1(-1.0f) + 1.0f), 1e-6f);
    EXPECT_EQ(gx(0, 2), 2.0f);
}

TEST(Ops, LeakyRelu)
{
    Tensor x = make({{-2, 3}});
    expectNear(leakyRelu(x, 0.1f), make({{-0.2, 3}}));
    Tensor g = make({{1, 1}});
    expectNear(leakyReluGrad(x, g, 0.1f), make({{0.1, 1}}));
}

TEST(Ops, DropoutMaskConsistent)
{
    Rng rng(4);
    Tensor x = Tensor::full(100, 100, 1.0f);
    Tensor mask;
    Tensor y = dropout(x, 0.3f, rng, &mask);
    int64_t kept = 0;
    for (int64_t i = 0; i < y.numel(); ++i) {
        EXPECT_FLOAT_EQ(y.data()[i], mask.data()[i]);
        if (y.data()[i] != 0.0f) {
            EXPECT_NEAR(y.data()[i], 1.0f / 0.7f, 1e-5f);
            ++kept;
        }
    }
    EXPECT_NEAR(static_cast<double>(kept) / y.numel(), 0.7, 0.02);
}

TEST(Ops, LogSoftmaxRowsSumToOne)
{
    Rng rng(5);
    Tensor x = Tensor::randn(10, 6, rng, 3.0f);
    Tensor y = logSoftmax(x);
    for (int64_t i = 0; i < y.rows(); ++i) {
        double z = 0.0;
        for (int64_t j = 0; j < y.cols(); ++j)
            z += std::exp(y(i, j));
        EXPECT_NEAR(z, 1.0, 1e-4);
    }
}

TEST(Ops, LogSoftmaxShiftInvariant)
{
    Tensor a = make({{1, 2, 3}});
    Tensor b = make({{101, 102, 103}});
    expectNear(logSoftmax(a), logSoftmax(b), 1e-4f);
}

TEST(Ops, NllLossKnownValue)
{
    // logprob rows with mass concentrated on the label -> small loss.
    Tensor lp = logSoftmax(make({{10, 0, 0}, {0, 10, 0}}));
    const float loss = nllLoss(lp, {0, 1}, {});
    EXPECT_NEAR(loss, -lp(0, 0), 1e-4f);
}

TEST(Ops, NllLossRowSelection)
{
    Tensor lp = logSoftmax(make({{1, 0}, {0, 1}, {5, 0}}));
    const float all = nllLoss(lp, {0, 0, 0}, {});
    const float only2 = nllLoss(lp, {0, 0, 0}, {2});
    EXPECT_NE(all, only2);
    EXPECT_NEAR(only2, -lp(2, 0), 1e-5f);
}

TEST(Ops, GatherScatterRoundTrip)
{
    Tensor x = make({{1, 2}, {3, 4}, {5, 6}});
    std::vector<NodeId> idx = {2, 0};
    Tensor g = gatherRows(x, idx);
    expectNear(g, make({{5, 6}, {1, 2}}));
    Tensor s = scatterAddRows(g, idx, 3);
    expectNear(s, make({{1, 2}, {0, 0}, {5, 6}}));
}

TEST(Ops, ScatterAddAccumulatesDuplicates)
{
    Tensor src = make({{1, 1}, {2, 2}});
    Tensor out = scatterAddRows(src, {0, 0}, 2);
    expectNear(out, make({{3, 3}, {0, 0}}));
}

TEST(Ops, RowScale)
{
    Tensor x = make({{1, 2}, {3, 4}});
    expectNear(rowScale(x, {2.0f, -1.0f}), make({{2, 4}, {-3, -4}}));
}

TEST(Ops, ConcatSplitRoundTrip)
{
    Tensor a = make({{1, 2}, {3, 4}});
    Tensor b = make({{5}, {6}});
    Tensor c = concatCols(a, b);
    expectNear(c, make({{1, 2, 5}, {3, 4, 6}}));
    Tensor ga, gb;
    splitColsGrad(c, 2, &ga, &gb);
    expectNear(ga, a);
    expectNear(gb, b);
}

TEST(Ops, CountCorrect)
{
    Tensor logits = make({{1, 0}, {0, 1}, {3, 2}});
    EXPECT_EQ(countCorrect(logits, {0, 1, 1}, {}), 2);
    EXPECT_EQ(countCorrect(logits, {0, 1, 1}, {2}), 0);
}

/** Property sweep: matmul associativity-ish check across shapes. */
class MatmulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MatmulShapes, MatchesNaive)
{
    auto [m, k, n] = GetParam();
    Rng rng(m * 100 + k * 10 + n);
    Tensor a = Tensor::randn(m, k, rng);
    Tensor b = Tensor::randn(k, n, rng);
    Tensor c = matmul(a, b);
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (int64_t kk = 0; kk < k; ++kk)
                acc += static_cast<double>(a(i, kk)) * b(kk, j);
            ASSERT_NEAR(c(i, j), acc, 1e-3);
        }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1),
                      std::make_tuple(3, 5, 2),
                      std::make_tuple(16, 1, 16),
                      std::make_tuple(7, 13, 11),
                      std::make_tuple(32, 8, 4)));

} // namespace
} // namespace ops
} // namespace core
} // namespace gnnbench
