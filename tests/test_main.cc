/**
 * @file
 * Shared gtest entry point for every test binary.
 *
 * - Reads the run's base RNG seed from GNNBENCH_TEST_SEED (default
 *   42); randomized tests obtain it through testenv::seed().
 * - On any failed check, prints a one-line repro recipe to stderr
 *   carrying the seed and the failing test's --gtest_filter.
 * - Stops at the first failing test (--gtest_fail_fast) so the first
 *   broken invariant is the one reported; set
 *   GNNBENCH_TEST_KEEP_GOING=1 to run the full suite regardless.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "test_support.h"

namespace gnnbench {
namespace testenv {

uint64_t
seed()
{
    static const uint64_t s = [] {
        if (const char *env = std::getenv("GNNBENCH_TEST_SEED"))
            return static_cast<uint64_t>(
                std::strtoull(env, nullptr, 10));
        return static_cast<uint64_t>(42);
    }();
    return s;
}

} // namespace testenv
} // namespace gnnbench

namespace {

/** Prints a seed-carrying repro line for every failed check. */
class SeedReporter : public ::testing::EmptyTestEventListener
{
  public:
    explicit SeedReporter(const char *binary) : binary_(binary) {}

  private:
    // NB: gtest holds its internal mutex while notifying
    // OnTestPartResult, so we must not call back into UnitTest
    // there; the running test's name is captured in OnTestStart.
    void
    OnTestStart(const ::testing::TestInfo &info) override
    {
        suite_ = info.test_suite_name();
        test_ = info.name();
    }

    void
    OnTestPartResult(const ::testing::TestPartResult &result) override
    {
        if (!result.failed())
            return;
        std::fprintf(
            stderr,
            "[gnncheck] repro: GNNBENCH_TEST_SEED=%llu %s "
            "--gtest_filter='%s.%s'\n",
            static_cast<unsigned long long>(
                gnnbench::testenv::seed()),
            binary_, suite_, test_);
    }

    const char *binary_;
    const char *suite_ = "?";
    const char *test_ = "?";
};

} // namespace

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    if (std::getenv("GNNBENCH_TEST_KEEP_GOING") == nullptr)
        ::testing::GTEST_FLAG(fail_fast) = true;
    ::testing::UnitTest::GetInstance()->listeners().Append(
        new SeedReporter(argc > 0 ? argv[0] : "test"));
    return RUN_ALL_TESTS();
}
