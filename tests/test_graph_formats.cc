/** Tests for COO/CSR/CSC structures and conversions. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gnnbench/core/rng.h"
#include "gnnbench/graph/convert.h"
#include "gnnbench/graph/generate.h"

namespace gnnbench {
namespace graph {
namespace {

CooGraph
triangleWithTail()
{
    // 0-1-2 triangle plus 2->3 tail (directed edges as listed).
    CooGraph g;
    g.numNodes = 4;
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    g.addEdge(2, 3);
    return g;
}

TEST(Coo, ValidateAcceptsWellFormed)
{
    triangleWithTail().validate();
}

TEST(Coo, SymmetrizeAddsReverseEdges)
{
    CooGraph s = symmetrize(triangleWithTail());
    EXPECT_EQ(s.numEdges(), 8);
    // Every edge's reverse must exist.
    std::set<std::pair<NodeId, NodeId>> edges;
    for (size_t i = 0; i < s.src.size(); ++i)
        edges.insert({s.src[i], s.dst[i]});
    for (auto [u, v] : edges)
        EXPECT_TRUE(edges.count({v, u})) << u << "->" << v;
}

TEST(Coo, SymmetrizeDropsSelfLoopWhenAsked)
{
    CooGraph g;
    g.numNodes = 2;
    g.addEdge(0, 0);
    g.addEdge(0, 1);
    EXPECT_EQ(symmetrize(g, true).numEdges(), 3);
    EXPECT_EQ(symmetrize(g, false).numEdges(), 2);
}

TEST(Coo, DedupRemovesDuplicates)
{
    CooGraph g;
    g.numNodes = 3;
    g.addEdge(0, 1);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    EXPECT_EQ(dedup(g).numEdges(), 2);
}

TEST(Convert, CsrMatchesEdges)
{
    CooGraph g = triangleWithTail();
    CsrGraph csr = cooToCsr(g);
    csr.validate();
    EXPECT_EQ(csr.numEdges(), g.numEdges());
    EXPECT_EQ(csr.degree(2), 2);  // 2->0 and 2->3
    EXPECT_EQ(csr.degree(3), 0);
}

TEST(Convert, CscIsInAdjacency)
{
    CooGraph g = triangleWithTail();
    CsrGraph csc = cooToCsc(g);
    csc.validate();
    EXPECT_EQ(csc.degree(3), 1);  // only 2->3 enters 3
    EXPECT_EQ(*csc.rowBegin(3), 2);
}

TEST(Convert, TransposeRoundTrip)
{
    core::Rng rng(1);
    CooGraph g = erdosRenyi(50, 300, rng);
    CsrGraph csr = cooToCsr(g);
    CsrGraph t2 = csrTranspose(csrTranspose(csr));
    // Double transpose preserves the multiset of each row.
    ASSERT_EQ(t2.numEdges(), csr.numEdges());
    for (NodeId r = 0; r < csr.numRows; ++r) {
        std::vector<NodeId> a(csr.rowBegin(r), csr.rowEnd(r));
        std::vector<NodeId> b(t2.rowBegin(r), t2.rowEnd(r));
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        ASSERT_EQ(a, b) << "row " << r;
    }
}

TEST(Convert, TransposeEqualsCsc)
{
    core::Rng rng(2);
    CooGraph g = erdosRenyi(40, 200, rng);
    CsrGraph a = csrTranspose(cooToCsr(g));
    CsrGraph b = cooToCsc(g);
    ASSERT_EQ(a.indptr, b.indptr);
    // Row contents equal as multisets.
    for (NodeId r = 0; r < a.numRows; ++r) {
        std::vector<NodeId> ra(a.rowBegin(r), a.rowEnd(r));
        std::vector<NodeId> rb(b.rowBegin(r), b.rowEnd(r));
        std::sort(ra.begin(), ra.end());
        std::sort(rb.begin(), rb.end());
        ASSERT_EQ(ra, rb);
    }
}

TEST(Convert, CooCsrRoundTrip)
{
    core::Rng rng(3);
    CooGraph g = dedup(erdosRenyi(30, 150, rng));
    CooGraph rt = csrToCoo(cooToCsr(g));
    EXPECT_EQ(rt.numEdges(), g.numEdges());
    CsrGraph again = cooToCsr(rt);
    CsrGraph orig = cooToCsr(g);
    EXPECT_EQ(again.indptr, orig.indptr);
    EXPECT_EQ(again.indices, orig.indices);
}

TEST(Convert, DegreesConsistent)
{
    core::Rng rng(4);
    CooGraph g = erdosRenyi(25, 100, rng);
    CsrGraph csr = cooToCsr(g);
    auto out_deg = outDegrees(csr);
    auto in_deg = inDegrees(csr);
    EdgeId total_out = 0, total_in = 0;
    for (EdgeId d : out_deg)
        total_out += d;
    for (EdgeId d : in_deg)
        total_in += d;
    EXPECT_EQ(total_out, g.numEdges());
    EXPECT_EQ(total_in, g.numEdges());
}

TEST(Convert, InducedSubgraphTriangle)
{
    CooGraph g = symmetrize(triangleWithTail(), false);
    CsrGraph csr = cooToCsr(g);
    CsrGraph sub = inducedSubgraph(csr, {0, 1, 2});
    sub.validate();
    EXPECT_EQ(sub.numRows, 3);
    EXPECT_EQ(sub.numEdges(), 6);  // symmetric triangle
    // Node 3 excluded: no local id 3 anywhere.
    for (NodeId c : sub.indices)
        EXPECT_LT(c, 3);
}

TEST(Convert, InducedSubgraphRelabels)
{
    CooGraph g = symmetrize(triangleWithTail(), false);
    CsrGraph csr = cooToCsr(g);
    // Order {2, 3}: edge 2<->3 becomes local 0<->1.
    CsrGraph sub = inducedSubgraph(csr, {2, 3});
    EXPECT_EQ(sub.numEdges(), 2);
    EXPECT_EQ(*sub.rowBegin(0), 1);
    EXPECT_EQ(*sub.rowBegin(1), 0);
}

TEST(Convert, InducedSubgraphEmptySet)
{
    CooGraph g = triangleWithTail();
    CsrGraph sub = inducedSubgraph(cooToCsr(g), {});
    EXPECT_EQ(sub.numRows, 0);
    EXPECT_EQ(sub.numEdges(), 0);
}

/** Property: induced subgraph of the full node set is the graph. */
TEST(Convert, InducedSubgraphIdentity)
{
    core::Rng rng(5);
    CooGraph g = dedup(erdosRenyi(20, 80, rng));
    CsrGraph csr = cooToCsr(g);
    std::vector<NodeId> all(20);
    for (NodeId i = 0; i < 20; ++i)
        all[i] = i;
    CsrGraph sub = inducedSubgraph(csr, all);
    EXPECT_EQ(sub.indptr, csr.indptr);
    EXPECT_EQ(sub.indices, csr.indices);
}

} // namespace
} // namespace graph
} // namespace gnnbench
