/** Tests for the GPU roofline / transfer models and the Session
 *  time-accounting authority. */

#include <gtest/gtest.h>

#include "gnnbench/device/session.h"

namespace gnnbench {
namespace device {
namespace {

TEST(GpuModel, ComputeBoundKernel)
{
    GpuSpec spec;
    GpuModel gpu(spec);
    KernelDesc d;
    d.flops = spec.flopsPeak;  // one second of peak compute
    d.bytes = 0.0;
    const double t = gpu.kernelTime(d);
    EXPECT_NEAR(t, 1.0 + spec.kernelLaunchLatency, 1e-9);
}

TEST(GpuModel, MemoryBoundKernel)
{
    GpuSpec spec;
    GpuModel gpu(spec);
    KernelDesc d;
    d.flops = 0.0;
    d.bytes = spec.memBandwidth;  // one second of peak bandwidth
    EXPECT_NEAR(gpu.kernelTime(d), 1.0 + spec.kernelLaunchLatency,
                1e-9);
}

TEST(GpuModel, EfficiencyScalesTime)
{
    GpuModel gpu{GpuSpec{}};
    KernelDesc full, half;
    full.bytes = half.bytes = 1e9;
    full.efficiency = 1.0;
    half.efficiency = 0.5;
    const double launch = GpuSpec{}.kernelLaunchLatency;
    EXPECT_NEAR(gpu.kernelTime(half) - launch,
                2.0 * (gpu.kernelTime(full) - launch), 1e-9);
}

TEST(GpuModel, LaunchLatencyFloorsTinyKernels)
{
    GpuModel gpu{GpuSpec{}};
    KernelDesc d;
    d.flops = 100;
    d.bytes = 100;
    EXPECT_GE(gpu.kernelTime(d), GpuSpec{}.kernelLaunchLatency);
}

TEST(GpuModel, UtilizationBounds)
{
    GpuModel gpu{GpuSpec{}};
    KernelDesc tiny;
    tiny.flops = 1;
    tiny.bytes = 1;
    EXPECT_GE(gpu.kernelUtilization(tiny), 0.10);
    KernelDesc saturating;
    saturating.bytes = 1e12;
    EXPECT_LE(gpu.kernelUtilization(saturating), 1.0);
    EXPECT_GT(gpu.kernelUtilization(saturating), 0.8);
}

TEST(GpuModel, TransferBandwidth)
{
    GpuSpec spec;
    GpuModel gpu(spec);
    const double t = gpu.transferTime(static_cast<uint64_t>(
        spec.pcieBandwidth));
    EXPECT_NEAR(t, 1.0 + spec.pcieLatency, 1e-6);
    // UVA is slower than PCIe copies per byte.
    EXPECT_GT(gpu.uvaAccessTime(1 << 30),
              gpu.transferTime(1 << 30) - spec.pcieLatency);
}

TEST(Session, CpuKernelCountsWallTime)
{
    Session s;
    const auto a = s.snapshot();
    s.runKernel(DeviceType::CPU, KernelDesc{}, [] {
        volatile double x = 0;
        for (int i = 0; i < 2000000; ++i)
            x += i;
    });
    const auto b = s.snapshot();
    EXPECT_GT(Session::virtualSeconds(a, b), 0.0);
}

TEST(Session, GpuKernelExcludesWallChargesModel)
{
    Session s;
    KernelDesc d;
    d.bytes = 672e9;  // exactly 1 s at default peak bandwidth
    d.efficiency = 1.0;
    const auto a = s.snapshot();
    s.runKernel(DeviceType::GPU, d, [] {
        volatile double x = 0;
        for (int i = 0; i < 2000000; ++i)
            x += i;
    });
    const auto b = s.snapshot();
    const double virt = Session::virtualSeconds(a, b);
    // Modeled second dominates; the host's real wall time is gone.
    EXPECT_NEAR(virt, 1.0, 0.05);
    EXPECT_GT(b.modeled.gpuSeconds, 0.99);
}

TEST(Session, TransferAccounting)
{
    Session s;
    const auto a = s.snapshot();
    s.transfer(12ull * 1000 * 1000 * 1000);  // ~1 s at 12 GB/s
    const auto b = s.snapshot();
    EXPECT_NEAR(b.modeled.xferSeconds - a.modeled.xferSeconds, 1.0,
                0.01);
}

TEST(Session, OverlappedTransferDiscounts)
{
    Session s;
    const uint64_t bytes = 12ull * 1000 * 1000 * 1000;
    s.transferOverlapped(bytes, 0.4);
    EXPECT_NEAR(s.snapshot().modeled.xferSeconds, 0.6, 0.01);
    // Full overlap -> zero charged time, never negative.
    Session s2;
    s2.transferOverlapped(bytes, 100.0);
    EXPECT_EQ(s2.snapshot().modeled.xferSeconds, 0.0);
}

TEST(Session, CpuOverheadCharges)
{
    Session s;
    s.chargeCpuOverhead(0.25);
    const auto b = s.snapshot();
    EXPECT_EQ(b.modeled.cpuOverheadSeconds, 0.25);
}

TEST(Session, GpuMemoryReserveRelease)
{
    Session s;
    const uint64_t cap = GpuSpec{}.memoryBytes;
    EXPECT_TRUE(s.reserveGpu(cap / 2));
    EXPECT_TRUE(s.fitsOnGpu(cap / 2));
    EXPECT_FALSE(s.reserveGpu(cap));
    EXPECT_EQ(s.gpuBytesUsed(), cap / 2);
    s.releaseGpu(cap / 2);
    EXPECT_EQ(s.gpuBytesUsed(), 0u);
}

TEST(Session, UvaChargesGpuTimeAtLowUtil)
{
    Session s;
    s.uvaAccess(8ull * 1000 * 1000 * 1000);  // ~1 s at 8 GB/s
    const auto b = s.snapshot();
    EXPECT_NEAR(b.modeled.gpuSeconds, 1.0, 0.01);
    EXPECT_NEAR(b.modeled.gpuUtilSeconds, 0.15, 0.01);
}

} // namespace
} // namespace device
} // namespace gnnbench
