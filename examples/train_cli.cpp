/**
 * @file
 * A full command-line training driver over the library: pick any
 * model, framework, placement mode, and dataset; snapshot datasets
 * and measurements for reproducible comparisons.
 *
 *   train_cli --model sage --framework dgl --mode cpugpu \
 *             --dataset reddit --scale 1 --epochs 10 \
 *             [--save-dataset d.bin | --load-dataset d.bin] \
 *             [--preload] [--prefetch] [--seed 42]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "gnnbench/io/serialize.h"
#include "gnnbench/models/clustergcn.h"
#include "gnnbench/models/fullbatch.h"
#include "gnnbench/models/graphsage.h"
#include "gnnbench/models/graphsaint.h"

using namespace gnnbench;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --model sage|cluster|saint|fullbatch   (default sage)\n"
        "  --framework dgl|pyg                    (default dgl)\n"
        "  --mode cpu|cpugpu|gpu|uvagpu           (default cpu)\n"
        "  --dataset <table-1 name>               (default ppi)\n"
        "  --scale <mult on default scale>        (default 1)\n"
        "  --epochs <n>                           (default 3)\n"
        "  --seed <s>                             (default 42)\n"
        "  --preload            pre-load graph+features to GPU\n"
        "  --prefetch           overlap movement with compute\n"
        "  --save-dataset <f>   snapshot the synthesized dataset\n"
        "  --load-dataset <f>   run on a snapshotted dataset\n",
        argv0);
    std::exit(0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model = "sage", framework = "dgl", mode = "cpu";
    std::string dataset = "ppi", save_ds, load_ds;
    double scale = 1.0;
    models::TrainConfig cfg;
    cfg.epochs = 3;
    cfg.seed = 42;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            GNNBENCH_CHECK(i + 1 < argc, "missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--model")
            model = next();
        else if (arg == "--framework")
            framework = next();
        else if (arg == "--mode")
            mode = next();
        else if (arg == "--dataset")
            dataset = next();
        else if (arg == "--scale")
            scale = std::stod(next());
        else if (arg == "--epochs")
            cfg.epochs = std::stoi(next());
        else if (arg == "--seed")
            cfg.seed = std::stoull(next());
        else if (arg == "--preload")
            cfg.preloadFeatures = true;
        else if (arg == "--prefetch")
            cfg.prefetch = true;
        else if (arg == "--save-dataset")
            save_ds = next();
        else if (arg == "--load-dataset")
            load_ds = next();
        else
            usage(argv[0]);
    }

    cfg.framework = framework == "pyg" ? models::Framework::Pygx
                                       : models::Framework::Dglx;
    if (mode == "cpugpu")
        cfg.mode = models::RunMode::CPUGPU;
    else if (mode == "gpu")
        cfg.mode = models::RunMode::GPU;
    else if (mode == "uvagpu")
        cfg.mode = models::RunMode::UVAGPU;
    else
        cfg.mode = models::RunMode::CPU;

    graph::Dataset ds =
        load_ds.empty()
            ? graph::loadDataset(dataset, scale, cfg.seed)
            : io::loadDatasetFile(load_ds);
    if (!save_ds.empty()) {
        io::saveDataset(ds, save_ds);
        std::printf("dataset snapshot written to %s\n",
                    save_ds.c_str());
    }
    std::printf("%s on %s (%d nodes, %lld edges), %s-%s, %d "
                "epochs\n\n",
                model.c_str(), ds.info.name.c_str(), ds.numNodes(),
                static_cast<long long>(ds.numEdges()),
                framework.c_str(), mode.c_str(), cfg.epochs);

    if (model == "fullbatch") {
        auto r = models::trainFullBatchSage(
            ds, cfg.framework,
            cfg.mode == models::RunMode::CPU
                ? models::RunMode::CPU
                : models::RunMode::GPU,
            cfg.epochs, cfg.seed);
        std::printf("%s: %.4f s/epoch, %.1f W avg, %.2f J/epoch\n",
                    r.config.c_str(), r.secondsPerEpoch,
                    r.avgWatts(), r.energyPerEpoch.joules());
        return 0;
    }

    models::TrainResult r;
    if (model == "cluster")
        r = models::trainClusterGcn(ds, cfg);
    else if (model == "saint")
        r = models::trainGraphSaint(ds, cfg);
    else
        r = models::trainGraphSage(ds, cfg);

    std::printf("config:    %s\n", r.config.c_str());
    std::printf("loading:   %.4f s\n",
                r.phaseSeconds(profiling::Phase::DataLoading));
    std::printf("sampling:  %.4f s\n",
                r.phaseSeconds(profiling::Phase::Sampling));
    std::printf("movement:  %.4f s\n",
                r.phaseSeconds(profiling::Phase::DataMovement));
    std::printf("training:  %.4f s\n",
                r.phaseSeconds(profiling::Phase::Training));
    std::printf("total:     %.4f s\n", r.totalSeconds());
    std::printf("energy:    %.1f J (avg %.1f W)\n",
                r.energy.joules(), r.avgWatts());
    for (size_t e = 0; e < r.epochs.size(); ++e)
        std::printf("epoch %zu: loss %.4f, train acc %.3f\n", e + 1,
                    r.epochs[e].loss, r.epochs[e].accuracy());
    return 0;
}
