/**
 * @file
 * Energy/power profiling walkthrough: trains GraphSAGE under three
 * placements (CPU, CPU+GPU, GPU-sampled), prints the CodeCarbon-style
 * sampled power trace, and computes GPS-UP metrics between the
 * configurations — the measurement methodology of the paper's
 * Figures 8-9 and 20.
 */

#include <cstdio>

#include "gnnbench/models/graphsage.h"
#include "gnnbench/power/energy_meter.h"
#include "gnnbench/power/gpsup.h"

using namespace gnnbench;

int
main()
{
    graph::Dataset ds = graph::loadDataset("ogbn-arxiv", 0.1);
    std::printf("dataset: %s at scale %.4f (%d nodes)\n\n",
                ds.info.name.c_str(), ds.scale, ds.numNodes());

    models::TrainConfig cfg;
    cfg.epochs = 2;

    std::vector<models::TrainResult> results;
    for (auto mode : {models::RunMode::CPU, models::RunMode::CPUGPU,
                      models::RunMode::GPU}) {
        cfg.mode = mode;
        results.push_back(models::trainGraphSage(ds, cfg));
        const auto &r = results.back();
        std::printf("%-12s total %7.3f s | avg power %6.1f W | "
                    "energy %8.1f J\n",
                    r.config.c_str(), r.totalSeconds(), r.avgWatts(),
                    r.energy.joules());
    }

    // CodeCarbon-style sampled trace of the CPU run's phases (0.1 s
    // interval, as the paper configures).
    std::printf("\nsampled power trace of %s (first 10 samples):\n",
                results[0].config.c_str());
    power::PowerModel model(power::PowerSpec{}, false);
    power::EnergyMeter meter(model, 0.1);
    for (const auto &slice : results[0].phases)
        meter.record(slice);
    int shown = 0;
    for (const auto &s : meter.sampledTrace()) {
        std::printf("  t=%5.1f s  %6.1f W\n", s.timeSeconds,
                    s.watts());
        if (++shown >= 10)
            break;
    }
    std::printf("  meter total: %.1f J (exact integral %.1f J)\n",
                meter.sampledEnergy().joules(),
                meter.total().joules());

    // GPS-UP: GPU-sampled configuration vs the CPUGPU baseline.
    const auto m = power::gpsup(
        results[1].totalSeconds(), results[1].energy.joules(),
        results[2].totalSeconds(), results[2].energy.joules());
    std::printf("\nGPS-UP of %s vs %s:\n", results[2].config.c_str(),
                results[1].config.c_str());
    std::printf("  speedup %.2fx, greenup %.2fx, powerup %.2fx "
                "(powerup == speedup/greenup)\n",
                m.speedup, m.greenup, m.powerup);
    return 0;
}
