/**
 * @file
 * Quickstart: load a dataset, train GraphSAGE with both frameworks,
 * and print the runtime breakdown and energy — the library's core
 * loop in ~40 lines.
 */

#include <cstdio>

#include "gnnbench/graph/datasets.h"
#include "gnnbench/models/graphsage.h"

using namespace gnnbench;

int
main()
{
    // 1. Synthesize the PPI stand-in dataset (statistics-matched to
    //    the paper's Table 1; deterministic in the seed).
    graph::Dataset ds = graph::loadDataset("ppi", /*scale=*/0.25);
    std::printf("dataset: %s  (%d nodes, %lld edges, %lld features)\n",
                ds.info.name.c_str(), ds.numNodes(),
                static_cast<long long>(ds.numEdges()),
                static_cast<long long>(ds.info.numFeatures));

    // 2. Configure a short mini-batch GraphSAGE run.
    models::TrainConfig cfg;
    cfg.epochs = 2;
    cfg.mode = models::RunMode::CPU;

    // 3. Train with each framework and compare.
    for (auto fw : {models::Framework::Dglx,
                    models::Framework::Pygx}) {
        cfg.framework = fw;
        models::TrainResult r = models::trainGraphSage(ds, cfg);
        std::printf("\n%s: total %.3f s, avg power %.1f W, "
                    "energy %.1f J\n",
                    r.config.c_str(), r.totalSeconds(), r.avgWatts(),
                    r.energy.joules());
        std::printf("  loading %.3f s | sampling %.3f s | movement "
                    "%.3f s | training %.3f s\n",
                    r.phaseSeconds(profiling::Phase::DataLoading),
                    r.phaseSeconds(profiling::Phase::Sampling),
                    r.phaseSeconds(profiling::Phase::DataMovement),
                    r.phaseSeconds(profiling::Phase::Training));
        std::printf("  final train accuracy: %.3f\n",
                    r.epochs.back().accuracy());
    }
    return 0;
}
