/**
 * @file
 * End-to-end node classification on the Flickr stand-in dataset:
 * builds a two-layer GCN by hand on the dglx framework, trains with
 * mini-batches from the ClusterGCN sampler, and evaluates accuracy on
 * the held-out validation and test splits each epoch.
 *
 * This example shows the *library* API (graph object, sampler, nn
 * layers, autograd, optimizer) rather than the prepackaged model
 * drivers the benchmarks use.
 */

#include <cstdio>

#include "gnnbench/core/optim.h"
#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/dglx/nn.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/graph/datasets.h"

using namespace gnnbench;
namespace ag = core::ag;

namespace {

/** Full-graph accuracy over a split. */
double
evaluate(dglx::GcnConv &l1, dglx::GcnConv &l2, const dglx::Graph &g,
         const core::Tensor &features,
         const std::vector<int32_t> &labels,
         const std::vector<NodeId> &split)
{
    dglx::KernelCtx ctx;  // no session: untimed inference
    ag::Var x = ag::constant(features.clone());
    ag::Var h = ag::relu(l1.forward(g, x, ctx));
    ag::Var out = l2.forward(g, h, ctx);
    const int64_t correct =
        core::ops::countCorrect(out->value, labels, split);
    return static_cast<double>(correct) / split.size();
}

} // namespace

int
main()
{
    // Flickr at 1/8 scale keeps this example snappy.
    graph::Dataset ds = graph::loadDataset("flickr", 0.125);
    dglx::LoadedData data = dglx::DataLoader::load(ds);
    std::printf("flickr stand-in: %d nodes, %lld edges, %lld "
                "features, %d classes\n",
                ds.numNodes(), static_cast<long long>(ds.numEdges()),
                static_cast<long long>(ds.info.numFeatures),
                ds.info.numClasses);

    // Model: GCN(500 -> 64) + ReLU + GCN(64 -> 7).
    core::Rng rng(7);
    dglx::GcnConv layer1(ds.info.numFeatures, 64, rng);
    dglx::GcnConv layer2(64, ds.info.numClasses, rng);
    std::vector<ag::Var> params = layer1.params();
    params.insert(params.end(), layer2.params().begin(),
                  layer2.params().end());
    core::Adam opt(params, 5e-3f);

    // Mini-batches: 64 clusters, 8 merged per batch.
    dglx::ClusterSampler sampler(*data.graph, 64, rng.fork());
    std::vector<bool> is_train(ds.numNodes(), false);
    for (NodeId v : data.trainIdx)
        is_train[v] = true;

    dglx::KernelCtx ctx;  // CPU, untimed
    for (int epoch = 1; epoch <= 5; ++epoch) {
        double loss_sum = 0.0;
        int64_t loss_nodes = 0;
        for (int batch = 0; batch < 8; ++batch) {
            auto smp = sampler.sample(8);
            // Local labels + training rows for this subgraph.
            std::vector<int32_t> labels(smp.nodes.size());
            std::vector<NodeId> rows;
            for (size_t i = 0; i < smp.nodes.size(); ++i) {
                labels[i] = data.labels[smp.nodes[i]];
                if (is_train[smp.nodes[i]])
                    rows.push_back(static_cast<NodeId>(i));
            }
            if (rows.empty())
                continue;
            const auto norm = dglx::computeGcnNorm(smp.adj);
            const auto self = dglx::computeSelfScale(smp.adj);
            ag::Var x = ag::constant(
                core::ops::gatherRows(data.features, smp.nodes));
            ag::Var h = ag::relu(
                layer1.forwardInduced(smp.adj, norm, self, x, ctx));
            ag::Var out =
                layer2.forwardInduced(smp.adj, norm, self, h, ctx);
            ag::Var loss = ag::nllLoss(ag::logSoftmax(out), labels,
                                       rows);
            loss_sum += loss->value(0, 0) * rows.size();
            loss_nodes += static_cast<int64_t>(rows.size());
            opt.zeroGrad();
            ag::backward(loss);
            opt.step();
        }
        const double val_acc = evaluate(layer1, layer2, *data.graph,
                                        data.features, data.labels,
                                        data.valIdx);
        std::printf("epoch %d: train loss %.4f, val accuracy %.3f\n",
                    epoch, loss_sum / loss_nodes, val_acc);
    }
    const double test_acc = evaluate(layer1, layer2, *data.graph,
                                     data.features, data.labels,
                                     data.testIdx);
    std::printf("test accuracy: %.3f (random baseline %.3f)\n",
                test_acc, 1.0 / ds.info.numClasses);
    return 0;
}
