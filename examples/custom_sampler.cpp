/**
 * @file
 * Extending the library with a custom sampler: a two-phase
 * "frontier" sampler (BFS ball around each seed with a per-hop node
 * cap) built only from public APIs, compared against the stock
 * GraphSAINT random-walk sampler on subgraph quality and cost.
 *
 * Demonstrates: the shared sampled-structure types, the reference
 * induced-subgraph extractor, and how sampler output plugs into the
 * dglx layers.
 */

#include <cstdio>

#include "gnnbench/core/timer.h"
#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/dglx/nn.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/graph/datasets.h"

using namespace gnnbench;

namespace {

/** BFS-ball sampler: grow a frontier from random seeds, cap growth
 *  per hop, and return the induced subgraph. */
class FrontierSampler
{
  public:
    FrontierSampler(const dglx::Graph &g, NodeId num_seeds,
                    int hops, NodeId per_hop_cap, core::Rng rng)
        : g_(g), numSeeds_(num_seeds), hops_(hops),
          perHopCap_(per_hop_cap), rng_(rng),
          scratch_(g.numNodes(), -1)
    {
    }

    sampling::InducedSample
    sample()
    {
        std::vector<NodeId> nodes =
            rng_.sampleWithoutReplacement(g_.numNodes(), numSeeds_);
        std::vector<bool> seen(g_.numNodes(), false);
        for (NodeId v : nodes)
            seen[v] = true;
        size_t frontier_begin = 0;
        for (int hop = 0; hop < hops_; ++hop) {
            const size_t frontier_end = nodes.size();
            NodeId added = 0;
            for (size_t i = frontier_begin;
                 i < frontier_end && added < perHopCap_; ++i) {
                const NodeId u = nodes[i];
                for (auto it = g_.csr().rowBegin(u);
                     it != g_.csr().rowEnd(u); ++it) {
                    if (!seen[*it]) {
                        seen[*it] = true;
                        nodes.push_back(*it);
                        if (++added >= perHopCap_)
                            break;
                    }
                }
            }
            frontier_begin = frontier_end;
        }
        return dglx::ClusterSampler::extractInduced(
            g_.csr(), std::move(nodes), scratch_);
    }

  private:
    const dglx::Graph &g_;
    NodeId numSeeds_;
    int hops_;
    NodeId perHopCap_;
    core::Rng rng_;
    std::vector<NodeId> scratch_;
};

} // namespace

int
main()
{
    graph::Dataset ds = graph::loadDataset("ppi", 0.5);
    dglx::LoadedData data = dglx::DataLoader::load(ds);
    std::printf("graph: %d nodes, %lld edges\n\n", ds.numNodes(),
                static_cast<long long>(ds.numEdges()));

    FrontierSampler frontier(*data.graph, 500, 2, 1000,
                             core::Rng(1));
    dglx::SaintRwSampler saint(*data.graph, 500, 2, core::Rng(1));

    auto report = [&](const char *name, auto &sampler) {
        core::Timer t;
        double nodes = 0, edges = 0;
        constexpr int kBatches = 20;
        for (int i = 0; i < kBatches; ++i) {
            auto smp = sampler.sample();
            smp.validate();
            nodes += static_cast<double>(smp.nodes.size());
            edges += static_cast<double>(smp.adj.numEdges());
        }
        std::printf("%-10s %6.2f ms/batch  avg %6.0f nodes  "
                    "%7.0f edges  (%.2f edges/node)\n",
                    name, t.elapsed() / kBatches * 1e3,
                    nodes / kBatches, edges / kBatches,
                    edges / nodes);
    };
    report("frontier", frontier);
    report("saint-rw", saint);

    // The custom sampler's output drops straight into the layers.
    auto smp = frontier.sample();
    core::Rng wrng(2);
    dglx::SageConv conv(ds.info.numFeatures, 32, wrng,
                        /*trainable=*/false);
    dglx::KernelCtx ctx;
    auto x = core::ag::constant(
        core::ops::gatherRows(data.features, smp.nodes));
    auto out = conv.forwardInduced(smp.adj, x, ctx);
    std::printf("\nSAGE forward over a frontier batch: %lld x %lld "
                "output\n",
                static_cast<long long>(out->value.rows()),
                static_cast<long long>(out->value.cols()));
    return 0;
}
