/**
 * @file
 * Figures 22-24: full-batch GraphSAGE — per-epoch training time,
 * average power, and energy, on CPU and (modeled) GPU in both
 * frameworks.
 *
 * Expected shape (Section 4.3): DGL-CPU much faster than PyG-CPU;
 * DGL-GPU faster than PyG-GPU except on the smallest graph (PPI);
 * power roughly framework-independent, so energy tracks time.
 */

#include "bench_common.h"
#include "gnnbench/models/fullbatch.h"

using namespace gnnbench;

int
main(int argc, char **argv)
{
    bench::Options defaults;
    defaults.scale = 0.5;
    defaults.epochs = 3;  // measured epochs per configuration
    auto opts = bench::parseOptions(argc, argv, defaults);
    bench::banner("Figures 22-24: full-batch GraphSAGE", opts);
    std::printf("measured epochs per config = %d (paper averages "
                "100 runs)\n\n",
                opts.epochs);

    profiling::Table table({"Dataset", "Config", "Time/epoch",
                            "AvgPower", "Energy/epoch"});
    for (const auto &name : opts.datasets) {
        graph::Dataset ds = bench::loadDataset(name, opts);
        for (auto fw :
             {models::Framework::Dglx, models::Framework::Pygx}) {
            for (auto mode :
                 {models::RunMode::CPU, models::RunMode::GPU}) {
                auto r = models::trainFullBatchSage(
                    ds, fw, mode, opts.epochs, opts.seed);
                table.addRow(
                    {name, r.config,
                     profiling::fmtSeconds(r.secondsPerEpoch),
                     profiling::fmtFixed(r.avgWatts(), 1) + " W",
                     profiling::fmtJoules(
                         r.energyPerEpoch.joules())});
            }
        }
    }
    table.print();
    bench::writeJsonReport(opts, "fig22_24_fullbatch",
                           {{"fullbatch", &table}});
    std::printf(
        "\nExpected shape: DGL-CPU << PyG-CPU; DGL-GPU faster than "
        "PyG-GPU except on the smallest graph; power roughly equal "
        "between frameworks (Section 4.3).\n");
    return 0;
}
