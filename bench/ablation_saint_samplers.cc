/**
 * @file
 * Ablation: the three GraphSAINT sampling strategies (node, edge,
 * random-walk).  The paper evaluates only the random-walk sampler,
 * citing [Zeng et al. 2020] that node/edge sampling are inferior;
 * this bench reproduces the comparison that justifies that choice:
 * per-batch sampling cost and the density of the induced subgraphs.
 */

#include "bench_common.h"
#include "gnnbench/core/timer.h"
#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/dglx/sampler.h"

using namespace gnnbench;

int
main(int argc, char **argv)
{
    bench::Options defaults;
    defaults.scale = 0.5;
    auto opts = bench::parseOptions(argc, argv, defaults);
    bench::banner("Ablation: GraphSAINT sampler variants (DGL)",
                  opts);

    constexpr int kBatches = 10;
    profiling::Table table({"Dataset", "Sampler", "Time/batch",
                            "Nodes", "Edges", "Edges/node"});
    for (const auto &name : opts.datasets) {
        graph::Dataset ds = bench::loadDataset(name, opts);
        dglx::LoadedData dgl = dglx::DataLoader::load(ds);
        const NodeId n = ds.numNodes();
        const int32_t roots = std::min<int32_t>(3000, n / 4);
        // Budgets sized so all three variants target comparable
        // subgraph node counts (roots * (walk+1)).
        const NodeId node_budget = roots * 3;
        const EdgeId edge_budget = roots * 3 / 2;

        auto run = [&](const char *label, auto &&sample_fn) {
            core::Timer t;
            double nodes = 0, edges = 0;
            for (int b = 0; b < kBatches; ++b) {
                auto smp = sample_fn();
                nodes += static_cast<double>(smp.nodes.size());
                edges += static_cast<double>(smp.adj.numEdges());
            }
            const double per_batch = t.elapsed() / kBatches;
            nodes /= kBatches;
            edges /= kBatches;
            table.addRow(
                {name, label, profiling::fmtSeconds(per_batch),
                 profiling::fmtCount(static_cast<int64_t>(nodes)),
                 profiling::fmtCount(static_cast<int64_t>(edges)),
                 profiling::fmtFixed(edges / nodes, 2)});
        };

        dglx::SaintNodeSampler node_s(*dgl.graph, node_budget,
                                      core::Rng(opts.seed));
        run("node", [&] { return node_s.sample(); });
        dglx::SaintEdgeSampler edge_s(*dgl.graph, edge_budget,
                                      core::Rng(opts.seed));
        run("edge", [&] { return edge_s.sample(); });
        dglx::SaintRwSampler rw_s(*dgl.graph, roots, 2,
                                  core::Rng(opts.seed));
        run("random-walk", [&] { return rw_s.sample(); });
    }
    table.print();
    bench::writeJsonReport(opts, "ablation_saint_samplers",
                           {{"saint_samplers", &table}});
    std::printf(
        "\nExpected shape: the random-walk sampler is the cheapest "
        "per batch; node sampling buys density only by concentrating "
        "on hubs (degree-proportional bias), edge sampling sits "
        "between.  GraphSAINT's published preference for random "
        "walks rests on their connectivity (walks are connected by "
        "construction) plus this cost advantage.\n");
    return 0;
}
