/**
 * @file
 * Figures 10-13: ClusterGCN runtime breakdown, total runtime,
 * average power, and energy across the four standard configurations.
 *
 * Expected shape: the one-time METIS-style partitioning plus cluster
 * aggregation keeps sampling the dominant phase; DGL wins overall.
 */

#include "model_fig_common.h"
#include "gnnbench/models/clustergcn.h"

using namespace gnnbench;

int
main(int argc, char **argv)
{
    bench::Options defaults;
    defaults.scale = 0.25;
    defaults.epochs = 3;
    auto opts = bench::parseOptions(argc, argv, defaults);
    bench::banner("Figures 10-13: ClusterGCN", opts);
    std::printf("epochs = %d (paper: 10; raise with --epochs)\n\n",
                opts.epochs);
    bench::runModelFigure("ClusterGCN", opts,
                          models::trainClusterGcn);
    std::printf(
        "\nExpected shape: sampling (partitioning + cluster "
        "aggregation) dominates; DGL beats PyG (Obs. 4-5).\n");
    return 0;
}
