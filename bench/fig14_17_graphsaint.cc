/**
 * @file
 * Figures 14-17: GraphSAINT runtime breakdown, total runtime,
 * average power, and energy across the four standard configurations.
 *
 * Expected shape: GraphSAINT is the cheapest of the three GNNs (its
 * sampler and subgraphs are light); the framework gap is smaller
 * than for GraphSAGE / ClusterGCN, and PyG-CPUGPU can beat
 * DGL-CPUGPU on small/medium graphs (Observation 5).
 */

#include "model_fig_common.h"
#include "gnnbench/models/graphsaint.h"

using namespace gnnbench;

int
main(int argc, char **argv)
{
    bench::Options defaults;
    defaults.scale = 0.25;
    defaults.epochs = 3;
    auto opts = bench::parseOptions(argc, argv, defaults);
    bench::banner("Figures 14-17: GraphSAINT (random-walk sampler)",
                  opts);
    std::printf("epochs = %d (paper: 10; raise with --epochs)\n\n",
                opts.epochs);
    bench::runModelFigure("GraphSAINT", opts,
                          models::trainGraphSaint);
    std::printf(
        "\nExpected shape: cheapest GNN of the three; smallest "
        "framework gap; PyG-CPUGPU competitive on small graphs "
        "(Obs. 5).\n");
    return 0;
}
