/**
 * @file
 * Figures 20-21: DGL's GPU-based and UVA-based GraphSAGE samplers —
 * GPS-UP metrics (Speedup / Powerup / Greenup) over the DGL-CPUGPU
 * baseline, plus runtime breakdowns.
 *
 * Expected shape (Observations 7-8): DGL-GPU up to ~5.5x speedup;
 * DGL-UVAGPU slightly slower than DGL-GPU; Greenup always > 1;
 * Powerup can dip below 1 on edge-dense graphs (Reddit); sampling
 * still ~40% (GPU) / ~60% (UVA) of total runtime.
 */

#include "model_fig_common.h"
#include "gnnbench/models/graphsage.h"
#include "gnnbench/power/gpsup.h"

using namespace gnnbench;
using profiling::Phase;

int
main(int argc, char **argv)
{
    bench::Options defaults;
    defaults.scale = 0.25;
    defaults.epochs = 3;
    auto opts = bench::parseOptions(argc, argv, defaults);
    bench::banner(
        "Figures 20-21: DGL GPU-based / UVA-based samplers", opts);
    std::printf("epochs = %d (paper: 10; raise with --epochs)\n\n",
                opts.epochs);

    profiling::Table gpsup_table({"Dataset", "Config", "Speedup",
                                  "Powerup", "Greenup"});
    profiling::Table breakdown({"Dataset", "Config", "Loading",
                                "Sampling", "Movement", "Training",
                                "Sampling%"});

    for (const auto &name : opts.datasets) {
        graph::Dataset ds = bench::loadDataset(name, opts);
        models::TrainConfig cfg;
        cfg.framework = models::Framework::Dglx;
        cfg.epochs = opts.epochs;
        cfg.seed = opts.seed;

        cfg.mode = models::RunMode::CPUGPU;
        models::TrainResult base = models::trainGraphSage(ds, cfg);

        for (auto mode :
             {models::RunMode::GPU, models::RunMode::UVAGPU}) {
            cfg.mode = mode;
            models::TrainResult opt = models::trainGraphSage(ds, cfg);
            const auto m = power::gpsup(
                base.totalSeconds(), base.energy.joules(),
                opt.totalSeconds(), opt.energy.joules());
            gpsup_table.addRow(
                {name, opt.config,
                 profiling::fmtFixed(m.speedup, 2) + "x",
                 profiling::fmtFixed(m.powerup, 2) + "x",
                 profiling::fmtFixed(m.greenup, 2) + "x"});
            const double total = opt.totalSeconds();
            breakdown.addRow(
                {name, opt.config,
                 profiling::fmtSeconds(
                     opt.phaseSeconds(Phase::DataLoading)),
                 profiling::fmtSeconds(
                     opt.phaseSeconds(Phase::Sampling)),
                 profiling::fmtSeconds(
                     opt.phaseSeconds(Phase::DataMovement)),
                 profiling::fmtSeconds(
                     opt.phaseSeconds(Phase::Training)),
                 profiling::fmtFixed(
                     100.0 * opt.phaseSeconds(Phase::Sampling) /
                         total,
                     1) +
                     "%"});
        }
    }
    std::printf("--- Figure 20: GPS-UP metrics vs DGL-CPUGPU ---\n");
    gpsup_table.print();
    std::printf("\n--- Figure 21: runtime breakdown ---\n");
    breakdown.print();
    bench::writeJsonReport(opts, "fig20_21_gpu_sampler",
                           {{"gpsup", &gpsup_table},
                            {"breakdown", &breakdown}});
    std::printf(
        "\nExpected shape: Speedup > 1 everywhere (paper: up to "
        "~5.5x at full scale); UVA at or slightly below the "
        "GPU-resident sampler; Greenup > 1 everywhere; Powerup "
        "exceeds 1 only on edge-dense graphs (Reddit) where GPU "
        "sampling runs hot (Obs. 7-8).\n");
    return 0;
}
