/**
 * @file
 * Figure 5: runtime of eight convolution layers (one full-graph
 * forward, output dim 256) on CPU and (modeled) GPU, both frameworks.
 *
 * CPU cells are the median of five *interleaved* repetitions (DGL and
 * PyG alternate, so machine noise hits both equally); GPU cells are
 * modeled and need one repetition.
 *
 * Expected shape (Observation 3): DGL wins on CPU for all layers;
 * GPU gives large speedups over CPU; PyG's unfused ChebConv, GATConv
 * and GATv2Conv go OOM on large graphs (full-size equivalent).
 */

#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/dglx/nn.h"
#include "gnnbench/pygx/dataloader.h"
#include "gnnbench/pygx/nn.h"

using namespace gnnbench;

namespace {

constexpr int64_t kOutDim = 256;
constexpr int kCpuRepeats = 5;

std::string
cell(double seconds)
{
    return seconds < 0 ? "OOM" : profiling::fmtSeconds(seconds);
}

double
median(std::vector<double> v)
{
    if (v.empty())
        return -1.0;
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options defaults;
    defaults.scale = 0.25;
    auto opts = bench::parseOptions(argc, argv, defaults);
    bench::banner(
        "Figure 5: runtime of eight Conv layers (forward, out=256)",
        opts);
    std::printf("kernel variant: %s (aggregation dispatch; also in "
                "the --json report options)\n\n",
                kernels::variantName(kernels::defaultVariant()));

    profiling::Table all({"Dataset", "Layer", "DGL-CPU", "PyG-CPU",
                          "DGL-GPU", "PyG-GPU", "DGL GPU speedup"});

    for (const auto &name : opts.datasets) {
        graph::Dataset ds = bench::loadDataset(name, opts);
        dglx::LoadedData dgl = dglx::DataLoader::load(ds);
        pygx::LoadedData pyg = pygx::DataLoader::load(ds);
        pyg.data->csc();  // conversion not part of the layer test

        std::printf("--- %s (n=%d, e=%lld, f=%lld) ---\n",
                    name.c_str(), ds.numNodes(),
                    static_cast<long long>(ds.numEdges()),
                    static_cast<long long>(ds.info.numFeatures));
        profiling::Table table({"Layer", "DGL-CPU", "PyG-CPU",
                                "DGL-GPU", "PyG-GPU",
                                "DGL GPU speedup"});

        // GCN2Conv operates at a fixed width: pre-project once.
        core::Rng prng(opts.seed);
        core::Tensor proj = core::Tensor::glorot(
            ds.info.numFeatures, kOutDim, prng);
        core::Tensor x256 = core::ops::matmul(ds.features, proj);

        for (auto kind : dglx::allConvKinds()) {
            const bool is_gcn2 = kind == dglx::ConvKind::Gcn2;
            const core::Tensor &x = is_gcn2 ? x256 : ds.features;
            const int64_t in_dim =
                is_gcn2 ? kOutDim : ds.info.numFeatures;

            // Build both layers with identical weights up front.
            core::Rng wrng_d(opts.seed + 7), wrng_p(opts.seed + 7);
            auto dconv = dglx::makeConv(kind, in_dim, kOutDim,
                                        wrng_d, false);
            auto pconv = pygx::makeConv(
                static_cast<pygx::ConvKind>(kind), in_dim, kOutDim,
                wrng_p, false);
            if (is_gcn2) {
                static_cast<dglx::Gcn2Conv *>(dconv.get())
                    ->setInitial(core::ag::constant(x.clone()));
                static_cast<pygx::Gcn2Conv *>(pconv.get())
                    ->setInitial(core::ag::constant(x.clone()));
            }

            auto run_dgl = [&](device::DeviceType dev) -> double {
                device::Session session;
                dglx::KernelCtx ctx{&session, dev, dglx::Costs{}};
                const auto t0 = session.snapshot();
                dconv->forward(*dgl.graph,
                               core::ag::constant(x.clone()), ctx);
                return device::Session::virtualSeconds(
                    t0, session.snapshot());
            };
            auto run_pyg = [&](device::DeviceType dev) -> double {
                device::Session session;
                pygx::KernelCtx ctx{&session, dev, pygx::Costs{},
                                    1.0 / ds.scale};
                const auto t0 = session.snapshot();
                try {
                    pconv->forward(*pyg.data,
                                   core::ag::constant(x.clone()),
                                   ctx);
                } catch (const pygx::OomError &) {
                    return -1.0;
                }
                return device::Session::virtualSeconds(
                    t0, session.snapshot());
            };

            // CPU: interleaved repetitions, median per framework.
            std::vector<double> d_cpu, p_cpu;
            bool pyg_oom_cpu = false;
            for (int r = 0; r < kCpuRepeats; ++r) {
                d_cpu.push_back(run_dgl(device::DeviceType::CPU));
                const double t =
                    run_pyg(device::DeviceType::CPU);
                if (t < 0) {
                    pyg_oom_cpu = true;
                    break;
                }
                p_cpu.push_back(t);
            }
            const double t_dgl_cpu = median(d_cpu);
            const double t_pyg_cpu =
                pyg_oom_cpu ? -1.0 : median(p_cpu);
            // GPU: modeled time is deterministic; one repetition.
            const double t_dgl_gpu =
                run_dgl(device::DeviceType::GPU);
            const double t_pyg_gpu =
                run_pyg(device::DeviceType::GPU);

            const std::string speedup =
                (t_dgl_cpu > 0 && t_dgl_gpu > 0)
                    ? profiling::fmtFixed(t_dgl_cpu / t_dgl_gpu,
                                          1) +
                          "x"
                    : "-";
            table.addRow({dglx::convKindName(kind),
                          cell(t_dgl_cpu), cell(t_pyg_cpu),
                          cell(t_dgl_gpu), cell(t_pyg_gpu),
                          speedup});
            all.addRow({name, dglx::convKindName(kind),
                        cell(t_dgl_cpu), cell(t_pyg_cpu),
                        cell(t_dgl_gpu), cell(t_pyg_gpu), speedup});
        }
        table.print();
        std::printf("\n");
    }
    bench::writeJsonReport(opts, "fig05_conv_layers",
                           {{"conv_runtime", &all}});
    std::printf(
        "Expected shape: DGL faster than PyG on CPU for all eight "
        "layers; GPU >> CPU; PyG OOM for ChebConv/GATConv/GATv2Conv "
        "on large graphs (full-size equivalent; Observation 3).\n");
    return 0;
}
