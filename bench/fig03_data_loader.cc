/**
 * @file
 * Figure 3: runtime of the data loader, DGL vs PyG.
 *
 * Expected shape (paper Observation 1): PyG's loader is faster on
 * every dataset because its Data object is a thin edge_index wrapper,
 * while DGL eagerly materializes all adjacency formats.
 */

#include <algorithm>

#include "bench_common.h"
#include "gnnbench/core/timer.h"
#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/pygx/dataloader.h"

using namespace gnnbench;

int
main(int argc, char **argv)
{
    bench::Options defaults;
    defaults.epochs = 0;  // unused
    auto opts = bench::parseOptions(argc, argv, defaults);
    bench::banner("Figure 3: runtime of data loader", opts);

    constexpr int kRepeats = 7;
    profiling::Table table(
        {"Dataset", "DGL", "PyG", "DGL/PyG"});
    for (const auto &name : opts.datasets) {
        graph::Dataset ds = bench::loadDataset(name, opts);
        // Median over repeats: the first iterations can be skewed by
        // allocator warmup after dataset synthesis.
        std::vector<double> dgl_times, pyg_times;
        for (int r = 0; r < kRepeats; ++r) {
            core::Timer t;
            auto dgl = dglx::DataLoader::load(ds);
            dgl_times.push_back(t.elapsed());
            t.reset();
            auto pyg = pygx::DataLoader::load(ds);
            pyg_times.push_back(t.elapsed());
        }
        std::sort(dgl_times.begin(), dgl_times.end());
        std::sort(pyg_times.begin(), pyg_times.end());
        const double dgl_s = dgl_times[kRepeats / 2];
        const double pyg_s = pyg_times[kRepeats / 2];
        table.addRow({name, profiling::fmtSeconds(dgl_s),
                      profiling::fmtSeconds(pyg_s),
                      profiling::fmtFixed(dgl_s / pyg_s, 2) + "x"});
    }
    table.print();
    bench::writeJsonReport(opts, "fig03_data_loader",
                           {{"loader_runtime", &table}});
    std::printf("\nExpected shape: DGL/PyG > 1 on every dataset "
                "(PyG's lazy Data object wins; Observation 1).\n");
    return 0;
}
