/**
 * @file
 * Figures 6-9: GraphSAGE runtime breakdown, total runtime, average
 * power, and energy across DGL-CPU / PyG-CPU / DGL-CPUGPU /
 * PyG-CPUGPU.
 *
 * Expected shape (Observations 4-5): sampling dominates (up to ~90%
 * of total runtime); DGL is generally more efficient; power shows no
 * clear framework winner, so energy tracks runtime.
 */

#include "model_fig_common.h"
#include "gnnbench/models/graphsage.h"

using namespace gnnbench;

int
main(int argc, char **argv)
{
    bench::Options defaults;
    defaults.scale = 0.25;
    defaults.epochs = 3;
    auto opts = bench::parseOptions(argc, argv, defaults);
    bench::banner("Figures 6-9: GraphSAGE (mini-batch)", opts);
    std::printf("epochs = %d (paper: 10; raise with --epochs)\n\n",
                opts.epochs);
    bench::runModelFigure("GraphSAGE", opts,
                          models::trainGraphSage);
    std::printf(
        "\nExpected shape: sampling dominates; DGL beats PyG "
        "overall; energy follows total runtime (Obs. 4-5).\n");
    return 0;
}
