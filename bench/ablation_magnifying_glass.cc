/**
 * @file
 * Ablation: the paper's magnifying glass turned on our own kernel
 * layer — a per-phase / per-kernel breakdown of *measured* hardware
 * cost next to the analytic roofline position.
 *
 * For each reorder mode (none/degree/rcm) the harness builds the
 * micro-bench RMAT aggregation workload, then runs the sparse-kernel
 * family (SpMM sum/max, scatter SpMM, SDDMM dot, gather, scatter sum)
 * under each explicit variant (Reference/Tiled/Simd).  Every dispatch
 * carries kernels::KernelStats, so each row reports:
 *
 *  - wall seconds (best of --repeats; min is the stable estimator on
 *    a shared box where interference is one-sided),
 *  - achieved GFLOP/s and GB/s from the analytic OpCost,
 *  - operational intensity and the achieved fraction of the measured
 *    roofline ceiling at that intensity (profiling/roofline.h),
 *  - the PMU delta over the dispatch — cycles, IPC, LLC-miss rate,
 *    backend-stall fraction — when perf_event_open is live, and an
 *    explicit "n/a" (JSON: "perf": "unavailable") when it is not.
 *
 * Phase attribution rides the same machinery: graph construction and
 * reordering run under Phase::DataLoading and the measurement loops
 * under Phase::Training, so the per-phase table shows the same
 * counters at the granularity of the paper's runtime breakdown.
 *
 * With --json the report is the unified run-report document plus a
 * top-level "results" array (one row per reorder x variant x op) that
 * scripts/check_trace.sh validates for schema completeness.
 */

#include <algorithm>
#include <functional>

#include "bench_common.h"
#include "gnnbench/graph/convert.h"
#include "gnnbench/graph/generate.h"
#include "gnnbench/profiling/profiler.h"

using namespace gnnbench;

namespace {

constexpr int kRepeats = 3;

/** The RMAT aggregation workload (micro_kernels' graph) under one
 *  reorder mode, with features permuted to stay equivalent. */
struct Workload
{
    graph::CooGraph coo;
    graph::CsrGraph csc;
    core::Tensor x;

    Workload(double scale, uint64_t seed, graph::ReorderMethod m)
    {
        const NodeId n =
            std::max<NodeId>(64, static_cast<NodeId>(20000 * scale));
        const EdgeId e = std::max<EdgeId>(
            256, static_cast<EdgeId>(120000 * scale));
        core::Rng rng(seed);
        coo = graph::symmetrize(graph::rmat(n, e, rng), false);
        csc = graph::cooToCsc(coo);
        x = core::Tensor::randn(csc.numCols, 64, rng);
        if (m != graph::ReorderMethod::None) {
            const graph::Reordering ro =
                graph::computeReordering(csc, m);
            csc = graph::applyReordering(csc, ro);
            coo = graph::applyReordering(coo, ro);
            x = graph::permuteRows(x, ro);
        }
    }
};

/** One measured (reorder, variant, op) breakdown row. */
struct BreakdownRow
{
    std::string reorder;
    std::string variant;
    std::string op;
    kernels::KernelStats stats; ///< the fastest repeat's stats
};

/** Run @p dispatch kRepeats times; keep the fastest repeat. */
kernels::KernelStats
bestOf(const std::function<void(kernels::KernelStats *)> &dispatch)
{
    kernels::KernelStats best;
    for (int r = 0; r < kRepeats; ++r) {
        kernels::KernelStats s;
        dispatch(&s);
        if (r == 0 || s.seconds < best.seconds)
            best = s;
    }
    return best;
}

/** "n/a" when the PMU is down, else @p value formatted. */
std::string
fmtPerf(const profiling::PerfDelta &d, double value, int precision)
{
    return d.valid ? profiling::fmtFixed(value, precision) : "n/a";
}

std::string
fmtPerfCount(const profiling::PerfDelta &d, double value)
{
    return d.valid
               ? profiling::fmtCount(static_cast<int64_t>(value))
               : "n/a";
}

void
addBreakdownRow(profiling::Table &table, const BreakdownRow &row)
{
    const kernels::KernelStats &s = row.stats;
    const profiling::PerfDelta &d = s.perf;
    const double secs = s.seconds;
    const double gflops =
        secs > 0.0 ? s.cost.flops / secs * 1e-9 : 0.0;
    const double gbps = secs > 0.0 ? s.cost.bytes / secs * 1e-9 : 0.0;
    table.addRow({row.reorder, row.variant, row.op,
                  profiling::fmtSeconds(secs),
                  profiling::fmtFixed(gflops, 2),
                  profiling::fmtFixed(gbps, 2),
                  profiling::fmtFixed(s.operationalIntensity(), 3),
                  profiling::fmtFixed(s.rooflineFraction() * 100.0, 1) +
                      "%",
                  fmtPerfCount(d, d.cycles()),
                  fmtPerf(d, d.ipc(), 2),
                  fmtPerf(d, d.llcMissRate() * 100.0, 1),
                  fmtPerf(d, d.stalledFraction() * 100.0, 1)});
}

/** The kernel family measured per variant. */
std::vector<BreakdownRow>
measureVariant(const Workload &w, const std::string &reorder,
               kernels::KernelVariant v)
{
    using kernels::KernelStats;
    const std::string variant = kernels::variantName(v);
    const NodeId rows = static_cast<NodeId>(w.x.rows());
    std::vector<BreakdownRow> out;
    auto add = [&](const char *op,
                   std::function<void(KernelStats *)> dispatch) {
        out.push_back({reorder, variant, op, bestOf(dispatch)});
    };
    add("spmm_sum", [&](KernelStats *s) {
        kernels::spmm(w.csc, w.x, kernels::ReduceOp::Sum, nullptr, v,
                      s);
    });
    add("spmm_max", [&](KernelStats *s) {
        kernels::spmm(w.csc, w.x, kernels::ReduceOp::Max, nullptr, v,
                      s);
    });
    add("spmm_scatter", [&](KernelStats *s) {
        kernels::spmmScatter(w.csc, w.x, nullptr, v, s);
    });
    add("sddmm_dot", [&](KernelStats *s) {
        kernels::sddmmDot(w.csc, w.x, w.x, v, s);
    });
    add("gather", [&](KernelStats *s) {
        kernels::gatherRows(w.x, w.coo.src, v, s);
    });
    add("scatter_sum", [&](KernelStats *s) {
        const core::Tensor msgs =
            kernels::gatherRows(w.x, w.coo.src, v);
        kernels::scatterSum(msgs, w.coo.dst, rows, v, s);
    });
    return out;
}

void
addPhaseRow(profiling::Table &table, const std::string &reorder,
            const profiling::PhaseTracker &tracker,
            profiling::Phase p)
{
    const power::ActivitySlice slice = tracker.phase(p);
    const profiling::PerfDelta d = tracker.phasePerf(p);
    table.addRow({reorder, profiling::phaseName(p),
                  profiling::fmtSeconds(slice.cpuBusySeconds),
                  fmtPerfCount(d, d.cycles()),
                  fmtPerf(d, d.ipc(), 2),
                  fmtPerf(d, d.llcMissRate() * 100.0, 1),
                  fmtPerf(d, d.stalledFraction() * 100.0, 1)});
}

void
emitResults(profiling::JsonWriter &w,
            const std::vector<BreakdownRow> &rows)
{
    w.beginArray("results");
    for (const BreakdownRow &row : rows) {
        const kernels::KernelStats &s = row.stats;
        w.beginObject();
        w.value("reorder", row.reorder);
        w.value("variant", row.variant);
        w.value("op", row.op);
        w.value("seconds", s.seconds);
        w.value("flops", s.cost.flops);
        w.value("bytes", s.cost.bytes);
        w.value("intensity", s.operationalIntensity());
        w.value("roofline_fraction", s.rooflineFraction());
        if (s.perf.valid) {
            w.value("perf", "ok");
            w.value("cycles", s.perf.cycles());
            w.value("instructions", s.perf.instructions());
            w.value("ipc", s.perf.ipc());
            w.value("llc_miss_rate", s.perf.llcMissRate());
            w.value("stalled_fraction", s.perf.stalledFraction());
        } else {
            w.value("perf", "unavailable");
        }
        w.endObject();
    }
    w.endArray();
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseOptions(argc, argv, bench::Options{});
    std::printf("=== Ablation: magnifying-glass kernel breakdown "
                "===\n");
    std::printf("perf counters: %s\n",
                profiling::perfStatusLabel());
    const profiling::RooflineCalibration &calib =
        profiling::rooflineCalibration();
    std::printf("roofline: peak %.2f GFLOP/s, bandwidth %.2f GB/s, "
                "ridge %.3f FLOP/B (calibrated in %.0f ms)\n\n",
                calib.peakFlopsPerSec * 1e-9,
                calib.memBandwidthBytesPerSec * 1e-9,
                calib.ridgeIntensity(),
                calib.calibrationSeconds * 1e3);

    const graph::ReorderMethod modes[] = {
        graph::ReorderMethod::None, graph::ReorderMethod::DegreeSort,
        graph::ReorderMethod::Rcm};
    const kernels::KernelVariant variants[] = {
        kernels::KernelVariant::Reference,
        kernels::KernelVariant::Tiled, kernels::KernelVariant::Simd};

    profiling::Table table({"Reorder", "Variant", "Op", "Time",
                            "GFLOP/s", "GB/s", "FLOP/B", "Roof",
                            "Cycles", "IPC", "LLCmiss%", "Stall%"});
    profiling::Table phaseTable({"Reorder", "Phase", "CPU",
                                 "Cycles", "IPC", "LLCmiss%",
                                 "Stall%"});
    std::vector<BreakdownRow> rows;
    std::vector<profiling::RunRecord> runs;

    for (graph::ReorderMethod m : modes) {
        const std::string reorder = graph::reorderMethodName(m);
        device::Session session;
        profiling::PhaseTracker tracker(session);
        std::unique_ptr<Workload> w;
        {
            auto scope =
                tracker.track(profiling::Phase::DataLoading);
            w = std::make_unique<Workload>(opts.scale, opts.seed, m);
        }
        {
            auto scope = tracker.track(profiling::Phase::Training);
            for (kernels::KernelVariant v : variants) {
                auto vr = measureVariant(*w, reorder, v);
                for (auto &row : vr) {
                    addBreakdownRow(table, row);
                    rows.push_back(std::move(row));
                }
            }
        }
        addPhaseRow(phaseTable, reorder, tracker,
                    profiling::Phase::DataLoading);
        addPhaseRow(phaseTable, reorder, tracker,
                    profiling::Phase::Training);
        profiling::RunRecord rec;
        rec.dataset = "rmat";
        rec.config = "reorder=" + reorder;
        for (int p = 0; p < profiling::kNumPhases; ++p)
            rec.phases[static_cast<size_t>(p)] =
                tracker.phase(static_cast<profiling::Phase>(p));
        runs.push_back(std::move(rec));
    }

    table.print();
    std::printf("\n");
    phaseTable.print();
    if (!opts.csvPrefix.empty()) {
        table.writeCsv(opts.csvPrefix + "kernel_breakdown.csv");
        phaseTable.writeCsv(opts.csvPrefix + "phase_breakdown.csv");
    }

    bench::writeJsonReport(
        opts, "ablation_magnifying_glass",
        {{"kernel_breakdown", &table},
         {"phase_breakdown", &phaseTable}},
        std::move(runs), nullptr,
        [&rows](profiling::JsonWriter &w) { emitResults(w, rows); });

    std::printf(
        "\nRoof is the achieved fraction of the measured roofline "
        "ceiling at the\nop's analytic intensity (FLOP-free movement "
        "ops compare bytes/s to the\nbandwidth roof).  Cycles / IPC / "
        "LLCmiss%% / Stall%% come from the PMU\ngroup read around "
        "each dispatch; \"n/a\" means perf_event_open is\n"
        "unavailable here and the JSON rows carry "
        "\"perf\": \"unavailable\".\n");
    return 0;
}
