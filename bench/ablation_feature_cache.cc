/**
 * @file
 * Ablation: partial feature caching on the GPU, the mitigation the
 * paper suggests (Section 4.3, citing Dong et al. KDD'21) between
 * per-batch transfers and full pre-loading.
 *
 * Replays one epoch of GraphSAGE neighbor-sampled gathers through a
 * degree-ordered FeatureCache at several capacities and reports the
 * modeled data-movement time and hit rate.
 */

#include "bench_common.h"
#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/dglx/feature_cache.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/models/pipeline.h"

using namespace gnnbench;

int
main(int argc, char **argv)
{
    bench::Options defaults;
    defaults.scale = 0.25;
    auto opts = bench::parseOptions(argc, argv, defaults);
    bench::banner("Ablation: partial GPU feature caching", opts);

    profiling::Table table({"Dataset", "Cache", "Hit rate",
                            "Movement (modeled)", "vs no-cache"});
    for (const auto &name : opts.datasets) {
        graph::Dataset ds = bench::loadDataset(name, opts);
        dglx::LoadedData dgl = dglx::DataLoader::load(ds);

        // One epoch of sampled input-node sets (fixed across
        // configurations for a fair replay).
        core::Rng rng(opts.seed);
        dglx::NeighborSampler sampler(*dgl.graph, {25, 10},
                                      rng.fork());
        std::vector<std::vector<NodeId>> gathers;
        for (auto &seeds :
             models::makeBatches(dgl.trainIdx, 512, rng))
            gathers.push_back(
                sampler.sample(seeds).inputNodes());

        const uint64_t feat_bytes = dgl.features.bytes();
        double baseline = -1.0;
        for (double frac : {0.0, 0.1, 0.25, 0.5, 1.0}) {
            device::Session session;
            double hit_rate = 0.0;
            if (frac == 0.0) {
                for (const auto &nodes : gathers)
                    session.transfer(nodes.size() *
                                     dgl.features.cols() * 4);
            } else {
                dglx::FeatureCache cache(
                    dgl.graph->inDegrees(), dgl.features.cols(),
                    static_cast<uint64_t>(frac * feat_bytes),
                    session);
                for (const auto &nodes : gathers)
                    cache.gather(nodes);
                hit_rate = cache.totals().hitRate();
            }
            const auto snap = session.snapshot();
            const double movement =
                snap.modeled.xferSeconds + snap.modeled.gpuSeconds;
            if (baseline < 0)
                baseline = movement;
            char label[32];
            std::snprintf(label, sizeof(label), "%.0f%%",
                          frac * 100);
            table.addRow(
                {name, label,
                 profiling::fmtFixed(hit_rate * 100, 1) + "%",
                 profiling::fmtSeconds(movement),
                 profiling::fmtFixed(baseline / movement, 2) +
                     "x"});
        }
    }
    table.print();
    bench::writeJsonReport(opts, "ablation_feature_cache",
                           {{"feature_cache", &table}});
    std::printf(
        "\nExpected shape: movement shrinks monotonically with "
        "cache capacity; even a 25%% cache captures most traffic "
        "on skewed graphs (degree-ordered hits).\n");
    return 0;
}
