/**
 * @file
 * Figure 4: runtime comparison of the three graph samplers (one
 * training epoch each), DGL vs PyG.
 *
 * Paper settings: GraphSAGE neighbor sampler fanouts {25, 10}, batch
 * 512; ClusterGCN 2000 partitions, 50 per batch; GraphSAINT random
 * walks with 3000 roots, length 2.
 *
 * Expected shape (Observation 2): every DGL sampler beats its PyG
 * counterpart; the gap is smallest for the cheap GraphSAINT sampler.
 * Setup columns capture one-time costs (PyG's CSR-to-CSC conversion,
 * the METIS-style partitioning).
 */

#include "bench_common.h"
#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/models/pipeline.h"
#include "gnnbench/pygx/dataloader.h"
#include "gnnbench/pygx/sampler.h"

using namespace gnnbench;

namespace {

struct Measured
{
    double setup = 0.0;
    double epoch = 0.0;
};

/** Virtual seconds elapsed while running fn under the session. */
template <typename F>
double
timed(device::Session &session, F &&fn)
{
    const auto t0 = session.snapshot();
    fn();
    return device::Session::virtualSeconds(t0, session.snapshot());
}

std::vector<std::vector<NodeId>>
seedBatches(NodeId n, int batch, core::Rng &rng)
{
    std::vector<NodeId> all(n);
    for (NodeId i = 0; i < n; ++i)
        all[i] = i;
    return models::makeBatches(all, batch, rng);
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseOptions(argc, argv);
    bench::banner("Figure 4: runtime of graph samplers (one epoch)",
                  opts);

    profiling::Table table({"Dataset", "Sampler", "DGL setup",
                            "DGL epoch", "PyG setup", "PyG epoch",
                            "PyG/DGL"});

    for (const auto &name : opts.datasets) {
        graph::Dataset ds = bench::loadDataset(name, opts);
        dglx::LoadedData dgl = dglx::DataLoader::load(ds);
        pygx::LoadedData pyg = pygx::DataLoader::load(ds);
        const NodeId n = ds.numNodes();
        const int32_t parts = std::min<int32_t>(2000, n / 2);
        const int32_t per_batch = std::min<int32_t>(50, parts);
        const int32_t roots = std::min<int32_t>(3000, n / 4);
        const int saint_batches =
            models::saintBatchesPerEpoch(n, roots, 2);

        // ---- GraphSAGE neighbor sampler ----
        {
            Measured d, p;
            {
                device::Session s;
                std::unique_ptr<dglx::NeighborSampler> sampler;
                d.setup = timed(s, [&] {
                    sampler =
                        std::make_unique<dglx::NeighborSampler>(
                            *dgl.graph,
                            std::vector<int>{25, 10},
                            core::Rng(opts.seed));
                });
                core::Rng brng(opts.seed + 1);
                auto batches = seedBatches(n, 512, brng);
                d.epoch = timed(s, [&] {
                    for (auto &b : batches)
                        sampler->sample(b);
                });
            }
            {
                device::Session s;
                std::unique_ptr<pygx::NeighborSampler> sampler;
                p.setup = timed(s, [&] {
                    sampler =
                        std::make_unique<pygx::NeighborSampler>(
                            *pyg.data, std::vector<int>{25, 10},
                            core::Rng(opts.seed), &s);
                });
                core::Rng brng(opts.seed + 1);
                auto batches = seedBatches(n, 512, brng);
                p.epoch = timed(s, [&] {
                    for (auto &b : batches)
                        sampler->sample(b);
                });
            }
            table.addRow({name, "GraphSAGE",
                          profiling::fmtSeconds(d.setup),
                          profiling::fmtSeconds(d.epoch),
                          profiling::fmtSeconds(p.setup),
                          profiling::fmtSeconds(p.epoch),
                          profiling::fmtFixed(p.epoch / d.epoch, 2) +
                              "x"});
        }

        // ---- ClusterGCN sampler ----
        {
            Measured d, p;
            const int batches = std::max(1, parts / per_batch);
            {
                device::Session s;
                std::unique_ptr<dglx::ClusterSampler> sampler;
                d.setup = timed(s, [&] {
                    sampler = std::make_unique<dglx::ClusterSampler>(
                        *dgl.graph, parts, core::Rng(opts.seed));
                });
                d.epoch = timed(s, [&] {
                    for (int b = 0; b < batches; ++b)
                        sampler->sample(per_batch);
                });
            }
            {
                device::Session s;
                std::unique_ptr<pygx::ClusterSampler> sampler;
                p.setup = timed(s, [&] {
                    sampler = std::make_unique<pygx::ClusterSampler>(
                        *pyg.data, parts, core::Rng(opts.seed), &s);
                });
                p.epoch = timed(s, [&] {
                    for (int b = 0; b < batches; ++b)
                        sampler->sample(per_batch);
                });
            }
            table.addRow({name, "ClusterGCN",
                          profiling::fmtSeconds(d.setup),
                          profiling::fmtSeconds(d.epoch),
                          profiling::fmtSeconds(p.setup),
                          profiling::fmtSeconds(p.epoch),
                          profiling::fmtFixed(p.epoch / d.epoch, 2) +
                              "x"});
        }

        // ---- GraphSAINT random-walk sampler ----
        {
            Measured d, p;
            {
                device::Session s;
                std::unique_ptr<dglx::SaintRwSampler> sampler;
                d.setup = timed(s, [&] {
                    sampler = std::make_unique<dglx::SaintRwSampler>(
                        *dgl.graph, roots, 2, core::Rng(opts.seed));
                });
                d.epoch = timed(s, [&] {
                    for (int b = 0; b < saint_batches; ++b)
                        sampler->sample();
                });
            }
            {
                device::Session s;
                std::unique_ptr<pygx::SaintRwSampler> sampler;
                p.setup = timed(s, [&] {
                    sampler = std::make_unique<pygx::SaintRwSampler>(
                        *pyg.data, roots, 2, core::Rng(opts.seed),
                        &s);
                });
                p.epoch = timed(s, [&] {
                    for (int b = 0; b < saint_batches; ++b)
                        sampler->sample();
                });
            }
            table.addRow({name, "GraphSAINT",
                          profiling::fmtSeconds(d.setup),
                          profiling::fmtSeconds(d.epoch),
                          profiling::fmtSeconds(p.setup),
                          profiling::fmtSeconds(p.epoch),
                          profiling::fmtFixed(p.epoch / d.epoch, 2) +
                              "x"});
        }
    }
    table.print();
    bench::writeJsonReport(opts, "fig04_samplers",
                           {{"sampler_runtime", &table}});
    std::printf(
        "\nExpected shape: PyG/DGL > 1 for every sampler; smallest "
        "gap for GraphSAINT (Observation 2).\n");
    return 0;
}
