/**
 * @file
 * Latency-SLO serving benchmark: drives the multi-tenant inference
 * server with a synthetic load generator and reports the
 * serving-efficiency figures of merit — per-tenant p50/p95/p99
 * latency, sustained QPS, the micro-batch size distribution, shed and
 * deadline-miss counts.  Halfway through the measured run a new
 * weight version is hot-swapped in under load, so the numbers cover
 * the snapshot-isolated publish path, not just steady state.
 *
 * With --json the unified run report carries a top-level "results"
 * array of gate rows (sustained QPS with a floor, p99 with a
 * ceiling), consumed by scripts/check_bench_regression.py --mode
 * serve against BENCH_serve.json.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/graph/datasets.h"
#include "gnnbench/profiling/exporter.h"
#include "gnnbench/profiling/metrics_registry.h"
#include "gnnbench/profiling/report.h"
#include "gnnbench/profiling/trace.h"
#include "gnnbench/serve/loadgen.h"
#include "gnnbench/serve/server.h"

using namespace gnnbench;

namespace {

struct ServeBenchOptions
{
    std::string dataset = "ppi";
    double scale = 1.0;
    int64_t requests = 2000;
    int64_t warmup = 200;
    int hidden = 64;
    uint64_t seed = 42;
    std::string jsonPath;
    /** OpenMetrics listener port (-1 off, 0 ephemeral). */
    int metricsPort = -1;
    /** OpenMetrics text dump written after the run. */
    std::string metricsDumpPath;
    serve::ServeConfig serveCfg;
    serve::LoadGenConfig loadCfg;
    /** Gate thresholds embedded in the --json result rows. */
    double qpsFloor = 200.0;
    double p99CeilingMs = 45.0;
};

int64_t
parsePositiveCount(const std::string &arg, const std::string &value)
{
    size_t end = 0;
    int64_t v = 0;
    try {
        v = std::stoll(value, &end);
    } catch (...) {
        end = 0;
    }
    GNNBENCH_CHECK(end == value.size() && v > 0,
                   arg, " must be a positive integer, got '", value,
                   "'");
    return v;
}

double
parsePositiveNumber(const std::string &arg, const std::string &value)
{
    size_t end = 0;
    double v = 0.0;
    try {
        v = std::stod(value, &end);
    } catch (...) {
        end = 0;
    }
    GNNBENCH_CHECK(end == value.size() && v > 0.0,
                   arg, " must be a positive number, got '", value,
                   "'");
    return v;
}

ServeBenchOptions
parseOptions(int argc, char **argv)
{
    ServeBenchOptions opts;
    // Env overrides first, CLI flags second: a flag wins over the
    // environment, and both paths validate eagerly and fatally.
    opts.serveCfg = serve::applyServeEnv(opts.serveCfg);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            GNNBENCH_CHECK(i + 1 < argc, "missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--dataset") {
            opts.dataset = next();
        } else if (arg == "--scale") {
            opts.scale = parsePositiveNumber(arg, next());
        } else if (arg == "--requests") {
            opts.requests = parsePositiveCount(arg, next());
        } else if (arg == "--warmup") {
            opts.warmup = parsePositiveCount(arg, next());
        } else if (arg == "--hidden") {
            opts.hidden =
                static_cast<int>(parsePositiveCount(arg, next()));
        } else if (arg == "--seed") {
            opts.seed = std::stoull(next());
        } else if (arg == "--json") {
            opts.jsonPath = next();
        } else if (arg == "--metrics-port") {
            opts.metricsPort =
                static_cast<int>(std::stoll(next()));
            GNNBENCH_CHECK(opts.metricsPort >= 0 &&
                               opts.metricsPort <= 65535,
                           "--metrics-port must be in [0, 65535]");
        } else if (arg == "--metrics-dump") {
            opts.metricsDumpPath = next();
        } else if (arg == "--tenants") {
            opts.loadCfg.tenants =
                static_cast<int>(parsePositiveCount(arg, next()));
        } else if (arg == "--target-qps") {
            opts.loadCfg.targetQps =
                parsePositiveNumber(arg, next());
        } else if (arg == "--clients") {
            opts.loadCfg.closedLoopClients =
                static_cast<int>(parsePositiveCount(arg, next()));
        } else if (arg == "--arrival") {
            const std::string v = next();
            GNNBENCH_CHECK(
                serve::parseArrival(v, &opts.loadCfg.arrival),
                "--arrival must be one of ",
                serve::validArrivalList(), ", got ", v);
        } else if (arg == "--workers") {
            opts.serveCfg.workers =
                static_cast<int>(parsePositiveCount(arg, next()));
        } else if (arg == "--max-batch") {
            opts.serveCfg.maxBatch =
                static_cast<int>(parsePositiveCount(arg, next()));
        } else if (arg == "--queue-depth") {
            opts.serveCfg.queueDepth =
                static_cast<int>(parsePositiveCount(arg, next()));
        } else if (arg == "--slo-ms") {
            opts.serveCfg.sloSeconds =
                parsePositiveNumber(arg, next()) * 1e-3;
        } else if (arg == "--qps-floor") {
            opts.qpsFloor = parsePositiveNumber(arg, next());
        } else if (arg == "--p99-ceiling-ms") {
            opts.p99CeilingMs = parsePositiveNumber(arg, next());
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--dataset name] [--scale f] "
                "[--requests n] [--warmup n] [--hidden n] "
                "[--seed s] [--json path] [--tenants n] "
                "[--target-qps q] [--clients n] "
                "[--arrival %s] [--workers n] [--max-batch n] "
                "[--queue-depth n] [--slo-ms x] [--qps-floor q] "
                "[--p99-ceiling-ms x] [--metrics-port p] "
                "[--metrics-dump path]\n",
                argv[0], serve::validArrivalList());
            std::exit(0);
        } else {
            GNNBENCH_CHECK(false, "unknown argument ", arg);
        }
    }
    opts.loadCfg.requests = opts.requests;
    opts.serveCfg.seed = opts.seed;
    opts.loadCfg.seed = opts.seed ^ 0x10adceedULL;
    if (!opts.jsonPath.empty())
        profiling::TraceRecorder::global().enable();
    if (opts.metricsPort >= 0) {
        // Lives for the whole process so mid-run scrapes see the
        // collector's live SLO gauges; a failed bind only warns.
        static profiling::MetricsHttpServer server(
            profiling::MetricsRegistry::global(), opts.metricsPort);
        if (server.ok())
            std::printf("serving OpenMetrics on 127.0.0.1:%d\n",
                        server.port());
        else
            std::fprintf(stderr,
                         "warning: --metrics-port %d bind failed; "
                         "continuing without the listener\n",
                         opts.metricsPort);
    }
    return opts;
}

/** Sorted latencies (seconds) of one response subset. */
std::vector<double>
sortedLatencies(const std::vector<serve::Response> &responses,
                int32_t tenant /* -1 = all */)
{
    std::vector<double> out;
    for (const auto &r : responses)
        if (tenant < 0 || r.tenant == tenant)
            out.push_back(r.latency());
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const ServeBenchOptions opts = parseOptions(argc, argv);

    std::printf("=== serve_throughput ===\n");
    std::printf("dataset %s (scale x%.3g), %lld requests "
                "(+%lld warmup), arrival %s",
                opts.dataset.c_str(), opts.scale,
                static_cast<long long>(opts.requests),
                static_cast<long long>(opts.warmup),
                serve::arrivalName(opts.loadCfg.arrival));
    if (opts.loadCfg.arrival == serve::Arrival::Poisson)
        std::printf(" @ %.0f qps", opts.loadCfg.targetQps);
    else
        std::printf(" x %d clients", opts.loadCfg.closedLoopClients);
    std::printf(", %d tenants, %d workers, max batch %d, "
                "SLO %.1f ms\n\n",
                opts.loadCfg.tenants, opts.serveCfg.workers,
                opts.serveCfg.maxBatch,
                opts.serveCfg.sloSeconds * 1e3);

    graph::Dataset ds =
        graph::loadDataset(opts.dataset, opts.scale, opts.seed);
    dglx::LoadedData data = dglx::DataLoader::load(ds);
    const serve::RealClock clock;
    serve::Server server(data, opts.serveCfg, clock);
    server.publish(serve::makeSageWeights(
        data.features.cols(), opts.hidden, ds.info.numClasses,
        opts.seed));

    // Warmup: same arrival process, results discarded.
    {
        serve::LoadGenConfig warm = opts.loadCfg;
        warm.requests = opts.warmup;
        serve::runLoadGen(server, warm, clock);
        server.drain();
        server.takeResponses();
    }

    // Measured run, with a weight hot-swap published under load at
    // the halfway mark (a swapper thread watches completion count).
    const uint64_t warmupAdmitted = server.admitted();
    std::atomic<bool> stopSwapper{false};
    std::atomic<uint64_t> swapVersion{0};
    std::thread swapper([&] {
        const uint64_t half =
            warmupAdmitted + static_cast<uint64_t>(opts.requests) / 2;
        while (!stopSwapper.load() && server.completed() < half)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        if (stopSwapper.load())
            return;
        swapVersion.store(server.publish(serve::makeSageWeights(
            data.features.cols(), opts.hidden, ds.info.numClasses,
            opts.seed + 1)));
    });

    const double t0 = clock.now();
    const serve::LoadGenResult gen =
        serve::runLoadGen(server, opts.loadCfg, clock);
    server.drain();
    stopSwapper.store(true);
    swapper.join();
    const double t1 = clock.now();
    std::vector<serve::Response> responses = server.takeResponses();
    server.shutdown();

    const double elapsed = t1 - t0;
    const double qps =
        elapsed > 0.0 ? static_cast<double>(responses.size()) / elapsed
                      : 0.0;

    // Per-tenant latency percentiles.
    profiling::Table latency({"tenant", "requests", "p50 ms",
                              "p95 ms", "p99 ms", "miss %"});
    profiling::LatencySummary overall{};
    {
        const std::vector<double> all = sortedLatencies(responses, -1);
        if (!all.empty())
            overall = profiling::latencySummary(all);
        for (int32_t t = 0; t < opts.loadCfg.tenants; ++t) {
            const std::vector<double> lat =
                sortedLatencies(responses, t);
            if (lat.empty())
                continue;
            int64_t misses = 0;
            for (const auto &r : responses)
                if (r.tenant == t && r.missedDeadline())
                    ++misses;
            const auto s = profiling::latencySummary(lat);
            latency.addRow(
                {std::to_string(t),
                 std::to_string(lat.size()),
                 profiling::fmtFixed(s.p50 * 1e3, 2),
                 profiling::fmtFixed(s.p95 * 1e3, 2),
                 profiling::fmtFixed(s.p99 * 1e3, 2),
                 profiling::fmtFixed(
                     100.0 * static_cast<double>(misses) /
                         static_cast<double>(lat.size()),
                     1)});
        }
        latency.addRow({"all", std::to_string(all.size()),
                        profiling::fmtFixed(overall.p50 * 1e3, 2),
                        profiling::fmtFixed(overall.p95 * 1e3, 2),
                        profiling::fmtFixed(overall.p99 * 1e3, 2),
                        ""});
    }
    latency.print();
    std::printf("\n");

    // Micro-batch size distribution (one entry per formed batch).
    profiling::Table batches({"batch size", "batches", "requests"});
    {
        std::map<int, int64_t> sizeCounts;
        std::map<uint64_t, int> batchSize;
        for (const auto &r : responses)
            batchSize[r.batchId] = r.batchSize;
        for (const auto &[id, size] : batchSize)
            ++sizeCounts[size];
        for (const auto &[size, count] : sizeCounts)
            batches.addRow({std::to_string(size),
                            std::to_string(count),
                            std::to_string(size * count)});
    }
    batches.print();
    std::printf("\n");

    int64_t misses = 0;
    std::map<uint64_t, int64_t> byVersion;
    for (const auto &r : responses) {
        if (r.missedDeadline())
            ++misses;
        ++byVersion[r.weightVersion];
    }
    profiling::Table summary({"metric", "value"});
    summary.addRow({"sustained qps", profiling::fmtFixed(qps, 1)});
    summary.addRow({"completed",
                    std::to_string(responses.size())});
    summary.addRow({"shed", std::to_string(gen.shed)});
    summary.addRow({"deadline misses", std::to_string(misses)});
    summary.addRow({"queue peak depth",
                    std::to_string(server.queuePeakDepth())});
    summary.addRow({"hot-swap version",
                    std::to_string(swapVersion.load())});
    for (const auto &[v, n] : byVersion)
        summary.addRow({"served by v" + std::to_string(v),
                        std::to_string(n)});
    summary.print();

    if (!opts.metricsDumpPath.empty()) {
        profiling::writeOpenMetricsFile(
            opts.metricsDumpPath,
            profiling::MetricsRegistry::global());
        std::printf("wrote OpenMetrics dump to %s\n",
                    opts.metricsDumpPath.c_str());
    }

    if (!opts.jsonPath.empty()) {
        profiling::RunReportContext ctx;
        ctx.benchName = "serve_throughput";
        ctx.options = {
            {"dataset", opts.dataset},
            {"scale", std::to_string(opts.scale)},
            {"requests", std::to_string(opts.requests)},
            {"warmup", std::to_string(opts.warmup)},
            {"arrival",
             serve::arrivalName(opts.loadCfg.arrival)},
            {"target_qps", std::to_string(opts.loadCfg.targetQps)},
            {"tenants", std::to_string(opts.loadCfg.tenants)},
            {"workers", std::to_string(opts.serveCfg.workers)},
            {"max_batch", std::to_string(opts.serveCfg.maxBatch)},
            {"slo_ms",
             std::to_string(opts.serveCfg.sloSeconds * 1e3)},
            {"hidden", std::to_string(opts.hidden)},
            {"seed", std::to_string(opts.seed)},
        };
        ctx.tables = {{"latency", &latency},
                      {"batch_sizes", &batches},
                      {"summary", &summary}};
        ctx.trace = &profiling::TraceRecorder::global();
        ctx.metrics = &profiling::MetricsRegistry::global();
        const double shedCount = static_cast<double>(gen.shed);
        const double missCount = static_cast<double>(misses);
        ctx.resultsEmitter = [&](profiling::JsonWriter &w) {
            auto row = [&](const char *op, double value) {
                w.beginObject();
                w.value("variant", "serve");
                w.value("op", op);
                w.value("value", value);
                w.value("no_regress", true);
                return &w;
            };
            w.beginArray("results");
            row("qps", qps);
            w.value("floor", opts.qpsFloor);
            w.endObject();
            row("p99_ms", overall.p99 * 1e3);
            w.value("ceiling", opts.p99CeilingMs);
            w.endObject();
            row("p50_ms", overall.p50 * 1e3);
            w.endObject();
            row("p95_ms", overall.p95 * 1e3);
            w.endObject();
            row("shed", shedCount);
            w.endObject();
            row("deadline_misses", missCount);
            w.endObject();
            w.endArray();
        };
        profiling::writeRunReport(opts.jsonPath, ctx);
        std::printf("\nrun report written to %s\n",
                    opts.jsonPath.c_str());
    }
    return 0;
}
