/**
 * @file
 * google-benchmark micro-benchmarks of the kernel-level claims:
 *  - dglx fused g-SpMM vs pygx torch_sparse-style SpMM vs pygx
 *    gather+scatter composition (the CPU-kernel gap of Obs. 2/3);
 *  - dglx counting-sort format conversion vs pygx torch.sort-style
 *    conversion (the CSC-conversion cost of Obs. 2);
 *  - the dense GEMM both frameworks share.
 *
 * With `--json <path>` the binary instead runs the kernel-variant
 * comparison: Reference vs Tiled vs Simd SpMM on the fig05 conv-layer
 * aggregation workload (full-graph reduce at hidden width 256), per
 * reduce op, verifying bit-equal outputs and reporting each optimized
 * variant's speedup at `--threads` (default 4) virtual threads plus
 * its effective GB/s and nnz/s.  Timing uses per-chunk thread-CPU
 * seconds (kernels::KernelStats) list-scheduled onto the virtual
 * threads, so the measured parallel speedup is meaningful even on a
 * single-core machine.  `--reorder {none,rcm,degree}` applies the
 * graph::reorder locality pass to the workload first; the JSON mode
 * additionally measures the single-thread reordering win (best of
 * rcm/degree vs the unordered graph).  The JSON record is what
 * scripts/check_bench_regression.py appends to BENCH_kernels.json;
 * per-row `floor` fields carry the gate each row must clear.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "gnnbench/dglx/kernels.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/graph/convert.h"
#include "gnnbench/graph/generate.h"
#include "gnnbench/graph/reorder.h"
#include "gnnbench/kernels/kernels.h"
#include "gnnbench/profiling/json_writer.h"
#include "gnnbench/pygx/sampler.h"
#include "gnnbench/pygx/scatter.h"

using namespace gnnbench;

namespace {

struct Workload
{
    graph::CooGraph coo;
    graph::CsrGraph csc;
    core::Tensor x;

    Workload(NodeId n, EdgeId m, int64_t f)
    {
        core::Rng rng(7);
        coo = graph::symmetrize(graph::rmat(n, m, rng), false);
        csc = graph::cooToCsc(coo);
        x = core::Tensor::randn(n, f, rng);
    }
};

Workload &
workload()
{
    static Workload w(20000, 120000, 64);
    return w;
}

void
BM_DglxFusedSpmm(benchmark::State &state)
{
    auto &w = workload();
    dglx::KernelCtx ctx;
    for (auto _ : state) {
        auto y = dglx::gspmm(w.csc, w.x, dglx::Reducer::Sum,
                             nullptr, ctx);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetBytesProcessed(state.iterations() * 4 *
                            w.csc.numEdges() * w.x.cols());
}
BENCHMARK(BM_DglxFusedSpmm);

void
BM_PygxTorchSparseSpmm(benchmark::State &state)
{
    auto &w = workload();
    pygx::KernelCtx ctx;
    for (auto _ : state) {
        auto y = pygx::spmm(w.csc, w.x, nullptr, ctx);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetBytesProcessed(state.iterations() * 4 *
                            w.csc.numEdges() * w.x.cols());
}
BENCHMARK(BM_PygxTorchSparseSpmm);

void
BM_PygxGatherScatter(benchmark::State &state)
{
    auto &w = workload();
    pygx::KernelCtx ctx;
    for (auto _ : state) {
        auto msgs = pygx::gather(w.x, w.coo.src, ctx);
        auto y = pygx::scatterSum(
            msgs, w.coo.dst,
            static_cast<NodeId>(w.x.rows()), ctx);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetBytesProcessed(state.iterations() * 12 *
                            w.csc.numEdges() * w.x.cols());
}
BENCHMARK(BM_PygxGatherScatter);

void
BM_DglxCountingSortCsc(benchmark::State &state)
{
    auto &w = workload();
    for (auto _ : state) {
        auto csc = graph::cooToCsc(w.coo);
        benchmark::DoNotOptimize(csc.indices.data());
    }
}
BENCHMARK(BM_DglxCountingSortCsc);

void
BM_PygxSortConversionCsc(benchmark::State &state)
{
    auto &w = workload();
    for (auto _ : state) {
        pygx::Data data(w.coo);
        benchmark::DoNotOptimize(&data.csc());
    }
}
BENCHMARK(BM_PygxSortConversionCsc);

void
BM_SharedDenseGemm(benchmark::State &state)
{
    core::Rng rng(9);
    core::Tensor a = core::Tensor::randn(2048, 256, rng);
    core::Tensor b = core::Tensor::randn(256, 256, rng);
    for (auto _ : state) {
        auto c = core::ops::matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * 2048 * 256 *
                            256);
}
BENCHMARK(BM_SharedDenseGemm);

void
BM_DglxNeighborSampleBatch(benchmark::State &state)
{
    auto &w = workload();
    dglx::Graph g(w.coo);
    dglx::NeighborSampler sampler(g, {25, 10}, core::Rng(11));
    std::vector<NodeId> seeds(512);
    for (NodeId i = 0; i < 512; ++i)
        seeds[i] = i;
    for (auto _ : state) {
        auto smp = sampler.sample(seeds);
        benchmark::DoNotOptimize(smp.blocks[0].srcNodes.data());
    }
}
BENCHMARK(BM_DglxNeighborSampleBatch);

void
BM_PygxNeighborSampleBatch(benchmark::State &state)
{
    auto &w = workload();
    pygx::Data data(w.coo);
    pygx::NeighborSampler sampler(data, {25, 10}, core::Rng(11),
                                  nullptr);
    std::vector<NodeId> seeds(512);
    for (NodeId i = 0; i < 512; ++i)
        seeds[i] = i;
    for (auto _ : state) {
        auto smp = sampler.sample(seeds);
        benchmark::DoNotOptimize(smp.layers[0].srcNodes.data());
    }
}
BENCHMARK(BM_PygxNeighborSampleBatch);

// ---------------------------------------------------------------
// Kernel-variant comparison mode (--json)
// ---------------------------------------------------------------

/** Best-of-N timing estimate.  On a shared single-core box the noise
 *  is one-sided (interference only ever slows a run down), so the
 *  minimum is the most stable estimator of the true cost. */
double
minOf(const std::vector<double> &v)
{
    return *std::min_element(v.begin(), v.end());
}

/**
 * Makespan of the chunk CPU-seconds list-scheduled onto @p t virtual
 * threads: chunks are assigned in dispatch order to the least-loaded
 * thread, mirroring the dynamic chunk scheduling of
 * core::parallelForChunks.
 */
double
criticalPath(const std::vector<double> &chunks, int t)
{
    std::vector<double> load(static_cast<size_t>(t), 0.0);
    for (double c : chunks)
        *std::min_element(load.begin(), load.end()) += c;
    return *std::max_element(load.begin(), load.end());
}

bool
bitsEqual(const core::Tensor &a, const core::Tensor &b)
{
    return a.sameShape(b) &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

/** Per-(variant, op) comparison row against the Reference kernel. */
struct VariantRow
{
    const char *variant;
    const char *op;
    double floor; // speedup gate carried into BENCH_kernels.json
    double refSeconds;
    double workSeconds;
    double criticalPath;
    size_t chunks;
    double speedup;
    double gbps;    // modeled traffic / critical-path seconds
    double nnzPerS; // stored edges / critical-path seconds
    bool bitExact;
};

/** Single-thread locality win of one reordering method. */
struct ReorderRow
{
    const char *method;
    double baseSeconds; // unordered graph, 1 thread
    double reordSeconds;
    double speedup;
    double bwBefore;
    double bwAfter;
};

/** Work seconds (sum of chunk thread-CPU seconds) of one spmm run
 *  with @p variant at one thread. */
double
workSeconds(const graph::CsrGraph &adj, const core::Tensor &x,
            kernels::ReduceOp op, kernels::KernelVariant v)
{
    kernels::KernelStats s;
    kernels::spmm(adj, x, op, nullptr, v, &s);
    return std::accumulate(s.chunkSeconds.begin(),
                           s.chunkSeconds.end(), 0.0);
}

int
runVariantComparison(const std::string &json_path, int threads,
                     int repeats, graph::ReorderMethod reorder)
{
    // Speedup gates (vs Reference at `threads` virtual threads)
    // enforced by scripts/check_bench_regression.py via the per-row
    // `floor` field.  Simd lands register-blocked vectorized inner
    // loops on top of the Tiled decomposition, hence the higher bar.
    constexpr double kTiledFloor = 1.5;
    constexpr double kSimdFloor = 6.0;
    constexpr double kReorderFloor = 1.0;

    // The fig05 conv-layer aggregation: one full-graph neighborhood
    // reduce at the figure's hidden width (256) over the micro-bench
    // RMAT graph.
    constexpr int64_t kFeat = 256;
    core::Rng rng(7);
    graph::CooGraph coo =
        graph::symmetrize(graph::rmat(20000, 120000, rng), false);
    graph::CsrGraph csc = graph::cooToCsc(coo);
    if (reorder != graph::ReorderMethod::None)
        csc = graph::applyReordering(
            csc, graph::computeReordering(csc, reorder));
    core::Tensor x = core::Tensor::randn(csc.numCols, kFeat, rng);

    std::printf("=== kernel variant comparison "
                "(fig05 aggregation, n=%d, e=%lld, f=%lld, "
                "reorder=%s, %d virtual threads, best of %d) ===\n",
                csc.numRows, static_cast<long long>(csc.numEdges()),
                static_cast<long long>(kFeat),
                graph::reorderMethodName(reorder), threads, repeats);

    const kernels::ReduceOp ops[] = {kernels::ReduceOp::Sum,
                                     kernels::ReduceOp::Mean,
                                     kernels::ReduceOp::Max};
    const struct
    {
        kernels::KernelVariant v;
        double floor;
    } variants[] = {{kernels::KernelVariant::Tiled, kTiledFloor},
                    {kernels::KernelVariant::Simd, kSimdFloor}};

    // Modeled memory traffic, matching the kernel layer's noteCall
    // accounting: one x-row read per stored edge + the output write.
    const double bytes =
        static_cast<double>(csc.numEdges()) * kFeat * 4 +
        static_cast<double>(csc.numRows) * kFeat * 4;

    std::vector<VariantRow> rows;
    for (kernels::ReduceOp op : ops) {
        core::Tensor ref = kernels::spmm(
            csc, x, op, nullptr, kernels::KernelVariant::Reference);
        std::vector<double> refs;
        for (int r = 0; r < repeats; ++r) {
            kernels::KernelStats rs;
            kernels::spmm(csc, x, op, nullptr,
                          kernels::KernelVariant::Reference, &rs);
            refs.push_back(std::accumulate(rs.chunkSeconds.begin(),
                                           rs.chunkSeconds.end(),
                                           0.0));
        }
        const double refSeconds = minOf(refs);

        for (const auto &var : variants) {
            core::Tensor opt = kernels::spmm(csc, x, op, nullptr,
                                             var.v);
            const bool bits = bitsEqual(ref, opt);
            std::vector<double> works, crits;
            size_t chunks = 0;
            for (int r = 0; r < repeats; ++r) {
                kernels::KernelStats ts;
                kernels::spmm(csc, x, op, nullptr, var.v, &ts);
                works.push_back(
                    std::accumulate(ts.chunkSeconds.begin(),
                                    ts.chunkSeconds.end(), 0.0));
                crits.push_back(
                    criticalPath(ts.chunkSeconds, threads));
                chunks = ts.chunkSeconds.size();
            }
            VariantRow row;
            row.variant = kernels::variantName(var.v);
            row.op = kernels::reduceOpName(op);
            row.floor = var.floor;
            row.refSeconds = refSeconds;
            row.workSeconds = minOf(works);
            row.criticalPath = minOf(crits);
            row.chunks = chunks;
            row.speedup = row.refSeconds / row.criticalPath;
            row.gbps = bytes / row.criticalPath * 1e-9;
            row.nnzPerS = static_cast<double>(csc.numEdges()) /
                          row.criticalPath;
            row.bitExact = bits;
            rows.push_back(row);
            std::printf(
                "  spmm %-4s %-5s  reference %.4fs  work %.4fs "
                "(%zu chunks)  critical path@%d %.4fs  "
                "speedup %.2fx (floor %.1fx)  %.2f GB/s  "
                "%.2fM nnz/s  bit_exact=%s\n",
                row.op, row.variant, row.refSeconds, row.workSeconds,
                row.chunks, threads, row.criticalPath, row.speedup,
                row.floor, row.gbps, row.nnzPerS * 1e-6,
                row.bitExact ? "yes" : "NO");
        }
    }

    // Single-thread locality win: Auto-variant SpMM-sum on the
    // unordered vs reordered graph.  Only the best method is gated
    // (floor 1.0, no_regress): which method wins is workload- and
    // machine-dependent, so individual methods are informational.
    // Base and reordered runs are INTERLEAVED and scored best-of-N:
    // on a shared 1-core box, frequency drift and cache-warmth swings
    // between two back-to-back measurement blocks easily exceed the
    // ~10-20% locality effect, while min-of-interleaved pairs cancels
    // the drift.
    core::Rng rngRaw(7);
    const graph::CooGraph cooRaw = graph::symmetrize(
        graph::rmat(20000, 120000, rngRaw), false);
    graph::CsrGraph cscRaw = graph::cooToCsc(cooRaw);
    const double bwBefore = graph::averageBandwidth(cscRaw);
    const int reorderReps = repeats * 3;

    const graph::ReorderMethod methods[] = {
        graph::ReorderMethod::Rcm, graph::ReorderMethod::DegreeSort};
    std::vector<ReorderRow> reorderRows;
    const ReorderRow *best = nullptr;
    for (graph::ReorderMethod m : methods) {
        const graph::Reordering ro =
            graph::computeReordering(cscRaw, m);
        const graph::CsrGraph relabeled =
            graph::applyReordering(cscRaw, ro);
        const core::Tensor xp = graph::permuteRows(x, ro);
        double minBase = 0.0, minReord = 0.0;
        for (int r = 0; r < reorderReps; ++r) {
            const double b = workSeconds(cscRaw, x,
                                         kernels::ReduceOp::Sum,
                                         kernels::KernelVariant::Auto);
            const double t = workSeconds(relabeled, xp,
                                         kernels::ReduceOp::Sum,
                                         kernels::KernelVariant::Auto);
            if (r == 0 || b < minBase)
                minBase = b;
            if (r == 0 || t < minReord)
                minReord = t;
        }
        ReorderRow row;
        row.method = graph::reorderMethodName(m);
        row.baseSeconds = minBase;
        row.reordSeconds = minReord;
        row.speedup = row.baseSeconds / row.reordSeconds;
        row.bwBefore = bwBefore;
        row.bwAfter = graph::averageBandwidth(relabeled);
        reorderRows.push_back(row);
        std::printf("  reorder %-6s  1-thread spmm sum "
                    "%.4fs -> %.4fs  speedup %.2fx  "
                    "avg bandwidth %.0f -> %.0f\n",
                    row.method, row.baseSeconds, row.reordSeconds,
                    row.speedup, row.bwBefore, row.bwAfter);
    }
    for (const ReorderRow &row : reorderRows)
        if (!best || row.speedup > best->speedup)
            best = &row;

    std::ofstream out(json_path);
    GNNBENCH_CHECK(out.good(), "cannot open ", json_path);
    profiling::JsonWriter w(out);
    w.beginObject();
    w.value("bench", "micro_kernels");
    w.value("mode", "kernel_variants");
    w.value("workload", "fig05_conv_aggregation");
    w.value("nodes", static_cast<int64_t>(csc.numRows));
    w.value("edges", static_cast<int64_t>(csc.numEdges()));
    w.value("feat", kFeat);
    w.value("threads", threads);
    w.value("repeats", repeats);
    w.value("reorder", graph::reorderMethodName(reorder));
    // The dispatch policy's actual large-problem choice (post-Auto,
    // post-CPU-feature detection), e.g. "simd[avx2]".
    w.value("kernel_variant_resolved",
            kernels::resolvedVariantLabel());
    w.beginArray("results");
    for (const VariantRow &row : rows) {
        w.beginObject();
        w.value("variant", row.variant);
        w.value("op", row.op);
        w.value("floor", row.floor);
        w.value("reference_seconds", row.refSeconds);
        w.value("work_seconds", row.workSeconds);
        w.value("critical_path_seconds", row.criticalPath);
        w.value("chunks", static_cast<int64_t>(row.chunks));
        w.value("speedup", row.speedup);
        w.value("gbps", row.gbps);
        w.value("nnz_per_s", row.nnzPerS);
        w.value("bit_exact", row.bitExact);
        w.endObject();
    }
    for (const ReorderRow &row : reorderRows) {
        w.beginObject();
        w.value("variant", "reorder");
        w.value("op", "sum");
        w.value("method", row.method);
        if (best == &row) {
            w.value("floor", kReorderFloor);
            w.value("no_regress", true);
        }
        w.value("baseline_seconds", row.baseSeconds);
        w.value("reordered_seconds", row.reordSeconds);
        w.value("speedup", row.speedup);
        w.value("avg_bandwidth_before", row.bwBefore);
        w.value("avg_bandwidth_after", row.bwAfter);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    out << "\n";
    out.close();
    std::printf("variant comparison written to %s\n",
                json_path.c_str());

    bool ok = true;
    for (const VariantRow &row : rows)
        ok = ok && row.bitExact;
    if (!ok)
        std::fprintf(stderr,
                     "FAIL: an optimized variant diverges from the "
                     "reference golden model\n");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    int threads = 4;
    int repeats = 5;
    graph::ReorderMethod reorder = graph::ReorderMethod::None;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            GNNBENCH_CHECK(i + 1 < argc, "missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--json")
            json_path = next();
        else if (arg == "--threads")
            threads = std::stoi(next());
        else if (arg == "--repeats")
            repeats = std::stoi(next());
        else if (arg == "--reorder") {
            const std::string v = next();
            GNNBENCH_CHECK(
                graph::parseReorderMethod(v, &reorder),
                "--reorder must be one of ",
                graph::validReorderMethodList(), ", got ", v);
        }
    }
    if (!json_path.empty()) {
        GNNBENCH_CHECK(threads >= 1 && repeats >= 1,
                       "--threads/--repeats must be positive");
        return runVariantComparison(json_path, threads, repeats,
                                    reorder);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
