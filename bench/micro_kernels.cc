/**
 * @file
 * google-benchmark micro-benchmarks of the kernel-level claims:
 *  - dglx fused g-SpMM vs pygx torch_sparse-style SpMM vs pygx
 *    gather+scatter composition (the CPU-kernel gap of Obs. 2/3);
 *  - dglx counting-sort format conversion vs pygx torch.sort-style
 *    conversion (the CSC-conversion cost of Obs. 2);
 *  - the dense GEMM both frameworks share.
 *
 * With `--json <path>` the binary instead runs the kernel-variant
 * comparison: Reference vs Tiled SpMM on the fig05 conv-layer
 * aggregation workload (full-graph reduce at hidden width 256), per
 * reduce op, verifying bit-equal outputs and reporting the Tiled
 * speedup at `--threads` (default 4) virtual threads.  Timing uses
 * per-chunk thread-CPU seconds (kernels::KernelStats) list-scheduled
 * onto the virtual threads, so the measured parallel speedup is
 * meaningful even on a single-core machine.  The JSON record is what
 * scripts/check_bench_regression.py appends to BENCH_kernels.json.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "gnnbench/dglx/kernels.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/graph/convert.h"
#include "gnnbench/graph/generate.h"
#include "gnnbench/kernels/kernels.h"
#include "gnnbench/profiling/json_writer.h"
#include "gnnbench/pygx/sampler.h"
#include "gnnbench/pygx/scatter.h"

using namespace gnnbench;

namespace {

struct Workload
{
    graph::CooGraph coo;
    graph::CsrGraph csc;
    core::Tensor x;

    Workload(NodeId n, EdgeId m, int64_t f)
    {
        core::Rng rng(7);
        coo = graph::symmetrize(graph::rmat(n, m, rng), false);
        csc = graph::cooToCsc(coo);
        x = core::Tensor::randn(n, f, rng);
    }
};

Workload &
workload()
{
    static Workload w(20000, 120000, 64);
    return w;
}

void
BM_DglxFusedSpmm(benchmark::State &state)
{
    auto &w = workload();
    dglx::KernelCtx ctx;
    for (auto _ : state) {
        auto y = dglx::gspmm(w.csc, w.x, dglx::Reducer::Sum,
                             nullptr, ctx);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetBytesProcessed(state.iterations() * 4 *
                            w.csc.numEdges() * w.x.cols());
}
BENCHMARK(BM_DglxFusedSpmm);

void
BM_PygxTorchSparseSpmm(benchmark::State &state)
{
    auto &w = workload();
    pygx::KernelCtx ctx;
    for (auto _ : state) {
        auto y = pygx::spmm(w.csc, w.x, nullptr, ctx);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetBytesProcessed(state.iterations() * 4 *
                            w.csc.numEdges() * w.x.cols());
}
BENCHMARK(BM_PygxTorchSparseSpmm);

void
BM_PygxGatherScatter(benchmark::State &state)
{
    auto &w = workload();
    pygx::KernelCtx ctx;
    for (auto _ : state) {
        auto msgs = pygx::gather(w.x, w.coo.src, ctx);
        auto y = pygx::scatterSum(
            msgs, w.coo.dst,
            static_cast<NodeId>(w.x.rows()), ctx);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetBytesProcessed(state.iterations() * 12 *
                            w.csc.numEdges() * w.x.cols());
}
BENCHMARK(BM_PygxGatherScatter);

void
BM_DglxCountingSortCsc(benchmark::State &state)
{
    auto &w = workload();
    for (auto _ : state) {
        auto csc = graph::cooToCsc(w.coo);
        benchmark::DoNotOptimize(csc.indices.data());
    }
}
BENCHMARK(BM_DglxCountingSortCsc);

void
BM_PygxSortConversionCsc(benchmark::State &state)
{
    auto &w = workload();
    for (auto _ : state) {
        pygx::Data data(w.coo);
        benchmark::DoNotOptimize(&data.csc());
    }
}
BENCHMARK(BM_PygxSortConversionCsc);

void
BM_SharedDenseGemm(benchmark::State &state)
{
    core::Rng rng(9);
    core::Tensor a = core::Tensor::randn(2048, 256, rng);
    core::Tensor b = core::Tensor::randn(256, 256, rng);
    for (auto _ : state) {
        auto c = core::ops::matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * 2048 * 256 *
                            256);
}
BENCHMARK(BM_SharedDenseGemm);

void
BM_DglxNeighborSampleBatch(benchmark::State &state)
{
    auto &w = workload();
    dglx::Graph g(w.coo);
    dglx::NeighborSampler sampler(g, {25, 10}, core::Rng(11));
    std::vector<NodeId> seeds(512);
    for (NodeId i = 0; i < 512; ++i)
        seeds[i] = i;
    for (auto _ : state) {
        auto smp = sampler.sample(seeds);
        benchmark::DoNotOptimize(smp.blocks[0].srcNodes.data());
    }
}
BENCHMARK(BM_DglxNeighborSampleBatch);

void
BM_PygxNeighborSampleBatch(benchmark::State &state)
{
    auto &w = workload();
    pygx::Data data(w.coo);
    pygx::NeighborSampler sampler(data, {25, 10}, core::Rng(11),
                                  nullptr);
    std::vector<NodeId> seeds(512);
    for (NodeId i = 0; i < 512; ++i)
        seeds[i] = i;
    for (auto _ : state) {
        auto smp = sampler.sample(seeds);
        benchmark::DoNotOptimize(smp.layers[0].srcNodes.data());
    }
}
BENCHMARK(BM_PygxNeighborSampleBatch);

// ---------------------------------------------------------------
// Kernel-variant comparison mode (--json)
// ---------------------------------------------------------------

double
medianOf(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/**
 * Makespan of the chunk CPU-seconds list-scheduled onto @p t virtual
 * threads: chunks are assigned in dispatch order to the least-loaded
 * thread, mirroring the dynamic chunk scheduling of
 * core::parallelForChunks.
 */
double
criticalPath(const std::vector<double> &chunks, int t)
{
    std::vector<double> load(static_cast<size_t>(t), 0.0);
    for (double c : chunks)
        *std::min_element(load.begin(), load.end()) += c;
    return *std::max_element(load.begin(), load.end());
}

bool
bitsEqual(const core::Tensor &a, const core::Tensor &b)
{
    return a.sameShape(b) &&
           std::memcmp(a.data(), b.data(),
                       static_cast<size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

struct VariantRow
{
    const char *op;
    double refSeconds;
    double tiledWorkSeconds;
    double tiledCriticalPath;
    size_t tiledChunks;
    double speedup;
    bool bitExact;
};

int
runVariantComparison(const std::string &json_path, int threads,
                     int repeats)
{
    // The fig05 conv-layer aggregation: one full-graph neighborhood
    // reduce at the figure's hidden width (256) over the micro-bench
    // RMAT graph.
    constexpr int64_t kFeat = 256;
    core::Rng rng(7);
    graph::CooGraph coo =
        graph::symmetrize(graph::rmat(20000, 120000, rng), false);
    graph::CsrGraph csc = graph::cooToCsc(coo);
    core::Tensor x = core::Tensor::randn(csc.numCols, kFeat, rng);

    std::printf("=== kernel variant comparison "
                "(fig05 aggregation, n=%d, e=%lld, f=%lld, "
                "%d virtual threads, median of %d) ===\n",
                csc.numRows, static_cast<long long>(csc.numEdges()),
                static_cast<long long>(kFeat), threads, repeats);

    const kernels::ReduceOp ops[] = {kernels::ReduceOp::Sum,
                                     kernels::ReduceOp::Mean,
                                     kernels::ReduceOp::Max};
    std::vector<VariantRow> rows;
    for (kernels::ReduceOp op : ops) {
        core::Tensor ref = kernels::spmm(
            csc, x, op, nullptr, kernels::KernelVariant::Reference);
        core::Tensor til = kernels::spmm(
            csc, x, op, nullptr, kernels::KernelVariant::Tiled);
        const bool bits = bitsEqual(ref, til);

        std::vector<double> refs, works, crits;
        size_t chunks = 0;
        for (int r = 0; r < repeats; ++r) {
            kernels::KernelStats rs;
            kernels::spmm(csc, x, op, nullptr,
                          kernels::KernelVariant::Reference, &rs);
            refs.push_back(std::accumulate(rs.chunkSeconds.begin(),
                                           rs.chunkSeconds.end(),
                                           0.0));
            kernels::KernelStats ts;
            kernels::spmm(csc, x, op, nullptr,
                          kernels::KernelVariant::Tiled, &ts);
            works.push_back(std::accumulate(ts.chunkSeconds.begin(),
                                            ts.chunkSeconds.end(),
                                            0.0));
            crits.push_back(criticalPath(ts.chunkSeconds, threads));
            chunks = ts.chunkSeconds.size();
        }
        VariantRow row;
        row.op = kernels::reduceOpName(op);
        row.refSeconds = medianOf(refs);
        row.tiledWorkSeconds = medianOf(works);
        row.tiledCriticalPath = medianOf(crits);
        row.tiledChunks = chunks;
        row.speedup = row.refSeconds / row.tiledCriticalPath;
        row.bitExact = bits;
        rows.push_back(row);
        std::printf("  spmm %-4s  reference %.4fs  tiled work %.4fs "
                    "(%zu chunks)  critical path@%d %.4fs  "
                    "speedup %.2fx  bit_exact=%s\n",
                    row.op, row.refSeconds, row.tiledWorkSeconds,
                    row.tiledChunks, threads, row.tiledCriticalPath,
                    row.speedup, row.bitExact ? "yes" : "NO");
    }

    std::ofstream out(json_path);
    GNNBENCH_CHECK(out.good(), "cannot open ", json_path);
    profiling::JsonWriter w(out);
    w.beginObject();
    w.value("bench", "micro_kernels");
    w.value("mode", "kernel_variants");
    w.value("workload", "fig05_conv_aggregation");
    w.value("nodes", static_cast<int64_t>(csc.numRows));
    w.value("edges", static_cast<int64_t>(csc.numEdges()));
    w.value("feat", kFeat);
    w.value("threads", threads);
    w.value("repeats", repeats);
    w.beginArray("results");
    for (const VariantRow &row : rows) {
        w.beginObject();
        w.value("op", row.op);
        w.value("reference_seconds", row.refSeconds);
        w.value("tiled_work_seconds", row.tiledWorkSeconds);
        w.value("tiled_critical_path_seconds",
                row.tiledCriticalPath);
        w.value("tiled_chunks",
                static_cast<int64_t>(row.tiledChunks));
        w.value("speedup", row.speedup);
        w.value("bit_exact", row.bitExact);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    out << "\n";
    out.close();
    std::printf("variant comparison written to %s\n",
                json_path.c_str());

    bool ok = true;
    for (const VariantRow &row : rows)
        ok = ok && row.bitExact;
    if (!ok)
        std::fprintf(stderr, "FAIL: tiled output diverges from the "
                             "reference golden model\n");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    int threads = 4;
    int repeats = 5;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            GNNBENCH_CHECK(i + 1 < argc, "missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--json")
            json_path = next();
        else if (arg == "--threads")
            threads = std::stoi(next());
        else if (arg == "--repeats")
            repeats = std::stoi(next());
    }
    if (!json_path.empty()) {
        GNNBENCH_CHECK(threads >= 1 && repeats >= 1,
                       "--threads/--repeats must be positive");
        return runVariantComparison(json_path, threads, repeats);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
