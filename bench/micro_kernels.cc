/**
 * @file
 * google-benchmark micro-benchmarks of the kernel-level claims:
 *  - dglx fused g-SpMM vs pygx torch_sparse-style SpMM vs pygx
 *    gather+scatter composition (the CPU-kernel gap of Obs. 2/3);
 *  - dglx counting-sort format conversion vs pygx torch.sort-style
 *    conversion (the CSC-conversion cost of Obs. 2);
 *  - the dense GEMM both frameworks share.
 */

#include <benchmark/benchmark.h>

#include "gnnbench/dglx/kernels.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/graph/convert.h"
#include "gnnbench/graph/generate.h"
#include "gnnbench/pygx/sampler.h"
#include "gnnbench/pygx/scatter.h"

using namespace gnnbench;

namespace {

struct Workload
{
    graph::CooGraph coo;
    graph::CsrGraph csc;
    core::Tensor x;

    Workload(NodeId n, EdgeId m, int64_t f)
    {
        core::Rng rng(7);
        coo = graph::symmetrize(graph::rmat(n, m, rng), false);
        csc = graph::cooToCsc(coo);
        x = core::Tensor::randn(n, f, rng);
    }
};

Workload &
workload()
{
    static Workload w(20000, 120000, 64);
    return w;
}

void
BM_DglxFusedSpmm(benchmark::State &state)
{
    auto &w = workload();
    dglx::KernelCtx ctx;
    for (auto _ : state) {
        auto y = dglx::gspmm(w.csc, w.x, dglx::Reducer::Sum,
                             nullptr, ctx);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetBytesProcessed(state.iterations() * 4 *
                            w.csc.numEdges() * w.x.cols());
}
BENCHMARK(BM_DglxFusedSpmm);

void
BM_PygxTorchSparseSpmm(benchmark::State &state)
{
    auto &w = workload();
    pygx::KernelCtx ctx;
    for (auto _ : state) {
        auto y = pygx::spmm(w.csc, w.x, nullptr, ctx);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetBytesProcessed(state.iterations() * 4 *
                            w.csc.numEdges() * w.x.cols());
}
BENCHMARK(BM_PygxTorchSparseSpmm);

void
BM_PygxGatherScatter(benchmark::State &state)
{
    auto &w = workload();
    pygx::KernelCtx ctx;
    for (auto _ : state) {
        auto msgs = pygx::gather(w.x, w.coo.src, ctx);
        auto y = pygx::scatterSum(
            msgs, w.coo.dst,
            static_cast<NodeId>(w.x.rows()), ctx);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetBytesProcessed(state.iterations() * 12 *
                            w.csc.numEdges() * w.x.cols());
}
BENCHMARK(BM_PygxGatherScatter);

void
BM_DglxCountingSortCsc(benchmark::State &state)
{
    auto &w = workload();
    for (auto _ : state) {
        auto csc = graph::cooToCsc(w.coo);
        benchmark::DoNotOptimize(csc.indices.data());
    }
}
BENCHMARK(BM_DglxCountingSortCsc);

void
BM_PygxSortConversionCsc(benchmark::State &state)
{
    auto &w = workload();
    for (auto _ : state) {
        pygx::Data data(w.coo);
        benchmark::DoNotOptimize(&data.csc());
    }
}
BENCHMARK(BM_PygxSortConversionCsc);

void
BM_SharedDenseGemm(benchmark::State &state)
{
    core::Rng rng(9);
    core::Tensor a = core::Tensor::randn(2048, 256, rng);
    core::Tensor b = core::Tensor::randn(256, 256, rng);
    for (auto _ : state) {
        auto c = core::ops::matmul(a, b);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * 2048 * 256 *
                            256);
}
BENCHMARK(BM_SharedDenseGemm);

void
BM_DglxNeighborSampleBatch(benchmark::State &state)
{
    auto &w = workload();
    dglx::Graph g(w.coo);
    dglx::NeighborSampler sampler(g, {25, 10}, core::Rng(11));
    std::vector<NodeId> seeds(512);
    for (NodeId i = 0; i < 512; ++i)
        seeds[i] = i;
    for (auto _ : state) {
        auto smp = sampler.sample(seeds);
        benchmark::DoNotOptimize(smp.blocks[0].srcNodes.data());
    }
}
BENCHMARK(BM_DglxNeighborSampleBatch);

void
BM_PygxNeighborSampleBatch(benchmark::State &state)
{
    auto &w = workload();
    pygx::Data data(w.coo);
    pygx::NeighborSampler sampler(data, {25, 10}, core::Rng(11),
                                  nullptr);
    std::vector<NodeId> seeds(512);
    for (NodeId i = 0; i < 512; ++i)
        seeds[i] = i;
    for (auto _ : state) {
        auto smp = sampler.sample(seeds);
        benchmark::DoNotOptimize(smp.layers[0].srcNodes.data());
    }
}
BENCHMARK(BM_PygxNeighborSampleBatch);

} // namespace

BENCHMARK_MAIN();
