/**
 * @file
 * Figures 18-19: GraphSAGE with graph + features pre-loaded into GPU
 * memory — speedup over the per-batch-transfer baseline and the
 * resulting runtime breakdown.  Also reports the DGL "pre-fetching"
 * extension (asynchronous movement/compute overlap) the paper
 * mentions but does not plot.
 *
 * Expected shape (Observation 6): pre-loading cuts data-movement
 * time by up to ~20x, giving up to ~2x end-to-end speedup.
 */

#include "model_fig_common.h"
#include "gnnbench/models/graphsage.h"

using namespace gnnbench;
using profiling::Phase;

int
main(int argc, char **argv)
{
    bench::Options defaults;
    defaults.scale = 0.25;
    defaults.epochs = 3;
    auto opts = bench::parseOptions(argc, argv, defaults);
    bench::banner(
        "Figures 18-19: GraphSAGE with GPU data pre-loading", opts);

    profiling::Table speedups({"Dataset", "Framework", "Baseline",
                               "Preload", "Speedup",
                               "Movement reduction"});
    // Gate rows for scripts/check_bench_regression.py --mode device.
    struct GateRow
    {
        std::string dataset;
        std::string fw;
        double speedup;
        double moveReduction;
    };
    std::vector<GateRow> gate_rows;
    profiling::Table breakdown({"Dataset", "Config", "Loading",
                                "Sampling", "Movement", "Training"});
    profiling::Table prefetch({"Dataset", "Preload", "Prefetch",
                               "Extra speedup"});

    for (const auto &name : opts.datasets) {
        graph::Dataset ds = bench::loadDataset(name, opts);
        for (auto fw :
             {models::Framework::Dglx, models::Framework::Pygx}) {
            models::TrainConfig cfg;
            cfg.framework = fw;
            cfg.mode = models::RunMode::CPUGPU;
            cfg.epochs = opts.epochs;
            cfg.seed = opts.seed;
            models::TrainResult base =
                models::trainGraphSage(ds, cfg);
            cfg.preloadFeatures = true;
            models::TrainResult pre =
                models::trainGraphSage(ds, cfg);

            const double move_base =
                base.phaseSeconds(Phase::DataMovement);
            const double move_pre =
                pre.phaseSeconds(Phase::DataMovement);
            speedups.addRow(
                {name, models::frameworkName(fw),
                 profiling::fmtSeconds(base.totalSeconds()),
                 profiling::fmtSeconds(pre.totalSeconds()),
                 profiling::fmtFixed(base.totalSeconds() /
                                         pre.totalSeconds(),
                                     2) +
                     "x",
                 profiling::fmtFixed(move_base /
                                         std::max(move_pre, 1e-9),
                                     1) +
                     "x"});
            gate_rows.push_back(
                {name, models::frameworkName(fw),
                 base.totalSeconds() / pre.totalSeconds(),
                 move_base / std::max(move_pre, 1e-9)});
            for (const auto *r : {&base, &pre}) {
                breakdown.addRow(
                    {name,
                     r->config +
                         (r == &pre ? "+preload" : ""),
                     profiling::fmtSeconds(
                         r->phaseSeconds(Phase::DataLoading)),
                     profiling::fmtSeconds(
                         r->phaseSeconds(Phase::Sampling)),
                     profiling::fmtSeconds(
                         r->phaseSeconds(Phase::DataMovement)),
                     profiling::fmtSeconds(
                         r->phaseSeconds(Phase::Training))});
            }
            // Pre-fetching ablation (DGL feature; Section 4.3).
            if (fw == models::Framework::Dglx) {
                models::TrainConfig pf = cfg;
                pf.preloadFeatures = true;
                pf.prefetch = true;
                models::TrainResult with_pf =
                    models::trainGraphSage(ds, pf);
                prefetch.addRow(
                    {name,
                     profiling::fmtSeconds(pre.totalSeconds()),
                     profiling::fmtSeconds(
                         with_pf.totalSeconds()),
                     profiling::fmtFixed(
                         pre.totalSeconds() /
                             with_pf.totalSeconds(),
                         3) +
                         "x"});
            }
        }
    }
    std::printf("--- Figure 18: speedup from pre-loading ---\n");
    speedups.print();
    std::printf("\n--- Figure 19: runtime breakdown ---\n");
    breakdown.print();
    std::printf("\n--- Pre-fetch ablation (DGL, paper Sec. 4.3; "
                "\"improved, albeit a little bit\") ---\n");
    prefetch.print();
    bench::writeJsonReport(
        opts, "fig18_19_preload",
        {{"speedups", &speedups},
         {"breakdown", &breakdown},
         {"prefetch", &prefetch}},
        {}, nullptr, [&](profiling::JsonWriter &w) {
            w.beginArray("results");
            for (const auto &gr : gate_rows) {
                // Pre-loading must help end-to-end: with features in
                // VRAM the per-batch movement collapses to structure
                // bytes, so the tiered model has to reproduce the
                // paper's Figure 18 direction on every dataset.
                w.beginObject();
                w.value("variant", "device");
                w.value("op", "preload_speedup");
                w.value("method", gr.dataset + ":" + gr.fw);
                w.value("value", gr.speedup);
                w.value("floor", 1.01);
                w.value("no_regress", true);
                w.endObject();
                w.beginObject();
                w.value("variant", "device");
                w.value("op", "movement_reduction");
                w.value("method", gr.dataset + ":" + gr.fw);
                w.value("value", gr.moveReduction);
                w.value("floor", 2.0);
                w.value("no_regress", true);
                w.endObject();
            }
            // Fraction of modeled kernel traffic the fusion layer
            // eliminated across the whole run (dglx fuses its
            // SpMM+mean chain; pygx rejects, per Observation 3).
            auto &reg = profiling::MetricsRegistry::global();
            const double saved = static_cast<double>(
                reg.counter("device.fusion.fused_bytes_saved")
                    .value());
            const double kernel_bytes = static_cast<double>(
                reg.counter("device.kernel.bytes").value());
            w.beginObject();
            w.value("variant", "device");
            w.value("op", "fused_traffic_reduction");
            w.value("value",
                    saved / std::max(saved + kernel_bytes, 1.0));
            w.value("floor", 0.005);
            w.value("no_regress", true);
            w.endObject();
            w.endArray();
        });
    std::printf(
        "\nExpected shape: movement reduced up to ~20x, total up to "
        "~2x (Observation 6); prefetch adds a small extra gain.\n");
    return 0;
}
