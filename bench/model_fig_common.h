/**
 * @file
 * Shared harness for the end-to-end model figures (Figures 6-17):
 * runs one model across the four paper configurations on every
 * dataset and prints the four figure series — runtime breakdown,
 * total runtime, average power, and energy.
 */

#ifndef GNNBENCH_BENCH_MODEL_FIG_COMMON_H
#define GNNBENCH_BENCH_MODEL_FIG_COMMON_H

#include <functional>

#include "bench_common.h"
#include "gnnbench/models/pipeline.h"

namespace gnnbench {
namespace bench {

using ModelFn = std::function<models::TrainResult(
    const graph::Dataset &, const models::TrainConfig &)>;

/** The four standard configurations of Figures 6-17. */
inline std::vector<std::pair<models::Framework, models::RunMode>>
standardConfigs()
{
    using models::Framework;
    using models::RunMode;
    return {{Framework::Dglx, RunMode::CPU},
            {Framework::Pygx, RunMode::CPU},
            {Framework::Dglx, RunMode::CPUGPU},
            {Framework::Pygx, RunMode::CPUGPU}};
}

/** Run the model on every dataset x config and print the figures. */
inline void
runModelFigure(const char *model_name, const Options &opts,
               const ModelFn &model)
{
    using profiling::Phase;
    using profiling::fmtFixed;
    using profiling::fmtJoules;
    using profiling::fmtSeconds;

    profiling::Table breakdown(
        {"Dataset", "Config", "Loading", "Sampling", "Movement",
         "Training", "Sampling%"});
    profiling::Table totals({"Dataset", "Config", "Total"});
    profiling::Table power({"Dataset", "Config", "AvgPower"});
    profiling::Table energy({"Dataset", "Config", "Energy"});

    std::vector<profiling::RunRecord> runs;

    for (const auto &name : opts.datasets) {
        graph::Dataset ds = bench::loadDataset(name, opts);
        for (auto [fw, mode] : standardConfigs()) {
            models::TrainConfig cfg;
            cfg.framework = fw;
            cfg.mode = mode;
            cfg.epochs = opts.epochs;
            cfg.seed = opts.seed;
            cfg.numWorkers = opts.numWorkers;
            models::TrainResult r = model(ds, cfg);
            const double total = r.totalSeconds();
            profiling::RunRecord rec;
            rec.dataset = name;
            rec.config = r.config;
            rec.phases = r.phases;
            rec.workerPhases = r.workerPhases;
            rec.energy = r.energy;
            runs.push_back(std::move(rec));
            const double samp_pct =
                100.0 * r.phaseSeconds(Phase::Sampling) / total;
            breakdown.addRow(
                {name, r.config,
                 fmtSeconds(r.phaseSeconds(Phase::DataLoading)),
                 fmtSeconds(r.phaseSeconds(Phase::Sampling)),
                 fmtSeconds(r.phaseSeconds(Phase::DataMovement)),
                 fmtSeconds(r.phaseSeconds(Phase::Training)),
                 fmtFixed(samp_pct, 1) + "%"});
            totals.addRow({name, r.config, fmtSeconds(total)});
            power.addRow({name, r.config,
                          fmtFixed(r.avgWatts(), 1) + " W"});
            energy.addRow(
                {name, r.config, fmtJoules(r.energy.joules())});
        }
    }

    if (!opts.csvPrefix.empty()) {
        breakdown.writeCsv(opts.csvPrefix + "breakdown.csv");
        totals.writeCsv(opts.csvPrefix + "total.csv");
        power.writeCsv(opts.csvPrefix + "power.csv");
        energy.writeCsv(opts.csvPrefix + "energy.csv");
    }
    writeJsonReport(opts, model_name,
                    {{"breakdown", &breakdown},
                     {"total", &totals},
                     {"power", &power},
                     {"energy", &energy}},
                    std::move(runs));
    std::printf("--- Runtime breakdown of %s ---\n", model_name);
    breakdown.print();
    std::printf("\n--- Total runtime of %s ---\n", model_name);
    totals.print();
    std::printf("\n--- Average power consumption of %s ---\n",
                model_name);
    power.print();
    std::printf("\n--- Energy consumption of %s ---\n", model_name);
    energy.print();
}

} // namespace bench
} // namespace gnnbench

#endif // GNNBENCH_BENCH_MODEL_FIG_COMMON_H
