/**
 * @file
 * Ablation: throughput of the parallel sampling & prefetch pipeline
 * versus worker count, plus intra-op thread scaling of the Figure 3
 * data-loader workload.
 *
 * The prefetching dataloaders (DGL/PyG num_workers) are measured by
 * *pipeline throughput*: batches / max(per-worker busy seconds).
 * Per-worker busy time is real, measured sampling work; its maximum
 * over workers is the pipeline's critical path, i.e. the epoch
 * sampling time on a machine with at least num_workers free cores.
 * This harness pins to a single core (the repo's virtual-time
 * methodology), so wall time stays roughly flat while the critical
 * path — and therefore pipeline throughput — scales with workers;
 * both are printed.
 */

#include "bench_common.h"
#include "gnnbench/core/parallel.h"
#include "gnnbench/core/timer.h"
#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/models/pipeline.h"
#include "gnnbench/pygx/dataloader.h"
#include "gnnbench/pygx/sampler.h"

using namespace gnnbench;

namespace {

constexpr int kWorkerCounts[] = {1, 2, 4, 8};

struct PipelineRun
{
    int64_t batches = 0;
    double maxBusy = 0.0;  ///< critical path (seconds)
    double wall = 0.0;     ///< single-core wall seconds
    /// Queue backpressure (from BoundedQueue's QueueStats):
    uint64_t enqueueBlocks = 0; ///< producer waits on a full queue
    uint64_t dequeueBlocks = 0; ///< consumer waits on an empty queue
    double stallSeconds = 0.0;  ///< consumer time blocked in pop()
    uint64_t maxDepth = 0;      ///< peak queue occupancy

    double
    throughput() const
    {
        return maxBusy > 0.0 ? static_cast<double>(batches) / maxBusy
                             : 0.0;
    }
};

/** Drain @p loader completely and collect the pipeline metrics. */
template <typename Loader>
PipelineRun
drain(Loader &loader, int64_t expected_batches)
{
    PipelineRun run;
    core::Timer wall;
    while (loader.next())
        ++run.batches;
    run.wall = wall.elapsed();
    GNNBENCH_CHECK(run.batches == expected_batches,
                   "loader delivered ", run.batches, " of ",
                   expected_batches, " batches");
    for (double busy : loader.workerBusySeconds())
        run.maxBusy = std::max(run.maxBusy, busy);
    const core::parallel::QueueStats &qs = loader.queueStats();
    run.enqueueBlocks = qs.enqueueBlocks.load();
    run.dequeueBlocks = qs.dequeueBlocks.load();
    run.stallSeconds =
        static_cast<double>(qs.dequeueBlockNanos.load()) * 1e-9;
    run.maxDepth = qs.maxDepth.load();
    return run;
}

void
addRows(profiling::Table &table, const std::string &dataset,
        const char *sampler, const std::vector<PipelineRun> &runs)
{
    const double base = runs.front().throughput();
    for (size_t i = 0; i < runs.size(); ++i) {
        const PipelineRun &r = runs[i];
        table.addRow({dataset, sampler,
                      std::to_string(kWorkerCounts[i]),
                      std::to_string(r.batches),
                      profiling::fmtSeconds(r.maxBusy),
                      profiling::fmtFixed(r.throughput(), 1),
                      profiling::fmtFixed(
                          base > 0.0 ? r.throughput() / base : 0.0,
                          2) +
                          "x",
                      profiling::fmtSeconds(r.wall),
                      std::to_string(r.enqueueBlocks),
                      std::to_string(r.dequeueBlocks),
                      profiling::fmtSeconds(r.stallSeconds),
                      std::to_string(r.maxDepth)});
    }
}

std::vector<std::vector<NodeId>>
seedBatches(NodeId n, int batch, uint64_t seed)
{
    std::vector<NodeId> all(n);
    for (NodeId i = 0; i < n; ++i)
        all[i] = i;
    core::Rng rng(seed);
    return models::makeBatches(all, batch, rng);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options defaults;
    defaults.datasets = {"flickr"};
    auto opts = bench::parseOptions(argc, argv, defaults);
    bench::banner(
        "Ablation: sampling & prefetch pipeline scaling", opts);
    std::printf("kernel variant: %s (aggregation dispatch; also in "
                "the --json report options)\n\n",
                kernels::variantName(kernels::defaultVariant()));

    profiling::Table table({"Dataset", "Sampler", "Workers",
                            "Batches", "Critical path", "Batches/s",
                            "Speedup", "Wall", "EnqBlk", "DeqBlk",
                            "Stall", "MaxDepth"});

    for (const auto &name : opts.datasets) {
        graph::Dataset ds = bench::loadDataset(name, opts);
        dglx::LoadedData dgl = dglx::DataLoader::load(ds);
        pygx::LoadedData pyg = pygx::DataLoader::load(ds);
        const NodeId n = ds.numNodes();
        const int32_t parts = std::min<int32_t>(2000, n / 2);
        const int32_t per_batch = std::min<int32_t>(50, parts);
        const int32_t roots = std::min<int32_t>(3000, n / 4);
        const int cluster_batches = std::max(1, parts / per_batch);
        const int saint_batches =
            models::saintBatchesPerEpoch(n, roots, 2);
        const int depth = 2;

        // ---- Figure 4 workloads behind the prefetch loaders ----
        {
            dglx::NeighborSampler proto(
                *dgl.graph, {25, 10}, core::Rng(opts.seed));
            auto batches = seedBatches(n, 512, opts.seed + 1);
            std::vector<PipelineRun> runs;
            for (int w : kWorkerCounts) {
                core::Rng rng(opts.seed + 2);
                dglx::NeighborLoader loader(proto, rng, batches, w,
                                            depth);
                runs.push_back(drain(
                    loader, static_cast<int64_t>(batches.size())));
            }
            addRows(table, name, "DGL GraphSAGE", runs);
        }
        {
            dglx::ClusterSampler proto(*dgl.graph, parts,
                                       core::Rng(opts.seed));
            std::vector<PipelineRun> runs;
            for (int w : kWorkerCounts) {
                core::Rng rng(opts.seed + 2);
                auto loader = dglx::makeClusterLoader(
                    proto, rng, per_batch, cluster_batches, w, depth);
                runs.push_back(drain(loader, cluster_batches));
            }
            addRows(table, name, "DGL ClusterGCN", runs);
        }
        {
            dglx::SaintRwSampler proto(*dgl.graph, roots, 2,
                                       core::Rng(opts.seed));
            std::vector<PipelineRun> runs;
            for (int w : kWorkerCounts) {
                core::Rng rng(opts.seed + 2);
                auto loader = dglx::makeSaintRwLoader(
                    proto, rng, saint_batches, w, depth);
                runs.push_back(drain(loader, saint_batches));
            }
            addRows(table, name, "DGL GraphSAINT", runs);
        }
        {
            device::Session session;
            pygx::NeighborSampler proto(*pyg.data, {25, 10},
                                        core::Rng(opts.seed),
                                        &session);
            auto batches = seedBatches(n, 512, opts.seed + 1);
            std::vector<PipelineRun> runs;
            for (int w : kWorkerCounts) {
                core::Rng rng(opts.seed + 2);
                pygx::NeighborLoader loader(proto, rng, batches, w,
                                            depth, &session);
                runs.push_back(drain(
                    loader, static_cast<int64_t>(batches.size())));
            }
            addRows(table, name, "PyG GraphSAGE", runs);
        }
    }
    table.print();

    // ---- Figure 3 loader under intra-op thread scaling ----
    // The DataLoader workload itself runs parallelFor-backed kernels;
    // sweeping the pool size emulates GNNBENCH_NUM_THREADS.  On the
    // single-core harness wall time stays flat — the sweep checks the
    // pool adds no overhead, and documents the knob.
    const int restore_threads = core::parallel::numThreads();
    profiling::Table lt({"Dataset", "Threads", "DGL load", "PyG load"});
    for (const auto &name : opts.datasets) {
        graph::Dataset ds = bench::loadDataset(name, opts);
        for (int t : kWorkerCounts) {
            core::parallel::setNumThreads(t);
            core::Timer timer;
            auto dgl = dglx::DataLoader::load(ds);
            const double dgl_s = timer.elapsed();
            timer.reset();
            auto pyg = pygx::DataLoader::load(ds);
            const double pyg_s = timer.elapsed();
            lt.addRow({name, std::to_string(t),
                       profiling::fmtSeconds(dgl_s),
                       profiling::fmtSeconds(pyg_s)});
        }
    }
    core::parallel::setNumThreads(restore_threads);
    lt.print();

    bench::writeJsonReport(opts, "ablation_parallel_scaling",
                           {{"pipeline_scaling", &table},
                            {"loader_thread_scaling", &lt}});

    std::printf(
        "\nBatches/s is pipeline throughput batches/max(worker busy "
        "seconds): the\nepoch sampling rate once num_workers cores "
        "are available.  Wall time is\nmeasured on one core and "
        "stays roughly flat by construction.\nEnqBlk/DeqBlk count "
        "producer/consumer queue waits, Stall is consumer\ntime "
        "blocked on empty queues, MaxDepth the peak buffered "
        "batches.\n");
    return 0;
}
