/**
 * Ablation: partition-parallel training over modeled ranks.
 *
 * Trains the dist/ GraphSAGE trainer on one dataset at rank counts
 * 1/2/4/8 and reports, per rank count: the partitioner's edge cut,
 * the modeled communication volume (halo bytes + allreduce wire
 * bytes), the modeled end-to-end time and speedup over 1 rank, and
 * the feature data store's hit rate.  Every multi-rank run is
 * asserted bit-identical to the 1-rank baseline — the scaling numbers
 * are only meaningful because the answer provably does not change.
 *
 * With --json the report carries gate rows for
 * scripts/check_bench_regression.py --mode dist (floor: >= 2.5x
 * modeled speedup at 4 ranks; bit_exact: hard-fails the gate when a
 * rank count diverges from the baseline), and the modeled interconnect
 * timeline appears as per-rank "rank<r>/comm (modeled)" and
 * "rank<r>/compute (modeled)" trace lanes, validated by
 * scripts/check_trace.sh.
 */

#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gnnbench/dist/trainer.h"
#include "gnnbench/profiling/report.h"

namespace {

using namespace gnnbench;

constexpr int kRankCounts[] = {1, 2, 4, 8};

struct ScalingRow
{
    int ranks = 0;
    dist::DistResult result;
    bool bitExact = true;
    double speedup = 1.0;
};

bool
weightsBitEqual(const std::vector<core::Tensor> &a,
                const std::vector<core::Tensor> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t k = 0; k < a.size(); ++k) {
        if (a[k].rows() != b[k].rows() ||
            a[k].cols() != b[k].cols())
            return false;
        if (std::memcmp(a[k].data(), b[k].data(), a[k].bytes()) != 0)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options defaults;
    // One dataset at a sub-scale that keeps the exact-arithmetic
    // gradient path fast enough for a CI gate.
    defaults.datasets = {"flickr"};
    defaults.scale = 0.03;
    defaults.epochs = 3;
    const bench::Options opts =
        bench::parseOptions(argc, argv, defaults);
    bench::banner("ablation: distributed partition-parallel scaling",
                  opts);

    profiling::Table table({"dataset", "ranks", "edge cut",
                            "cut %", "halo MB", "allreduce MB",
                            "modeled time", "speedup", "store hit %",
                            "bit-exact"});
    struct DatasetRows
    {
        std::string name;
        std::vector<ScalingRow> rows;
    };
    std::vector<DatasetRows> all;

    for (const std::string &name : opts.datasets) {
        const graph::Dataset ds = bench::loadDataset(name, opts);
        std::printf("%s: %u nodes, %llu edges\n",
                    name.c_str(), ds.numNodes(),
                    static_cast<unsigned long long>(ds.numEdges()));

        dist::DistConfig cfg;
        cfg.epochs = opts.epochs;
        cfg.hiddenDim = 32;
        cfg.seed = opts.seed;

        DatasetRows drows;
        drows.name = name;
        for (int ranks : kRankCounts) {
            cfg.numRanks = ranks;
            ScalingRow row;
            row.ranks = ranks;
            row.result = dist::trainDistributedSage(ds, cfg);
            drows.rows.push_back(std::move(row));
        }
        const dist::DistResult &base = drows.rows.front().result;
        for (ScalingRow &row : drows.rows) {
            row.bitExact =
                weightsBitEqual(row.result.weights, base.weights);
            row.speedup = base.modeledSeconds /
                          row.result.modeledSeconds;
            const dist::DistResult &r = row.result;
            table.addRow(
                {name, std::to_string(row.ranks),
                 std::to_string(r.cutEdges),
                 profiling::fmtFixed(
                     100.0 * static_cast<double>(r.cutEdges) /
                         static_cast<double>(ds.numEdges()),
                     1),
                 profiling::fmtFixed(
                     static_cast<double>(r.haloBytes) / 1e6, 2),
                 profiling::fmtFixed(
                     static_cast<double>(r.allreduceBytes) / 1e6,
                     2),
                 profiling::fmtSeconds(r.modeledSeconds),
                 profiling::fmtFixed(row.speedup, 2),
                 profiling::fmtFixed(100.0 * r.datastoreHitRate, 1),
                 row.bitExact ? "yes" : "NO"});
        }
        all.push_back(std::move(drows));
    }

    table.print();
    if (!opts.csvPrefix.empty())
        table.writeCsv(opts.csvPrefix + "distributed_scaling.csv");

    int divergent = 0;
    for (const DatasetRows &drows : all)
        for (const ScalingRow &row : drows.rows)
            if (!row.bitExact) {
                std::fprintf(stderr,
                             "ERROR: %s at %d ranks diverged from "
                             "the 1-rank baseline\n",
                             drows.name.c_str(), row.ranks);
                ++divergent;
            }

    bench::writeJsonReport(
        opts, "ablation_distributed_scaling",
        {{"distributed_scaling", &table}}, {}, nullptr,
        [&](profiling::JsonWriter &w) {
            w.beginArray("results");
            for (const DatasetRows &drows : all) {
                const auto prefix = drows.name + ".";
                for (const ScalingRow &row : drows.rows) {
                    const dist::DistResult &r = row.result;
                    const auto op =
                        prefix + "ranks" + std::to_string(row.ranks);
                    // The gated figure of merit: modeled speedup
                    // over the 1-rank baseline.
                    w.beginObject();
                    w.value("variant", "dist");
                    w.value("op", op + ".speedup");
                    w.value("value", row.speedup);
                    w.value("bit_exact", row.bitExact);
                    if (row.ranks == 4)
                        w.value("floor", 2.5);
                    else if (row.ranks == 1)
                        w.value("no_regress", true);
                    w.endObject();
                    // Informational rows (model-deterministic, so
                    // history drift still gets flagged).
                    w.beginObject();
                    w.value("variant", "dist");
                    w.value("op", op + ".comm_mb");
                    w.value("value",
                            static_cast<double>(r.haloBytes +
                                                r.allreduceBytes) /
                                1e6);
                    w.value("no_regress", true);
                    w.endObject();
                    w.beginObject();
                    w.value("variant", "dist");
                    w.value("op", op + ".edge_cut");
                    w.value("value",
                            static_cast<double>(r.cutEdges));
                    w.value("no_regress", true);
                    w.endObject();
                    w.beginObject();
                    w.value("variant", "dist");
                    w.value("op", op + ".store_hit_rate");
                    w.value("value", r.datastoreHitRate);
                    if (row.ranks > 1) {
                        // Features are cached across epochs, so
                        // epochs-1 of every epochs halo reads must
                        // hit with the default unbounded store.
                        w.value("floor", 0.4);
                    }
                    w.endObject();
                }
            }
            w.endArray();
        });

    return divergent == 0 ? 0 : 1;
}
