/**
 * @file
 * Ablation: node-wise vs layer-wise sampling — GraphSAGE's neighbor
 * sampler against FastGCN and LADIES (paper Section 2.1).
 *
 * Quantifies the trade-offs the paper narrates: FastGCN is cheap but
 * produces isolated destinations (its accuracy problem); LADIES fixes
 * the isolation at extra sampling cost; neighbor sampling explodes
 * the computation graph (largest input frontier / most edges).
 */

#include "bench_common.h"
#include "gnnbench/core/timer.h"
#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/dglx/layer_sampler.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/models/pipeline.h"

using namespace gnnbench;

int
main(int argc, char **argv)
{
    bench::Options defaults;
    defaults.scale = 0.5;
    auto opts = bench::parseOptions(argc, argv, defaults);
    bench::banner(
        "Ablation: neighbor vs layer-wise samplers (DGL, 2 layers)",
        opts);

    constexpr int kBatches = 20;
    constexpr int kBatchSize = 512;
    profiling::Table table({"Dataset", "Sampler", "Time/batch",
                            "Input nodes", "Edges",
                            "Isolated dst"});
    for (const auto &name : opts.datasets) {
        graph::Dataset ds = bench::loadDataset(name, opts);
        dglx::LoadedData dgl = dglx::DataLoader::load(ds);
        core::Rng rng(opts.seed);
        std::vector<std::vector<NodeId>> batches;
        {
            core::Rng brng = rng.fork();
            batches = models::makeBatches(dgl.trainIdx, kBatchSize,
                                          brng);
            if (static_cast<int>(batches.size()) > kBatches)
                batches.resize(kBatches);
        }
        // Layer budgets sized to the neighbor sampler's fanouts.
        const NodeId budget1 = std::min<NodeId>(
            ds.numNodes(), kBatchSize * 10);
        const NodeId budget0 = std::min<NodeId>(
            ds.numNodes(), budget1 * 4);

        {
            dglx::NeighborSampler sampler(*dgl.graph, {25, 10},
                                          rng.fork());
            core::Timer t;
            double nodes = 0, edges = 0;
            for (const auto &seeds : batches) {
                auto smp = sampler.sample(seeds);
                nodes += static_cast<double>(
                    smp.inputNodes().size());
                for (const auto &blk : smp.blocks)
                    edges += static_cast<double>(
                        blk.csc.numEdges());
            }
            table.addRow(
                {name, "GraphSAGE",
                 profiling::fmtSeconds(t.elapsed() /
                                       batches.size()),
                 profiling::fmtCount(static_cast<int64_t>(
                     nodes / batches.size())),
                 profiling::fmtCount(static_cast<int64_t>(
                     edges / batches.size())),
                 "0.0%"});
        }
        auto run_layerwise = [&](const char *label, auto &sampler) {
            core::Timer t;
            double nodes = 0, edges = 0, isolated = 0, dsts = 0;
            for (const auto &seeds : batches) {
                auto smp = sampler.sample(seeds);
                nodes += static_cast<double>(
                    smp.inputNodes().size());
                for (const auto &layer : smp.layers) {
                    edges += static_cast<double>(
                        layer.csc.numEdges());
                    isolated += static_cast<double>(
                        layer.isolatedDstCount());
                    dsts += static_cast<double>(
                        layer.dstNodes.size());
                }
            }
            table.addRow(
                {name, label,
                 profiling::fmtSeconds(t.elapsed() /
                                       batches.size()),
                 profiling::fmtCount(static_cast<int64_t>(
                     nodes / batches.size())),
                 profiling::fmtCount(static_cast<int64_t>(
                     edges / batches.size())),
                 profiling::fmtFixed(100.0 * isolated / dsts, 1) +
                     "%"});
        };
        dglx::FastGcnSampler fastgcn(
            *dgl.graph, {budget0, budget1}, rng.fork());
        run_layerwise("FastGCN", fastgcn);
        dglx::LadiesSampler ladies(*dgl.graph, {budget0, budget1},
                                   rng.fork());
        run_layerwise("LADIES", ladies);
    }
    table.print();
    bench::writeJsonReport(opts, "ablation_layer_samplers",
                           {{"layer_samplers", &table}});
    std::printf(
        "\nExpected shape: FastGCN needs the smallest input frontier "
        "but leaves destinations isolated (its accuracy issue); "
        "LADIES isolates nothing at clearly higher sampling cost "
        "(its overhead issue); the neighbor sampler's computation "
        "graph grows fastest with depth (Section 2.1 narrative).\n");
    return 0;
}
