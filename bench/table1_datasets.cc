/**
 * @file
 * Table 1: dataset statistics — published values side by side with
 * the statistics of the synthesized stand-in graphs actually used by
 * the benches at the applied scale.
 */

#include "bench_common.h"

using namespace gnnbench;

int
main(int argc, char **argv)
{
    auto opts = bench::parseOptions(argc, argv);
    bench::banner("Table 1: dataset statistics", opts);

    profiling::Table table({"Dataset", "Description", "#Nodes(paper)",
                            "#Edges(paper)", "#Feat", "#Classes",
                            "Train/Val/Test", "#Nodes(synth)",
                            "#Edges(synth)"});
    for (const auto &name : opts.datasets) {
        const auto &info = graph::datasetInfo(name);
        graph::Dataset ds = bench::loadDataset(name, opts);
        char split[64];
        std::snprintf(split, sizeof(split), "%.2f/%.2f/%.2f",
                      info.trainFrac, info.valFrac, info.testFrac);
        table.addRow({info.name, info.description,
                      profiling::fmtCount(info.numNodes),
                      profiling::fmtCount(info.numEdges),
                      std::to_string(info.numFeatures),
                      std::to_string(info.numClasses), split,
                      profiling::fmtCount(ds.numNodes()),
                      profiling::fmtCount(ds.numEdges())});
    }
    table.print();
    bench::writeJsonReport(opts, "table1_datasets",
                           {{"datasets", &table}});
    return 0;
}
