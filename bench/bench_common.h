/**
 * @file
 * Shared command-line handling for the figure benchmarks.
 *
 * Every bench accepts:
 *   --datasets a,b,c   subset of Table 1 datasets (default: all six)
 *   --scale f          multiplier on each dataset's default scale
 *   --epochs n         training epochs for the end-to-end benches
 *   --seed s           RNG seed
 *   --csv prefix       also write each table to <prefix><table>.csv
 *   --json path        write the unified run report (Chrome-trace
 *                      JSON + structured results) and enable tracing
 *   --workers n        dataloader num_workers for the model benches
 *   --kernel-variant v sparse-kernel variant (see
 *                      kernels::validVariantList()) for the shared
 *                      gnnbench::kernels layer
 *   --reorder m        graph-reordering locality pass (none/degree/
 *                      rcm) applied to every loaded dataset before
 *                      the bench runs — results are permutation-
 *                      equivalent to the unordered run
 *   --metrics-port p   serve the live OpenMetrics rendering of the
 *                      process registry on 127.0.0.1:p while the
 *                      bench runs (0 picks an ephemeral port; off by
 *                      default)
 *   --metrics-dump f   write the final OpenMetrics rendering to f
 *                      (CI artifact capture; independent of --json)
 */

#ifndef GNNBENCH_BENCH_COMMON_H
#define GNNBENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "gnnbench/device/hierarchy.h"
#include "gnnbench/graph/datasets.h"
#include "gnnbench/graph/reorder.h"
#include "gnnbench/kernels/kernels.h"
#include "gnnbench/profiling/exporter.h"
#include "gnnbench/profiling/metrics_registry.h"
#include "gnnbench/profiling/report.h"
#include "gnnbench/profiling/trace.h"

namespace gnnbench {
namespace bench {

struct Options
{
    std::vector<std::string> datasets = graph::datasetNames();
    double scale = 1.0;
    int epochs = 10;
    uint64_t seed = 42;
    /** When non-empty, tables are also written to
     *  "<csvPrefix><table>.csv" for machine consumption. */
    std::string csvPrefix;
    /** When non-empty, the unified run report (trace + results) is
     *  written here and the trace recorder runs during the bench. */
    std::string jsonPath;
    /** Dataloader num_workers for benches that train models. */
    int numWorkers = 0;
    /** Locality pass applied by bench::loadDataset (--reorder). */
    graph::ReorderMethod reorder = graph::ReorderMethod::None;
    /** Port for the live OpenMetrics listener (-1 = off, 0 =
     *  ephemeral). */
    int metricsPort = -1;
    /** When non-empty, the final OpenMetrics rendering is written
     *  here by writeJsonReport (works without --json). */
    std::string metricsDumpPath;
};

inline std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        const size_t end = comma == std::string::npos ? s.size()
                                                      : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

inline Options
parseOptions(int argc, char **argv, Options opts = Options{})
{
    // Force the lazy GNNBENCH_KERNEL_VARIANT read now, so a bad env
    // value dies at startup with the clear message instead of being
    // silently ignored by benches that never dispatch a kernel.
    kernels::defaultVariant();
    // Same contract for the GNNBENCH_DEVICE_* hierarchy knobs.
    device::deviceConfig();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            GNNBENCH_CHECK(i + 1 < argc, "missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--datasets") {
            opts.datasets = splitCsv(next());
        } else if (arg == "--scale") {
            opts.scale = std::stod(next());
        } else if (arg == "--epochs") {
            opts.epochs = std::stoi(next());
        } else if (arg == "--seed") {
            opts.seed = std::stoull(next());
        } else if (arg == "--csv") {
            opts.csvPrefix = next();
        } else if (arg == "--json") {
            opts.jsonPath = next();
        } else if (arg == "--workers") {
            opts.numWorkers = std::stoi(next());
        } else if (arg == "--kernel-variant") {
            const std::string v = next();
            kernels::KernelVariant kv;
            GNNBENCH_CHECK(kernels::parseVariant(v, &kv),
                           "--kernel-variant must be one of ",
                           kernels::validVariantList(), ", got ", v);
            kernels::setDefaultVariant(kv);
        } else if (arg == "--reorder") {
            const std::string v = next();
            GNNBENCH_CHECK(
                graph::parseReorderMethod(v, &opts.reorder),
                "--reorder must be one of ",
                graph::validReorderMethodList(), ", got ", v);
        } else if (arg == "--metrics-port") {
            opts.metricsPort = std::stoi(next());
            GNNBENCH_CHECK(opts.metricsPort >= 0 &&
                               opts.metricsPort <= 65535,
                           "--metrics-port must be in [0, 65535]");
        } else if (arg == "--metrics-dump") {
            opts.metricsDumpPath = next();
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--datasets a,b,c] [--scale f] "
                        "[--epochs n] [--seed s] [--csv prefix] "
                        "[--json path] [--workers n] "
                        "[--kernel-variant v] [--reorder m] "
                        "[--metrics-port p] [--metrics-dump f]\n",
                        argv[0]);
            std::exit(0);
        } else {
            GNNBENCH_CHECK(false, "unknown argument ", arg);
        }
    }
    // Tracing must be live while the bench runs, so --json enables
    // the process recorder right at option-parse time.
    if (!opts.jsonPath.empty())
        profiling::TraceRecorder::global().enable();
    // The metrics listener likewise starts before the bench body;
    // it lives for the rest of the process (scrapes stay valid
    // through report writing).
    if (opts.metricsPort >= 0) {
        static profiling::MetricsHttpServer server(
            profiling::MetricsRegistry::global(), opts.metricsPort);
        if (server.ok())
            std::printf("serving OpenMetrics on 127.0.0.1:%d\n",
                        server.port());
        else
            std::fprintf(stderr,
                         "warning: --metrics-port %d: bind failed, "
                         "metrics listener disabled\n",
                         opts.metricsPort);
    }
    return opts;
}

/** The parsed options as report key/value pairs. */
inline std::vector<std::pair<std::string, std::string>>
optionPairs(const Options &opts)
{
    std::string datasets;
    for (const auto &d : opts.datasets)
        datasets += (datasets.empty() ? "" : ",") + d;
    return {{"datasets", datasets},
            {"scale", std::to_string(opts.scale)},
            {"epochs", std::to_string(opts.epochs)},
            {"seed", std::to_string(opts.seed)},
            {"workers", std::to_string(opts.numWorkers)},
            // The sparse-kernel dispatch policy active during the
            // bench, so reports are comparable across variants.
            {"kernel_variant",
             kernels::variantName(kernels::defaultVariant())},
            // What that policy actually resolves to on this machine
            // (post-Auto, post-CPU-feature dispatch): "simd[avx2]",
            // "simd[portable]", "tiled", or "reference".
            {"kernel_variant_resolved",
             kernels::resolvedVariantLabel(
                 kernels::defaultVariant())},
            {"reorder", graph::reorderMethodName(opts.reorder)}};
}

/**
 * Load a Table-1 dataset and apply the --reorder locality pass.  All
 * benches load through this helper so the reordering preprocessing is
 * uniformly exposed; results stay permutation-equivalent to the
 * unordered run (see graph::reorderDataset).
 */
inline graph::Dataset
loadDataset(const std::string &name, const Options &opts)
{
    graph::Dataset ds =
        graph::loadDataset(name, opts.scale, opts.seed);
    graph::reorderDataset(ds, opts.reorder);
    return ds;
}

/**
 * Write the unified run report to opts.jsonPath (no-op without
 * --json).  Benches call this once, after all tables are final; the
 * global trace and metrics snapshots ride along.
 */
inline void
writeJsonReport(
    const Options &opts, const char *bench_name,
    std::vector<std::pair<std::string, const profiling::Table *>>
        tables,
    std::vector<profiling::RunRecord> runs = {},
    const profiling::ProfileNode *profile = nullptr,
    std::function<void(profiling::JsonWriter &)> resultsEmitter = {})
{
    if (!opts.metricsDumpPath.empty()) {
        profiling::writeOpenMetricsFile(
            opts.metricsDumpPath, profiling::MetricsRegistry::global());
        std::printf("metrics dump written to %s\n",
                    opts.metricsDumpPath.c_str());
    }
    if (opts.jsonPath.empty())
        return;
    profiling::RunReportContext ctx;
    ctx.benchName = bench_name;
    ctx.options = optionPairs(opts);
    ctx.runs = std::move(runs);
    ctx.tables = std::move(tables);
    ctx.profile = profile;
    ctx.resultsEmitter = std::move(resultsEmitter);
    ctx.trace = &profiling::TraceRecorder::global();
    ctx.metrics = &profiling::MetricsRegistry::global();
    profiling::writeRunReport(opts.jsonPath, ctx);
    std::printf("run report written to %s\n", opts.jsonPath.c_str());
}

/** Print the standard bench banner with the applied scales. */
inline void
banner(const char *title, const Options &opts)
{
    std::printf("=== %s ===\n", title);
    std::printf("datasets (scale = published-default x %.3g):\n",
                opts.scale);
    for (const auto &name : opts.datasets) {
        const auto &info = graph::datasetInfo(name);
        std::printf("  %-13s default %.5f -> applied %.5f\n",
                    info.name.c_str(), info.defaultScale,
                    info.defaultScale * opts.scale);
    }
    std::printf("\n");
}

} // namespace bench
} // namespace gnnbench

#endif // GNNBENCH_BENCH_COMMON_H
