/**
 * @file
 * Shared command-line handling for the figure benchmarks.
 *
 * Every bench accepts:
 *   --datasets a,b,c   subset of Table 1 datasets (default: all six)
 *   --scale f          multiplier on each dataset's default scale
 *   --epochs n         training epochs for the end-to-end benches
 *   --seed s           RNG seed
 */

#ifndef GNNBENCH_BENCH_COMMON_H
#define GNNBENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gnnbench/graph/datasets.h"
#include "gnnbench/profiling/report.h"

namespace gnnbench {
namespace bench {

struct Options
{
    std::vector<std::string> datasets = graph::datasetNames();
    double scale = 1.0;
    int epochs = 10;
    uint64_t seed = 42;
    /** When non-empty, tables are also written to
     *  "<csvPrefix><table>.csv" for machine consumption. */
    std::string csvPrefix;
};

inline std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        const size_t end = comma == std::string::npos ? s.size()
                                                      : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

inline Options
parseOptions(int argc, char **argv, Options opts = Options{})
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            GNNBENCH_CHECK(i + 1 < argc, "missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--datasets") {
            opts.datasets = splitCsv(next());
        } else if (arg == "--scale") {
            opts.scale = std::stod(next());
        } else if (arg == "--epochs") {
            opts.epochs = std::stoi(next());
        } else if (arg == "--seed") {
            opts.seed = std::stoull(next());
        } else if (arg == "--csv") {
            opts.csvPrefix = next();
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--datasets a,b,c] [--scale f] "
                        "[--epochs n] [--seed s] [--csv prefix]\n",
                        argv[0]);
            std::exit(0);
        } else {
            GNNBENCH_CHECK(false, "unknown argument ", arg);
        }
    }
    return opts;
}

/** Print the standard bench banner with the applied scales. */
inline void
banner(const char *title, const Options &opts)
{
    std::printf("=== %s ===\n", title);
    std::printf("datasets (scale = published-default x %.3g):\n",
                opts.scale);
    for (const auto &name : opts.datasets) {
        const auto &info = graph::datasetInfo(name);
        std::printf("  %-13s default %.5f -> applied %.5f\n",
                    info.name.c_str(), info.defaultScale,
                    info.defaultScale * opts.scale);
    }
    std::printf("\n");
}

} // namespace bench
} // namespace gnnbench

#endif // GNNBENCH_BENCH_COMMON_H
