#include "gnnbench/pygx/data.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace gnnbench {
namespace pygx {

OomError::OomError(uint64_t requested, uint64_t budget)
    : requested_(requested), budget_(budget)
{
    std::ostringstream oss;
    oss << "CUDA out of memory: tried to allocate " << requested
        << " bytes with " << budget << " bytes budget";
    message_ = oss.str();
}

Data::Data(const graph::CooGraph &coo)
    : numNodes_(coo.numNodes), src_(coo.src), dst_(coo.dst)
{
}

namespace {

/**
 * torch.sort-style COO -> adjacency conversion: argsort the key
 * endpoint with a comparison sort (O(E log E), like PyG's
 * SparseTensor conversion), then segment into indptr.  Deliberately
 * not the counting sort dglx uses.
 */
std::unique_ptr<graph::CsrGraph>
sortConvert(NodeId num_nodes, const std::vector<NodeId> &key,
            const std::vector<NodeId> &other)
{
    std::vector<EdgeId> order(key.size());
    std::iota(order.begin(), order.end(), EdgeId{0});
    std::stable_sort(order.begin(), order.end(),
                     [&key](EdgeId a, EdgeId b) {
                         return key[a] < key[b];
                     });
    auto out = std::make_unique<graph::CsrGraph>();
    out->numRows = num_nodes;
    out->numCols = num_nodes;
    out->indptr.assign(num_nodes + 1, 0);
    out->indices.resize(key.size());
    for (size_t i = 0; i < order.size(); ++i) {
        out->indices[i] = other[order[i]];
        ++out->indptr[key[order[i]] + 1];
    }
    for (NodeId r = 0; r < num_nodes; ++r)
        out->indptr[r + 1] += out->indptr[r];
    return out;
}

} // namespace

const graph::CsrGraph &
Data::csc() const
{
    if (!csc_)
        csc_ = sortConvert(numNodes_, dst_, src_);
    return *csc_;
}

const graph::CsrGraph &
Data::csr() const
{
    if (!csr_)
        csr_ = sortConvert(numNodes_, src_, dst_);
    return *csr_;
}

uint64_t
Data::structureBytes() const
{
    return (src_.size() + dst_.size()) * sizeof(NodeId);
}

} // namespace pygx
} // namespace gnnbench
