#include "gnnbench/pygx/sampler.h"

#include <unordered_map>

#include "gnnbench/check/validate_sampling.h"
#include "gnnbench/core/parallel.h"

namespace gnnbench {
namespace pygx {

using core::parallel::chunkSeed;
using core::parallel::parallelFor;
using core::parallel::parallelForChunks;

namespace {

constexpr int64_t kDstChunk = 64;   // destination nodes per chunk
constexpr int64_t kRootChunk = 64;  // random-walk roots per chunk
constexpr int64_t kDrawChunk = 256; // i.i.d. CDF draws per chunk
constexpr int64_t kNodeChunk = 64;  // induced-subgraph nodes per chunk

/**
 * Interpreted-style induced-subgraph extraction (PyG's
 * torch_geometric.utils.subgraph over Python data structures):
 * hash-map relabeling and per-edge list appends, charging the
 * modeled interpreter cost per elementary step.
 */
EdgeBatch
extractInducedPy(const graph::CsrGraph &csr, std::vector<NodeId> nodes,
                 const PyOverheadModel &overhead,
                 device::Session *session)
{
    // Deliberately serial: this path models GIL-bound Python loops,
    // which cannot use the thread pool.
    EdgeBatch out;
    out.nodes = std::move(nodes);
    std::unordered_map<NodeId, NodeId> local;
    local.reserve(out.nodes.size() * 2);
    // The relabeling kernels themselves run in C extensions
    // (torch_geometric.utils.subgraph -> torch ops); the interpreter
    // cost is the Python glue around them: a few ops per node plus a
    // small per-scanned-edge factor for the mask construction.
    int64_t ops = 3 * static_cast<int64_t>(out.nodes.size());
    for (size_t i = 0; i < out.nodes.size(); ++i)
        local.emplace(out.nodes[i], static_cast<NodeId>(i));
    int64_t scanned = 0;
    for (size_t i = 0; i < out.nodes.size(); ++i) {
        const NodeId u = out.nodes[i];
        scanned += csr.indptr[u + 1] - csr.indptr[u];
        for (EdgeId e = csr.indptr[u]; e < csr.indptr[u + 1]; ++e) {
            const auto it = local.find(csr.indices[e]);
            if (it != local.end()) {
                out.src.push_back(static_cast<NodeId>(i));
                out.dst.push_back(it->second);
            }
        }
    }
    ops += scanned / 4;
    overhead.charge(session, ops);
    return out;
}

/**
 * C-extension-style induced extraction (PyG routes ClusterLoader and
 * SAINT subgraph construction through torch / torch_sparse C++ ops):
 * flat dense relabeling array, edge_index output.  Only the Python
 * glue around the call is charged.
 */
EdgeBatch
extractInducedFast(const graph::CsrGraph &csc,
                   std::vector<NodeId> nodes,
                   std::vector<NodeId> &local_scratch,
                   const PyOverheadModel &overhead,
                   device::Session *session, int64_t glue_ops)
{
    EdgeBatch out;
    out.nodes = std::move(nodes);
    const auto k = static_cast<int64_t>(out.nodes.size());
    parallelFor(0, k, kNodeChunk, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            local_scratch[out.nodes[i]] = static_cast<NodeId>(i);
    });
    // Two passes, both parallel over the batch nodes: count kept
    // edges per node, serial prefix sum, fill disjoint ranges.
    std::vector<EdgeId> offsets(k + 1, 0);
    parallelFor(0, k, kNodeChunk, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            const NodeId u = out.nodes[i];
            EdgeId cnt = 0;
            for (EdgeId e = csc.indptr[u]; e < csc.indptr[u + 1]; ++e)
                if (local_scratch[csc.indices[e]] != -1)
                    ++cnt;
            offsets[i + 1] = cnt;
        }
    });
    for (int64_t i = 0; i < k; ++i)
        offsets[i + 1] += offsets[i];
    out.src.resize(offsets[k]);
    out.dst.resize(offsets[k]);
    parallelFor(0, k, kNodeChunk, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            const NodeId u = out.nodes[i];
            EdgeId cursor = offsets[i];
            for (EdgeId e = csc.indptr[u]; e < csc.indptr[u + 1];
                 ++e) {
                const NodeId lv = local_scratch[csc.indices[e]];
                if (lv != -1) {
                    out.src[cursor] = lv;
                    out.dst[cursor] = static_cast<NodeId>(i);
                    ++cursor;
                }
            }
        }
    });
    parallelFor(0, k, kNodeChunk, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            local_scratch[out.nodes[i]] = -1;
    });
    overhead.charge(session, glue_ops);
    if (check::enabled())
        check::require(check::checkEdgeBatch(out, csc));
    return out;
}

} // namespace

NeighborSampler::NeighborSampler(const Data &data,
                                 std::vector<int> fanouts,
                                 core::Rng rng,
                                 device::Session *session)
    : data_(data), fanouts_(std::move(fanouts)), rng_(rng),
      session_(session)
{
    GNNBENCH_CHECK(!fanouts_.empty(), "neighbor sampler needs fanouts");
    // NeighborLoader requires CSC; trigger the (slow, comparison-sort)
    // conversion now so the cost lands where PyG pays it.
    data_.csc();
}

NeighborBatch
NeighborSampler::sample(const std::vector<NodeId> &seeds)
{
    GNNBENCH_CHECK(!seeds.empty(), "empty seed batch");
    NeighborBatch out;
    out.seeds = seeds;
    out.layers.resize(fanouts_.size());
    const graph::CsrGraph &csc = data_.csc();

    // One base draw per batch; chunk streams derive from it, so the
    // sampled batches are bit-identical for any thread count.
    const uint64_t base = rng_.next();
    std::vector<NodeId> frontier = seeds;
    int64_t ops = 0;
    for (size_t l = fanouts_.size(); l-- > 0;) {
        const int fanout = fanouts_[l];
        LayerBatch &layer = out.layers[l];
        layer.dstNodes = frontier;
        layer.srcNodes = frontier;
        const auto num_dst = static_cast<int64_t>(frontier.size());

        // Phase A (parallel): fix each destination's slot range up
        // front, then sample *global* neighbor ids into it with one
        // RNG stream per chunk.  The interpreter-cost model counts
        // the same "Python" steps the serial loop would run.
        std::vector<EdgeId> offsets(num_dst + 1, 0);
        for (int64_t d = 0; d < num_dst; ++d) {
            const EdgeId deg = csc.degree(frontier[d]);
            offsets[d + 1] =
                offsets[d] +
                std::min<EdgeId>(deg, static_cast<EdgeId>(fanout));
        }
        sampledGlobal_.resize(offsets[num_dst]);
        parallelForChunks(
            0, num_dst, kDstChunk,
            [&](int64_t c, int64_t d0, int64_t d1) {
                core::Rng crng(chunkSeed(
                    base, static_cast<uint64_t>(l),
                    static_cast<uint64_t>(c)));
                for (int64_t d = d0; d < d1; ++d) {
                    const NodeId u = frontier[d];
                    const EdgeId deg = csc.degree(u);
                    const NodeId *nbrs = csc.rowBegin(u);
                    // Per-node neighbor-list copy into a fresh list;
                    // the copy itself is one C call (random.sample),
                    // so only a fractional per-element interpreter
                    // cost applies (counted in phase B).
                    std::vector<NodeId> cand(nbrs, nbrs + deg);
                    const EdgeId take = offsets[d + 1] - offsets[d];
                    NodeId *slot =
                        sampledGlobal_.data() + offsets[d];
                    for (EdgeId i = 0; i < take; ++i) {
                        const EdgeId j =
                            i + static_cast<EdgeId>(
                                    crng.uniformInt(deg - i));
                        std::swap(cand[i], cand[j]);
                        slot[i] = cand[i];
                    }
                }
            });

        // Phase B (serial): hash-map relabeling (Python dict) in
        // destination order — first-encounter order, identical to a
        // fully serial pass.
        std::unordered_map<NodeId, NodeId> local;
        local.reserve(frontier.size() * 4);
        for (size_t i = 0; i < frontier.size(); ++i) {
            local.emplace(frontier[i], static_cast<NodeId>(i));
            ops += 2;
        }
        layer.eSrc.reserve(offsets[num_dst]);
        layer.eDst.reserve(offsets[num_dst]);
        for (int64_t d = 0; d < num_dst; ++d) {
            ops += 5 + csc.degree(frontier[d]) / 16;
            for (EdgeId i = offsets[d]; i < offsets[d + 1]; ++i) {
                const NodeId v = sampledGlobal_[i];
                auto [it, inserted] = local.emplace(
                    v,
                    static_cast<NodeId>(layer.srcNodes.size()));
                if (inserted)
                    layer.srcNodes.push_back(v);
                layer.eSrc.push_back(it->second);
                layer.eDst.push_back(static_cast<NodeId>(d));
                ops += 6;  // dict lookup + appends per sampled edge
            }
        }
        frontier = layer.srcNodes;
    }
    overhead_.charge(session_, ops);
    if (check::enabled())
        check::require(check::checkNeighborBatch(out, csc, fanouts_));
    return out;
}

ClusterSampler::ClusterSampler(const Data &data, int32_t num_parts,
                               core::Rng rng, device::Session *session)
    : data_(data), rng_(rng), session_(session)
{
    // ClusterData: CSC conversion + METIS partitioning, both one-time.
    const graph::CsrGraph &csc = data_.csc();
    partition_ = graph::partitionGraph(csc, num_parts, rng_);
    // Python-side: lists of node ids per cluster.
    members_.resize(num_parts);
    for (NodeId v = 0; v < data.numNodes(); ++v)
        members_[partition_.assignment[v]].push_back(v);
    overhead_.charge(session_, 6 * static_cast<int64_t>(
                                       data.numNodes()));
}

ClusterSampler::ClusterSampler(const ClusterSampler &other,
                               core::Rng rng, device::Session *session)
    : data_(other.data_), rng_(rng), session_(session),
      partition_(other.partition_), members_(other.members_)
{
}

EdgeBatch
ClusterSampler::sample(int32_t clusters_per_batch)
{
    GNNBENCH_CHECK(clusters_per_batch > 0 &&
                       clusters_per_batch <= partition_.numParts,
                   "bad clusters_per_batch");
    auto chosen = rng_.sampleWithoutReplacement(partition_.numParts,
                                                clusters_per_batch);
    // Batch assembly: ClusterLoader's collate slices each chosen
    // cluster's node range and concatenates them with torch calls
    // (~2 per cluster plus ~20 fixed), then the C-extension
    // submatrix extraction runs.
    overhead_.chargeTorchCalls(
        session_, 20 + 2 * static_cast<int64_t>(chosen.size()));
    std::vector<NodeId> nodes;
    int64_t ops = 0;
    for (NodeId c : chosen) {
        for (NodeId v : members_[c]) {
            nodes.push_back(v);
            ops += 1;
        }
    }
    if (localScratch_.empty())
        localScratch_.assign(data_.numNodes(), -1);
    return extractInducedFast(data_.csc(), std::move(nodes),
                              localScratch_, overhead_, session_,
                              ops);
}

SaintRwSampler::SaintRwSampler(const Data &data, int32_t num_roots,
                               int32_t walk_length, core::Rng rng,
                               device::Session *session)
    : data_(data), numRoots_(num_roots), walkLength_(walk_length),
      rng_(rng), session_(session)
{
    GNNBENCH_CHECK(num_roots > 0 && walk_length >= 0,
                   "bad random walk parameters");
    data_.csc();
}

EdgeBatch
SaintRwSampler::sample()
{
    // The walks themselves run in C++ in PyG (torch_cluster), so only
    // batch assembly pays interpreter overhead.
    const graph::CsrGraph &csc = data_.csc();
    if (localScratch_.empty())
        localScratch_.assign(data_.numNodes(), -1);
    const int32_t steps = walkLength_ + 1;
    const uint64_t base = rng_.next();
    // Phase A (parallel): chunked walks on per-chunk RNG streams,
    // visit sequences recorded into disjoint per-root slots.
    std::vector<NodeId> visits(static_cast<size_t>(numRoots_) * steps);
    std::vector<int32_t> visitLen(numRoots_);
    parallelForChunks(
        0, numRoots_, kRootChunk,
        [&](int64_t c, int64_t r0, int64_t r1) {
            core::Rng crng(chunkSeed(base, 0,
                                     static_cast<uint64_t>(c)));
            for (int64_t r = r0; r < r1; ++r) {
                NodeId *slot = visits.data() + r * steps;
                NodeId cur = static_cast<NodeId>(
                    crng.uniformInt(data_.numNodes()));
                int32_t len = 0;
                slot[len++] = cur;
                for (int32_t s = 0; s < walkLength_; ++s) {
                    const EdgeId deg = csc.degree(cur);
                    if (deg == 0)
                        break;
                    cur = csc.rowBegin(cur)[crng.uniformInt(deg)];
                    slot[len++] = cur;
                }
                visitLen[r] = len;
            }
        });
    // Phase B (serial): dedup in root order.
    std::vector<NodeId> nodes;
    nodes.reserve(static_cast<size_t>(numRoots_) * steps);
    for (int32_t r = 0; r < numRoots_; ++r) {
        const NodeId *slot =
            visits.data() + static_cast<size_t>(r) * steps;
        for (int32_t s = 0; s < visitLen[r]; ++s) {
            const NodeId v = slot[s];
            if (localScratch_[v] == -1) {
                localScratch_[v] = 1;
                nodes.push_back(v);
            }
        }
    }
    // Fixed per-batch Python glue only (~10 torch calls): both the
    // walks and the extraction kernels run in C extensions for
    // SAINT.  The walk's visit marks are overwritten by the
    // extraction's relabeling (same node set) and reset there.
    overhead_.chargeTorchCalls(session_, 10);
    return extractInducedFast(csc, std::move(nodes), localScratch_,
                              overhead_, session_, 200);
}

} // namespace pygx
} // namespace gnnbench

namespace gnnbench {
namespace pygx {

SaintNodeSampler::SaintNodeSampler(const Data &data, NodeId budget,
                                   core::Rng rng,
                                   device::Session *session)
    : data_(data), budget_(budget), rng_(rng), session_(session)
{
    GNNBENCH_CHECK(budget > 0 && budget <= data.numNodes(),
                   "bad node-sampler budget");
    const graph::CsrGraph &csc = data_.csc();
    degreeCdf_.resize(data.numNodes());
    double acc = 0.0;
    for (NodeId v = 0; v < data.numNodes(); ++v) {
        acc += static_cast<double>(csc.degree(v)) + 1.0;
        degreeCdf_[v] = acc;
    }
}

SaintNodeSampler::SaintNodeSampler(const SaintNodeSampler &other,
                                   core::Rng rng,
                                   device::Session *session)
    : data_(other.data_), budget_(other.budget_), rng_(rng),
      session_(session), degreeCdf_(other.degreeCdf_)
{
}

EdgeBatch
SaintNodeSampler::sample()
{
    if (localScratch_.empty())
        localScratch_.assign(data_.numNodes(), -1);
    const double total = degreeCdf_.back();
    const uint64_t base = rng_.next();
    // Phase A (parallel): i.i.d. CDF inversions into per-draw slots.
    std::vector<NodeId> draws(budget_);
    parallelForChunks(
        0, budget_, kDrawChunk,
        [&](int64_t c, int64_t i0, int64_t i1) {
            core::Rng crng(chunkSeed(base, 0,
                                     static_cast<uint64_t>(c)));
            for (int64_t i = i0; i < i1; ++i) {
                const double r = crng.uniform() * total;
                draws[i] = static_cast<NodeId>(
                    std::lower_bound(degreeCdf_.begin(),
                                     degreeCdf_.end(), r) -
                    degreeCdf_.begin());
            }
        });
    // Phase B (serial): dedup in draw order.
    std::vector<NodeId> nodes;
    nodes.reserve(budget_);
    for (NodeId v : draws) {
        if (localScratch_[v] == -1) {
            localScratch_[v] = 1;
            nodes.push_back(v);
        }
    }
    overhead_.chargeTorchCalls(session_, 8);
    return extractInducedFast(data_.csc(), std::move(nodes),
                              localScratch_, overhead_, session_,
                              100);
}

SaintEdgeSampler::SaintEdgeSampler(const Data &data, EdgeId budget,
                                   core::Rng rng,
                                   device::Session *session)
    : data_(data), budget_(budget), rng_(rng), session_(session)
{
    GNNBENCH_CHECK(budget > 0, "bad edge-sampler budget");
    // p_e proportional to 1/deg(u) + 1/deg(v), over edge_index order.
    const graph::CsrGraph &csc = data_.csc();
    edgeCdf_.resize(data.numEdges());
    double acc = 0.0;
    for (EdgeId e = 0; e < data.numEdges(); ++e) {
        const double du =
            static_cast<double>(csc.degree(data.edgeSrc()[e])) + 1.0;
        const double dv =
            static_cast<double>(csc.degree(data.edgeDst()[e])) + 1.0;
        acc += 1.0 / du + 1.0 / dv;
        edgeCdf_[e] = acc;
    }
}

SaintEdgeSampler::SaintEdgeSampler(const SaintEdgeSampler &other,
                                   core::Rng rng,
                                   device::Session *session)
    : data_(other.data_), budget_(other.budget_), rng_(rng),
      session_(session), edgeCdf_(other.edgeCdf_)
{
}

EdgeBatch
SaintEdgeSampler::sample()
{
    if (localScratch_.empty())
        localScratch_.assign(data_.numNodes(), -1);
    const double total = edgeCdf_.back();
    const uint64_t base = rng_.next();
    // Phase A (parallel): draw edges and record both endpoints.
    std::vector<NodeId> srcDraw(budget_), dstDraw(budget_);
    parallelForChunks(
        0, budget_, kDrawChunk,
        [&](int64_t c, int64_t i0, int64_t i1) {
            core::Rng crng(chunkSeed(base, 0,
                                     static_cast<uint64_t>(c)));
            for (int64_t i = i0; i < i1; ++i) {
                const double r = crng.uniform() * total;
                const EdgeId e = static_cast<EdgeId>(
                    std::lower_bound(edgeCdf_.begin(),
                                     edgeCdf_.end(), r) -
                    edgeCdf_.begin());
                srcDraw[i] = data_.edgeSrc()[e];
                dstDraw[i] = data_.edgeDst()[e];
            }
        });
    // Phase B (serial): dedup endpoints in draw order.
    std::vector<NodeId> nodes;
    auto visit = [&](NodeId v) {
        if (localScratch_[v] == -1) {
            localScratch_[v] = 1;
            nodes.push_back(v);
        }
    };
    for (EdgeId i = 0; i < budget_; ++i) {
        visit(srcDraw[i]);
        visit(dstDraw[i]);
    }
    overhead_.chargeTorchCalls(session_, 8);
    return extractInducedFast(data_.csc(), std::move(nodes),
                              localScratch_, overhead_, session_,
                              100);
}

} // namespace pygx
} // namespace gnnbench
