#include "gnnbench/pygx/scatter.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string_view>

#include "gnnbench/core/parallel.h"
#include "gnnbench/core/timer.h"
#include "gnnbench/kernels/fusion.h"
#include "gnnbench/kernels/kernels.h"

namespace gnnbench {
namespace pygx {

using core::Tensor;
using core::parallel::parallelFor;
using device::KernelDesc;

namespace {

/** Columns per chunk for column-blocked scatter accumulation. */
constexpr int64_t kColGrain = 32;

/** Rows per chunk for rowwise kernels, scaled by the row width. */
int64_t
rowGrain(int64_t cols)
{
    return std::max<int64_t>(1, (1 << 13) / std::max<int64_t>(cols, 1));
}

KernelDesc
makeDesc(const char *name, double flops, double bytes, double eff,
         const Costs &costs)
{
    KernelDesc d;
    d.name = name;
    d.flops = flops;
    d.bytes = bytes;
    d.efficiency = eff;
    d.frameworkOverhead = costs.gpuCallOverhead;
    return d;
}

template <typename F>
void
runKernel(const KernelCtx &ctx, const KernelDesc &desc, F &&fn)
{
    if (!ctx.session) {
        fn();
        return;
    }
    // The penalty applies only to the *fused* spmm, where torch's
    // generic loop and DGL's tuned kernel do the same algorithmic
    // work; the gather/scatter path is already structurally slower
    // (materialization) and must not be double-charged.
    const bool penalized =
        std::string_view(desc.name) == "torch_sparse_spmm";
    if (ctx.dev == device::DeviceType::CPU && penalized &&
        ctx.costs.cpuSparsePenalty > 0.0) {
        // Charge the modeled torch_sparse CPU kernel gap on top of
        // the measured time (see Costs).
        core::Timer t;
        fn();
        ctx.session->chargeCpuOverhead(t.elapsed() *
                                       ctx.costs.cpuSparsePenalty);
        return;
    }
    ctx.session->runKernel(ctx.dev, desc, std::forward<F>(fn));
}

} // namespace

void
checkMaterialization(uint64_t bytes, const KernelCtx &ctx)
{
    const auto scaled =
        static_cast<uint64_t>(static_cast<double>(bytes) * ctx.memScale);
    uint64_t budget = 0;
    if (ctx.onGpu() && ctx.session) {
        budget = ctx.session->gpu().spec().memoryBytes;
    } else if (ctx.session) {
        budget = ctx.session->cpuSpec().memoryBytes;
    } else {
        return;  // no session, no budget to enforce
    }
    // Leave headroom for the operands already resident (graph,
    // features, activations): PyTorch OOMs well before 100%.
    const auto usable = static_cast<uint64_t>(0.85 * budget);
    if (scaled > usable)
        throw OomError(scaled, usable);
}

Tensor
gather(const Tensor &x, const std::vector<NodeId> &idx,
       const KernelCtx &ctx)
{
    const int64_t f = x.cols();
    const auto e = static_cast<int64_t>(idx.size());
    checkMaterialization(static_cast<uint64_t>(e) * f * 4, ctx);
    Tensor out;
    runKernel(ctx,
              makeDesc("gather", 0.0, 8.0 * e * f + 8.0 * e,
                       ctx.costs.gpuGatherEff, ctx.costs),
              [&] { out = kernels::gatherRows(x, idx); });
    return out;
}

Tensor
scatterSum(const Tensor &src, const std::vector<NodeId> &idx,
           NodeId out_rows, const KernelCtx &ctx)
{
    GNNBENCH_CHECK(static_cast<int64_t>(idx.size()) == src.rows(),
                   "scatterSum: one index per row required");
    const int64_t f = src.cols();
    const auto e = static_cast<int64_t>(idx.size());
    Tensor out;
    runKernel(ctx,
              makeDesc("scatter_sum", static_cast<double>(e) * f,
                       12.0 * e * f + 8.0 * e,
                       ctx.costs.gpuScatterEff, ctx.costs),
              [&] {
                  // Indexed accumulation (PyG's CPU scatter path);
                  // the unified kernel keeps the ascending-edge
                  // per-element order, so results are bit-identical
                  // at any thread count.
                  out = kernels::scatterSum(src, idx, out_rows);
              });
    return out;
}

Tensor
scatterMean(const Tensor &src, const std::vector<NodeId> &idx,
            NodeId out_rows, const KernelCtx &ctx)
{
    Tensor sum = scatterSum(src, idx, out_rows, ctx);
    Tensor out;
    runKernel(ctx,
              makeDesc("scatter_mean_div",
                       static_cast<double>(sum.numel()),
                       8.0 * sum.numel(), ctx.costs.gpuElemEff,
                       ctx.costs),
              [&] {
                  out = std::move(sum);
                  std::vector<int64_t> counts(out_rows, 0);
                  for (NodeId i : idx)
                      ++counts[i];
                  parallelFor(
                      0, out.rows(), rowGrain(out.cols()),
                      [&](int64_t r0, int64_t r1) {
                          for (int64_t r = r0; r < r1; ++r) {
                              if (counts[r] <= 1)
                                  continue;
                              const float inv =
                                  1.0f / static_cast<float>(counts[r]);
                              float *orow = out.row(r);
                              for (int64_t j = 0; j < out.cols(); ++j)
                                  orow[j] *= inv;
                          }
                      });
              });
    return out;
}

Tensor
scatterMax(const Tensor &src, const std::vector<NodeId> &idx,
           NodeId out_rows, const KernelCtx &ctx)
{
    GNNBENCH_CHECK(static_cast<int64_t>(idx.size()) == src.rows(),
                   "scatterMax: one index per row required");
    const int64_t f = src.cols();
    const auto e = static_cast<int64_t>(idx.size());
    Tensor out;
    runKernel(
        ctx,
        makeDesc("scatter_max", static_cast<double>(e) * f,
                 12.0 * e * f + 8.0 * e, ctx.costs.gpuScatterEff,
                 ctx.costs),
        [&] { out = kernels::scatterMax(src, idx, out_rows); });
    return out;
}

Tensor
scatterSoftmax(const Tensor &scores, const std::vector<NodeId> &idx,
               NodeId num_segments, const KernelCtx &ctx)
{
    GNNBENCH_CHECK(static_cast<int64_t>(idx.size()) == scores.rows(),
                   "scatterSoftmax: one index per row required");
    const int64_t h = scores.cols();
    const auto e = static_cast<int64_t>(scores.rows());
    Tensor out;
    runKernel(
        ctx,
        makeDesc("scatter_softmax", 6.0 * e * h, 24.0 * e * h,
                 ctx.costs.gpuScatterEff, ctx.costs),
        [&] {
            out = Tensor::empty(e, h);
            // Three scatter passes (max, exp-sum, normalize) — the
            // unfused composition PyG's softmax() performs.  The two
            // segment-accumulating passes are column-blocked (chunks
            // own disjoint head columns of every segment), the final
            // normalize is row-parallel (disjoint edge rows).
            Tensor mx(num_segments, h);
            mx.fill(-std::numeric_limits<float>::infinity());
            Tensor z(num_segments, h);
            parallelFor(0, h, kColGrain, [&](int64_t j0, int64_t j1) {
                for (int64_t i = 0; i < e; ++i) {
                    float *m = mx.row(idx[i]);
                    const float *s = scores.row(i);
                    for (int64_t j = j0; j < j1; ++j)
                        m[j] = std::max(m[j], s[j]);
                }
                for (int64_t i = 0; i < e; ++i) {
                    float *zr = z.row(idx[i]);
                    const float *m = mx.row(idx[i]);
                    const float *s = scores.row(i);
                    float *o = out.row(i);
                    for (int64_t j = j0; j < j1; ++j) {
                        o[j] = std::exp(s[j] - m[j]);
                        zr[j] += o[j];
                    }
                }
            });
            parallelFor(0, e, rowGrain(h), [&](int64_t r0, int64_t r1) {
                for (int64_t i = r0; i < r1; ++i) {
                    const float *zr = z.row(idx[i]);
                    float *o = out.row(i);
                    for (int64_t j = 0; j < h; ++j)
                        o[j] = zr[j] > 0.0f ? o[j] / zr[j] : 0.0f;
                }
            });
        });
    return out;
}

Tensor
mulEdgeScalar(const Tensor &src, const Tensor &w, const KernelCtx &ctx)
{
    GNNBENCH_CHECK(w.rows() == src.rows() && w.cols() == 1,
                   "mulEdgeScalar: weights must be E x 1");
    Tensor out;
    runKernel(ctx,
              makeDesc("mul_edge_scalar",
                       static_cast<double>(src.numel()),
                       12.0 * src.numel(), ctx.costs.gpuElemEff,
                       ctx.costs),
              [&] {
                  out = src.clone();
                  parallelFor(0, out.rows(), rowGrain(out.cols()),
                              [&](int64_t r0, int64_t r1) {
                                  for (int64_t i = r0; i < r1; ++i) {
                                      const float we = w(i, 0);
                                      float *orow = out.row(i);
                                      for (int64_t j = 0;
                                           j < out.cols(); ++j)
                                          orow[j] *= we;
                                  }
                              });
              });
    return out;
}

Tensor
spmm(const graph::CsrGraph &csc, const Tensor &x, const float *w,
     const KernelCtx &ctx)
{
    GNNBENCH_CHECK(x.rows() == csc.numCols,
                   "pygx spmm: feature rows != source nodes");
    const int64_t f = x.cols();
    const double e = static_cast<double>(csc.numEdges());
    Tensor out;
    runKernel(ctx,
              makeDesc("torch_sparse_spmm", 2.0 * e * f,
                       4.0 * (e * f + csc.numRows * f) + 12.0 * e,
                       ctx.costs.gpuSpmmEff, ctx.costs),
              [&] {
                  out = kernels::spmm(csc, x, kernels::ReduceOp::Sum,
                                      w);
              });
    return out;
}

Tensor
gemm(const Tensor &a, const Tensor &b, const KernelCtx &ctx)
{
    Tensor out;
    runKernel(ctx,
              makeDesc("gemm",
                       2.0 * static_cast<double>(a.rows()) * a.cols() *
                           b.cols(),
                       4.0 * (static_cast<double>(a.rows()) * a.cols() +
                              static_cast<double>(a.cols()) * b.cols() +
                              static_cast<double>(a.rows()) * b.cols()),
                       ctx.costs.gpuGemmEff, ctx.costs),
              [&] { out = core::ops::matmul(a, b); });
    return out;
}

core::ag::Var
propagateVar(std::shared_ptr<const std::vector<NodeId>> src,
             std::shared_ptr<const std::vector<NodeId>> dst,
             std::shared_ptr<const std::vector<float>> w,
             NodeId out_rows, NodeId src_rows, const core::ag::Var &x,
             const KernelCtx &ctx)
{
    // Record the per-op chain in a kernel graph.  PyG's eager
    // paradigm cannot execute fused kernels, so the eligible
    // gather→scatter (or mul-edge→scatter) pair is *rejected* — the
    // materialized per-edge message tensor below is exactly the
    // paper's Observation 3 — and the decline is counted under
    // device.fusion.rejected_pairs.
    {
        kernels::KernelGraph kg(/*framework_supports_fusion=*/false);
        const uint64_t msg_bytes = static_cast<uint64_t>(src->size()) *
                                   static_cast<uint64_t>(x->value.cols()) *
                                   sizeof(float);
        int producer = kg.addNode(kernels::FusedOp::Gather, "gather",
                                  msg_bytes);
        if (w) {
            const int mul = kg.addNode(kernels::FusedOp::MulEdge,
                                       "mul_edge_scalar", msg_bytes);
            kg.addEdge(producer, mul);
            producer = mul;
        }
        const int scat =
            kg.addNode(kernels::FusedOp::Scatter, "scatter_sum", 0);
        kg.addEdge(producer, scat);
        kg.fuse(producer, scat, 2 * msg_bytes);
    }
    // Forward: gather by src, optionally weight, scatter-add by dst.
    Tensor msgs = gather(x->value, *src, ctx);
    if (w) {
        GNNBENCH_CHECK(w->size() == src->size(),
                       "propagateVar: weight per edge required");
        Tensor wt(static_cast<int64_t>(w->size()), 1);
        std::copy(w->begin(), w->end(), wt.data());
        msgs = mulEdgeScalar(msgs, wt, ctx);
    }
    Tensor y = scatterSum(msgs, *dst, out_rows, ctx);
    return core::ag::makeOp(
        "pygx.propagate", std::move(y), {x},
        [src = std::move(src), dst = std::move(dst), w = std::move(w),
         src_rows, x, ctx](core::ag::Node &n) {
            if (!x->requiresGrad)
                return;
            Tensor g = gather(n.grad, *dst, ctx);
            if (w) {
                Tensor wt(static_cast<int64_t>(w->size()), 1);
                std::copy(w->begin(), w->end(), wt.data());
                g = mulEdgeScalar(g, wt, ctx);
            }
            x->accumulateGrad(scatterSum(g, *src, src_rows, ctx));
        });
}

core::ag::Var
spmmVar(const graph::CsrGraph &csc, const float *w_csc,
        std::shared_ptr<const graph::CsrGraph> bwd,
        std::shared_ptr<const std::vector<float>> w_bwd,
        const core::ag::Var &x, const KernelCtx &ctx)
{
    Tensor y = spmm(csc, x->value, w_csc, ctx);
    return core::ag::makeOp(
        "pygx.spmm", std::move(y), {x},
        [bwd = std::move(bwd), w_bwd = std::move(w_bwd), x,
         ctx](core::ag::Node &n) {
            if (x->requiresGrad) {
                const float *w = w_bwd ? w_bwd->data() : nullptr;
                x->accumulateGrad(spmm(*bwd, n.grad, w, ctx));
            }
        });
}

core::ag::Var
gemmVar(const core::ag::Var &a, const core::ag::Var &b,
        const KernelCtx &ctx)
{
    Tensor y = gemm(a->value, b->value, ctx);
    return core::ag::makeOp(
        "pygx.gemm", std::move(y), {a, b},
        [a, b, ctx](core::ag::Node &n) {
            if (a->requiresGrad) {
                Tensor ga;
                runKernel(
                    ctx,
                    makeDesc("gemm",
                             2.0 * static_cast<double>(n.grad.rows()) *
                                 n.grad.cols() * b->value.rows(),
                             0.0, ctx.costs.gpuGemmEff, ctx.costs),
                    [&] {
                        ga = core::ops::matmulTb(n.grad, b->value);
                    });
                a->accumulateGrad(ga);
            }
            if (b->requiresGrad) {
                Tensor gb;
                runKernel(
                    ctx,
                    makeDesc("gemm",
                             2.0 * static_cast<double>(a->value.cols()) *
                                 a->value.rows() * n.grad.cols(),
                             0.0, ctx.costs.gpuGemmEff, ctx.costs),
                    [&] {
                        gb = core::ops::matmulTa(a->value, n.grad);
                    });
                b->accumulateGrad(gb);
            }
        });
}

namespace {

void
chargeElem(const KernelCtx &ctx, double n)
{
    if (!ctx.session || !ctx.onGpu())
        return;
    ctx.session->chargeGpuKernel(makeDesc(
        "elementwise", 2.0 * n, 8.0 * n, ctx.costs.gpuElemEff,
        ctx.costs));
}

core::ag::Var
elemWrap(const KernelCtx &ctx,
         const std::function<core::ag::Var()> &build)
{
    if (!ctx.session || !ctx.onGpu())
        return build();
    core::Timer timer;
    core::ag::Var out = build();
    ctx.session->excludeWall(timer.elapsed());
    chargeElem(ctx, static_cast<double>(out->value.numel()));
    if (out->requiresGrad && out->backwardFn) {
        auto inner = std::move(out->backwardFn);
        auto ctx_copy = ctx;
        out->backwardFn = [inner = std::move(inner),
                           ctx_copy](core::ag::Node &n) {
            core::Timer t;
            inner(n);
            ctx_copy.session->excludeWall(t.elapsed());
            chargeElem(ctx_copy,
                       static_cast<double>(n.value.numel()));
        };
    }
    return out;
}

} // namespace

core::ag::Var
addVar(const core::ag::Var &a, const core::ag::Var &b,
       const KernelCtx &ctx)
{
    return elemWrap(ctx, [&] { return core::ag::add(a, b); });
}

core::ag::Var
addBiasVar(const core::ag::Var &x, const core::ag::Var &bias,
           const KernelCtx &ctx)
{
    return elemWrap(ctx, [&] { return core::ag::addBias(x, bias); });
}

core::ag::Var
rowScaleVar(const core::ag::Var &x, std::vector<float> s,
            const KernelCtx &ctx)
{
    return elemWrap(ctx, [&] {
        return core::ag::rowScale(x, std::move(s));
    });
}

core::ag::Var
reluVar(const core::ag::Var &x, const KernelCtx &ctx)
{
    return elemWrap(ctx, [&] { return core::ag::relu(x); });
}

core::ag::Var
scaleVar(const core::ag::Var &x, float alpha, const KernelCtx &ctx)
{
    return elemWrap(ctx, [&] { return core::ag::scale(x, alpha); });
}

} // namespace pygx
} // namespace gnnbench
