/**
 * @file
 * pygx::Data — the lightweight edge-index graph container of the
 * PyG-like framework.
 *
 * Like torch_geometric.data.Data, construction is *cheap*: only the
 * COO "edge_index" arrays are stored (this is why the paper's
 * Observation 1 finds PyG's data loader faster).  Adjacency formats
 * required by samplers and fused kernels are converted lazily — and
 * that CSC conversion is exactly the cost the paper calls out as
 * "quite slow on large datasets".
 */

#ifndef GNNBENCH_PYGX_DATA_H
#define GNNBENCH_PYGX_DATA_H

#include <memory>
#include <vector>

#include "gnnbench/device/session.h"
#include "gnnbench/graph/coo.h"
#include "gnnbench/graph/csr.h"

namespace gnnbench {
namespace pygx {

/**
 * Modeled GPU cost constants of the pygx framework.
 *
 * PyG's gather/scatter kernels (PyTorch Scatter/Sparse) pay atomics
 * and extra materialization traffic (lower achieved bandwidth), but
 * each call carries less framework bookkeeping than DGL — the reason
 * PyG wins on small graphs on GPU (paper Observation 3).
 */
struct Costs
{
    double gpuScatterEff = 0.28;  ///< atomics-limited scatter
    double gpuGatherEff = 0.55;
    double gpuSpmmEff = 0.42;     ///< torch_sparse CSR matmul
    double gpuGemmEff = 0.85;
    double gpuElemEff = 0.60;
    double gpuCallOverhead = 15e-6;
    /**
     * Modeled extra CPU time (fraction of measured time) charged to
     * pygx *sparse* kernels: the paper attributes DGL's CPU wins to
     * the DistGNN/LIBXSMM message-passing kernel [Md et al. SC'21],
     * whose register-blocked, prefetched loops beat torch_sparse /
     * torch_scatter's generic loops.  On this single-core harness
     * both implementations reach similar bandwidth, so the gap is
     * charged explicitly (0.5 = torch kernels 1.5x slower, the
     * low end of DistGNN's reported single-socket gains).  Dense
     * GEMM is shared (both use the same BLAS) and exempt.
     */
    double cpuSparsePenalty = 0.5;
};

/** Execution context shared by pygx kernels in one run. */
struct KernelCtx
{
    device::Session *session = nullptr;
    device::DeviceType dev = device::DeviceType::CPU;
    Costs costs;
    /**
     * Memory-scale compensation for the OOM model: sampled datasets
     * are generated below full size, so materialization checks
     * multiply by this factor (1/dataset_scale) to reproduce the
     * paper's full-size out-of-memory behaviour.
     */
    double memScale = 1.0;

    bool onGpu() const { return dev == device::DeviceType::GPU; }
};

/**
 * Thrown by pygx kernels when a per-edge materialization would exceed
 * the target device's memory (at full dataset scale).  This is the
 * only exception type the library throws; benchmark binaries catch it
 * and report "OOM" exactly like the paper's Figure 5.
 */
class OomError : public std::exception
{
  public:
    OomError(uint64_t requested, uint64_t budget);

    const char *what() const noexcept override { return message_.c_str(); }

    uint64_t requestedBytes() const { return requested_; }
    uint64_t budgetBytes() const { return budget_; }

  private:
    uint64_t requested_;
    uint64_t budget_;
    std::string message_;
};

/**
 * Models the CPython interpreter cost of PyG's Python-level sampler
 * loops.  pygx samplers execute real (correct) C++ but count the
 * "bytecode operations" the equivalent Python would run and charge
 * perOpSeconds each through the session — reproducing the sampler
 * gap of the paper's Observation 2 without an interpreter.
 */
struct PyOverheadModel
{
    /** Measured CPython 3.8 dispatch cost per simple bytecode op. */
    double perOpSeconds = 20e-9;

    /** Python-level torch API call overhead (arg parsing, dispatch,
     *  tensor wrapper construction): a few microseconds per call. */
    double perTorchCallSeconds = 3e-6;

    /**
     * Modeled seconds charged while no session was attached.  The
     * prefetching dataloaders run sampler clones with a null session
     * on worker threads (device::Session is single-threaded); the
     * consumer drains this and charges it on the main thread.
     */
    mutable double accumulatedSeconds = 0.0;

    /** Charge @p ops interpreted operations to the session. */
    void
    charge(device::Session *session, int64_t ops) const
    {
        if (ops <= 0)
            return;
        chargeSeconds(session,
                      perOpSeconds * static_cast<double>(ops));
    }

    /** Charge @p calls Python-level torch op invocations. */
    void
    chargeTorchCalls(device::Session *session, int64_t calls) const
    {
        if (calls <= 0)
            return;
        chargeSeconds(session, perTorchCallSeconds *
                                   static_cast<double>(calls));
    }

    /** Charge to the session, or accumulate when detached. */
    void
    chargeSeconds(device::Session *session, double seconds) const
    {
        if (session)
            session->chargeCpuOverhead(seconds);
        else
            accumulatedSeconds += seconds;
    }

    /** Take (and reset) the seconds accumulated while detached. */
    double
    drainAccumulated() const
    {
        const double s = accumulatedSeconds;
        accumulatedSeconds = 0.0;
        return s;
    }
};

/** The PyG-like framework's central data object. */
class Data
{
  public:
    /** Cheap construction: stores only edge_index (+ node count). */
    explicit Data(const graph::CooGraph &coo);

    NodeId numNodes() const { return numNodes_; }
    EdgeId numEdges() const
    {
        return static_cast<EdgeId>(src_.size());
    }

    const std::vector<NodeId> &edgeSrc() const { return src_; }
    const std::vector<NodeId> &edgeDst() const { return dst_; }

    /**
     * In-adjacency (CSC), converted lazily with a torch.sort-style
     * comparison sort (the conversion PyG performs when a sampler or
     * SparseTensor needs CSC).  The (real) conversion cost lands in
     * whichever phase triggers it.
     */
    const graph::CsrGraph &csc() const;

    /** Out-adjacency (CSR), converted lazily the same way. */
    const graph::CsrGraph &csr() const;

    /** Whether csc()/csr() have been materialized yet. */
    bool cscReady() const { return csc_ != nullptr; }
    bool csrReady() const { return csr_ != nullptr; }

    /** Bytes of the stored edge_index (for transfer modeling). */
    uint64_t structureBytes() const;

  private:
    NodeId numNodes_ = 0;
    std::vector<NodeId> src_;
    std::vector<NodeId> dst_;
    mutable std::unique_ptr<graph::CsrGraph> csc_;
    mutable std::unique_ptr<graph::CsrGraph> csr_;
};

} // namespace pygx
} // namespace gnnbench

#endif // GNNBENCH_PYGX_DATA_H
