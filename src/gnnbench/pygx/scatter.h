/**
 * @file
 * PyTorch Scatter / PyTorch Sparse-style kernels of the pygx
 * framework.
 *
 * Where dglx fuses message computation with aggregation, pygx follows
 * PyG's gather-and-scatter paradigm: gather() materializes an E x F
 * per-edge message tensor which scatter*() then reduces.  The extra
 * materialization costs memory traffic on CPU, atomics-limited
 * bandwidth on the modeled GPU, and — for the layers PyG has no fused
 * kernel for — O(E x F) memory that overflows the modeled GPU on
 * large graphs (paper Observation 3).  spmm() is the torch_sparse
 * fused path available to GCN-like layers.
 */

#ifndef GNNBENCH_PYGX_SCATTER_H
#define GNNBENCH_PYGX_SCATTER_H

#include "gnnbench/core/autograd.h"
#include "gnnbench/core/tensor.h"
#include "gnnbench/pygx/data.h"

namespace gnnbench {
namespace pygx {

/**
 * Raise OomError if materializing @p bytes (scaled by ctx.memScale to
 * full dataset size) would exceed the target device's memory.
 */
void checkMaterialization(uint64_t bytes, const KernelCtx &ctx);

/** Materialize per-edge messages: out[e, :] = x[idx[e], :]. */
core::Tensor gather(const core::Tensor &x,
                    const std::vector<NodeId> &idx,
                    const KernelCtx &ctx);

/** out[idx[e], :] += src[e, :] over @p out_rows rows. */
core::Tensor scatterSum(const core::Tensor &src,
                        const std::vector<NodeId> &idx, NodeId out_rows,
                        const KernelCtx &ctx);

/** Scatter mean: sum then divide by per-row counts. */
core::Tensor scatterMean(const core::Tensor &src,
                         const std::vector<NodeId> &idx,
                         NodeId out_rows, const KernelCtx &ctx);

/** Scatter max (rows with no contribution become 0). */
core::Tensor scatterMax(const core::Tensor &src,
                        const std::vector<NodeId> &idx, NodeId out_rows,
                        const KernelCtx &ctx);

/**
 * Segment softmax over an index vector (PyG's softmax(src, index)):
 * per column, softmax of the entries sharing the same index value.
 */
core::Tensor scatterSoftmax(const core::Tensor &scores,
                            const std::vector<NodeId> &idx,
                            NodeId num_segments, const KernelCtx &ctx);

/** out[e, :] = src[e, :] * w[e] (per-edge scalar broadcast). */
core::Tensor mulEdgeScalar(const core::Tensor &src,
                           const core::Tensor &w, const KernelCtx &ctx);

/**
 * torch_sparse::matmul-style fused SpMM over an in-adjacency: a
 * straightforward (unblocked, un-unrolled) CSR loop — functional but
 * without dglx's tuned inner kernel.
 */
core::Tensor spmm(const graph::CsrGraph &csc, const core::Tensor &x,
                  const float *w, const KernelCtx &ctx);

/** Dense GEMM routed through the device model. */
core::Tensor gemm(const core::Tensor &a, const core::Tensor &b,
                  const KernelCtx &ctx);

/// @name Autograd wrappers
/// @{

/**
 * Differentiable gather-multiply-scatter aggregation over an edge
 * list: out[dst[e], :] += w[e] * x[src[e], :].  The backward swaps
 * the roles of src and dst.  Edge arrays and weights are shared so
 * sampled-subgraph temporaries survive until backward.
 */
core::ag::Var propagateVar(
    std::shared_ptr<const std::vector<NodeId>> src,
    std::shared_ptr<const std::vector<NodeId>> dst,
    std::shared_ptr<const std::vector<float>> w, NodeId out_rows,
    NodeId src_rows, const core::ag::Var &x, const KernelCtx &ctx);

/** Differentiable fused SpMM (forward csc / backward csr pair). */
core::ag::Var spmmVar(const graph::CsrGraph &csc, const float *w_csc,
                      std::shared_ptr<const graph::CsrGraph> bwd,
                      std::shared_ptr<const std::vector<float>> w_bwd,
                      const core::ag::Var &x, const KernelCtx &ctx);

/** Differentiable GEMM through the device model. */
core::ag::Var gemmVar(const core::ag::Var &a, const core::ag::Var &b,
                      const KernelCtx &ctx);

/// @name Device-routed elementwise ops (see dglx counterpart)
/// @{
core::ag::Var addVar(const core::ag::Var &a, const core::ag::Var &b,
                     const KernelCtx &ctx);
core::ag::Var addBiasVar(const core::ag::Var &x,
                         const core::ag::Var &bias,
                         const KernelCtx &ctx);
core::ag::Var rowScaleVar(const core::ag::Var &x,
                          std::vector<float> s, const KernelCtx &ctx);
core::ag::Var reluVar(const core::ag::Var &x, const KernelCtx &ctx);
core::ag::Var scaleVar(const core::ag::Var &x, float alpha,
                       const KernelCtx &ctx);

/**
 * Run @p fn (normalization-weight computation and similar prep) as
 * an elementwise kernel over @p elems elements on the configured
 * device.
 */
template <typename F>
void
runPrep(const KernelCtx &ctx, double elems, F &&fn)
{
    if (!ctx.session) {
        fn();
        return;
    }
    device::KernelDesc desc;
    desc.name = "prep";
    desc.flops = 2.0 * elems;
    desc.bytes = 8.0 * elems;
    desc.efficiency = ctx.costs.gpuElemEff;
    ctx.session->runKernel(ctx.dev, desc, std::forward<F>(fn));
}

/** Alias a long-lived object as a non-owning shared_ptr. */
template <typename T>
std::shared_ptr<const T>
borrow(const T &obj)
{
    return std::shared_ptr<const T>(&obj, [](const T *) {});
}

/// @}

} // namespace pygx
} // namespace gnnbench

#endif // GNNBENCH_PYGX_SCATTER_H
