#include "gnnbench/pygx/dataloader.h"

namespace gnnbench {
namespace pygx {

LoadedData
DataLoader::load(const graph::Dataset &dataset)
{
    LoadedData out;
    out.data = std::make_shared<Data>(dataset.graph);
    out.features = dataset.features.clone();
    out.labels = dataset.labels;
    out.trainIdx = dataset.trainIdx;
    out.valIdx = dataset.valIdx;
    out.testIdx = dataset.testIdx;
    return out;
}

namespace {

using TimedNeighbor = detail::Timed<NeighborBatch>;
using TimedEdge = detail::Timed<EdgeBatch>;

std::vector<sampling::Prefetcher<TimedNeighbor>::Producer>
neighborProducers(
    const NeighborSampler &proto, core::Rng &rng,
    std::shared_ptr<const std::vector<std::vector<NodeId>>> batches,
    int num_workers)
{
    GNNBENCH_CHECK(num_workers > 0, "loader needs >= 1 worker");
    std::vector<sampling::Prefetcher<TimedNeighbor>::Producer> out;
    out.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) {
        // Null session: the clone accumulates modeled overhead
        // instead of charging the (single-threaded) session.
        auto sampler = std::make_shared<NeighborSampler>(
            proto.withRng(rng.fork(), nullptr));
        out.push_back([sampler, batches](int64_t i) {
            TimedNeighbor t;
            t.batch = sampler->sample(
                (*batches)[static_cast<size_t>(i)]);
            t.modeledSeconds = sampler->takeModeledOverheadSeconds();
            return t;
        });
    }
    return out;
}

} // namespace

NeighborLoader::NeighborLoader(
    const NeighborSampler &proto, core::Rng &rng,
    std::vector<std::vector<NodeId>> seed_batches, int num_workers,
    int prefetch_depth, device::Session *session)
    : seedBatches_(
          std::make_shared<const std::vector<std::vector<NodeId>>>(
              std::move(seed_batches))),
      session_(session)
{
    prefetcher_ =
        std::make_unique<sampling::Prefetcher<TimedNeighbor>>(
            neighborProducers(proto, rng, seedBatches_, num_workers),
            static_cast<int64_t>(seedBatches_->size()),
            prefetch_depth, "pyg-neighbor");
}

std::optional<NeighborBatch>
NeighborLoader::next()
{
    std::optional<TimedNeighbor> t = prefetcher_->next();
    if (!t)
        return std::nullopt;
    if (session_)
        session_->chargeCpuOverhead(t->modeledSeconds);
    return std::move(t->batch);
}

void
NeighborLoader::shutdown()
{
    prefetcher_->shutdown();
}

const std::vector<double> &
NeighborLoader::workerBusySeconds()
{
    return prefetcher_->workerBusySeconds();
}

EdgeBatchLoader::EdgeBatchLoader(std::vector<Producer> producers,
                                 int num_batches, int prefetch_depth,
                                 device::Session *session,
                                 std::string lane_tag)
    : session_(session)
{
    std::vector<sampling::Prefetcher<TimedEdge>::Producer> wrapped;
    wrapped.reserve(producers.size());
    for (auto &p : producers)
        wrapped.push_back([producer = std::move(p)](int64_t) {
            return producer();
        });
    prefetcher_ = std::make_unique<sampling::Prefetcher<TimedEdge>>(
        std::move(wrapped), num_batches, prefetch_depth,
        std::move(lane_tag));
}

std::optional<EdgeBatch>
EdgeBatchLoader::next()
{
    std::optional<TimedEdge> t = prefetcher_->next();
    if (!t)
        return std::nullopt;
    if (session_)
        session_->chargeCpuOverhead(t->modeledSeconds);
    return std::move(t->batch);
}

void
EdgeBatchLoader::shutdown()
{
    prefetcher_->shutdown();
}

const std::vector<double> &
EdgeBatchLoader::workerBusySeconds()
{
    return prefetcher_->workerBusySeconds();
}

EdgeBatchLoader
makeClusterLoader(const ClusterSampler &proto, core::Rng &rng,
                  int32_t clusters_per_batch, int num_batches,
                  int num_workers, int prefetch_depth,
                  device::Session *session)
{
    GNNBENCH_CHECK(num_workers > 0, "loader needs >= 1 worker");
    std::vector<EdgeBatchLoader::Producer> producers;
    producers.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) {
        auto sampler = std::make_shared<ClusterSampler>(
            proto.withRng(rng.fork(), nullptr));
        producers.push_back([sampler, clusters_per_batch] {
            TimedEdge t;
            t.batch = sampler->sample(clusters_per_batch);
            t.modeledSeconds = sampler->takeModeledOverheadSeconds();
            return t;
        });
    }
    return EdgeBatchLoader(std::move(producers), num_batches,
                           prefetch_depth, session, "pyg-cluster");
}

EdgeBatchLoader
makeSaintRwLoader(const SaintRwSampler &proto, core::Rng &rng,
                  int num_batches, int num_workers,
                  int prefetch_depth, device::Session *session)
{
    GNNBENCH_CHECK(num_workers > 0, "loader needs >= 1 worker");
    std::vector<EdgeBatchLoader::Producer> producers;
    producers.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) {
        auto sampler = std::make_shared<SaintRwSampler>(
            proto.withRng(rng.fork(), nullptr));
        producers.push_back([sampler] {
            TimedEdge t;
            t.batch = sampler->sample();
            t.modeledSeconds = sampler->takeModeledOverheadSeconds();
            return t;
        });
    }
    return EdgeBatchLoader(std::move(producers), num_batches,
                           prefetch_depth, session, "pyg-saint");
}

} // namespace pygx
} // namespace gnnbench
