#include "gnnbench/pygx/dataloader.h"

#include "gnnbench/check/validate.h"
#include "gnnbench/core/parallel.h"

namespace gnnbench {
namespace pygx {

LoadedData
DataLoader::load(const graph::Dataset &dataset)
{
    LoadedData out;
    out.data = std::make_shared<Data>(dataset.graph);
    out.features = dataset.features.clone();
    out.labels = dataset.labels;
    out.trainIdx = dataset.trainIdx;
    out.valIdx = dataset.valIdx;
    out.testIdx = dataset.testIdx;
    return out;
}

namespace {

using core::parallel::chunkSeed;

// Per-loader-type salts for chunkSeed.  Batch i's sampler stream is a
// pure function of (the loader's one base draw, salt, i) — never of
// the worker that happens to run it — so delivered batches are
// bit-identical for any num_workers, 0 included.
constexpr uint64_t kNeighborSalt = 0x706E6269;  // "pnbi"
constexpr uint64_t kClusterSalt = 0x70636C75;   // "pclu"
constexpr uint64_t kSaintSalt = 0x70737274;     // "psrt"

using TimedNeighbor = detail::Timed<NeighborBatch>;
using TimedEdge = detail::Timed<EdgeBatch>;

std::vector<sampling::Prefetcher<TimedNeighbor>::Producer>
neighborProducers(
    const NeighborSampler &proto, core::Rng &rng,
    std::shared_ptr<const std::vector<std::vector<NodeId>>> batches,
    int num_workers)
{
    GNNBENCH_CHECK(num_workers >= 0, "negative worker count");
    const uint64_t base = rng.next();
    const int workers = std::max(num_workers, 1);
    std::vector<sampling::Prefetcher<TimedNeighbor>::Producer> out;
    out.reserve(workers);
    for (int w = 0; w < workers; ++w) {
        // Null session: the clone accumulates modeled overhead
        // instead of charging the (single-threaded) session.
        auto sampler = std::make_shared<NeighborSampler>(
            proto.withRng(core::Rng(base), nullptr));
        out.push_back([sampler, batches, base](int64_t i) {
            sampler->reseed(core::Rng(chunkSeed(
                base, kNeighborSalt, static_cast<uint64_t>(i))));
            TimedNeighbor t;
            t.batch = sampler->sample(
                (*batches)[static_cast<size_t>(i)]);
            t.modeledSeconds = sampler->takeModeledOverheadSeconds();
            return t;
        });
    }
    return out;
}

} // namespace

NeighborLoader::NeighborLoader(
    const NeighborSampler &proto, core::Rng &rng,
    std::vector<std::vector<NodeId>> seed_batches, int num_workers,
    int prefetch_depth, device::Session *session)
    : seedBatches_(
          std::make_shared<const std::vector<std::vector<NodeId>>>(
              std::move(seed_batches))),
      session_(session)
{
    auto producers =
        neighborProducers(proto, rng, seedBatches_, num_workers);
    const auto n = static_cast<int64_t>(seedBatches_->size());
    if (num_workers == 0)
        prefetcher_ =
            std::make_unique<sampling::Prefetcher<TimedNeighbor>>(
                std::move(producers[0]), n, "pyg-neighbor");
    else
        prefetcher_ =
            std::make_unique<sampling::Prefetcher<TimedNeighbor>>(
                std::move(producers), n, prefetch_depth,
                "pyg-neighbor");
}

std::optional<NeighborBatch>
NeighborLoader::next()
{
    std::optional<TimedNeighbor> t = prefetcher_->next();
    if (!t)
        return std::nullopt;
    if (session_)
        session_->chargeCpuOverhead(t->modeledSeconds);
    if (check::enabled()) {
        // Loader seam: the pipeline must deliver batches in serial
        // seed-batch order no matter which worker finished first.
        const auto &want =
            (*seedBatches_)[static_cast<size_t>(delivered_)];
        if (t->batch.seeds != want)
            check::require(check::Result::fail(
                "neighbor loader delivered batch out of order (at "
                "position " + std::to_string(delivered_) + ")"));
    }
    ++delivered_;
    return std::move(t->batch);
}

void
NeighborLoader::shutdown()
{
    prefetcher_->shutdown();
}

const std::vector<double> &
NeighborLoader::workerBusySeconds()
{
    return prefetcher_->workerBusySeconds();
}

EdgeBatchLoader::EdgeBatchLoader(std::vector<Producer> producers,
                                 int num_batches, int prefetch_depth,
                                 device::Session *session,
                                 std::string lane_tag)
    : session_(session)
{
    prefetcher_ = std::make_unique<sampling::Prefetcher<TimedEdge>>(
        std::move(producers), num_batches, prefetch_depth,
        std::move(lane_tag));
}

EdgeBatchLoader::EdgeBatchLoader(Producer producer, int num_batches,
                                 device::Session *session,
                                 std::string lane_tag)
    : session_(session)
{
    prefetcher_ = std::make_unique<sampling::Prefetcher<TimedEdge>>(
        std::move(producer), num_batches, std::move(lane_tag));
}

std::optional<EdgeBatch>
EdgeBatchLoader::next()
{
    std::optional<TimedEdge> t = prefetcher_->next();
    if (!t)
        return std::nullopt;
    if (session_)
        session_->chargeCpuOverhead(t->modeledSeconds);
    return std::move(t->batch);
}

void
EdgeBatchLoader::shutdown()
{
    prefetcher_->shutdown();
}

const std::vector<double> &
EdgeBatchLoader::workerBusySeconds()
{
    return prefetcher_->workerBusySeconds();
}

EdgeBatchLoader
makeClusterLoader(const ClusterSampler &proto, core::Rng &rng,
                  int32_t clusters_per_batch, int num_batches,
                  int num_workers, int prefetch_depth,
                  device::Session *session)
{
    GNNBENCH_CHECK(num_workers >= 0, "negative worker count");
    const uint64_t base = rng.next();
    const int workers = std::max(num_workers, 1);
    std::vector<EdgeBatchLoader::Producer> producers;
    producers.reserve(workers);
    for (int w = 0; w < workers; ++w) {
        auto sampler = std::make_shared<ClusterSampler>(
            proto.withRng(core::Rng(base), nullptr));
        producers.push_back(
            [sampler, clusters_per_batch, base](int64_t i) {
                sampler->reseed(core::Rng(chunkSeed(
                    base, kClusterSalt, static_cast<uint64_t>(i))));
                TimedEdge t;
                t.batch = sampler->sample(clusters_per_batch);
                t.modeledSeconds =
                    sampler->takeModeledOverheadSeconds();
                return t;
            });
    }
    if (num_workers == 0)
        return EdgeBatchLoader(std::move(producers[0]), num_batches,
                               session, "pyg-cluster");
    return EdgeBatchLoader(std::move(producers), num_batches,
                           prefetch_depth, session, "pyg-cluster");
}

EdgeBatchLoader
makeSaintRwLoader(const SaintRwSampler &proto, core::Rng &rng,
                  int num_batches, int num_workers,
                  int prefetch_depth, device::Session *session)
{
    GNNBENCH_CHECK(num_workers >= 0, "negative worker count");
    const uint64_t base = rng.next();
    const int workers = std::max(num_workers, 1);
    std::vector<EdgeBatchLoader::Producer> producers;
    producers.reserve(workers);
    for (int w = 0; w < workers; ++w) {
        auto sampler = std::make_shared<SaintRwSampler>(
            proto.withRng(core::Rng(base), nullptr));
        producers.push_back([sampler, base](int64_t i) {
            sampler->reseed(core::Rng(chunkSeed(
                base, kSaintSalt, static_cast<uint64_t>(i))));
            TimedEdge t;
            t.batch = sampler->sample();
            t.modeledSeconds = sampler->takeModeledOverheadSeconds();
            return t;
        });
    }
    if (num_workers == 0)
        return EdgeBatchLoader(std::move(producers[0]), num_batches,
                               session, "pyg-saint");
    return EdgeBatchLoader(std::move(producers), num_batches,
                           prefetch_depth, session, "pyg-saint");
}

} // namespace pygx
} // namespace gnnbench
