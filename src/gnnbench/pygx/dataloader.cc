#include "gnnbench/pygx/dataloader.h"

namespace gnnbench {
namespace pygx {

LoadedData
DataLoader::load(const graph::Dataset &dataset)
{
    LoadedData out;
    out.data = std::make_shared<Data>(dataset.graph);
    out.features = dataset.features.clone();
    out.labels = dataset.labels;
    out.trainIdx = dataset.trainIdx;
    out.valIdx = dataset.valIdx;
    out.testIdx = dataset.testIdx;
    return out;
}

} // namespace pygx
} // namespace gnnbench
