/**
 * @file
 * Samplers of the pygx framework, written the way PyG v2.0 executed
 * them: Python-level loops over per-node lists.
 *
 * Each sampler (a) first forces the CSR-to-CSC conversion that PyG's
 * loaders require ("quite slow on large datasets" — Observation 2),
 * (b) uses hash-map relabeling and per-node heap allocation instead
 * of the flat scratch arrays dglx uses, and (c) charges the modeled
 * CPython dispatch cost of its interpreted inner loops through
 * PyOverheadModel.  The algorithms and outputs are identical to the
 * dglx samplers; only the machinery differs — which is the point.
 */

#ifndef GNNBENCH_PYGX_SAMPLER_H
#define GNNBENCH_PYGX_SAMPLER_H

#include <vector>

#include "gnnbench/core/rng.h"
#include "gnnbench/graph/partition.h"
#include "gnnbench/pygx/message_passing.h"

namespace gnnbench {
namespace pygx {

/** PyG NeighborLoader-style neighborhood sampler. */
class NeighborSampler
{
  public:
    /**
     * Construction performs the CSC conversion (charged to the
     * session as real work — it is real work).
     * @param fanouts input-side layer first, e.g. {25, 10}.
     */
    NeighborSampler(const Data &data, std::vector<int> fanouts,
                    core::Rng rng, device::Session *session);

    /** Sample the layered edge batches for one batch of seeds. */
    NeighborBatch sample(const std::vector<NodeId> &seeds);

    const std::vector<int> &fanouts() const { return fanouts_; }

    /**
     * Clone with an independent RNG stream.  Prefetch workers pass a
     * null session and drain the modeled overhead on the consumer via
     * takeModeledOverheadSeconds().
     */
    NeighborSampler
    withRng(core::Rng rng, device::Session *session) const
    {
        return NeighborSampler(data_, fanouts_, rng, session);
    }

    /** Replace the RNG stream in place (per-batch loader reseeding). */
    void reseed(core::Rng rng) { rng_ = rng; }

    /** Modeled interpreter seconds accumulated while detached. */
    double
    takeModeledOverheadSeconds() const
    {
        return overhead_.drainAccumulated();
    }

  private:
    const Data &data_;
    std::vector<int> fanouts_;
    core::Rng rng_;
    device::Session *session_;
    PyOverheadModel overhead_;
    /** Sampled *global* neighbor ids, one slot per kept edge. */
    std::vector<NodeId> sampledGlobal_;
};

/** PyG ClusterLoader-style sampler. */
class ClusterSampler
{
  public:
    /** Partitions on construction (ClusterData's METIS step). */
    ClusterSampler(const Data &data, int32_t num_parts, core::Rng rng,
                   device::Session *session);

    /** Union random clusters and return their induced edge_index. */
    EdgeBatch sample(int32_t clusters_per_batch);

    int32_t numParts() const { return partition_.numParts; }

    /** Clone sharing the partition, with its own RNG stream. */
    ClusterSampler
    withRng(core::Rng rng, device::Session *session) const
    {
        return ClusterSampler(*this, rng, session);
    }

    /** Replace the RNG stream in place (per-batch loader reseeding). */
    void reseed(core::Rng rng) { rng_ = rng; }

    /** Modeled interpreter seconds accumulated while detached. */
    double
    takeModeledOverheadSeconds() const
    {
        return overhead_.drainAccumulated();
    }

  private:
    ClusterSampler(const ClusterSampler &other, core::Rng rng,
                   device::Session *session);

    const Data &data_;
    core::Rng rng_;
    device::Session *session_;
    PyOverheadModel overhead_;
    graph::PartitionResult partition_;
    std::vector<std::vector<NodeId>> members_;
    /** Dense scratch for the C-extension extraction path. */
    std::vector<NodeId> localScratch_;
};

/** PyG GraphSAINTNodeSampler-style sampler (degree-proportional). */
class SaintNodeSampler
{
  public:
    SaintNodeSampler(const Data &data, NodeId budget, core::Rng rng,
                     device::Session *session);

    EdgeBatch sample();

    /** Clone sharing the CDF, with its own RNG stream. */
    SaintNodeSampler
    withRng(core::Rng rng, device::Session *session) const
    {
        return SaintNodeSampler(*this, rng, session);
    }

    /** Replace the RNG stream in place (per-batch loader reseeding). */
    void reseed(core::Rng rng) { rng_ = rng; }

    /** Modeled interpreter seconds accumulated while detached. */
    double
    takeModeledOverheadSeconds() const
    {
        return overhead_.drainAccumulated();
    }

  private:
    SaintNodeSampler(const SaintNodeSampler &other, core::Rng rng,
                     device::Session *session);

    const Data &data_;
    NodeId budget_;
    core::Rng rng_;
    device::Session *session_;
    PyOverheadModel overhead_;
    std::vector<double> degreeCdf_;
    std::vector<NodeId> localScratch_;
};

/** PyG GraphSAINTEdgeSampler-style sampler. */
class SaintEdgeSampler
{
  public:
    SaintEdgeSampler(const Data &data, EdgeId budget, core::Rng rng,
                     device::Session *session);

    EdgeBatch sample();

    /** Clone sharing the CDF, with its own RNG stream. */
    SaintEdgeSampler
    withRng(core::Rng rng, device::Session *session) const
    {
        return SaintEdgeSampler(*this, rng, session);
    }

    /** Replace the RNG stream in place (per-batch loader reseeding). */
    void reseed(core::Rng rng) { rng_ = rng; }

    /** Modeled interpreter seconds accumulated while detached. */
    double
    takeModeledOverheadSeconds() const
    {
        return overhead_.drainAccumulated();
    }

  private:
    SaintEdgeSampler(const SaintEdgeSampler &other, core::Rng rng,
                     device::Session *session);

    const Data &data_;
    EdgeId budget_;
    core::Rng rng_;
    device::Session *session_;
    PyOverheadModel overhead_;
    std::vector<double> edgeCdf_;
    std::vector<NodeId> localScratch_;
};

/** PyG GraphSAINTRandomWalkSampler-style sampler. */
class SaintRwSampler
{
  public:
    SaintRwSampler(const Data &data, int32_t num_roots,
                   int32_t walk_length, core::Rng rng,
                   device::Session *session);

    EdgeBatch sample();

    /** Clone with an independent RNG stream (prefetch workers). */
    SaintRwSampler
    withRng(core::Rng rng, device::Session *session) const
    {
        return SaintRwSampler(data_, numRoots_, walkLength_, rng,
                              session);
    }

    /** Replace the RNG stream in place (per-batch loader reseeding). */
    void reseed(core::Rng rng) { rng_ = rng; }

    /** Modeled interpreter seconds accumulated while detached. */
    double
    takeModeledOverheadSeconds() const
    {
        return overhead_.drainAccumulated();
    }

  private:
    const Data &data_;
    int32_t numRoots_;
    int32_t walkLength_;
    core::Rng rng_;
    device::Session *session_;
    PyOverheadModel overhead_;
    /** Dense scratch for the C-extension extraction path. */
    std::vector<NodeId> localScratch_;
};

} // namespace pygx
} // namespace gnnbench

#endif // GNNBENCH_PYGX_SAMPLER_H
