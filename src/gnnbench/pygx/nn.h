/**
 * @file
 * The pygx 'nn' module: the same eight convolution layers as dglx,
 * built PyG-style.
 *
 * GCN-family layers (GCN, GCN2, SAGE, TAG, SG) use the torch_sparse
 * fused spmm; ChebConv, GATConv and GATv2Conv have *no* fused kernel
 * (as in PyG v2.0.4) and materialize per-edge feature tensors through
 * the gather-and-scatter MessagePassing path — which is why they OOM
 * on large graphs in the paper's Figure 5.  Sampled-batch forwards
 * (used by the end-to-end models) follow PyG's official examples and
 * use edge_index gather/scatter.
 */

#ifndef GNNBENCH_PYGX_NN_H
#define GNNBENCH_PYGX_NN_H

#include <memory>
#include <string>
#include <vector>

#include "gnnbench/pygx/message_passing.h"

namespace gnnbench {
namespace pygx {

using core::ag::Var;

/** The eight benchmarked convolution kinds (same set as dglx). */
enum class ConvKind
{
    Gcn,
    Gcn2,
    Cheb,
    Sage,
    Gat,
    Gatv2,
    Tag,
    Sg,
};

const char *convKindName(ConvKind kind);
const std::vector<ConvKind> &allConvKinds();

/** Parameter-registry base class (mirrors dglx::Conv). */
class Conv
{
  public:
    Conv(std::string name, bool trainable);
    virtual ~Conv() = default;

    /** Full-graph forward over a Data object. */
    virtual Var forward(const Data &data, const Var &x,
                        const KernelCtx &ctx) = 0;

    const std::string &name() const { return name_; }
    const std::vector<Var> &params() const { return params_; }
    uint64_t paramBytes() const;

  protected:
    Var addParam(core::Tensor t);

    std::string name_;
    bool trainable_;
    std::vector<Var> params_;
};

/** GCN layer; fused spmm on full graphs, edge_index on batches. */
class GcnConv : public Conv
{
  public:
    GcnConv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
            bool trainable = true);

    Var forward(const Data &data, const Var &x,
                const KernelCtx &ctx) override;

    /** edge_index forward over an induced batch (official example
     *  path for ClusterGCN / GraphSAINT training). */
    Var forwardBatch(const EdgeBatch &batch, const Var &x,
                     const KernelCtx &ctx);

  private:
    Var weight_;
    Var bias_;
};

/** GCNII layer (fused path). */
class Gcn2Conv : public Conv
{
  public:
    Gcn2Conv(int64_t dim, float alpha, float beta, core::Rng &rng,
             bool trainable = true);

    Var forward(const Data &data, const Var &x,
                const KernelCtx &ctx) override;

    void setInitial(const Var &x0) { x0_ = x0; }

  private:
    Var weight_;
    Var x0_;
    float alpha_;
    float beta_;
};

/** Chebyshev convolution — *no* fused kernel in PyG: each hop runs
 *  through materializing gather/scatter (OOM risk on large graphs). */
class ChebConv : public Conv
{
  public:
    ChebConv(int64_t in_dim, int64_t out_dim, int k, core::Rng &rng,
             bool trainable = true);

    Var forward(const Data &data, const Var &x,
                const KernelCtx &ctx) override;

  private:
    int k_;
    std::vector<Var> weights_;
    Var bias_;
};

/** GraphSAGE layer; fused on full graphs, edge_index on batches. */
class SageConv : public Conv
{
  public:
    SageConv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
             bool trainable = true);

    Var forward(const Data &data, const Var &x,
                const KernelCtx &ctx) override;

    /** NeighborLoader bipartite layer forward. */
    Var forwardLayer(const LayerBatch &layer, const Var &x_src,
                     const KernelCtx &ctx);

    /** edge_index forward over an induced batch. */
    Var forwardBatch(const EdgeBatch &batch, const Var &x,
                     const KernelCtx &ctx);

  private:
    Var selfWeight_;
    Var neighWeight_;
    Var bias_;
};

/** GAT layer — unfused; materializes E x F messages.
 *  Inference-only. */
class GatConv : public Conv, protected MessagePassing
{
  public:
    GatConv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
            bool trainable = false);

    Var forward(const Data &data, const Var &x,
                const KernelCtx &ctx) override;

  private:
    Var weight_;
    Var attnL_;
    Var attnR_;
};

/** GATv2 layer — unfused; materializes ~3 E x F tensors.
 *  Inference-only. */
class Gatv2Conv : public Conv, protected MessagePassing
{
  public:
    Gatv2Conv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
              bool trainable = false);

    Var forward(const Data &data, const Var &x,
                const KernelCtx &ctx) override;

  private:
    Var weightL_;
    Var weightR_;
    Var attn_;
};

/** Topology-adaptive GCN (fused path). */
class TagConv : public Conv
{
  public:
    TagConv(int64_t in_dim, int64_t out_dim, int k, core::Rng &rng,
            bool trainable = true);

    Var forward(const Data &data, const Var &x,
                const KernelCtx &ctx) override;

  private:
    int k_;
    std::vector<Var> weights_;
    Var bias_;
};

/** Simplified GCN (fused path). */
class SgConv : public Conv
{
  public:
    SgConv(int64_t in_dim, int64_t out_dim, int k, core::Rng &rng,
           bool trainable = true);

    Var forward(const Data &data, const Var &x,
                const KernelCtx &ctx) override;

  private:
    int k_;
    Var weight_;
    Var bias_;
};

/** Same factory contract as dglx::makeConv. */
std::unique_ptr<Conv> makeConv(ConvKind kind, int64_t in_dim,
                               int64_t out_dim, core::Rng &rng,
                               bool trainable);

/// @name edge-weight helpers shared with the models
/// @{

/** In-degree (+1) based symmetric GCN weights per csc edge. */
std::vector<float> gcnNormCsc(const graph::CsrGraph &csc);

/** 1/(deg+1) self scales from a csc. */
std::vector<float> selfScaleCsc(const graph::CsrGraph &csc);

/** Per-edge symmetric GCN weights for an edge list (computes degrees
 *  by counting dst endpoints). */
std::vector<float> gcnNormEdges(const std::vector<NodeId> &src,
                                const std::vector<NodeId> &dst,
                                NodeId num_nodes,
                                std::vector<float> *self_scale);

/// @}

} // namespace pygx
} // namespace gnnbench

#endif // GNNBENCH_PYGX_NN_H
