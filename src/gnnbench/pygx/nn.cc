#include "gnnbench/pygx/nn.h"

#include <cmath>

namespace gnnbench {
namespace pygx {

namespace ag = core::ag;
using core::Tensor;

const char *
convKindName(ConvKind kind)
{
    switch (kind) {
      case ConvKind::Gcn:
        return "GCNConv";
      case ConvKind::Gcn2:
        return "GCN2Conv";
      case ConvKind::Cheb:
        return "ChebConv";
      case ConvKind::Sage:
        return "SAGEConv";
      case ConvKind::Gat:
        return "GATConv";
      case ConvKind::Gatv2:
        return "GATv2Conv";
      case ConvKind::Tag:
        return "TAGConv";
      case ConvKind::Sg:
        return "SGConv";
    }
    return "?";
}

const std::vector<ConvKind> &
allConvKinds()
{
    static const std::vector<ConvKind> kinds = {
        ConvKind::Gcn, ConvKind::Gcn2, ConvKind::Cheb, ConvKind::Sage,
        ConvKind::Gat, ConvKind::Gatv2, ConvKind::Tag, ConvKind::Sg};
    return kinds;
}

std::vector<float>
gcnNormCsc(const graph::CsrGraph &csc)
{
    std::vector<float> inv_sqrt(csc.numRows);
    for (NodeId v = 0; v < csc.numRows; ++v)
        inv_sqrt[v] =
            1.0f /
            std::sqrt(static_cast<float>(csc.degree(v)) + 1.0f);
    std::vector<float> w(csc.numEdges());
    EdgeId e = 0;
    for (NodeId d = 0; d < csc.numRows; ++d)
        for (EdgeId i = csc.indptr[d]; i < csc.indptr[d + 1]; ++i, ++e)
            w[e] = inv_sqrt[d] * inv_sqrt[csc.indices[i]];
    return w;
}

std::vector<float>
selfScaleCsc(const graph::CsrGraph &csc)
{
    std::vector<float> s(csc.numRows);
    for (NodeId v = 0; v < csc.numRows; ++v)
        s[v] = 1.0f / (static_cast<float>(csc.degree(v)) + 1.0f);
    return s;
}

std::vector<float>
gcnNormEdges(const std::vector<NodeId> &src,
             const std::vector<NodeId> &dst, NodeId num_nodes,
             std::vector<float> *self_scale)
{
    std::vector<float> deg(num_nodes, 0.0f);
    for (NodeId d : dst)
        deg[d] += 1.0f;
    std::vector<float> inv_sqrt(num_nodes);
    for (NodeId v = 0; v < num_nodes; ++v)
        inv_sqrt[v] = 1.0f / std::sqrt(deg[v] + 1.0f);
    std::vector<float> w(src.size());
    for (size_t e = 0; e < src.size(); ++e)
        w[e] = inv_sqrt[src[e]] * inv_sqrt[dst[e]];
    if (self_scale) {
        self_scale->resize(num_nodes);
        for (NodeId v = 0; v < num_nodes; ++v)
            (*self_scale)[v] = 1.0f / (deg[v] + 1.0f);
    }
    return w;
}

Conv::Conv(std::string name, bool trainable)
    : name_(std::move(name)), trainable_(trainable)
{
}

Var
Conv::addParam(Tensor t)
{
    params_.push_back(ag::leaf(std::move(t), trainable_));
    return params_.back();
}

uint64_t
Conv::paramBytes() const
{
    uint64_t bytes = 0;
    for (const auto &p : params_)
        bytes += p->value.bytes();
    return bytes;
}

namespace {

/**
 * Fused multiply by the symmetric-normalized adjacency with self
 * loops.  PyG recomputes gcn_norm each forward (cached=False default),
 * so the weight arrays are rebuilt here every call.  The symmetric
 * structure + symmetric weight function lets backward reuse the same
 * csc and weights.
 */
Var
propagateNormFused(const Data &data, const Var &x, const KernelCtx &ctx)
{
    const graph::CsrGraph &csc = data.csc();
    auto w = std::make_shared<std::vector<float>>();
    std::vector<float> self;
    runPrep(ctx, static_cast<double>(csc.numEdges()), [&] {
        *w = gcnNormCsc(csc);
        self = selfScaleCsc(csc);
    });
    Var agg = spmmVar(csc, w->data(), borrow(csc), w, x, ctx);
    return addVar(agg, rowScaleVar(x, std::move(self), ctx), ctx);
}

/** Identity-prefix row selection (dst features from src features). */
Var
dstRows(const Var &x_src, size_t num_dst)
{
    std::vector<NodeId> rows(num_dst);
    for (size_t i = 0; i < num_dst; ++i)
        rows[i] = static_cast<NodeId>(i);
    return ag::gatherRows(x_src, std::move(rows));
}

} // namespace

GcnConv::GcnConv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
                 bool trainable)
    : Conv("GCNConv", trainable),
      weight_(addParam(Tensor::glorot(in_dim, out_dim, rng))),
      bias_(addParam(Tensor::zeros(1, out_dim)))
{
}

Var
GcnConv::forward(const Data &data, const Var &x, const KernelCtx &ctx)
{
    Var xw = gemmVar(x, weight_, ctx);
    return addBiasVar(propagateNormFused(data, xw, ctx), bias_, ctx);
}

Var
GcnConv::forwardBatch(const EdgeBatch &batch, const Var &x,
                      const KernelCtx &ctx)
{
    Var xw = gemmVar(x, weight_, ctx);
    std::vector<float> self;
    auto w = std::make_shared<std::vector<float>>();
    runPrep(ctx, static_cast<double>(batch.src.size()), [&] {
        *w = gcnNormEdges(batch.src, batch.dst, batch.numNodes(),
                          &self);
    });
    // Backward swaps src and dst; on the symmetric induced batch the
    // weight function is symmetric so the same array serves.
    Var agg = propagateVar(borrow(batch.src), borrow(batch.dst), w,
                           batch.numNodes(), batch.numNodes(), xw,
                           ctx);
    Var h = addVar(agg, rowScaleVar(xw, std::move(self), ctx), ctx);
    return addBiasVar(h, bias_, ctx);
}

Gcn2Conv::Gcn2Conv(int64_t dim, float alpha, float beta, core::Rng &rng,
                   bool trainable)
    : Conv("GCN2Conv", trainable),
      weight_(addParam(Tensor::glorot(dim, dim, rng))), alpha_(alpha),
      beta_(beta)
{
}

Var
Gcn2Conv::forward(const Data &data, const Var &x, const KernelCtx &ctx)
{
    GNNBENCH_CHECK(x0_ != nullptr,
                   "GCN2Conv: call setInitial() before forward");
    GNNBENCH_CHECK(x0_->value.sameShape(x->value),
                   "GCN2Conv: initial features shape mismatch");
    Var p = propagateNormFused(data, x, ctx);
    Var h = addVar(scaleVar(p, 1.0f - alpha_, ctx), scaleVar(x0_, alpha_, ctx), ctx);
    return addVar(scaleVar(h, 1.0f - beta_, ctx),
                   scaleVar(gemmVar(h, weight_, ctx), beta_, ctx), ctx);
}

ChebConv::ChebConv(int64_t in_dim, int64_t out_dim, int k,
                   core::Rng &rng, bool trainable)
    : Conv("ChebConv", trainable), k_(k)
{
    GNNBENCH_CHECK(k >= 1, "ChebConv order must be >= 1");
    for (int i = 0; i < k; ++i)
        weights_.push_back(
            addParam(Tensor::glorot(in_dim, out_dim, rng)));
    bias_ = addParam(Tensor::zeros(1, out_dim));
}

Var
ChebConv::forward(const Data &data, const Var &x, const KernelCtx &ctx)
{
    // No fused kernel: every hop materializes E x F messages through
    // gather/scatter (the OOM path of the paper's Observation 3).
    std::vector<float> self;
    auto w = std::make_shared<std::vector<float>>();
    runPrep(ctx, static_cast<double>(data.numEdges()), [&] {
        *w = gcnNormEdges(data.edgeSrc(), data.edgeDst(),
                          data.numNodes(), &self);
    });
    auto hop = [&](const Var &v) {
        Var agg = propagateVar(borrow(data.edgeSrc()),
                               borrow(data.edgeDst()), w,
                               data.numNodes(), data.numNodes(), v,
                               ctx);
        return addVar(agg, rowScaleVar(v, self, ctx), ctx);
    };
    Var out = gemmVar(x, weights_[0], ctx);
    Var t_prev2 = x;
    Var t_prev1;
    if (k_ > 1) {
        t_prev1 = scaleVar(hop(x), -1.0f, ctx);
        out = addVar(out, gemmVar(t_prev1, weights_[1], ctx), ctx);
    }
    for (int i = 2; i < k_; ++i) {
        Var t = addVar(scaleVar(hop(t_prev1), -2.0f, ctx),
                        scaleVar(t_prev2, -1.0f, ctx), ctx);
        out = addVar(out, gemmVar(t, weights_[i], ctx), ctx);
        t_prev2 = t_prev1;
        t_prev1 = t;
    }
    return addBiasVar(out, bias_, ctx);
}

SageConv::SageConv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
                   bool trainable)
    : Conv("SAGEConv", trainable),
      selfWeight_(addParam(Tensor::glorot(in_dim, out_dim, rng))),
      neighWeight_(addParam(Tensor::glorot(in_dim, out_dim, rng))),
      bias_(addParam(Tensor::zeros(1, out_dim)))
{
}

namespace {

/** Mean weights per csc edge (1/in-degree of the row). */
std::shared_ptr<std::vector<float>>
meanWeightsCsc(const graph::CsrGraph &csc)
{
    auto w = std::make_shared<std::vector<float>>(csc.numEdges());
    EdgeId e = 0;
    for (NodeId d = 0; d < csc.numRows; ++d) {
        const EdgeId deg = csc.degree(d);
        const float inv =
            deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
        for (EdgeId i = 0; i < deg; ++i, ++e)
            (*w)[e] = inv;
    }
    return w;
}

/** Backward weights: 1/in-degree of the *column* endpoint. */
std::shared_ptr<std::vector<float>>
meanWeightsBwd(const graph::CsrGraph &csc)
{
    std::vector<float> inv(csc.numRows);
    for (NodeId d = 0; d < csc.numRows; ++d) {
        const EdgeId deg = csc.degree(d);
        inv[d] = deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
    }
    auto w = std::make_shared<std::vector<float>>(csc.numEdges());
    for (EdgeId e = 0; e < csc.numEdges(); ++e)
        (*w)[e] = inv[csc.indices[e]];
    return w;
}

} // namespace

Var
SageConv::forward(const Data &data, const Var &x, const KernelCtx &ctx)
{
    const graph::CsrGraph &csc = data.csc();
    std::shared_ptr<std::vector<float>> w_fwd, w_bwd;
    runPrep(ctx, static_cast<double>(csc.numEdges()), [&] {
        w_fwd = meanWeightsCsc(csc);
        w_bwd = meanWeightsBwd(csc);
    });
    Var agg =
        spmmVar(csc, w_fwd->data(), borrow(csc), w_bwd, x, ctx);
    Var h = addVar(gemmVar(x, selfWeight_, ctx),
                    gemmVar(agg, neighWeight_, ctx), ctx);
    return addBiasVar(h, bias_, ctx);
}

Var
SageConv::forwardLayer(const LayerBatch &layer, const Var &x_src,
                       const KernelCtx &ctx)
{
    const NodeId num_dst = static_cast<NodeId>(layer.dstNodes.size());
    const NodeId num_src = static_cast<NodeId>(layer.srcNodes.size());
    // Mean aggregation = unweighted scatter-sum + per-dst scaling,
    // so the backward swap stays weight-free.
    Var agg = propagateVar(borrow(layer.eSrc), borrow(layer.eDst),
                           nullptr, num_dst, num_src, x_src, ctx);
    std::vector<float> inv(num_dst, 0.0f);
    for (NodeId d : layer.eDst)
        inv[d] += 1.0f;
    for (auto &v : inv)
        v = v > 0.0f ? 1.0f / v : 0.0f;
    agg = rowScaleVar(agg, std::move(inv), ctx);
    Var x_dst = dstRows(x_src, layer.dstNodes.size());
    Var h = addVar(gemmVar(x_dst, selfWeight_, ctx),
                    gemmVar(agg, neighWeight_, ctx), ctx);
    return addBiasVar(h, bias_, ctx);
}

Var
SageConv::forwardBatch(const EdgeBatch &batch, const Var &x,
                       const KernelCtx &ctx)
{
    const NodeId n = batch.numNodes();
    Var agg = propagateVar(borrow(batch.src), borrow(batch.dst),
                           nullptr, n, n, x, ctx);
    std::vector<float> inv(n, 0.0f);
    for (NodeId d : batch.dst)
        inv[d] += 1.0f;
    for (auto &v : inv)
        v = v > 0.0f ? 1.0f / v : 0.0f;
    agg = rowScaleVar(agg, std::move(inv), ctx);
    Var h = addVar(gemmVar(x, selfWeight_, ctx),
                    gemmVar(agg, neighWeight_, ctx), ctx);
    return addBiasVar(h, bias_, ctx);
}

GatConv::GatConv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
                 bool trainable)
    : Conv("GATConv", trainable), MessagePassing("GATConv"),
      weight_(addParam(Tensor::glorot(in_dim, out_dim, rng))),
      attnL_(addParam(Tensor::glorot(out_dim, 1, rng))),
      attnR_(addParam(Tensor::glorot(out_dim, 1, rng)))
{
    GNNBENCH_CHECK(!trainable,
                   "pygx GATConv is inference-only (Figure 5 path)");
}

Var
GatConv::forward(const Data &data, const Var &x, const KernelCtx &ctx)
{
    const auto &src = data.edgeSrc();
    const auto &dst = data.edgeDst();
    Var z = gemmVar(x, weight_, ctx);
    Var al = gemmVar(z, attnL_, ctx);
    Var ar = gemmVar(z, attnR_, ctx);
    // Unfused per-edge pipeline: gather endpoint scores, softmax via
    // three scatter passes, gather E x F messages, weight, scatter.
    Tensor alpha_dst = gather(al->value, dst, ctx);
    Tensor alpha_src = gather(ar->value, src, ctx);
    Tensor logits, scores;
    runPrep(ctx, static_cast<double>(alpha_dst.numel()) * 2, [&] {
        logits = core::ops::add(alpha_dst, alpha_src);
        scores = core::ops::leakyRelu(logits, 0.2f);
    });
    Tensor att =
        scatterSoftmax(scores, dst, data.numNodes(), ctx);
    Tensor msgs = gather(z->value, src, ctx);  // E x F materialized
    msgs = mulEdgeScalar(msgs, att, ctx);
    Tensor out = scatterSum(msgs, dst, data.numNodes(), ctx);
    return ag::constant(std::move(out));
}

Gatv2Conv::Gatv2Conv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
                     bool trainable)
    : Conv("GATv2Conv", trainable), MessagePassing("GATv2Conv"),
      weightL_(addParam(Tensor::glorot(in_dim, out_dim, rng))),
      weightR_(addParam(Tensor::glorot(in_dim, out_dim, rng))),
      attn_(addParam(Tensor::glorot(out_dim, 1, rng)))
{
    GNNBENCH_CHECK(!trainable,
                   "pygx GATv2Conv is inference-only (Figure 5 path)");
}

Var
Gatv2Conv::forward(const Data &data, const Var &x, const KernelCtx &ctx)
{
    const auto &src = data.edgeSrc();
    const auto &dst = data.edgeDst();
    Var zl = gemmVar(x, weightL_, ctx);
    Var zr = gemmVar(x, weightR_, ctx);
    // GATv2 has no fused path at all: two E x F gathers plus the
    // E x F message tensor — the earliest layer to OOM in Figure 5.
    Tensor e_dst = gather(zl->value, dst, ctx);
    Tensor e_src = gather(zr->value, src, ctx);
    // The E x F sum and activation are themselves materializing
    // kernels; check and account them like the gathers.
    checkMaterialization(e_dst.bytes(), ctx);
    Tensor pre, scores;
    runPrep(ctx, static_cast<double>(e_dst.numel()) * 3, [&] {
        pre = core::ops::leakyRelu(core::ops::add(e_dst, e_src),
                                   0.2f);
        scores = core::ops::matmul(pre, attn_->value);
    });
    Tensor att =
        scatterSoftmax(scores, dst, data.numNodes(), ctx);
    Tensor msgs = mulEdgeScalar(e_src, att, ctx);
    Tensor out = scatterSum(msgs, dst, data.numNodes(), ctx);
    return ag::constant(std::move(out));
}

TagConv::TagConv(int64_t in_dim, int64_t out_dim, int k, core::Rng &rng,
                 bool trainable)
    : Conv("TAGConv", trainable), k_(k)
{
    GNNBENCH_CHECK(k >= 0, "TAGConv order must be >= 0");
    for (int i = 0; i <= k; ++i)
        weights_.push_back(
            addParam(Tensor::glorot(in_dim, out_dim, rng)));
    bias_ = addParam(Tensor::zeros(1, out_dim));
}

Var
TagConv::forward(const Data &data, const Var &x, const KernelCtx &ctx)
{
    Var out = gemmVar(x, weights_[0], ctx);
    Var xk = x;
    for (int i = 1; i <= k_; ++i) {
        xk = propagateNormFused(data, xk, ctx);
        out = addVar(out, gemmVar(xk, weights_[i], ctx), ctx);
    }
    return addBiasVar(out, bias_, ctx);
}

SgConv::SgConv(int64_t in_dim, int64_t out_dim, int k, core::Rng &rng,
               bool trainable)
    : Conv("SGConv", trainable), k_(k),
      weight_(addParam(Tensor::glorot(in_dim, out_dim, rng))),
      bias_(addParam(Tensor::zeros(1, out_dim)))
{
    GNNBENCH_CHECK(k >= 1, "SGConv order must be >= 1");
}

Var
SgConv::forward(const Data &data, const Var &x, const KernelCtx &ctx)
{
    Var xk = x;
    for (int i = 0; i < k_; ++i)
        xk = propagateNormFused(data, xk, ctx);
    return addBiasVar(gemmVar(xk, weight_, ctx), bias_, ctx);
}

std::unique_ptr<Conv>
makeConv(ConvKind kind, int64_t in_dim, int64_t out_dim, core::Rng &rng,
         bool trainable)
{
    switch (kind) {
      case ConvKind::Gcn:
        return std::make_unique<GcnConv>(in_dim, out_dim, rng,
                                         trainable);
      case ConvKind::Gcn2:
        return std::make_unique<Gcn2Conv>(out_dim, 0.1f, 0.5f, rng,
                                          trainable);
      case ConvKind::Cheb:
        return std::make_unique<ChebConv>(in_dim, out_dim, 3, rng,
                                          trainable);
      case ConvKind::Sage:
        return std::make_unique<SageConv>(in_dim, out_dim, rng,
                                          trainable);
      case ConvKind::Gat:
        return std::make_unique<GatConv>(in_dim, out_dim, rng, false);
      case ConvKind::Gatv2:
        return std::make_unique<Gatv2Conv>(in_dim, out_dim, rng,
                                           false);
      case ConvKind::Tag:
        return std::make_unique<TagConv>(in_dim, out_dim, 3, rng,
                                         trainable);
      case ConvKind::Sg:
        return std::make_unique<SgConv>(in_dim, out_dim, 2, rng,
                                        trainable);
    }
    GNNBENCH_ASSERT(false, "unknown conv kind");
    __builtin_unreachable();
}

} // namespace pygx
} // namespace gnnbench
