/**
 * @file
 * pygx data loader.
 *
 * PyG's loader only wraps the raw arrays in a lightweight Data object
 * (edge_index + tensors), deferring format conversion to whoever
 * needs it — the reason its loader wins Figure 3.
 */

#ifndef GNNBENCH_PYGX_DATALOADER_H
#define GNNBENCH_PYGX_DATALOADER_H

#include <memory>

#include "gnnbench/graph/datasets.h"
#include "gnnbench/pygx/data.h"

namespace gnnbench {
namespace pygx {

/** A dataset materialized as pygx-native objects. */
struct LoadedData
{
    std::shared_ptr<Data> data;
    core::Tensor features;
    std::vector<int32_t> labels;
    std::vector<NodeId> trainIdx;
    std::vector<NodeId> valIdx;
    std::vector<NodeId> testIdx;

    uint64_t featureBytes() const { return features.bytes(); }
};

/** The pygx data-loading entry point (Figure 3 workload). */
class DataLoader
{
  public:
    /** Wrap raw arrays in a Data object (cheap, lazy formats). */
    static LoadedData load(const graph::Dataset &dataset);
};

} // namespace pygx
} // namespace gnnbench

#endif // GNNBENCH_PYGX_DATALOADER_H
