/**
 * @file
 * pygx data loader.
 *
 * PyG's loader only wraps the raw arrays in a lightweight Data object
 * (edge_index + tensors), deferring format conversion to whoever
 * needs it — the reason its loader wins Figure 3.
 */

#ifndef GNNBENCH_PYGX_DATALOADER_H
#define GNNBENCH_PYGX_DATALOADER_H

#include <functional>
#include <memory>
#include <optional>

#include "gnnbench/graph/datasets.h"
#include "gnnbench/pygx/data.h"
#include "gnnbench/pygx/sampler.h"
#include "gnnbench/sampling/prefetch.h"

namespace gnnbench {
namespace pygx {

/** A dataset materialized as pygx-native objects. */
struct LoadedData
{
    std::shared_ptr<Data> data;
    core::Tensor features;
    std::vector<int32_t> labels;
    std::vector<NodeId> trainIdx;
    std::vector<NodeId> valIdx;
    std::vector<NodeId> testIdx;

    uint64_t featureBytes() const { return features.bytes(); }
};

/** The pygx data-loading entry point (Figure 3 workload). */
class DataLoader
{
  public:
    /** Wrap raw arrays in a Data object (cheap, lazy formats). */
    static LoadedData load(const graph::Dataset &dataset);
};

namespace detail {

/**
 * A batch paired with the modeled interpreter seconds its production
 * cost.  device::Session is single-threaded, so prefetch workers run
 * sampler clones with a *null* session; the modeled overhead rides
 * the queue and the consumer charges it on the main thread — exactly
 * when the training loop would have waited for the worker.
 */
template <typename B>
struct Timed
{
    B batch;
    double modeledSeconds = 0.0;
};

} // namespace detail

/**
 * Prefetching neighbor loader — PyG's NeighborLoader.  One base seed
 * is drawn from @p rng and each batch's sampler stream derives from
 * (base, batch index) alone, so delivered batches are bit-identical
 * for any num_workers, 0 included (num_workers == 0 samples inline
 * on the consumer thread); delivery follows seed-batch order.
 */
class NeighborLoader
{
  public:
    NeighborLoader(const NeighborSampler &proto, core::Rng &rng,
                   std::vector<std::vector<NodeId>> seed_batches,
                   int num_workers, int prefetch_depth,
                   device::Session *session);

    /** Seed batches in delivery order (for labels/supervision). */
    const std::vector<std::vector<NodeId>> &
    seedBatches() const
    {
        return *seedBatches_;
    }

    /** Next batch in order (charges its modeled overhead to the
     *  session); empty when exhausted. */
    std::optional<NeighborBatch> next();

    /** Drain and join workers (idempotent; destructor-safe). */
    void shutdown();

    /** Per-worker sampling busy seconds (joins workers first). */
    const std::vector<double> &workerBusySeconds();

    /** Aggregate prefetch-queue statistics. */
    const core::parallel::QueueStats &
    queueStats() const
    {
        return prefetcher_->queueStats();
    }

  private:
    std::shared_ptr<const std::vector<std::vector<NodeId>>>
        seedBatches_;
    device::Session *session_;
    int64_t delivered_ = 0;
    std::unique_ptr<
        sampling::Prefetcher<detail::Timed<NeighborBatch>>>
        prefetcher_;
};

/**
 * Multi-worker loader for the pygx samplers producing EdgeBatch
 * subgraphs (ClusterGCN, GraphSAINT); built via the factories below.
 */
class EdgeBatchLoader
{
  public:
    /** Draws the batch with the given global index on a worker's
     *  private (null-session) sampler clone and reports its modeled
     *  interpreter seconds. */
    using Producer =
        std::function<detail::Timed<EdgeBatch>(int64_t)>;

    /** Threaded (num_workers >= 1) mode.
     *  @param lane_tag trace-lane prefix for the workers. */
    EdgeBatchLoader(std::vector<Producer> producers, int num_batches,
                    int prefetch_depth, device::Session *session,
                    std::string lane_tag = "pyg-induced");

    /** Inline (num_workers == 0) mode: next() samples on the calling
     *  thread. */
    EdgeBatchLoader(Producer producer, int num_batches,
                    device::Session *session,
                    std::string lane_tag = "pyg-induced");

    /** Next batch in order (charges its modeled overhead). */
    std::optional<EdgeBatch> next();

    void shutdown();

    const std::vector<double> &workerBusySeconds();

    /** Aggregate prefetch-queue statistics. */
    const core::parallel::QueueStats &
    queueStats() const
    {
        return prefetcher_->queueStats();
    }

  private:
    device::Session *session_;
    std::unique_ptr<sampling::Prefetcher<detail::Timed<EdgeBatch>>>
        prefetcher_;
};

/** ClusterGCN loader: per-worker ClusterSampler clones sharing the
 *  one-time partition, each reseeded per batch from the batch index
 *  so the union drawn for batch i is worker-count invariant. */
EdgeBatchLoader makeClusterLoader(const ClusterSampler &proto,
                                  core::Rng &rng,
                                  int32_t clusters_per_batch,
                                  int num_batches, int num_workers,
                                  int prefetch_depth,
                                  device::Session *session);

/** GraphSAINT random-walk loader. */
EdgeBatchLoader makeSaintRwLoader(const SaintRwSampler &proto,
                                  core::Rng &rng, int num_batches,
                                  int num_workers, int prefetch_depth,
                                  device::Session *session);

} // namespace pygx
} // namespace gnnbench

#endif // GNNBENCH_PYGX_DATALOADER_H
