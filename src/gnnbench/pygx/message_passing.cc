#include "gnnbench/pygx/message_passing.h"

#include "gnnbench/kernels/kernels.h"

namespace gnnbench {
namespace pygx {

uint64_t
EdgeBatch::structureBytes() const
{
    return nodes.size() * sizeof(NodeId) +
           (src.size() + dst.size()) * sizeof(NodeId);
}

void
EdgeBatch::validate() const
{
    GNNBENCH_CHECK(src.size() == dst.size(),
                   "edge batch: src/dst length mismatch");
    const NodeId n = numNodes();
    for (size_t i = 0; i < src.size(); ++i)
        GNNBENCH_CHECK(src[i] >= 0 && src[i] < n && dst[i] >= 0 &&
                           dst[i] < n,
                       "edge batch: endpoint out of range");
}

uint64_t
LayerBatch::structureBytes() const
{
    return (srcNodes.size() + dstNodes.size() + eSrc.size() +
            eDst.size()) *
           sizeof(NodeId);
}

void
LayerBatch::validate() const
{
    GNNBENCH_CHECK(eSrc.size() == eDst.size(),
                   "layer batch: edge arrays mismatch");
    GNNBENCH_CHECK(dstNodes.size() <= srcNodes.size(),
                   "layer batch: more dst than src");
    for (size_t i = 0; i < dstNodes.size(); ++i)
        GNNBENCH_CHECK(srcNodes[i] == dstNodes[i],
                       "layer batch: dst must prefix src");
    const NodeId ns = static_cast<NodeId>(srcNodes.size());
    const NodeId nd = static_cast<NodeId>(dstNodes.size());
    for (size_t i = 0; i < eSrc.size(); ++i)
        GNNBENCH_CHECK(eSrc[i] >= 0 && eSrc[i] < ns && eDst[i] >= 0 &&
                           eDst[i] < nd,
                       "layer batch: edge endpoint out of range");
}

uint64_t
NeighborBatch::structureBytes() const
{
    uint64_t bytes = seeds.size() * sizeof(NodeId);
    for (const auto &l : layers)
        bytes += l.structureBytes();
    return bytes;
}

void
NeighborBatch::validate() const
{
    GNNBENCH_CHECK(!layers.empty(), "neighbor batch without layers");
    for (const auto &l : layers)
        l.validate();
    for (size_t l = 0; l + 1 < layers.size(); ++l)
        GNNBENCH_CHECK(layers[l].dstNodes == layers[l + 1].srcNodes,
                       "neighbor batch: layer wiring broken at ", l);
    GNNBENCH_CHECK(layers.back().dstNodes == seeds,
                   "neighbor batch: seeds mismatch");
}

core::Tensor
MessagePassing::propagate(const std::vector<NodeId> &src,
                          const std::vector<NodeId> &dst,
                          NodeId out_rows, const core::Tensor &x,
                          const core::Tensor *edge_weight,
                          const std::string &aggr,
                          const KernelCtx &ctx) const
{
    GNNBENCH_CHECK(src.size() == dst.size(),
                   "propagate: src/dst length mismatch");
    kernels::ReduceOp op;
    GNNBENCH_CHECK(kernels::parseReduceOp(aggr, &op),
                   "propagate: unknown aggregator '", aggr, "'");
    core::Tensor msgs = gather(x, src, ctx);
    if (edge_weight)
        msgs = mulEdgeScalar(msgs, *edge_weight, ctx);
    switch (op) {
    case kernels::ReduceOp::Sum:
        return scatterSum(msgs, dst, out_rows, ctx);
    case kernels::ReduceOp::Mean:
        return scatterMean(msgs, dst, out_rows, ctx);
    case kernels::ReduceOp::Max:
        return scatterMax(msgs, dst, out_rows, ctx);
    }
    __builtin_unreachable();
}

} // namespace pygx
} // namespace gnnbench
