/**
 * @file
 * The pygx 'MessagePassing' interface and sampled-batch containers.
 *
 * PyG expresses layers through a gather-and-scatter MessagePassing
 * base class operating on edge_index arrays; samplers hand models
 * edge lists rather than adjacency blocks.  pygx mirrors both: the
 * batch types below carry edge arrays, and MessagePassing provides
 * the (materializing) propagate primitive unfused layers build on.
 */

#ifndef GNNBENCH_PYGX_MESSAGE_PASSING_H
#define GNNBENCH_PYGX_MESSAGE_PASSING_H

#include <string>
#include <vector>

#include "gnnbench/pygx/scatter.h"

namespace gnnbench {
namespace pygx {

/** An induced subgraph as PyG's subgraph() returns it: edge_index
 *  over locally relabeled nodes. */
struct EdgeBatch
{
    std::vector<NodeId> nodes;  ///< global ids (position = local id)
    std::vector<NodeId> src;    ///< local source endpoints
    std::vector<NodeId> dst;    ///< local destination endpoints

    NodeId numNodes() const
    {
        return static_cast<NodeId>(nodes.size());
    }
    EdgeId numEdges() const
    {
        return static_cast<EdgeId>(src.size());
    }

    uint64_t structureBytes() const;

    void validate() const;
};

/** One sampled bipartite layer, PyG NeighborLoader style. */
struct LayerBatch
{
    /** Global ids of sources; dstNodes is a prefix of srcNodes. */
    std::vector<NodeId> srcNodes;
    std::vector<NodeId> dstNodes;
    std::vector<NodeId> eSrc;  ///< local src endpoint per edge
    std::vector<NodeId> eDst;  ///< local dst endpoint per edge

    uint64_t structureBytes() const;

    void validate() const;
};

/** Output of the pygx neighbor sampler for one seed batch. */
struct NeighborBatch
{
    std::vector<NodeId> seeds;
    /** layers[0] is the input-side layer (applied first). */
    std::vector<LayerBatch> layers;

    const std::vector<NodeId> &
    inputNodes() const
    {
        return layers.front().srcNodes;
    }

    uint64_t structureBytes() const;

    void validate() const;
};

/** Gather-and-scatter message passing base class (PyG style). */
class MessagePassing
{
  public:
    explicit MessagePassing(std::string name) : name_(std::move(name)) {}
    virtual ~MessagePassing() = default;

    const std::string &name() const { return name_; }

  protected:
    /**
     * Unfused propagate: materialize messages x[src], optionally
     * weight them, scatter-reduce onto @p out_rows destinations.
     * @param aggr one of "sum", "mean", "max".
     * @throws OomError when the E x F materialization exceeds the
     * device budget at full dataset scale.
     */
    core::Tensor propagate(const std::vector<NodeId> &src,
                           const std::vector<NodeId> &dst,
                           NodeId out_rows, const core::Tensor &x,
                           const core::Tensor *edge_weight,
                           const std::string &aggr,
                           const KernelCtx &ctx) const;

  private:
    std::string name_;
};

} // namespace pygx
} // namespace gnnbench

#endif // GNNBENCH_PYGX_MESSAGE_PASSING_H
