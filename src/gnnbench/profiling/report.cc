#include "gnnbench/profiling/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "gnnbench/core/common.h"

namespace gnnbench {
namespace profiling {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    GNNBENCH_CHECK(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    GNNBENCH_CHECK(cells.size() == headers_.size(),
                   "table row arity mismatch");
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(width[c] - row[c].size() + 2, ' ');
        }
        out << "\n";
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    out << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return out.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

namespace {

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '\"')
            out += '\"';
        out += c;
    }
    out += '\"';
    return out;
}

} // namespace

std::string
Table::renderCsv() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << csvEscape(row[c]);
            if (c + 1 < row.size())
                out << ',';
        }
        out << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

void
Table::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    GNNBENCH_CHECK(out.is_open(), "cannot open '", path,
                   "' for writing");
    out << renderCsv();
    GNNBENCH_CHECK(out.good(), "write to '", path, "' failed");
}

std::string
fmtSeconds(double seconds)
{
    char buf[64];
    if (seconds < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
    else if (seconds < 1.0)
        std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
    return buf;
}

std::string
fmtFixed(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
fmtJoules(double joules)
{
    char buf[64];
    if (joules >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.2f kJ", joules / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.2f J", joules);
    return buf;
}

std::string
fmtCount(int64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return {out.rbegin(), out.rend()};
}

} // namespace profiling
} // namespace gnnbench
