/**
 * @file
 * Analytic roofline accounting for the kernel layer.
 *
 * Every kernel dispatch charges an OpCost — analytic FLOPs and bytes
 * derived from the problem shape (rows, stored entries, feature
 * width) — and the machine is characterized once by a measured
 * calibration probe: a STREAM-triad pass for sustainable memory
 * bandwidth and an unrolled FMA loop for single-core peak FLOP/s.
 * Together they place each kernel on the classic roofline: its
 * operational intensity (FLOPs/byte) selects the attainable ceiling
 * min(peak, bandwidth x intensity), and the achieved fraction is the
 * kernel's measured FLOP/s (or, for FLOP-free movement ops, byte/s)
 * against that ceiling.  The fraction is the headline number the
 * magnifying-glass ablation reports per kernel variant: a Simd SpMM
 * at 0.8 of roof has little left to win; one at 0.2 names the next
 * optimization.
 *
 * Accounting conventions (documented in docs/observability.md):
 * multiply-add counts as 2 FLOPs, a comparison (max reduce) as 1,
 * and bytes follow the kernel layer's modeled-traffic formulas — one
 * feature-row read per stored entry plus the output write — matching
 * the "kernels.*.bytes" counters exactly so the two accountings
 * never disagree.
 *
 * The calibration is lazy (first use), takes a few tens of
 * milliseconds, and is process-wide; tests can pin synthetic peaks
 * with setCalibrationForTest().
 */

#ifndef GNNBENCH_PROFILING_ROOFLINE_H
#define GNNBENCH_PROFILING_ROOFLINE_H

#include <cstdint>
#include <string>

namespace gnnbench {
namespace profiling {

class JsonWriter;
class MetricsRegistry;

/** Analytic cost of one kernel dispatch. */
struct OpCost
{
    double flops = 0.0;
    double bytes = 0.0;

    /** FLOPs per byte of memory traffic (0 for byte-free ops). */
    double
    intensity() const
    {
        return bytes > 0.0 ? flops / bytes : 0.0;
    }

    OpCost &
    operator+=(const OpCost &o)
    {
        flops += o.flops;
        bytes += o.bytes;
        return *this;
    }
};

/// @name Per-kernel analytic cost models
/// Shapes use the kernel layer's conventions: @p rows output rows,
/// @p nnz stored entries, @p f feature width.
/// @{

/** CSR SpMM sum/mean: nnz*f adds (+ nnz*f muls when weighted,
 *  + rows*f muls for the mean divide). */
OpCost spmmCost(uint64_t rows, uint64_t nnz, int64_t f, bool weighted,
                bool mean);

/** CSR SpMM max: one compare per stored entry element. */
OpCost spmmMaxCost(uint64_t rows, uint64_t nnz, int64_t f);

/** Scatter (transpose) SpMM: read-modify-write of the output row per
 *  stored entry. */
OpCost spmmScatterCost(uint64_t nnz, int64_t f, bool weighted);

/** SDDMM add: one add per stored-entry element. */
OpCost sddmmAddCost(uint64_t nnz, int64_t f);

/** SDDMM dot: one FMA per stored-entry element, scalar output. */
OpCost sddmmDotCost(uint64_t nnz, int64_t f);

/** Row gather: pure movement, no FLOPs. */
OpCost gatherCost(uint64_t n, int64_t f);

/** Scatter sum/mean/max onto @p out_rows rows. */
OpCost scatterCost(uint64_t n, uint64_t out_rows, int64_t f);

/** Edge-major per-row segment sum. */
OpCost segmentSumCost(uint64_t rows, uint64_t nnz, int64_t f);

/// @}

/** Measured machine ceilings (single core, the harness's unit). */
struct RooflineCalibration
{
    bool measured = false;
    /** Peak single-core FP32 FLOP/s from the FMA probe. */
    double peakFlopsPerSec = 0.0;
    /** Sustainable bytes/s from the STREAM-triad probe. */
    double memBandwidthBytesPerSec = 0.0;
    /** Wall seconds the probe itself took. */
    double calibrationSeconds = 0.0;

    /** Intensity where the memory roof meets the compute roof. */
    double
    ridgeIntensity() const
    {
        return memBandwidthBytesPerSec > 0.0
                   ? peakFlopsPerSec / memBandwidthBytesPerSec
                   : 0.0;
    }
};

/**
 * The process calibration, measured once on first call (STREAM triad
 * + FMA peak, best-of-3, ~30-60 ms).  Thread-safe.
 */
const RooflineCalibration &rooflineCalibration();

/** Test hook: install synthetic ceilings (measured=false restores
 *  lazy measurement on the next rooflineCalibration() call). */
void setCalibrationForTest(const RooflineCalibration &c);

/** The roofline ceiling at @p intensity: min(peak, bw * intensity). */
double attainableFlopsPerSec(const RooflineCalibration &c,
                             double intensity);

/**
 * Achieved fraction of the roofline for an op that took @p seconds:
 * achieved FLOP/s over the ceiling at the op's intensity; FLOP-free
 * ops fall back to achieved bytes/s over the bandwidth roof.
 * Returns 0 for non-positive seconds or an unmeasured calibration.
 */
double rooflineFraction(const OpCost &cost, double seconds,
                        const RooflineCalibration &c);

/**
 * Emit the "roofline" report section as the value of @p key:
 * calibration ceilings plus, when @p metrics is given, the per-family
 * aggregate FLOPs/bytes/intensity reconstructed from the
 * "kernels.*.flops"/".bytes" counters.  Every bench --json report
 * carries this section (see writeRunReport).
 */
void writeRooflineJson(JsonWriter &w, const std::string &key,
                       const MetricsRegistry *metrics);

} // namespace profiling
} // namespace gnnbench

#endif // GNNBENCH_PROFILING_ROOFLINE_H
