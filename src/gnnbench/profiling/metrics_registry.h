/**
 * @file
 * Process-wide metrics registry: counters, gauges, and fixed-bucket
 * histograms, safe to update from any thread (prefetch workers
 * included) with cheap thread-sharded counters on the hot paths.
 *
 * The registry complements the phase/scope profilers: where those
 * answer "where did the time go", metrics answer "how hard were the
 * subsystems working" — prefetcher queue depth and stall time,
 * feature-cache hit rate, sampler RNG draws, bytes moved per
 * direction, and allocator high-water marks.  A snapshot of every
 * metric rides the unified run report (see trace.h) next to the
 * trace and the phase totals.
 *
 * Metric objects registered once live for the process lifetime;
 * reset() zeroes values but never invalidates references, so call
 * sites may cache `Counter &` across runs.
 */

#ifndef GNNBENCH_PROFILING_METRICS_REGISTRY_H
#define GNNBENCH_PROFILING_METRICS_REGISTRY_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gnnbench/profiling/json_writer.h"

namespace gnnbench {
namespace profiling {

/**
 * A monotonically increasing counter.  add() touches only the calling
 * thread's shard (one relaxed atomic add on a private cache line), so
 * concurrent updates from prefetch workers never contend; value()
 * sums the shards.
 */
class Counter
{
  public:
    void
    add(uint64_t delta = 1)
    {
        shards_[shardIndex()].v.fetch_add(delta,
                                          std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        uint64_t sum = 0;
        for (const auto &s : shards_)
            sum += s.v.load(std::memory_order_relaxed);
        return sum;
    }

    void
    reset()
    {
        for (auto &s : shards_)
            s.v.store(0, std::memory_order_relaxed);
    }

  private:
    static constexpr int kShards = 16;

    struct alignas(64) Shard
    {
        std::atomic<uint64_t> v{0};
    };

    /** Stable per-thread shard slot (round-robin assignment). */
    static int shardIndex();

    Shard shards_[kShards];
};

/** A last-value / high-water-mark gauge. */
class Gauge
{
  public:
    void
    set(double v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

    /** Raise the gauge to @p v if it is larger (high-water mark). */
    void
    updateMax(double v)
    {
        double cur = v_.load(std::memory_order_relaxed);
        while (v > cur &&
               !v_.compare_exchange_weak(cur, v,
                                         std::memory_order_relaxed))
            ;
    }

    double
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() { v_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/**
 * A fixed-bucket histogram: observations are counted into the first
 * bucket whose upper bound is >= the value (last bucket is +inf).
 * Bucket counts are atomic; sum/count give the mean.
 */
class Histogram
{
  public:
    /** @param upper_bounds ascending finite bucket upper bounds; an
     *  implicit +inf bucket is appended. */
    explicit Histogram(std::vector<double> upper_bounds);

    void observe(double v);

    const std::vector<double> &upperBounds() const { return bounds_; }

    /** Count in bucket @p i (i == bounds().size() is the +inf one). */
    uint64_t bucketCount(size_t i) const;

    uint64_t count() const;
    double sum() const;
    double
    mean() const
    {
        const uint64_t n = count();
        return n > 0 ? sum() / static_cast<double>(n) : 0.0;
    }

    void reset();

    /**
     * Approximate quantile (0 <= p <= 1) reconstructed from the
     * bucket counts by linear interpolation inside the containing
     * bucket (Prometheus histogram_quantile semantics).  The first
     * bucket interpolates from 0; an observation landing in the +inf
     * bucket clamps to the last finite bound.  Returns 0 for an
     * empty histogram.
     */
    double percentile(double p) const;

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<uint64_t>> counts_;
    std::atomic<double> sum_{0.0};
    std::atomic<uint64_t> total_{0};
};

/**
 * Exact sample quantile (0 <= p <= 1) of an ascending-sorted sample
 * set, with linear interpolation between order statistics (the
 * "linear" / type-7 estimator numpy defaults to).  Fatal when the
 * samples are empty or unsorted-looking endpoints are passed; used by
 * the serve bench for per-tenant p50/p95/p99 so callers stop
 * hand-rolling percentile math.
 */
double percentileSorted(const std::vector<double> &sorted, double p);

/** Convenience: {p50, p95, p99} of an ascending-sorted sample set. */
struct LatencySummary
{
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

LatencySummary latencySummary(const std::vector<double> &sorted);

/**
 * Name -> metric registry.  Lookup takes a mutex (cache the returned
 * reference on hot paths); updates through the returned objects are
 * lock-free.  Names are reported in sorted order, so JSON and text
 * output are deterministic.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry used by all instrumentation. */
    static MetricsRegistry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** @p upper_bounds is used on first registration only. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> upper_bounds);

    /** Zero every metric (references stay valid). */
    void reset();

    /** One sorted (name, value) pair per counter with value > 0. */
    std::vector<std::pair<std::string, uint64_t>> counterValues() const;
    std::vector<std::pair<std::string, double>> gaugeValues() const;

    /** Emit {"counters": {...}, "gauges": {...}, "histograms": {...}}
     *  as the value of @p key. */
    void writeJson(JsonWriter &w, const std::string &key) const;

    /**
     * Render every registered metric (zero-valued ones included) in
     * OpenMetrics text format, "# EOF"-terminated.  Implemented in
     * exporter.cc; see exporter.h for the naming rules.
     */
    void renderOpenMetrics(std::ostream &out) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * Add the calling thread's core::Rng draws since its previous flush
 * to the "rng.draws" counter.  Prefetch workers flush when they
 * finish; the run-report emitter flushes the main thread.
 */
void flushRngDraws();

} // namespace profiling
} // namespace gnnbench

#endif // GNNBENCH_PROFILING_METRICS_REGISTRY_H
