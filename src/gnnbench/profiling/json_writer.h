/**
 * @file
 * Minimal streaming JSON writer (and validator) for the observability
 * layer: Chrome trace export, metrics snapshots, and the unified run
 * report.  No external dependency; output is deterministic for a
 * deterministic call sequence, which the trace tests rely on.
 */

#ifndef GNNBENCH_PROFILING_JSON_WRITER_H
#define GNNBENCH_PROFILING_JSON_WRITER_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace gnnbench {
namespace profiling {

/**
 * Streaming JSON emitter over an std::ostream.  The caller drives the
 * nesting (beginObject/endObject, beginArray/endArray); the writer
 * inserts commas, quotes keys, and escapes strings.  Numbers are
 * printed with enough precision to round-trip doubles.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out) : out_(out) {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    /// @name Containers
    /// @{
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();
    /** Open an object/array as the value of @p key. */
    void beginObject(const std::string &key);
    void beginArray(const std::string &key);
    /// @}

    /// @name Key/value pairs inside an object
    /// @{
    void value(const std::string &key, const std::string &v);
    void value(const std::string &key, const char *v);
    void value(const std::string &key, double v);
    void value(const std::string &key, int64_t v);
    void value(const std::string &key, uint64_t v);
    void value(const std::string &key, int v);
    void value(const std::string &key, bool v);
    /// @}

    /// @name Bare values inside an array
    /// @{
    void value(const std::string &v);
    void value(double v);
    void value(int64_t v);
    void value(uint64_t v);
    /// @}

    /** JSON-escape a string (without surrounding quotes). */
    static std::string escape(const std::string &s);

  private:
    void comma();
    void key(const std::string &k);
    void writeString(const std::string &s);
    void writeDouble(double v);

    std::ostream &out_;
    /** Whether the current container already holds an element. */
    std::vector<bool> hasElement_{};
};

namespace json {

/**
 * Validate that @p text is one well-formed JSON document (objects,
 * arrays, strings, numbers, true/false/null).  Used by the trace
 * tests; scripts/check_trace.sh performs the same check externally.
 */
bool valid(const std::string &text);

} // namespace json

} // namespace profiling
} // namespace gnnbench

#endif // GNNBENCH_PROFILING_JSON_WRITER_H
