#include "gnnbench/profiling/metrics_registry.h"

#include <algorithm>

#include "gnnbench/core/common.h"
#include "gnnbench/core/rng.h"

namespace gnnbench {
namespace profiling {

int
Counter::shardIndex()
{
    static std::atomic<unsigned> next{0};
    thread_local int slot = static_cast<int>(
        next.fetch_add(1, std::memory_order_relaxed) % kShards);
    return slot;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1)
{
    GNNBENCH_CHECK(
        std::is_sorted(bounds_.begin(), bounds_.end()),
        "histogram bucket bounds must be ascending");
}

void
Histogram::observe(double v)
{
    const size_t i = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed))
        ;
}

uint64_t
Histogram::bucketCount(size_t i) const
{
    GNNBENCH_CHECK(i < counts_.size(), "histogram bucket out of range");
    return counts_[i].load(std::memory_order_relaxed);
}

uint64_t
Histogram::count() const
{
    return total_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

double
Histogram::percentile(double p) const
{
    GNNBENCH_CHECK(p >= 0.0 && p <= 1.0,
                   "percentile rank must be in [0, 1], got ", p);
    const uint64_t n = count();
    if (n == 0)
        return 0.0;
    const double target = p * static_cast<double>(n);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        const uint64_t c =
            counts_[i].load(std::memory_order_relaxed);
        if (c == 0)
            continue;
        const uint64_t next = cumulative + c;
        if (static_cast<double>(next) >= target) {
            // +inf bucket: the best claim we can make is the last
            // finite bound (or the mean for a bound-less histogram).
            if (i >= bounds_.size())
                return bounds_.empty() ? mean() : bounds_.back();
            const double lo = i == 0 ? 0.0 : bounds_[i - 1];
            const double hi = bounds_[i];
            const double frac =
                (target - static_cast<double>(cumulative)) /
                static_cast<double>(c);
            return lo + (hi - lo) * frac;
        }
        cumulative = next;
    }
    return bounds_.empty() ? mean() : bounds_.back();
}

double
percentileSorted(const std::vector<double> &sorted, double p)
{
    GNNBENCH_CHECK(!sorted.empty(),
                   "percentileSorted needs at least one sample");
    GNNBENCH_CHECK(p >= 0.0 && p <= 1.0,
                   "percentile rank must be in [0, 1], got ", p);
    GNNBENCH_ASSERT(sorted.front() <= sorted.back(),
                    "percentileSorted input must be ascending");
    if (sorted.size() == 1)
        return sorted.front();
    const double pos = p * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[lo + 1] - sorted[lo]) * frac;
}

LatencySummary
latencySummary(const std::vector<double> &sorted)
{
    LatencySummary s;
    if (sorted.empty())
        return s;
    s.p50 = percentileSorted(sorted, 0.50);
    s.p95 = percentileSorted(sorted, 0.95);
    s.p99 = percentileSorted(sorted, 0.99);
    return s;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> upper_bounds)
{
    std::lock_guard lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(upper_bounds));
    return *slot;
}

void
MetricsRegistry::reset()
{
    std::lock_guard lock(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::counterValues() const
{
    std::lock_guard lock(mutex_);
    std::vector<std::pair<std::string, uint64_t>> out;
    for (const auto &[name, c] : counters_) {
        const uint64_t v = c->value();
        if (v > 0)
            out.emplace_back(name, v);
    }
    return out;
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::gaugeValues() const
{
    std::lock_guard lock(mutex_);
    std::vector<std::pair<std::string, double>> out;
    for (const auto &[name, g] : gauges_) {
        const double v = g->value();
        if (v != 0.0)
            out.emplace_back(name, v);
    }
    return out;
}

void
MetricsRegistry::writeJson(JsonWriter &w, const std::string &key) const
{
    std::lock_guard lock(mutex_);
    w.beginObject(key);
    w.beginObject("counters");
    for (const auto &[name, c] : counters_)
        w.value(name, c->value());
    w.endObject();
    w.beginObject("gauges");
    for (const auto &[name, g] : gauges_)
        w.value(name, g->value());
    w.endObject();
    w.beginObject("histograms");
    for (const auto &[name, h] : histograms_) {
        w.beginObject(name);
        w.beginArray("bounds");
        for (double b : h->upperBounds())
            w.value(b);
        w.endArray();
        w.beginArray("counts");
        for (size_t i = 0; i <= h->upperBounds().size(); ++i)
            w.value(h->bucketCount(i));
        w.endArray();
        w.value("count", h->count());
        w.value("sum", h->sum());
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

void
flushRngDraws()
{
    thread_local uint64_t flushed = 0;
    const uint64_t now = core::rngDrawsThisThread();
    if (now == flushed)
        return;
    MetricsRegistry::global().counter("rng.draws").add(now - flushed);
    flushed = now;
}

} // namespace profiling
} // namespace gnnbench
