/**
 * @file
 * Hardware performance-counter attribution via perf_event_open(2).
 *
 * The paper's "magnifying glass" is ultimately a microarchitectural
 * one: knowing that sampling took 40% of the wall clock is far weaker
 * evidence than knowing it retired 0.4 IPC at an 80% LLC-miss rate.
 * This layer reads a small fixed group of PMU counters — cycles,
 * instructions, LLC references/misses, branch misses, and stalled
 * backend cycles — around every profiling scope and every kernel
 * dispatch, so phases and kernels carry *measured* hardware cost next
 * to the modeled bytes the device model charges.
 *
 * Design constraints, in order:
 *
 *  1. **Graceful no-op fallback.**  perf_event_open is frequently
 *     denied (unprivileged containers, GitHub CI runners,
 *     kernel.perf_event_paranoid >= 3) or absent (non-Linux).  Every
 *     entry point here degrades to a cheap no-op in that case:
 *     PerfScope costs one relaxed bool load, deltas come back
 *     `valid == false`, and callers emit an explicit "unavailable"
 *     marker instead of zeros masquerading as measurements.
 *  2. **Per-thread counting.**  Counters are opened per thread
 *     (pid=0, cpu=-1) the first time that thread opens a PerfScope,
 *     so prefetch workers and serve workers attribute their own work
 *     without cross-thread contamination.
 *  3. **Multiplexing-aware scaling.**  The six events may exceed the
 *     physical PMU width; the kernel then time-multiplexes the group.
 *     Reads use PERF_FORMAT_TOTAL_TIME_{ENABLED,RUNNING} and scale
 *     values by enabled/running — the standard unbiased estimate —
 *     so deltas stay comparable whether or not the group was
 *     descheduled.
 *
 * GNNBENCH_PERF=off disables collection even where the syscall
 * works (e.g. to A/B the instrumentation overhead); any other value
 * (or unset) means "use it if the kernel allows".
 */

#ifndef GNNBENCH_PROFILING_PERF_COUNTERS_H
#define GNNBENCH_PROFILING_PERF_COUNTERS_H

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gnnbench {
namespace profiling {

/** Index of each event in a PerfDelta / counter-group read. */
enum class PerfEvent : int
{
    Cycles = 0,
    Instructions = 1,
    LlcLoads = 2,     ///< PERF_COUNT_HW_CACHE_REFERENCES
    LlcMisses = 3,    ///< PERF_COUNT_HW_CACHE_MISSES
    BranchMisses = 4,
    StalledCycles = 5 ///< PERF_COUNT_HW_STALLED_CYCLES_BACKEND
};

constexpr int kNumPerfEvents = 6;

/** Metric-suffix name of one event ("cycles", "llc_misses", ...). */
const char *perfEventName(PerfEvent e);

/**
 * Multiplexing-scaled counter deltas over one scope.  `valid` is
 * false when the PMU is unavailable (or disabled); all values are
 * zero then.  Individual events the kernel refused to open (e.g.
 * stalled-cycles on many VMs) read as zero with their bit cleared in
 * `present`.
 */
struct PerfDelta
{
    bool valid = false;
    /** Bitmask of PerfEvent indices that were actually counted. */
    unsigned present = 0;
    std::array<double, kNumPerfEvents> v{};

    double value(PerfEvent e) const { return v[static_cast<int>(e)]; }
    bool
    has(PerfEvent e) const
    {
        return (present >> static_cast<int>(e)) & 1u;
    }

    double cycles() const { return value(PerfEvent::Cycles); }
    double instructions() const { return value(PerfEvent::Instructions); }
    double llcLoads() const { return value(PerfEvent::LlcLoads); }
    double llcMisses() const { return value(PerfEvent::LlcMisses); }
    double branchMisses() const { return value(PerfEvent::BranchMisses); }
    double stalledCycles() const { return value(PerfEvent::StalledCycles); }

    /** Instructions per cycle (0 when cycles weren't counted). */
    double ipc() const;
    /** LLC misses / LLC references (0 when references are 0). */
    double llcMissRate() const;
    /** Stalled backend cycles / cycles (0 when not counted). */
    double stalledFraction() const;

    PerfDelta &operator+=(const PerfDelta &other);
};

/**
 * Whether PMU collection is live in this process: perf_event_open
 * succeeded on a probe counter and GNNBENCH_PERF is not "off".
 * Decided once, at first call; cheap afterwards.
 */
bool perfAvailable();

/**
 * Human-readable availability status for reports: "available",
 * "disabled (GNNBENCH_PERF=off)", or "unavailable (<errno name>)" —
 * the last being what GitHub runners produce (EPERM/EACCES under
 * the default seccomp policy).
 */
const char *perfStatusLabel();

/**
 * Test hook: force the available/unavailable decision, overriding the
 * probe (pass -1 to restore the probed value).  Lets the fallback
 * path be exercised deterministically on machines where the PMU
 * works, and vice versa lets a denied CI runner assert the fallback
 * is what actually ran.
 */
void setPerfForcedStateForTest(int forced);

/**
 * RAII counter read around a region of one thread's execution.
 * Construction snapshots the calling thread's counter group (opening
 * it on the thread's first use); stop()/destruction produces the
 * scaled delta.  Never throws; on an unavailable PMU both ends are
 * no-ops and the delta is invalid.
 */
class PerfScope
{
  public:
    PerfScope();
    ~PerfScope() = default;

    PerfScope(const PerfScope &) = delete;
    PerfScope &operator=(const PerfScope &) = delete;

    /** Delta since construction; callable once per region end (each
     *  call re-reads, so later calls extend the region). */
    PerfDelta stop() const;

  private:
    bool active_ = false;
    std::array<double, kNumPerfEvents> start_{};
    unsigned present_ = 0;
};

/**
 * Accumulate a delta into the process metrics registry as
 * "<prefix>.cycles", "<prefix>.instructions", ...  No-op for invalid
 * deltas, so call sites need no availability check of their own.
 */
void addPerfDelta(const std::string &prefix, const PerfDelta &d);

/**
 * Append the delta as (name, value) counter args for a trace slice
 * ("cycles", "instructions", ..., plus derived "ipc" and
 * "llc_miss_rate").  No-op for invalid deltas.
 */
void appendPerfArgs(const PerfDelta &d,
                    std::vector<std::pair<std::string, double>> *args);

} // namespace profiling
} // namespace gnnbench

#endif // GNNBENCH_PROFILING_PERF_COUNTERS_H
