/**
 * @file
 * Text-table rendering used by every benchmark binary to print the
 * rows/series of the paper's tables and figures.
 */

#ifndef GNNBENCH_PROFILING_REPORT_H
#define GNNBENCH_PROFILING_REPORT_H

#include <string>
#include <vector>

namespace gnnbench {
namespace profiling {

/** A fixed-column text table with auto-sized columns. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a separator under the header. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Render as RFC-4180-style CSV (quoting cells as needed). */
    std::string renderCsv() const;

    /** Write the CSV rendering to @p path (fatal on I/O failure). */
    void writeCsv(const std::string &path) const;

    /** Column headers, for structured (JSON) export. */
    const std::vector<std::string> &headers() const { return headers_; }

    /** Row cells, for structured (JSON) export. */
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** "12.3 ms" / "4.56 s" style duration formatting. */
std::string fmtSeconds(double seconds);

/** Fixed-precision decimal formatting. */
std::string fmtFixed(double value, int precision = 2);

/** "1.23 kJ" / "45.6 J" energy formatting. */
std::string fmtJoules(double joules);

/** Thousands-separated integer formatting. */
std::string fmtCount(int64_t value);

} // namespace profiling
} // namespace gnnbench

#endif // GNNBENCH_PROFILING_REPORT_H
