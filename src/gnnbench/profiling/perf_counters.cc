#include "gnnbench/profiling/perf_counters.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "gnnbench/profiling/metrics_registry.h"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define GNNBENCH_HAVE_PERF_EVENT 1
#include <cerrno>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define GNNBENCH_HAVE_PERF_EVENT 0
#endif

namespace gnnbench {
namespace profiling {

const char *
perfEventName(PerfEvent e)
{
    switch (e) {
    case PerfEvent::Cycles:
        return "cycles";
    case PerfEvent::Instructions:
        return "instructions";
    case PerfEvent::LlcLoads:
        return "llc_loads";
    case PerfEvent::LlcMisses:
        return "llc_misses";
    case PerfEvent::BranchMisses:
        return "branch_misses";
    case PerfEvent::StalledCycles:
        return "stalled_cycles";
    }
    return "?";
}

double
PerfDelta::ipc() const
{
    return cycles() > 0.0 ? instructions() / cycles() : 0.0;
}

double
PerfDelta::llcMissRate() const
{
    return llcLoads() > 0.0 ? llcMisses() / llcLoads() : 0.0;
}

double
PerfDelta::stalledFraction() const
{
    return (has(PerfEvent::StalledCycles) && cycles() > 0.0)
               ? stalledCycles() / cycles()
               : 0.0;
}

PerfDelta &
PerfDelta::operator+=(const PerfDelta &other)
{
    if (!other.valid)
        return *this;
    valid = true;
    present |= other.present;
    for (int i = 0; i < kNumPerfEvents; ++i)
        v[static_cast<size_t>(i)] += other.v[static_cast<size_t>(i)];
    return *this;
}

namespace {

/** -1 = follow the probe; 0 = forced off; 1 = forced on (tests). */
std::atomic<int> g_forcedState{-1};

#if GNNBENCH_HAVE_PERF_EVENT

long
perfEventOpen(struct perf_event_attr *attr, pid_t pid, int cpu,
              int group_fd, unsigned long flags)
{
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd,
                   flags);
}

struct perf_event_attr
hwAttr(uint64_t config)
{
    struct perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 0;
    attr.exclude_kernel = 1; // works at perf_event_paranoid <= 2
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP |
                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    return attr;
}

constexpr uint64_t
eventConfig(PerfEvent e)
{
    switch (e) {
    case PerfEvent::Cycles:
        return PERF_COUNT_HW_CPU_CYCLES;
    case PerfEvent::Instructions:
        return PERF_COUNT_HW_INSTRUCTIONS;
    case PerfEvent::LlcLoads:
        return PERF_COUNT_HW_CACHE_REFERENCES;
    case PerfEvent::LlcMisses:
        return PERF_COUNT_HW_CACHE_MISSES;
    case PerfEvent::BranchMisses:
        return PERF_COUNT_HW_BRANCH_MISSES;
    case PerfEvent::StalledCycles:
        return PERF_COUNT_HW_STALLED_CYCLES_BACKEND;
    }
    return 0;
}

/**
 * One thread's counter group: a cycles leader plus whichever sibling
 * events the kernel accepted.  Values are read as a group with
 * enabled/running times; readScaled() returns cumulative counts
 * scaled by enabled/running to undo multiplexing.
 */
class ThreadGroup
{
  public:
    ThreadGroup()
    {
        auto leaderAttr = hwAttr(eventConfig(PerfEvent::Cycles));
        leader_ = static_cast<int>(
            perfEventOpen(&leaderAttr, 0, -1, -1, 0));
        if (leader_ < 0)
            return;
        fds_[0] = leader_;
        present_ = 1u;
        for (int i = 1; i < kNumPerfEvents; ++i) {
            auto attr =
                hwAttr(eventConfig(static_cast<PerfEvent>(i)));
            const int fd = static_cast<int>(
                perfEventOpen(&attr, 0, -1, leader_, 0));
            fds_[static_cast<size_t>(i)] = fd;
            if (fd >= 0)
                present_ |= 1u << i;
        }
    }

    ~ThreadGroup()
    {
        for (int fd : fds_)
            if (fd >= 0)
                close(fd);
    }

    ThreadGroup(const ThreadGroup &) = delete;
    ThreadGroup &operator=(const ThreadGroup &) = delete;

    bool ok() const { return leader_ >= 0; }
    unsigned present() const { return present_; }

    /** Cumulative scaled counts in PerfEvent order; false on a read
     *  failure (the scope then reports invalid). */
    bool
    readScaled(std::array<double, kNumPerfEvents> *out) const
    {
        // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
        // then one value per group member in open order.
        uint64_t buf[3 + kNumPerfEvents];
        const ssize_t n = read(leader_, buf, sizeof(buf));
        if (n < static_cast<ssize_t>(3 * sizeof(uint64_t)))
            return false;
        const uint64_t nr = buf[0];
        const uint64_t enabled = buf[1];
        const uint64_t running = buf[2];
        const double scale =
            running > 0 ? static_cast<double>(enabled) /
                              static_cast<double>(running)
                        : 0.0;
        out->fill(0.0);
        // Group members appear in the order they were opened; map
        // them back to their event slots via the present_ mask.
        uint64_t member = 0;
        for (int i = 0; i < kNumPerfEvents; ++i) {
            if (!((present_ >> i) & 1u))
                continue;
            if (member >= nr)
                break;
            (*out)[static_cast<size_t>(i)] =
                static_cast<double>(buf[3 + member]) * scale;
            ++member;
        }
        return true;
    }

  private:
    int leader_ = -1;
    std::array<int, kNumPerfEvents> fds_{-1, -1, -1, -1, -1, -1};
    unsigned present_ = 0;
};

ThreadGroup &
threadGroup()
{
    thread_local ThreadGroup group;
    return group;
}

/** Probe result, decided once: 1 = available, 0 = not, with label. */
struct ProbeResult
{
    bool available = false;
    const char *label = "unavailable";
};

ProbeResult
probe()
{
    ProbeResult r;
    const char *env = std::getenv("GNNBENCH_PERF");
    if (env && std::strcmp(env, "off") == 0) {
        r.label = "disabled (GNNBENCH_PERF=off)";
        return r;
    }
    auto attr = hwAttr(PERF_COUNT_HW_CPU_CYCLES);
    const int fd =
        static_cast<int>(perfEventOpen(&attr, 0, -1, -1, 0));
    if (fd >= 0) {
        close(fd);
        r.available = true;
        r.label = "available";
        return r;
    }
    switch (errno) {
    case EPERM:
        r.label = "unavailable (EPERM)";
        break;
    case EACCES:
        r.label = "unavailable (EACCES)";
        break;
    case ENOSYS:
        r.label = "unavailable (ENOSYS)";
        break;
    case ENOENT:
        r.label = "unavailable (ENOENT)";
        break;
    default:
        r.label = "unavailable (errno)";
        break;
    }
    return r;
}

#else // !GNNBENCH_HAVE_PERF_EVENT

struct ProbeResult
{
    bool available = false;
    const char *label = "unavailable (no perf_event support)";
};

ProbeResult
probe()
{
    return ProbeResult{};
}

#endif // GNNBENCH_HAVE_PERF_EVENT

const ProbeResult &
probed()
{
    static const ProbeResult r = probe();
    return r;
}

} // namespace

bool
perfAvailable()
{
    const int forced = g_forcedState.load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    return probed().available;
}

const char *
perfStatusLabel()
{
    const int forced = g_forcedState.load(std::memory_order_relaxed);
    if (forced == 0)
        return "disabled (forced for test)";
    if (forced == 1)
        return "available";
    return probed().label;
}

void
setPerfForcedStateForTest(int forced)
{
    g_forcedState.store(forced, std::memory_order_relaxed);
}

PerfScope::PerfScope()
{
    if (!perfAvailable())
        return;
#if GNNBENCH_HAVE_PERF_EVENT
    ThreadGroup &g = threadGroup();
    if (!g.ok())
        return;
    if (!g.readScaled(&start_))
        return;
    present_ = g.present();
    active_ = true;
#endif
}

PerfDelta
PerfScope::stop() const
{
    PerfDelta d;
    if (!active_)
        return d;
#if GNNBENCH_HAVE_PERF_EVENT
    std::array<double, kNumPerfEvents> end{};
    if (!threadGroup().readScaled(&end))
        return d;
    d.valid = true;
    d.present = present_;
    for (int i = 0; i < kNumPerfEvents; ++i) {
        const auto s = static_cast<size_t>(i);
        // Scaled estimates can wobble a hair below the start value
        // when the multiplex ratio shifts mid-scope; clamp at zero
        // so downstream rates stay sane.
        const double delta = end[s] - start_[s];
        d.v[s] = delta > 0.0 ? delta : 0.0;
    }
#endif
    return d;
}

void
addPerfDelta(const std::string &prefix, const PerfDelta &d)
{
    if (!d.valid)
        return;
    auto &reg = MetricsRegistry::global();
    for (int i = 0; i < kNumPerfEvents; ++i) {
        const auto e = static_cast<PerfEvent>(i);
        if (!d.has(e))
            continue;
        reg.counter(prefix + "." + perfEventName(e))
            .add(static_cast<uint64_t>(d.value(e)));
    }
}

void
appendPerfArgs(const PerfDelta &d,
               std::vector<std::pair<std::string, double>> *args)
{
    if (!d.valid || args == nullptr)
        return;
    for (int i = 0; i < kNumPerfEvents; ++i) {
        const auto e = static_cast<PerfEvent>(i);
        if (d.has(e))
            args->emplace_back(perfEventName(e), d.value(e));
    }
    args->emplace_back("ipc", d.ipc());
    args->emplace_back("llc_miss_rate", d.llcMissRate());
}

} // namespace profiling
} // namespace gnnbench
