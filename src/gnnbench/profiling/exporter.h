/**
 * @file
 * OpenMetrics/Prometheus text-format exporter for the metrics
 * registry, plus the serve layer's SLO bookkeeping and a minimal
 * background HTTP listener.
 *
 * The registry's JSON snapshot rides each bench's --json report, but
 * that is an after-the-fact artifact; the serve layer (PR 7) runs as
 * a long-lived process where operators expect to *scrape* p99, queue
 * depth, and shed rate while traffic is flowing.  This file provides
 * the three pieces:
 *
 *  - renderOpenMetrics(): a deterministic text rendering of every
 *    registered counter/gauge/histogram.  Names are sanitized to
 *    [a-zA-Z0-9_:] with a "gnnbench_" prefix, counters carry the
 *    OpenMetrics "_total" suffix, histograms emit cumulative
 *    `_bucket{le="..."}` series plus `_sum`/`_count`, and the
 *    exposition ends with "# EOF" as the spec requires.
 *  - SloWindow: a sliding-window deadline-miss tracker that turns the
 *    serve layer's per-response hit/miss stream into the two gauges
 *    alerting actually wants — the window miss rate and the *burn
 *    rate* (miss rate over the error budget; a burn rate of 1 means
 *    the budget is being consumed exactly as provisioned, >1 means an
 *    alert).  Time is injected so the serve layer's virtual clock and
 *    the tests drive it deterministically.
 *  - MetricsHttpServer: a background listener (127.0.0.1 only) that
 *    answers every HTTP request with the current rendering.  Off by
 *    default; benches opt in with --metrics-port, and --metrics-dump
 *    writes the same rendering to a file for CI artifact capture.
 */

#ifndef GNNBENCH_PROFILING_EXPORTER_H
#define GNNBENCH_PROFILING_EXPORTER_H

#include <atomic>
#include <deque>
#include <functional>
#include <string>
#include <thread>

namespace gnnbench {
namespace profiling {

class MetricsRegistry;

/**
 * Map a registry metric name onto the OpenMetrics charset: every
 * character outside [a-zA-Z0-9_:] (the registry uses '.') becomes
 * '_', and a leading digit gets a '_' prefix.
 */
std::string sanitizeMetricName(const std::string &name);

/** Escape a label value per the spec: backslash, double-quote, and
 *  newline become \\, \", and \n. */
std::string escapeLabelValue(const std::string &value);

/** Render @p reg in OpenMetrics text format ("# EOF"-terminated). */
std::string renderOpenMetrics(const MetricsRegistry &reg);

/** Write renderOpenMetrics(reg) to @p path.  Fatal on I/O failure. */
void writeOpenMetricsFile(const std::string &path,
                          const MetricsRegistry &reg);

/**
 * Sliding-window SLO accounting.  observe() records one response
 * (deadline made or missed) at an externally supplied timestamp;
 * missRate()/burnRate() answer over the trailing window.  Not
 * thread-safe — the serve layer's collector is the single writer,
 * which is exactly the thread that publishes the gauges.
 */
class SloWindow
{
  public:
    /** @param window_seconds trailing window width;
     *  @param budget_fraction error budget (allowed miss rate). */
    explicit SloWindow(double window_seconds = 60.0,
                       double budget_fraction = 0.01);

    void observe(double now, bool missed);

    /** Responses currently inside the window (prunes first). */
    size_t size(double now);
    /** Missed fraction over the window; 0 when empty. */
    double missRate(double now);
    /** missRate / budget — the standard SLO burn rate.  A window
     *  with no traffic burns nothing. */
    double burnRate(double now);

    double windowSeconds() const { return windowSeconds_; }
    double budgetFraction() const { return budgetFraction_; }

  private:
    void prune(double now);

    double windowSeconds_;
    double budgetFraction_;
    std::deque<std::pair<double, bool>> events_;
    size_t missed_ = 0; ///< misses among events_ (kept incremental)
};

/**
 * Minimal background HTTP/1.1 listener serving the OpenMetrics
 * rendering of one registry on 127.0.0.1.  Construction binds and
 * spawns the accept thread; @p port 0 picks an ephemeral port
 * (port() reports the real one).  Every request gets a 200 with
 * `application/openmetrics-text` regardless of path, rendered at
 * request time, so scrapes always see live values.  An optional
 * @p refresh callback runs before each render (the serve bench uses
 * it to re-publish SLO gauges).  Failure to bind leaves ok() false
 * rather than aborting — metrics export must never take down a run.
 */
class MetricsHttpServer
{
  public:
    MetricsHttpServer(const MetricsRegistry &reg, int port,
                      std::function<void()> refresh = {});
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    bool ok() const { return listenFd_ >= 0; }
    int port() const { return port_; }

    /** Stop accepting and join the thread (idempotent). */
    void stop();

  private:
    void serveLoop();

    const MetricsRegistry &reg_;
    std::function<void()> refresh_;
    int listenFd_ = -1;
    int port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread thread_;
};

} // namespace profiling
} // namespace gnnbench

#endif // GNNBENCH_PROFILING_EXPORTER_H
