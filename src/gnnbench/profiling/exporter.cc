#include "gnnbench/profiling/exporter.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "gnnbench/core/common.h"
#include "gnnbench/profiling/metrics_registry.h"

#if defined(__unix__) || defined(__APPLE__)
#define GNNBENCH_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define GNNBENCH_HAVE_SOCKETS 0
#endif

namespace gnnbench {
namespace profiling {

namespace {

/** Shortest round-trippable decimal for a sample value. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

} // namespace

std::string
sanitizeMetricName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char ch : name) {
        const bool ok = (ch >= 'a' && ch <= 'z') ||
                        (ch >= 'A' && ch <= 'Z') ||
                        (ch >= '0' && ch <= '9') || ch == '_' ||
                        ch == ':';
        out.push_back(ok ? ch : '_');
    }
    if (!out.empty() && out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out;
}

std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char ch : value) {
        switch (ch) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out.push_back(ch);
        }
    }
    return out;
}

// Defined here rather than in metrics_registry.cc to keep every piece
// of exposition-format knowledge in one translation unit.
void
MetricsRegistry::renderOpenMetrics(std::ostream &out) const
{
    std::lock_guard lock(mutex_);
    for (const auto &[name, c] : counters_) {
        const std::string n =
            "gnnbench_" + sanitizeMetricName(name);
        out << "# TYPE " << n << " counter\n";
        out << n << "_total " << c->value() << "\n";
    }
    for (const auto &[name, g] : gauges_) {
        const std::string n =
            "gnnbench_" + sanitizeMetricName(name);
        out << "# TYPE " << n << " gauge\n";
        out << n << " " << fmtDouble(g->value()) << "\n";
    }
    for (const auto &[name, h] : histograms_) {
        const std::string n =
            "gnnbench_" + sanitizeMetricName(name);
        out << "# TYPE " << n << " histogram\n";
        uint64_t cumulative = 0;
        const auto &bounds = h->upperBounds();
        for (size_t i = 0; i < bounds.size(); ++i) {
            cumulative += h->bucketCount(i);
            out << n << "_bucket{le=\"" << fmtDouble(bounds[i])
                << "\"} " << cumulative << "\n";
        }
        cumulative += h->bucketCount(bounds.size());
        out << n << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
        out << n << "_sum " << fmtDouble(h->sum()) << "\n";
        out << n << "_count " << h->count() << "\n";
    }
    out << "# EOF\n";
}

std::string
renderOpenMetrics(const MetricsRegistry &reg)
{
    std::ostringstream out;
    reg.renderOpenMetrics(out);
    return out.str();
}

void
writeOpenMetricsFile(const std::string &path,
                     const MetricsRegistry &reg)
{
    std::ofstream out(path);
    GNNBENCH_CHECK(out.good(),
                   "cannot open metrics dump file: " + path);
    reg.renderOpenMetrics(out);
    out.flush();
    GNNBENCH_CHECK(out.good(),
                   "failed writing metrics dump file: " + path);
}

SloWindow::SloWindow(double window_seconds, double budget_fraction)
    : windowSeconds_(window_seconds), budgetFraction_(budget_fraction)
{
}

void
SloWindow::prune(double now)
{
    const double horizon = now - windowSeconds_;
    while (!events_.empty() && events_.front().first < horizon) {
        if (events_.front().second)
            --missed_;
        events_.pop_front();
    }
}

void
SloWindow::observe(double now, bool missed)
{
    prune(now);
    events_.emplace_back(now, missed);
    if (missed)
        ++missed_;
}

size_t
SloWindow::size(double now)
{
    prune(now);
    return events_.size();
}

double
SloWindow::missRate(double now)
{
    prune(now);
    if (events_.empty())
        return 0.0;
    return static_cast<double>(missed_) /
           static_cast<double>(events_.size());
}

double
SloWindow::burnRate(double now)
{
    if (budgetFraction_ <= 0.0)
        return 0.0;
    return missRate(now) / budgetFraction_;
}

#if GNNBENCH_HAVE_SOCKETS

MetricsHttpServer::MetricsHttpServer(const MetricsRegistry &reg,
                                     int port,
                                     std::function<void()> refresh)
    : reg_(reg), refresh_(std::move(refresh))
{
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return;
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (bind(fd, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) != 0 ||
        listen(fd, 16) != 0) {
        close(fd);
        return;
    }
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) ==
        0)
        port_ = ntohs(addr.sin_port);
    listenFd_ = fd;
    thread_ = std::thread([this] { serveLoop(); });
}

void
MetricsHttpServer::serveLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd p{};
        p.fd = listenFd_;
        p.events = POLLIN;
        const int r = poll(&p, 1, 100 /* ms */);
        if (r <= 0 || !(p.revents & POLLIN))
            continue;
        const int conn = accept(listenFd_, nullptr, nullptr);
        if (conn < 0)
            continue;
        // Drain whatever request line arrived; the path is ignored —
        // every request is a scrape.
        char buf[1024];
        (void)read(conn, buf, sizeof(buf));
        if (refresh_)
            refresh_();
        const std::string body = renderOpenMetrics(reg_);
        std::ostringstream resp;
        resp << "HTTP/1.1 200 OK\r\n"
             << "Content-Type: application/openmetrics-text; "
                "version=1.0.0; charset=utf-8\r\n"
             << "Content-Length: " << body.size() << "\r\n"
             << "Connection: close\r\n\r\n"
             << body;
        const std::string s = resp.str();
        size_t off = 0;
        while (off < s.size()) {
            const ssize_t n =
                write(conn, s.data() + off, s.size() - off);
            if (n <= 0)
                break;
            off += static_cast<size_t>(n);
        }
        close(conn);
    }
}

void
MetricsHttpServer::stop()
{
    if (listenFd_ < 0)
        return;
    stopping_.store(true, std::memory_order_relaxed);
    if (thread_.joinable())
        thread_.join();
    close(listenFd_);
    listenFd_ = -1;
}

#else // !GNNBENCH_HAVE_SOCKETS

MetricsHttpServer::MetricsHttpServer(const MetricsRegistry &reg,
                                     int /*port*/,
                                     std::function<void()> refresh)
    : reg_(reg), refresh_(std::move(refresh))
{
}

void
MetricsHttpServer::serveLoop()
{
}

void
MetricsHttpServer::stop()
{
}

#endif // GNNBENCH_HAVE_SOCKETS

MetricsHttpServer::~MetricsHttpServer()
{
    stop();
}

} // namespace profiling
} // namespace gnnbench
