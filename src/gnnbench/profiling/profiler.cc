#include "gnnbench/profiling/profiler.h"

#include <sstream>

namespace gnnbench {
namespace profiling {

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::DataLoading:
        return "data_loading";
      case Phase::Sampling:
        return "sampling";
      case Phase::DataMovement:
        return "data_movement";
      case Phase::Training:
        return "training";
      case Phase::Other:
        return "other";
    }
    return "?";
}

power::ActivitySlice
sliceBetween(const device::Session::Snapshot &a,
             const device::Session::Snapshot &b)
{
    power::ActivitySlice s;
    s.cpuBusySeconds =
        (b.wall - a.wall) - (b.excludedWall - a.excludedWall) +
        (b.modeled.cpuOverheadSeconds - a.modeled.cpuOverheadSeconds);
    s.gpuBusySeconds = b.modeled.gpuSeconds - a.modeled.gpuSeconds;
    s.gpuUtilSeconds =
        b.modeled.gpuUtilSeconds - a.modeled.gpuUtilSeconds;
    s.xferSeconds = b.modeled.xferSeconds - a.modeled.xferSeconds;
    return s;
}

PhaseTracker::PhaseTracker(device::Session &session) : session_(session)
{
}

PhaseTracker::Scope::Scope(PhaseTracker &tracker, Phase phase)
    : tracker_(tracker), phase_(phase),
      start_(tracker.session_.snapshot())
{
}

PhaseTracker::Scope::~Scope()
{
    tracker_.add(phase_,
                 sliceBetween(start_, tracker_.session_.snapshot()));
}

void
PhaseTracker::add(Phase p, const power::ActivitySlice &slice)
{
    phases_[static_cast<int>(p)] += slice;
}

const power::ActivitySlice &
PhaseTracker::phase(Phase p) const
{
    return phases_[static_cast<int>(p)];
}

power::ActivitySlice
PhaseTracker::total() const
{
    power::ActivitySlice t;
    for (const auto &s : phases_)
        t += s;
    return t;
}

ProfileNode &
ProfileNode::child(const std::string &child_name)
{
    for (auto &c : children)
        if (c->name == child_name)
            return *c;
    children.push_back(std::make_unique<ProfileNode>());
    children.back()->name = child_name;
    return *children.back();
}

Profiler::Profiler(device::Session &session) : session_(session)
{
    root_.name = "total";
    stack_.push_back(&root_);
}

Profiler::Scope::Scope(Profiler &profiler, const std::string &name)
    : profiler_(profiler), start_(profiler.session_.snapshot())
{
    ProfileNode &node = profiler_.stack_.back()->child(name);
    profiler_.stack_.push_back(&node);
}

Profiler::Scope::~Scope()
{
    ProfileNode *node = profiler_.stack_.back();
    node->slice += sliceBetween(start_, profiler_.session_.snapshot());
    ++node->calls;
    profiler_.stack_.pop_back();
}

namespace {

void
renderNode(const ProfileNode &node, double parent_seconds, int depth,
           std::ostringstream &out)
{
    const double secs = node.slice.seconds();
    for (int i = 0; i < depth; ++i)
        out << "  ";
    out << node.name << "  " << secs << "s";
    if (node.calls > 0)
        out << "  (" << node.calls << " calls)";
    if (parent_seconds > 0.0)
        out << "  [" << 100.0 * secs / parent_seconds << "%]";
    out << "\n";
    for (const auto &c : node.children)
        renderNode(*c, secs, depth + 1, out);
}

} // namespace

std::string
Profiler::report() const
{
    std::ostringstream out;
    double total = 0.0;
    for (const auto &c : root_.children)
        total += c->slice.seconds();
    out << "profile (total " << total << "s)\n";
    for (const auto &c : root_.children)
        renderNode(*c, total, 1, out);
    return out.str();
}

} // namespace profiling
} // namespace gnnbench
