#include "gnnbench/profiling/profiler.h"

#include <sstream>

#include "gnnbench/core/parallel.h"
#include "gnnbench/profiling/trace.h"

namespace gnnbench {
namespace profiling {

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::DataLoading:
        return "data_loading";
      case Phase::Sampling:
        return "sampling";
      case Phase::DataMovement:
        return "data_movement";
      case Phase::Training:
        return "training";
      case Phase::Other:
        return "other";
    }
    return "?";
}

power::ActivitySlice
sliceBetween(const device::Session::Snapshot &a,
             const device::Session::Snapshot &b)
{
    power::ActivitySlice s;
    s.cpuBusySeconds =
        (b.wall - a.wall) - (b.excludedWall - a.excludedWall) +
        (b.modeled.cpuOverheadSeconds - a.modeled.cpuOverheadSeconds);
    s.gpuBusySeconds = b.modeled.gpuSeconds - a.modeled.gpuSeconds;
    s.gpuUtilSeconds =
        b.modeled.gpuUtilSeconds - a.modeled.gpuUtilSeconds;
    s.xferSeconds = b.modeled.xferSeconds - a.modeled.xferSeconds;
    return s;
}

namespace {

/**
 * Mirror the modeled GPU/PCIe activity a scope charged onto the
 * synthetic device lanes.  The events are anchored at the scope's
 * trace start with modeled durations — see the trace schema notes in
 * docs/modeling.md.
 */
void
emitSyntheticDeviceEvents(TraceRecorder &trace, const char *scope_name,
                          double trace_start,
                          const power::ActivitySlice &slice)
{
    if (slice.gpuBusySeconds > 0.0)
        trace.recordSynthetic(TraceRecorder::kGpuLane, scope_name,
                              "gpu", trace_start,
                              slice.gpuBusySeconds);
    if (slice.xferSeconds > 0.0)
        trace.recordSynthetic(TraceRecorder::kPcieLane, scope_name,
                              "pcie", trace_start, slice.xferSeconds);
}

} // namespace

PhaseTracker::PhaseTracker(device::Session &session,
                           TraceRecorder *trace)
    : session_(session),
      trace_(trace != nullptr ? trace : &TraceRecorder::global())
{
}

PhaseTracker::Scope::Scope(PhaseTracker &tracker, Phase phase)
    : tracker_(tracker), phase_(phase),
      onWorker_(core::parallel::inWorkerThread())
{
    // Worker threads must not touch the single-threaded Session; they
    // measure their own CPU time instead (cpuTimer_ is reset by its
    // constructor either way).
    if (!onWorker_)
        start_ = tracker_.session_.snapshot();
    if (tracker_.trace_->enabled()) {
        traced_ = true;
        traceStart_ = tracker_.trace_->now();
    }
}

PhaseTracker::Scope::~Scope()
{
    const PerfDelta perf = perfScope_.stop();
    power::ActivitySlice slice;
    if (onWorker_) {
        slice.cpuBusySeconds = cpuTimer_.elapsed();
        tracker_.addWorker(phase_, slice);
    } else {
        slice = sliceBetween(start_, tracker_.session_.snapshot());
        tracker_.add(phase_, slice);
    }
    tracker_.addPerf(phase_, perf);
    addPerfDelta(std::string("perf.phase.") + phaseName(phase_), perf);
    if (traced_) {
        TraceRecorder &trace = *tracker_.trace_;
        std::vector<std::pair<std::string, double>> args;
        appendPerfArgs(perf, &args);
        trace.record(phaseName(phase_), "phase", traceStart_,
                     trace.now(), std::move(args));
        if (!onWorker_)
            emitSyntheticDeviceEvents(trace, phaseName(phase_),
                                      traceStart_, slice);
    }
}

void
PhaseTracker::add(Phase p, const power::ActivitySlice &slice)
{
    std::lock_guard lock(mutex_);
    phases_[static_cast<int>(p)] += slice;
}

void
PhaseTracker::addWorker(Phase p, const power::ActivitySlice &slice)
{
    std::lock_guard lock(mutex_);
    workerPhases_[static_cast<int>(p)] += slice;
}

power::ActivitySlice
PhaseTracker::phase(Phase p) const
{
    std::lock_guard lock(mutex_);
    return phases_[static_cast<int>(p)];
}

power::ActivitySlice
PhaseTracker::workerPhase(Phase p) const
{
    std::lock_guard lock(mutex_);
    return workerPhases_[static_cast<int>(p)];
}

PerfDelta
PhaseTracker::phasePerf(Phase p) const
{
    std::lock_guard lock(mutex_);
    return phasePerf_[static_cast<int>(p)];
}

void
PhaseTracker::addPerf(Phase p, const PerfDelta &d)
{
    if (!d.valid)
        return;
    std::lock_guard lock(mutex_);
    phasePerf_[static_cast<int>(p)] += d;
}

power::ActivitySlice
PhaseTracker::total() const
{
    std::lock_guard lock(mutex_);
    power::ActivitySlice t;
    for (const auto &s : phases_)
        t += s;
    return t;
}

ProfileNode &
ProfileNode::child(const std::string &child_name)
{
    for (auto &c : children)
        if (c->name == child_name)
            return *c;
    children.push_back(std::make_unique<ProfileNode>());
    children.back()->name = child_name;
    return *children.back();
}

Profiler::Profiler(device::Session &session, TraceRecorder *trace)
    : session_(session),
      trace_(trace != nullptr ? trace : &TraceRecorder::global())
{
    root_.name = "total";
}

std::vector<ProfileNode *> &
Profiler::threadStack()
{
    // Caller holds mutex_.
    auto &slot = stacks_[std::this_thread::get_id()];
    if (!slot) {
        slot = std::make_unique<std::vector<ProfileNode *>>();
        slot->push_back(&root_);
    }
    return *slot;
}

Profiler::Scope::Scope(Profiler &profiler, const std::string &name)
    : profiler_(profiler),
      onWorker_(core::parallel::inWorkerThread()), name_(name)
{
    {
        std::lock_guard lock(profiler_.mutex_);
        auto &stack = profiler_.threadStack();
        ProfileNode &node = stack.back()->child(name);
        stack.push_back(&node);
    }
    if (!onWorker_)
        start_ = profiler_.session_.snapshot();
    if (profiler_.trace_->enabled()) {
        traced_ = true;
        traceStart_ = profiler_.trace_->now();
    }
}

Profiler::Scope::~Scope()
{
    const PerfDelta perf = perfScope_.stop();
    power::ActivitySlice slice;
    if (onWorker_)
        slice.cpuBusySeconds = cpuTimer_.elapsed();
    else
        slice = sliceBetween(start_, profiler_.session_.snapshot());
    {
        std::lock_guard lock(profiler_.mutex_);
        auto &stack = profiler_.threadStack();
        ProfileNode *node = stack.back();
        node->slice += slice;
        ++node->calls;
        stack.pop_back();
    }
    if (traced_) {
        TraceRecorder &trace = *profiler_.trace_;
        std::vector<std::pair<std::string, double>> args;
        appendPerfArgs(perf, &args);
        trace.record(name_, "scope", traceStart_, trace.now(),
                     std::move(args));
        if (!onWorker_)
            emitSyntheticDeviceEvents(trace, name_.c_str(),
                                      traceStart_, slice);
    }
}

namespace {

void
renderNode(const ProfileNode &node, double parent_seconds, int depth,
           std::ostringstream &out)
{
    const double secs = node.slice.seconds();
    for (int i = 0; i < depth; ++i)
        out << "  ";
    out << node.name << "  " << secs << "s";
    if (node.calls > 0)
        out << "  (" << node.calls << " calls)";
    if (parent_seconds > 0.0)
        out << "  [" << 100.0 * secs / parent_seconds << "%]";
    out << "\n";
    for (const auto &c : node.children)
        renderNode(*c, secs, depth + 1, out);
}

} // namespace

std::string
Profiler::report() const
{
    std::lock_guard lock(mutex_);
    std::ostringstream out;
    double total = 0.0;
    for (const auto &c : root_.children)
        total += c->slice.seconds();
    out << "profile (total " << total << "s)\n";
    for (const auto &c : root_.children)
        renderNode(*c, total, 1, out);
    return out.str();
}

} // namespace profiling
} // namespace gnnbench
