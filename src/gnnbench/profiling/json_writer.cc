#include "gnnbench/profiling/json_writer.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace gnnbench {
namespace profiling {

void
JsonWriter::comma()
{
    if (!hasElement_.empty()) {
        if (hasElement_.back())
            out_ << ',';
        hasElement_.back() = true;
    }
}

void
JsonWriter::key(const std::string &k)
{
    comma();
    writeString(k);
    out_ << ':';
}

void
JsonWriter::writeString(const std::string &s)
{
    out_ << '"' << escape(s) << '"';
}

void
JsonWriter::writeDouble(double v)
{
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; clamp to null-ish zero.
        out_ << 0;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ << buf;
}

void
JsonWriter::beginObject()
{
    comma();
    out_ << '{';
    hasElement_.push_back(false);
}

void
JsonWriter::endObject()
{
    out_ << '}';
    hasElement_.pop_back();
}

void
JsonWriter::beginArray()
{
    comma();
    out_ << '[';
    hasElement_.push_back(false);
}

void
JsonWriter::endArray()
{
    out_ << ']';
    hasElement_.pop_back();
}

void
JsonWriter::beginObject(const std::string &k)
{
    key(k);
    out_ << '{';
    hasElement_.push_back(false);
}

void
JsonWriter::beginArray(const std::string &k)
{
    key(k);
    out_ << '[';
    hasElement_.push_back(false);
}

void
JsonWriter::value(const std::string &k, const std::string &v)
{
    key(k);
    writeString(v);
}

void
JsonWriter::value(const std::string &k, const char *v)
{
    key(k);
    writeString(v);
}

void
JsonWriter::value(const std::string &k, double v)
{
    key(k);
    writeDouble(v);
}

void
JsonWriter::value(const std::string &k, int64_t v)
{
    key(k);
    out_ << v;
}

void
JsonWriter::value(const std::string &k, uint64_t v)
{
    key(k);
    out_ << v;
}

void
JsonWriter::value(const std::string &k, int v)
{
    key(k);
    out_ << v;
}

void
JsonWriter::value(const std::string &k, bool v)
{
    key(k);
    out_ << (v ? "true" : "false");
}

void
JsonWriter::value(const std::string &v)
{
    comma();
    writeString(v);
}

void
JsonWriter::value(double v)
{
    comma();
    writeDouble(v);
}

void
JsonWriter::value(int64_t v)
{
    comma();
    out_ << v;
}

void
JsonWriter::value(uint64_t v)
{
    comma();
    out_ << v;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

namespace json {
namespace {

/** Recursive-descent validator over a string (no value extraction). */
struct Parser
{
    const std::string &s;
    size_t pos = 0;
    int depth = 0;

    bool
    fail()
    {
        pos = std::string::npos;
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *lit)
    {
        for (const char *p = lit; *p; ++p, ++pos)
            if (pos >= s.size() || s[pos] != *p)
                return fail();
        return true;
    }

    bool
    string()
    {
        if (pos >= s.size() || s[pos] != '"')
            return fail();
        ++pos;
        while (pos < s.size() && s[pos] != '"') {
            if (static_cast<unsigned char>(s[pos]) < 0x20)
                return fail();
            if (s[pos] == '\\') {
                ++pos;
                if (pos >= s.size())
                    return fail();
                const char e = s[pos];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= s.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s[pos])))
                            return fail();
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail();
                }
            }
            ++pos;
        }
        if (pos >= s.size())
            return fail();
        ++pos; // closing quote
        return true;
    }

    bool
    number()
    {
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        if (pos >= s.size() ||
            !std::isdigit(static_cast<unsigned char>(s[pos])))
            return fail();
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            ++pos;
        if (pos < s.size() && s[pos] == '.') {
            ++pos;
            if (pos >= s.size() ||
                !std::isdigit(static_cast<unsigned char>(s[pos])))
                return fail();
            while (pos < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[pos])))
                ++pos;
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                ++pos;
            if (pos >= s.size() ||
                !std::isdigit(static_cast<unsigned char>(s[pos])))
                return fail();
            while (pos < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[pos])))
                ++pos;
        }
        return true;
    }

    bool
    value()
    {
        if (++depth > 512)
            return fail();
        skipWs();
        if (pos >= s.size())
            return fail();
        bool ok = false;
        switch (s[pos]) {
          case '{': {
            ++pos;
            skipWs();
            if (pos < s.size() && s[pos] == '}') {
                ++pos;
                ok = true;
                break;
            }
            for (;;) {
                skipWs();
                if (!string())
                    return fail();
                skipWs();
                if (pos >= s.size() || s[pos] != ':')
                    return fail();
                ++pos;
                if (!value())
                    return fail();
                skipWs();
                if (pos < s.size() && s[pos] == ',') {
                    ++pos;
                    continue;
                }
                break;
            }
            if (pos >= s.size() || s[pos] != '}')
                return fail();
            ++pos;
            ok = true;
            break;
          }
          case '[': {
            ++pos;
            skipWs();
            if (pos < s.size() && s[pos] == ']') {
                ++pos;
                ok = true;
                break;
            }
            for (;;) {
                if (!value())
                    return fail();
                skipWs();
                if (pos < s.size() && s[pos] == ',') {
                    ++pos;
                    continue;
                }
                break;
            }
            if (pos >= s.size() || s[pos] != ']')
                return fail();
            ++pos;
            ok = true;
            break;
          }
          case '"':
            ok = string();
            break;
          case 't':
            ok = literal("true");
            break;
          case 'f':
            ok = literal("false");
            break;
          case 'n':
            ok = literal("null");
            break;
          default:
            ok = number();
        }
        --depth;
        return ok;
    }
};

} // namespace

bool
valid(const std::string &text)
{
    Parser p{text};
    if (!p.value())
        return false;
    p.skipWs();
    return p.pos == text.size();
}

} // namespace json

} // namespace profiling
} // namespace gnnbench
