#include "gnnbench/profiling/roofline.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "gnnbench/core/timer.h"
#include "gnnbench/profiling/json_writer.h"
#include "gnnbench/profiling/metrics_registry.h"
#include "gnnbench/profiling/perf_counters.h"

namespace gnnbench {
namespace profiling {

// Byte formulas mirror the kernel layer's modeled-traffic accounting
// (kernels.*.bytes counters) exactly; see each kernel's noteCall.

OpCost
spmmCost(uint64_t rows, uint64_t nnz, int64_t f, bool weighted,
         bool mean)
{
    OpCost c;
    const double nf = static_cast<double>(nnz) * static_cast<double>(f);
    const double rf =
        static_cast<double>(rows) * static_cast<double>(f);
    c.flops = weighted ? 2.0 * nf : nf;
    if (mean)
        c.flops += rf;
    c.bytes = nf * 4.0 + rf * 4.0;
    return c;
}

OpCost
spmmMaxCost(uint64_t rows, uint64_t nnz, int64_t f)
{
    OpCost c;
    c.flops = static_cast<double>(nnz) * static_cast<double>(f);
    c.bytes = static_cast<double>(nnz) * f * 4.0 +
              static_cast<double>(rows) * f * 4.0;
    return c;
}

OpCost
spmmScatterCost(uint64_t nnz, int64_t f, bool weighted)
{
    OpCost c;
    const double nf = static_cast<double>(nnz) * static_cast<double>(f);
    c.flops = weighted ? 2.0 * nf : nf;
    c.bytes = nf * 8.0;
    return c;
}

OpCost
sddmmAddCost(uint64_t nnz, int64_t f)
{
    OpCost c;
    c.flops = static_cast<double>(nnz) * static_cast<double>(f);
    c.bytes = static_cast<double>(nnz) * f * 12.0;
    return c;
}

OpCost
sddmmDotCost(uint64_t nnz, int64_t f)
{
    OpCost c;
    c.flops =
        2.0 * static_cast<double>(nnz) * static_cast<double>(f);
    c.bytes = static_cast<double>(nnz) * (f * 8.0 + 4.0);
    return c;
}

OpCost
gatherCost(uint64_t n, int64_t f)
{
    OpCost c;
    c.bytes = static_cast<double>(n) * f * 8.0;
    return c;
}

OpCost
scatterCost(uint64_t n, uint64_t /*out_rows*/, int64_t f)
{
    OpCost c;
    c.flops = static_cast<double>(n) * static_cast<double>(f);
    c.bytes = static_cast<double>(n) * f * 8.0;
    return c;
}

OpCost
segmentSumCost(uint64_t rows, uint64_t nnz, int64_t f)
{
    OpCost c;
    c.flops = static_cast<double>(nnz) * static_cast<double>(f);
    c.bytes = static_cast<double>(nnz) * f * 4.0 +
              static_cast<double>(rows) * f * 4.0;
    return c;
}

namespace {

std::mutex g_calibMutex;
RooflineCalibration g_calib; // measured lazily under g_calibMutex

/**
 * STREAM-style triad a[i] = b[i] + s*c[i] over arrays well past any
 * LLC; 24 modeled bytes per element (two reads, one write-allocate
 * pair), best-of-3 after one warm-up pass.
 */
double
measureTriadBandwidth()
{
    constexpr size_t kN = 4u << 20; // 3 x 16 MiB of floats
    std::vector<float> a(kN, 0.0f), b(kN, 1.0f), c(kN, 2.0f);
    const float s = 3.0f;
    double best = 0.0;
    for (int rep = 0; rep < 4; ++rep) {
        core::Timer t;
        float *__restrict ap = a.data();
        const float *__restrict bp = b.data();
        const float *__restrict cp = c.data();
        for (size_t i = 0; i < kN; ++i)
            ap[i] = bp[i] + s * cp[i];
        const double secs = t.elapsed();
        const double bw =
            secs > 0.0 ? 24.0 * static_cast<double>(kN) / secs : 0.0;
        if (rep > 0) // rep 0 is the warm-up
            best = std::max(best, bw);
    }
    // The warm-up write keeps a resident; fold its result into b so
    // the compiler cannot dead-store the measured loops.
    b[0] += a[kN / 2];
    return best;
}

/**
 * Peak FP32 multiply-add throughput: eight independent accumulator
 * chains of x = x * m + d, counted as 2 FLOPs each.  Whatever the
 * compiler turns this into (FMA, AVX2, scalar) IS this build's peak;
 * the probe measures the machine as configured, not a spec sheet.
 */
double
measureFmaPeak()
{
    constexpr int kLanes = 8;
    constexpr int kIters = 4 << 20;
    float x[kLanes];
    for (int l = 0; l < kLanes; ++l)
        x[l] = 1.0f + 1e-7f * static_cast<float>(l);
    const float m = 1.0000001f;
    const float d = 1e-9f;
    double best = 0.0;
    for (int rep = 0; rep < 4; ++rep) {
        core::Timer t;
        for (int i = 0; i < kIters; ++i)
            for (int l = 0; l < kLanes; ++l)
                x[l] = x[l] * m + d;
        const double secs = t.elapsed();
        const double flops =
            secs > 0.0 ? 2.0 * kLanes *
                             static_cast<double>(kIters) / secs
                       : 0.0;
        if (rep > 0)
            best = std::max(best, flops);
    }
    // Consume the accumulators so the chains cannot be elided.
    volatile float sink = 0.0f;
    for (int l = 0; l < kLanes; ++l)
        sink += x[l];
    (void)sink;
    return best;
}

} // namespace

const RooflineCalibration &
rooflineCalibration()
{
    std::lock_guard lock(g_calibMutex);
    if (!g_calib.measured) {
        core::Timer t;
        g_calib.memBandwidthBytesPerSec = measureTriadBandwidth();
        g_calib.peakFlopsPerSec = measureFmaPeak();
        g_calib.calibrationSeconds = t.elapsed();
        g_calib.measured = true;
        auto &reg = MetricsRegistry::global();
        reg.gauge("roofline.peak_flops_per_s")
            .set(g_calib.peakFlopsPerSec);
        reg.gauge("roofline.mem_bandwidth_bytes_per_s")
            .set(g_calib.memBandwidthBytesPerSec);
    }
    return g_calib;
}

void
setCalibrationForTest(const RooflineCalibration &c)
{
    std::lock_guard lock(g_calibMutex);
    g_calib = c;
}

double
attainableFlopsPerSec(const RooflineCalibration &c, double intensity)
{
    if (!c.measured || intensity <= 0.0)
        return c.peakFlopsPerSec;
    return std::min(c.peakFlopsPerSec,
                    c.memBandwidthBytesPerSec * intensity);
}

double
rooflineFraction(const OpCost &cost, double seconds,
                 const RooflineCalibration &c)
{
    if (!c.measured || seconds <= 0.0)
        return 0.0;
    if (cost.flops > 0.0) {
        const double roof =
            attainableFlopsPerSec(c, cost.intensity());
        return roof > 0.0 ? (cost.flops / seconds) / roof : 0.0;
    }
    // Pure-movement ops (gather): achieved bandwidth vs the roof.
    if (cost.bytes > 0.0 && c.memBandwidthBytesPerSec > 0.0)
        return (cost.bytes / seconds) / c.memBandwidthBytesPerSec;
    return 0.0;
}

void
writeRooflineJson(JsonWriter &w, const std::string &key,
                  const MetricsRegistry *metrics)
{
    const RooflineCalibration &c = rooflineCalibration();
    w.beginObject(key);
    w.value("measured", c.measured);
    w.value("peak_flops_per_s", c.peakFlopsPerSec);
    w.value("mem_bandwidth_bytes_per_s", c.memBandwidthBytesPerSec);
    w.value("ridge_intensity", c.ridgeIntensity());
    w.value("calibration_seconds", c.calibrationSeconds);
    w.value("perf_counters", perfStatusLabel());
    if (metrics) {
        // Per-family aggregates: pair each kernels.<family>.flops
        // counter with its .bytes sibling.
        w.beginObject("kernels");
        const auto counters = metrics->counterValues();
        for (const auto &[name, flops] : counters) {
            const std::string suffix = ".flops";
            if (name.size() <= suffix.size() ||
                name.compare(name.size() - suffix.size(),
                             suffix.size(), suffix) != 0)
                continue;
            const std::string family =
                name.substr(0, name.size() - suffix.size());
            uint64_t bytes = 0;
            for (const auto &[n2, v2] : counters)
                if (n2 == family + ".bytes")
                    bytes = v2;
            w.beginObject(family);
            w.value("flops", flops);
            w.value("bytes", bytes);
            OpCost agg;
            agg.flops = static_cast<double>(flops);
            agg.bytes = static_cast<double>(bytes);
            w.value("intensity", agg.intensity());
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();
}

} // namespace profiling
} // namespace gnnbench
