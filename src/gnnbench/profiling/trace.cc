#include "gnnbench/profiling/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "gnnbench/core/common.h"
#include "gnnbench/device/hierarchy.h"
#include "gnnbench/profiling/metrics_registry.h"
#include "gnnbench/profiling/perf_counters.h"
#include "gnnbench/profiling/roofline.h"

namespace gnnbench {
namespace profiling {

namespace {

/** Monotonic wall seconds (arbitrary origin). */
double
wallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

uint64_t
nextRecorderId()
{
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

TraceRecorder::TraceRecorder(std::function<double()> clock)
    : id_(nextRecorderId()), clock_(std::move(clock))
{
}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder &
TraceRecorder::global()
{
    static TraceRecorder recorder;
    return recorder;
}

void
TraceRecorder::enable()
{
    epoch_ = clock_ ? 0.0 : wallSeconds();
    enabled_.store(true, std::memory_order_relaxed);
    setThreadLaneName("main");
}

void
TraceRecorder::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

double
TraceRecorder::now() const
{
    return clock_ ? clock_() : wallSeconds() - epoch_;
}

TraceRecorder::Lane &
TraceRecorder::threadLane()
{
    // One cache entry per (thread, recorder).  Recorder ids are never
    // reused, so a stale entry from a destroyed recorder can never be
    // matched; clear() keeps thread-lane objects alive for the same
    // reason.
    thread_local std::vector<std::pair<uint64_t, Lane *>> cache;
    for (const auto &[id, lane] : cache)
        if (id == id_)
            return *lane;
    std::lock_guard lock(mutex_);
    lanes_.push_back(std::make_unique<Lane>());
    Lane &lane = *lanes_.back();
    lane.tid = nextTid_++;
    lane.name = "thread " + std::to_string(lane.tid);
    cache.emplace_back(id_, &lane);
    return lane;
}

TraceRecorder::Lane &
TraceRecorder::syntheticLane(const std::string &name)
{
    std::lock_guard lock(mutex_);
    for (auto &lane : lanes_)
        if (lane->synthetic && lane->name == name)
            return *lane;
    lanes_.push_back(std::make_unique<Lane>());
    Lane &lane = *lanes_.back();
    lane.tid = nextSyntheticTid_++;
    lane.name = name;
    lane.synthetic = true;
    return lane;
}

void
TraceRecorder::setThreadLaneName(const std::string &name)
{
    if (!enabled())
        return;
    Lane &lane = threadLane();
    std::lock_guard lock(lane.mutex);
    lane.name = name;
}

void
TraceRecorder::record(std::string name, const char *category,
                      double start_seconds, double end_seconds)
{
    record(std::move(name), category, start_seconds, end_seconds, {});
}

void
TraceRecorder::record(std::string name, const char *category,
                      double start_seconds, double end_seconds,
                      std::vector<std::pair<std::string, double>> args)
{
    if (!enabled())
        return;
    Lane &lane = threadLane();
    std::lock_guard lock(lane.mutex);
    lane.events.push_back(
        TraceEvent{std::move(name), category, start_seconds,
                   std::max(0.0, end_seconds - start_seconds),
                   std::move(args)});
}

void
TraceRecorder::recordSynthetic(const std::string &lane_name,
                               std::string name, const char *category,
                               double start_seconds,
                               double duration_seconds)
{
    if (!enabled())
        return;
    Lane &lane = syntheticLane(lane_name);
    std::lock_guard lock(lane.mutex);
    lane.events.push_back(TraceEvent{std::move(name), category,
                                     start_seconds,
                                     std::max(0.0, duration_seconds)});
}

std::vector<TraceRecorder::LaneView>
TraceRecorder::lanesSnapshot() const
{
    std::lock_guard lock(mutex_);
    std::vector<LaneView> out;
    out.reserve(lanes_.size());
    for (const auto &lane : lanes_) {
        LaneView view;
        {
            std::lock_guard elock(lane->mutex);
            view.name = lane->name;
            view.tid = lane->tid;
            view.synthetic = lane->synthetic;
            view.events = lane->events;
        }
        std::stable_sort(view.events.begin(), view.events.end(),
                         [](const TraceEvent &a, const TraceEvent &b) {
                             return a.startSeconds < b.startSeconds;
                         });
        out.push_back(std::move(view));
    }
    return out;
}

size_t
TraceRecorder::eventCount() const
{
    std::lock_guard lock(mutex_);
    size_t n = 0;
    for (const auto &lane : lanes_) {
        std::lock_guard elock(lane->mutex);
        n += lane->events.size();
    }
    return n;
}

void
TraceRecorder::clear()
{
    std::lock_guard lock(mutex_);
    // Thread lanes stay alive (thread-local caches hold pointers);
    // synthetic lanes are looked up by name every time, so they can
    // be dropped entirely.
    lanes_.erase(std::remove_if(lanes_.begin(), lanes_.end(),
                                [](const std::unique_ptr<Lane> &l) {
                                    return l->synthetic;
                                }),
                 lanes_.end());
    for (auto &lane : lanes_) {
        std::lock_guard elock(lane->mutex);
        lane->events.clear();
    }
}

void
TraceRecorder::writeTraceEvents(JsonWriter &w,
                                const std::string &key) const
{
    const auto lanes = lanesSnapshot();
    w.beginArray(key);
    int sort_index = 0;
    for (const auto &lane : lanes) {
        w.beginObject();
        w.value("ph", "M");
        w.value("pid", 1);
        w.value("tid", lane.tid);
        w.value("name", "thread_name");
        w.beginObject("args");
        w.value("name", lane.name);
        w.endObject();
        w.endObject();
        w.beginObject();
        w.value("ph", "M");
        w.value("pid", 1);
        w.value("tid", lane.tid);
        w.value("name", "thread_sort_index");
        w.beginObject("args");
        w.value("sort_index", lane.synthetic ? 1000 + sort_index
                                             : sort_index);
        w.endObject();
        w.endObject();
        ++sort_index;
    }
    for (const auto &lane : lanes) {
        for (const auto &e : lane.events) {
            w.beginObject();
            w.value("ph", "X");
            w.value("pid", 1);
            w.value("tid", lane.tid);
            w.value("name", e.name);
            w.value("cat", e.category);
            w.value("ts", e.startSeconds * 1e6);
            w.value("dur", e.durationSeconds * 1e6);
            if (!e.args.empty()) {
                w.beginObject("args");
                for (const auto &[k, v] : e.args)
                    w.value(k, v);
                w.endObject();
            }
            w.endObject();
        }
    }
    w.endArray();
}

void
TraceRecorder::writeChromeTrace(std::ostream &out) const
{
    JsonWriter w(out);
    w.beginObject();
    w.value("displayTimeUnit", "ms");
    writeTraceEvents(w, "traceEvents");
    w.endObject();
}

namespace {

void
writeSlice(JsonWriter &w, const std::string &key,
           const power::ActivitySlice &s)
{
    w.beginObject(key);
    w.value("seconds", s.seconds());
    w.value("cpu_busy_seconds", s.cpuBusySeconds);
    w.value("gpu_busy_seconds", s.gpuBusySeconds);
    w.value("gpu_util_seconds", s.gpuUtilSeconds);
    w.value("xfer_seconds", s.xferSeconds);
    w.endObject();
}

void
writeProfileNode(JsonWriter &w, const ProfileNode &node)
{
    w.beginObject();
    w.value("name", node.name);
    w.value("calls", node.calls);
    w.value("seconds", node.slice.seconds());
    if (!node.children.empty()) {
        w.beginArray("children");
        for (const auto &c : node.children)
            writeProfileNode(w, *c);
        w.endArray();
    }
    w.endObject();
}

} // namespace

void
writeRunReport(const std::string &path, const RunReportContext &ctx)
{
    flushRngDraws();
    std::ofstream out(path);
    GNNBENCH_CHECK(out.good(), "cannot open ", path, " for writing");
    JsonWriter w(out);
    w.beginObject();
    w.value("displayTimeUnit", "ms");
    if (ctx.trace) {
        ctx.trace->writeTraceEvents(w, "traceEvents");
    } else {
        w.beginArray("traceEvents");
        w.endArray();
    }
    if (ctx.resultsEmitter)
        ctx.resultsEmitter(w);
    w.beginObject("gnnbench");
    w.value("bench", ctx.benchName);
    w.beginObject("options");
    for (const auto &[k, v] : ctx.options)
        w.value(k, v);
    w.endObject();
    w.beginArray("runs");
    for (const RunRecord &r : ctx.runs) {
        w.beginObject();
        w.value("dataset", r.dataset);
        w.value("config", r.config);
        double total = 0.0;
        w.beginObject("phases");
        for (int p = 0; p < kNumPhases; ++p) {
            writeSlice(w, phaseName(static_cast<Phase>(p)),
                       r.phases[p]);
            total += r.phases[p].seconds();
        }
        w.endObject();
        w.value("total_seconds", total);
        double worker_total = 0.0;
        for (int p = 0; p < kNumPhases; ++p)
            worker_total += r.workerPhases[p].seconds();
        if (worker_total > 0.0) {
            w.beginObject("worker_phases");
            for (int p = 0; p < kNumPhases; ++p)
                if (r.workerPhases[p].seconds() > 0.0)
                    writeSlice(w, phaseName(static_cast<Phase>(p)),
                               r.workerPhases[p]);
            w.endObject();
        }
        w.beginObject("energy");
        w.value("seconds", r.energy.seconds);
        w.value("cpu_joules", r.energy.cpuJoules);
        w.value("gpu_joules", r.energy.gpuJoules);
        w.value("joules", r.energy.joules());
        w.value("avg_watts", r.energy.avgWatts());
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.beginObject("tables");
    for (const auto &[name, table] : ctx.tables) {
        w.beginObject(name);
        w.beginArray("headers");
        for (const auto &h : table->headers())
            w.value(h);
        w.endArray();
        w.beginArray("rows");
        for (const auto &row : table->rows()) {
            w.beginArray();
            for (const auto &cell : row)
                w.value(cell);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    if (ctx.profile) {
        w.beginArray("profile");
        for (const auto &c : ctx.profile->children)
            writeProfileNode(w, *c);
        w.endArray();
    }
    if (ctx.metrics)
        ctx.metrics->writeJson(w, "metrics");
    writeRooflineJson(w, "roofline", ctx.metrics);
    device::writeDeviceJson(w, "device");
    // "available" or the explicit "unavailable (...)" fallback — the
    // report always says which one the PMU numbers (don't) come from.
    w.value("perf", perfStatusLabel());
    w.endObject();
    w.endObject();
    out << '\n';
    out.close();
    GNNBENCH_CHECK(out.good(), "failed writing run report to ", path);
}

} // namespace profiling
} // namespace gnnbench
