/**
 * @file
 * Runtime profiling infrastructure.
 *
 * Two levels, matching the paper's methodology:
 *  - PhaseTracker gives the coarse 4-phase accounting (data loading,
 *    sampling, data movement, model training) used by the runtime-
 *    breakdown figures;
 *  - Profiler is a pyinstrument-style hierarchical scoped profiler
 *    used for the per-function drill-downs.
 *
 * Both measure *virtual* time through device::Session snapshots so
 * modeled GPU kernels and transfers are accounted consistently.
 */

#ifndef GNNBENCH_PROFILING_PROFILER_H
#define GNNBENCH_PROFILING_PROFILER_H

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "gnnbench/device/session.h"
#include "gnnbench/power/power.h"

namespace gnnbench {
namespace profiling {

/** The four runtime phases of sampling-based GNN training (Fig. 2). */
enum class Phase : int
{
    DataLoading = 0,
    Sampling = 1,
    DataMovement = 2,
    Training = 3,
    Other = 4,
};

constexpr int kNumPhases = 5;

/** Printable phase name. */
const char *phaseName(Phase p);

/** Compute the activity delta between two session snapshots. */
power::ActivitySlice sliceBetween(const device::Session::Snapshot &a,
                                  const device::Session::Snapshot &b);

/** Per-phase activity accounting for one training run. */
class PhaseTracker
{
  public:
    explicit PhaseTracker(device::Session &session);

    /** RAII scope attributing its duration to one phase. */
    class Scope
    {
      public:
        Scope(PhaseTracker &tracker, Phase phase);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        PhaseTracker &tracker_;
        Phase phase_;
        device::Session::Snapshot start_;
    };

    /** Open a phase scope. */
    Scope track(Phase p) { return Scope(*this, p); }

    /** Directly add a slice to a phase (used by async pipelines). */
    void add(Phase p, const power::ActivitySlice &slice);

    /** Accumulated activity of one phase. */
    const power::ActivitySlice &phase(Phase p) const;

    /** Sum over all phases. */
    power::ActivitySlice total() const;

    device::Session &session() { return session_; }

  private:
    device::Session &session_;
    std::array<power::ActivitySlice, kNumPhases> phases_;
};

/** One node of the hierarchical profile tree. */
struct ProfileNode
{
    std::string name;
    int64_t calls = 0;
    power::ActivitySlice slice;
    std::vector<std::unique_ptr<ProfileNode>> children;

    /** Find or create the child with the given name. */
    ProfileNode &child(const std::string &child_name);
};

/** pyinstrument-style scoped call-tree profiler. */
class Profiler
{
  public:
    explicit Profiler(device::Session &session);

    /** RAII scope; nest scopes to build the tree. */
    class Scope
    {
      public:
        Scope(Profiler &profiler, const std::string &name);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Profiler &profiler_;
        device::Session::Snapshot start_;
    };

    Scope scope(const std::string &name) { return Scope(*this, name); }

    /** The root of the recorded tree. */
    const ProfileNode &root() const { return root_; }

    /** Render the tree as an indented text report. */
    std::string report() const;

  private:
    device::Session &session_;
    ProfileNode root_;
    std::vector<ProfileNode *> stack_;
};

} // namespace profiling
} // namespace gnnbench

#endif // GNNBENCH_PROFILING_PROFILER_H
