/**
 * @file
 * Runtime profiling infrastructure.
 *
 * Two levels, matching the paper's methodology:
 *  - PhaseTracker gives the coarse 4-phase accounting (data loading,
 *    sampling, data movement, model training) used by the runtime-
 *    breakdown figures;
 *  - Profiler is a pyinstrument-style hierarchical scoped profiler
 *    used for the per-function drill-downs.
 *
 * Both measure *virtual* time through device::Session snapshots so
 * modeled GPU kernels and transfers are accounted consistently, and
 * both are thread-safe: accumulators are mutex-protected, and scopes
 * opened on prefetch worker threads (which must not touch the
 * single-threaded Session) measure per-thread CPU time instead and
 * land in a separate worker-side tally that never double-counts
 * against the main virtual timeline.
 *
 * When the process TraceRecorder is enabled (bench --json), every
 * scope additionally emits a complete event on the calling thread's
 * trace lane, and PhaseTracker scopes reconstruct synthetic events
 * for the modeled GPU kernels and PCIe transfers they charged.
 */

#ifndef GNNBENCH_PROFILING_PROFILER_H
#define GNNBENCH_PROFILING_PROFILER_H

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gnnbench/core/timer.h"
#include "gnnbench/device/session.h"
#include "gnnbench/power/power.h"
#include "gnnbench/profiling/perf_counters.h"

namespace gnnbench {
namespace profiling {

class TraceRecorder;

/** The four runtime phases of sampling-based GNN training (Fig. 2). */
enum class Phase : int
{
    DataLoading = 0,
    Sampling = 1,
    DataMovement = 2,
    Training = 3,
    Other = 4,
};

constexpr int kNumPhases = 5;

/** Printable phase name. */
const char *phaseName(Phase p);

/** Compute the activity delta between two session snapshots. */
power::ActivitySlice sliceBetween(const device::Session::Snapshot &a,
                                  const device::Session::Snapshot &b);

/** Per-phase activity accounting for one training run. */
class PhaseTracker
{
  public:
    /** @param trace recorder for scope events; defaults to the
     *  process-wide TraceRecorder::global(). */
    explicit PhaseTracker(device::Session &session,
                          TraceRecorder *trace = nullptr);

    /**
     * RAII scope attributing its duration to one phase.  On the main
     * thread the duration is the virtual-time delta between Session
     * snapshots; on a prefetch worker thread (where the Session must
     * not be touched) it is the thread's CPU time, accumulated into
     * the detached worker tally via addWorker().
     */
    class Scope
    {
      public:
        Scope(PhaseTracker &tracker, Phase phase);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        PhaseTracker &tracker_;
        Phase phase_;
        bool onWorker_;
        device::Session::Snapshot start_;
        core::ThreadCpuTimer cpuTimer_;
        PerfScope perfScope_;
        double traceStart_ = 0.0;
        bool traced_ = false;
    };

    /** Open a phase scope. */
    Scope track(Phase p) { return Scope(*this, p); }

    /** Directly add a slice to a phase (used by async pipelines).
     *  Thread-safe. */
    void add(Phase p, const power::ActivitySlice &slice);

    /**
     * Add a *detached* worker-side slice: real work done on a
     * prefetch worker thread concurrently with the main timeline.
     * Kept separate from the main phases — the main timeline already
     * contains the consumer's wait — so total() stays equal to the
     * run's virtual duration.  Thread-safe.
     */
    void addWorker(Phase p, const power::ActivitySlice &slice);

    /** Accumulated activity of one phase. */
    power::ActivitySlice phase(Phase p) const;

    /** Accumulated detached worker-side activity of one phase. */
    power::ActivitySlice workerPhase(Phase p) const;

    /** Accumulated PMU deltas of one phase (main and worker scopes
     *  combined; invalid when the PMU is unavailable). */
    PerfDelta phasePerf(Phase p) const;

    /** Directly accumulate a PMU delta into a phase.  Thread-safe. */
    void addPerf(Phase p, const PerfDelta &d);

    /** Sum over all (main-timeline) phases. */
    power::ActivitySlice total() const;

    device::Session &session() { return session_; }

    TraceRecorder *trace() const { return trace_; }

  private:
    device::Session &session_;
    TraceRecorder *trace_;
    mutable std::mutex mutex_;
    std::array<power::ActivitySlice, kNumPhases> phases_;
    std::array<power::ActivitySlice, kNumPhases> workerPhases_;
    std::array<PerfDelta, kNumPhases> phasePerf_;
};

/** One node of the hierarchical profile tree. */
struct ProfileNode
{
    std::string name;
    int64_t calls = 0;
    power::ActivitySlice slice;
    std::vector<std::unique_ptr<ProfileNode>> children;

    /** Find or create the child with the given name. */
    ProfileNode &child(const std::string &child_name);
};

/**
 * pyinstrument-style scoped call-tree profiler.
 *
 * Threads share one tree: each thread keeps its own scope stack
 * (rooted at the shared root), and node updates are serialized by a
 * mutex, so concurrent scopes on prefetch workers are safe.  Worker-
 * thread scopes measure per-thread CPU seconds (they must not touch
 * the Session); main-thread scopes measure virtual time.  root() and
 * report() reflect a consistent tree once recording threads have
 * quiesced (e.g. after loaders joined).
 */
class Profiler
{
  public:
    explicit Profiler(device::Session &session,
                      TraceRecorder *trace = nullptr);

    /** RAII scope; nest scopes to build the tree. */
    class Scope
    {
      public:
        Scope(Profiler &profiler, const std::string &name);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Profiler &profiler_;
        bool onWorker_;
        device::Session::Snapshot start_;
        core::ThreadCpuTimer cpuTimer_;
        PerfScope perfScope_;
        std::string name_;
        double traceStart_ = 0.0;
        bool traced_ = false;
    };

    Scope scope(const std::string &name) { return Scope(*this, name); }

    /** The root of the recorded tree. */
    const ProfileNode &root() const { return root_; }

    /** Render the tree as an indented text report. */
    std::string report() const;

  private:
    friend class Scope;

    /** The calling thread's scope stack (created on first use). */
    std::vector<ProfileNode *> &threadStack();

    device::Session &session_;
    TraceRecorder *trace_;
    ProfileNode root_;
    mutable std::mutex mutex_;
    std::unordered_map<std::thread::id,
                       std::unique_ptr<std::vector<ProfileNode *>>>
        stacks_;
};

} // namespace profiling
} // namespace gnnbench

#endif // GNNBENCH_PROFILING_PROFILER_H
