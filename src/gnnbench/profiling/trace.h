/**
 * @file
 * Structured tracing: a low-overhead, per-thread event recorder that
 * exports Chrome trace-event / Perfetto-compatible JSON, plus the
 * unified run-report emitter every bench binary uses for --json.
 *
 * Lanes.  Each recording thread owns one lane (its event buffer);
 * the main thread's lane is named "main" and prefetch workers name
 * theirs "<tag>/w<k>".  Two synthetic lanes — "gpu (modeled)" and
 * "pcie (modeled)" — carry the modeled GPU kernels and PCIe
 * transfers reconstructed from device::Session snapshot deltas by
 * the PhaseTracker scopes, so the modeled device shows up in
 * Perfetto next to the real threads.
 *
 * Time.  Real-thread lanes are stamped with wall time since
 * enable() — wall time is what exhibits worker parallelism in a
 * trace viewer.  Synthetic device events are placed at the wall-time
 * start of the scope that charged them, with *modeled* durations;
 * docs/modeling.md ("Observability") spells out these semantics.
 * The clock is injectable, so tests replay a fixed virtual clock and
 * assert byte-identical output.
 *
 * Overhead.  A disabled recorder costs one relaxed atomic load per
 * would-be event.  When enabled, a thread finds its lane through a
 * thread-local cache (no lock after the first event) and appends
 * under the lane's own mutex, which only the exporter ever contends.
 */

#ifndef GNNBENCH_PROFILING_TRACE_H
#define GNNBENCH_PROFILING_TRACE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "gnnbench/power/energy_meter.h"
#include "gnnbench/profiling/json_writer.h"
#include "gnnbench/profiling/profiler.h"
#include "gnnbench/profiling/report.h"

namespace gnnbench {
namespace profiling {

class MetricsRegistry;

/** One complete ("X") event on a lane, times in seconds. */
struct TraceEvent
{
    std::string name;
    const char *category = "";
    double startSeconds = 0.0;
    double durationSeconds = 0.0;
    /** Optional numeric counter args rendered as the event's "args"
     *  object (PMU deltas, roofline numbers); empty for plain
     *  slices. */
    std::vector<std::pair<std::string, double>> args;
};

/**
 * The event recorder.  One global() instance serves the benchmarks
 * (enabled by --json); tests construct their own with a manual
 * clock.  writeChromeTrace()/lanesSnapshot() may run concurrently
 * with recording, but a stable export requires recording threads to
 * have quiesced (the benches export after training completes).
 */
class TraceRecorder
{
  public:
    /** @param clock seconds-since-epoch source; defaults to a
     *  monotonic wall clock starting at enable(). */
    explicit TraceRecorder(std::function<double()> clock = {});
    ~TraceRecorder();

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** The process-wide recorder used by the instrumentation. */
    static TraceRecorder &global();

    /** Start recording; zeroes the default clock and names the
     *  calling thread's lane "main". */
    void enable();
    void disable();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Current trace time in seconds. */
    double now() const;

    /** Name the calling thread's lane (e.g. "dgl-neighbor/w0"). */
    void setThreadLaneName(const std::string &name);

    /** Record a complete event on the calling thread's lane;
     *  no-op while disabled. */
    void record(std::string name, const char *category,
                double start_seconds, double end_seconds);

    /** As above, with numeric counter args attached to the slice. */
    void record(std::string name, const char *category,
                double start_seconds, double end_seconds,
                std::vector<std::pair<std::string, double>> args);

    /** Record onto a named synthetic lane (modeled GPU / PCIe). */
    void recordSynthetic(const std::string &lane, std::string name,
                         const char *category, double start_seconds,
                         double duration_seconds);

    /** Lane names of the synthetic device lanes. */
    static constexpr const char *kGpuLane = "gpu (modeled)";
    static constexpr const char *kPcieLane = "pcie (modeled)";

    /** A lane's name and events, sorted by start time (for tests). */
    struct LaneView
    {
        std::string name;
        int tid = 0;
        bool synthetic = false;
        std::vector<TraceEvent> events;
    };

    /** Copy of all lanes in creation order (thread lanes first). */
    std::vector<LaneView> lanesSnapshot() const;

    /** Total events across all lanes. */
    size_t eventCount() const;

    /** Drop all recorded events and lanes (keeps enabled state). */
    void clear();

    /**
     * Emit the "traceEvents" array (metadata + sorted complete
     * events) as the value of @p key in the enclosing JSON object.
     * Timestamps are microseconds, the Chrome trace unit.
     */
    void writeTraceEvents(JsonWriter &w, const std::string &key) const;

    /** Write a standalone Chrome-trace JSON document. */
    void writeChromeTrace(std::ostream &out) const;

  private:
    struct Lane
    {
        std::string name;
        int tid = 0;
        bool synthetic = false;
        mutable std::mutex mutex;
        std::vector<TraceEvent> events;
    };

    Lane &threadLane();
    Lane &syntheticLane(const std::string &name);

    const uint64_t id_; ///< process-unique, for the thread-local cache
    std::function<double()> clock_;
    std::atomic<bool> enabled_{false};
    double epoch_ = 0.0; ///< default-clock origin set by enable()

    mutable std::mutex mutex_; ///< guards the lane list
    std::vector<std::unique_ptr<Lane>> lanes_;
    int nextTid_ = 1;
    int nextSyntheticTid_ = 1000;
};

/** RAII complete-event scope on the calling thread's lane. */
class TraceScope
{
  public:
    TraceScope(TraceRecorder &recorder, std::string name,
               const char *category)
        : recorder_(recorder.enabled() ? &recorder : nullptr)
    {
        if (recorder_) {
            name_ = std::move(name);
            category_ = category;
            start_ = recorder_->now();
        }
    }

    ~TraceScope()
    {
        if (recorder_)
            recorder_->record(std::move(name_), category_, start_,
                              recorder_->now());
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    TraceRecorder *recorder_;
    std::string name_;
    const char *category_ = "";
    double start_ = 0.0;
};

/** One model run (dataset x config) in the unified run report. */
struct RunRecord
{
    std::string dataset;
    std::string config;
    std::array<power::ActivitySlice, kNumPhases> phases{};
    /** Detached worker-side sampling busy time (not part of the
     *  virtual-time total; see PhaseTracker::addWorker). */
    std::array<power::ActivitySlice, kNumPhases> workerPhases{};
    power::EnergyReport energy;
};

/** Everything the run-report emitter folds into one JSON document. */
struct RunReportContext
{
    std::string benchName;
    /** Flat key -> value strings of the bench configuration. */
    std::vector<std::pair<std::string, std::string>> options;
    /** Per-run phase/energy records (model benches). */
    std::vector<RunRecord> runs;
    /** Printed tables, exported as structured rows. */
    std::vector<std::pair<std::string, const Table *>> tables;
    /** Optional hierarchical profile tree. */
    const ProfileNode *profile = nullptr;
    const TraceRecorder *trace = nullptr;
    const MetricsRegistry *metrics = nullptr;
    /**
     * Optional perf-gate rows.  When set, invoked with the writer
     * positioned inside the root object; the emitter must write one
     * complete `"results"` array (beginArray("results") ...
     * endArray()).  scripts/check_bench_regression.py reads this
     * top-level key, so a bench with gate rows emits ONE document
     * that is simultaneously a Chrome trace, a unified run report,
     * and a regression-gate record.
     */
    std::function<void(JsonWriter &)> resultsEmitter;
};

/**
 * Write the unified run report to @p path: a Chrome-trace-compatible
 * JSON document ("traceEvents" at top level, loadable in Perfetto /
 * chrome://tracing) whose "gnnbench" key carries the config, phase
 * slices, tables, profile tree, and metrics snapshot.  Flushes the
 * main thread's RNG-draw tally first.  Fatal on I/O failure.
 */
void writeRunReport(const std::string &path,
                    const RunReportContext &ctx);

} // namespace profiling
} // namespace gnnbench

#endif // GNNBENCH_PROFILING_TRACE_H
