/**
 * @file
 * Unified sparse aggregation kernel layer.
 *
 * Both framework reimplementations (dglx and pygx) spend the bulk of
 * their training time in sparse gather/reduce — the paper's
 * component-level breakdown puts graph-convolution aggregation on the
 * hottest path of DGL and PyG alike.  This subsystem is the single
 * home for those kernels: CSR SpMM (sum/mean/max), its scatter
 * (transpose) form, SDDMM primitives, and the edge-list
 * gather/scatter family, each available in several variants that are
 * *bit-identical* to one another:
 *
 *  - KernelVariant::Reference — the naive scalar loops the frameworks
 *    originally carried, kept alive as the golden model the
 *    conformance suite (tests/test_kernels.cc) compares against.
 *  - KernelVariant::Tiled — the optimized path: feature-dimension
 *    tiling (FeatGraph-style), cache-blocked row panels balanced by
 *    nnz (Gunrock-style load-balanced row partitioning), and
 *    heavy-row parallelism across feature tiles, all running over
 *    core/parallel.
 *  - KernelVariant::Simd — Tiled's decomposition with explicitly
 *    vectorized inner loops (AVX2 selected by runtime CPU-feature
 *    dispatch, register-blocked `restrict` fallback elsewhere) that
 *    keep each output feature tile in registers across a row's whole
 *    edge list.  Same arithmetic order as Reference, so still
 *    bit-identical (see kernels/simd.h).
 *
 * Determinism contract: work decomposes into chunks that depend only
 * on the problem (graph + feature width), never on the pool size, a
 * panel boundary is always a row boundary, and every output element
 * accumulates its contributions in ascending edge order — exactly the
 * Reference order.  Results are therefore bit-identical across
 * variants and for any GNNBENCH_NUM_THREADS (max is additionally
 * order-insensitive up to NaN handling; the suite checks it
 * ULP-bounded).
 *
 * Every entry point feeds the profiling metrics registry
 * ("kernels.*" counters: calls, rows, nnz, bytes moved, and the
 * variant chosen), so run reports can attribute aggregation work and
 * distinguish implementations.
 */

#ifndef GNNBENCH_KERNELS_KERNELS_H
#define GNNBENCH_KERNELS_KERNELS_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "gnnbench/core/autograd.h"
#include "gnnbench/core/tensor.h"
#include "gnnbench/graph/csr.h"
#include "gnnbench/profiling/perf_counters.h"
#include "gnnbench/profiling/roofline.h"

namespace gnnbench {
namespace kernels {

/** Aggregation operators shared by every sparse reduce kernel. */
enum class ReduceOp { Sum, Mean, Max };

/** Selectable kernel implementations. */
enum class KernelVariant
{
    Auto,       ///< resolve per call (size-based policy)
    Reference,  ///< naive scalar golden model (serial)
    Tiled,      ///< tiled + row-panel load-balanced parallel path
    Simd,       ///< Tiled decomposition + vectorized inner loops
};

const char *reduceOpName(ReduceOp op);
const char *variantName(KernelVariant v);

/** "auto/reference/tiled/simd" — for error messages and help text. */
const char *validVariantList();

/** Parse "sum"/"mean"/"max"; false on unknown. */
bool parseReduceOp(std::string_view name, ReduceOp *out);

/** Parse a name from validVariantList(); false on unknown. */
bool parseVariant(std::string_view name, KernelVariant *out);

/**
 * The process default used whenever a call site passes Auto: the
 * GNNBENCH_KERNEL_VARIANT environment variable at first use
 * ("reference"/"tiled"/"auto"), overridable in-process with
 * setDefaultVariant() (benches and tests).
 */
KernelVariant defaultVariant();
void setDefaultVariant(KernelVariant v);

/**
 * Resolve Auto into a concrete variant for a problem of @p nnz stored
 * entries and feature width @p f: tiny problems stay on Reference
 * (the panel build would dominate), everything else runs Simd.
 * Explicit variants pass through untouched.
 */
KernelVariant resolveVariant(KernelVariant v, EdgeId nnz, int64_t f);

/**
 * Human-readable label of what @p v actually executes on this machine
 * once Auto policy and CPU-feature dispatch are applied, for bench
 * reports: e.g. Auto -> "simd[avx2]" (large-problem policy choice on
 * an AVX2 CPU), "simd[portable]", "tiled", "reference".  The Auto
 * policy is reported for the large-problem regime (nnz above
 * Tiling::kAutoReferenceNnz), which is what benches measure.
 */
std::string resolvedVariantLabel(KernelVariant v = KernelVariant::Auto);

/** Tiling/partitioning parameters of the Tiled variant. */
struct Tiling
{
    /** Feature-tile width in floats (256 B = 4 cache lines). */
    static constexpr int64_t kFeatTile = 64;
    /** Target stored entries per row panel (cache-blocked). */
    static constexpr EdgeId kPanelNnz = 8192;
    /** Rows at or above this degree parallelize across feature
     *  tiles instead of joining a row panel. */
    static constexpr EdgeId kHeavyDegree = 8192;
    /** Below this nnz, Auto resolves to Reference. */
    static constexpr EdgeId kAutoReferenceNnz = 2048;
};

/**
 * Optional per-call observability sink.  When given, the Tiled
 * variant records the wall seconds of every chunk it executed (in
 * chunk order); the variant-comparison bench replays those onto N
 * virtual threads to compute the critical path on this one-core
 * harness (the repo's virtual-time methodology).
 *
 * Every entry point additionally fills the dispatch-level fields:
 * wall seconds, the analytic FLOP/byte cost (matching the
 * "kernels.*" counters), and the PMU delta over the dispatch when
 * the perf layer is live — together these place the call on the
 * roofline (see profiling/roofline.h).
 */
struct KernelStats
{
    std::vector<double> chunkSeconds;

    /** Wall seconds of the whole dispatch. */
    double seconds = 0.0;
    /** Analytic FLOPs and modeled bytes charged to the dispatch. */
    profiling::OpCost cost;
    /** Hardware-counter delta (valid only when the PMU is live). */
    profiling::PerfDelta perf;

    /** FLOPs per modeled byte. */
    double
    operationalIntensity() const
    {
        return cost.intensity();
    }

    /** Achieved fraction of the machine's roofline ceiling at this
     *  op's intensity (triggers calibration on first use). */
    double rooflineFraction() const;
};

/// @name CSR SpMM family
/// @{

/**
 * CSR SpMM over an in-adjacency: for each row r,
 * out[r, :] = reduce over stored entries e of (w[e] * x[col(e), :]).
 * @param adj adjacency (rows = outputs, cols index into x)
 * @param x   dense features, one row per adjacency column
 * @param w   optional per-edge weights in adjacency traversal order
 *            (must be null for ReduceOp::Max)
 * Mean divides the sum by the row degree; empty rows are zero (all
 * reduce ops).
 */
core::Tensor spmm(const graph::CsrGraph &adj, const core::Tensor &x,
                  ReduceOp op, const float *w = nullptr,
                  KernelVariant v = KernelVariant::Auto,
                  KernelStats *stats = nullptr);

/**
 * Scatter (transpose) form: for each row r and stored entry e,
 * out[col(e), :] += w[e] * x[r, :] — multiplication by the transpose
 * without materializing it, the backward kernel of spmm(Sum).
 */
core::Tensor spmmScatter(const graph::CsrGraph &adj,
                         const core::Tensor &x, const float *w = nullptr,
                         KernelVariant v = KernelVariant::Auto,
                         KernelStats *stats = nullptr);

/**
 * spmm(Max) that additionally records, per output element, the
 * source node that won the max (-1 for empty rows) — the forward
 * pass of the differentiable max aggregation.  Ties keep the first
 * maximal edge in ascending order (the Reference order).
 */
core::Tensor spmmMaxArg(const graph::CsrGraph &adj,
                        const core::Tensor &x,
                        std::vector<NodeId> *arg_src,
                        KernelVariant v = KernelVariant::Auto,
                        KernelStats *stats = nullptr);

/// @}
/// @name SDDMM family
/// @{

/** For each stored entry e: out[e, :] = a_row[r(e), :] + b_col[col(e), :]. */
core::Tensor sddmmAdd(const graph::CsrGraph &adj,
                      const core::Tensor &a_row,
                      const core::Tensor &b_col,
                      KernelVariant v = KernelVariant::Auto,
                      KernelStats *stats = nullptr);

/** For each stored entry e: out[e, 0] = <a_row[r(e), :], b_col[col(e), :]>. */
core::Tensor sddmmDot(const graph::CsrGraph &adj,
                      const core::Tensor &a_row,
                      const core::Tensor &b_col,
                      KernelVariant v = KernelVariant::Auto,
                      KernelStats *stats = nullptr);

/// @}
/// @name Edge-list gather/scatter family (the PyG-paradigm kernels)
/// @{

/** out[i, :] = x[idx[i], :]. */
core::Tensor gatherRows(const core::Tensor &x,
                        const std::vector<NodeId> &idx,
                        KernelVariant v = KernelVariant::Auto,
                        KernelStats *stats = nullptr);

/** out[idx[i], :] += src[i, :] over @p out_rows rows (ascending-i
 *  accumulation order per element, any variant). */
core::Tensor scatterSum(const core::Tensor &src,
                        const std::vector<NodeId> &idx, NodeId out_rows,
                        KernelVariant v = KernelVariant::Auto,
                        KernelStats *stats = nullptr);

/** Scatter sum divided by per-row contribution counts. */
core::Tensor scatterMean(const core::Tensor &src,
                         const std::vector<NodeId> &idx,
                         NodeId out_rows,
                         KernelVariant v = KernelVariant::Auto,
                         KernelStats *stats = nullptr);

/** Scatter max; rows with no contribution become 0. */
core::Tensor scatterMax(const core::Tensor &src,
                        const std::vector<NodeId> &idx, NodeId out_rows,
                        KernelVariant v = KernelVariant::Auto,
                        KernelStats *stats = nullptr);

/// @}
/// @name Segment ops over an adjacency's stored entries
/// @{

/** Per-row segment sum of edge-major rows:
 *  out[r, :] = sum over stored entries e of row r of x[e, :]. */
core::Tensor segmentSumRows(const graph::CsrGraph &adj,
                            const core::Tensor &x,
                            KernelVariant v = KernelVariant::Auto,
                            KernelStats *stats = nullptr);

/** Scatter edge-major rows onto columns: out[col(e), :] += x[e, :]. */
core::Tensor scatterSumCols(const graph::CsrGraph &adj,
                            const core::Tensor &x,
                            KernelVariant v = KernelVariant::Auto,
                            KernelStats *stats = nullptr);

/// @}

/**
 * Differentiable SpMM with the full reducer set.  Backward:
 *  - Sum:  dx = A^T g (spmmScatter, same weights);
 *  - Mean: dx = A^T (g / rowDegree);
 *  - Max:  dx[argmax(r, j), j] += g[r, j] (argmax recorded forward).
 * The adjacency and weights are held by shared_ptr so sampled-block
 * temporaries survive until the tape runs (use a non-owning aliasing
 * pointer for cached structures).
 */
core::ag::Var spmmVar(std::shared_ptr<const graph::CsrGraph> adj,
                      std::shared_ptr<const std::vector<float>> w,
                      ReduceOp op, const core::ag::Var &x,
                      KernelVariant v = KernelVariant::Auto);

} // namespace kernels
} // namespace gnnbench

#endif // GNNBENCH_KERNELS_KERNELS_H
