/**
 * @file
 * SIMD microkernels backing KernelVariant::Simd.  Internal to the
 * kernel layer (and its conformance tests); include kernels.h for the
 * public API.
 *
 * Two interchangeable implementations sit behind every entry point:
 *
 *  - an AVX2 family (x86 only, compiled with per-function target
 *    attributes so the rest of the build needs no -mavx2), and
 *  - a portable family: register-blocked `restrict` loops with
 *    constant trip counts the compiler unrolls and auto-vectorizes
 *    for whatever ISA the build targets.
 *
 * Dispatch is resolved at runtime from CPUID (see avx2Active()); the
 * GNNBENCH_SIMD environment variable and setForcePortable() override
 * it, and -DGNNBENCH_DISABLE_AVX2=ON removes the AVX2 family from the
 * build entirely (the CI matrix builds one such leg).
 *
 * Bit-exactness: every kernel here accumulates each output element in
 * ascending stored-edge order using separate multiply and add (never
 * a fused multiply-add), which is the Reference arithmetic — the
 * kernels translation units are compiled with -ffp-contract=off so
 * the scalar golden model cannot silently contract either.  The AVX2
 * and portable families are therefore bit-identical to each other and
 * to Reference for sum/mean; max matches the scalar
 * `std::max(acc, x)` selection exactly (the operand order of
 * _mm256_max_ps is chosen to reproduce its NaN/zero semantics).
 */

#ifndef GNNBENCH_KERNELS_SIMD_H
#define GNNBENCH_KERNELS_SIMD_H

#include <cstdint>

#include "gnnbench/core/tensor.h"
#include "gnnbench/graph/csr.h"

namespace gnnbench {
namespace kernels {
namespace simd {

/** True when the AVX2 family exists in this build
 *  (x86 and not -DGNNBENCH_DISABLE_AVX2=ON). */
bool avx2CompiledIn();

/** True when the CPU reports AVX2 support. */
bool avx2Supported();

/**
 * True when the AVX2 microkernels will actually run: compiled in,
 * supported by the CPU, not overridden by GNNBENCH_SIMD=portable or
 * setForcePortable(true).  GNNBENCH_SIMD=avx2 asserts availability
 * (fatal when the build or CPU cannot honor it); any other value of
 * the variable is rejected with a fatal error.
 */
bool avx2Active();

/** Test hook: force the portable family regardless of CPU support.
 *  Pass false to restore CPUID dispatch. */
void setForcePortable(bool force);

/** "avx2" or "portable" — the ISA Simd resolves to right now. */
const char *isaLabel();

/// @name Row-range kernels (the Simd inner loops of spmm.cc)
/// Each processes rows [r0, r1) over columns [j0, j1) with the output
/// tile held in registers across the row's whole edge list, so the
/// per-edge memory traffic is just the gathered x row (plus the
/// weight), not a read-modify-write of the output.
/// @{

void spmmSumRows(const graph::CsrGraph &adj, const core::Tensor &x,
                 const float *w, bool mean, core::Tensor &out,
                 NodeId r0, NodeId r1, int64_t j0, int64_t j1);

void spmmMaxRows(const graph::CsrGraph &adj, const core::Tensor &x,
                 core::Tensor &out, NodeId r0, NodeId r1, int64_t j0,
                 int64_t j1);

void segmentSumRows(const graph::CsrGraph &adj, const core::Tensor &x,
                    core::Tensor &out, NodeId r0, NodeId r1,
                    int64_t j0, int64_t j1);

/// @}
/// @name Contiguous-range primitives (scatter / SDDMM inner loops)
/// @{

/** o[k] += w * x[k] for k in [0, len). */
void axpy(float *o, const float *x, float w, int64_t len);

/** o[k] += x[k] for k in [0, len). */
void add(float *o, const float *x, int64_t len);

/** o[k] = a[k] + b[k] for k in [0, len). */
void addInto(float *o, const float *a, const float *b, int64_t len);

/** o[k] = max(o[k], x[k]) for k in [0, len), scalar std::max
 *  selection semantics. */
void maxInto(float *o, const float *x, int64_t len);

/** o[k] *= s for k in [0, len). */
void scale(float *o, float s, int64_t len);

/**
 * Ascending-k dot product of a and b.  Deliberately NOT
 * lane-parallel: a vector reduction would reassociate the sum and
 * break bit-equality with Reference, so this is an unrolled serial
 * chain — sddmmDot keeps the scalar accumulation order in every
 * variant.
 */
float dotOrdered(const float *a, const float *b, int64_t len);

/// @}

} // namespace simd
} // namespace kernels
} // namespace gnnbench

#endif // GNNBENCH_KERNELS_SIMD_H
