/**
 * @file
 * Edge-list gather/scatter kernels — the PyG execution paradigm:
 * materialize per-edge rows with gatherRows, reduce them back onto
 * nodes with scatterSum/Mean/Max.
 *
 * Scatter targets are arbitrary (idx is unsorted and may repeat), so
 * the Tiled variant parallelizes over feature tiles: each chunk owns a
 * disjoint column range and walks the index list in ascending order,
 * which reproduces the Reference accumulation order per element.
 */

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include "gnnbench/core/common.h"
#include "gnnbench/core/parallel.h"
#include "gnnbench/kernels/detail.h"
#include "gnnbench/kernels/kernels.h"
#include "gnnbench/kernels/simd.h"

namespace gnnbench {
namespace kernels {

using core::Tensor;

namespace {

/** Rows per chunk for the row-parallel gather (about 32 KiB each). */
int64_t
gatherGrain(int64_t f)
{
    return std::max<int64_t>(1, 8192 / std::max<int64_t>(1, f));
}

} // namespace

Tensor
gatherRows(const Tensor &x, const std::vector<NodeId> &idx,
           KernelVariant v, KernelStats *stats)
{
    const int64_t n = static_cast<int64_t>(idx.size());
    const int64_t f = x.cols();
    const KernelVariant chosen = resolveVariant(v, n, f);
    detail::OpObserver obs(
        "kernels.gather", static_cast<uint64_t>(n),
        static_cast<uint64_t>(n),
        profiling::gatherCost(static_cast<uint64_t>(n), f), chosen,
        stats);

    Tensor out = Tensor::empty(n, f);
    if (f == 0 || n == 0)
        return out;
    auto copyRows = [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            std::memcpy(out.row(i), x.row(idx[static_cast<size_t>(i)]),
                        static_cast<size_t>(f) * sizeof(float));
    };
    if (chosen == KernelVariant::Reference)
        copyRows(0, n);
    else
        core::parallel::parallelFor(0, n, gatherGrain(f), copyRows);
    return out;
}

Tensor
scatterSum(const Tensor &src, const std::vector<NodeId> &idx,
           NodeId out_rows, KernelVariant v, KernelStats *stats)
{
    GNNBENCH_CHECK(src.rows() == static_cast<int64_t>(idx.size()),
                   "scatterSum: one index per source row");
    const int64_t n = src.rows();
    const int64_t f = src.cols();
    const KernelVariant chosen = resolveVariant(v, n, f);
    detail::OpObserver obs(
        "kernels.scatter", static_cast<uint64_t>(out_rows),
        static_cast<uint64_t>(n),
        profiling::scatterCost(static_cast<uint64_t>(n),
                               static_cast<uint64_t>(out_rows), f),
        chosen, stats);

    Tensor out(out_rows, f);
    if (f == 0 || n == 0)
        return out;
    auto scatterTile = [&](int64_t j0, int64_t j1) {
        for (int64_t i = 0; i < n; ++i) {
            float *__restrict orow =
                out.row(idx[static_cast<size_t>(i)]);
            const float *__restrict srow = src.row(i);
            for (int64_t j = j0; j < j1; ++j)
                orow[j] += srow[j];
        }
    };
    auto scatterTileSimd = [&](int64_t j0, int64_t j1) {
        const int64_t len = j1 - j0;
        for (int64_t i = 0; i < n; ++i)
            simd::add(out.row(idx[static_cast<size_t>(i)]) + j0,
                      src.row(i) + j0, len);
    };
    if (chosen == KernelVariant::Reference) {
        scatterTile(0, f);
        return out;
    }
    const bool useSimd = chosen == KernelVariant::Simd;
    core::parallel::parallelFor(
        0, f, Tiling::kFeatTile, [&](int64_t j0, int64_t j1) {
            if (useSimd)
                scatterTileSimd(j0, j1);
            else
                scatterTile(j0, j1);
        });
    return out;
}

Tensor
scatterMean(const Tensor &src, const std::vector<NodeId> &idx,
            NodeId out_rows, KernelVariant v, KernelStats *stats)
{
    Tensor out = scatterSum(src, idx, out_rows, v, stats);
    const int64_t f = src.cols();
    if (f == 0)
        return out;
    std::vector<int64_t> count(static_cast<size_t>(out_rows), 0);
    for (const NodeId r : idx)
        ++count[static_cast<size_t>(r)];
    const KernelVariant chosen =
        resolveVariant(v, static_cast<EdgeId>(idx.size()), f);
    const bool useSimd = chosen == KernelVariant::Simd;
    auto divideRows = [&](int64_t b, int64_t e) {
        for (int64_t r = b; r < e; ++r) {
            const int64_t c = count[static_cast<size_t>(r)];
            if (c <= 1)
                continue;
            const float inv = 1.0f / static_cast<float>(c);
            float *__restrict orow = out.row(r);
            if (useSimd) {
                simd::scale(orow, inv, f);
                continue;
            }
            for (int64_t j = 0; j < f; ++j)
                orow[j] *= inv;
        }
    };
    if (chosen == KernelVariant::Reference)
        divideRows(0, out_rows);
    else
        core::parallel::parallelFor(0, out_rows, gatherGrain(f),
                                    divideRows);
    return out;
}

Tensor
scatterMax(const Tensor &src, const std::vector<NodeId> &idx,
           NodeId out_rows, KernelVariant v, KernelStats *stats)
{
    GNNBENCH_CHECK(src.rows() == static_cast<int64_t>(idx.size()),
                   "scatterMax: one index per source row");
    const int64_t n = src.rows();
    const int64_t f = src.cols();
    const KernelVariant chosen = resolveVariant(v, n, f);
    detail::OpObserver obs(
        "kernels.scatter", static_cast<uint64_t>(out_rows),
        static_cast<uint64_t>(n),
        profiling::scatterCost(static_cast<uint64_t>(n),
                               static_cast<uint64_t>(out_rows), f),
        chosen, stats);

    Tensor out = Tensor::empty(out_rows, f);
    if (f == 0)
        return out;
    constexpr float kNegInf = -std::numeric_limits<float>::infinity();
    std::vector<char> touched(static_cast<size_t>(out_rows), 0);
    for (const NodeId r : idx)
        touched[static_cast<size_t>(r)] = 1;

    const bool useSimd = chosen == KernelVariant::Simd;
    auto maxTile = [&](int64_t j0, int64_t j1) {
        for (int64_t r = 0; r < out_rows; ++r) {
            float *__restrict orow = out.row(r);
            const float init =
                touched[static_cast<size_t>(r)] ? kNegInf : 0.0f;
            for (int64_t j = j0; j < j1; ++j)
                orow[j] = init;
        }
        const int64_t len = j1 - j0;
        for (int64_t i = 0; i < n; ++i) {
            float *__restrict orow =
                out.row(idx[static_cast<size_t>(i)]);
            const float *__restrict srow = src.row(i);
            if (useSimd) {
                simd::maxInto(orow + j0, srow + j0, len);
                continue;
            }
            for (int64_t j = j0; j < j1; ++j)
                orow[j] = std::max(orow[j], srow[j]);
        }
    };
    if (chosen == KernelVariant::Reference)
        maxTile(0, f);
    else
        core::parallel::parallelFor(
            0, f, Tiling::kFeatTile,
            [&](int64_t j0, int64_t j1) { maxTile(j0, j1); });
    return out;
}

} // namespace kernels
} // namespace gnnbench
