/**
 * @file
 * CSR SpMM family: fused gather-reduce (spmm), its transpose scatter
 * form, argmax-tracking max, and the edge-major segment ops.
 *
 * Bit-exactness across variants rests on two rules enforced here:
 *  1. every output element accumulates its contributions in ascending
 *     stored-entry order with the exact same arithmetic expression the
 *     Reference loop uses, and
 *  2. parallel decomposition (row panels, feature tiles) is a pure
 *     function of (indptr, feature width) — never of the pool size.
 */

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "gnnbench/core/common.h"
#include "gnnbench/core/parallel.h"
#include "gnnbench/core/timer.h"
#include "gnnbench/kernels/detail.h"
#include "gnnbench/kernels/kernels.h"
#include "gnnbench/kernels/simd.h"

namespace gnnbench {
namespace kernels {

using core::Tensor;
using graph::CsrGraph;

namespace {

/**
 * One unit of Tiled work: rows [rowBegin, rowEnd) over features
 * [jBegin, jEnd).  Light rows travel in nnz-balanced panels spanning
 * the full feature range; a heavy row (degree >= Tiling::kHeavyDegree)
 * becomes one task per feature tile, so its work parallelizes across
 * disjoint column ranges without ever splitting an output element's
 * accumulation chain.
 */
struct RowTask
{
    NodeId rowBegin;
    NodeId rowEnd;
    int64_t jBegin;
    int64_t jEnd;
};

std::vector<RowTask>
buildRowTasks(const CsrGraph &adj, int64_t f)
{
    std::vector<RowTask> tasks;
    NodeId panelStart = 0;
    EdgeId panelNnz = 0;
    auto flushPanel = [&](NodeId panelEnd) {
        if (panelEnd > panelStart)
            tasks.push_back({panelStart, panelEnd, 0, f});
        panelNnz = 0;
    };
    for (NodeId r = 0; r < adj.numRows; ++r) {
        const EdgeId deg = adj.degree(r);
        if (deg >= Tiling::kHeavyDegree && f > 0) {
            flushPanel(r);
            for (int64_t j = 0; j < f; j += Tiling::kFeatTile)
                tasks.push_back(
                    {r, r + 1, j, std::min(j + Tiling::kFeatTile, f)});
            panelStart = r + 1;
            continue;
        }
        panelNnz += deg;
        if (panelNnz >= Tiling::kPanelNnz) {
            flushPanel(r + 1);
            panelStart = r + 1;
        }
    }
    flushPanel(adj.numRows);
    return tasks;
}

/**
 * Accumulate rows [r0, r1) x features [j0, j1) of a sum/mean SpMM.
 * The inner expressions are shared verbatim by Reference and Tiled so
 * the compiler emits identical arithmetic for both.
 */
void
spmmSumRange(const CsrGraph &adj, const Tensor &x, const float *w,
             bool mean, Tensor &out, NodeId r0, NodeId r1, int64_t j0,
             int64_t j1)
{
    const NodeId *idx = adj.indices.data();
    for (NodeId r = r0; r < r1; ++r) {
        float *__restrict orow = out.row(r);
        const EdgeId e0 = adj.indptr[r];
        const EdgeId e1 = adj.indptr[r + 1];
        for (int64_t jt = j0; jt < j1; jt += Tiling::kFeatTile) {
            const int64_t jtEnd = std::min(jt + Tiling::kFeatTile, j1);
            for (EdgeId e = e0; e < e1; ++e) {
                const float *__restrict xrow = x.row(idx[e]);
                if (w) {
                    const float we = w[e];
                    for (int64_t j = jt; j < jtEnd; ++j)
                        orow[j] += we * xrow[j];
                } else {
                    for (int64_t j = jt; j < jtEnd; ++j)
                        orow[j] += xrow[j];
                }
            }
        }
        if (mean && e1 > e0) {
            const float inv =
                1.0f / static_cast<float>(e1 - e0);
            for (int64_t j = j0; j < j1; ++j)
                orow[j] *= inv;
        }
    }
}

/** Max-reduce over the same range; empty rows come out zero. */
void
spmmMaxRange(const CsrGraph &adj, const Tensor &x, Tensor &out,
             NodeId r0, NodeId r1, int64_t j0, int64_t j1)
{
    const NodeId *idx = adj.indices.data();
    constexpr float kNegInf = -std::numeric_limits<float>::infinity();
    for (NodeId r = r0; r < r1; ++r) {
        float *__restrict orow = out.row(r);
        const EdgeId e0 = adj.indptr[r];
        const EdgeId e1 = adj.indptr[r + 1];
        if (e0 == e1) {
            for (int64_t j = j0; j < j1; ++j)
                orow[j] = 0.0f;
            continue;
        }
        for (int64_t j = j0; j < j1; ++j)
            orow[j] = kNegInf;
        for (int64_t jt = j0; jt < j1; jt += Tiling::kFeatTile) {
            const int64_t jtEnd = std::min(jt + Tiling::kFeatTile, j1);
            for (EdgeId e = e0; e < e1; ++e) {
                const float *__restrict xrow = x.row(idx[e]);
                for (int64_t j = jt; j < jtEnd; ++j)
                    orow[j] = std::max(orow[j], xrow[j]);
            }
        }
    }
}

void
runTasks(const std::vector<RowTask> &tasks, KernelStats *stats,
         const std::function<void(const RowTask &)> &body)
{
    if (stats)
        stats->chunkSeconds.assign(tasks.size(), 0.0);
    core::parallel::parallelForChunks(
        0, static_cast<int64_t>(tasks.size()), 1,
        [&](int64_t chunk, int64_t b, int64_t /*e*/) {
            if (stats) {
                core::ThreadCpuTimer t;
                body(tasks[static_cast<size_t>(b)]);
                stats->chunkSeconds[static_cast<size_t>(chunk)] =
                    t.elapsed();
            } else {
                body(tasks[static_cast<size_t>(b)]);
            }
        });
}

} // namespace

Tensor
spmm(const CsrGraph &adj, const Tensor &x, ReduceOp op, const float *w,
     KernelVariant v, KernelStats *stats)
{
    GNNBENCH_CHECK(x.rows() == adj.numCols,
                   "spmm: feature rows must match adjacency columns");
    GNNBENCH_CHECK(op != ReduceOp::Max || w == nullptr,
                   "spmm: max reduce does not take edge weights");
    const int64_t f = x.cols();
    const KernelVariant chosen = resolveVariant(v, adj.numEdges(), f);
    const profiling::OpCost cost =
        op == ReduceOp::Max
            ? profiling::spmmMaxCost(
                  static_cast<uint64_t>(adj.numRows),
                  static_cast<uint64_t>(adj.numEdges()), f)
            : profiling::spmmCost(
                  static_cast<uint64_t>(adj.numRows),
                  static_cast<uint64_t>(adj.numEdges()), f,
                  w != nullptr, op == ReduceOp::Mean);
    detail::OpObserver obs("kernels.spmm",
                           static_cast<uint64_t>(adj.numRows),
                           static_cast<uint64_t>(adj.numEdges()), cost,
                           chosen, stats);

    Tensor out(adj.numRows, f);
    if (stats)
        stats->chunkSeconds.clear();
    if (f == 0 || adj.numRows == 0)
        return out;

    const bool mean = op == ReduceOp::Mean;
    if (chosen == KernelVariant::Reference) {
        if (stats) {
            core::ThreadCpuTimer t;
            if (op == ReduceOp::Max)
                spmmMaxRange(adj, x, out, 0, adj.numRows, 0, f);
            else
                spmmSumRange(adj, x, w, mean, out, 0, adj.numRows, 0,
                             f);
            stats->chunkSeconds.push_back(t.elapsed());
        } else {
            if (op == ReduceOp::Max)
                spmmMaxRange(adj, x, out, 0, adj.numRows, 0, f);
            else
                spmmSumRange(adj, x, w, mean, out, 0, adj.numRows, 0,
                             f);
        }
        return out;
    }

    const bool useSimd = chosen == KernelVariant::Simd;
    const std::vector<RowTask> tasks = buildRowTasks(adj, f);
    runTasks(tasks, stats, [&](const RowTask &t) {
        if (op == ReduceOp::Max) {
            if (useSimd)
                simd::spmmMaxRows(adj, x, out, t.rowBegin, t.rowEnd,
                                  t.jBegin, t.jEnd);
            else
                spmmMaxRange(adj, x, out, t.rowBegin, t.rowEnd,
                             t.jBegin, t.jEnd);
        } else {
            if (useSimd)
                simd::spmmSumRows(adj, x, w, mean, out, t.rowBegin,
                                  t.rowEnd, t.jBegin, t.jEnd);
            else
                spmmSumRange(adj, x, w, mean, out, t.rowBegin,
                             t.rowEnd, t.jBegin, t.jEnd);
        }
    });
    return out;
}

Tensor
spmmScatter(const CsrGraph &adj, const Tensor &x, const float *w,
            KernelVariant v, KernelStats *stats)
{
    GNNBENCH_CHECK(x.rows() == adj.numRows,
                   "spmmScatter: feature rows must match adjacency rows");
    const int64_t f = x.cols();
    const KernelVariant chosen = resolveVariant(v, adj.numEdges(), f);
    detail::OpObserver obs(
        "kernels.spmmScatter", static_cast<uint64_t>(adj.numCols),
        static_cast<uint64_t>(adj.numEdges()),
        profiling::spmmScatterCost(
            static_cast<uint64_t>(adj.numEdges()), f, w != nullptr),
        chosen, stats);

    Tensor out(adj.numCols, f);
    if (f == 0)
        return out;
    const NodeId *idx = adj.indices.data();

    // Every output row can receive contributions from any adjacency
    // row, so the only decomposition that keeps ascending-entry order
    // per element AND writes disjoint memory is column blocking: each
    // chunk owns a feature tile and walks all stored entries in order.
    auto scatterTile = [&](int64_t j0, int64_t j1) {
        for (NodeId r = 0; r < adj.numRows; ++r) {
            const float *__restrict xrow = x.row(r);
            const EdgeId e0 = adj.indptr[r];
            const EdgeId e1 = adj.indptr[r + 1];
            for (EdgeId e = e0; e < e1; ++e) {
                float *__restrict orow = out.row(idx[e]);
                if (w) {
                    const float we = w[e];
                    for (int64_t j = j0; j < j1; ++j)
                        orow[j] += we * xrow[j];
                } else {
                    for (int64_t j = j0; j < j1; ++j)
                        orow[j] += xrow[j];
                }
            }
        }
    };
    auto scatterTileSimd = [&](int64_t j0, int64_t j1) {
        const int64_t len = j1 - j0;
        for (NodeId r = 0; r < adj.numRows; ++r) {
            const float *xrow = x.row(r) + j0;
            const EdgeId e0 = adj.indptr[r];
            const EdgeId e1 = adj.indptr[r + 1];
            for (EdgeId e = e0; e < e1; ++e) {
                float *orow = out.row(idx[e]) + j0;
                if (w)
                    simd::axpy(orow, xrow, w[e], len);
                else
                    simd::add(orow, xrow, len);
            }
        }
    };
    if (chosen == KernelVariant::Reference) {
        scatterTile(0, f);
        return out;
    }
    const bool useSimd = chosen == KernelVariant::Simd;
    core::parallel::parallelFor(
        0, f, Tiling::kFeatTile, [&](int64_t j0, int64_t j1) {
            if (useSimd)
                scatterTileSimd(j0, j1);
            else
                scatterTile(j0, j1);
        });
    return out;
}

Tensor
spmmMaxArg(const CsrGraph &adj, const Tensor &x,
           std::vector<NodeId> *arg_src, KernelVariant v,
           KernelStats *stats)
{
    GNNBENCH_CHECK(x.rows() == adj.numCols,
                   "spmmMaxArg: feature rows must match adjacency columns");
    const int64_t f = x.cols();
    const KernelVariant chosen = resolveVariant(v, adj.numEdges(), f);
    profiling::OpCost cost = profiling::spmmMaxCost(
        static_cast<uint64_t>(adj.numRows),
        static_cast<uint64_t>(adj.numEdges()), f);
    // The argmax writes one NodeId per output element on top of the
    // plain max traffic.
    cost.bytes += static_cast<double>(adj.numRows) * f * 4.0;
    detail::OpObserver obs("kernels.spmm",
                           static_cast<uint64_t>(adj.numRows),
                           static_cast<uint64_t>(adj.numEdges()), cost,
                           chosen, stats);

    Tensor out(adj.numRows, f);
    if (arg_src)
        arg_src->assign(static_cast<size_t>(adj.numRows) * f, -1);
    if (f == 0 || adj.numRows == 0)
        return out;
    const NodeId *idx = adj.indices.data();

    auto maxRows = [&](NodeId r0, NodeId r1, int64_t j0, int64_t j1) {
        constexpr float kNegInf =
            -std::numeric_limits<float>::infinity();
        for (NodeId r = r0; r < r1; ++r) {
            float *__restrict orow = out.row(r);
            NodeId *arow =
                arg_src ? arg_src->data() + static_cast<size_t>(r) * f
                        : nullptr;
            const EdgeId e0 = adj.indptr[r];
            const EdgeId e1 = adj.indptr[r + 1];
            if (e0 == e1) {
                for (int64_t j = j0; j < j1; ++j)
                    orow[j] = 0.0f;
                continue;
            }
            for (int64_t j = j0; j < j1; ++j)
                orow[j] = kNegInf;
            for (EdgeId e = e0; e < e1; ++e) {
                const NodeId s = idx[e];
                const float *__restrict xrow = x.row(s);
                // Strict > keeps the first maximal edge on ties —
                // the Reference order the autograd backward relies
                // on for reproducibility.
                for (int64_t j = j0; j < j1; ++j) {
                    if (xrow[j] > orow[j]) {
                        orow[j] = xrow[j];
                        if (arow)
                            arow[j] = s;
                    }
                }
            }
        }
    };

    if (chosen == KernelVariant::Reference) {
        maxRows(0, adj.numRows, 0, f);
        return out;
    }
    const std::vector<RowTask> tasks = buildRowTasks(adj, f);
    runTasks(tasks, nullptr, [&](const RowTask &t) {
        maxRows(t.rowBegin, t.rowEnd, t.jBegin, t.jEnd);
    });
    return out;
}

Tensor
segmentSumRows(const CsrGraph &adj, const Tensor &x, KernelVariant v,
               KernelStats *stats)
{
    GNNBENCH_CHECK(x.rows() == adj.numEdges(),
                   "segmentSumRows: one feature row per stored entry");
    const int64_t f = x.cols();
    const KernelVariant chosen = resolveVariant(v, adj.numEdges(), f);
    detail::OpObserver obs(
        "kernels.segment", static_cast<uint64_t>(adj.numRows),
        static_cast<uint64_t>(adj.numEdges()),
        profiling::segmentSumCost(
            static_cast<uint64_t>(adj.numRows),
            static_cast<uint64_t>(adj.numEdges()), f),
        chosen, stats);

    Tensor out(adj.numRows, f);
    if (f == 0 || adj.numRows == 0)
        return out;
    auto sumRows = [&](NodeId r0, NodeId r1, int64_t j0, int64_t j1) {
        for (NodeId r = r0; r < r1; ++r) {
            float *__restrict orow = out.row(r);
            const EdgeId e0 = adj.indptr[r];
            const EdgeId e1 = adj.indptr[r + 1];
            for (EdgeId e = e0; e < e1; ++e) {
                const float *__restrict xrow = x.row(e);
                for (int64_t j = j0; j < j1; ++j)
                    orow[j] += xrow[j];
            }
        }
    };
    if (chosen == KernelVariant::Reference) {
        sumRows(0, adj.numRows, 0, f);
        return out;
    }
    const bool useSimd = chosen == KernelVariant::Simd;
    const std::vector<RowTask> tasks = buildRowTasks(adj, f);
    runTasks(tasks, nullptr, [&](const RowTask &t) {
        if (useSimd)
            simd::segmentSumRows(adj, x, out, t.rowBegin, t.rowEnd,
                                 t.jBegin, t.jEnd);
        else
            sumRows(t.rowBegin, t.rowEnd, t.jBegin, t.jEnd);
    });
    return out;
}

Tensor
scatterSumCols(const CsrGraph &adj, const Tensor &x, KernelVariant v,
               KernelStats *stats)
{
    GNNBENCH_CHECK(x.rows() == adj.numEdges(),
                   "scatterSumCols: one feature row per stored entry");
    const int64_t f = x.cols();
    const KernelVariant chosen = resolveVariant(v, adj.numEdges(), f);
    detail::OpObserver obs(
        "kernels.scatter", static_cast<uint64_t>(adj.numCols),
        static_cast<uint64_t>(adj.numEdges()),
        profiling::scatterCost(static_cast<uint64_t>(adj.numEdges()),
                               static_cast<uint64_t>(adj.numCols), f),
        chosen, stats);

    Tensor out(adj.numCols, f);
    if (f == 0)
        return out;
    const NodeId *idx = adj.indices.data();
    auto scatterTile = [&](int64_t j0, int64_t j1) {
        const EdgeId nnz = adj.numEdges();
        for (EdgeId e = 0; e < nnz; ++e) {
            float *__restrict orow = out.row(idx[e]);
            const float *__restrict xrow = x.row(e);
            for (int64_t j = j0; j < j1; ++j)
                orow[j] += xrow[j];
        }
    };
    auto scatterTileSimd = [&](int64_t j0, int64_t j1) {
        const EdgeId nnz = adj.numEdges();
        const int64_t len = j1 - j0;
        for (EdgeId e = 0; e < nnz; ++e)
            simd::add(out.row(idx[e]) + j0, x.row(e) + j0, len);
    };
    if (chosen == KernelVariant::Reference) {
        scatterTile(0, f);
        return out;
    }
    const bool useSimd = chosen == KernelVariant::Simd;
    core::parallel::parallelFor(
        0, f, Tiling::kFeatTile, [&](int64_t j0, int64_t j1) {
            if (useSimd)
                scatterTileSimd(j0, j1);
            else
                scatterTile(j0, j1);
        });
    return out;
}

} // namespace kernels
} // namespace gnnbench
