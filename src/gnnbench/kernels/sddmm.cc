/**
 * @file
 * SDDMM primitives: per-stored-entry dense ops sampled by the sparse
 * pattern.  Each stored entry's output is written exactly once, so the
 * Tiled variant simply row-panels the adjacency (fixed nnz-balanced
 * chunks); no accumulation order is at stake.
 */

#include <algorithm>
#include <vector>

#include "gnnbench/core/common.h"
#include "gnnbench/core/parallel.h"
#include "gnnbench/kernels/detail.h"
#include "gnnbench/kernels/kernels.h"
#include "gnnbench/kernels/simd.h"

namespace gnnbench {
namespace kernels {

using core::Tensor;
using graph::CsrGraph;

namespace {

/**
 * Row panels with ~kPanelNnz stored entries each, boundaries a pure
 * function of indptr.  SDDMM entries are written once, so heavy rows
 * need no special casing here.
 */
std::vector<NodeId>
panelBounds(const CsrGraph &adj)
{
    std::vector<NodeId> bounds{0};
    EdgeId panelNnz = 0;
    for (NodeId r = 0; r < adj.numRows; ++r) {
        panelNnz += adj.degree(r);
        if (panelNnz >= Tiling::kPanelNnz) {
            bounds.push_back(r + 1);
            panelNnz = 0;
        }
    }
    if (bounds.back() != adj.numRows)
        bounds.push_back(adj.numRows);
    return bounds;
}

void
runPanels(const CsrGraph &adj, KernelVariant chosen,
          const std::function<void(NodeId, NodeId)> &body)
{
    if (chosen == KernelVariant::Reference) {
        body(0, adj.numRows);
        return;
    }
    const std::vector<NodeId> bounds = panelBounds(adj);
    core::parallel::parallelFor(
        0, static_cast<int64_t>(bounds.size()) - 1, 1,
        [&](int64_t b, int64_t e) {
            for (int64_t p = b; p < e; ++p)
                body(bounds[static_cast<size_t>(p)],
                     bounds[static_cast<size_t>(p) + 1]);
        });
}

} // namespace

Tensor
sddmmAdd(const CsrGraph &adj, const Tensor &a_row, const Tensor &b_col,
         KernelVariant v, KernelStats *stats)
{
    GNNBENCH_CHECK(a_row.rows() == adj.numRows,
                   "sddmmAdd: a_row rows must match adjacency rows");
    GNNBENCH_CHECK(b_col.rows() == adj.numCols,
                   "sddmmAdd: b_col rows must match adjacency columns");
    GNNBENCH_CHECK(a_row.cols() == b_col.cols(),
                   "sddmmAdd: operand widths must match");
    const int64_t h = a_row.cols();
    const KernelVariant chosen = resolveVariant(v, adj.numEdges(), h);
    detail::OpObserver obs(
        "kernels.sddmm", static_cast<uint64_t>(adj.numRows),
        static_cast<uint64_t>(adj.numEdges()),
        profiling::sddmmAddCost(static_cast<uint64_t>(adj.numEdges()),
                                h),
        chosen, stats);

    Tensor out = Tensor::empty(adj.numEdges(), h);
    if (h == 0 || adj.numRows == 0)
        return out;
    const NodeId *idx = adj.indices.data();
    const bool useSimd = chosen == KernelVariant::Simd;
    runPanels(adj, chosen, [&](NodeId r0, NodeId r1) {
        for (NodeId r = r0; r < r1; ++r) {
            const float *__restrict arow = a_row.row(r);
            const EdgeId e0 = adj.indptr[r];
            const EdgeId e1 = adj.indptr[r + 1];
            for (EdgeId e = e0; e < e1; ++e) {
                const float *__restrict brow = b_col.row(idx[e]);
                float *__restrict orow = out.row(e);
                if (useSimd) {
                    simd::addInto(orow, arow, brow, h);
                    continue;
                }
                for (int64_t j = 0; j < h; ++j)
                    orow[j] = arow[j] + brow[j];
            }
        }
    });
    return out;
}

Tensor
sddmmDot(const CsrGraph &adj, const Tensor &a_row, const Tensor &b_col,
         KernelVariant v, KernelStats *stats)
{
    GNNBENCH_CHECK(a_row.rows() == adj.numRows,
                   "sddmmDot: a_row rows must match adjacency rows");
    GNNBENCH_CHECK(b_col.rows() == adj.numCols,
                   "sddmmDot: b_col rows must match adjacency columns");
    GNNBENCH_CHECK(a_row.cols() == b_col.cols(),
                   "sddmmDot: operand widths must match");
    const int64_t h = a_row.cols();
    const KernelVariant chosen = resolveVariant(v, adj.numEdges(), h);
    detail::OpObserver obs(
        "kernels.sddmm", static_cast<uint64_t>(adj.numRows),
        static_cast<uint64_t>(adj.numEdges()),
        profiling::sddmmDotCost(static_cast<uint64_t>(adj.numEdges()),
                                h),
        chosen, stats);

    Tensor out = Tensor::empty(adj.numEdges(), 1);
    if (adj.numRows == 0)
        return out;
    const NodeId *idx = adj.indices.data();
    // Simd uses dotOrdered, an unrolled serial chain: a lane-parallel
    // reduction would reassociate the sum and break bit-equality.
    const bool useSimd = chosen == KernelVariant::Simd;
    runPanels(adj, chosen, [&](NodeId r0, NodeId r1) {
        for (NodeId r = r0; r < r1; ++r) {
            const float *__restrict arow = a_row.row(r);
            const EdgeId e0 = adj.indptr[r];
            const EdgeId e1 = adj.indptr[r + 1];
            for (EdgeId e = e0; e < e1; ++e) {
                const float *__restrict brow = b_col.row(idx[e]);
                if (useSimd) {
                    out(e, 0) = simd::dotOrdered(arow, brow, h);
                    continue;
                }
                float acc = 0.0f;
                for (int64_t j = 0; j < h; ++j)
                    acc += arow[j] * brow[j];
                out(e, 0) = acc;
            }
        }
    });
    return out;
}

} // namespace kernels
} // namespace gnnbench
