/**
 * @file
 * Internal helpers shared by the kernel-layer translation units.
 * Not installed with the public API; include kernels.h instead.
 */

#ifndef GNNBENCH_KERNELS_DETAIL_H
#define GNNBENCH_KERNELS_DETAIL_H

#include <cstdint>

#include "gnnbench/kernels/kernels.h"

namespace gnnbench {
namespace kernels {
namespace detail {

/**
 * Record one kernel call in the metrics registry: bumps
 * "kernels.<family>.calls" / ".rows" / ".nnz" / ".bytes" and the
 * per-variant "kernels.variant.<name>" counter.  @p bytes is the
 * kernel's modeled memory traffic (reads + writes).
 */
void noteCall(const char *family, uint64_t rows, uint64_t nnz,
              uint64_t bytes, KernelVariant chosen);

/**
 * Parse one GNNBENCH_KERNEL_VARIANT value; fatal (exit 1) with a
 * message listing validVariantList() on anything unknown.  Split out
 * of the env-latching path so tests can exercise the rejection.
 */
KernelVariant variantFromEnvValue(const char *value);

} // namespace detail
} // namespace kernels
} // namespace gnnbench

#endif // GNNBENCH_KERNELS_DETAIL_H
