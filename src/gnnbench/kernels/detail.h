/**
 * @file
 * Internal helpers shared by the kernel-layer translation units.
 * Not installed with the public API; include kernels.h instead.
 */

#ifndef GNNBENCH_KERNELS_DETAIL_H
#define GNNBENCH_KERNELS_DETAIL_H

#include <cstdint>

#include "gnnbench/core/timer.h"
#include "gnnbench/kernels/kernels.h"
#include "gnnbench/profiling/perf_counters.h"
#include "gnnbench/profiling/roofline.h"

namespace gnnbench {
namespace kernels {
namespace detail {

/**
 * Record one kernel call in the metrics registry: bumps
 * "kernels.<family>.calls" / ".rows" / ".nnz" / ".bytes" and the
 * per-variant "kernels.variant.<name>" counter.  @p bytes is the
 * kernel's modeled memory traffic (reads + writes).
 */
void noteCall(const char *family, uint64_t rows, uint64_t nnz,
              uint64_t bytes, KernelVariant chosen);

/**
 * RAII attribution around one kernel dispatch — the single point
 * where a kernel's analytic cost, hardware counters, metrics, and
 * trace slice come together.  Construct it where noteCall used to be
 * called (the cost's bytes must equal the old noteCall bytes) and let
 * it live until the function returns.  The destructor then
 *
 *  - bumps the classic noteCall counters plus "<family>.flops",
 *  - reads the PMU delta over the dispatch and accumulates it into
 *    "perf.<family>.*" counters (no-op when the PMU is unavailable),
 *  - fills the caller's KernelStats (seconds / cost / perf), and
 *  - records a "<family>" slice with flops/bytes/intensity/
 *    roofline_fraction and PMU args on the calling thread's trace
 *    lane when tracing is enabled.
 */
class OpObserver
{
  public:
    OpObserver(const char *family, uint64_t rows, uint64_t nnz,
               const profiling::OpCost &cost, KernelVariant chosen,
               KernelStats *stats);
    ~OpObserver();

    OpObserver(const OpObserver &) = delete;
    OpObserver &operator=(const OpObserver &) = delete;

  private:
    const char *family_;
    uint64_t rows_;
    uint64_t nnz_;
    profiling::OpCost cost_;
    KernelVariant chosen_;
    KernelStats *stats_;
    core::Timer timer_;
    profiling::PerfScope perf_;
    bool traced_ = false;
    double traceStart_ = 0.0;
};

/**
 * Parse one GNNBENCH_KERNEL_VARIANT value; fatal (exit 1) with a
 * message listing validVariantList() on anything unknown.  Split out
 * of the env-latching path so tests can exercise the rejection.
 */
KernelVariant variantFromEnvValue(const char *value);

} // namespace detail
} // namespace kernels
} // namespace gnnbench

#endif // GNNBENCH_KERNELS_DETAIL_H
