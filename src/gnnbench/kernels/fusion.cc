#include "gnnbench/kernels/fusion.h"

#include <algorithm>
#include <utility>

#include "gnnbench/core/common.h"
#include "gnnbench/core/parallel.h"
#include "gnnbench/device/hierarchy.h"
#include "gnnbench/kernels/detail.h"
#include "gnnbench/kernels/simd.h"
#include "gnnbench/profiling/metrics_registry.h"

namespace gnnbench {
namespace kernels {

using core::Tensor;

const char *
fusedOpName(FusedOp op)
{
    switch (op) {
    case FusedOp::Sample:
        return "sample";
    case FusedOp::Gather:
        return "gather";
    case FusedOp::MulEdge:
        return "mul_edge";
    case FusedOp::Spmm:
        return "spmm";
    case FusedOp::RowScale:
        return "row_scale";
    case FusedOp::Scatter:
        return "scatter";
    case FusedOp::Activation:
        return "activation";
    }
    return "?";
}

bool
fusionEnabled()
{
    return device::deviceConfig().fusionEnabled;
}

namespace {

struct FusionCounters
{
    profiling::Counter &fusedPairs;
    profiling::Counter &bytesSaved;
    profiling::Counter &rejectedPairs;
};

FusionCounters &
fusionCounters()
{
    auto &reg = profiling::MetricsRegistry::global();
    static FusionCounters c{
        reg.counter("device.fusion.fused_pairs"),
        reg.counter("device.fusion.fused_bytes_saved"),
        reg.counter("device.fusion.rejected_pairs"),
    };
    return c;
}

bool
eligiblePair(FusedOp producer, FusedOp consumer)
{
    switch (producer) {
    case FusedOp::Gather:
    case FusedOp::MulEdge:
        return consumer == FusedOp::Scatter;
    case FusedOp::Spmm:
        return consumer == FusedOp::RowScale ||
               consumer == FusedOp::Activation;
    default:
        return false;
    }
}

} // namespace

KernelGraph::KernelGraph(bool framework_supports_fusion)
    : supportsFusion_(framework_supports_fusion)
{
}

int
KernelGraph::addNode(FusedOp op, std::string name,
                     uint64_t output_bytes)
{
    nodes_.push_back(Node{op, std::move(name), output_bytes, 0});
    return static_cast<int>(nodes_.size()) - 1;
}

void
KernelGraph::addEdge(int producer, int consumer)
{
    GNNBENCH_ASSERT(producer >= 0 &&
                        producer < static_cast<int>(nodes_.size()) &&
                        consumer >= 0 &&
                        consumer < static_cast<int>(nodes_.size()) &&
                        producer != consumer,
                    "KernelGraph::addEdge: bad endpoint");
    edges_.emplace_back(producer, consumer);
    ++nodes_[static_cast<size_t>(producer)].consumers;
}

bool
KernelGraph::edgeExists(int producer, int consumer) const
{
    return std::find(edges_.begin(), edges_.end(),
                     std::make_pair(producer, consumer)) !=
           edges_.end();
}

bool
KernelGraph::fuse(int producer, int consumer, uint64_t bytes_saved)
{
    GNNBENCH_ASSERT(edgeExists(producer, consumer),
                    "KernelGraph::fuse: no such edge");
    const Node &p = nodes_[static_cast<size_t>(producer)];
    const Node &c = nodes_[static_cast<size_t>(consumer)];
    if (!eligiblePair(p.op, c.op))
        return false;
    if (!supportsFusion_ || !fusionEnabled() || p.consumers != 1) {
        ++rejectedPairs_;
        fusionCounters().rejectedPairs.add(1);
        return false;
    }
    ++fusedPairs_;
    bytesSaved_ += bytes_saved;
    fusionCounters().fusedPairs.add(1);
    fusionCounters().bytesSaved.add(bytes_saved);
    return true;
}

Tensor
gatherScatterSum(const Tensor &x, const std::vector<NodeId> &src,
                 const std::vector<NodeId> &dst, const float *w,
                 NodeId out_rows, KernelVariant v, KernelStats *stats)
{
    GNNBENCH_CHECK(src.size() == dst.size(),
                   "gatherScatterSum: one (src, dst) pair per edge");
    const int64_t n = static_cast<int64_t>(src.size());
    const int64_t f = x.cols();
    const KernelVariant chosen = resolveVariant(v, n, f);
    detail::OpObserver obs(
        "kernels.fused_scatter", static_cast<uint64_t>(out_rows),
        static_cast<uint64_t>(n),
        profiling::scatterCost(static_cast<uint64_t>(n),
                               static_cast<uint64_t>(out_rows), f),
        chosen, stats);

    Tensor out(out_rows, f);
    if (f == 0 || n == 0)
        return out;
    auto fusedTile = [&](int64_t j0, int64_t j1) {
        for (int64_t i = 0; i < n; ++i) {
            float *__restrict orow =
                out.row(dst[static_cast<size_t>(i)]);
            const float *__restrict xrow =
                x.row(src[static_cast<size_t>(i)]);
            if (w) {
                const float we = w[i];
                for (int64_t j = j0; j < j1; ++j)
                    orow[j] += we * xrow[j];
            } else {
                for (int64_t j = j0; j < j1; ++j)
                    orow[j] += xrow[j];
            }
        }
    };
    auto fusedTileSimd = [&](int64_t j0, int64_t j1) {
        const int64_t len = j1 - j0;
        for (int64_t i = 0; i < n; ++i) {
            float *o = out.row(dst[static_cast<size_t>(i)]) + j0;
            const float *s = x.row(src[static_cast<size_t>(i)]) + j0;
            if (w)
                simd::axpy(o, s, w[i], len);
            else
                simd::add(o, s, len);
        }
    };
    if (chosen == KernelVariant::Reference) {
        fusedTile(0, f);
        return out;
    }
    const bool useSimd = chosen == KernelVariant::Simd;
    core::parallel::parallelFor(
        0, f, Tiling::kFeatTile, [&](int64_t j0, int64_t j1) {
            if (useSimd)
                fusedTileSimd(j0, j1);
            else
                fusedTile(j0, j1);
        });
    return out;
}

Tensor
spmmRelu(const graph::CsrGraph &adj, const Tensor &x, ReduceOp op,
         const float *w, KernelVariant v, KernelStats *stats)
{
    Tensor out = spmm(adj, x, op, w, v, stats);
    const int64_t numel = out.numel();
    if (numel == 0)
        return out;
    float *p = out.data();
    const KernelVariant chosen = resolveVariant(v, adj.numEdges(), 1);
    auto reluRange = [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            p[i] = std::max(p[i], 0.0f);
    };
    // ReLU is exact (no rounding), so the epilogue needs no
    // variant-specific arithmetic order.
    if (chosen == KernelVariant::Reference)
        reluRange(0, numel);
    else
        core::parallel::parallelFor(0, numel, 4096, reluRange);
    return out;
}

} // namespace kernels
} // namespace gnnbench
