/**
 * @file
 * The two microkernel families behind KernelVariant::Simd and the
 * runtime CPU-feature dispatch that selects between them.
 *
 * See simd.h for the contract.  The performance idea, in one line:
 * keep the output feature tile in registers across a row's whole edge
 * list (the Reference loops instead read-modify-write the output row
 * once per edge), and make the per-lane arithmetic explicit so it
 * does not depend on what the auto-vectorizer felt like doing.
 *
 * This translation unit is compiled with -ffp-contract=off (see
 * src/CMakeLists.txt) so neither family can be contracted into FMA —
 * fused rounding would break bit-equality with the Reference golden
 * model on builds where Reference itself is not contracted.
 */

#include "gnnbench/kernels/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "gnnbench/core/common.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    !defined(GNNBENCH_DISABLE_AVX2)
#define GNNBENCH_SIMD_AVX2 1
#include <immintrin.h>
#else
#define GNNBENCH_SIMD_AVX2 0
#endif

namespace gnnbench {
namespace kernels {
namespace simd {

using core::Tensor;
using graph::CsrGraph;

// ------------------------------------------------------------------
// Dispatch state
// ------------------------------------------------------------------

namespace {

std::atomic<bool> g_forcePortable{false};

bool
envWantsPortable()
{
    static const bool portable = [] {
        const char *env = std::getenv("GNNBENCH_SIMD");
        if (!env || !*env || std::strcmp(env, "auto") == 0)
            return false;
        if (std::strcmp(env, "portable") == 0)
            return true;
        GNNBENCH_CHECK(std::strcmp(env, "avx2") == 0,
                       "GNNBENCH_SIMD must be one of auto/avx2/"
                       "portable, got '", env, "'");
        GNNBENCH_CHECK(avx2CompiledIn(),
                       "GNNBENCH_SIMD=avx2 but this build has no AVX2 "
                       "kernels (GNNBENCH_DISABLE_AVX2 or non-x86)");
        GNNBENCH_CHECK(avx2Supported(),
                       "GNNBENCH_SIMD=avx2 but this CPU does not "
                       "report AVX2 support");
        return false;
    }();
    return portable;
}

} // namespace

bool
avx2CompiledIn()
{
#if GNNBENCH_SIMD_AVX2
    return true;
#else
    return false;
#endif
}

bool
avx2Supported()
{
#if GNNBENCH_SIMD_AVX2
    static const bool supported = __builtin_cpu_supports("avx2");
    return supported;
#else
    return false;
#endif
}

bool
avx2Active()
{
    return avx2CompiledIn() && avx2Supported() && !envWantsPortable() &&
           !g_forcePortable.load(std::memory_order_relaxed);
}

void
setForcePortable(bool force)
{
    g_forcePortable.store(force, std::memory_order_relaxed);
}

const char *
isaLabel()
{
    return avx2Active() ? "avx2" : "portable";
}

// ------------------------------------------------------------------
// Portable family: register-blocked restrict loops.  Block width 16
// (one row slice of 4 SSE / 2 AVX vectors) with constant trip counts
// on the hot path so -O3 unrolls and vectorizes them; the tail block
// runs the same expressions with a variable width.
// ------------------------------------------------------------------

namespace {

constexpr int64_t kBlock = 16;

template <bool Weighted>
void
spmmSumRowsPortableT(const CsrGraph &adj, const Tensor &x,
                     const float *w, bool mean, Tensor &out, NodeId r0,
                     NodeId r1, int64_t j0, int64_t j1)
{
    const NodeId *idx = adj.indices.data();
    for (NodeId r = r0; r < r1; ++r) {
        float *__restrict orow = out.row(r);
        const EdgeId e0 = adj.indptr[r];
        const EdgeId e1 = adj.indptr[r + 1];
        const float inv =
            (mean && e1 > e0) ? 1.0f / static_cast<float>(e1 - e0)
                              : 1.0f;
        int64_t jt = j0;
        for (; jt + kBlock <= j1; jt += kBlock) {
            float acc[kBlock] = {0};
            for (EdgeId e = e0; e < e1; ++e) {
                const float *__restrict xrow = x.row(idx[e]) + jt;
                if constexpr (Weighted) {
                    const float we = w[e];
                    for (int64_t k = 0; k < kBlock; ++k)
                        acc[k] += we * xrow[k];
                } else {
                    for (int64_t k = 0; k < kBlock; ++k)
                        acc[k] += xrow[k];
                }
            }
            if (mean && e1 > e0)
                for (int64_t k = 0; k < kBlock; ++k)
                    acc[k] *= inv;
            for (int64_t k = 0; k < kBlock; ++k)
                orow[jt + k] = acc[k];
        }
        if (jt < j1) {
            const int64_t bw = j1 - jt;
            float acc[kBlock] = {0};
            for (EdgeId e = e0; e < e1; ++e) {
                const float *__restrict xrow = x.row(idx[e]) + jt;
                if constexpr (Weighted) {
                    const float we = w[e];
                    for (int64_t k = 0; k < bw; ++k)
                        acc[k] += we * xrow[k];
                } else {
                    for (int64_t k = 0; k < bw; ++k)
                        acc[k] += xrow[k];
                }
            }
            if (mean && e1 > e0)
                for (int64_t k = 0; k < bw; ++k)
                    acc[k] *= inv;
            for (int64_t k = 0; k < bw; ++k)
                orow[jt + k] = acc[k];
        }
    }
}

void
spmmMaxRowsPortable(const CsrGraph &adj, const Tensor &x, Tensor &out,
                    NodeId r0, NodeId r1, int64_t j0, int64_t j1)
{
    const NodeId *idx = adj.indices.data();
    constexpr float kNegInf = -std::numeric_limits<float>::infinity();
    for (NodeId r = r0; r < r1; ++r) {
        float *__restrict orow = out.row(r);
        const EdgeId e0 = adj.indptr[r];
        const EdgeId e1 = adj.indptr[r + 1];
        if (e0 == e1) {
            for (int64_t j = j0; j < j1; ++j)
                orow[j] = 0.0f;
            continue;
        }
        int64_t jt = j0;
        auto runBlock = [&](int64_t bw) {
            float acc[kBlock];
            for (int64_t k = 0; k < bw; ++k)
                acc[k] = kNegInf;
            for (EdgeId e = e0; e < e1; ++e) {
                const float *__restrict xrow = x.row(idx[e]) + jt;
                for (int64_t k = 0; k < bw; ++k)
                    acc[k] = std::max(acc[k], xrow[k]);
            }
            for (int64_t k = 0; k < bw; ++k)
                orow[jt + k] = acc[k];
        };
        for (; jt + kBlock <= j1; jt += kBlock)
            runBlock(kBlock);
        if (jt < j1)
            runBlock(j1 - jt);
    }
}

void
segmentSumRowsPortable(const CsrGraph &adj, const Tensor &x,
                       Tensor &out, NodeId r0, NodeId r1, int64_t j0,
                       int64_t j1)
{
    for (NodeId r = r0; r < r1; ++r) {
        float *__restrict orow = out.row(r);
        const EdgeId e0 = adj.indptr[r];
        const EdgeId e1 = adj.indptr[r + 1];
        int64_t jt = j0;
        auto runBlock = [&](int64_t bw) {
            float acc[kBlock] = {0};
            for (EdgeId e = e0; e < e1; ++e) {
                const float *__restrict xrow = x.row(e) + jt;
                for (int64_t k = 0; k < bw; ++k)
                    acc[k] += xrow[k];
            }
            for (int64_t k = 0; k < bw; ++k)
                orow[jt + k] = acc[k];
        };
        for (; jt + kBlock <= j1; jt += kBlock)
            runBlock(kBlock);
        if (jt < j1)
            runBlock(j1 - jt);
    }
}

void
axpyPortable(float *__restrict o, const float *__restrict x, float w,
             int64_t len)
{
    for (int64_t k = 0; k < len; ++k)
        o[k] += w * x[k];
}

void
addPortable(float *__restrict o, const float *__restrict x,
            int64_t len)
{
    for (int64_t k = 0; k < len; ++k)
        o[k] += x[k];
}

void
addIntoPortable(float *__restrict o, const float *__restrict a,
                const float *__restrict b, int64_t len)
{
    for (int64_t k = 0; k < len; ++k)
        o[k] = a[k] + b[k];
}

void
maxIntoPortable(float *__restrict o, const float *__restrict x,
                int64_t len)
{
    for (int64_t k = 0; k < len; ++k)
        o[k] = std::max(o[k], x[k]);
}

void
scalePortable(float *__restrict o, float s, int64_t len)
{
    for (int64_t k = 0; k < len; ++k)
        o[k] *= s;
}

} // namespace

// ------------------------------------------------------------------
// AVX2 family.  Per-function target attributes keep the rest of the
// build on its base ISA; callers must check avx2Active() first.
// All sums use separate _mm256_mul_ps + _mm256_add_ps (no fmadd) to
// preserve Reference rounding, and max uses _mm256_max_ps(x, acc),
// which matches std::max(acc, x) selection exactly (returns the
// second operand — the accumulator — on NaN or equal-zero operands).
// ------------------------------------------------------------------

#if GNNBENCH_SIMD_AVX2

namespace {

/** 8 YMM accumulators = 64 floats: exactly one Tiling::kFeatTile. */
constexpr int64_t kVec = 8;

/** Edges of lookahead for software prefetch of gathered x rows.  The
 *  CSR gather is the latency-bound part of every SpMM: idx[] is
 *  sequential (the prefetcher handles it) but x.row(idx[e]) is not.
 *  Prefetching a few edges ahead overlaps those misses with the
 *  current edge's arithmetic; it has no effect on results. */
constexpr EdgeId kPrefetchDist = 8;

/** Prefetch the @p bytes-long span at @p p into L1. */
__attribute__((target("avx2"))) inline void
prefetchSpan(const float *p, int64_t bytes)
{
    const char *c = reinterpret_cast<const char *>(p);
    for (int64_t off = 0; off < bytes; off += 64)
        _mm_prefetch(c + off, _MM_HINT_T0);
}

template <bool Weighted>
__attribute__((target("avx2"))) void
spmmSumRowsAvx2T(const CsrGraph &adj, const Tensor &x, const float *w,
                 bool mean, Tensor &out, NodeId r0, NodeId r1,
                 int64_t j0, int64_t j1)
{
    const NodeId *idx = adj.indices.data();
    for (NodeId r = r0; r < r1; ++r) {
        float *orow = out.row(r);
        const EdgeId e0 = adj.indptr[r];
        const EdgeId e1 = adj.indptr[r + 1];
        const bool scale = mean && e1 > e0;
        const float inv =
            scale ? 1.0f / static_cast<float>(e1 - e0) : 1.0f;
        int64_t jt = j0;
        // 64-wide blocks: the whole feature tile lives in registers
        // while the row's edge list streams past once.
        for (; jt + 8 * kVec <= j1; jt += 8 * kVec) {
            __m256 a0 = _mm256_setzero_ps(), a1 = a0, a2 = a0,
                   a3 = a0, a4 = a0, a5 = a0, a6 = a0, a7 = a0;
            for (EdgeId e = e0; e < e1; ++e) {
                const float *xp = x.row(idx[e]) + jt;
                // First pass only: look a few edges ahead to hide
                // the gather miss; later passes re-walk the same
                // rows from cache.
                if (jt == j0 && e + kPrefetchDist < e1)
                    prefetchSpan(x.row(idx[e + kPrefetchDist]) + j0,
                                 8 * kVec * 4);
                if constexpr (Weighted) {
                    const __m256 wv = _mm256_set1_ps(w[e]);
                    a0 = _mm256_add_ps(
                        a0, _mm256_mul_ps(wv, _mm256_loadu_ps(xp)));
                    a1 = _mm256_add_ps(
                        a1,
                        _mm256_mul_ps(wv, _mm256_loadu_ps(xp + 8)));
                    a2 = _mm256_add_ps(
                        a2,
                        _mm256_mul_ps(wv, _mm256_loadu_ps(xp + 16)));
                    a3 = _mm256_add_ps(
                        a3,
                        _mm256_mul_ps(wv, _mm256_loadu_ps(xp + 24)));
                    a4 = _mm256_add_ps(
                        a4,
                        _mm256_mul_ps(wv, _mm256_loadu_ps(xp + 32)));
                    a5 = _mm256_add_ps(
                        a5,
                        _mm256_mul_ps(wv, _mm256_loadu_ps(xp + 40)));
                    a6 = _mm256_add_ps(
                        a6,
                        _mm256_mul_ps(wv, _mm256_loadu_ps(xp + 48)));
                    a7 = _mm256_add_ps(
                        a7,
                        _mm256_mul_ps(wv, _mm256_loadu_ps(xp + 56)));
                } else {
                    a0 = _mm256_add_ps(a0, _mm256_loadu_ps(xp));
                    a1 = _mm256_add_ps(a1, _mm256_loadu_ps(xp + 8));
                    a2 = _mm256_add_ps(a2, _mm256_loadu_ps(xp + 16));
                    a3 = _mm256_add_ps(a3, _mm256_loadu_ps(xp + 24));
                    a4 = _mm256_add_ps(a4, _mm256_loadu_ps(xp + 32));
                    a5 = _mm256_add_ps(a5, _mm256_loadu_ps(xp + 40));
                    a6 = _mm256_add_ps(a6, _mm256_loadu_ps(xp + 48));
                    a7 = _mm256_add_ps(a7, _mm256_loadu_ps(xp + 56));
                }
            }
            if (scale) {
                const __m256 iv = _mm256_set1_ps(inv);
                a0 = _mm256_mul_ps(a0, iv);
                a1 = _mm256_mul_ps(a1, iv);
                a2 = _mm256_mul_ps(a2, iv);
                a3 = _mm256_mul_ps(a3, iv);
                a4 = _mm256_mul_ps(a4, iv);
                a5 = _mm256_mul_ps(a5, iv);
                a6 = _mm256_mul_ps(a6, iv);
                a7 = _mm256_mul_ps(a7, iv);
            }
            float *op = orow + jt;
            if ((reinterpret_cast<uintptr_t>(op) & 31u) == 0) {
                // Streaming stores: the freshly reduced output row
                // is not re-read here, so skip the read-for-
                // ownership and keep the cache for gathered x rows.
                _mm256_stream_ps(op, a0);
                _mm256_stream_ps(op + 8, a1);
                _mm256_stream_ps(op + 16, a2);
                _mm256_stream_ps(op + 24, a3);
                _mm256_stream_ps(op + 32, a4);
                _mm256_stream_ps(op + 40, a5);
                _mm256_stream_ps(op + 48, a6);
                _mm256_stream_ps(op + 56, a7);
            } else {
                _mm256_storeu_ps(op, a0);
                _mm256_storeu_ps(op + 8, a1);
                _mm256_storeu_ps(op + 16, a2);
                _mm256_storeu_ps(op + 24, a3);
                _mm256_storeu_ps(op + 32, a4);
                _mm256_storeu_ps(op + 40, a5);
                _mm256_storeu_ps(op + 48, a6);
                _mm256_storeu_ps(op + 56, a7);
            }
        }
        for (; jt + kVec <= j1; jt += kVec) {
            __m256 acc = _mm256_setzero_ps();
            for (EdgeId e = e0; e < e1; ++e) {
                const float *xp = x.row(idx[e]) + jt;
                if constexpr (Weighted)
                    acc = _mm256_add_ps(
                        acc, _mm256_mul_ps(_mm256_set1_ps(w[e]),
                                           _mm256_loadu_ps(xp)));
                else
                    acc = _mm256_add_ps(acc, _mm256_loadu_ps(xp));
            }
            if (scale)
                acc = _mm256_mul_ps(acc, _mm256_set1_ps(inv));
            _mm256_storeu_ps(orow + jt, acc);
        }
        if (jt < j1) {
            const int64_t bw = j1 - jt;
            float acc[kVec] = {0};
            for (EdgeId e = e0; e < e1; ++e) {
                const float *xp = x.row(idx[e]) + jt;
                if constexpr (Weighted) {
                    const float we = w[e];
                    for (int64_t k = 0; k < bw; ++k)
                        acc[k] += we * xp[k];
                } else {
                    for (int64_t k = 0; k < bw; ++k)
                        acc[k] += xp[k];
                }
            }
            for (int64_t k = 0; k < bw; ++k)
                orow[jt + k] = scale ? acc[k] * inv : acc[k];
        }
    }
    // Drain the write-combining buffers of the streaming stores
    // before this task is reported done to the scheduler.
    _mm_sfence();
}

__attribute__((target("avx2"))) void
spmmMaxRowsAvx2(const CsrGraph &adj, const Tensor &x, Tensor &out,
                NodeId r0, NodeId r1, int64_t j0, int64_t j1)
{
    const NodeId *idx = adj.indices.data();
    constexpr float kNegInf = -std::numeric_limits<float>::infinity();
    for (NodeId r = r0; r < r1; ++r) {
        float *orow = out.row(r);
        const EdgeId e0 = adj.indptr[r];
        const EdgeId e1 = adj.indptr[r + 1];
        if (e0 == e1) {
            for (int64_t j = j0; j < j1; ++j)
                orow[j] = 0.0f;
            continue;
        }
        int64_t jt = j0;
        for (; jt + 4 * kVec <= j1; jt += 4 * kVec) {
            const __m256 ninf = _mm256_set1_ps(kNegInf);
            __m256 a0 = ninf, a1 = ninf, a2 = ninf, a3 = ninf;
            for (EdgeId e = e0; e < e1; ++e) {
                const float *xp = x.row(idx[e]) + jt;
                if (jt == j0 && e + kPrefetchDist < e1)
                    prefetchSpan(x.row(idx[e + kPrefetchDist]) + j0,
                                 4 * kVec * 4);
                a0 = _mm256_max_ps(_mm256_loadu_ps(xp), a0);
                a1 = _mm256_max_ps(_mm256_loadu_ps(xp + 8), a1);
                a2 = _mm256_max_ps(_mm256_loadu_ps(xp + 16), a2);
                a3 = _mm256_max_ps(_mm256_loadu_ps(xp + 24), a3);
            }
            float *op = orow + jt;
            if ((reinterpret_cast<uintptr_t>(op) & 31u) == 0) {
                _mm256_stream_ps(op, a0);
                _mm256_stream_ps(op + 8, a1);
                _mm256_stream_ps(op + 16, a2);
                _mm256_stream_ps(op + 24, a3);
            } else {
                _mm256_storeu_ps(op, a0);
                _mm256_storeu_ps(op + 8, a1);
                _mm256_storeu_ps(op + 16, a2);
                _mm256_storeu_ps(op + 24, a3);
            }
        }
        for (; jt + kVec <= j1; jt += kVec) {
            __m256 acc = _mm256_set1_ps(kNegInf);
            for (EdgeId e = e0; e < e1; ++e)
                acc = _mm256_max_ps(
                    _mm256_loadu_ps(x.row(idx[e]) + jt), acc);
            _mm256_storeu_ps(orow + jt, acc);
        }
        if (jt < j1) {
            const int64_t bw = j1 - jt;
            float acc[kVec];
            for (int64_t k = 0; k < bw; ++k)
                acc[k] = kNegInf;
            for (EdgeId e = e0; e < e1; ++e) {
                const float *xp = x.row(idx[e]) + jt;
                for (int64_t k = 0; k < bw; ++k)
                    acc[k] = std::max(acc[k], xp[k]);
            }
            for (int64_t k = 0; k < bw; ++k)
                orow[jt + k] = acc[k];
        }
    }
    _mm_sfence();
}

__attribute__((target("avx2"))) void
segmentSumRowsAvx2(const CsrGraph &adj, const Tensor &x, Tensor &out,
                   NodeId r0, NodeId r1, int64_t j0, int64_t j1)
{
    for (NodeId r = r0; r < r1; ++r) {
        float *orow = out.row(r);
        const EdgeId e0 = adj.indptr[r];
        const EdgeId e1 = adj.indptr[r + 1];
        int64_t jt = j0;
        for (; jt + 4 * kVec <= j1; jt += 4 * kVec) {
            __m256 a0 = _mm256_setzero_ps(), a1 = a0, a2 = a0,
                   a3 = a0;
            for (EdgeId e = e0; e < e1; ++e) {
                const float *xp = x.row(e) + jt;
                a0 = _mm256_add_ps(a0, _mm256_loadu_ps(xp));
                a1 = _mm256_add_ps(a1, _mm256_loadu_ps(xp + 8));
                a2 = _mm256_add_ps(a2, _mm256_loadu_ps(xp + 16));
                a3 = _mm256_add_ps(a3, _mm256_loadu_ps(xp + 24));
            }
            _mm256_storeu_ps(orow + jt, a0);
            _mm256_storeu_ps(orow + jt + 8, a1);
            _mm256_storeu_ps(orow + jt + 16, a2);
            _mm256_storeu_ps(orow + jt + 24, a3);
        }
        for (; jt + kVec <= j1; jt += kVec) {
            __m256 acc = _mm256_setzero_ps();
            for (EdgeId e = e0; e < e1; ++e)
                acc = _mm256_add_ps(acc,
                                    _mm256_loadu_ps(x.row(e) + jt));
            _mm256_storeu_ps(orow + jt, acc);
        }
        if (jt < j1) {
            const int64_t bw = j1 - jt;
            float acc[kVec] = {0};
            for (EdgeId e = e0; e < e1; ++e) {
                const float *xp = x.row(e) + jt;
                for (int64_t k = 0; k < bw; ++k)
                    acc[k] += xp[k];
            }
            for (int64_t k = 0; k < bw; ++k)
                orow[jt + k] = acc[k];
        }
    }
}

__attribute__((target("avx2"))) void
axpyAvx2(float *o, const float *x, float w, int64_t len)
{
    const __m256 wv = _mm256_set1_ps(w);
    int64_t k = 0;
    for (; k + kVec <= len; k += kVec)
        _mm256_storeu_ps(
            o + k,
            _mm256_add_ps(_mm256_loadu_ps(o + k),
                          _mm256_mul_ps(wv, _mm256_loadu_ps(x + k))));
    for (; k < len; ++k)
        o[k] += w * x[k];
}

__attribute__((target("avx2"))) void
addAvx2(float *o, const float *x, int64_t len)
{
    int64_t k = 0;
    for (; k + kVec <= len; k += kVec)
        _mm256_storeu_ps(o + k,
                         _mm256_add_ps(_mm256_loadu_ps(o + k),
                                       _mm256_loadu_ps(x + k)));
    for (; k < len; ++k)
        o[k] += x[k];
}

__attribute__((target("avx2"))) void
addIntoAvx2(float *o, const float *a, const float *b, int64_t len)
{
    int64_t k = 0;
    for (; k + kVec <= len; k += kVec)
        _mm256_storeu_ps(o + k,
                         _mm256_add_ps(_mm256_loadu_ps(a + k),
                                       _mm256_loadu_ps(b + k)));
    for (; k < len; ++k)
        o[k] = a[k] + b[k];
}

__attribute__((target("avx2"))) void
maxIntoAvx2(float *o, const float *x, int64_t len)
{
    int64_t k = 0;
    for (; k + kVec <= len; k += kVec)
        _mm256_storeu_ps(o + k,
                         _mm256_max_ps(_mm256_loadu_ps(x + k),
                                       _mm256_loadu_ps(o + k)));
    for (; k < len; ++k)
        o[k] = std::max(o[k], x[k]);
}

__attribute__((target("avx2"))) void
scaleAvx2(float *o, float s, int64_t len)
{
    const __m256 sv = _mm256_set1_ps(s);
    int64_t k = 0;
    for (; k + kVec <= len; k += kVec)
        _mm256_storeu_ps(
            o + k, _mm256_mul_ps(_mm256_loadu_ps(o + k), sv));
    for (; k < len; ++k)
        o[k] *= s;
}

} // namespace

#endif // GNNBENCH_SIMD_AVX2

// ------------------------------------------------------------------
// Public entry points: one branch on the resolved ISA per call.
// ------------------------------------------------------------------

void
spmmSumRows(const CsrGraph &adj, const Tensor &x, const float *w,
            bool mean, Tensor &out, NodeId r0, NodeId r1, int64_t j0,
            int64_t j1)
{
#if GNNBENCH_SIMD_AVX2
    if (avx2Active()) {
        if (w)
            spmmSumRowsAvx2T<true>(adj, x, w, mean, out, r0, r1, j0,
                                   j1);
        else
            spmmSumRowsAvx2T<false>(adj, x, w, mean, out, r0, r1, j0,
                                    j1);
        return;
    }
#endif
    if (w)
        spmmSumRowsPortableT<true>(adj, x, w, mean, out, r0, r1, j0,
                                   j1);
    else
        spmmSumRowsPortableT<false>(adj, x, w, mean, out, r0, r1, j0,
                                    j1);
}

void
spmmMaxRows(const CsrGraph &adj, const Tensor &x, Tensor &out,
            NodeId r0, NodeId r1, int64_t j0, int64_t j1)
{
#if GNNBENCH_SIMD_AVX2
    if (avx2Active()) {
        spmmMaxRowsAvx2(adj, x, out, r0, r1, j0, j1);
        return;
    }
#endif
    spmmMaxRowsPortable(adj, x, out, r0, r1, j0, j1);
}

void
segmentSumRows(const CsrGraph &adj, const Tensor &x, Tensor &out,
               NodeId r0, NodeId r1, int64_t j0, int64_t j1)
{
#if GNNBENCH_SIMD_AVX2
    if (avx2Active()) {
        segmentSumRowsAvx2(adj, x, out, r0, r1, j0, j1);
        return;
    }
#endif
    segmentSumRowsPortable(adj, x, out, r0, r1, j0, j1);
}

void
axpy(float *o, const float *x, float w, int64_t len)
{
#if GNNBENCH_SIMD_AVX2
    if (avx2Active()) {
        axpyAvx2(o, x, w, len);
        return;
    }
#endif
    axpyPortable(o, x, w, len);
}

void
add(float *o, const float *x, int64_t len)
{
#if GNNBENCH_SIMD_AVX2
    if (avx2Active()) {
        addAvx2(o, x, len);
        return;
    }
#endif
    addPortable(o, x, len);
}

void
addInto(float *o, const float *a, const float *b, int64_t len)
{
#if GNNBENCH_SIMD_AVX2
    if (avx2Active()) {
        addIntoAvx2(o, a, b, len);
        return;
    }
#endif
    addIntoPortable(o, a, b, len);
}

void
maxInto(float *o, const float *x, int64_t len)
{
#if GNNBENCH_SIMD_AVX2
    if (avx2Active()) {
        maxIntoAvx2(o, x, len);
        return;
    }
#endif
    maxIntoPortable(o, x, len);
}

void
scale(float *o, float s, int64_t len)
{
#if GNNBENCH_SIMD_AVX2
    if (avx2Active()) {
        scaleAvx2(o, s, len);
        return;
    }
#endif
    scalePortable(o, s, len);
}

float
dotOrdered(const float *__restrict a, const float *__restrict b,
           int64_t len)
{
    // Sequential dependency chain on purpose: the accumulation order
    // is part of the determinism contract.  Unrolling shaves loop
    // overhead without touching the order.
    float acc = 0.0f;
    int64_t k = 0;
    for (; k + 4 <= len; k += 4) {
        acc += a[k] * b[k];
        acc += a[k + 1] * b[k + 1];
        acc += a[k + 2] * b[k + 2];
        acc += a[k + 3] * b[k + 3];
    }
    for (; k < len; ++k)
        acc += a[k] * b[k];
    return acc;
}

} // namespace simd
} // namespace kernels
} // namespace gnnbench
