/**
 * @file
 * Producer-consumer kernel graph with multi-kernel fusion.
 *
 * Frameworks record each op chain (sampling→gather→SpMM→activation)
 * as nodes and edges of a KernelGraph, then ask it to fuse eligible
 * producer-consumer pairs.  A successful fusion eliminates the
 * producer's materialized intermediate tensor — the traffic the
 * operation-level GNN studies identify as the dominant cost — and the
 * savings are accounted under "device.fusion.fused_bytes_saved".
 * Whether a pair fuses depends on three gates:
 *
 *  - the pair is in the eligible table: (Gather,Scatter),
 *    (MulEdge,Scatter), (Spmm,RowScale), (Spmm,Activation);
 *  - the recording framework supports fusion (dglx does; pygx does
 *    not — its per-op materialization is exactly the paper's
 *    Observation 3) and GNNBENCH_DEVICE_FUSION is on;
 *  - the producer has exactly one consumer (its output is not needed
 *    elsewhere).
 *
 * Eligible pairs declined by the latter two gates bump
 * "device.fusion.rejected_pairs"; ineligible pairs fail silently.
 *
 * The fused executors below preserve the repo's determinism contract:
 * each output element accumulates in ascending edge order with
 * separate multiply and add (this TU is compiled with
 * -ffp-contract=off), so fused results are bit-identical to the
 * materialized two-kernel execution for any variant and any thread
 * count.
 */

#ifndef GNNBENCH_KERNELS_FUSION_H
#define GNNBENCH_KERNELS_FUSION_H

#include <cstdint>
#include <string>
#include <vector>

#include "gnnbench/kernels/kernels.h"

namespace gnnbench {
namespace kernels {

/** Op kinds a kernel graph can record. */
enum class FusedOp
{
    Sample,
    Gather,
    MulEdge,
    Spmm,
    RowScale,
    Scatter,
    Activation,
};

const char *fusedOpName(FusedOp op);

/** Whether the GNNBENCH_DEVICE_FUSION knob is on for this process. */
bool fusionEnabled();

/**
 * One recorded producer-consumer chain.  Cheap to build per dispatch;
 * fuse() outcomes land in the process-wide "device.fusion.*"
 * counters as well as the local tallies.
 */
class KernelGraph
{
  public:
    /** @p framework_supports_fusion: whether the recording framework
     *  can execute fused kernels at all (dglx true, pygx false). */
    explicit KernelGraph(bool framework_supports_fusion);

    /** Record an op producing @p output_bytes of intermediate. */
    int addNode(FusedOp op, std::string name, uint64_t output_bytes);

    /** Record that @p consumer reads @p producer's output. */
    void addEdge(int producer, int consumer);

    /**
     * Try to fuse @p producer into @p consumer, eliminating
     * @p bytes_saved of modeled intermediate traffic.  Returns true
     * and books the savings on success; see the file comment for the
     * gating rules.
     */
    bool fuse(int producer, int consumer, uint64_t bytes_saved);

    bool supportsFusion() const { return supportsFusion_; }
    size_t numNodes() const { return nodes_.size(); }

    /// @name Local tallies of this graph's fuse() calls
    /// @{
    uint64_t fusedPairs() const { return fusedPairs_; }
    uint64_t bytesSaved() const { return bytesSaved_; }
    uint64_t rejectedPairs() const { return rejectedPairs_; }
    /// @}

  private:
    struct Node
    {
        FusedOp op;
        std::string name;
        uint64_t outputBytes;
        int consumers = 0;
    };

    bool edgeExists(int producer, int consumer) const;

    bool supportsFusion_;
    std::vector<Node> nodes_;
    std::vector<std::pair<int, int>> edges_;
    uint64_t fusedPairs_ = 0;
    uint64_t bytesSaved_ = 0;
    uint64_t rejectedPairs_ = 0;
};

/// @name Fused executors
/// @{

/**
 * Fused gather→[mul-edge]→scatter:
 *   out[dst[i], :] += (w ? w[i] : 1) * x[src[i], :]
 * over @p out_rows rows, without materializing the per-edge message
 * matrix.  Bit-identical to gatherRows + mulEdgeScalar + scatterSum
 * (ascending-i accumulation per element, product rounded once).
 */
core::Tensor gatherScatterSum(const core::Tensor &x,
                              const std::vector<NodeId> &src,
                              const std::vector<NodeId> &dst,
                              const float *w, NodeId out_rows,
                              KernelVariant v = KernelVariant::Auto,
                              KernelStats *stats = nullptr);

/**
 * Fused SpMM→ReLU: spmm(adj, x, op, w) with max(val, 0) applied to
 * the aggregated rows before they are written back, skipping the
 * materialized activation pass.  Bit-identical to
 * spmm + core::ops::relu (ReLU is exact).
 */
core::Tensor spmmRelu(const graph::CsrGraph &adj, const core::Tensor &x,
                      ReduceOp op, const float *w = nullptr,
                      KernelVariant v = KernelVariant::Auto,
                      KernelStats *stats = nullptr);

/// @}

} // namespace kernels
} // namespace gnnbench

#endif // GNNBENCH_KERNELS_FUSION_H
