/**
 * @file
 * Kernel-layer dispatch policy, metrics plumbing, and the
 * differentiable SpMM op shared by both framework reimplementations.
 */

#include <atomic>
#include <cstdlib>
#include <string>

#include "gnnbench/core/common.h"
#include "gnnbench/kernels/detail.h"
#include "gnnbench/kernels/kernels.h"
#include "gnnbench/kernels/simd.h"
#include "gnnbench/profiling/metrics_registry.h"
#include "gnnbench/profiling/trace.h"

namespace gnnbench {
namespace kernels {

using core::Tensor;

const char *
reduceOpName(ReduceOp op)
{
    switch (op) {
    case ReduceOp::Sum:
        return "sum";
    case ReduceOp::Mean:
        return "mean";
    case ReduceOp::Max:
        return "max";
    }
    return "?";
}

const char *
variantName(KernelVariant v)
{
    switch (v) {
    case KernelVariant::Auto:
        return "auto";
    case KernelVariant::Reference:
        return "reference";
    case KernelVariant::Tiled:
        return "tiled";
    case KernelVariant::Simd:
        return "simd";
    }
    return "?";
}

const char *
validVariantList()
{
    return "auto/reference/tiled/simd";
}

bool
parseReduceOp(std::string_view name, ReduceOp *out)
{
    if (name == "sum" || name == "add") {
        *out = ReduceOp::Sum;
        return true;
    }
    if (name == "mean") {
        *out = ReduceOp::Mean;
        return true;
    }
    if (name == "max") {
        *out = ReduceOp::Max;
        return true;
    }
    return false;
}

bool
parseVariant(std::string_view name, KernelVariant *out)
{
    if (name == "auto") {
        *out = KernelVariant::Auto;
        return true;
    }
    if (name == "reference") {
        *out = KernelVariant::Reference;
        return true;
    }
    if (name == "tiled") {
        *out = KernelVariant::Tiled;
        return true;
    }
    if (name == "simd") {
        *out = KernelVariant::Simd;
        return true;
    }
    return false;
}

namespace detail {

KernelVariant
variantFromEnvValue(const char *value)
{
    if (!value || !*value)
        return KernelVariant::Auto;
    KernelVariant v;
    GNNBENCH_CHECK(parseVariant(value, &v),
                   "GNNBENCH_KERNEL_VARIANT must be one of ",
                   validVariantList(), ", got '", value, "'");
    return v;
}

} // namespace detail

namespace {

KernelVariant
variantFromEnv()
{
    return detail::variantFromEnvValue(
        std::getenv("GNNBENCH_KERNEL_VARIANT"));
}

std::atomic<KernelVariant> &
defaultVariantSlot()
{
    static std::atomic<KernelVariant> slot{variantFromEnv()};
    return slot;
}

} // namespace

KernelVariant
defaultVariant()
{
    return defaultVariantSlot().load(std::memory_order_relaxed);
}

void
setDefaultVariant(KernelVariant v)
{
    defaultVariantSlot().store(v, std::memory_order_relaxed);
}

KernelVariant
resolveVariant(KernelVariant v, EdgeId nnz, int64_t f)
{
    if (v == KernelVariant::Auto)
        v = defaultVariant();
    if (v != KernelVariant::Auto)
        return v;
    (void)f;
    return nnz < Tiling::kAutoReferenceNnz ? KernelVariant::Reference
                                           : KernelVariant::Simd;
}

std::string
resolvedVariantLabel(KernelVariant v)
{
    // Report the Auto policy's large-problem choice — benches always
    // run well above the Reference cutover.
    const KernelVariant chosen =
        resolveVariant(v, Tiling::kAutoReferenceNnz + 1, 1);
    std::string label = variantName(chosen);
    if (chosen == KernelVariant::Simd)
        label += std::string("[") + simd::isaLabel() + "]";
    return label;
}

namespace detail {

void
noteCall(const char *family, uint64_t rows, uint64_t nnz,
         uint64_t bytes, KernelVariant chosen)
{
    auto &reg = profiling::MetricsRegistry::global();
    const std::string base(family);
    reg.counter(base + ".calls").add(1);
    reg.counter(base + ".rows").add(rows);
    reg.counter(base + ".nnz").add(nnz);
    reg.counter(base + ".bytes").add(bytes);
    reg.counter(std::string("kernels.variant.") + variantName(chosen))
        .add(1);
}

OpObserver::OpObserver(const char *family, uint64_t rows, uint64_t nnz,
                       const profiling::OpCost &cost,
                       KernelVariant chosen, KernelStats *stats)
    : family_(family), rows_(rows), nnz_(nnz), cost_(cost),
      chosen_(chosen), stats_(stats)
{
    auto &tr = profiling::TraceRecorder::global();
    if (tr.enabled()) {
        traced_ = true;
        traceStart_ = tr.now();
    }
}

OpObserver::~OpObserver()
{
    // Capture the measurements before anything expensive (the first
    // roofline call may run the calibration probe).
    const double secs = timer_.elapsed();
    const profiling::PerfDelta d = perf_.stop();
    double traceEnd = 0.0;
    if (traced_)
        traceEnd = profiling::TraceRecorder::global().now();

    noteCall(family_, rows_, nnz_,
             static_cast<uint64_t>(cost_.bytes), chosen_);
    profiling::MetricsRegistry::global()
        .counter(std::string(family_) + ".flops")
        .add(static_cast<uint64_t>(cost_.flops));
    profiling::addPerfDelta(std::string("perf.") + family_, d);

    if (stats_) {
        stats_->seconds = secs;
        stats_->cost = cost_;
        stats_->perf = d;
    }

    if (traced_) {
        std::vector<std::pair<std::string, double>> args;
        args.emplace_back("flops", cost_.flops);
        args.emplace_back("bytes", cost_.bytes);
        args.emplace_back("intensity", cost_.intensity());
        args.emplace_back(
            "roofline_fraction",
            profiling::rooflineFraction(
                cost_, secs, profiling::rooflineCalibration()));
        profiling::appendPerfArgs(d, &args);
        profiling::TraceRecorder::global().record(
            family_, "kernel", traceStart_, traceEnd,
            std::move(args));
    }
}

} // namespace detail

double
KernelStats::rooflineFraction() const
{
    return profiling::rooflineFraction(
        cost, seconds, profiling::rooflineCalibration());
}

core::ag::Var
spmmVar(std::shared_ptr<const graph::CsrGraph> adj,
        std::shared_ptr<const std::vector<float>> w, ReduceOp op,
        const core::ag::Var &x, KernelVariant v)
{
    GNNBENCH_CHECK(adj != nullptr, "spmmVar: adjacency is required");
    GNNBENCH_CHECK(op != ReduceOp::Max || w == nullptr,
                   "spmmVar: max reduce does not take edge weights");
    const float *wptr = w ? w->data() : nullptr;

    if (op == ReduceOp::Max) {
        auto arg = std::make_shared<std::vector<NodeId>>();
        Tensor out = spmmMaxArg(*adj, x->value, arg.get(), v);
        const int64_t f = x->value.cols();
        const NodeId srcRows = adj->numCols;
        return core::ag::makeOp(
            "kernels.spmm_max", std::move(out), {x},
            [adj, arg, f, srcRows, v](core::ag::Node &node) {
                core::ag::Var xin = node.parents[0];
                if (!xin->requiresGrad)
                    return;
                Tensor gx(srcRows, f);
                const NodeId rows = adj->numRows;
                for (NodeId r = 0; r < rows; ++r) {
                    const float *grow = node.grad.row(r);
                    const NodeId *arow =
                        arg->data() + static_cast<size_t>(r) * f;
                    for (int64_t j = 0; j < f; ++j) {
                        const NodeId s = arow[j];
                        if (s >= 0)
                            gx(s, j) += grow[j];
                    }
                }
                xin->accumulateGrad(gx);
            });
    }

    Tensor out = spmm(*adj, x->value, op, wptr, v);
    const char *name = op == ReduceOp::Mean ? "kernels.spmm_mean"
                                            : "kernels.spmm_sum";
    const bool mean = op == ReduceOp::Mean;
    return core::ag::makeOp(
        name, std::move(out), {x},
        [adj, w, mean, v](core::ag::Node &node) {
            core::ag::Var xin = node.parents[0];
            if (!xin->requiresGrad)
                return;
            const float *wb = w ? w->data() : nullptr;
            if (!mean) {
                xin->accumulateGrad(
                    spmmScatter(*adj, node.grad, wb, v));
                return;
            }
            // d(mean)/dx routes grad/degree through the transpose.
            Tensor scaled = node.grad;
            const int64_t f = scaled.cols();
            for (NodeId r = 0; r < adj->numRows; ++r) {
                const EdgeId deg = adj->degree(r);
                if (deg == 0)
                    continue;
                const float inv = 1.0f / static_cast<float>(deg);
                float *row = scaled.row(r);
                for (int64_t j = 0; j < f; ++j)
                    row[j] *= inv;
            }
            xin->accumulateGrad(spmmScatter(*adj, scaled, wb, v));
        });
}

} // namespace kernels
} // namespace gnnbench
