#include "gnnbench/dglx/dataloader.h"

#include "gnnbench/check/validate.h"
#include "gnnbench/core/parallel.h"

namespace gnnbench {
namespace dglx {

LoadedData
DataLoader::load(const graph::Dataset &dataset)
{
    LoadedData out;
    // Eager DGLGraph-style construction: COO copy + CSR + CSC +
    // degree arrays + structural validation.
    out.graph = std::make_shared<Graph>(dataset.graph);
    out.graph->csr().validate();
    out.graph->csc().validate();
    out.features = dataset.features.clone();
    out.labels = dataset.labels;
    out.trainIdx = dataset.trainIdx;
    out.valIdx = dataset.valIdx;
    out.testIdx = dataset.testIdx;
    return out;
}

namespace {

using core::parallel::chunkSeed;

// Per-loader-type salts for chunkSeed.  Batch i's sampler stream is a
// pure function of (the loader's one base draw, salt, i) — never of
// the worker that happens to run it — so delivered batches are
// bit-identical for any num_workers, 0 included.
constexpr uint64_t kNeighborSalt = 0x646E6269;  // "dnbi"
constexpr uint64_t kClusterSalt = 0x64636C75;   // "dclu"
constexpr uint64_t kSaintSalt = 0x64737274;     // "dsrt"

using NeighborProducer =
    sampling::Prefetcher<sampling::NeighborSample>::Producer;

std::vector<NeighborProducer>
neighborProducers(
    const NeighborSampler &proto, core::Rng &rng,
    std::shared_ptr<const std::vector<std::vector<NodeId>>> batches,
    int num_workers)
{
    GNNBENCH_CHECK(num_workers >= 0, "negative worker count");
    const uint64_t base = rng.next();
    const int workers = std::max(num_workers, 1);
    std::vector<NeighborProducer> out;
    out.reserve(workers);
    for (int w = 0; w < workers; ++w) {
        auto sampler = std::make_shared<NeighborSampler>(
            proto.withRng(core::Rng(base)));
        out.push_back([sampler, batches, base](int64_t i) {
            sampler->reseed(core::Rng(chunkSeed(
                base, kNeighborSalt, static_cast<uint64_t>(i))));
            return sampler->sample(
                (*batches)[static_cast<size_t>(i)]);
        });
    }
    return out;
}

} // namespace

NeighborLoader::NeighborLoader(
    const NeighborSampler &proto, core::Rng &rng,
    std::vector<std::vector<NodeId>> seed_batches, int num_workers,
    int prefetch_depth)
    : seedBatches_(
          std::make_shared<const std::vector<std::vector<NodeId>>>(
              std::move(seed_batches)))
{
    auto producers =
        neighborProducers(proto, rng, seedBatches_, num_workers);
    const auto n = static_cast<int64_t>(seedBatches_->size());
    if (num_workers == 0)
        prefetcher_ = std::make_unique<
            sampling::Prefetcher<sampling::NeighborSample>>(
            std::move(producers[0]), n, "dgl-neighbor");
    else
        prefetcher_ = std::make_unique<
            sampling::Prefetcher<sampling::NeighborSample>>(
            std::move(producers), n, prefetch_depth, "dgl-neighbor");
}

std::optional<sampling::NeighborSample>
NeighborLoader::next()
{
    std::optional<sampling::NeighborSample> smp = prefetcher_->next();
    if (smp && check::enabled()) {
        // Loader seam: the pipeline must deliver batches in serial
        // seed-batch order no matter which worker finished first.
        const auto &want =
            (*seedBatches_)[static_cast<size_t>(delivered_)];
        if (smp->seeds != want)
            check::require(check::Result::fail(
                "neighbor loader delivered batch out of order (at "
                "position " + std::to_string(delivered_) + ")"));
    }
    if (smp)
        ++delivered_;
    return smp;
}

void
NeighborLoader::shutdown()
{
    prefetcher_->shutdown();
}

const std::vector<double> &
NeighborLoader::workerBusySeconds()
{
    return prefetcher_->workerBusySeconds();
}

InducedLoader::InducedLoader(std::vector<Producer> producers,
                             int num_batches, int prefetch_depth,
                             std::string lane_tag)
{
    prefetcher_ = std::make_unique<
        sampling::Prefetcher<sampling::InducedSample>>(
        std::move(producers), num_batches, prefetch_depth,
        std::move(lane_tag));
}

InducedLoader::InducedLoader(Producer producer, int num_batches,
                             std::string lane_tag)
{
    prefetcher_ = std::make_unique<
        sampling::Prefetcher<sampling::InducedSample>>(
        std::move(producer), num_batches, std::move(lane_tag));
}

std::optional<sampling::InducedSample>
InducedLoader::next()
{
    return prefetcher_->next();
}

void
InducedLoader::shutdown()
{
    prefetcher_->shutdown();
}

const std::vector<double> &
InducedLoader::workerBusySeconds()
{
    return prefetcher_->workerBusySeconds();
}

InducedLoader
makeClusterLoader(const ClusterSampler &proto, core::Rng &rng,
                  int32_t clusters_per_batch, int num_batches,
                  int num_workers, int prefetch_depth)
{
    GNNBENCH_CHECK(num_workers >= 0, "negative worker count");
    const uint64_t base = rng.next();
    const int workers = std::max(num_workers, 1);
    std::vector<InducedLoader::Producer> producers;
    producers.reserve(workers);
    for (int w = 0; w < workers; ++w) {
        auto sampler = std::make_shared<ClusterSampler>(
            proto.withRng(core::Rng(base)));
        producers.push_back(
            [sampler, clusters_per_batch, base](int64_t i) {
                sampler->reseed(core::Rng(chunkSeed(
                    base, kClusterSalt, static_cast<uint64_t>(i))));
                return sampler->sample(clusters_per_batch);
            });
    }
    if (num_workers == 0)
        return InducedLoader(std::move(producers[0]), num_batches,
                             "dgl-cluster");
    return InducedLoader(std::move(producers), num_batches,
                         prefetch_depth, "dgl-cluster");
}

InducedLoader
makeSaintRwLoader(const SaintRwSampler &proto, core::Rng &rng,
                  int num_batches, int num_workers,
                  int prefetch_depth)
{
    GNNBENCH_CHECK(num_workers >= 0, "negative worker count");
    const uint64_t base = rng.next();
    const int workers = std::max(num_workers, 1);
    std::vector<InducedLoader::Producer> producers;
    producers.reserve(workers);
    for (int w = 0; w < workers; ++w) {
        auto sampler = std::make_shared<SaintRwSampler>(
            proto.withRng(core::Rng(base)));
        producers.push_back([sampler, base](int64_t i) {
            sampler->reseed(core::Rng(chunkSeed(
                base, kSaintSalt, static_cast<uint64_t>(i))));
            return sampler->sample();
        });
    }
    if (num_workers == 0)
        return InducedLoader(std::move(producers[0]), num_batches,
                             "dgl-saint");
    return InducedLoader(std::move(producers), num_batches,
                         prefetch_depth, "dgl-saint");
}

} // namespace dglx
} // namespace gnnbench
