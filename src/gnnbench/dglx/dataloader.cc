#include "gnnbench/dglx/dataloader.h"

namespace gnnbench {
namespace dglx {

LoadedData
DataLoader::load(const graph::Dataset &dataset)
{
    LoadedData out;
    // Eager DGLGraph-style construction: COO copy + CSR + CSC +
    // degree arrays + structural validation.
    out.graph = std::make_shared<Graph>(dataset.graph);
    out.graph->csr().validate();
    out.graph->csc().validate();
    out.features = dataset.features.clone();
    out.labels = dataset.labels;
    out.trainIdx = dataset.trainIdx;
    out.valIdx = dataset.valIdx;
    out.testIdx = dataset.testIdx;
    return out;
}

namespace {

using NeighborProducer =
    sampling::Prefetcher<sampling::NeighborSample>::Producer;

std::vector<NeighborProducer>
neighborProducers(
    const NeighborSampler &proto, core::Rng &rng,
    std::shared_ptr<const std::vector<std::vector<NodeId>>> batches,
    int num_workers)
{
    GNNBENCH_CHECK(num_workers > 0, "loader needs >= 1 worker");
    std::vector<NeighborProducer> out;
    out.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) {
        auto sampler = std::make_shared<NeighborSampler>(
            proto.withRng(rng.fork()));
        out.push_back([sampler, batches](int64_t i) {
            return sampler->sample(
                (*batches)[static_cast<size_t>(i)]);
        });
    }
    return out;
}

} // namespace

NeighborLoader::NeighborLoader(
    const NeighborSampler &proto, core::Rng &rng,
    std::vector<std::vector<NodeId>> seed_batches, int num_workers,
    int prefetch_depth)
    : seedBatches_(
          std::make_shared<const std::vector<std::vector<NodeId>>>(
              std::move(seed_batches)))
{
    prefetcher_ = std::make_unique<
        sampling::Prefetcher<sampling::NeighborSample>>(
        neighborProducers(proto, rng, seedBatches_, num_workers),
        static_cast<int64_t>(seedBatches_->size()), prefetch_depth,
        "dgl-neighbor");
}

std::optional<sampling::NeighborSample>
NeighborLoader::next()
{
    return prefetcher_->next();
}

void
NeighborLoader::shutdown()
{
    prefetcher_->shutdown();
}

const std::vector<double> &
NeighborLoader::workerBusySeconds()
{
    return prefetcher_->workerBusySeconds();
}

InducedLoader::InducedLoader(std::vector<Producer> producers,
                             int num_batches, int prefetch_depth,
                             std::string lane_tag)
{
    using InducedProducer =
        sampling::Prefetcher<sampling::InducedSample>::Producer;
    std::vector<InducedProducer> wrapped;
    wrapped.reserve(producers.size());
    for (auto &p : producers)
        wrapped.push_back([producer = std::move(p)](int64_t) {
            return producer();
        });
    prefetcher_ = std::make_unique<
        sampling::Prefetcher<sampling::InducedSample>>(
        std::move(wrapped), num_batches, prefetch_depth,
        std::move(lane_tag));
}

std::optional<sampling::InducedSample>
InducedLoader::next()
{
    return prefetcher_->next();
}

void
InducedLoader::shutdown()
{
    prefetcher_->shutdown();
}

const std::vector<double> &
InducedLoader::workerBusySeconds()
{
    return prefetcher_->workerBusySeconds();
}

InducedLoader
makeClusterLoader(const ClusterSampler &proto, core::Rng &rng,
                  int32_t clusters_per_batch, int num_batches,
                  int num_workers, int prefetch_depth)
{
    GNNBENCH_CHECK(num_workers > 0, "loader needs >= 1 worker");
    std::vector<InducedLoader::Producer> producers;
    producers.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) {
        auto sampler = std::make_shared<ClusterSampler>(
            proto.withRng(rng.fork()));
        producers.push_back([sampler, clusters_per_batch] {
            return sampler->sample(clusters_per_batch);
        });
    }
    return InducedLoader(std::move(producers), num_batches,
                         prefetch_depth, "dgl-cluster");
}

InducedLoader
makeSaintRwLoader(const SaintRwSampler &proto, core::Rng &rng,
                  int num_batches, int num_workers,
                  int prefetch_depth)
{
    GNNBENCH_CHECK(num_workers > 0, "loader needs >= 1 worker");
    std::vector<InducedLoader::Producer> producers;
    producers.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) {
        auto sampler = std::make_shared<SaintRwSampler>(
            proto.withRng(rng.fork()));
        producers.push_back([sampler] { return sampler->sample(); });
    }
    return InducedLoader(std::move(producers), num_batches,
                         prefetch_depth, "dgl-saint");
}

} // namespace dglx
} // namespace gnnbench
