#include "gnnbench/dglx/dataloader.h"

namespace gnnbench {
namespace dglx {

LoadedData
DataLoader::load(const graph::Dataset &dataset)
{
    LoadedData out;
    // Eager DGLGraph-style construction: COO copy + CSR + CSC +
    // degree arrays + structural validation.
    out.graph = std::make_shared<Graph>(dataset.graph);
    out.graph->csr().validate();
    out.graph->csc().validate();
    out.features = dataset.features.clone();
    out.labels = dataset.labels;
    out.trainIdx = dataset.trainIdx;
    out.valIdx = dataset.valIdx;
    out.testIdx = dataset.testIdx;
    return out;
}

} // namespace dglx
} // namespace gnnbench
