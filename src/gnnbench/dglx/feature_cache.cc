#include "gnnbench/dglx/feature_cache.h"

#include <algorithm>
#include <numeric>

#include "gnnbench/profiling/metrics_registry.h"

namespace gnnbench {
namespace dglx {

FeatureCache::FeatureCache(const std::vector<EdgeId> &degrees,
                           int64_t feat_dim, uint64_t capacity_bytes,
                           device::Session &session)
    : featDim_(feat_dim), session_(session),
      cached_(degrees.size(), false)
{
    GNNBENCH_CHECK(feat_dim > 0, "feature cache: bad feature dim");
    const uint64_t row_bytes = static_cast<uint64_t>(feat_dim) * 4;
    const auto n = static_cast<NodeId>(degrees.size());
    NodeId capacity_rows =
        static_cast<NodeId>(std::min<uint64_t>(
            capacity_bytes / std::max<uint64_t>(row_bytes, 1), n));

    // Hottest-first: sort node ids by degree, descending.
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), NodeId{0});
    std::partial_sort(order.begin(), order.begin() + capacity_rows,
                      order.end(), [&degrees](NodeId a, NodeId b) {
                          return degrees[a] > degrees[b];
                      });
    reservedBytes_ = static_cast<uint64_t>(capacity_rows) * row_bytes;
    GNNBENCH_CHECK(session_.reserveGpu(reservedBytes_),
                   "feature cache does not fit in GPU memory");
    for (NodeId i = 0; i < capacity_rows; ++i)
        cached_[order[i]] = true;
    cachedCount_ = capacity_rows;

    // Populating the cache is a one-time PCIe transfer.
    session_.transfer(reservedBytes_);
}

FeatureCache::~FeatureCache()
{
    session_.releaseGpu(reservedBytes_);
}

CacheGatherStats
FeatureCache::gather(const std::vector<NodeId> &nodes)
{
    const uint64_t row_bytes = static_cast<uint64_t>(featDim_) * 4;
    CacheGatherStats stats;
    for (NodeId v : nodes) {
        if (cached_[v])
            stats.hitBytes += row_bytes;
        else
            stats.missBytes += row_bytes;
    }
    if (stats.hitBytes > 0) {
        device::KernelDesc desc;
        desc.name = "cache_gather";
        desc.bytes = 2.0 * static_cast<double>(stats.hitBytes);
        desc.efficiency = 0.3;  // gather out of device memory
        session_.chargeGpuKernel(desc);
    }
    if (stats.missBytes > 0)
        session_.transfer(stats.missBytes);
    totals_.hitBytes += stats.hitBytes;
    totals_.missBytes += stats.missBytes;
    // Hit rate = hit_bytes / (hit_bytes + miss_bytes) in the report.
    static profiling::Counter &hit_counter =
        profiling::MetricsRegistry::global().counter(
            "feature_cache.hit_bytes");
    static profiling::Counter &miss_counter =
        profiling::MetricsRegistry::global().counter(
            "feature_cache.miss_bytes");
    hit_counter.add(stats.hitBytes);
    miss_counter.add(stats.missBytes);
    return stats;
}

} // namespace dglx
} // namespace gnnbench
