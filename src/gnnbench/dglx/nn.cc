#include "gnnbench/dglx/nn.h"

#include <cmath>

namespace gnnbench {
namespace dglx {

namespace ag = core::ag;
using core::Tensor;

const char *
convKindName(ConvKind kind)
{
    switch (kind) {
      case ConvKind::Gcn:
        return "GCNConv";
      case ConvKind::Gcn2:
        return "GCN2Conv";
      case ConvKind::Cheb:
        return "ChebConv";
      case ConvKind::Sage:
        return "SAGEConv";
      case ConvKind::Gat:
        return "GATConv";
      case ConvKind::Gatv2:
        return "GATv2Conv";
      case ConvKind::Tag:
        return "TAGConv";
      case ConvKind::Sg:
        return "SGConv";
    }
    return "?";
}

const std::vector<ConvKind> &
allConvKinds()
{
    static const std::vector<ConvKind> kinds = {
        ConvKind::Gcn, ConvKind::Gcn2, ConvKind::Cheb, ConvKind::Sage,
        ConvKind::Gat, ConvKind::Gatv2, ConvKind::Tag, ConvKind::Sg};
    return kinds;
}

std::vector<float>
computeGcnNorm(const graph::CsrGraph &sym_adj)
{
    GNNBENCH_CHECK(sym_adj.numRows == sym_adj.numCols,
                   "computeGcnNorm expects a square adjacency");
    std::vector<float> inv_sqrt(sym_adj.numRows);
    for (NodeId v = 0; v < sym_adj.numRows; ++v)
        inv_sqrt[v] = 1.0f / std::sqrt(
                                 static_cast<float>(sym_adj.degree(v)) +
                                 1.0f);
    std::vector<float> w(sym_adj.numEdges());
    EdgeId e = 0;
    for (NodeId r = 0; r < sym_adj.numRows; ++r)
        for (EdgeId i = sym_adj.indptr[r]; i < sym_adj.indptr[r + 1];
             ++i, ++e)
            w[e] = inv_sqrt[r] * inv_sqrt[sym_adj.indices[i]];
    return w;
}

std::vector<float>
computeInvDegree(const graph::CsrGraph &csc)
{
    std::vector<float> s(csc.numRows);
    for (NodeId v = 0; v < csc.numRows; ++v) {
        const auto d = csc.degree(v);
        s[v] = d > 0 ? 1.0f / static_cast<float>(d) : 0.0f;
    }
    return s;
}

std::vector<float>
computeSelfScale(const graph::CsrGraph &sym_adj)
{
    std::vector<float> s(sym_adj.numRows);
    for (NodeId v = 0; v < sym_adj.numRows; ++v)
        s[v] =
            1.0f / (static_cast<float>(sym_adj.degree(v)) + 1.0f);
    return s;
}

Conv::Conv(std::string name, bool trainable)
    : name_(std::move(name)), trainable_(trainable)
{
}

Var
Conv::addParam(Tensor t)
{
    params_.push_back(ag::leaf(std::move(t), trainable_));
    return params_.back();
}

uint64_t
Conv::paramBytes() const
{
    uint64_t bytes = 0;
    for (const auto &p : params_)
        bytes += p->value.bytes();
    return bytes;
}

namespace {

/**
 * Multiply by the symmetric-normalized adjacency with self loops:
 * P x = spmm(A_norm) x + diag(1/(d+1)) x.  Shared by GCN-family
 * layers.  Weight arrays are cached on the Graph.
 */
Var
propagateNorm(const Graph &g, const Var &x, const KernelCtx &ctx)
{
    Var agg = spmmVar(g.csc(), g.gcnNormCsc().data(), borrow(g.csr()),
                      borrow(g.gcnNormCsr()), x, ctx);
    std::vector<float> self;
    runPrep(ctx, static_cast<double>(g.numNodes()), [&] {
        self.resize(g.numNodes());
        for (NodeId v = 0; v < g.numNodes(); ++v)
            self[v] = 1.0f /
                      (static_cast<float>(g.inDegrees()[v]) + 1.0f);
    });
    return addVar(agg, rowScaleVar(x, std::move(self), ctx), ctx);
}

} // namespace

GcnConv::GcnConv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
                 bool trainable)
    : Conv("GCNConv", trainable),
      weight_(addParam(Tensor::glorot(in_dim, out_dim, rng))),
      bias_(addParam(Tensor::zeros(1, out_dim)))
{
}

Var
GcnConv::forward(const Graph &g, const Var &x, const KernelCtx &ctx)
{
    Var xw = gemmVar(x, weight_, ctx);
    return addBiasVar(propagateNorm(g, xw, ctx), bias_, ctx);
}

Var
GcnConv::forwardInduced(const graph::CsrGraph &adj,
                        const std::vector<float> &gcn_norm,
                        const std::vector<float> &self_scale,
                        const Var &x, const KernelCtx &ctx)
{
    Var xw = gemmVar(x, weight_, ctx);
    // Symmetric adjacency + symmetric weight function: the same
    // structure/weights serve forward and backward.
    Var agg = spmmVar(adj, gcn_norm.data(), borrow(adj),
                      borrow(gcn_norm), xw, ctx);
    Var h = addVar(agg, rowScaleVar(xw, self_scale, ctx), ctx);
    return addBiasVar(h, bias_, ctx);
}

Gcn2Conv::Gcn2Conv(int64_t dim, float alpha, float beta, core::Rng &rng,
                   bool trainable)
    : Conv("GCN2Conv", trainable),
      weight_(addParam(Tensor::glorot(dim, dim, rng))), alpha_(alpha),
      beta_(beta)
{
}

Var
Gcn2Conv::forward(const Graph &g, const Var &x, const KernelCtx &ctx)
{
    GNNBENCH_CHECK(x0_ != nullptr,
                   "GCN2Conv: call setInitial() before forward");
    GNNBENCH_CHECK(x0_->value.sameShape(x->value),
                   "GCN2Conv: initial features shape mismatch");
    Var p = propagateNorm(g, x, ctx);
    Var h = addVar(scaleVar(p, 1.0f - alpha_, ctx), scaleVar(x0_, alpha_, ctx), ctx);
    return addVar(scaleVar(h, 1.0f - beta_, ctx),
                   scaleVar(gemmVar(h, weight_, ctx), beta_, ctx), ctx);
}

ChebConv::ChebConv(int64_t in_dim, int64_t out_dim, int k,
                   core::Rng &rng, bool trainable)
    : Conv("ChebConv", trainable), k_(k)
{
    GNNBENCH_CHECK(k >= 1, "ChebConv order must be >= 1");
    for (int i = 0; i < k; ++i)
        weights_.push_back(addParam(Tensor::glorot(in_dim, out_dim,
                                                   rng)));
    bias_ = addParam(Tensor::zeros(1, out_dim));
}

Var
ChebConv::forward(const Graph &g, const Var &x, const KernelCtx &ctx)
{
    // With lambda_max = 2, the scaled Laplacian is L~ = -P (P the
    // normalized adjacency), giving the standard Chebyshev recursion
    // T_k = -2 P T_{k-1} - T_{k-2}.
    Var out = gemmVar(x, weights_[0], ctx);
    Var t_prev2 = x;
    Var t_prev1;
    if (k_ > 1) {
        t_prev1 = scaleVar(propagateNorm(g, x, ctx), -1.0f, ctx);
        out = addVar(out, gemmVar(t_prev1, weights_[1], ctx), ctx);
    }
    for (int i = 2; i < k_; ++i) {
        Var t = addVar(
            scaleVar(propagateNorm(g, t_prev1, ctx), -2.0f, ctx),
            scaleVar(t_prev2, -1.0f, ctx), ctx);
        out = addVar(out, gemmVar(t, weights_[i], ctx), ctx);
        t_prev2 = t_prev1;
        t_prev1 = t;
    }
    return addBiasVar(out, bias_, ctx);
}

SageConv::SageConv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
                   bool trainable)
    : Conv("SAGEConv", trainable),
      selfWeight_(addParam(Tensor::glorot(in_dim, out_dim, rng))),
      neighWeight_(addParam(Tensor::glorot(in_dim, out_dim, rng))),
      bias_(addParam(Tensor::zeros(1, out_dim)))
{
}

Var
SageConv::forward(const Graph &g, const Var &x, const KernelCtx &ctx)
{
    // Mean aggregation through the kernel graph: the spmm→row-scale
    // chain fuses into one gspmm_mean kernel when fusion is on.
    Var agg = spmmMeanVar(g.csc(), borrow(g.csr()), x, ctx);
    Var h = addVar(gemmVar(x, selfWeight_, ctx),
                    gemmVar(agg, neighWeight_, ctx), ctx);
    return addBiasVar(h, bias_, ctx);
}

Var
SageConv::forwardBlock(const sampling::Block &block, const Var &x_src,
                       const KernelCtx &ctx)
{
    // Backward runs the scatter-form kernel over the same block
    // structure — no transpose is ever materialized (DGL's approach).
    // The mean normalization fuses into the aggregation kernel when
    // the kernel graph allows it.
    Var agg = spmmMeanScatterBwdVar(borrow(block.csc), x_src, ctx);
    // Destination features are the first |dst| rows of x_src.
    std::vector<NodeId> dst_rows(block.dstNodes.size());
    for (size_t i = 0; i < dst_rows.size(); ++i)
        dst_rows[i] = static_cast<NodeId>(i);
    Var x_dst = ag::gatherRows(x_src, std::move(dst_rows));
    Var h = addVar(gemmVar(x_dst, selfWeight_, ctx),
                    gemmVar(agg, neighWeight_, ctx), ctx);
    return addBiasVar(h, bias_, ctx);
}

Var
SageConv::forwardInduced(const graph::CsrGraph &adj, const Var &x,
                         const KernelCtx &ctx)
{
    Var agg = spmmMeanVar(adj, borrow(adj), x, ctx);
    Var h = addVar(gemmVar(x, selfWeight_, ctx),
                    gemmVar(agg, neighWeight_, ctx), ctx);
    return addBiasVar(h, bias_, ctx);
}

GatConv::GatConv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
                 bool trainable)
    : Conv("GATConv", trainable),
      weight_(addParam(Tensor::glorot(in_dim, out_dim, rng))),
      attnL_(addParam(Tensor::glorot(out_dim, 1, rng))),
      attnR_(addParam(Tensor::glorot(out_dim, 1, rng)))
{
}

Var
GatConv::forward(const Graph &g, const Var &x, const KernelCtx &ctx)
{
    Var z = gemmVar(x, weight_, ctx);
    Var al = gemmVar(z, attnL_, ctx);
    Var ar = gemmVar(z, attnR_, ctx);
    // Per-edge scalar path: logits, LeakyReLU, segment softmax,
    // fused weighted aggregation — no E x F materialization, and
    // every step differentiable (training support).
    auto csc = borrow(g.csc());
    Var logits = gsddmmAddVar(csc, al, ar, ctx);
    Var scores = elemVar(ctx, [&] {
        return ag::leakyRelu(logits, 0.2f);
    });
    Var att = edgeSoftmaxVar(csc, scores, ctx);
    return gspmmEdgeScalarVar(csc, z, att, ctx);
}

Gatv2Conv::Gatv2Conv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
                     bool trainable)
    : Conv("GATv2Conv", trainable),
      weightL_(addParam(Tensor::glorot(in_dim, out_dim, rng))),
      weightR_(addParam(Tensor::glorot(in_dim, out_dim, rng))),
      attn_(addParam(Tensor::glorot(1, out_dim, rng)))
{
}

Var
Gatv2Conv::forward(const Graph &g, const Var &x, const KernelCtx &ctx)
{
    Var zl = gemmVar(x, weightL_, ctx);
    Var zr = gemmVar(x, weightR_, ctx);
    auto csc = borrow(g.csc());
    Var scores = gsddmmAttnV2Var(csc, zl, zr, attn_, 0.2f, ctx);
    Var att = edgeSoftmaxVar(csc, scores, ctx);
    return gspmmEdgeScalarVar(csc, zr, att, ctx);
}

TagConv::TagConv(int64_t in_dim, int64_t out_dim, int k, core::Rng &rng,
                 bool trainable)
    : Conv("TAGConv", trainable), k_(k)
{
    GNNBENCH_CHECK(k >= 0, "TAGConv order must be >= 0");
    for (int i = 0; i <= k; ++i)
        weights_.push_back(addParam(Tensor::glorot(in_dim, out_dim,
                                                   rng)));
    bias_ = addParam(Tensor::zeros(1, out_dim));
}

Var
TagConv::forward(const Graph &g, const Var &x, const KernelCtx &ctx)
{
    Var out = gemmVar(x, weights_[0], ctx);
    Var xk = x;
    for (int i = 1; i <= k_; ++i) {
        xk = propagateNorm(g, xk, ctx);
        out = addVar(out, gemmVar(xk, weights_[i], ctx), ctx);
    }
    return addBiasVar(out, bias_, ctx);
}

SgConv::SgConv(int64_t in_dim, int64_t out_dim, int k, core::Rng &rng,
               bool trainable)
    : Conv("SGConv", trainable), k_(k),
      weight_(addParam(Tensor::glorot(in_dim, out_dim, rng))),
      bias_(addParam(Tensor::zeros(1, out_dim)))
{
    GNNBENCH_CHECK(k >= 1, "SGConv order must be >= 1");
}

Var
SgConv::forward(const Graph &g, const Var &x, const KernelCtx &ctx)
{
    Var xk = x;
    for (int i = 0; i < k_; ++i)
        xk = propagateNorm(g, xk, ctx);
    return addBiasVar(gemmVar(xk, weight_, ctx), bias_, ctx);
}

std::unique_ptr<Conv>
makeConv(ConvKind kind, int64_t in_dim, int64_t out_dim, core::Rng &rng,
         bool trainable)
{
    switch (kind) {
      case ConvKind::Gcn:
        return std::make_unique<GcnConv>(in_dim, out_dim, rng,
                                         trainable);
      case ConvKind::Gcn2:
        return std::make_unique<Gcn2Conv>(out_dim, 0.1f, 0.5f, rng,
                                          trainable);
      case ConvKind::Cheb:
        return std::make_unique<ChebConv>(in_dim, out_dim, 3, rng,
                                          trainable);
      case ConvKind::Sage:
        return std::make_unique<SageConv>(in_dim, out_dim, rng,
                                          trainable);
      case ConvKind::Gat:
        return std::make_unique<GatConv>(in_dim, out_dim, rng,
                                         trainable);
      case ConvKind::Gatv2:
        return std::make_unique<Gatv2Conv>(in_dim, out_dim, rng,
                                           trainable);
      case ConvKind::Tag:
        return std::make_unique<TagConv>(in_dim, out_dim, 3, rng,
                                         trainable);
      case ConvKind::Sg:
        return std::make_unique<SgConv>(in_dim, out_dim, 2, rng,
                                        trainable);
    }
    GNNBENCH_ASSERT(false, "unknown conv kind");
    __builtin_unreachable();
}

} // namespace dglx
} // namespace gnnbench
