/**
 * @file
 * Fused message-passing kernels of the dglx framework.
 *
 * DGL realizes GNN message passing with generalized SpMM (g-SpMM) and
 * generalized SDDMM (g-SDDMM) kernels that fuse message computation
 * with aggregation, never materializing per-edge feature tensors.
 * dglx reproduces that design: gspmm() aggregates features straight
 * out of the source feature matrix, and gsddmm()/edgeSoftmax() only
 * ever materialize per-edge *scalars* (attention scores).
 *
 * Every kernel is accounted through a KernelCtx: on the CPU it simply
 * runs (and is measured); on the modeled GPU its wall time is
 * replaced by the roofline estimate with DGL-calibrated efficiency
 * constants (Costs).
 */

#ifndef GNNBENCH_DGLX_KERNELS_H
#define GNNBENCH_DGLX_KERNELS_H

#include "gnnbench/core/autograd.h"
#include "gnnbench/core/tensor.h"
#include "gnnbench/device/session.h"
#include "gnnbench/graph/csr.h"

namespace gnnbench {
namespace dglx {

/**
 * Modeled GPU cost constants of the dglx framework.
 *
 * DGL's kernels are highly tuned (high achieved bandwidth) but each
 * update_all() call pays noticeable framework bookkeeping, which is
 * why the paper observes PyG winning on *small* graphs on GPU.
 */
struct Costs
{
    double gpuSpmmEff = 0.55;   ///< fused g-SpMM achieved fraction
    double gpuSddmmEff = 0.50;
    double gpuGemmEff = 0.85;   ///< cuBLAS-like dense GEMM
    double gpuElemEff = 0.60;   ///< elementwise / softmax kernels
    double gpuCallOverhead = 150e-6; ///< per message-passing call
};

/** Execution context shared by all kernels in one run. */
struct KernelCtx
{
    device::Session *session = nullptr;
    device::DeviceType dev = device::DeviceType::CPU;
    Costs costs;

    bool onGpu() const { return dev == device::DeviceType::GPU; }
};

/** Aggregation operators supported by gspmm. */
enum class Reducer { Sum, Mean, Max };

/**
 * Fused g-SpMM over an in-adjacency: for each destination row d,
 * out[d, :] = reduce over in-edges e of (w[e] * x[src(e), :]).
 * @param csc in-adjacency (rows = destinations, cols index into x)
 * @param w optional per-edge weights in csc traversal order
 */
core::Tensor gspmm(const graph::CsrGraph &csc, const core::Tensor &x,
                   Reducer reducer, const float *w,
                   const KernelCtx &ctx);

/**
 * Scatter-form g-SpMM over the same in-adjacency: for each row r and
 * in-edge e, out[col(e), :] += w[e] * x[r, :].  This is multiplication
 * by the *transpose* of the adjacency without materializing it — the
 * kernel DGL uses for the backward pass of update_all.
 */
core::Tensor gspmmScatter(const graph::CsrGraph &csc,
                          const core::Tensor &x, const float *w,
                          const KernelCtx &ctx);

/**
 * g-SDDMM "u_add_v" on per-node scalar columns: for each edge e,
 * out[e, h] = a_dst[dst(e), h] + b_src[src(e), h].  Used to compute
 * GAT attention logits without materializing features.
 */
core::Tensor gsddmmAdd(const graph::CsrGraph &csc,
                       const core::Tensor &a_dst,
                       const core::Tensor &b_src, const KernelCtx &ctx);

/**
 * g-SDDMM "u_dot_v": per-edge dot product of destination and source
 * feature rows, out[e, 0] = <a_dst[dst(e), :], b_src[src(e), :]>.
 */
core::Tensor gsddmmDot(const graph::CsrGraph &csc,
                       const core::Tensor &a_dst,
                       const core::Tensor &b_src, const KernelCtx &ctx);

/**
 * Fused GATv2 scoring: out[e, 0] = <a, LeakyReLU(z_dst[dst(e), :] +
 * z_src[src(e), :])> computed edge-by-edge *without* materializing the
 * E x F per-edge feature tensor — the fused-kernel capability the
 * paper credits for DGL avoiding PyG's out-of-memory failures.
 */
core::Tensor gsddmmAttnV2(const graph::CsrGraph &csc,
                          const core::Tensor &z_dst,
                          const core::Tensor &z_src,
                          const core::Tensor &attn_vec,
                          float negative_slope, const KernelCtx &ctx);

/** Segment softmax of per-edge scores over each destination's edges. */
core::Tensor edgeSoftmax(const graph::CsrGraph &csc,
                         const core::Tensor &scores,
                         const KernelCtx &ctx);

/**
 * Attention aggregation: out[d, :] = sum over in-edges e of
 * att[e, 0] * x[src(e), :] (fused; no per-edge feature tensor).
 */
core::Tensor gspmmEdgeScalar(const graph::CsrGraph &csc,
                             const core::Tensor &x,
                             const core::Tensor &att,
                             const KernelCtx &ctx);

/** Dense GEMM routed through the device model (cuBLAS on GPU). */
core::Tensor gemm(const core::Tensor &a, const core::Tensor &b,
                  const KernelCtx &ctx);

/// @name Autograd wrappers
/// @{

/**
 * Alias a long-lived object as a shared_ptr without taking ownership.
 * Used to hand cached graph structures to backward closures; the
 * caller guarantees the object outlives the autograd tape.
 */
template <typename T>
std::shared_ptr<const T>
borrow(const T &obj)
{
    return std::shared_ptr<const T>(&obj, [](const T *) {});
}

/**
 * Differentiable fused aggregation y = A x with per-edge weights.
 * The backward pass aggregates the upstream gradient through the
 * *transposed* adjacency @p bwd with weights @p w_bwd aligned to its
 * traversal order (both held by shared_ptr so temporaries — e.g.
 * per-block transposes — survive until backward runs; use borrow()
 * for cached structures).
 */
core::ag::Var spmmVar(const graph::CsrGraph &csc, const float *w_csc,
                      std::shared_ptr<const graph::CsrGraph> bwd,
                      std::shared_ptr<const std::vector<float>> w_bwd,
                      const core::ag::Var &x, const KernelCtx &ctx);

/**
 * Differentiable fused aggregation whose backward runs the
 * scatter-form kernel over the *same* adjacency (no transpose is ever
 * built) — the right choice for per-batch bipartite blocks.  The
 * optional weights apply in both directions (per-edge).
 */
core::ag::Var spmmScatterBwdVar(
    std::shared_ptr<const graph::CsrGraph> csc,
    std::shared_ptr<const std::vector<float>> w, const core::ag::Var &x,
    const KernelCtx &ctx);

/**
 * Differentiable *mean* aggregation, recorded as an spmm→row-scale
 * chain in the kernel graph.  When the chain fuses
 * (GNNBENCH_DEVICE_FUSION on), the degree normalization folds into a
 * single "gspmm_mean" kernel — forward skips the materialized sum
 * tensor, backward folds the inverse destination degrees into the
 * transposed aggregation's edge weights — and the eliminated
 * elementwise passes are booked as fused_bytes_saved.  When the fuse
 * is declined it falls back to Sum + rowScaleVar.  Both executions
 * are bit-identical for any variant and thread count.  @p bwd is the
 * transposed adjacency the backward aggregates through (as spmmVar).
 */
core::ag::Var spmmMeanVar(const graph::CsrGraph &csc,
                          std::shared_ptr<const graph::CsrGraph> bwd,
                          const core::ag::Var &x, const KernelCtx &ctx);

/**
 * Mean-aggregation counterpart of spmmScatterBwdVar for bipartite
 * blocks: same fusion/fallback behavior as spmmMeanVar, backward runs
 * the scatter-form kernel over the same adjacency with inverse-degree
 * edge weights.
 */
core::ag::Var spmmMeanScatterBwdVar(
    std::shared_ptr<const graph::CsrGraph> csc, const core::ag::Var &x,
    const KernelCtx &ctx);

/** Differentiable GEMM through the device model. */
core::ag::Var gemmVar(const core::ag::Var &a, const core::ag::Var &b,
                      const KernelCtx &ctx);

/// @name Differentiable attention ops
/// Full training support for the attention layers: every backward
/// traverses the *same* csc structure (segment sums over rows,
/// scatter sums over columns), so no edge permutation or transpose
/// is ever materialized.
/// @{

/** Segment sum of per-edge rows onto destinations:
 *  out[d, :] = sum over edges e of row d of x[e, :]. */
core::Tensor segmentSumRows(const graph::CsrGraph &csc,
                            const core::Tensor &x,
                            const KernelCtx &ctx);

/** Scatter sum of per-edge rows onto sources:
 *  out[src(e), :] += x[e, :]. */
core::Tensor scatterSumCols(const graph::CsrGraph &csc,
                            const core::Tensor &x,
                            const KernelCtx &ctx);

/** Differentiable u_add_v: y[e, :] = a_dst[dst(e), :] +
 *  b_src[src(e), :]. */
core::ag::Var gsddmmAddVar(std::shared_ptr<const graph::CsrGraph> csc,
                           const core::ag::Var &a_dst,
                           const core::ag::Var &b_src,
                           const KernelCtx &ctx);

/** Differentiable segment softmax over each destination's edges. */
core::ag::Var edgeSoftmaxVar(
    std::shared_ptr<const graph::CsrGraph> csc,
    const core::ag::Var &scores, const KernelCtx &ctx);

/** Differentiable attention aggregation
 *  out[d, :] = sum over in-edges e of att[e, 0] * x[src(e), :]. */
core::ag::Var gspmmEdgeScalarVar(
    std::shared_ptr<const graph::CsrGraph> csc, const core::ag::Var &x,
    const core::ag::Var &att, const KernelCtx &ctx);

/** Differentiable fused GATv2 scoring (see gsddmmAttnV2). */
core::ag::Var gsddmmAttnV2Var(
    std::shared_ptr<const graph::CsrGraph> csc,
    const core::ag::Var &z_dst, const core::ag::Var &z_src,
    const core::ag::Var &attn_vec, float negative_slope,
    const KernelCtx &ctx);

/// @}

/// @name Device-routed elementwise ops
/// Thin wrappers over the core autograd ops that account forward and
/// backward as elementwise kernels on the configured device (so GPU
/// runs are not polluted by host glue time).
/// @{
core::ag::Var addVar(const core::ag::Var &a, const core::ag::Var &b,
                     const KernelCtx &ctx);
core::ag::Var addBiasVar(const core::ag::Var &x,
                         const core::ag::Var &bias,
                         const KernelCtx &ctx);
core::ag::Var rowScaleVar(const core::ag::Var &x,
                          std::vector<float> s, const KernelCtx &ctx);
core::ag::Var reluVar(const core::ag::Var &x, const KernelCtx &ctx);
core::ag::Var scaleVar(const core::ag::Var &x, float alpha,
                       const KernelCtx &ctx);

/** Run any core autograd elementwise op under device accounting
 *  (forward and backward are charged as elementwise kernels). */
core::ag::Var elemVar(const KernelCtx &ctx,
                      const std::function<core::ag::Var()> &build);

/**
 * Run @p fn (host-side preparation such as normalization-weight
 * computation) as an elementwise kernel over @p elems elements on
 * the context's device.
 */
template <typename F>
void
runPrep(const KernelCtx &ctx, double elems, F &&fn)
{
    if (!ctx.session) {
        fn();
        return;
    }
    device::KernelDesc desc;
    desc.name = "prep";
    desc.flops = 2.0 * elems;
    desc.bytes = 8.0 * elems;
    desc.efficiency = ctx.costs.gpuElemEff;
    ctx.session->runKernel(ctx.dev, desc, std::forward<F>(fn));
}

/// @}

} // namespace dglx
} // namespace gnnbench

#endif // GNNBENCH_DGLX_KERNELS_H
