/**
 * @file
 * The dglx 'nn' module: graph-convolution layers built on the fused
 * g-SpMM / g-SDDMM kernels.
 *
 * The eight layers match the ones the paper functional-tests in
 * Figure 5: GCNConv, GCN2Conv, ChebConv, SAGEConv, GATConv,
 * GATv2Conv, TAGConv, SGConv.  All layers support full-graph forward;
 * SAGEConv and GCNConv additionally support the sampled inputs the
 * end-to-end models need (bipartite blocks and induced subgraphs).
 * Every layer is fully differentiable, including the attention
 * layers: their custom ops (u_add_v, edge softmax, fused GATv2
 * scoring, weighted aggregation) all carry backward passes over the
 * same csc structure, so training never materializes a transpose.
 */

#ifndef GNNBENCH_DGLX_NN_H
#define GNNBENCH_DGLX_NN_H

#include <memory>
#include <string>
#include <vector>

#include "gnnbench/dglx/graph.h"
#include "gnnbench/dglx/kernels.h"
#include "gnnbench/sampling/subgraph.h"

namespace gnnbench {
namespace dglx {

using core::ag::Var;

/** The eight benchmarked convolution kinds. */
enum class ConvKind
{
    Gcn,
    Gcn2,
    Cheb,
    Sage,
    Gat,
    Gatv2,
    Tag,
    Sg,
};

/** Printable layer name ("GCNConv", ...). */
const char *convKindName(ConvKind kind);

/** All eight kinds, in the paper's Figure 5 order. */
const std::vector<ConvKind> &allConvKinds();

/** Symmetric GCN weights 1/sqrt((d_r+1)(d_c+1)) for a symmetric
 *  adjacency, aligned with its row-major traversal. */
std::vector<float> computeGcnNorm(const graph::CsrGraph &sym_adj);

/** 1/(deg+1) self-loop scales used with computeGcnNorm. */
std::vector<float> computeSelfScale(const graph::CsrGraph &sym_adj);

/** 1/in-degree row scales for mean aggregation (0 for isolated). */
std::vector<float> computeInvDegree(const graph::CsrGraph &csc);

/** Base class: parameter registry shared by all conv layers. */
class Conv
{
  public:
    /**
     * @param trainable when false, parameters are constants and no
     * autograd tape is recorded (functional-testing mode).
     */
    Conv(std::string name, bool trainable);
    virtual ~Conv() = default;

    /** Full-graph forward (one message-passing step). */
    virtual Var forward(const Graph &g, const Var &x,
                        const KernelCtx &ctx) = 0;

    const std::string &name() const { return name_; }
    const std::vector<Var> &params() const { return params_; }

    /** Total parameter bytes (for model-transfer accounting). */
    uint64_t paramBytes() const;

  protected:
    /** Register one parameter tensor. */
    Var addParam(core::Tensor t);

    std::string name_;
    bool trainable_;
    std::vector<Var> params_;
};

/** Kipf & Welling GCN layer with symmetric normalization. */
class GcnConv : public Conv
{
  public:
    GcnConv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
            bool trainable = true);

    Var forward(const Graph &g, const Var &x,
                const KernelCtx &ctx) override;

    /**
     * Forward over a symmetric induced subgraph with precomputed
     * normalization (ClusterGCN / GraphSAINT training path).
     */
    Var forwardInduced(const graph::CsrGraph &adj,
                       const std::vector<float> &gcn_norm,
                       const std::vector<float> &self_scale,
                       const Var &x, const KernelCtx &ctx);

  private:
    Var weight_;
    Var bias_;
};

/** GCNII layer (Chen et al. 2020) with initial residual + identity. */
class Gcn2Conv : public Conv
{
  public:
    Gcn2Conv(int64_t dim, float alpha, float beta, core::Rng &rng,
             bool trainable = true);

    Var forward(const Graph &g, const Var &x,
                const KernelCtx &ctx) override;

    /** GCNII needs the layer-0 features; set before forward. */
    void setInitial(const Var &x0) { x0_ = x0; }

  private:
    Var weight_;
    Var x0_;
    float alpha_;
    float beta_;
};

/** Chebyshev spectral convolution of order K. */
class ChebConv : public Conv
{
  public:
    ChebConv(int64_t in_dim, int64_t out_dim, int k, core::Rng &rng,
             bool trainable = true);

    Var forward(const Graph &g, const Var &x,
                const KernelCtx &ctx) override;

  private:
    int k_;
    std::vector<Var> weights_;
    Var bias_;
};

/** GraphSAGE layer with mean aggregation. */
class SageConv : public Conv
{
  public:
    SageConv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
             bool trainable = true);

    Var forward(const Graph &g, const Var &x,
                const KernelCtx &ctx) override;

    /**
     * Bipartite forward over a sampled block: @p x_src holds the
     * features of block.srcNodes; the output has |dst| rows.
     */
    Var forwardBlock(const sampling::Block &block, const Var &x_src,
                     const KernelCtx &ctx);

    /** Forward over a symmetric induced subgraph. */
    Var forwardInduced(const graph::CsrGraph &adj, const Var &x,
                       const KernelCtx &ctx);

  private:
    Var selfWeight_;
    Var neighWeight_;
    Var bias_;
};

/** Graph attention layer (GAT), single head. Fully trainable. */
class GatConv : public Conv
{
  public:
    GatConv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
            bool trainable = true);

    Var forward(const Graph &g, const Var &x,
                const KernelCtx &ctx) override;

  private:
    Var weight_;
    Var attnL_;
    Var attnR_;
};

/** GATv2 (Brody et al. 2022), single head. Fully trainable. */
class Gatv2Conv : public Conv
{
  public:
    Gatv2Conv(int64_t in_dim, int64_t out_dim, core::Rng &rng,
              bool trainable = true);

    Var forward(const Graph &g, const Var &x,
                const KernelCtx &ctx) override;

  private:
    Var weightL_;
    Var weightR_;
    Var attn_;
};

/** Topology-adaptive GCN of order K. */
class TagConv : public Conv
{
  public:
    TagConv(int64_t in_dim, int64_t out_dim, int k, core::Rng &rng,
            bool trainable = true);

    Var forward(const Graph &g, const Var &x,
                const KernelCtx &ctx) override;

  private:
    int k_;
    std::vector<Var> weights_;
    Var bias_;
};

/** Simplified GCN: W applied to the K-step propagated features. */
class SgConv : public Conv
{
  public:
    SgConv(int64_t in_dim, int64_t out_dim, int k, core::Rng &rng,
           bool trainable = true);

    Var forward(const Graph &g, const Var &x,
                const KernelCtx &ctx) override;

  private:
    int k_;
    Var weight_;
    Var bias_;
};

/**
 * Build one conv layer by kind with the paper's hyperparameters
 * (ChebConv/TAGConv K = 3, SGConv K = 2, GCN2 alpha = 0.1,
 * beta = 0.5; GCN2Conv requires in_dim == out_dim and uses out_dim).
 */
std::unique_ptr<Conv> makeConv(ConvKind kind, int64_t in_dim,
                               int64_t out_dim, core::Rng &rng,
                               bool trainable);

} // namespace dglx
} // namespace gnnbench

#endif // GNNBENCH_DGLX_NN_H
