#include "gnnbench/dglx/sampler.h"

#include <algorithm>
#include <cmath>

#include "gnnbench/check/validate_sampling.h"
#include "gnnbench/core/parallel.h"

namespace gnnbench {
namespace dglx {

using core::parallel::chunkSeed;
using core::parallel::parallelFor;
using core::parallel::parallelForChunks;
using sampling::Block;
using sampling::InducedSample;
using sampling::NeighborSample;

namespace {

// Chunk sizes for the parallel sampler phases.  These fix the work
// decomposition (and thus the per-chunk RNG streams), so they are part
// of the determinism contract: outputs depend on the grain, never on
// the thread count.
constexpr int64_t kDstChunk = 64;   // destination nodes per chunk
constexpr int64_t kRootChunk = 64;  // random-walk roots per chunk
constexpr int64_t kDrawChunk = 256; // i.i.d. CDF draws per chunk
constexpr int64_t kNodeChunk = 64;  // induced-subgraph nodes per chunk

} // namespace

NeighborSampler::NeighborSampler(const Graph &g, std::vector<int> fanouts,
                                 core::Rng rng)
    : g_(g), fanouts_(std::move(fanouts)), rng_(rng),
      localId_(g.numNodes(), -1)
{
    GNNBENCH_CHECK(!fanouts_.empty(), "neighbor sampler needs fanouts");
    for (int f : fanouts_)
        GNNBENCH_CHECK(f > 0, "fanout must be positive");
}

NeighborSample
NeighborSampler::sample(const std::vector<NodeId> &seeds)
{
    GNNBENCH_CHECK(!seeds.empty(), "empty seed batch");
    NeighborSample out;
    out.seeds = seeds;
    out.blocks.resize(fanouts_.size());

    const graph::CsrGraph &csc = g_.csc();
    // One base draw per batch; every chunk of every layer derives its
    // own stream from it, so the sampled blocks are bit-identical for
    // any thread count.
    const uint64_t base = rng_.next();
    std::vector<NodeId> frontier = seeds;

    // Walk layers from the seed side inwards; fanouts_[0] is the
    // input-side layer so it is filled last.
    for (size_t l = fanouts_.size(); l-- > 0;) {
        const int fanout = fanouts_[l];
        Block &blk = out.blocks[l];
        blk.dstNodes = frontier;
        blk.srcNodes = frontier;

        const NodeId num_dst = static_cast<NodeId>(frontier.size());
        blk.csc.numRows = num_dst;
        blk.csc.indptr.assign(num_dst + 1, 0);

        // Phase A (parallel): fix each destination's edge range up
        // front (degree capped at the fanout), then sample *global*
        // neighbor ids into the flat per-range slots — disjoint
        // writes, one RNG stream per chunk.
        for (NodeId d = 0; d < num_dst; ++d) {
            const EdgeId deg = csc.degree(frontier[d]);
            blk.csc.indptr[d + 1] =
                blk.csc.indptr[d] +
                std::min<EdgeId>(deg, static_cast<EdgeId>(fanout));
        }
        sampledGlobal_.resize(blk.csc.indptr.back());
        parallelForChunks(
            0, num_dst, kDstChunk,
            [&](int64_t c, int64_t d0, int64_t d1) {
                core::Rng crng(chunkSeed(
                    base, static_cast<uint64_t>(l),
                    static_cast<uint64_t>(c)));
                std::vector<NodeId> scratch;
                for (int64_t d = d0; d < d1; ++d) {
                    const NodeId u = frontier[d];
                    const EdgeId deg = csc.degree(u);
                    const NodeId *nbrs = csc.rowBegin(u);
                    NodeId *slot =
                        sampledGlobal_.data() + blk.csc.indptr[d];
                    if (deg <= fanout) {
                        std::copy(nbrs, nbrs + deg, slot);
                    } else {
                        // Partial Fisher-Yates over a scratch copy:
                        // O(deg) copy + O(fanout) swaps.
                        scratch.assign(nbrs, nbrs + deg);
                        for (int i = 0; i < fanout; ++i) {
                            const EdgeId j =
                                i + static_cast<EdgeId>(
                                        crng.uniformInt(deg - i));
                            std::swap(scratch[i], scratch[j]);
                            slot[i] = scratch[i];
                        }
                    }
                }
            });

        // Phase B (serial): relabel in destination order with the
        // dense map — first-encounter order, exactly as a fully
        // serial pass would produce.
        for (size_t i = 0; i < blk.srcNodes.size(); ++i)
            localId_[blk.srcNodes[i]] = static_cast<NodeId>(i);
        blk.csc.indices.resize(sampledGlobal_.size());
        for (size_t i = 0; i < sampledGlobal_.size(); ++i) {
            const NodeId v = sampledGlobal_[i];
            if (localId_[v] == -1) {
                localId_[v] =
                    static_cast<NodeId>(blk.srcNodes.size());
                blk.srcNodes.push_back(v);
            }
            blk.csc.indices[i] = localId_[v];
        }
        blk.csc.numCols = static_cast<NodeId>(blk.srcNodes.size());

        // O(|src|) reset of the dense map.
        for (NodeId v : blk.srcNodes)
            localId_[v] = -1;
        frontier = blk.srcNodes;
    }
    if (check::enabled())
        check::require(
            check::checkNeighborSample(out, csc, fanouts_));
    return out;
}

InducedSample
ClusterSampler::extractInduced(const graph::CsrGraph &csr,
                               std::vector<NodeId> nodes,
                               std::vector<NodeId> &local_id_scratch)
{
    InducedSample out;
    out.nodes = std::move(nodes);
    const NodeId k = static_cast<NodeId>(out.nodes.size());
    parallelFor(0, k, kNodeChunk, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            local_id_scratch[out.nodes[i]] = static_cast<NodeId>(i);
    });

    out.adj.numRows = k;
    out.adj.numCols = k;
    out.adj.indptr.assign(k + 1, 0);
    // Two passes over the candidate edges, both parallel over the
    // batch nodes: count into disjoint indptr slots, serial prefix
    // sum, then fill each node's disjoint cursor range.
    parallelFor(0, k, kNodeChunk, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            const NodeId u = out.nodes[i];
            EdgeId cnt = 0;
            for (EdgeId e = csr.indptr[u]; e < csr.indptr[u + 1]; ++e)
                if (local_id_scratch[csr.indices[e]] != -1)
                    ++cnt;
            out.adj.indptr[i + 1] = cnt;
        }
    });
    for (NodeId i = 0; i < k; ++i)
        out.adj.indptr[i + 1] += out.adj.indptr[i];
    out.adj.indices.resize(out.adj.indptr.back());
    parallelFor(0, k, kNodeChunk, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            const NodeId u = out.nodes[i];
            EdgeId cursor = out.adj.indptr[i];
            for (EdgeId e = csr.indptr[u]; e < csr.indptr[u + 1];
                 ++e) {
                const NodeId lv = local_id_scratch[csr.indices[e]];
                if (lv != -1)
                    out.adj.indices[cursor++] = lv;
            }
        }
    });
    parallelFor(0, k, kNodeChunk, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            local_id_scratch[out.nodes[i]] = -1;
    });
    if (check::enabled())
        check::require(check::checkInducedSample(out, csr));
    return out;
}

ClusterSampler::ClusterSampler(const Graph &g, int32_t num_parts,
                               core::Rng rng)
    : g_(g), rng_(rng), localId_(g.numNodes(), -1)
{
    // The one-time "METIS" partitioning step.
    partition_ = graph::partitionGraph(g.csr(), num_parts, rng_);
    // Bucket nodes by cluster for O(batch) member collection.
    memberPtr_.assign(num_parts + 1, 0);
    for (int32_t p : partition_.assignment)
        ++memberPtr_[p + 1];
    for (int32_t c = 0; c < num_parts; ++c)
        memberPtr_[c + 1] += memberPtr_[c];
    memberList_.resize(g.numNodes());
    std::vector<EdgeId> cursor(memberPtr_.begin(), memberPtr_.end() - 1);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        memberList_[cursor[partition_.assignment[v]]++] = v;
}

ClusterSampler::ClusterSampler(const ClusterSampler &other, core::Rng rng)
    : g_(other.g_), rng_(rng), partition_(other.partition_),
      memberList_(other.memberList_), memberPtr_(other.memberPtr_),
      localId_(other.g_.numNodes(), -1)
{
}

InducedSample
ClusterSampler::sample(int32_t clusters_per_batch)
{
    GNNBENCH_CHECK(clusters_per_batch > 0 &&
                       clusters_per_batch <= partition_.numParts,
                   "bad clusters_per_batch");
    auto chosen = rng_.sampleWithoutReplacement(partition_.numParts,
                                                clusters_per_batch);
    std::vector<NodeId> nodes;
    for (NodeId c : chosen) {
        nodes.insert(nodes.end(), memberList_.begin() + memberPtr_[c],
                     memberList_.begin() + memberPtr_[c + 1]);
    }
    return extractInduced(g_.csr(), std::move(nodes), localId_);
}

SaintRwSampler::SaintRwSampler(const Graph &g, int32_t num_roots,
                               int32_t walk_length, core::Rng rng)
    : g_(g), numRoots_(num_roots), walkLength_(walk_length), rng_(rng),
      localId_(g.numNodes(), -1)
{
    GNNBENCH_CHECK(num_roots > 0 && walk_length >= 0,
                   "bad random walk parameters");
}

InducedSample
SaintRwSampler::sample()
{
    const graph::CsrGraph &csr = g_.csr();
    const int32_t steps = walkLength_ + 1;
    const uint64_t base = rng_.next();
    // Phase A (parallel): each chunk of roots walks on its own RNG
    // stream, recording visit sequences into disjoint per-root slots.
    std::vector<NodeId> visits(static_cast<size_t>(numRoots_) * steps);
    std::vector<int32_t> visitLen(numRoots_);
    parallelForChunks(
        0, numRoots_, kRootChunk,
        [&](int64_t c, int64_t r0, int64_t r1) {
            core::Rng crng(chunkSeed(base, 0,
                                     static_cast<uint64_t>(c)));
            for (int64_t r = r0; r < r1; ++r) {
                NodeId *slot = visits.data() + r * steps;
                NodeId cur = static_cast<NodeId>(
                    crng.uniformInt(g_.numNodes()));
                int32_t len = 0;
                slot[len++] = cur;
                for (int32_t s = 0; s < walkLength_; ++s) {
                    const EdgeId deg = csr.degree(cur);
                    if (deg == 0)
                        break;
                    cur = csr.rowBegin(cur)[crng.uniformInt(deg)];
                    slot[len++] = cur;
                }
                visitLen[r] = len;
            }
        });
    // Phase B (serial): dedup in root order.
    std::vector<NodeId> nodes;
    nodes.reserve(static_cast<size_t>(numRoots_) * steps);
    for (int32_t r = 0; r < numRoots_; ++r) {
        const NodeId *slot = visits.data() +
                             static_cast<size_t>(r) * steps;
        for (int32_t s = 0; s < visitLen[r]; ++s) {
            const NodeId v = slot[s];
            if (localId_[v] == -1) {
                localId_[v] = static_cast<NodeId>(nodes.size());
                nodes.push_back(v);
            }
        }
    }
    // extractInduced resets localId_, but entries were also set here;
    // clear before handing the scratch over.
    for (NodeId v : nodes)
        localId_[v] = -1;
    return ClusterSampler::extractInduced(csr, std::move(nodes),
                                          localId_);
}

SaintNodeSampler::SaintNodeSampler(const Graph &g, NodeId budget,
                                   core::Rng rng)
    : g_(g), budget_(budget), rng_(rng), localId_(g.numNodes(), -1)
{
    GNNBENCH_CHECK(budget > 0 && budget <= g.numNodes(),
                   "bad node-sampler budget");
    // Degree-proportional CDF (GraphSAINT node-sampler distribution).
    degreeCdf_.resize(g.numNodes());
    double acc = 0.0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        acc += static_cast<double>(g.outDegrees()[v]) + 1.0;
        degreeCdf_[v] = acc;
    }
}

SaintNodeSampler::SaintNodeSampler(const SaintNodeSampler &other,
                                   core::Rng rng)
    : g_(other.g_), budget_(other.budget_), rng_(rng),
      degreeCdf_(other.degreeCdf_), localId_(other.g_.numNodes(), -1)
{
}

InducedSample
SaintNodeSampler::sample()
{
    const double total = degreeCdf_.back();
    const uint64_t base = rng_.next();
    // Phase A (parallel): i.i.d. CDF inversions into per-draw slots.
    std::vector<NodeId> draws(budget_);
    parallelForChunks(
        0, budget_, kDrawChunk,
        [&](int64_t c, int64_t i0, int64_t i1) {
            core::Rng crng(chunkSeed(base, 0,
                                     static_cast<uint64_t>(c)));
            for (int64_t i = i0; i < i1; ++i) {
                const double r = crng.uniform() * total;
                draws[i] = static_cast<NodeId>(
                    std::lower_bound(degreeCdf_.begin(),
                                     degreeCdf_.end(), r) -
                    degreeCdf_.begin());
            }
        });
    // Phase B (serial): dedup in draw order.
    std::vector<NodeId> nodes;
    nodes.reserve(budget_);
    for (NodeId v : draws) {
        if (localId_[v] == -1) {
            localId_[v] = 1;  // presence marker
            nodes.push_back(v);
        }
    }
    for (NodeId v : nodes)
        localId_[v] = -1;
    return ClusterSampler::extractInduced(g_.csr(), std::move(nodes),
                                          localId_);
}

SaintEdgeSampler::SaintEdgeSampler(const Graph &g, EdgeId budget,
                                   core::Rng rng)
    : g_(g), budget_(budget), rng_(rng), localId_(g.numNodes(), -1)
{
    GNNBENCH_CHECK(budget > 0, "bad edge-sampler budget");
    // p_e proportional to 1/deg(u) + 1/deg(v) (GraphSAINT edge
    // sampler), in CSR edge order.
    const graph::CsrGraph &csr = g.csr();
    edgeCdf_.resize(csr.numEdges());
    double acc = 0.0;
    EdgeId e = 0;
    for (NodeId u = 0; u < csr.numRows; ++u) {
        const double du =
            static_cast<double>(g.outDegrees()[u]) + 1.0;
        for (EdgeId i = csr.indptr[u]; i < csr.indptr[u + 1];
             ++i, ++e) {
            const double dv = static_cast<double>(
                                  g.outDegrees()[csr.indices[i]]) +
                              1.0;
            acc += 1.0 / du + 1.0 / dv;
            edgeCdf_[e] = acc;
        }
    }
}

SaintEdgeSampler::SaintEdgeSampler(const SaintEdgeSampler &other,
                                   core::Rng rng)
    : g_(other.g_), budget_(other.budget_), rng_(rng),
      edgeCdf_(other.edgeCdf_), localId_(other.g_.numNodes(), -1)
{
}

InducedSample
SaintEdgeSampler::sample()
{
    const graph::CsrGraph &csr = g_.csr();
    const double total = edgeCdf_.back();
    const uint64_t base = rng_.next();
    // Phase A (parallel): draw edges and resolve both endpoints (the
    // source via indptr search) into per-draw slots.
    std::vector<NodeId> srcDraw(budget_), dstDraw(budget_);
    parallelForChunks(
        0, budget_, kDrawChunk,
        [&](int64_t c, int64_t i0, int64_t i1) {
            core::Rng crng(chunkSeed(base, 0,
                                     static_cast<uint64_t>(c)));
            for (int64_t i = i0; i < i1; ++i) {
                const double r = crng.uniform() * total;
                const EdgeId e = static_cast<EdgeId>(
                    std::lower_bound(edgeCdf_.begin(),
                                     edgeCdf_.end(), r) -
                    edgeCdf_.begin());
                srcDraw[i] = static_cast<NodeId>(
                    std::upper_bound(csr.indptr.begin(),
                                     csr.indptr.end(), e) -
                    csr.indptr.begin() - 1);
                dstDraw[i] = csr.indices[e];
            }
        });
    // Phase B (serial): dedup endpoints in draw order.
    std::vector<NodeId> nodes;
    auto visit = [&](NodeId v) {
        if (localId_[v] == -1) {
            localId_[v] = 1;
            nodes.push_back(v);
        }
    };
    for (EdgeId i = 0; i < budget_; ++i) {
        visit(srcDraw[i]);
        visit(dstDraw[i]);
    }
    for (NodeId v : nodes)
        localId_[v] = -1;
    return ClusterSampler::extractInduced(csr, std::move(nodes),
                                          localId_);
}

} // namespace dglx
} // namespace gnnbench
