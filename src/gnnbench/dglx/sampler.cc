#include "gnnbench/dglx/sampler.h"

#include <algorithm>
#include <cmath>

namespace gnnbench {
namespace dglx {

using sampling::Block;
using sampling::InducedSample;
using sampling::NeighborSample;

NeighborSampler::NeighborSampler(const Graph &g, std::vector<int> fanouts,
                                 core::Rng rng)
    : g_(g), fanouts_(std::move(fanouts)), rng_(rng),
      localId_(g.numNodes(), -1)
{
    GNNBENCH_CHECK(!fanouts_.empty(), "neighbor sampler needs fanouts");
    for (int f : fanouts_)
        GNNBENCH_CHECK(f > 0, "fanout must be positive");
}

NeighborSample
NeighborSampler::sample(const std::vector<NodeId> &seeds)
{
    GNNBENCH_CHECK(!seeds.empty(), "empty seed batch");
    NeighborSample out;
    out.seeds = seeds;
    out.blocks.resize(fanouts_.size());

    const graph::CsrGraph &csc = g_.csc();
    std::vector<NodeId> frontier = seeds;

    // Walk layers from the seed side inwards; fanouts_[0] is the
    // input-side layer so it is filled last.
    for (size_t l = fanouts_.size(); l-- > 0;) {
        const int fanout = fanouts_[l];
        Block &blk = out.blocks[l];
        blk.dstNodes = frontier;
        blk.srcNodes = frontier;
        for (size_t i = 0; i < blk.srcNodes.size(); ++i)
            localId_[blk.srcNodes[i]] = static_cast<NodeId>(i);

        const NodeId num_dst = static_cast<NodeId>(frontier.size());
        blk.csc.numRows = num_dst;
        blk.csc.indptr.assign(num_dst + 1, 0);
        blk.csc.indices.reserve(static_cast<size_t>(num_dst) * fanout);

        for (NodeId d = 0; d < num_dst; ++d) {
            const NodeId u = frontier[d];
            const EdgeId deg = csc.degree(u);
            const NodeId *nbrs = csc.rowBegin(u);
            EdgeId taken = 0;
            if (deg <= fanout) {
                for (EdgeId i = 0; i < deg; ++i) {
                    NodeId v = nbrs[i];
                    if (localId_[v] == -1) {
                        localId_[v] =
                            static_cast<NodeId>(blk.srcNodes.size());
                        blk.srcNodes.push_back(v);
                    }
                    blk.csc.indices.push_back(localId_[v]);
                }
                taken = deg;
            } else {
                // Partial Fisher-Yates over a scratch copy: O(deg)
                // copy + O(fanout) swaps, no allocation.
                neighborScratch_.assign(nbrs, nbrs + deg);
                for (int i = 0; i < fanout; ++i) {
                    const EdgeId j =
                        i + static_cast<EdgeId>(
                                rng_.uniformInt(deg - i));
                    std::swap(neighborScratch_[i],
                              neighborScratch_[j]);
                    NodeId v = neighborScratch_[i];
                    if (localId_[v] == -1) {
                        localId_[v] =
                            static_cast<NodeId>(blk.srcNodes.size());
                        blk.srcNodes.push_back(v);
                    }
                    blk.csc.indices.push_back(localId_[v]);
                }
                taken = fanout;
            }
            blk.csc.indptr[d + 1] = blk.csc.indptr[d] + taken;
        }
        blk.csc.numCols = static_cast<NodeId>(blk.srcNodes.size());

        // O(|src|) reset of the dense map.
        for (NodeId v : blk.srcNodes)
            localId_[v] = -1;
        frontier = blk.srcNodes;
    }
    return out;
}

InducedSample
ClusterSampler::extractInduced(const graph::CsrGraph &csr,
                               std::vector<NodeId> nodes,
                               std::vector<NodeId> &local_id_scratch)
{
    InducedSample out;
    out.nodes = std::move(nodes);
    const NodeId k = static_cast<NodeId>(out.nodes.size());
    for (NodeId i = 0; i < k; ++i)
        local_id_scratch[out.nodes[i]] = i;

    out.adj.numRows = k;
    out.adj.numCols = k;
    out.adj.indptr.assign(k + 1, 0);
    // Two passes over the candidate edges: count, then fill.
    for (NodeId i = 0; i < k; ++i) {
        const NodeId u = out.nodes[i];
        EdgeId cnt = 0;
        for (EdgeId e = csr.indptr[u]; e < csr.indptr[u + 1]; ++e)
            if (local_id_scratch[csr.indices[e]] != -1)
                ++cnt;
        out.adj.indptr[i + 1] = out.adj.indptr[i] + cnt;
    }
    out.adj.indices.resize(out.adj.indptr.back());
    for (NodeId i = 0; i < k; ++i) {
        const NodeId u = out.nodes[i];
        EdgeId cursor = out.adj.indptr[i];
        for (EdgeId e = csr.indptr[u]; e < csr.indptr[u + 1]; ++e) {
            const NodeId lv = local_id_scratch[csr.indices[e]];
            if (lv != -1)
                out.adj.indices[cursor++] = lv;
        }
    }
    for (NodeId v : out.nodes)
        local_id_scratch[v] = -1;
    return out;
}

ClusterSampler::ClusterSampler(const Graph &g, int32_t num_parts,
                               core::Rng rng)
    : g_(g), rng_(rng), localId_(g.numNodes(), -1)
{
    // The one-time "METIS" partitioning step.
    partition_ = graph::partitionGraph(g.csr(), num_parts, rng_);
    // Bucket nodes by cluster for O(batch) member collection.
    memberPtr_.assign(num_parts + 1, 0);
    for (int32_t p : partition_.assignment)
        ++memberPtr_[p + 1];
    for (int32_t c = 0; c < num_parts; ++c)
        memberPtr_[c + 1] += memberPtr_[c];
    memberList_.resize(g.numNodes());
    std::vector<EdgeId> cursor(memberPtr_.begin(), memberPtr_.end() - 1);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        memberList_[cursor[partition_.assignment[v]]++] = v;
}

InducedSample
ClusterSampler::sample(int32_t clusters_per_batch)
{
    GNNBENCH_CHECK(clusters_per_batch > 0 &&
                       clusters_per_batch <= partition_.numParts,
                   "bad clusters_per_batch");
    auto chosen = rng_.sampleWithoutReplacement(partition_.numParts,
                                                clusters_per_batch);
    std::vector<NodeId> nodes;
    for (NodeId c : chosen) {
        nodes.insert(nodes.end(), memberList_.begin() + memberPtr_[c],
                     memberList_.begin() + memberPtr_[c + 1]);
    }
    return extractInduced(g_.csr(), std::move(nodes), localId_);
}

SaintRwSampler::SaintRwSampler(const Graph &g, int32_t num_roots,
                               int32_t walk_length, core::Rng rng)
    : g_(g), numRoots_(num_roots), walkLength_(walk_length), rng_(rng),
      localId_(g.numNodes(), -1)
{
    GNNBENCH_CHECK(num_roots > 0 && walk_length >= 0,
                   "bad random walk parameters");
}

InducedSample
SaintRwSampler::sample()
{
    const graph::CsrGraph &csr = g_.csr();
    std::vector<NodeId> nodes;
    nodes.reserve(static_cast<size_t>(numRoots_) * (walkLength_ + 1));
    auto visit = [&](NodeId v) {
        if (localId_[v] == -1) {
            localId_[v] = static_cast<NodeId>(nodes.size());
            nodes.push_back(v);
        }
    };
    for (int32_t r = 0; r < numRoots_; ++r) {
        NodeId cur =
            static_cast<NodeId>(rng_.uniformInt(g_.numNodes()));
        visit(cur);
        for (int32_t s = 0; s < walkLength_; ++s) {
            const EdgeId deg = csr.degree(cur);
            if (deg == 0)
                break;
            cur = csr.rowBegin(cur)[rng_.uniformInt(deg)];
            visit(cur);
        }
    }
    // extractInduced resets localId_, but entries were also set here;
    // clear before handing the scratch over.
    for (NodeId v : nodes)
        localId_[v] = -1;
    return ClusterSampler::extractInduced(csr, std::move(nodes),
                                          localId_);
}

SaintNodeSampler::SaintNodeSampler(const Graph &g, NodeId budget,
                                   core::Rng rng)
    : g_(g), budget_(budget), rng_(rng), localId_(g.numNodes(), -1)
{
    GNNBENCH_CHECK(budget > 0 && budget <= g.numNodes(),
                   "bad node-sampler budget");
    // Degree-proportional CDF (GraphSAINT node-sampler distribution).
    degreeCdf_.resize(g.numNodes());
    double acc = 0.0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        acc += static_cast<double>(g.outDegrees()[v]) + 1.0;
        degreeCdf_[v] = acc;
    }
}

InducedSample
SaintNodeSampler::sample()
{
    const double total = degreeCdf_.back();
    std::vector<NodeId> nodes;
    nodes.reserve(budget_);
    for (NodeId i = 0; i < budget_; ++i) {
        const double r = rng_.uniform() * total;
        const NodeId v = static_cast<NodeId>(
            std::lower_bound(degreeCdf_.begin(), degreeCdf_.end(), r) -
            degreeCdf_.begin());
        if (localId_[v] == -1) {
            localId_[v] = 1;  // presence marker
            nodes.push_back(v);
        }
    }
    for (NodeId v : nodes)
        localId_[v] = -1;
    return ClusterSampler::extractInduced(g_.csr(), std::move(nodes),
                                          localId_);
}

SaintEdgeSampler::SaintEdgeSampler(const Graph &g, EdgeId budget,
                                   core::Rng rng)
    : g_(g), budget_(budget), rng_(rng), localId_(g.numNodes(), -1)
{
    GNNBENCH_CHECK(budget > 0, "bad edge-sampler budget");
    // p_e proportional to 1/deg(u) + 1/deg(v) (GraphSAINT edge
    // sampler), in CSR edge order.
    const graph::CsrGraph &csr = g.csr();
    edgeCdf_.resize(csr.numEdges());
    double acc = 0.0;
    EdgeId e = 0;
    for (NodeId u = 0; u < csr.numRows; ++u) {
        const double du =
            static_cast<double>(g.outDegrees()[u]) + 1.0;
        for (EdgeId i = csr.indptr[u]; i < csr.indptr[u + 1];
             ++i, ++e) {
            const double dv = static_cast<double>(
                                  g.outDegrees()[csr.indices[i]]) +
                              1.0;
            acc += 1.0 / du + 1.0 / dv;
            edgeCdf_[e] = acc;
        }
    }
}

InducedSample
SaintEdgeSampler::sample()
{
    const graph::CsrGraph &csr = g_.csr();
    const double total = edgeCdf_.back();
    std::vector<NodeId> nodes;
    auto visit = [&](NodeId v) {
        if (localId_[v] == -1) {
            localId_[v] = 1;
            nodes.push_back(v);
        }
    };
    // Map a flat edge id back to its source via indptr search.
    for (EdgeId i = 0; i < budget_; ++i) {
        const double r = rng_.uniform() * total;
        const EdgeId e = static_cast<EdgeId>(
            std::lower_bound(edgeCdf_.begin(), edgeCdf_.end(), r) -
            edgeCdf_.begin());
        const NodeId u = static_cast<NodeId>(
            std::upper_bound(csr.indptr.begin(), csr.indptr.end(),
                             e) -
            csr.indptr.begin() - 1);
        visit(u);
        visit(csr.indices[e]);
    }
    for (NodeId v : nodes)
        localId_[v] = -1;
    return ClusterSampler::extractInduced(csr, std::move(nodes),
                                          localId_);
}

} // namespace dglx
} // namespace gnnbench
