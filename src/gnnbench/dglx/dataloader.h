/**
 * @file
 * dglx data loader: turns a raw dataset into the framework-native
 * in-memory representation.
 *
 * DGL's loader builds the full DGLGraph object — every adjacency
 * format, degree arrays, and validation — which is why the paper's
 * Figure 3 finds it slower than PyG's.  The work is real here, so the
 * measured loader time reproduces that gap.
 */

#ifndef GNNBENCH_DGLX_DATALOADER_H
#define GNNBENCH_DGLX_DATALOADER_H

#include <memory>

#include "gnnbench/dglx/graph.h"
#include "gnnbench/graph/datasets.h"

namespace gnnbench {
namespace dglx {

/** A dataset materialized as dglx-native objects. */
struct LoadedData
{
    std::shared_ptr<Graph> graph;
    core::Tensor features;
    std::vector<int32_t> labels;
    std::vector<NodeId> trainIdx;
    std::vector<NodeId> valIdx;
    std::vector<NodeId> testIdx;

    uint64_t featureBytes() const { return features.bytes(); }
};

/** The dglx data-loading entry point (Figure 3 workload). */
class DataLoader
{
  public:
    /** Build the full graph object + feature tensors from raw data. */
    static LoadedData load(const graph::Dataset &dataset);
};

} // namespace dglx
} // namespace gnnbench

#endif // GNNBENCH_DGLX_DATALOADER_H
