/**
 * @file
 * dglx data loader: turns a raw dataset into the framework-native
 * in-memory representation.
 *
 * DGL's loader builds the full DGLGraph object — every adjacency
 * format, degree arrays, and validation — which is why the paper's
 * Figure 3 finds it slower than PyG's.  The work is real here, so the
 * measured loader time reproduces that gap.
 */

#ifndef GNNBENCH_DGLX_DATALOADER_H
#define GNNBENCH_DGLX_DATALOADER_H

#include <functional>
#include <memory>
#include <optional>

#include "gnnbench/dglx/graph.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/graph/datasets.h"
#include "gnnbench/sampling/prefetch.h"

namespace gnnbench {
namespace dglx {

/** A dataset materialized as dglx-native objects. */
struct LoadedData
{
    std::shared_ptr<Graph> graph;
    core::Tensor features;
    std::vector<int32_t> labels;
    std::vector<NodeId> trainIdx;
    std::vector<NodeId> valIdx;
    std::vector<NodeId> testIdx;

    uint64_t featureBytes() const { return features.bytes(); }
};

/** The dglx data-loading entry point (Figure 3 workload). */
class DataLoader
{
  public:
    /** Build the full graph object + feature tensors from raw data. */
    static LoadedData load(const graph::Dataset &dataset);
};

/**
 * Prefetching neighbor loader — DGL's DataLoader.  One base seed is
 * drawn from @p rng and each batch's sampler stream derives from
 * (base, batch index) alone, so the delivered samples are
 * bit-identical for any @p num_workers, 0 included (num_workers == 0
 * runs the sampler inline on the consumer thread, like torch
 * DataLoader).  next() delivers samples in seed-batch order.
 */
class NeighborLoader
{
  public:
    NeighborLoader(const NeighborSampler &proto, core::Rng &rng,
                   std::vector<std::vector<NodeId>> seed_batches,
                   int num_workers, int prefetch_depth);

    /** Seed batches in delivery order (for labels/supervision). */
    const std::vector<std::vector<NodeId>> &
    seedBatches() const
    {
        return *seedBatches_;
    }

    /** Next sample in batch order; empty when exhausted. */
    std::optional<sampling::NeighborSample> next();

    /** Drain and join workers (idempotent; the destructor calls it,
     *  so a loader destroyed mid-epoch shuts down cleanly). */
    void shutdown();

    /** Per-worker sampling busy seconds (joins workers first). */
    const std::vector<double> &workerBusySeconds();

    /** Aggregate prefetch-queue statistics. */
    const core::parallel::QueueStats &
    queueStats() const
    {
        return prefetcher_->queueStats();
    }

  private:
    std::shared_ptr<const std::vector<std::vector<NodeId>>>
        seedBatches_;
    int64_t delivered_ = 0;
    std::unique_ptr<sampling::Prefetcher<sampling::NeighborSample>>
        prefetcher_;
};

/**
 * Prefetching loader for samplers producing induced subgraphs
 * (ClusterGCN, GraphSAINT).  Built through the factory helpers
 * below; batch randomness is a pure function of the batch index, so
 * the stream is worker-count invariant.
 */
class InducedLoader
{
  public:
    /** Draws the batch with the given global index on a worker's
     *  private sampler clone. */
    using Producer = std::function<sampling::InducedSample(int64_t)>;

    /** Threaded (num_workers >= 1) mode.
     *  @param lane_tag trace-lane prefix for the workers. */
    InducedLoader(std::vector<Producer> producers, int num_batches,
                  int prefetch_depth,
                  std::string lane_tag = "dgl-induced");

    /** Inline (num_workers == 0) mode: next() samples on the calling
     *  thread. */
    InducedLoader(Producer producer, int num_batches,
                  std::string lane_tag = "dgl-induced");

    /** Next batch in order; empty when exhausted. */
    std::optional<sampling::InducedSample> next();

    void shutdown();

    const std::vector<double> &workerBusySeconds();

    /** Aggregate prefetch-queue statistics. */
    const core::parallel::QueueStats &
    queueStats() const
    {
        return prefetcher_->queueStats();
    }

  private:
    std::unique_ptr<sampling::Prefetcher<sampling::InducedSample>>
        prefetcher_;
};

/** ClusterGCN loader: per-worker ClusterSampler clones (sharing the
 *  one-time partition), each reseeded per batch from the batch index
 *  so the union drawn for batch i is worker-count invariant. */
InducedLoader makeClusterLoader(const ClusterSampler &proto,
                                core::Rng &rng,
                                int32_t clusters_per_batch,
                                int num_batches, int num_workers,
                                int prefetch_depth);

/** GraphSAINT random-walk loader. */
InducedLoader makeSaintRwLoader(const SaintRwSampler &proto,
                                core::Rng &rng, int num_batches,
                                int num_workers, int prefetch_depth);

} // namespace dglx
} // namespace gnnbench

#endif // GNNBENCH_DGLX_DATALOADER_H
