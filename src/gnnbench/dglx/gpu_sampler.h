/**
 * @file
 * GPU-based and UVA-based neighbor samplers (DGL-only features).
 *
 * DGL can run GraphSAGE's neighborhood sampling on the GPU, either
 * over a GPU-resident copy of the graph ("GPU" mode) or over pinned
 * host memory accessed zero-copy through CUDA Unified Virtual
 * Addressing ("UVA" mode).  Offline, both samplers execute the same
 * (correct) sampling algorithm on the host but account their time
 * through the device model:
 *  - GPU mode: random neighbor-list reads out of device memory at a
 *    low achieved bandwidth (irregular access), a few kernel launches
 *    per layer;
 *  - UVA mode: the same reads cross PCIe zero-copy, at pinned-host
 *    bandwidth — slightly slower, exactly as the paper's Figure 20
 *    observes.
 */

#ifndef GNNBENCH_DGLX_GPU_SAMPLER_H
#define GNNBENCH_DGLX_GPU_SAMPLER_H

#include "gnnbench/dglx/sampler.h"
#include "gnnbench/device/session.h"

namespace gnnbench {
namespace dglx {

/** Calibration constants of the modeled GPU sampling kernels. */
struct GpuSamplerCosts
{
    /** Achieved fraction of device bandwidth for the random
     *  neighbor-list reads of sampling. */
    double randomAccessEff = 0.08;
    /** Kernel launches per sampled layer (frontier build, pick,
     *  unique, block assembly). */
    int kernelsPerLayer = 4;
};

/** Neighbor sampler executing (in model time) on the GPU. */
class GpuNeighborSampler
{
  public:
    enum class Mode
    {
        GpuResident,  ///< graph lives in device memory
        Uva,          ///< graph pinned in host memory, zero-copy
    };

    GpuNeighborSampler(const Graph &g, std::vector<int> fanouts,
                       core::Rng rng, Mode mode,
                       device::Session &session,
                       const GpuSamplerCosts &costs = {});

    /**
     * Sample one batch.  Wall time of the host execution is excluded
     * and replaced by the modeled GPU/UVA cost.
     */
    sampling::NeighborSample sample(const std::vector<NodeId> &seeds);

    Mode mode() const { return mode_; }

  private:
    const Graph &g_;
    NeighborSampler inner_;
    Mode mode_;
    device::Session &session_;
    GpuSamplerCosts costs_;
};

} // namespace dglx
} // namespace gnnbench

#endif // GNNBENCH_DGLX_GPU_SAMPLER_H
