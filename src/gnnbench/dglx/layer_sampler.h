/**
 * @file
 * Layer-wise importance samplers: FastGCN (Chen et al., ICLR'18) and
 * LADIES (Zou et al., NeurIPS'19).
 *
 * The paper's Section 2.1 positions these as the historical
 * alternatives to GraphSAGE's neighborhood sampling: FastGCN samples
 * each layer independently from a global degree-based distribution
 * (cheap, but "can generate isolated nodes, thereby leading to an
 * accuracy drop"); LADIES restricts each layer's candidates to the
 * neighborhood of the layer above (connected, but with "additional
 * computational cost and non-negligible overhead in the sampling
 * process").  Both are provided so the ablation bench can reproduce
 * those trade-offs quantitatively.
 */

#ifndef GNNBENCH_DGLX_LAYER_SAMPLER_H
#define GNNBENCH_DGLX_LAYER_SAMPLER_H

#include <vector>

#include "gnnbench/core/rng.h"
#include "gnnbench/dglx/graph.h"
#include "gnnbench/sampling/subgraph.h"

namespace gnnbench {
namespace dglx {

/**
 * FastGCN: every layer draws a fixed budget of nodes i.i.d. from the
 * global importance distribution q(v) proportional to (deg(v)+1)^2,
 * independent of the layer above.
 */
class FastGcnSampler
{
  public:
    /**
     * @param layer_sizes per-layer sample budgets, input-side layer
     * first (like NeighborSampler's fanouts).
     */
    FastGcnSampler(const Graph &g, std::vector<NodeId> layer_sizes,
                   core::Rng rng);

    sampling::LayerWiseSample sample(const std::vector<NodeId> &seeds);

  private:
    const Graph &g_;
    std::vector<NodeId> layerSizes_;
    core::Rng rng_;
    /** CDF of the global importance distribution. */
    std::vector<double> cdf_;
    /** q(v), for the importance weights. */
    std::vector<double> q_;
    std::vector<NodeId> localId_;
};

/**
 * LADIES: layer-dependent importance sampling — each layer's
 * candidates are the in-neighbors of the layer above, weighted by
 * their connectivity to it, and the destination set itself is kept
 * in the sample so no destination is isolated.
 */
class LadiesSampler
{
  public:
    LadiesSampler(const Graph &g, std::vector<NodeId> layer_sizes,
                  core::Rng rng);

    sampling::LayerWiseSample sample(const std::vector<NodeId> &seeds);

  private:
    const Graph &g_;
    std::vector<NodeId> layerSizes_;
    core::Rng rng_;
    std::vector<NodeId> localId_;
    /** Scratch: per-candidate connectivity counts. */
    std::vector<float> candWeight_;
    std::vector<NodeId> candidates_;
};

} // namespace dglx
} // namespace gnnbench

#endif // GNNBENCH_DGLX_LAYER_SAMPLER_H
