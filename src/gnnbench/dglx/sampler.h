/**
 * @file
 * CPU graph samplers of the dglx framework.
 *
 * DGL implements its samplers in C++ (with OpenMP) over the graph's
 * native CSR/CSC arrays; dglx reproduces that fast path: flat scratch
 * arrays, a dense node-relabeling map with O(1) reset, and no
 * per-node heap allocation.  The pygx counterparts implement the same
 * algorithms in a deliberately "interpreted" style (see
 * pygx/sampler.h) — that contrast is Observation 2 of the paper.
 */

#ifndef GNNBENCH_DGLX_SAMPLER_H
#define GNNBENCH_DGLX_SAMPLER_H

#include <vector>

#include "gnnbench/core/rng.h"
#include "gnnbench/dglx/graph.h"
#include "gnnbench/graph/partition.h"
#include "gnnbench/sampling/subgraph.h"

namespace gnnbench {
namespace dglx {

/**
 * GraphSAGE neighborhood sampler: for each seed, samples a fixed
 * fanout of in-neighbors per layer, producing one bipartite block per
 * GNN layer (paper settings: fanouts {25, 10}, batch size 512).
 */
class NeighborSampler
{
  public:
    /**
     * @param fanouts per-layer fanouts, input-side layer first (DGL
     * convention: {25, 10} samples 25 first-hop and 10 second-hop
     * neighbors).
     */
    NeighborSampler(const Graph &g, std::vector<int> fanouts,
                    core::Rng rng);

    /** Sample the layered blocks for one mini-batch of seeds. */
    sampling::NeighborSample sample(const std::vector<NodeId> &seeds);

    const std::vector<int> &fanouts() const { return fanouts_; }

    /** Clone with an independent RNG stream (prefetch workers). */
    NeighborSampler
    withRng(core::Rng rng) const
    {
        return NeighborSampler(g_, fanouts_, rng);
    }

    /** Replace the RNG stream in place (per-batch loader reseeding). */
    void reseed(core::Rng rng) { rng_ = rng; }

  private:
    const Graph &g_;
    std::vector<int> fanouts_;
    core::Rng rng_;
    /** Dense global->local map; entries reset after each layer. */
    std::vector<NodeId> localId_;
    /** Sampled *global* neighbor ids, one slot per kept edge. */
    std::vector<NodeId> sampledGlobal_;
};

/**
 * ClusterGCN sampler: partitions the graph once (the "METIS" step),
 * then each batch unions a few random clusters and extracts their
 * induced subgraph (paper settings: 2000 parts, 50 per batch).
 */
class ClusterSampler
{
  public:
    ClusterSampler(const Graph &g, int32_t num_parts, core::Rng rng);

    /** Union @p clusters_per_batch random clusters into a batch. */
    sampling::InducedSample sample(int32_t clusters_per_batch);

    int32_t numParts() const { return partition_.numParts; }
    const graph::PartitionResult &partition() const
    {
        return partition_;
    }

    /**
     * Clone with an independent RNG stream, sharing the (expensive)
     * partition and member buckets (prefetch workers).
     */
    ClusterSampler
    withRng(core::Rng rng) const
    {
        return ClusterSampler(*this, rng);
    }

    /** Replace the RNG stream in place (per-batch loader reseeding). */
    void reseed(core::Rng rng) { rng_ = rng; }

  private:
    ClusterSampler(const ClusterSampler &other, core::Rng rng);

    const Graph &g_;
    core::Rng rng_;
    graph::PartitionResult partition_;
    /** members of cluster c: memberList_[memberPtr_[c]..[c+1]) */
    std::vector<NodeId> memberList_;
    std::vector<EdgeId> memberPtr_;
    std::vector<NodeId> localId_;

  public:
    /** Fast induced-subgraph extraction shared by the samplers. */
    static sampling::InducedSample extractInduced(
        const graph::CsrGraph &csr, std::vector<NodeId> nodes,
        std::vector<NodeId> &local_id_scratch);
};

/**
 * GraphSAINT random-walk sampler: starts @p num_roots random walks of
 * @p walk_length steps and induces the subgraph on all visited nodes
 * (paper settings: 3000 roots, walk length 2).
 */
class SaintRwSampler
{
  public:
    SaintRwSampler(const Graph &g, int32_t num_roots,
                   int32_t walk_length, core::Rng rng);

    sampling::InducedSample sample();

    /** Clone with an independent RNG stream (prefetch workers). */
    SaintRwSampler
    withRng(core::Rng rng) const
    {
        return SaintRwSampler(g_, numRoots_, walkLength_, rng);
    }

    /** Replace the RNG stream in place (per-batch loader reseeding). */
    void reseed(core::Rng rng) { rng_ = rng; }

  private:
    const Graph &g_;
    int32_t numRoots_;
    int32_t walkLength_;
    core::Rng rng_;
    std::vector<NodeId> localId_;
};

/**
 * GraphSAINT node sampler (baseline): samples @p budget nodes with
 * probability proportional to degree and induces the subgraph.  The
 * paper notes node/edge sampling are inferior to random walks; both
 * are provided for the ablation bench.
 */
class SaintNodeSampler
{
  public:
    SaintNodeSampler(const Graph &g, NodeId budget, core::Rng rng);

    sampling::InducedSample sample();

    /** Clone with an independent RNG stream, sharing the CDF. */
    SaintNodeSampler
    withRng(core::Rng rng) const
    {
        return SaintNodeSampler(*this, rng);
    }

    /** Replace the RNG stream in place (per-batch loader reseeding). */
    void reseed(core::Rng rng) { rng_ = rng; }

  private:
    SaintNodeSampler(const SaintNodeSampler &other, core::Rng rng);

    const Graph &g_;
    NodeId budget_;
    core::Rng rng_;
    std::vector<double> degreeCdf_;
    std::vector<NodeId> localId_;
};

/**
 * GraphSAINT edge sampler (baseline): samples @p budget edges with
 * probability proportional to 1/deg(u) + 1/deg(v) and induces the
 * subgraph on their endpoints.
 */
class SaintEdgeSampler
{
  public:
    SaintEdgeSampler(const Graph &g, EdgeId budget, core::Rng rng);

    sampling::InducedSample sample();

    /** Clone with an independent RNG stream, sharing the CDF. */
    SaintEdgeSampler
    withRng(core::Rng rng) const
    {
        return SaintEdgeSampler(*this, rng);
    }

    /** Replace the RNG stream in place (per-batch loader reseeding). */
    void reseed(core::Rng rng) { rng_ = rng; }

  private:
    SaintEdgeSampler(const SaintEdgeSampler &other, core::Rng rng);

    const Graph &g_;
    EdgeId budget_;
    core::Rng rng_;
    std::vector<double> edgeCdf_;
    std::vector<NodeId> localId_;
};

} // namespace dglx
} // namespace gnnbench

#endif // GNNBENCH_DGLX_SAMPLER_H
