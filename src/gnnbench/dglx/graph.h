/**
 * @file
 * dglx::Graph — the graph-centric core object of the DGL-like
 * framework.
 *
 * Like DGLGraph, construction is *eager*: the object materializes the
 * COO edge list plus both CSR and CSC adjacencies and the degree
 * arrays up front, so every downstream operation (sampling in any
 * direction, fused kernels, partitioning) has its preferred format
 * available.  This is exactly the richness the paper credits for
 * DGL's fast samplers/kernels — and blames for its slower data loader
 * (Observation 1).
 */

#ifndef GNNBENCH_DGLX_GRAPH_H
#define GNNBENCH_DGLX_GRAPH_H

#include <memory>
#include <vector>

#include "gnnbench/core/tensor.h"
#include "gnnbench/graph/convert.h"

namespace gnnbench {
namespace dglx {

/** The DGL-like framework's central graph object. */
class Graph
{
  public:
    /** Build from an edge list; materializes all formats eagerly. */
    explicit Graph(const graph::CooGraph &coo);

    NodeId numNodes() const { return coo_.numNodes; }
    EdgeId numEdges() const { return coo_.numEdges(); }

    const graph::CooGraph &coo() const { return coo_; }
    const graph::CsrGraph &csr() const { return csr_; }
    const graph::CsrGraph &csc() const { return csc_; }

    const std::vector<EdgeId> &inDegrees() const { return inDeg_; }
    const std::vector<EdgeId> &outDegrees() const { return outDeg_; }

    /**
     * Symmetric GCN normalization 1/sqrt((d_u+1)(d_v+1)) aligned with
     * the CSC edge traversal order (computed lazily, then cached —
     * like DGL caching normalized adjacency).
     */
    const std::vector<float> &gcnNormCsc() const;

    /** Same weights aligned with the CSR traversal order. */
    const std::vector<float> &gcnNormCsr() const;

    /** Mean-aggregation weights (1/in-degree of dst) in CSC order. */
    const std::vector<float> &meanNormCsc() const;

    /** Mean-aggregation backward weights in CSR order
     *  (1/in-degree of the destination endpoint of each edge). */
    const std::vector<float> &meanNormCsr() const;

    /** Total bytes of the graph structure (for transfer modeling). */
    uint64_t structureBytes() const;

  private:
    graph::CooGraph coo_;
    graph::CsrGraph csr_;
    graph::CsrGraph csc_;
    std::vector<EdgeId> inDeg_;
    std::vector<EdgeId> outDeg_;
    mutable std::vector<float> gcnNormCsc_;
    mutable std::vector<float> gcnNormCsr_;
    mutable std::vector<float> meanNormCsc_;
    mutable std::vector<float> meanNormCsr_;
};

} // namespace dglx
} // namespace gnnbench

#endif // GNNBENCH_DGLX_GRAPH_H
