#include "gnnbench/dglx/gpu_sampler.h"

#include <algorithm>

#include "gnnbench/core/timer.h"

namespace gnnbench {
namespace dglx {

GpuNeighborSampler::GpuNeighborSampler(const Graph &g,
                                       std::vector<int> fanouts,
                                       core::Rng rng, Mode mode,
                                       device::Session &session,
                                       const GpuSamplerCosts &costs)
    : g_(g), inner_(g, std::move(fanouts), rng), mode_(mode),
      session_(session), costs_(costs)
{
}

sampling::NeighborSample
GpuNeighborSampler::sample(const std::vector<NodeId> &seeds)
{
    core::Timer timer;
    sampling::NeighborSample out = inner_.sample(seeds);
    session_.excludeWall(timer.elapsed());

    // Modeled cost: per layer, the sampler reads each destination's
    // full neighbor list (to pick without replacement) and writes the
    // sampled block arrays.
    for (const auto &blk : out.blocks) {
        double bytes_read = 0.0;
        for (NodeId d :
             std::vector<NodeId>(blk.dstNodes.begin(),
                                 blk.dstNodes.end())) {
            bytes_read += 4.0 * static_cast<double>(
                                    g_.csc().degree(d));
        }
        const double bytes_written =
            8.0 * static_cast<double>(blk.csc.numEdges()) +
            4.0 * static_cast<double>(blk.srcNodes.size());

        device::KernelDesc desc;
        desc.name = "gpu_neighbor_sample";
        desc.flops = 2.0 * static_cast<double>(blk.csc.numEdges());
        // Extra launches beyond the one the model already charges.
        desc.frameworkOverhead =
            (costs_.kernelsPerLayer - 1) *
            session_.gpu().spec().kernelLaunchLatency;
        // Random-access sampling keeps the memory system and SMs far
        // busier than its achieved bandwidth: power scales with the
        // per-destination work (the paper's Reddit case — "a large
        // number of edges for each node ... making the sampling
        // computation on GPU heavier").
        const double avg_deg =
            bytes_read / 4.0 /
            std::max<double>(1.0, blk.dstNodes.size());
        desc.utilization =
            std::clamp(0.25 + 0.7 * avg_deg / 500.0, 0.25, 0.95);

        if (mode_ == Mode::GpuResident) {
            desc.bytes = bytes_read + bytes_written;
            desc.efficiency = costs_.randomAccessEff;
            session_.chargeGpuKernel(desc);
        } else {
            // UVA: neighbor-list reads cross PCIe zero-copy; block
            // assembly writes stay in device memory.  Each
            // destination's neighbor list is one coalesced link
            // transaction, so the per-transaction controller overhead
            // of the tiered link model — not a hand-tuned efficiency
            // constant — makes zero-copy slightly slower than
            // device-resident reads (Figure 20).
            desc.bytes = bytes_written;
            desc.efficiency = costs_.randomAccessEff;
            session_.chargeGpuKernel(desc);
            session_.uvaAccess(
                static_cast<uint64_t>(bytes_read),
                static_cast<uint64_t>(blk.dstNodes.size()));
        }
    }
    return out;
}

} // namespace dglx
} // namespace gnnbench
