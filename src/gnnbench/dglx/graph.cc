#include "gnnbench/dglx/graph.h"

#include <cmath>

namespace gnnbench {
namespace dglx {

Graph::Graph(const graph::CooGraph &coo)
    : coo_(coo), csr_(graph::cooToCsr(coo)), csc_(graph::cooToCsc(coo)),
      inDeg_(graph::outDegrees(csc_)), outDeg_(graph::outDegrees(csr_))
{
    coo_.validate();
}

const std::vector<float> &
Graph::gcnNormCsc() const
{
    if (gcnNormCsc_.empty() && numEdges() > 0) {
        gcnNormCsc_.resize(numEdges());
        EdgeId e = 0;
        for (NodeId v = 0; v < csc_.numRows; ++v) {
            const double dv = static_cast<double>(inDeg_[v]) + 1.0;
            for (EdgeId i = csc_.indptr[v]; i < csc_.indptr[v + 1];
                 ++i, ++e) {
                const NodeId u = csc_.indices[i];
                const double du =
                    static_cast<double>(outDeg_[u]) + 1.0;
                gcnNormCsc_[e] =
                    static_cast<float>(1.0 / std::sqrt(du * dv));
            }
        }
    }
    return gcnNormCsc_;
}

const std::vector<float> &
Graph::gcnNormCsr() const
{
    if (gcnNormCsr_.empty() && numEdges() > 0) {
        gcnNormCsr_.resize(numEdges());
        EdgeId e = 0;
        for (NodeId u = 0; u < csr_.numRows; ++u) {
            const double du = static_cast<double>(outDeg_[u]) + 1.0;
            for (EdgeId i = csr_.indptr[u]; i < csr_.indptr[u + 1];
                 ++i, ++e) {
                const NodeId v = csr_.indices[i];
                const double dv =
                    static_cast<double>(inDeg_[v]) + 1.0;
                gcnNormCsr_[e] =
                    static_cast<float>(1.0 / std::sqrt(du * dv));
            }
        }
    }
    return gcnNormCsr_;
}

const std::vector<float> &
Graph::meanNormCsc() const
{
    if (meanNormCsc_.empty() && numEdges() > 0) {
        meanNormCsc_.resize(numEdges());
        EdgeId e = 0;
        for (NodeId v = 0; v < csc_.numRows; ++v) {
            const float inv =
                inDeg_[v] > 0
                    ? 1.0f / static_cast<float>(inDeg_[v])
                    : 0.0f;
            for (EdgeId i = csc_.indptr[v]; i < csc_.indptr[v + 1];
                 ++i, ++e) {
                meanNormCsc_[e] = inv;
            }
        }
    }
    return meanNormCsc_;
}

const std::vector<float> &
Graph::meanNormCsr() const
{
    if (meanNormCsr_.empty() && numEdges() > 0) {
        meanNormCsr_.resize(numEdges());
        EdgeId e = 0;
        for (NodeId u = 0; u < csr_.numRows; ++u) {
            for (EdgeId i = csr_.indptr[u]; i < csr_.indptr[u + 1];
                 ++i, ++e) {
                const NodeId v = csr_.indices[i];
                meanNormCsr_[e] =
                    inDeg_[v] > 0
                        ? 1.0f / static_cast<float>(inDeg_[v])
                        : 0.0f;
            }
        }
    }
    return meanNormCsr_;
}

uint64_t
Graph::structureBytes() const
{
    return coo_.src.size() * sizeof(NodeId) * 2 +
           csr_.indptr.size() * sizeof(EdgeId) +
           csr_.indices.size() * sizeof(NodeId) +
           csc_.indptr.size() * sizeof(EdgeId) +
           csc_.indices.size() * sizeof(NodeId) +
           (inDeg_.size() + outDeg_.size()) * sizeof(EdgeId);
}

} // namespace dglx
} // namespace gnnbench
