/**
 * @file
 * Degree-ordered GPU feature cache.
 *
 * The paper (Section 4.3) suggests caching the most frequently used
 * node features in GPU memory as the practical middle ground between
 * per-batch feature transfer and full pre-loading [Dong et al.,
 * KDD'21].  FeatureCache implements that policy: the features of the
 * highest-degree nodes (the ones neighbor sampling touches most) are
 * pinned on the GPU; a mini-batch gather then only moves the misses
 * across PCIe.
 */

#ifndef GNNBENCH_DGLX_FEATURE_CACHE_H
#define GNNBENCH_DGLX_FEATURE_CACHE_H

#include <vector>

#include "gnnbench/device/session.h"
#include "gnnbench/graph/csr.h"

namespace gnnbench {
namespace dglx {

/** Statistics of one gather through the cache. */
struct CacheGatherStats
{
    uint64_t hitBytes = 0;
    uint64_t missBytes = 0;

    double
    hitRate() const
    {
        const uint64_t total = hitBytes + missBytes;
        return total > 0
                   ? static_cast<double>(hitBytes) / total
                   : 0.0;
    }
};

/** A static degree-ordered feature cache on the modeled GPU. */
class FeatureCache
{
  public:
    /**
     * Pin the features of the hottest nodes.
     * @param degrees per-node degrees used as the heat metric
     * @param feat_dim feature width in floats
     * @param capacity_bytes GPU bytes reserved for cached features
     */
    FeatureCache(const std::vector<EdgeId> &degrees, int64_t feat_dim,
                 uint64_t capacity_bytes, device::Session &session);

    ~FeatureCache();

    FeatureCache(const FeatureCache &) = delete;
    FeatureCache &operator=(const FeatureCache &) = delete;

    /**
     * Account a feature gather for @p nodes: cached rows are read
     * from device memory (a modeled GPU kernel); misses cross PCIe.
     * Returns the hit/miss byte split.
     */
    CacheGatherStats gather(const std::vector<NodeId> &nodes);

    /** Number of nodes whose features are cached. */
    NodeId cachedNodes() const { return cachedCount_; }

    /** Whether a node's features are resident. */
    bool
    isCached(NodeId v) const
    {
        return cached_[v];
    }

    /** Cumulative statistics since construction. */
    const CacheGatherStats &totals() const { return totals_; }

  private:
    int64_t featDim_;
    uint64_t reservedBytes_ = 0;
    device::Session &session_;
    std::vector<bool> cached_;
    NodeId cachedCount_ = 0;
    CacheGatherStats totals_;
};

} // namespace dglx
} // namespace gnnbench

#endif // GNNBENCH_DGLX_FEATURE_CACHE_H
