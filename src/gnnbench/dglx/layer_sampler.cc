#include "gnnbench/dglx/layer_sampler.h"

#include <algorithm>
#include <cmath>

#include "gnnbench/core/parallel.h"

namespace gnnbench {
namespace dglx {

using core::parallel::chunkSeed;
using core::parallel::parallelFor;
using core::parallel::parallelForChunks;
using sampling::LayerSample;
using sampling::LayerWiseSample;

namespace {

constexpr int64_t kNodeChunk = 64;  // destination nodes per chunk
constexpr int64_t kDrawChunk = 256; // i.i.d. CDF draws per chunk

/**
 * Build one bipartite layer between a sampled source set and a
 * destination set: for every dst, keep in-neighbors that landed in
 * the source set, weighted by 1/(q(v) * t) for unbiasedness.
 */
LayerSample
buildLayer(const Graph &g, std::vector<NodeId> src,
           const std::vector<NodeId> &dst,
           const std::vector<double> &q, std::vector<NodeId> &local,
           bool add_self_loops = false)
{
    LayerSample layer;
    layer.srcNodes = std::move(src);
    layer.dstNodes = dst;
    const auto t = static_cast<double>(layer.srcNodes.size());
    const auto num_dst = static_cast<int64_t>(dst.size());
    parallelFor(0, static_cast<int64_t>(layer.srcNodes.size()),
                kNodeChunk, [&](int64_t i0, int64_t i1) {
                    for (int64_t i = i0; i < i1; ++i)
                        local[layer.srcNodes[i]] =
                            static_cast<NodeId>(i);
                });

    const graph::CsrGraph &csc = g.csc();
    layer.csc.numRows = static_cast<NodeId>(dst.size());
    layer.csc.numCols = static_cast<NodeId>(layer.srcNodes.size());
    layer.csc.indptr.assign(dst.size() + 1, 0);
    // Two passes over the candidate edges, both parallel over the
    // destinations: count kept edges (self loop included), serial
    // prefix sum, then fill each destination's disjoint range.
    parallelFor(0, num_dst, kNodeChunk, [&](int64_t d0, int64_t d1) {
        for (int64_t d = d0; d < d1; ++d) {
            const NodeId u = dst[d];
            EdgeId kept = 0;
            for (EdgeId e = csc.indptr[u]; e < csc.indptr[u + 1]; ++e)
                if (local[csc.indices[e]] != -1)
                    ++kept;
            if (add_self_loops && local[u] != -1)
                ++kept;
            layer.csc.indptr[d + 1] = kept;
        }
    });
    for (int64_t d = 0; d < num_dst; ++d)
        layer.csc.indptr[d + 1] += layer.csc.indptr[d];
    layer.csc.indices.resize(layer.csc.indptr.back());
    layer.edgeWeights.resize(layer.csc.indptr.back());
    parallelFor(0, num_dst, kNodeChunk, [&](int64_t d0, int64_t d1) {
        for (int64_t d = d0; d < d1; ++d) {
            const NodeId u = dst[d];
            EdgeId cursor = layer.csc.indptr[d];
            for (EdgeId e = csc.indptr[u]; e < csc.indptr[u + 1];
                 ++e) {
                const NodeId lv = local[csc.indices[e]];
                if (lv != -1) {
                    layer.csc.indices[cursor] = lv;
                    layer.edgeWeights[cursor] = static_cast<float>(
                        1.0 / (q[csc.indices[e]] * t));
                    ++cursor;
                }
            }
            if (add_self_loops && local[u] != -1) {
                // LADIES attaches the identity to the sliced
                // adjacency, guaranteeing no destination is isolated.
                layer.csc.indices[cursor] = local[u];
                layer.edgeWeights[cursor] = 1.0f;
            }
        }
    });
    for (NodeId v : layer.srcNodes)
        local[v] = -1;
    return layer;
}

} // namespace

FastGcnSampler::FastGcnSampler(const Graph &g,
                               std::vector<NodeId> layer_sizes,
                               core::Rng rng)
    : g_(g), layerSizes_(std::move(layer_sizes)), rng_(rng),
      localId_(g.numNodes(), -1)
{
    GNNBENCH_CHECK(!layerSizes_.empty(),
                   "FastGCN sampler needs layer sizes");
    // q(v) proportional to ||A(:, v)||^2, approximated by the
    // squared (degree + 1), as in the FastGCN paper.
    q_.resize(g.numNodes());
    cdf_.resize(g.numNodes());
    double total = 0.0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        const double d =
            static_cast<double>(g.inDegrees()[v]) + 1.0;
        q_[v] = d * d;
        total += q_[v];
    }
    double acc = 0.0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        q_[v] /= total;
        acc += q_[v];
        cdf_[v] = acc;
    }
}

LayerWiseSample
FastGcnSampler::sample(const std::vector<NodeId> &seeds)
{
    GNNBENCH_CHECK(!seeds.empty(), "empty seed batch");
    LayerWiseSample out;
    out.seeds = seeds;
    out.layers.resize(layerSizes_.size());

    const uint64_t base = rng_.next();
    std::vector<NodeId> frontier = seeds;
    for (size_t l = layerSizes_.size(); l-- > 0;) {
        // Draw the layer's source set i.i.d. from q, deduplicated
        // (each layer is independent of the one above — FastGCN's
        // defining property and the cause of isolated nodes).  The
        // draws run in parallel on per-chunk RNG streams; dedup runs
        // serially in draw order.
        std::vector<NodeId> draws(layerSizes_[l]);
        parallelForChunks(
            0, layerSizes_[l], kDrawChunk,
            [&](int64_t c, int64_t i0, int64_t i1) {
                core::Rng crng(chunkSeed(
                    base, static_cast<uint64_t>(l),
                    static_cast<uint64_t>(c)));
                for (int64_t i = i0; i < i1; ++i) {
                    const double r = crng.uniform();
                    draws[i] = static_cast<NodeId>(
                        std::lower_bound(cdf_.begin(), cdf_.end(),
                                         r) -
                        cdf_.begin());
                }
            });
        std::vector<NodeId> src;
        src.reserve(layerSizes_[l]);
        for (NodeId v : draws) {
            if (localId_[v] == -1) {
                localId_[v] = 1;
                src.push_back(v);
            }
        }
        for (NodeId v : src)
            localId_[v] = -1;
        out.layers[l] =
            buildLayer(g_, std::move(src), frontier, q_, localId_);
        frontier = out.layers[l].srcNodes;
    }
    return out;
}

LadiesSampler::LadiesSampler(const Graph &g,
                             std::vector<NodeId> layer_sizes,
                             core::Rng rng)
    : g_(g), layerSizes_(std::move(layer_sizes)), rng_(rng),
      localId_(g.numNodes(), -1), candWeight_(g.numNodes(), 0.0f)
{
    GNNBENCH_CHECK(!layerSizes_.empty(),
                   "LADIES sampler needs layer sizes");
}

LayerWiseSample
LadiesSampler::sample(const std::vector<NodeId> &seeds)
{
    GNNBENCH_CHECK(!seeds.empty(), "empty seed batch");
    LayerWiseSample out;
    out.seeds = seeds;
    out.layers.resize(layerSizes_.size());
    const graph::CsrGraph &csc = g_.csc();

    std::vector<NodeId> frontier = seeds;
    for (size_t l = layerSizes_.size(); l-- > 0;) {
        // Layer-dependent distribution: candidates are the union of
        // the frontier's in-neighborhoods, weighted by how many
        // frontier nodes they reach (the row-sum of the sliced
        // adjacency — this pass is LADIES's "additional
        // computational cost").
        candidates_.clear();
        for (NodeId u : frontier) {
            for (EdgeId e = csc.indptr[u]; e < csc.indptr[u + 1];
                 ++e) {
                const NodeId v = csc.indices[e];
                if (candWeight_[v] == 0.0f)
                    candidates_.push_back(v);
                candWeight_[v] += 1.0f;
            }
        }
        double total = 0.0;
        for (NodeId v : candidates_)
            total += candWeight_[v];

        // Sample up to the budget without replacement, proportional
        // to candidate weight (repeated CDF draws + dedup).
        std::vector<NodeId> src;
        std::vector<double> q(g_.numNodes(), 0.0);
        if (total > 0.0) {
            std::vector<double> cdf(candidates_.size());
            double acc = 0.0;
            for (size_t i = 0; i < candidates_.size(); ++i) {
                acc += candWeight_[candidates_[i]];
                cdf[i] = acc;
            }
            const NodeId budget = std::min<NodeId>(
                layerSizes_[l],
                static_cast<NodeId>(candidates_.size()));
            const int max_draws = 8 * budget + 16;
            for (int draw = 0;
                 draw < max_draws &&
                 static_cast<NodeId>(src.size()) < budget;
                 ++draw) {
                const double r = rng_.uniform() * total;
                const size_t i = static_cast<size_t>(
                    std::lower_bound(cdf.begin(), cdf.end(), r) -
                    cdf.begin());
                const NodeId v = candidates_[i];
                if (localId_[v] == -1) {
                    localId_[v] = 1;
                    src.push_back(v);
                }
            }
        }
        // Keep the destination set in the sample (LADIES keeps the
        // layer connected; no destination can be isolated as long as
        // it has a self loop into the next layer).
        for (NodeId u : frontier) {
            if (localId_[u] == -1) {
                localId_[u] = 1;
                src.push_back(u);
            }
        }
        for (NodeId v : src)
            localId_[v] = -1;
        // Importance weights from the layer-dependent distribution;
        // destination self-inclusions get weight as if sampled.
        for (NodeId v : src) {
            const double w =
                candWeight_[v] > 0.0f
                    ? candWeight_[v] / std::max(total, 1.0)
                    : 1.0 / std::max<double>(g_.numNodes(), 1);
            q[v] = w;
        }
        for (NodeId v : candidates_)
            candWeight_[v] = 0.0f;

        out.layers[l] = buildLayer(g_, std::move(src), frontier, q,
                                   localId_, /*add_self_loops=*/true);
        frontier = out.layers[l].srcNodes;
    }
    return out;
}

} // namespace dglx
} // namespace gnnbench
